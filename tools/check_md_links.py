#!/usr/bin/env python3
"""Checks that every relative markdown link in the repo resolves, and
that the documentation set stays complete and cross-referenced.

Scans all tracked *.md files (repo root and docs/), extracts inline
[text](target) links, and verifies that non-URL, non-anchor targets name
an existing file or directory relative to the linking file. On top of
that, REQUIRED_DOCS names the documents the repo promises to keep: each
must exist, and each docs/ document must be reachable — linked from at
least one *other* markdown file — so a doc cannot silently fall out of
the navigation graph. Exits nonzero listing every violation. No
third-party dependencies, so it runs the same on a dev box and in CI.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# The documentation contract: these files must exist, and the docs/ ones
# must be linked from at least one other markdown file.
REQUIRED_DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/POD_TOPOLOGY.md",
    "docs/RECOVERY.md",
    "docs/TESTING.md",
]

def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = []
    md_files = sorted(root.glob("*.md")) + sorted(root.glob("docs/**/*.md"))
    # repo-relative link targets, per linking file, for the reachability pass
    linked_from = {}  # target repo-relative posix path -> set of linkers
    for md in md_files:
        text = md.read_text(encoding="utf-8")
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = md.parent / path
            if not resolved.exists():
                line = text.count("\n", 0, match.start()) + 1
                broken.append(f"{md.relative_to(root)}:{line}: {target}")
                continue
            rel = resolved.resolve().relative_to(root).as_posix()
            linked_from.setdefault(rel, set()).add(
                md.relative_to(root).as_posix())
    for doc in REQUIRED_DOCS:
        if not (root / doc).exists():
            broken.append(f"required document missing: {doc}")
        elif doc.startswith("docs/"):
            linkers = linked_from.get(doc, set()) - {doc}
            if not linkers:
                broken.append(
                    f"required document not linked from any other "
                    f"markdown file: {doc}")
    if broken:
        print("documentation check failures:")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"checked {len(md_files)} markdown files: all relative links "
          f"resolve; {len(REQUIRED_DOCS)} required docs present and "
          f"cross-referenced")
    return 0

if __name__ == "__main__":
    sys.exit(main())
