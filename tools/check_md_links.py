#!/usr/bin/env python3
"""Checks that every relative markdown link in the repo resolves.

Scans all tracked *.md files (repo root and docs/), extracts inline
[text](target) links, and verifies that non-URL, non-anchor targets name
an existing file or directory relative to the linking file. Exits nonzero
listing every broken link. No third-party dependencies, so it runs the
same on a dev box and in CI.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = []
    md_files = sorted(root.glob("*.md")) + sorted(root.glob("docs/**/*.md"))
    for md in md_files:
        text = md.read_text(encoding="utf-8")
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (md.parent / path).exists():
                line = text.count("\n", 0, match.start()) + 1
                broken.append(f"{md.relative_to(root)}:{line}: {target}")
    if broken:
        print("broken markdown links:")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"checked {len(md_files)} markdown files: all relative links resolve")
    return 0

if __name__ == "__main__":
    sys.exit(main())
