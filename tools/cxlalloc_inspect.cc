/// @file
/// Introspection CLI for the simulator's instrumentation inventory.
///
///   cxlalloc_inspect --list-crashpoints
///
/// prints every registered crash-injection point as `id<TAB>name<TAB>site`,
/// one per line, sorted by id. Sweep scripts iterate this instead of
/// hard-coding point numbers, so adding a crash point to any layer
/// automatically widens every sweep.

#include <cstring>
#include <iostream>

#include "cxlalloc/recovery.h"
#include "memento/recoverable_map.h"
#include "memento/recoverable_queue.h"
#include "pod/crashpoint.h"

namespace {

int
list_crashpoints()
{
    // Pull in every layer's points without building heaps.
    cxlalloc::register_crash_points();
    memento::register_queue_crash_points();
    memento::register_map_crash_points();

    for (const pod::CrashPointInfo& point :
         pod::CrashPointRegistry::instance().all()) {
        std::cout << point.id << '\t' << point.name << '\t' << point.site
                  << '\n';
    }
    return 0;
}

void
usage(const char* argv0)
{
    std::cerr << "usage: " << argv0 << " --list-crashpoints\n";
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc == 2 && std::strcmp(argv[1], "--list-crashpoints") == 0) {
        return list_crashpoints();
    }
    usage(argv[0]);
    return argc == 2 && std::strcmp(argv[1], "--help") == 0 ? 0 : 2;
}
