/// @file
/// Introspection CLI for the simulator's instrumentation inventory.
///
///   cxlalloc_inspect --list-crashpoints
///   cxlalloc_inspect --list-faultpoints
///
/// prints every registered crash-injection (resp. pod fault-injection)
/// point as `id<TAB>name<TAB>site`, one per line, sorted by id. Sweep
/// scripts iterate this instead of hard-coding point numbers, so adding a
/// point to any layer automatically widens every sweep — crash points
/// cover where a *thread* can die mid-protocol, fault points cover which
/// *infrastructure* failures (edge down/flap, NMP stall/delay, host kill)
/// a storm can inject (see pod/faults.h).

#include <cstring>
#include <iostream>

#include "cxlalloc/migrate.h"
#include "cxlalloc/recovery.h"
#include "memento/recoverable_map.h"
#include "memento/recoverable_queue.h"
#include "pod/crashpoint.h"
#include "pod/faults.h"

namespace {

int
list_crashpoints()
{
    // Pull in every layer's points without building heaps.
    cxlalloc::register_crash_points();
    cxlalloc::register_migrate_crash_points();
    memento::register_queue_crash_points();
    memento::register_map_crash_points();

    for (const pod::CrashPointInfo& point :
         pod::CrashPointRegistry::instance().all()) {
        std::cout << point.id << '\t' << point.name << '\t' << point.site
                  << '\n';
    }
    return 0;
}

int
list_faultpoints()
{
    pod::register_fault_points();

    for (const pod::FaultPointInfo& point :
         pod::FaultPointRegistry::instance().all()) {
        std::cout << point.id << '\t' << point.name << '\t' << point.site
                  << '\n';
    }
    return 0;
}

void
usage(const char* argv0)
{
    std::cerr << "usage: " << argv0
              << " --list-crashpoints | --list-faultpoints\n";
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc == 2 && std::strcmp(argv[1], "--list-crashpoints") == 0) {
        return list_crashpoints();
    }
    if (argc == 2 && std::strcmp(argv[1], "--list-faultpoints") == 0) {
        return list_faultpoints();
    }
    usage(argv[0]);
    return argc == 2 && std::strcmp(argv[1], "--help") == 0 ? 0 : 2;
}
