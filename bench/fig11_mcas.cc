/// Fig. 11 (paper §5.4.1): latency percentiles of a compare-and-swap on a
/// CXL memory location under three implementations —
///   sw_cas        CPU CAS benefiting from the cache (needs HWcc),
///   sw_flush_cas  cacheline flush then CAS (software mCAS emulation),
///   hw_cas        the NMP mCAS engine (works with NO HWcc).
///
/// Per-operation latency is computed from the calibrated model plus the
/// run's ACTUAL conflict/failure behaviour on the shared word (threads
/// hammer one location concurrently), with multiplicative jitter so tails
/// are visible; the engine's conflict counters come from the real NMP
/// simulation.
///
/// A second section compares the engine's two submission disciplines on
/// striped counters: one doorbell per operand (serial) vs a ring of up to
/// kNmpRingSlots independent operands per doorbell (batched), where the
/// ~2.3 us round trip is paid once per ring and each extra operand costs
/// only the engine's serialized CAS pass (mcas_batch_slot_ns).

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "cxl/latency_model.h"
#include "cxl/mem_ops.h"
#include "pod/pod.h"
#include "support.h"

namespace {

constexpr std::uint64_t kOpsPerThread = 20'000;
constexpr cxl::HeapOffset kTarget = 256; // the contended word

enum class Impl { SwCas, SwFlushCas, HwCas };

const char*
to_string(Impl i)
{
    switch (i) {
      case Impl::SwCas:
        return "sw_cas";
      case Impl::SwFlushCas:
        return "sw_flush_cas";
      case Impl::HwCas:
        return "hw_cas";
    }
    return "?";
}

/// Runs one (impl, threads) cell; returns its scoped metrics snapshot.
/// Latencies land in a fixed-footprint histogram per worker shard instead
/// of the unbounded per-thread sample vectors this bench used to keep.
obs::MetricsSnapshot
run(Impl impl, std::uint32_t threads)
{
    obs::MetricsRegistry reg;
    obs::MetricId hist = reg.histogram("cas_ns");
    obs::MetricId ops = reg.counter("cas_logical_ops");
    pod::PodConfig pc;
    pc.device.size = 1 << 20;
    pc.device.mode = impl == Impl::HwCas ? cxl::CoherenceMode::NoHwcc
                                         : cxl::CoherenceMode::PartialHwcc;
    pc.device.sync_region_size = 64 << 10;
    pod::Pod pod(pc);
    pod::Process* proc = pod.create_process();

    cxl::LatencyModel model = impl == Impl::HwCas
                                  ? cxl::LatencyModel::cxl_mcas()
                                  : (impl == Impl::SwCas
                                         ? cxl::LatencyModel::cxl_hwcc()
                                         : cxl::LatencyModel::cxl_flush_cas());

    std::vector<std::thread> workers;
    for (std::uint32_t w = 0; w < threads; w++) {
        workers.emplace_back([&, w] {
            auto ctx = pod.create_thread(proc);
            cxl::MemSession& mem = ctx->mem();
            cxlcommon::Xoshiro rng(w + 1);
            obs::MetricsShard& shard = reg.shard(w + 1);
            for (std::uint64_t i = 0; i < kOpsPerThread; i++) {
                // One logical CAS = retry until success; latency is the
                // sum of attempt costs observed on the real shared word.
                std::uint64_t ns = 0;
                std::uint64_t expected = mem.atomic_load64(kTarget);
                if (impl == Impl::SwFlushCas) {
                    // Flush the target line, so the operand read (and the
                    // CAS) must go to CXL memory.
                    ns += model.flush_ns + model.read_ns;
                } else {
                    // Operand read hits the cache (sw_cas) or rides the
                    // spwr (hw_cas, already in mcas_ns).
                    ns += model.cached_ns;
                }
                while (true) {
                    bool ok = mem.cas64(kTarget, expected, expected + 1);
                    if (impl == Impl::HwCas) {
                        ns += model.mcas_ns;
                        if (!ok) {
                            ns += model.mcas_conflict_ns;
                        }
                    } else {
                        ns += model.cas_ns;
                        if (!ok) {
                            ns += model.cas_contended_ns;
                        }
                    }
                    if (ok) {
                        break;
                    }
                    if (impl == Impl::SwFlushCas) {
                        ns += model.flush_ns;
                    }
                }
                // Steady-state contention cost that one serialized core
                // cannot produce natively: with k hosts hammering one line,
                // a coherent CAS virtually always finds the line remote
                // (back-invalidation ping-pong, cost ~ k), while the NMP
                // engine only queues (milder slope) — the crossover the
                // paper measures.
                if (impl == Impl::HwCas) {
                    ns += model.mcas_conflict_ns * (threads - 1);
                } else {
                    ns += model.cas_contended_ns * (threads - 1) / 4;
                }
                // Multiplicative jitter (queueing, PCIe scheduling): keeps
                // p99/p99.9 tails meaningful.
                double j = 1.0 + 0.12 * rng.next_double() +
                           (rng.next_below(100) == 0
                                ? 2.0 + 4.0 * rng.next_double()
                                : 0.0);
                shard.record(hist, static_cast<std::uint64_t>(
                                       static_cast<double>(ns) * j));
                shard.add(ops);
            }
            mem.publish_metrics(reg);
            pod.release_thread(std::move(ctx));
        });
    }
    for (auto& th : workers) {
        th.join();
    }
    return reg.snapshot();
}

// ---------------- engine submission disciplines: serial vs batched -------

constexpr std::uint64_t kEngineOps = 10'000; ///< logical increments/thread
constexpr std::uint32_t kStripes = 64;       ///< independent counters
constexpr cxl::HeapOffset kStripeBase = 1024;

cxl::HeapOffset
stripe_off(std::uint32_t stripe)
{
    return kStripeBase + static_cast<cxl::HeapOffset>(stripe) * 64;
}

struct EngineCell {
    obs::MetricsSnapshot snap;
    std::uint64_t ops = 0;        ///< successful mCAS increments
    std::uint64_t max_sim_ns = 0; ///< modeled wall clock (slowest thread)
};

/// Runs one (discipline, threads) cell: every thread performs kEngineOps
/// successful increments on random stripes, through real MemSession mCAS
/// submission (sim_ns charged by the calibrated model, conflicts from the
/// real engine). Throughput = total ops / slowest thread's modeled time.
EngineCell
run_engine(bool batched, std::uint32_t threads)
{
    obs::MetricsRegistry reg;
    pod::PodConfig pc;
    pc.device.size = 1 << 20;
    pc.device.mode = cxl::CoherenceMode::NoHwcc;
    pc.device.sync_region_size = 64 << 10;
    pod::Pod pod(pc);
    pod::Process* proc = pod.create_process();
    cxl::LatencyModel model = cxl::LatencyModel::cxl_mcas();

    std::vector<std::uint64_t> sim_ns(threads, 0);
    std::vector<std::thread> workers;
    for (std::uint32_t w = 0; w < threads; w++) {
        workers.emplace_back([&, w] {
            auto ctx = pod.create_thread(proc);
            cxl::MemSession& mem = ctx->mem();
            mem.set_latency_model(&model);
            cxlcommon::Xoshiro rng(w + 1);
            cxl::McasBackoff backoff;
            std::uint64_t done = 0;
            if (!batched) {
                // One operand, one doorbell, one ~2.3 us round trip each.
                while (done < kEngineOps) {
                    cxl::HeapOffset t = stripe_off(rng.next_below(kStripes));
                    std::uint64_t expected = mem.atomic_load64(t);
                    if (mem.cas64(t, expected, expected + 1)) {
                        done++;
                    }
                }
            } else {
                // A window of consecutive stripes gives distinct targets
                // within the ring (a same-batch duplicate would doom
                // itself, Fig. 6(b)); windows of different threads overlap,
                // so cross-thread conflicts still occur and retry.
                while (done < kEngineOps) {
                    std::uint32_t base = rng.next_below(kStripes);
                    auto want = static_cast<std::uint32_t>(
                        std::min<std::uint64_t>(cxl::kNmpRingSlots,
                                                kEngineOps - done));
                    cxl::McasOperand ops[cxl::kNmpRingSlots];
                    for (std::uint32_t j = 0; j < want; j++) {
                        cxl::HeapOffset t =
                            stripe_off((base + j) % kStripes);
                        std::uint64_t cur = mem.atomic_load64(t);
                        ops[j] = cxl::McasOperand{
                            .target = t, .expected = cur, .swap = cur + 1};
                    }
                    cxl::McasResult results[cxl::kNmpRingSlots];
                    std::uint32_t accepted =
                        mem.mcas_batch(ops, want, results);
                    bool conflicted = false;
                    for (std::uint32_t k = 0; k < accepted; k++) {
                        if (results[k].success) {
                            done++;
                        } else {
                            conflicted |= results[k].conflict;
                        }
                    }
                    // Failed operands are simply retried on later windows;
                    // conflicts wait out the competing in-flight window.
                    if (conflicted) {
                        mem.charge(backoff.next_ns());
                    } else {
                        backoff.reset();
                    }
                }
            }
            sim_ns[w] = mem.sim_ns();
            mem.publish_metrics(reg);
            pod.release_thread(std::move(ctx));
        });
    }
    for (auto& th : workers) {
        th.join();
    }
    pod.nmp().publish_metrics(reg);

    EngineCell cell;
    cell.ops = static_cast<std::uint64_t>(threads) * kEngineOps;
    cell.max_sim_ns = *std::max_element(sim_ns.begin(), sim_ns.end());
    cell.snap = reg.snapshot();
    return cell;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    std::vector<std::uint32_t> thread_counts =
        opt.smoke ? std::vector<std::uint32_t>{1u, 4u}
                  : std::vector<std::uint32_t>{1u, 4u, 8u, 16u};

    std::puts("Fig. 11: CAS latency on a CXL memory location (modeled ns "
              "from calibrated costs + measured conflicts)");
    for (Impl impl : {Impl::SwCas, Impl::SwFlushCas, Impl::HwCas}) {
        for (std::uint32_t threads : thread_counts) {
            obs::MetricsSnapshot snap = run(impl, threads);
            std::printf("fig11  %-13s t=%-2u  %s\n", to_string(impl), threads,
                        obs::summary(*snap.histogram("cas_ns")).c_str());
            if (obs::MetricsRegistry* reg = bench::bundle_metrics()) {
                char prefix[48];
                std::snprintf(prefix, sizeof prefix, "fig11.%s.t%u.",
                              to_string(impl), threads);
                reg->absorb(snap, prefix);
            }
        }
        std::puts("");
    }
    std::puts("Paper shape (Fig. 11): sw_cas cheapest (cache-hit CAS, needs "
              "HWcc); at 1 thread hw_cas p50 ~2.3us is slower than");
    std::puts("sw_flush_cas, but at 16 threads hw_cas beats sw_flush_cas "
              "(~17% lower p50, ~20% lower p99): the engine serializes");
    std::puts("instead of bouncing cachelines. Neither sw variant is safe "
              "without inter-host HWcc.");
    std::puts("");

    std::printf("Fig. 11 (batched): engine throughput on %u striped "
                "counters, one doorbell per operand vs per ring\n",
                kStripes);
    std::vector<std::uint32_t> engine_threads =
        opt.smoke ? std::vector<std::uint32_t>{1u, 8u}
                  : std::vector<std::uint32_t>{1u, 2u, 4u, 8u, 16u};
    double serial_t8 = 0.0;
    double batched_t8 = 0.0;
    for (bool batched : {false, true}) {
        const char* name = batched ? "eng_batched" : "eng_serial";
        for (std::uint32_t threads : engine_threads) {
            EngineCell cell = run_engine(batched, threads);
            double mops =
                cell.max_sim_ns == 0
                    ? 0.0
                    : static_cast<double>(cell.ops) * 1e3 /
                          static_cast<double>(cell.max_sim_ns);
            const obs::Histogram* occ =
                cell.snap.histogram("nmp.batch_occupancy");
            std::printf("fig11  %-13s t=%-2u  %8.2f Mops/s  "
                        "conflicts=%-7llu occupancy=%.2f\n",
                        name, threads, mops,
                        static_cast<unsigned long long>(
                            cell.snap.counter("mem.mcas_conflicts")),
                        occ != nullptr ? occ->mean() : 0.0);
            if (threads == 8) {
                (batched ? batched_t8 : serial_t8) = mops;
            }
            if (obs::MetricsRegistry* reg = bench::bundle_metrics()) {
                char prefix[48];
                std::snprintf(prefix, sizeof prefix, "fig11.%s.t%u.", name,
                              threads);
                reg->absorb(cell.snap, prefix);
            }
        }
        std::puts("");
    }
    if (serial_t8 > 0.0 && batched_t8 > 0.0) {
        std::printf("fig11  batched/serial at t=8: %.2fx — the ~2.3us "
                    "round trip is paid once per ring of up to %u "
                    "operands, each extra operand costing only the "
                    "engine's serialized CAS pass\n",
                    batched_t8 / serial_t8, cxl::kNmpRingSlots);
    }
    bench::finish_metrics(opt);
    return 0;
}
