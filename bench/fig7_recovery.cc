/// Fig. 7 (paper §5.2.1): execution time of inserting and removing objects
/// through Memento-style recoverable data structures (queue and hashmap)
/// under 0, 1 or 2 thread crashes during the insertion phase, comparing:
///   cxlalloc     non-blocking recovery from the 8-byte redo record;
///   ralloc-leak  no allocator recovery: the dead thread's cached blocks
///                leak (reported in KiB);
///   ralloc-gc    blocking garbage collection: all threads stop while the
///                heap is scanned (GC share of runtime reported).

#include <chrono>
#include <cstdio>
#include <set>
#include <shared_mutex>
#include <thread>

#include "memento/recoverable_map.h"
#include "memento/recoverable_queue.h"
#include "support.h"

namespace {

constexpr std::uint32_t kThreads = 4;
constexpr std::uint64_t kObjects = 120'000;
constexpr std::uint64_t kBuckets = 1 << 15;

enum class Variant { Cxlalloc, RallocLeak, RallocGc };

const char*
to_string(Variant v)
{
    switch (v) {
      case Variant::Cxlalloc:
        return "cxlalloc";
      case Variant::RallocLeak:
        return "ralloc-leak";
      case Variant::RallocGc:
        return "ralloc-gc";
    }
    return "?";
}

struct Outcome {
    double total_s = 0;
    double gc_s = 0;
    std::uint64_t leaked_bytes = 0;
};

/// One run over either structure. Crashing threads die once at a random
/// point of their insert quota, are adopted, recovered, and finish.
template <bool UseMap>
Outcome
run(Variant variant, std::uint32_t crash_threads)
{
    bench::Geometry geom;
    geom.small_slabs = 4096; // object sizes 8 B - 1 KiB
    geom.full_hwcc = true;   // Fig. 7 runs on the DRAM machine
    geom.extra_bytes = memento::RecoverableQueue::meta_size() +
                       memento::RecoverableMap::meta_size() +
                       kv::HashTable::footprint(kBuckets);
    std::string alloc_name =
        variant == Variant::Cxlalloc ? "cxlalloc" : "ralloc-like";
    bench::Bundle b = bench::make_bundle(alloc_name, geom);

    cxl::HeapOffset at = b.extra_base;
    memento::RecoverableQueue queue(*b.pod, at, b.alloc.get());
    at += memento::RecoverableQueue::meta_size();
    cxl::HeapOffset mmeta = at;
    at += memento::RecoverableMap::meta_size();
    memento::RecoverableMap map(*b.pod, mmeta, at, kBuckets, b.alloc.get());

    auto* ralloc = dynamic_cast<baselines::Rallocish*>(b.alloc.get());

    // Heap-access gate: ralloc-gc blocks every thread during collection
    // (the paper's point); workers hold it shared per operation.
    std::shared_mutex gate;
    Outcome out;
    std::mutex out_mu;

    std::uint64_t quota = kObjects / kThreads;
    auto t0 = std::chrono::steady_clock::now();

    auto insert_one = [&](pod::ThreadContext& ctx, std::uint32_t w,
                          std::uint64_t i) {
        cxlcommon::Xoshiro size_rng(w * 1'000'003 + i);
        std::uint64_t size = 8 + size_rng.next_below(1017); // 8 B - 1 KiB
        if (UseMap) {
            map.insert(ctx, w * quota + i, static_cast<std::uint32_t>(size));
        } else {
            queue.push(ctx, size, static_cast<unsigned char>(i));
        }
    };

    std::vector<std::thread> workers;
    for (std::uint32_t w = 0; w < kThreads; w++) {
        workers.emplace_back([&, w] {
            auto ctx = b.thread();
            bool should_crash = w < crash_threads;
            cxlcommon::Xoshiro rng(w + 77);
            std::uint64_t crash_at =
                should_crash ? quota / 4 + rng.next_below(quota / 2) : quota;
            ctx->arm_crash(UseMap ? memento::mcrash::kMapAfterLink
                                  : memento::qcrash::kAfterLink,
                           static_cast<std::uint32_t>(crash_at));
            for (std::uint64_t i = 0; i < quota; i++) {
                std::shared_lock<std::shared_mutex> held(gate);
                try {
                    insert_one(*ctx, w, i);
                } catch (const pod::ThreadCrashed&) {
                    held.unlock();
                    // ---- the crash + recovery path ----
                    cxl::ThreadId tid = ctx->tid();
                    b.pod->mark_crashed(std::move(ctx));
                    ctx = b.pod->adopt_thread(b.process, tid);
                    b.alloc->attach_thread(*ctx);
                    if (variant == Variant::Cxlalloc) {
                        // Non-blocking: only this thread does work.
                        b.cxl_heap->recover(*ctx);
                    } else if (variant == Variant::RallocGc) {
                        // Blocking: stop the world, scan the heap.
                        std::unique_lock<std::shared_mutex> stop(gate);
                        auto g0 = std::chrono::steady_clock::now();
                        ralloc->flush_all_caches(ctx->mem());
                        std::set<cxl::HeapOffset> live;
                        if (UseMap) {
                            map.for_each_node([&](cxl::HeapOffset n) {
                                live.insert(n);
                            });
                        } else {
                            queue.for_each(*ctx, [&](cxl::HeapOffset n) {
                                live.insert(n);
                            });
                        }
                        ralloc->recover_gc(ctx->mem(),
                                           [&](cxl::HeapOffset block) {
                                               return live.count(block) > 0;
                                           });
                        double gc = std::chrono::duration<double>(
                                        std::chrono::steady_clock::now() - g0)
                                        .count();
                        std::lock_guard<std::mutex> lk(out_mu);
                        out.gc_s += gc;
                    }
                    // ralloc-leak: no allocator recovery at all.
                    // Structure-level recovery (completes the in-flight
                    // publication) applies to every variant:
                    std::shared_lock<std::shared_mutex> again(gate);
                    if (UseMap) {
                        map.recover(*ctx);
                    } else {
                        queue.recover(*ctx);
                    }
                }
            }
            // ---- removal phase (each thread removes its share) ----
            for (std::uint64_t i = 0; i < quota; i++) {
                std::shared_lock<std::shared_mutex> held(gate);
                if (UseMap) {
                    map.remove(*ctx, w * quota + i);
                } else {
                    queue.pop(*ctx);
                }
            }
            if (ralloc != nullptr) {
                ralloc->flush_thread_cache(*ctx);
            }
            b.pod->release_thread(std::move(ctx));
        });
    }
    for (auto& th : workers) {
        th.join();
    }
    out.total_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    if (variant == Variant::RallocLeak && ralloc != nullptr) {
        // Everything was removed; whatever is still unaccounted leaked
        // (the crashed threads' cached blocks).
        auto probe = b.thread();
        if (UseMap) {
            // Retired-but-unreclaimed nodes sit in EBR limbo, not leaked:
            // return them to the allocator before accounting.
            map.table().quiesce(*probe);
            if (ralloc != nullptr) {
                ralloc->flush_all_caches(probe->mem());
            }
        }
        std::set<cxl::HeapOffset> live;
        if (UseMap) {
            map.for_each_node([&](cxl::HeapOffset n) { live.insert(n); });
        } else {
            queue.for_each(*probe, [&](cxl::HeapOffset n) {
                live.insert(n);
            });
        }
        out.leaked_bytes = ralloc->leaked_bytes(
            probe->mem(),
            [&](cxl::HeapOffset blk) { return live.count(blk) > 0; });
        b.pod->release_thread(std::move(probe));
    }
    return out;
}

template <bool UseMap>
void
series(const char* label)
{
    for (Variant v :
         {Variant::Cxlalloc, Variant::RallocLeak, Variant::RallocGc}) {
        for (std::uint32_t crashes : {0u, 1u, 2u}) {
            Outcome o = run<UseMap>(v, crashes);
            char extra[64] = "";
            if (v == Variant::RallocGc && crashes > 0) {
                std::snprintf(extra, sizeof extra, "GC %4.1f%%",
                              100.0 * o.gc_s / o.total_s);
            } else if (v == Variant::RallocLeak && crashes > 0) {
                std::snprintf(extra, sizeof extra, "Leak %.1f KiB",
                              static_cast<double>(o.leaked_bytes) / 1024.0);
            }
            std::printf("fig7   %-8s %-12s crashes=%u  %7.3f s  %s\n", label,
                        to_string(v), crashes, o.total_s, extra);
        }
    }
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    std::printf("Fig. 7: insert+remove %llu objects (8 B-1 KiB) through "
                "recoverable structures with 0/1/2 thread crashes\n\n",
                static_cast<unsigned long long>(kObjects));
    series<false>("queue");
    std::puts("");
    series<true>("hashmap");
    std::puts("\nPaper shape (Fig. 7): cxlalloc's time is flat in the crash "
              "count (non-blocking recovery, no leak);");
    std::puts("ralloc must either leak tens of KiB per crash (ralloc-leak) "
              "or block all threads in GC (ralloc-gc, a large");
    std::puts("share of execution time).");
    bench::finish_metrics(opt);
    return 0;
}
