/// Google-benchmark microbenchmarks of raw allocator primitives: per-op
/// cost of the fast path (alloc/free same thread), the remote-free path,
/// and cxlalloc's recoverable vs non-recoverable ablation. Complements the
/// paper-figure harnesses with statistically-managed single-op timings.

#include <benchmark/benchmark.h>

#include "support.h"
#include "workload/micro.h"

namespace {

/// alloc+free pair on the fast path, per allocator.
void
BM_AllocFreePair(benchmark::State& state, const std::string& name)
{
    bench::Geometry geom;
    geom.small_slabs = 512;
    geom.large_slabs = 8;
    geom.huge_regions = 2;
    bench::Bundle b = bench::make_bundle(name, geom);
    auto ctx = b.thread();
    for (auto _ : state) {
        cxl::HeapOffset p = b.alloc->allocate(*ctx, 64);
        benchmark::DoNotOptimize(p);
        b.alloc->deallocate(*ctx, p);
    }
    state.SetItemsProcessed(state.iterations() * 2);
    b.pod->release_thread(std::move(ctx));
}

/// Remote-free round trip: thread A allocates a batch, thread B frees it.
void
BM_RemoteFreeBatch(benchmark::State& state, const std::string& name)
{
    bench::Geometry geom;
    geom.small_slabs = 512;
    geom.large_slabs = 8;
    geom.huge_regions = 2;
    bench::Bundle b = bench::make_bundle(name, geom);
    auto producer = b.thread();
    auto consumer = b.thread();
    constexpr int kBatch = 64;
    std::vector<cxl::HeapOffset> batch(kBatch);
    for (auto _ : state) {
        for (auto& p : batch) {
            p = b.alloc->allocate(*producer, 64);
        }
        for (auto p : batch) {
            b.alloc->deallocate(*consumer, p);
        }
    }
    state.SetItemsProcessed(state.iterations() * kBatch * 2);
    b.pod->release_thread(std::move(producer));
    b.pod->release_thread(std::move(consumer));
}

/// cxlalloc fast path under mCAS memory mode (no HWcc): local operations
/// must not touch the NMP engine.
void
BM_CxlallocMcasFastPath(benchmark::State& state)
{
    bench::Geometry geom;
    geom.small_slabs = 512;
    geom.large_slabs = 8;
    geom.huge_regions = 2;
    bench::Bundle b =
        bench::make_bundle("cxlalloc", geom, bench::MemoryMode::CxlMcas);
    auto ctx = b.thread();
    for (auto _ : state) {
        cxl::HeapOffset p = b.alloc->allocate(*ctx, 64);
        benchmark::DoNotOptimize(p);
        b.alloc->deallocate(*ctx, p);
    }
    state.counters["mcas_ops"] = static_cast<double>(
        ctx->mem().counters().mcas_ops);
    b.pod->release_thread(std::move(ctx));
}

} // namespace

BENCHMARK_CAPTURE(BM_AllocFreePair, cxlalloc, std::string("cxlalloc"));
BENCHMARK_CAPTURE(BM_AllocFreePair, cxlalloc_nonrec,
                  std::string("cxlalloc-nonrecoverable"));
BENCHMARK_CAPTURE(BM_AllocFreePair, mimalloc_like,
                  std::string("mimalloc-like"));
BENCHMARK_CAPTURE(BM_AllocFreePair, ralloc_like, std::string("ralloc-like"));
BENCHMARK_CAPTURE(BM_AllocFreePair, cxl_shm_like,
                  std::string("cxl-shm-like"));
BENCHMARK_CAPTURE(BM_AllocFreePair, boost_like, std::string("boost-like"));
BENCHMARK_CAPTURE(BM_AllocFreePair, lightning_like,
                  std::string("lightning-like"));
BENCHMARK_CAPTURE(BM_RemoteFreeBatch, cxlalloc, std::string("cxlalloc"));
BENCHMARK_CAPTURE(BM_RemoteFreeBatch, mimalloc_like,
                  std::string("mimalloc-like"));
BENCHMARK_CAPTURE(BM_RemoteFreeBatch, ralloc_like,
                  std::string("ralloc-like"));
BENCHMARK(BM_CxlallocMcasFastPath);

// Custom main instead of BENCHMARK_MAIN(): peel off the repo-wide metrics
// flags (which google-benchmark would reject) before handing the rest over.
int
main(int argc, char** argv)
{
    std::vector<char*> gb_args;
    std::vector<char*> our_args;
    gb_args.push_back(argv[0]);
    our_args.push_back(argv[0]);
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--metrics-json" || a == "--metrics-csv") {
            our_args.push_back(argv[i]);
            if (i + 1 < argc) {
                our_args.push_back(argv[++i]);
            }
        } else if (a == "--smoke") {
            our_args.push_back(argv[i]);
        } else {
            gb_args.push_back(argv[i]);
        }
    }
    bench::Options opt = bench::parse_options(
        static_cast<int>(our_args.size()), our_args.data());

    int gb_argc = static_cast<int>(gb_args.size());
    benchmark::Initialize(&gb_argc, gb_args.data());
    if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::finish_metrics(opt);
    return 0;
}
