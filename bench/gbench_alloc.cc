/// Google-benchmark microbenchmarks of raw allocator primitives: per-op
/// cost of the fast path (alloc/free same thread), the remote-free path,
/// and cxlalloc's recoverable vs non-recoverable ablation. Complements the
/// paper-figure harnesses with statistically-managed single-op timings.
///
/// Besides ns/op, every series reports simulated mem-ops/op (MemSession
/// loads + stores per alloc-or-free), the counter that carries Figs. 9/12:
/// wall-clock ns can hide software overhead that the simulated-access
/// model charges in full.

#include <benchmark/benchmark.h>

#include "support.h"
#include "workload/micro.h"

namespace {

/// Snapshots a session's simulated-memory counters around the timed loop
/// and reports mem-ops/op next to google-benchmark's ns/op. When metrics
/// are enabled (--metrics-json), also publishes the session counters and a
/// per-series gauge into the global registry so the exported snapshot
/// carries the per-op numbers.
class MemOpsProbe {
  public:
    explicit MemOpsProbe(cxl::MemSession& mem)
        : mem_(mem), loads0_(mem.counters().loads),
          stores0_(mem.counters().stores),
          fences0_(mem.counters().fences),
          flushed0_(mem.counters().flushed_lines)
    {
    }

    void
    report(benchmark::State& state, std::uint64_t ops,
           const std::string& label)
    {
        if (ops == 0) {
            return;
        }
        auto loads = static_cast<double>(mem_.counters().loads - loads0_);
        auto stores = static_cast<double>(mem_.counters().stores - stores0_);
        auto fences = static_cast<double>(mem_.counters().fences - fences0_);
        auto flushed =
            static_cast<double>(mem_.counters().flushed_lines - flushed0_);
        auto n = static_cast<double>(ops);
        state.counters["loads_per_op"] = loads / n;
        state.counters["stores_per_op"] = stores / n;
        state.counters["mem_ops_per_op"] = (loads + stores) / n;
        // The fence-elision scoreboard: ordering instructions per op are
        // what the deferred-record + dirty-line work drives down, and the
        // CI budget gate holds them down (verify_metrics_json --budget).
        state.counters["fences_per_op"] = fences / n;
        state.counters["flushed_lines_per_op"] = flushed / n;
        if (obs::MetricsRegistry* reg = bench::bundle_metrics()) {
            mem_.publish_metrics(*reg);
            obs::MetricsShard& sh = reg->shard(mem_.tid());
            sh.add(reg->counter("run.ops"), ops);
            reg->set_gauge(reg->gauge("gbench." + label + ".mem_ops_per_op"),
                           (loads + stores) / n);
            reg->set_gauge(reg->gauge("gbench." + label + ".fences_per_op"),
                           fences / n);
            reg->set_gauge(
                reg->gauge("gbench." + label + ".flushed_lines_per_op"),
                flushed / n);
        }
    }

  private:
    cxl::MemSession& mem_;
    std::uint64_t loads0_;
    std::uint64_t stores0_;
    std::uint64_t fences0_;
    std::uint64_t flushed0_;
};

/// alloc+free pair on the fast path, per allocator. The size argument
/// selects the small-heap class: 8 B is the paper's worst case for
/// per-slab bitset scans (4096 blocks = 64 words), 64 B the common case.
void
BM_AllocFreePair(benchmark::State& state, const std::string& name)
{
    const auto size = static_cast<std::uint64_t>(state.range(0));
    bench::Geometry geom;
    geom.small_slabs = 512;
    geom.large_slabs = 8;
    geom.huge_regions = 2;
    bench::Bundle b = bench::make_bundle(name, geom);
    auto ctx = b.thread();
    MemOpsProbe probe(ctx->mem());
    for (auto _ : state) {
        cxl::HeapOffset p = b.alloc->allocate(*ctx, size);
        benchmark::DoNotOptimize(p);
        b.alloc->deallocate(*ctx, p);
    }
    state.SetItemsProcessed(state.iterations() * 2);
    probe.report(state, state.iterations() * 2,
                 "alloc_free_pair." + name + ".sz" + std::to_string(size));
    b.pod->release_thread(std::move(ctx));
}

/// Remote-free round trip: thread A allocates a batch, thread B frees it.
void
BM_RemoteFreeBatch(benchmark::State& state, const std::string& name)
{
    bench::Geometry geom;
    geom.small_slabs = 512;
    geom.large_slabs = 8;
    geom.huge_regions = 2;
    bench::Bundle b = bench::make_bundle(name, geom);
    auto producer = b.thread();
    auto consumer = b.thread();
    constexpr int kBatch = 64;
    std::vector<cxl::HeapOffset> batch(kBatch);
    MemOpsProbe probe(consumer->mem());
    for (auto _ : state) {
        for (auto& p : batch) {
            p = b.alloc->allocate(*producer, 64);
        }
        for (auto p : batch) {
            b.alloc->deallocate(*consumer, p);
        }
    }
    state.SetItemsProcessed(state.iterations() * kBatch * 2);
    probe.report(state, state.iterations() * kBatch,
                 "remote_free." + name);
    b.pod->release_thread(std::move(producer));
    b.pod->release_thread(std::move(consumer));
}

/// cxlalloc fast path under mCAS memory mode (no HWcc): local operations
/// must not touch the NMP engine.
void
BM_CxlallocMcasFastPath(benchmark::State& state)
{
    bench::Geometry geom;
    geom.small_slabs = 512;
    geom.large_slabs = 8;
    geom.huge_regions = 2;
    bench::Bundle b =
        bench::make_bundle("cxlalloc", geom, bench::MemoryMode::CxlMcas);
    auto ctx = b.thread();
    MemOpsProbe probe(ctx->mem());
    for (auto _ : state) {
        cxl::HeapOffset p = b.alloc->allocate(*ctx, 64);
        benchmark::DoNotOptimize(p);
        b.alloc->deallocate(*ctx, p);
    }
    state.counters["mcas_ops"] = static_cast<double>(
        ctx->mem().counters().mcas_ops);
    state.SetItemsProcessed(state.iterations() * 2);
    probe.report(state, state.iterations() * 2, "mcas_fast_path.cxlalloc");
    b.pod->release_thread(std::move(ctx));
}

} // namespace

BENCHMARK_CAPTURE(BM_AllocFreePair, cxlalloc, std::string("cxlalloc"))
    ->Arg(8)
    ->Arg(64);
BENCHMARK_CAPTURE(BM_AllocFreePair, cxlalloc_nonrec,
                  std::string("cxlalloc-nonrecoverable"))
    ->Arg(8)
    ->Arg(64);
BENCHMARK_CAPTURE(BM_AllocFreePair, mimalloc_like,
                  std::string("mimalloc-like"))
    ->Arg(64);
BENCHMARK_CAPTURE(BM_AllocFreePair, ralloc_like, std::string("ralloc-like"))
    ->Arg(64);
BENCHMARK_CAPTURE(BM_AllocFreePair, cxl_shm_like,
                  std::string("cxl-shm-like"))
    ->Arg(64);
BENCHMARK_CAPTURE(BM_AllocFreePair, boost_like, std::string("boost-like"))
    ->Arg(64);
BENCHMARK_CAPTURE(BM_AllocFreePair, lightning_like,
                  std::string("lightning-like"))
    ->Arg(64);
BENCHMARK_CAPTURE(BM_RemoteFreeBatch, cxlalloc, std::string("cxlalloc"));
BENCHMARK_CAPTURE(BM_RemoteFreeBatch, mimalloc_like,
                  std::string("mimalloc-like"));
BENCHMARK_CAPTURE(BM_RemoteFreeBatch, ralloc_like,
                  std::string("ralloc-like"));
BENCHMARK(BM_CxlallocMcasFastPath);

// Custom main instead of BENCHMARK_MAIN(): peel off the repo-wide metrics
// flags (which google-benchmark would reject) before handing the rest over.
int
main(int argc, char** argv)
{
    std::vector<char*> gb_args;
    std::vector<char*> our_args;
    gb_args.push_back(argv[0]);
    our_args.push_back(argv[0]);
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--metrics-json" || a == "--metrics-csv") {
            our_args.push_back(argv[i]);
            if (i + 1 < argc) {
                our_args.push_back(argv[++i]);
            }
        } else if (a == "--smoke") {
            our_args.push_back(argv[i]);
        } else {
            gb_args.push_back(argv[i]);
        }
    }
    bench::Options opt = bench::parse_options(
        static_cast<int>(our_args.size()), our_args.data());
    // Smoke mode (CI): short measurement windows; the per-op counters are
    // deterministic, so a short run reports the same mem-ops/op.
    static std::string min_time = "--benchmark_min_time=0.05";
    if (opt.smoke) {
        gb_args.push_back(min_time.data());
    }

    int gb_argc = static_cast<int>(gb_args.size());
    benchmark::Initialize(&gb_argc, gb_args.data());
    if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::finish_metrics(opt);
    return 0;
}
