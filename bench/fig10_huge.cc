/// Fig. 10 (paper §5.3): huge-allocation microbenchmarks — threadtest-huge
/// and xmalloc-huge with increasing thread counts distributed over
/// different process counts. cxlalloc only: "there are no baselines
/// because every other allocator crashes or does not complete".
///
/// Objects are 8 MiB here (the paper uses 1 GiB on a 64 GiB heap; the
/// ratio of object to heap size is preserved). PC-T mapping checks are ON,
/// so cross-process faults and hazard-offset traffic are exercised for
/// real — xmalloc's consumer faults in every mapping the producer created.

#include <cstdio>

#include "support.h"
#include "workload/micro.h"

namespace {

constexpr std::uint64_t kObjectSize = 8 << 20;
constexpr std::uint64_t kPairsPerThread = 48;

bench::Geometry
huge_geometry(std::uint32_t threads)
{
    bench::Geometry geom;
    geom.small_slabs = 64;
    geom.large_slabs = 8;
    geom.huge_regions = threads * 6 + 8;
    geom.huge_region_size = kObjectSize;
    geom.checked_mappings = true;
    return geom;
}

/// Runs body threads spread over @p processes pod processes.
template <typename Body>
bench::RunResult
run_spread(bench::Bundle& b, std::uint32_t threads, std::uint32_t processes,
           Body&& body)
{
    std::vector<pod::Process*> procs(processes);
    procs[0] = b.process;
    for (std::uint32_t p = 1; p < processes; p++) {
        procs[p] = b.pod->create_process();
        b.cxl_heap->attach(*procs[p]);
    }
    std::vector<std::thread> workers;
    std::vector<std::uint64_t> ops(threads, 0);
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t w = 0; w < threads; w++) {
        workers.emplace_back([&, w] {
            auto ctx = b.thread(procs[w % processes]);
            ops[w] = body(*ctx, w);
            b.pod->release_thread(std::move(ctx));
        });
    }
    for (auto& th : workers) {
        th.join();
    }
    bench::RunResult r;
    r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
    for (auto o : ops) {
        r.ops += o;
    }
    r.committed_bytes = b.pod->device().committed_bytes();
    r.hwcc_bytes = b.cxl_heap->layout().hwcc_bytes();
    return r;
}

void
threadtest_huge(std::uint32_t threads, std::uint32_t processes)
{
    bench::Bundle b = bench::make_bundle("cxlalloc", huge_geometry(threads));
    bench::RunResult r = run_spread(
        b, threads, processes, [&](pod::ThreadContext& ctx, std::uint32_t) {
            std::uint64_t pairs = 0;
            for (std::uint64_t round = 0; round < kPairsPerThread / 4;
                 round++) {
                cxl::HeapOffset held[4];
                for (auto& h : held) {
                    h = b.alloc->allocate(ctx, kObjectSize);
                    CXL_ASSERT(h != 0, "huge space exhausted");
                }
                for (auto h : held) {
                    b.alloc->deallocate(ctx, h);
                    pairs++;
                }
                b.cxl_heap->cleanup(ctx);
            }
            return 2 * pairs;
        });
    std::printf("fig10  threadtest-huge  p=%-2u t=%-2u  %9.1f Kops/s  "
                "mapped=%s\n",
                processes, threads, r.mops_wall() * 1000,
                cxlcommon::format_bytes(r.committed_bytes).c_str());
}

void
xmalloc_huge(std::uint32_t threads, std::uint32_t processes)
{
    bench::Bundle b = bench::make_bundle("cxlalloc", huge_geometry(threads));
    workload::XmallocRing ring(threads, /*ring_capacity=*/4);
    std::uint64_t faults_before = 0;
    bench::RunResult r = run_spread(
        b, threads, processes, [&](pod::ThreadContext& ctx, std::uint32_t w) {
            std::uint64_t done = workload::run_xmalloc(
                *b.alloc, ctx, ring, w, kPairsPerThread, kObjectSize,
                /*touch=*/true);
            b.cxl_heap->cleanup(ctx);
            return done;
        });
    (void)faults_before;
    std::printf("fig10  xmalloc-huge     p=%-2u t=%-2u  %9.1f Kops/s  "
                "mapped=%s\n",
                processes, threads, r.mops_wall() * 1000,
                cxlcommon::format_bytes(r.committed_bytes).c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    std::puts("Fig. 10: huge (8 MiB object) allocation microbenchmarks, "
              "thread count x process count (cxlalloc only;");
    std::puts("no baseline completes this workload). PC-T checks ON: "
              "cross-process faults + hazard offsets exercised.\n");
    for (std::uint32_t processes : {1u, 2u, 4u}) {
        for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
            if (threads < processes) {
                continue;
            }
            threadtest_huge(threads, processes);
        }
    }
    std::puts("");
    for (std::uint32_t processes : {1u, 2u, 4u}) {
        for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
            if (threads < processes) {
                continue;
            }
            xmalloc_huge(threads, processes);
        }
    }
    std::puts("\nPaper shape (Fig. 10): throughput bounded by OS mapping "
              "work, improving with process count (address-space");
    std::puts("parallelism); memory consumption stays modest because the "
              "benchmark never touches the data, only the mappings.");
    bench::finish_metrics(opt);
    return 0;
}
