/// CI gate for the --metrics-json export: parses a snapshot produced by a
/// bench run and asserts the cross-layer wiring actually fired — MemSession
/// event counters, allocator op counters, and at least one populated
/// latency histogram with ordered interpolated percentiles.
///
/// Usage: verify_metrics_json <snapshot.json> [--budget <baseline.json>]
///
/// With --budget, additionally enforces the fence/flush-line budget: every
/// per-op gauge in the baseline (gbench.*.{mem_ops,fences,flushed_lines}
/// _per_op) must exist in the fresh snapshot and must not regress beyond
/// kBudgetRatio (plus a small absolute epsilon for near-zero gauges). This
/// is the CI gate that keeps the fence-elision work from silently rotting.
///
/// Pod-topology runs add pod.* summary gauges (pod.remote_op_ratio,
/// pod.steal_per_op — see docs/POD_TOPOLOGY.md) to the same gate: a change
/// that quietly starts routing host-local traffic over cross-host edges, or
/// stealing where home placement used to suffice, fails the budget.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

int failures = 0;

void
check(bool ok, const char* what)
{
    std::printf("%-60s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) {
        failures++;
    }
}

/// Sums all counters whose name starts with @p prefix.
std::uint64_t
prefixed_sum(const obs::json::Value& counters, const std::string& prefix)
{
    std::uint64_t total = 0;
    if (counters.kind() != obs::json::Kind::Object) {
        return 0;
    }
    for (const auto& [name, value] : counters.as_object()) {
        if (name.rfind(prefix, 0) == 0) {
            total += value.as_uint();
        }
    }
    return total;
}

/// Allowed regression: 15% relative plus an absolute slack of 0.1 events
/// per op (so a 0.0 baseline tolerates measurement jitter, not a rewrite).
constexpr double kBudgetRatio = 1.15;
constexpr double kBudgetEpsilon = 0.1;

bool
budget_gauge(const std::string& name)
{
    auto ends_with = [&](const char* suffix) {
        std::string s(suffix);
        return name.size() >= s.size() &&
               name.compare(name.size() - s.size(), s.size(), s) == 0;
    };
    if (name.rfind("gbench.", 0) == 0) {
        return ends_with(".mem_ops_per_op") || ends_with(".fences_per_op") ||
               ends_with(".flushed_lines_per_op");
    }
    if (name.rfind("pod.", 0) == 0) {
        // Placement-quality gauges: ratios and per-op rates only (the
        // pod.scale.* throughput gauges are informational, not budgeted) —
        // plus the fault storm's exact edge-down op count.
        return ends_with("_ratio") || ends_with("_per_op") ||
               name == "pod.edge_down_ops";
    }
    if (name.rfind("liveness.", 0) == 0 || name.rfind("evac.", 0) == 0) {
        // Fault-storm health gauges (BENCH_fault_storm.json): false-suspect
        // volume and evacuation work per op. A detector change that starts
        // suspecting healthy hosts, or an evacuation that balloons its
        // per-op block traffic, fails the budget.
        return true;
    }
    if (name.rfind("alloc.", 0) == 0) {
        // Tier-split quality (alloc.tier_dram_ratio): a placement change
        // that quietly stops using the DRAM tier fails the budget.
        return ends_with("_ratio");
    }
    if (name.rfind("migrate.", 0) == 0) {
        // Migration effectiveness: promotion volume and the per-op
        // demotion rate of the tiered sweep (BENCH_tiered.json).
        return true;
    }
    return false;
}

obs::json::Value
load_json(const char* path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(2);
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    obs::json::Value root = obs::json::parse(buf.str(), &err);
    if (root.is_null()) {
        std::fprintf(stderr, "JSON parse error in %s: %s\n", path,
                     err.c_str());
        std::exit(1);
    }
    return root;
}

/// Every budget gauge in @p baseline must be present in @p fresh and no
/// worse than ratio * baseline + epsilon.
void
check_budget(const obs::json::Value& fresh, const obs::json::Value& baseline)
{
    const obs::json::Value* base_g = baseline.find("gauges");
    const obs::json::Value* new_g = fresh.find("gauges");
    check(base_g != nullptr && base_g->kind() == obs::json::Kind::Object,
          "baseline gauges object present");
    check(new_g != nullptr && new_g->kind() == obs::json::Kind::Object,
          "snapshot gauges object present");
    if (base_g == nullptr || new_g == nullptr ||
        base_g->kind() != obs::json::Kind::Object ||
        new_g->kind() != obs::json::Kind::Object) {
        return;
    }
    std::size_t compared = 0;
    for (const auto& [name, base_value] : base_g->as_object()) {
        if (!budget_gauge(name)) {
            continue;
        }
        const obs::json::Value* now = new_g->find(name);
        if (now == nullptr) {
            std::fprintf(stderr, "  missing gauge %s\n", name.c_str());
            check(false, "budget gauge present in fresh snapshot");
            continue;
        }
        double base = base_value.as_number();
        double cur = now->as_number();
        double limit = base * kBudgetRatio + kBudgetEpsilon;
        compared++;
        if (cur > limit) {
            std::fprintf(stderr, "  %s: %.4f exceeds budget %.4f "
                                 "(baseline %.4f)\n",
                         name.c_str(), cur, limit, base);
            check(false, "per-op budget respected");
        }
    }
    check(compared > 0, "budget compared at least one gauge");
    std::printf("budget: %zu gauge(s) within %.0f%% + %.2f of baseline\n",
                compared, (kBudgetRatio - 1.0) * 100.0, kBudgetEpsilon);
}

} // namespace

int
main(int argc, char** argv)
{
    const char* budget_path = nullptr;
    if (argc == 4 && std::string(argv[2]) == "--budget") {
        budget_path = argv[3];
    } else if (argc != 2) {
        std::fprintf(stderr,
                     "usage: %s <snapshot.json> [--budget <baseline.json>]\n",
                     argv[0]);
        return 2;
    }
    obs::json::Value root = load_json(argv[1]);

    const obs::json::Value* schema = root.find("schema");
    check(schema != nullptr && schema->as_string() == "cxlalloc-metrics-v1",
          "schema is cxlalloc-metrics-v1");

    const obs::json::Value* counters = root.find("counters");
    check(counters != nullptr, "counters object present");
    if (counters != nullptr) {
        check(prefixed_sum(*counters, "mem.") > 0,
              "MemSession event counters (mem.*) nonzero");
        check(prefixed_sum(*counters, "alloc.") > 0,
              "allocator op counters (alloc.*) nonzero");
        check(prefixed_sum(*counters, "run.ops") > 0,
              "harness run.ops counter nonzero");
    }

    const obs::json::Value* hists = root.find("histograms");
    check(hists != nullptr, "histograms object present");
    bool populated = false;
    bool ordered = true;
    if (hists != nullptr && hists->kind() == obs::json::Kind::Object) {
        for (const auto& [name, h] : hists->as_object()) {
            if (h.find("count") == nullptr || h.find("count")->as_uint() == 0) {
                continue;
            }
            populated = true;
            double p50 = h.find("p50")->as_number();
            double p90 = h.find("p90")->as_number();
            double p99 = h.find("p99")->as_number();
            double p999 = h.find("p999")->as_number();
            double mn = h.find("min")->as_number();
            double mx = h.find("max")->as_number();
            bool this_ordered = mn <= p50 && p50 <= p90 && p90 <= p99 &&
                                p99 <= p999 && p999 <= mx;
            if (!this_ordered) {
                std::fprintf(stderr, "  unordered percentiles in %s\n",
                             name.c_str());
            }
            ordered = ordered && this_ordered;
        }
    }
    check(populated, "at least one histogram has samples");
    check(ordered, "percentiles ordered min<=p50<=p90<=p99<=p999<=max");

    if (budget_path != nullptr) {
        check_budget(root, load_json(budget_path));
    }

    if (failures != 0) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::puts("metrics snapshot verified");
    return 0;
}
