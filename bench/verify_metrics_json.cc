/// CI gate for the --metrics-json export: parses a snapshot produced by a
/// bench run and asserts the cross-layer wiring actually fired — MemSession
/// event counters, allocator op counters, and at least one populated
/// latency histogram with ordered interpolated percentiles.
///
/// Usage: verify_metrics_json <snapshot.json>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

int failures = 0;

void
check(bool ok, const char* what)
{
    std::printf("%-60s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) {
        failures++;
    }
}

/// Sums all counters whose name starts with @p prefix.
std::uint64_t
prefixed_sum(const obs::json::Value& counters, const std::string& prefix)
{
    std::uint64_t total = 0;
    if (counters.kind() != obs::json::Kind::Object) {
        return 0;
    }
    for (const auto& [name, value] : counters.as_object()) {
        if (name.rfind(prefix, 0) == 0) {
            total += value.as_uint();
        }
    }
    return total;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <snapshot.json>\n", argv[0]);
        return 2;
    }
    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[1]);
        return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();

    std::string err;
    obs::json::Value root = obs::json::parse(text, &err);
    if (root.is_null()) {
        std::fprintf(stderr, "JSON parse error: %s\n", err.c_str());
        return 1;
    }

    const obs::json::Value* schema = root.find("schema");
    check(schema != nullptr && schema->as_string() == "cxlalloc-metrics-v1",
          "schema is cxlalloc-metrics-v1");

    const obs::json::Value* counters = root.find("counters");
    check(counters != nullptr, "counters object present");
    if (counters != nullptr) {
        check(prefixed_sum(*counters, "mem.") > 0,
              "MemSession event counters (mem.*) nonzero");
        check(prefixed_sum(*counters, "alloc.") > 0,
              "allocator op counters (alloc.*) nonzero");
        check(prefixed_sum(*counters, "run.ops") > 0,
              "harness run.ops counter nonzero");
    }

    const obs::json::Value* hists = root.find("histograms");
    check(hists != nullptr, "histograms object present");
    bool populated = false;
    bool ordered = true;
    if (hists != nullptr && hists->kind() == obs::json::Kind::Object) {
        for (const auto& [name, h] : hists->as_object()) {
            if (h.find("count") == nullptr || h.find("count")->as_uint() == 0) {
                continue;
            }
            populated = true;
            double p50 = h.find("p50")->as_number();
            double p90 = h.find("p90")->as_number();
            double p99 = h.find("p99")->as_number();
            double p999 = h.find("p999")->as_number();
            double mn = h.find("min")->as_number();
            double mx = h.find("max")->as_number();
            bool this_ordered = mn <= p50 && p50 <= p90 && p90 <= p99 &&
                                p99 <= p999 && p999 <= mx;
            if (!this_ordered) {
                std::fprintf(stderr, "  unordered percentiles in %s\n",
                             name.c_str());
            }
            ordered = ordered && this_ordered;
        }
    }
    check(populated, "at least one histogram has samples");
    check(ordered, "percentiles ordered min<=p50<=p90<=p99<=p999<=max");

    if (failures != 0) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::puts("metrics snapshot verified");
    return 0;
}
