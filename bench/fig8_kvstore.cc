/// Fig. 8 (paper §5.2.1): throughput and memory consumption for every
/// allocator running the in-memory key-value store under YCSB and
/// synthesized memcached-trace workloads, across thread counts.
///
/// Allocators that cannot serve a workload's allocation sizes (cxl-shm on
/// MC-12/MC-37, which need > 1 KiB values) are reported as CRASH, matching
/// the paper.

#include <cstdio>
#include <cstring>

#include "kv/kv_store.h"
#include "support.h"
#include "workload/kv_workload.h"

namespace {

constexpr std::uint64_t kBuckets = 1 << 15;

struct WorkloadPlan {
    workload::KvWorkloadSpec spec;
    std::uint64_t total_ops;
    std::uint64_t preload; ///< keys inserted before timing (YCSB-A/D)
    bench::Geometry geom;
};

std::vector<WorkloadPlan>
plans()
{
    bench::Geometry small_values;
    small_values.small_slabs = 4096; // 128 MiB
    small_values.large_slabs = 32;
    small_values.extra_bytes = kv::HashTable::footprint(kBuckets);

    bench::Geometry big_values;
    big_values.small_slabs = 1024;
    big_values.large_slabs = 768; // 384 MiB for up to 325 KiB values
    big_values.extra_bytes = kv::HashTable::footprint(kBuckets);

    std::vector<WorkloadPlan> out;
    out.push_back({workload::ycsb_load(), 40'000, 0, small_values});
    out.push_back({workload::ycsb_a(), 40'000, 10'000, small_values});
    out.push_back({workload::ycsb_d(), 40'000, 10'000, small_values});
    out.push_back({workload::mc12(), 3'000, 0, big_values});
    out.push_back({workload::mc15(), 40'000, 0, small_values});
    out.push_back({workload::mc31(), 40'000, 0, small_values});
    out.push_back({workload::mc37(), 3'000, 1'000, big_values});
    return out;
}

void
run_one(const WorkloadPlan& plan, const std::string& alloc_name,
        std::uint32_t threads)
{
    bench::Bundle b = bench::make_bundle(alloc_name, plan.geom);
    kv::KvStore store(*b.pod, b.extra_base, kBuckets, b.alloc.get());

    std::uint64_t failures = 0;

    // Preload (untimed), as YCSB does before the A/D mixes.
    if (plan.preload > 0) {
        auto ctx = b.thread();
        std::vector<char> value(plan.spec.val_max ? plan.spec.val_max : 8,
                                'p');
        for (std::uint64_t k = 0; k < plan.preload; k++) {
            std::uint64_t key = k % plan.spec.keyspace;
            std::uint32_t klen =
                workload::KvOpStream::key_len(plan.spec, key);
            std::uint32_t vlen =
                plan.spec.val_min +
                (plan.spec.val_max - plan.spec.val_min) / 4;
            if (!store.insert(*ctx, key, klen, value.data(), vlen)) {
                failures++;
            }
        }
        b.pod->release_thread(std::move(ctx));
    }

    std::uint64_t per_thread = plan.total_ops / threads;
    std::vector<std::uint64_t> fail(threads, 0);
    bench::RunResult r = bench::run_threads(
        b, threads, [&](pod::ThreadContext& ctx, std::uint32_t w) {
            workload::KvOpStream stream(plan.spec, 7'000 + w);
            std::vector<char> value(plan.spec.val_max ? plan.spec.val_max : 8,
                                    'v');
            std::vector<char> read_buf(4096);
            for (std::uint64_t i = 0; i < per_thread; i++) {
                workload::KvOp op = stream.next();
                switch (op.type) {
                  case workload::OpType::Insert:
                  case workload::OpType::Update:
                    if (!store.insert(ctx, op.key, op.klen, value.data(),
                                      op.vlen)) {
                        fail[w]++;
                    }
                    break;
                  case workload::OpType::Remove:
                    store.remove(ctx, op.key, op.klen);
                    break;
                  case workload::OpType::Read:
                    store.get(ctx, op.key, op.klen, read_buf.data(),
                              read_buf.size());
                    break;
                }
            }
            return per_thread;
        });
    for (auto f : fail) {
        failures += f;
    }

    char note[64] = "";
    if (failures > plan.total_ops / 100) {
        std::snprintf(note, sizeof note, "CRASH (%llu failed allocs)",
                      static_cast<unsigned long long>(failures));
    }
    bench::print_row("fig8", plan.spec.name, alloc_name, threads, r, note);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    std::vector<WorkloadPlan> selected = plans();
    std::vector<std::uint32_t> thread_counts{1u, 2u, 4u};
    std::vector<std::string> allocators = bench::all_allocators();
    if (opt.smoke) {
        selected.resize(2); // ycsb-load + ycsb-a
        for (WorkloadPlan& p : selected) {
            p.total_ops /= 4;
            p.preload /= 4;
        }
        thread_counts = {2u};
        allocators = {"cxlalloc"};
    }

    std::puts("Fig. 8: key-value store throughput and memory across "
              "allocators (YCSB + synthesized memcached traces)");
    for (const WorkloadPlan& plan : selected) {
        for (std::uint32_t threads : thread_counts) {
            for (const std::string& name : allocators) {
                run_one(plan, name, threads);
            }
        }
        std::puts("");
    }
    std::puts("Paper shape (Fig. 8): boost/lightning flat (global mutex), "
              "lightning an order of magnitude more memory;");
    std::puts("cxl-shm suffers on skewed YCSB-A/D (refcount contention on "
              "hot keys) and CRASHES on MC-12/MC-37 (>1 KiB);");
    std::puts("mimalloc, ralloc and cxlalloc cluster at the top — cxlalloc "
              "~94% of mimalloc on average, with ~0.02% HWcc memory.");
    bench::finish_metrics(opt);
    return 0;
}
