/// Fig. 8 (paper §5.2.1): throughput and memory consumption for every
/// allocator running the in-memory key-value store under YCSB and
/// synthesized memcached-trace workloads, across thread counts.
///
/// Allocators that cannot serve a workload's allocation sizes (cxl-shm on
/// MC-12/MC-37, which need > 1 KiB values) are reported as CRASH, matching
/// the paper.

#include <cstdio>
#include <cstring>
#include <memory>

#include "kv/kv_store.h"
#include "support.h"
#include "workload/kv_workload.h"

namespace {

constexpr std::uint64_t kBuckets = 1 << 15;

struct WorkloadPlan {
    workload::KvWorkloadSpec spec;
    std::uint64_t total_ops;
    std::uint64_t preload; ///< keys inserted before timing (YCSB-A/D)
    bench::Geometry geom;
};

std::vector<WorkloadPlan>
plans()
{
    bench::Geometry small_values;
    small_values.small_slabs = 4096; // 128 MiB
    small_values.large_slabs = 32;
    small_values.extra_bytes = kv::HashTable::footprint(kBuckets);

    bench::Geometry big_values;
    big_values.small_slabs = 1024;
    big_values.large_slabs = 768; // 384 MiB for up to 325 KiB values
    big_values.extra_bytes = kv::HashTable::footprint(kBuckets);

    std::vector<WorkloadPlan> out;
    out.push_back({workload::ycsb_load(), 40'000, 0, small_values});
    out.push_back({workload::ycsb_a(), 40'000, 10'000, small_values});
    out.push_back({workload::ycsb_d(), 40'000, 10'000, small_values});
    out.push_back({workload::mc12(), 3'000, 0, big_values});
    out.push_back({workload::mc15(), 40'000, 0, small_values});
    out.push_back({workload::mc31(), 40'000, 0, small_values});
    out.push_back({workload::mc37(), 3'000, 1'000, big_values});
    return out;
}

void
run_one(const WorkloadPlan& plan, const std::string& alloc_name,
        std::uint32_t threads)
{
    bench::Bundle b = bench::make_bundle(alloc_name, plan.geom);
    kv::KvStore store(*b.pod, b.extra_base, kBuckets, b.alloc.get());

    std::uint64_t failures = 0;

    // Preload (untimed), as YCSB does before the A/D mixes.
    if (plan.preload > 0) {
        auto ctx = b.thread();
        std::vector<char> value(plan.spec.val_max ? plan.spec.val_max : 8,
                                'p');
        for (std::uint64_t k = 0; k < plan.preload; k++) {
            std::uint64_t key = k % plan.spec.keyspace;
            std::uint32_t klen =
                workload::KvOpStream::key_len(plan.spec, key);
            std::uint32_t vlen =
                plan.spec.val_min +
                (plan.spec.val_max - plan.spec.val_min) / 4;
            if (!store.insert(*ctx, key, klen, value.data(), vlen)) {
                failures++;
            }
        }
        b.pod->release_thread(std::move(ctx));
    }

    std::uint64_t per_thread = plan.total_ops / threads;
    std::vector<std::uint64_t> fail(threads, 0);
    bench::RunResult r = bench::run_threads(
        b, threads, [&](pod::ThreadContext& ctx, std::uint32_t w) {
            workload::KvOpStream stream(plan.spec, 7'000 + w);
            std::vector<char> value(plan.spec.val_max ? plan.spec.val_max : 8,
                                    'v');
            std::vector<char> read_buf(4096);
            for (std::uint64_t i = 0; i < per_thread; i++) {
                workload::KvOp op = stream.next();
                switch (op.type) {
                  case workload::OpType::Insert:
                  case workload::OpType::Update:
                    if (!store.insert(ctx, op.key, op.klen, value.data(),
                                      op.vlen)) {
                        fail[w]++;
                    }
                    break;
                  case workload::OpType::Remove:
                    store.remove(ctx, op.key, op.klen);
                    break;
                  case workload::OpType::Read:
                    store.get(ctx, op.key, op.klen, read_buf.data(),
                              read_buf.size());
                    break;
                }
            }
            return per_thread;
        });
    for (auto f : fail) {
        failures += f;
    }

    char note[64] = "";
    if (failures > plan.total_ops / 100) {
        std::snprintf(note, sizeof note, "CRASH (%llu failed allocs)",
                      static_cast<unsigned long long>(failures));
    }
    bench::print_row("fig8", plan.spec.name, alloc_name, threads, r, note);
}

// ---------------------------------------------------------------------------
// --pod: the multi-host variant (docs/POD_TOPOLOGY.md). One process per
// host, one cxlalloc shard per device window, one KV store per host in its
// home window; every 8th read targets the next host's store so the run
// exercises cross-host edges (and their extra latency) alongside the
// host-local fast path.

/// Extra cost of a non-attached (switched) edge over the base CXL latency.
cxl::EdgeCost
pod_far_edge()
{
    cxl::EdgeCost e;
    e.read_add_ns = 120;
    e.write_add_ns = 180;
    e.ns_per_kib = 8;
    return e;
}

bench::RunResult
run_pod_one(const pod::Topology& topo, std::uint32_t threads_per_host,
            std::uint64_t per_thread, bool cross_host_reads)
{
    bench::Geometry geom;
    geom.small_slabs = 4096;
    geom.large_slabs = 32;
    geom.extra_bytes = kv::HashTable::footprint(kBuckets);

    bench::PodBundle b = bench::make_pod_bundle(topo, geom);
    std::uint32_t hosts = topo.hosts();
    std::vector<std::unique_ptr<kv::KvStore>> stores;
    for (std::uint32_t h = 0; h < hosts; h++) {
        stores.push_back(std::make_unique<kv::KvStore>(
            *b.pod, b.extra_base_for_host(static_cast<pod::HostId>(h)),
            kBuckets, b.alloc.get()));
    }

    std::vector<cxl::HeapOffset> bucket_base(hosts);
    for (std::uint32_t h = 0; h < hosts; h++) {
        bucket_base[h] = b.extra_base_for_host(static_cast<pod::HostId>(h));
    }

    workload::KvWorkloadSpec spec = workload::ycsb_a();
    return bench::run_pod_threads(
        b, hosts, threads_per_host,
        [&](pod::ThreadContext& ctx, pod::HostId host, std::uint32_t w) {
            workload::KvOpStream stream(spec, 9'000 + w);
            std::vector<char> value(spec.val_max ? spec.val_max : 8, 'v');
            std::vector<char> read_buf(4096);
            kv::KvStore& own = *stores[host];
            kv::KvStore& peer = *stores[(host + 1u) % hosts];
            for (std::uint64_t i = 0; i < per_thread; i++) {
                workload::KvOp op = stream.next();
                switch (op.type) {
                  case workload::OpType::Insert:
                  case workload::OpType::Update:
                    own.insert(ctx, op.key, op.klen, value.data(), op.vlen);
                    break;
                  case workload::OpType::Remove:
                    own.remove(ctx, op.key, op.klen);
                    break;
                  case workload::OpType::Read: {
                    bool remote = cross_host_reads && hosts > 1 && i % 8 == 0;
                    std::uint32_t target = remote ? (host + 1u) % hosts : host;
                    // The KV data path uses real pointers (full-HWcc
                    // semantics), so model the read's data movement by
                    // pulling the target bucket line through the session —
                    // that is what routes it over the (host, device) edge
                    // and charges its latency.
                    char kb[96];
                    kv::KvStore::format_key(op.key, op.klen, kb);
                    std::uint64_t hsh = kv::HashTable::hash_bytes(kb, op.klen);
                    std::uint64_t head;
                    ctx.mem().read_bytes(
                        bucket_base[target] + (hsh % kBuckets) * 8, &head, 8);
                    (remote ? peer : own)
                        .get(ctx, op.key, op.klen, read_buf.data(),
                             read_buf.size());
                    break;
                  }
                }
            }
            return per_thread;
        });
}

void
run_pod(const bench::Options& opt)
{
    std::puts("Fig. 8 (pod): sharded cxlalloc over a multi-host pod "
              "(dense 4-device fabric; every 8th read is cross-host)");
    constexpr std::uint32_t kDevices = 4;
    constexpr std::uint32_t kThreadsPerHost = 8;
    std::uint64_t per_thread = opt.smoke ? 250 : 2'000;
    cxl::EdgeCost near; // directly-attached head: base latency only
    cxl::EdgeCost far = pod_far_edge();

    obs::MetricsRegistry* reg = bench::bundle_metrics();
    for (std::uint32_t hosts : {1u, 4u, 8u, 16u}) {
        pod::Topology topo = pod::Topology::dense(hosts, kDevices, near, far);
        bench::RunResult r = run_pod_one(topo, kThreadsPerHost, per_thread,
                                         /*cross_host_reads=*/true);
        char note[32];
        std::snprintf(note, sizeof note, "hosts=%u", hosts);
        bench::print_row("fig8p", "ycsb-a-pod", "cxlalloc-pod",
                         hosts * kThreadsPerHost, r, note);
        if (reg != nullptr) {
            char name[48];
            std::snprintf(name, sizeof name, "pod.scale.h%u.mops_sim", hosts);
            reg->set_gauge(reg->gauge(name), r.mops_sim());
        }
    }

    // Sparse Octopus preset: each host is wired to its nearest head only.
    // No cross-host reads — unreachable windows reject access outright —
    // and all placement stays on the single reachable arm.
    pod::Topology sparse = pod::Topology::octopus(16, kDevices, /*arms=*/1,
                                                  near, far);
    bench::RunResult rs = run_pod_one(sparse, kThreadsPerHost, per_thread,
                                      /*cross_host_reads=*/false);
    bench::print_row("fig8p", "ycsb-a-pod", "cxlalloc-pod-octopus",
                     16 * kThreadsPerHost, rs, "arms=1");

    if (reg != nullptr) {
        // Budget-gated summary gauges (verify_metrics_json --budget).
        obs::MetricsSnapshot snap = reg->snapshot();
        double local = static_cast<double>(snap.counter("pod.local_ops"));
        double remote = static_cast<double>(snap.counter("pod.remote_ops"));
        double run_ops = static_cast<double>(snap.counter("run.ops"));
        double steals = static_cast<double>(snap.counter("pod.alloc_steal"));
        reg->set_gauge(reg->gauge("pod.remote_op_ratio"),
                       local + remote > 0 ? remote / (local + remote) : 0);
        reg->set_gauge(reg->gauge("pod.steal_per_op"),
                       run_ops > 0 ? steals / run_ops : 0);
    }
    std::puts("");
    std::puts("Pod shape: throughput scales near-linearly with hosts "
              "(shards are host-local; only 1-in-8 reads cross an edge);");
    std::puts("the octopus row shows sparse wiring keeps every op on the "
              "single reachable arm (pod.remote_ops stays flat).");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    if (opt.pod) {
        run_pod(opt);
        bench::finish_metrics(opt);
        return 0;
    }
    std::vector<WorkloadPlan> selected = plans();
    std::vector<std::uint32_t> thread_counts{1u, 2u, 4u};
    std::vector<std::string> allocators = bench::all_allocators();
    if (opt.smoke) {
        selected.resize(2); // ycsb-load + ycsb-a
        for (WorkloadPlan& p : selected) {
            p.total_ops /= 4;
            p.preload /= 4;
        }
        thread_counts = {2u};
        allocators = {"cxlalloc"};
    }

    std::puts("Fig. 8: key-value store throughput and memory across "
              "allocators (YCSB + synthesized memcached traces)");
    for (const WorkloadPlan& plan : selected) {
        for (std::uint32_t threads : thread_counts) {
            for (const std::string& name : allocators) {
                run_one(plan, name, threads);
            }
        }
        std::puts("");
    }
    std::puts("Paper shape (Fig. 8): boost/lightning flat (global mutex), "
              "lightning an order of magnitude more memory;");
    std::puts("cxl-shm suffers on skewed YCSB-A/D (refcount contention on "
              "hot keys) and CRASHES on MC-12/MC-37 (>1 KiB);");
    std::puts("mimalloc, ralloc and cxlalloc cluster at the top — cxlalloc "
              "~94% of mimalloc on average, with ~0.02% HWcc memory.");
    bench::finish_metrics(opt);
    return 0;
}
