/// Ablation (paper §5.2.1 "HWcc memory"): how much coherent memory each
/// design needs, absolute and relative — cxlalloc's split-metadata layout
/// against ralloc (separable but monolithic metadata), cxl-shm (inline
/// refcount headers: the whole heap), and boost/lightning (interleaved
/// metadata: the whole segment).
///
/// Paper numbers: cxlalloc uses 0.02% HWcc relative to total memory on the
/// KV workloads (7.1% of ralloc's HWcc); 2.5% / 0.09% on threadtest /
/// xmalloc (9.4% / 9.5% of ralloc's).

#include <cstdio>

#include "kv/kv_store.h"
#include "support.h"
#include "workload/kv_workload.h"
#include "workload/micro.h"

namespace {

constexpr std::uint64_t kBuckets = 1 << 14;

struct Usage {
    std::uint64_t hwcc = 0;
    std::uint64_t total = 0;
};

Usage
measure(const std::string& name, const char* workload_name)
{
    bench::Geometry geom;
    geom.small_slabs = 4096;
    geom.extra_bytes = kv::HashTable::footprint(kBuckets);
    bench::Bundle b = bench::make_bundle(name, geom);
    std::string w(workload_name);
    std::optional<kv::KvStore> store;
    if (w == "ycsb-load") {
        store.emplace(*b.pod, b.extra_base, kBuckets, b.alloc.get());
    }
    bench::RunResult r = bench::run_threads(
        b, 2, [&](pod::ThreadContext& ctx, std::uint32_t tidx) {
            if (w == "threadtest") {
                return 2 * workload::run_threadtest(*b.alloc, ctx, 100, 512,
                                                    64);
            }
            workload::KvOpStream stream(workload::ycsb_load(), tidx + 1);
            std::vector<char> value(960, 'v');
            for (int i = 0; i < 10'000; i++) {
                workload::KvOp op = stream.next();
                store->insert(ctx, op.key, op.klen, value.data(), op.vlen);
            }
            return std::uint64_t{10'000};
        });
    Usage u;
    u.hwcc = r.hwcc_bytes;
    u.total = r.committed_bytes + r.metadata_bytes;
    return u;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    std::puts("Ablation: HWcc (coherent) memory required by each design");
    for (const char* workload_name : {"threadtest", "ycsb-load"}) {
        Usage ralloc; // reference point, as in the paper
        for (const std::string& name :
             {std::string("cxlalloc"), std::string("ralloc-like"),
              std::string("cxl-shm-like"), std::string("boost-like")}) {
            Usage u = measure(name, workload_name);
            if (name == "ralloc-like") {
                ralloc = u;
            }
            std::printf("ablate hwcc  %-10s %-14s hwcc=%-11s total=%-11s "
                        "hwcc/total=%7.3f%%",
                        workload_name, name.c_str(),
                        cxlcommon::format_bytes(u.hwcc).c_str(),
                        cxlcommon::format_bytes(u.total).c_str(),
                        100.0 * static_cast<double>(u.hwcc) /
                            static_cast<double>(u.total));
            if (ralloc.hwcc != 0 && name == "cxlalloc") {
                // cxlalloc row prints before ralloc's: recompute after.
            }
            std::puts("");
        }
        // Relative comparison (cxlalloc vs ralloc), as the paper reports.
        Usage c = measure("cxlalloc", workload_name);
        Usage ra = measure("ralloc-like", workload_name);
        std::printf("ablate hwcc  %-10s cxlalloc/ralloc HWcc ratio = "
                    "%5.1f%%\n\n",
                    workload_name,
                    100.0 * static_cast<double>(c.hwcc) /
                        static_cast<double>(ra.hwcc));
    }
    std::puts("Paper reference: cxlalloc ~0.02% of total on KV workloads "
              "(7.1% of ralloc's HWcc); 2.5%/0.09% on threadtest/xmalloc");
    std::puts("(9.4%/9.5% of ralloc's). cxl-shm and the mutex allocators "
              "need the whole heap coherent.");
    bench::finish_metrics(opt);
    return 0;
}
