/// Tiered DRAM+CXL placement sweep: simulated per-op latency of a
/// reference-cell object store under three placements —
///
///   cxl      every object on the CXL shard (dram_percent = 0)
///   static   a stride-scheduled dram_percent% of allocations land in the
///            host's capacity-limited private DRAM window, no migration
///   tiered   static placement plus the background HotSlabMigrator
///            promoting hot CXL slab residents / demoting cold DRAM ones
///
/// across a DRAM-fraction sweep, on three workloads: read_latest
/// (recency-skewed reads), rw_ycsb (50/50 scrambled-Zipfian), and
/// dynamic_hot_range (a hot window that shifts mid-run, defeating any
/// static placement). The base latency model is local DRAM; the CXL
/// fabric's extra cost rides on the topology edges, so DRAM-resident
/// reads are cheaper by exactly the measured DRAM->CXL gap.
///
/// A final pass runs the same harness on a DRAM-less topology: the
/// migrator must be inert (run_epoch returns 0) and the tiered rows are
/// reported as skipped — legacy configs run unchanged.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "common/zipfian.h"
#include "cxlalloc/migrate.h"
#include "support.h"
#include "sync/detectable_cas.h"

namespace {

constexpr std::uint64_t kObjSize = 64;

struct Plan {
    std::uint32_t objects;
    std::uint64_t ops;
    std::uint64_t epoch_every;
    std::uint64_t phases; ///< dynamic_hot_range shift count
};

struct Variant {
    const char* name;
    std::uint32_t dram_percent;
    bool migrate;
};

enum class Wl { ReadLatest, RwYcsb, DynamicHot };

const char*
wl_name(Wl w)
{
    switch (w) {
      case Wl::ReadLatest:
        return "read_latest";
      case Wl::RwYcsb:
        return "rw_ycsb";
      case Wl::DynamicHot:
        return "dynamic_hot_range";
    }
    return "?";
}

/// Extra cost of the CXL fabric over the base (local-DRAM) latency model:
/// the paper's measured DRAM->CXL gap (§5.4), so a DRAM-window access
/// costs local DRAM and a CXL-window access costs CXL.
cxl::EdgeCost
cxl_gap_edge()
{
    cxl::EdgeCost e;
    e.read_add_ns = 245;  // 357 - 112
    e.write_add_ns = 150; // write 120 / flush 170 gap, averaged
    e.ns_per_kib = 8;
    return e;
}

struct RunOut {
    double ns_op = 0;
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    bool skipped = false;
};

/// One workload x variant run on a fresh bundle. Single worker thread (the
/// sweep measures placement latency, not scaling); migration epochs run
/// synchronously on their own thread context, and only the worker's
/// simulated time is reported — the migrator models a background core.
RunOut
run_one(const pod::Topology& topo, const Plan& plan, Wl wl,
        const Variant& var)
{
    bool tiered_topo = topo.has_dram_tier();
    if (var.migrate && !tiered_topo) {
        // Satellite behavior: no DRAM window -> migration cannot run.
        return {0, 0, 0, /*skipped=*/true};
    }

    bench::Geometry geom;
    geom.small_slabs = 512; // decoupled from object count; 16 MiB
    geom.large_slabs = 8;
    geom.huge_regions = 1;
    geom.huge_region_size = 1 << 20;
    geom.app_sync_bytes = static_cast<std::uint64_t>(plan.objects) * 8;
    geom.dram_percent = var.dram_percent;
    // DRAM capacity tracks the requested fraction of the object set (plus
    // slack for the two thread-local active slabs), so "static" is the
    // capacity-constrained baseline the tentpole compares against.
    std::uint64_t blocks_per_slab = cxlalloc::kSmallSlabSize / kObjSize;
    geom.dram_small_slabs = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(plan.objects) * var.dram_percent) /
            (100 * blocks_per_slab) +
        2);

    bench::PodBundle b = bench::make_pod_bundle(topo, geom,
                                                bench::MemoryMode::Local);
    cxl::DeviceId home = topo.home_of(0);
    cxlalloc::CxlAllocator& cell_shard = b.heap->shard(home);
    cxl::HeapOffset cells = cell_shard.layout().app_sync();
    auto cell_of = [&](std::uint32_t i) {
        return cells + static_cast<cxl::HeapOffset>(i) * 8;
    };

    cxlalloc::HotSlabMigrator::Options mopt;
    mopt.max_moves_per_epoch = 256;
    cxlalloc::HotSlabMigrator migrator(*b.heap, mopt);
    migrator.set_cell_table(cells, plan.objects);
    if (var.migrate) {
        migrator.set_metrics(bench::bundle_metrics());
    }

    auto worker = b.thread(0);
    auto mig_ctx = b.thread(0);
    cxl::MemSession& mem = worker->mem();

    // Populate: object i's payload, published into cell i. Placement
    // follows the variant's stride split.
    char payload[kObjSize];
    std::memset(payload, 0x5a, sizeof payload);
    for (std::uint32_t i = 0; i < plan.objects; i++) {
        cxl::HeapOffset off = b.heap->allocate(*worker, kObjSize);
        CXL_FATAL_IF(off == 0, "tiered_sweep: populate exhausted the heap");
        mem.write_bytes(off, payload, kObjSize);
        mem.flush(off, kObjSize);
        mem.fence();
        auto res = cell_shard.cell_publish(
            *worker, cell_of(i), 0,
            static_cast<std::uint32_t>(off >> 3));
        CXL_FATAL_IF(!res.success, "tiered_sweep: populate publish failed");
    }

    cxlcommon::Xoshiro rng(0x7e11ed + var.dram_percent +
                           (var.migrate ? 1 : 0) +
                           static_cast<std::uint64_t>(wl) * 97);
    cxlcommon::Zipfian rank_zipf(plan.objects);
    cxlcommon::ScrambledZipfian key_zipf(plan.objects);

    std::uint64_t latest = 0; // read_latest recency cursor
    std::uint64_t phase_len = plan.ops / plan.phases;
    char buf[kObjSize];

    std::uint64_t sim0 = mem.sim_ns();
    for (std::uint64_t op = 0; op < plan.ops; op++) {
        if (var.migrate && op % plan.epoch_every == plan.epoch_every - 1) {
            migrator.run_epoch(*mig_ctx);
        }

        std::uint32_t idx = 0;
        bool update = false;
        switch (wl) {
          case Wl::ReadLatest: {
            std::uint64_t r = rank_zipf.sample(rng);
            idx = static_cast<std::uint32_t>(
                (latest + plan.objects - 1 - r) % plan.objects);
            update = rng.next_double() < 0.05;
            if (update) {
                idx = static_cast<std::uint32_t>(latest % plan.objects);
                latest++;
            }
            break;
          }
          case Wl::RwYcsb:
            idx = static_cast<std::uint32_t>(key_zipf.sample(rng));
            update = rng.next_double() < 0.5;
            break;
          case Wl::DynamicHot: {
            std::uint64_t phase = op / phase_len;
            std::uint32_t hot_len = plan.objects / 8;
            auto hot_base = static_cast<std::uint32_t>(
                (phase * hot_len) % plan.objects);
            if (rng.next_double() < 0.9) {
                idx = (hot_base + static_cast<std::uint32_t>(
                                      rng.next() % hot_len)) %
                      plan.objects;
            } else {
                idx = static_cast<std::uint32_t>(rng.next() % plan.objects);
            }
            update = rng.next_double() < 0.02;
            break;
          }
        }

        cxl::HeapOffset cell = cell_of(idx);
        std::uint32_t val = cell_shard.dcas().read(mem, cell);
        if (val == 0) {
            continue;
        }
        auto off = static_cast<cxl::HeapOffset>(val) << 3;
        if (update) {
            cxl::HeapOffset fresh = b.heap->allocate(*worker, kObjSize);
            if (fresh == 0) {
                continue;
            }
            mem.write_bytes(fresh, payload, kObjSize);
            mem.flush(fresh, kObjSize);
            mem.fence();
            auto res = cell_shard.cell_publish(
                *worker, cell, val, static_cast<std::uint32_t>(fresh >> 3));
            b.heap->deallocate(*worker, res.success ? off : fresh);
            migrator.note_access(res.success ? fresh : off);
        } else {
            mem.read_bytes(off, buf, kObjSize);
            migrator.note_access(off);
        }
    }
    std::uint64_t sim = mem.sim_ns() - sim0;

    if (obs::MetricsRegistry* reg = bench::bundle_metrics()) {
        worker->mem().publish_metrics(*reg);
        mig_ctx->mem().publish_metrics(*reg);
        reg->shard(worker->tid()).add(reg->counter("run.ops"), plan.ops);
    }
    b.pod->release_thread(std::move(worker));
    b.pod->release_thread(std::move(mig_ctx));

    RunOut out;
    out.ns_op = static_cast<double>(sim) / static_cast<double>(plan.ops);
    out.promotions = migrator.promotions();
    out.demotions = migrator.demotions();
    return out;
}

void
print_run(Wl wl, const Variant& var, const RunOut& r)
{
    if (r.skipped) {
        std::printf("tiered %-18s %-8s dram=%2u%%   skipped (no DRAM "
                    "window)\n",
                    wl_name(wl), var.name, var.dram_percent);
        return;
    }
    char note[64] = "";
    if (var.migrate) {
        std::snprintf(note, sizeof note, "  promo=%" PRIu64 " demo=%" PRIu64,
                      r.promotions, r.demotions);
    }
    std::printf("tiered %-18s %-8s dram=%2u%%  %9.1f ns/op (sim)%s\n",
                wl_name(wl), var.name, var.dram_percent, r.ns_op, note);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    Plan plan = opt.smoke ? Plan{1024, 8'000, 500, 4}
                          : Plan{4096, 40'000, 1'000, 8};

    cxl::EdgeCost gap = cxl_gap_edge();
    pod::Topology base(1, 1);
    base.edge(0, 0) = gap;
    pod::Topology tiered_topo = pod::Topology::with_local_dram(base);

    std::puts("Tiered DRAM+CXL placement sweep (1 host, CXL window + "
              "private DRAM window; base latency = local DRAM, CXL edge "
              "carries the fabric gap)");

    std::vector<Variant> variants = {
        {"cxl", 0, false},      {"static", 10, false}, {"tiered", 10, true},
        {"static", 25, false},  {"tiered", 25, true},  {"static", 50, false},
        {"tiered", 50, true},
    };

    obs::MetricsRegistry* reg = bench::bundle_metrics();
    std::uint64_t total_ops = 0;
    bool win_ok = true;
    for (Wl wl : {Wl::ReadLatest, Wl::RwYcsb, Wl::DynamicHot}) {
        double cxl_ns = 0;
        double tiered25_ns = 0;
        double tiered10_ns = 0;
        for (const Variant& var : variants) {
            RunOut r = run_one(tiered_topo, plan, wl, var);
            print_run(wl, var, r);
            total_ops += plan.ops;
            if (var.dram_percent == 0) {
                cxl_ns = r.ns_op;
            } else if (var.migrate && var.dram_percent == 25) {
                tiered25_ns = r.ns_op;
            } else if (var.migrate && var.dram_percent == 10) {
                tiered10_ns = r.ns_op;
            }
            if (reg != nullptr && !r.skipped) {
                char name[80];
                std::snprintf(name, sizeof name, "tiered.%s.%s%u.ns_op",
                              wl_name(wl), var.name, var.dram_percent);
                reg->set_gauge(reg->gauge(name), r.ns_op);
            }
        }
        // The tentpole claim: tiered beats pure CXL at modest DRAM
        // fractions on the skewed workloads. Held in CI by the budget
        // gate on the win-ratio gauges below.
        if (wl != Wl::RwYcsb &&
            (tiered25_ns >= cxl_ns || tiered10_ns >= cxl_ns)) {
            win_ok = false;
        }
        if (reg != nullptr && cxl_ns > 0) {
            char name[80];
            std::snprintf(name, sizeof name, "pod.tiered.%s.win_ratio",
                          wl_name(wl));
            reg->set_gauge(reg->gauge(name), tiered25_ns / cxl_ns);
        }
        std::puts("");
    }

    // Legacy topology: no DRAM window anywhere. The migrator must be inert
    // and tiered rows are skipped; static degenerates to plain sharded
    // placement.
    std::puts("Legacy (DRAM-less) topology: migration unavailable");
    pod::Topology legacy = pod::Topology::dense(1, 2, cxl::EdgeCost{}, gap);
    {
        Plan small = plan;
        small.ops /= 4;
        RunOut r = run_one(legacy, small, Wl::RwYcsb, variants[0]);
        print_run(Wl::RwYcsb, variants[0], r);
        RunOut skip = run_one(legacy, small, Wl::RwYcsb, Variant{"tiered", 25, true});
        print_run(Wl::RwYcsb, Variant{"tiered", 25, true}, skip);
        total_ops += small.ops;
    }

    if (reg != nullptr) {
        obs::MetricsSnapshot snap = reg->snapshot();
        double dram = static_cast<double>(snap.counter("alloc.tier_dram"));
        double cxl_n = static_cast<double>(snap.counter("alloc.tier_cxl"));
        double promos = static_cast<double>(snap.counter("migrate.promotions"));
        double demos = static_cast<double>(snap.counter("migrate.demotions"));
        reg->set_gauge(reg->gauge("alloc.tier_dram_ratio"),
                       dram + cxl_n > 0 ? dram / (dram + cxl_n) : 0);
        reg->set_gauge(reg->gauge("migrate.promotions"), promos);
        reg->set_gauge(reg->gauge("migrate.demotions_per_op"),
                       total_ops > 0 ? demos / static_cast<double>(total_ops)
                                     : 0);
    }

    std::printf("Sweep shape: tiered %s pure-CXL on read_latest and "
                "dynamic_hot_range at <= 25%% DRAM;\n",
                win_ok ? "beats" : "DOES NOT BEAT (regression!)");
    std::puts("static placement helps in proportion to the DRAM fraction "
              "but cannot follow the moving hot set — migration can.");
    bench::finish_metrics(opt);
    return win_ok ? 0 : 1;
}
