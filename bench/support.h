/// @file
/// Benchmark-side alias for the shared allocator-bundle harness (kept in
/// the library so tests reuse the same construction paths).

#pragma once

#include "harness/bundles.h"
