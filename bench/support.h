/// @file
/// Benchmark-side support: the shared allocator-bundle harness (kept in the
/// library so tests reuse the same construction paths) plus the common
/// command-line surface every bench binary exposes:
///
///   --metrics-json <path>   dump a machine-readable registry snapshot
///   --metrics-csv <path>    same, as CSV rows
///   --smoke                 shrink the run matrix (CI smoke tests)
///   --pod                   run the multi-host pod variant (benches that
///                           support one; see docs/POD_TOPOLOGY.md)
///
/// Passing either --metrics-* flag turns on bundle instrumentation
/// (bench::bundle_metrics), so un-flagged runs keep uninstrumented hot
/// paths.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/bundles.h"
#include "obs/export.h"

namespace bench {

struct Options {
    std::string metrics_json;
    std::string metrics_csv;
    bool smoke = false;
    bool pod = false;
};

inline Options
parse_options(int argc, char** argv)
{
    Options o;
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        auto path_arg = [&](const char* flag) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a path argument\n", flag);
                std::exit(2);
            }
            return std::string(argv[++i]);
        };
        if (a == "--metrics-json") {
            o.metrics_json = path_arg("--metrics-json");
        } else if (a == "--metrics-csv") {
            o.metrics_csv = path_arg("--metrics-csv");
        } else if (a == "--smoke") {
            o.smoke = true;
        } else if (a == "--pod") {
            o.pod = true;
        } else {
            std::fprintf(stderr,
                         "unknown argument '%s' (supported: --metrics-json "
                         "<path>, --metrics-csv <path>, --smoke, --pod)\n",
                         a.c_str());
            std::exit(2);
        }
    }
    if (!o.metrics_json.empty() || !o.metrics_csv.empty()) {
        bundle_metrics() = &obs::MetricsRegistry::global();
    }
    return o;
}

/// Dumps the global registry snapshot to the paths requested in @p o.
/// Call once, at the end of main().
inline void
finish_metrics(const Options& o)
{
    if (bundle_metrics() == nullptr) {
        return;
    }
    obs::MetricsSnapshot snap = bundle_metrics()->snapshot();
    if (!o.metrics_json.empty() &&
        obs::write_file(o.metrics_json, obs::to_json(snap))) {
        std::printf("metrics: wrote JSON snapshot to %s\n",
                    o.metrics_json.c_str());
    }
    if (!o.metrics_csv.empty() &&
        obs::write_file(o.metrics_csv, obs::to_csv(snap))) {
        std::printf("metrics: wrote CSV snapshot to %s\n",
                    o.metrics_csv.c_str());
    }
}

} // namespace bench
