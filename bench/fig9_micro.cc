/// Fig. 9 (paper §5.2.2): threadtest-small and xmalloc-small throughput and
/// memory consumption for every allocator across thread counts.
///
/// Fixed total work split evenly across threads, as in the paper. On this
/// reproduction host, wall-clock captures per-op software cost; contention
/// effects appear in the CAS/mCAS failure counters printed per row.

#include <cstdio>

#include "support.h"
#include "workload/micro.h"

namespace {

constexpr std::uint64_t kTotalPairs = 400'000; // split across threads
constexpr std::uint64_t kSmokePairs = 16'384;  // --smoke run
constexpr std::uint64_t kBatch = 512;
constexpr std::uint64_t kObjectSize = 64;

void
threadtest_series(const std::string& name, std::uint32_t threads,
                  std::uint64_t total_pairs)
{
    bench::Geometry geom;
    bench::Bundle b = bench::make_bundle(name, geom);
    std::uint64_t rounds = total_pairs / threads / kBatch;
    bench::RunResult r = bench::run_threads(
        b, threads, [&](pod::ThreadContext& ctx, std::uint32_t) {
            std::uint64_t pairs = workload::run_threadtest(
                *b.alloc, ctx, rounds, kBatch, kObjectSize);
            if (auto* ra = dynamic_cast<baselines::Rallocish*>(b.alloc.get())) {
                ra->flush_thread_cache(ctx);
            }
            return 2 * pairs; // alloc + free
        });
    bench::print_row("fig9", "threadtest-small", name, threads, r);
}

void
xmalloc_series(const std::string& name, std::uint32_t threads,
               std::uint64_t total_pairs)
{
    bench::Geometry geom;
    bench::Bundle b = bench::make_bundle(name, geom);
    workload::XmallocRing ring(threads);
    std::uint64_t per_thread = total_pairs / threads;
    bench::RunResult r = bench::run_threads(
        b, threads, [&](pod::ThreadContext& ctx, std::uint32_t w) {
            std::uint64_t done = workload::run_xmalloc(
                *b.alloc, ctx, ring, w, per_thread, kObjectSize);
            if (auto* ra = dynamic_cast<baselines::Rallocish*>(b.alloc.get())) {
                ra->flush_thread_cache(ctx);
            }
            return done;
        });
    char note[96];
    std::snprintf(note, sizeof note, "cas-fail=%llu mcas-conflict=%llu",
                  static_cast<unsigned long long>(r.events.cas_failures),
                  static_cast<unsigned long long>(r.events.mcas_conflicts));
    bench::print_row("fig9", "xmalloc-small", name, threads, r, note);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    std::vector<std::uint32_t> thread_counts =
        opt.smoke ? std::vector<std::uint32_t>{2u}
                  : std::vector<std::uint32_t>{1u, 2u, 4u, 8u};
    std::vector<std::string> allocators =
        opt.smoke ? std::vector<std::string>{"cxlalloc"}
                  : bench::all_allocators();
    std::uint64_t total_pairs = opt.smoke ? kSmokePairs : kTotalPairs;

    std::puts("Fig. 9: small-heap allocator microbenchmarks "
              "(threadtest-small, xmalloc-small)");
    for (std::uint32_t threads : thread_counts) {
        for (const std::string& name : allocators) {
            threadtest_series(name, threads, total_pairs);
        }
    }
    std::puts("");
    for (std::uint32_t threads : thread_counts) {
        for (const std::string& name : allocators) {
            xmalloc_series(name, threads, total_pairs);
        }
    }
    std::puts("\nPaper shape (Fig. 9): mimalloc fastest on threadtest "
              "(intrusive fast path); cxlalloc ~47% and ralloc ~41% of it;");
    std::puts("boost/lightning flat (global mutex); on xmalloc cxlalloc "
              "~81%, ralloc ~106% of mimalloc, falling off at high threads;");
    std::puts("cxl-shm below the lock-free group (per-op refcount+header).");
    bench::finish_metrics(opt);
    return 0;
}
