/// Ablation (paper §5.2.1/§5.2.2 "Partial failure"): cost of cxlalloc's
/// recoverability — the per-operation 8-byte redo record (store + flush +
/// fence) and detectable CAS — measured as cxlalloc vs
/// cxlalloc-nonrecoverable on three workloads.
///
/// Paper numbers: 0.3% slower on the KV macro-benchmarks, 94.7% of
/// nonrecoverable throughput on threadtest (5.3% cost), 88.4% on xmalloc
/// (11.6%, the detectable-CAS remote-free tax).

#include <cstdio>

#include "kv/kv_store.h"
#include "support.h"
#include "workload/kv_workload.h"
#include "workload/micro.h"

namespace {

double
run_threadtest(const std::string& name, std::uint32_t threads)
{
    bench::Geometry geom;
    bench::Bundle b = bench::make_bundle(name, geom);
    bench::RunResult r = bench::run_threads(
        b, threads, [&](pod::ThreadContext& ctx, std::uint32_t) {
            return 2 * workload::run_threadtest(*b.alloc, ctx,
                                                300'000 / threads / 256, 256,
                                                64);
        });
    return r.mops_wall();
}

double
run_xmalloc(const std::string& name, std::uint32_t threads)
{
    bench::Geometry geom;
    bench::Bundle b = bench::make_bundle(name, geom);
    workload::XmallocRing ring(threads);
    bench::RunResult r = bench::run_threads(
        b, threads, [&](pod::ThreadContext& ctx, std::uint32_t w) {
            return workload::run_xmalloc(*b.alloc, ctx, ring, w,
                                         200'000 / threads, 64);
        });
    return r.mops_wall();
}

double
run_ycsb(const std::string& name, std::uint32_t threads)
{
    bench::Geometry geom;
    geom.small_slabs = 4096;
    geom.extra_bytes = kv::HashTable::footprint(1 << 14);
    bench::Bundle b = bench::make_bundle(name, geom);
    kv::KvStore store(*b.pod, b.extra_base, 1 << 14, b.alloc.get());
    bench::RunResult r = bench::run_threads(
        b, threads, [&](pod::ThreadContext& ctx, std::uint32_t w) {
            workload::KvOpStream stream(workload::ycsb_load(), w + 1);
            std::vector<char> value(960, 'v');
            std::uint64_t ops = 40'000 / threads;
            for (std::uint64_t i = 0; i < ops; i++) {
                workload::KvOp op = stream.next();
                store.insert(ctx, op.key, op.klen, value.data(), op.vlen);
            }
            return ops;
        });
    return r.mops_wall();
}

void
compare(const char* workload_name,
        double (*runner)(const std::string&, std::uint32_t),
        std::uint32_t threads)
{
    // Interleave repetitions so frequency/cache drift hits both variants.
    double rec = 0;
    double nonrec = 0;
    constexpr int kTrials = 3;
    for (int trial = 0; trial < kTrials; trial++) {
        rec += runner("cxlalloc", threads);
        nonrec += runner("cxlalloc-nonrecoverable", threads);
    }
    rec /= kTrials;
    nonrec /= kTrials;
    std::printf("ablate recovery  %-12s t=%-2u  recoverable=%7.2f Mops/s  "
                "nonrecoverable=%7.2f Mops/s  ratio=%5.1f%%\n",
                workload_name, threads, rec, nonrec, 100.0 * rec / nonrec);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    std::puts("Ablation: partial-failure tolerance overhead "
              "(cxlalloc vs cxlalloc-nonrecoverable)");
    for (std::uint32_t threads : {1u, 4u}) {
        compare("threadtest", run_threadtest, threads);
        compare("xmalloc", run_xmalloc, threads);
        compare("ycsb-load", run_ycsb, threads);
    }
    std::puts("\nPaper reference: 99.7% on KV macro-benchmarks, 94.7% on "
              "threadtest, 88.4% on xmalloc (detectable CAS on the");
    std::puts("remote-free path is the largest cost).");
    bench::finish_metrics(opt);
    return 0;
}
