/// @file
/// Schedule-explorer throughput smoke: how many full schedules per second
/// the engine sustains on a representative protocol world (two threads
/// racing detectable-CAS increments). Reports through the obs registry
/// ("sched.schedules", "sched.steps", "sched.schedules_per_sec") so the
/// metrics pipeline covers the sched subsystem end to end.
///
///   sched_explore [--smoke] [--metrics-json <path>] [--metrics-csv <path>]

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "obs/registry.h"
#include "pod/pod.h"
#include "sched/explorer.h"
#include "support.h"
#include "sync/detectable_cas.h"

namespace {

constexpr cxl::HeapOffset kHelpBase = 4096;
constexpr cxl::HeapOffset kWord = 8192;

struct DcasWorld {
    DcasWorld() : pod(pod_config()), dcas(kHelpBase)
    {
        process = pod.create_process();
        for (int i = 0; i < 2; i++) {
            ctxs[i] = pod.create_thread(process);
        }
    }

    static pod::PodConfig
    pod_config()
    {
        pod::PodConfig pc;
        pc.device.size = 64 << 10;
        pc.device.mode = cxl::CoherenceMode::PartialHwcc;
        pc.device.sync_region_size = 16 << 10;
        return pc;
    }

    pod::Pod pod;
    pod::Process* process;
    cxlsync::DetectableCas dcas;
    std::unique_ptr<pod::ThreadContext> ctxs[2];
};

void
factory(sched::Run& run)
{
    auto w = std::make_shared<DcasWorld>();
    for (int i = 0; i < 2; i++) {
        run.spawn("inc" + std::to_string(i), [w, i] {
            cxl::MemSession& mem = w->ctxs[i]->mem();
            for (std::uint16_t k = 1; k <= 4; k++) {
                while (true) {
                    std::uint32_t cur = w->dcas.read(mem, kWord);
                    if (w->dcas.try_cas(mem, kWord, cur, cur + 1, k)
                            .success) {
                        break;
                    }
                }
            }
        });
    }
}

sched::Result
explore(sched::Strategy strategy, std::uint32_t schedules)
{
    sched::Options opt;
    opt.strategy = strategy;
    opt.seed = 12345;
    opt.schedules = schedules;
    return sched::Explorer(opt).run(factory);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Options options = bench::parse_options(argc, argv);
    const std::uint32_t schedules = options.smoke ? 400 : 4000;

    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::MetricId m_schedules = reg.counter("sched.schedules");
    obs::MetricId m_steps = reg.counter("sched.steps");
    obs::MetricId m_rate = reg.gauge("sched.schedules_per_sec");

    struct {
        const char* name;
        sched::Strategy strategy;
    } rows[] = {
        {"random", sched::Strategy::Random},
        {"pct", sched::Strategy::Pct},
    };
    std::printf("%-8s %12s %12s %16s\n", "strategy", "schedules", "steps",
                "schedules/sec");
    for (const auto& row : rows) {
        auto start = std::chrono::steady_clock::now();
        sched::Result r = explore(row.strategy, schedules);
        std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;
        if (!r.ok) {
            std::fprintf(stderr, "unexpected oracle failure:\n%s\n",
                         r.summary().c_str());
            return 1;
        }
        double rate = static_cast<double>(r.schedules_run) /
                      (wall.count() > 0 ? wall.count() : 1e-9);
        reg.add(m_schedules, r.schedules_run);
        reg.add(m_steps, r.total_steps);
        reg.set_gauge(m_rate, rate);
        std::printf("%-8s %12llu %12llu %16.0f\n", row.name,
                    static_cast<unsigned long long>(r.schedules_run),
                    static_cast<unsigned long long>(r.total_steps), rate);
    }
    bench::finish_metrics(options);
    return 0;
}
