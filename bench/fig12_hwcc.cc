/// Fig. 12 (paper §5.4.2): small-heap microbenchmarks under different CXL
/// HWcc architectural assumptions — cxlalloc and ralloc on local DRAM,
/// CXL memory with HWcc, and CXL memory with NO HWcc (all synchronization
/// through the NMP mCAS engine).
///
/// Reported throughput here is the *simulated* throughput from the
/// calibrated latency model (paper §5.4 measurements: DRAM 112 ns, CXL
/// 357 ns, mCAS ~2.3 µs) driven by the allocators' actual event streams —
/// wall-clock on this host cannot express a 2.3 µs memory-side CAS.

#include <cstdio>

#include "support.h"
#include "workload/micro.h"

namespace {

constexpr std::uint64_t kTotalPairs = 120'000;
constexpr std::uint64_t kBatch = 256;
constexpr std::uint64_t kObjectSize = 64;

void
run_one(const char* workload_name, const std::string& alloc_name,
        bench::MemoryMode mode, std::uint32_t threads)
{
    bench::Geometry geom;
    bench::Bundle b = bench::make_bundle(alloc_name, geom, mode);
    // Latency model on for every mode so simulated numbers are comparable.
    b.use_latency_model = true;
    if (mode == bench::MemoryMode::Local) {
        b.latency = cxl::LatencyModel::local_dram();
    }
    bench::RunResult r;
    bool is_threadtest = std::string(workload_name) == "threadtest-small";
    if (is_threadtest) {
        std::uint64_t rounds = kTotalPairs / threads / kBatch;
        r = bench::run_threads(
            b, threads, [&](pod::ThreadContext& ctx, std::uint32_t) {
                return 2 * workload::run_threadtest(*b.alloc, ctx, rounds,
                                                    kBatch, kObjectSize);
            });
    } else {
        workload::XmallocRing ring(threads);
        r = bench::run_threads(
            b, threads, [&](pod::ThreadContext& ctx, std::uint32_t w) {
                return workload::run_xmalloc(*b.alloc, ctx, ring, w,
                                             kTotalPairs / threads,
                                             kObjectSize);
            });
    }
    std::printf("fig12  %-16s %-14s-%-5s t=%-2u  %9.3f Mops/s (sim)  "
                "%8.3f Mops/s (wall)  mcas=%-8llu flush=%llu\n",
                workload_name, alloc_name.c_str(),
                bench::to_string(mode), threads, r.mops_sim(), r.mops_wall(),
                static_cast<unsigned long long>(r.events.mcas_ops),
                static_cast<unsigned long long>(r.events.flushes));
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    std::puts("Fig. 12: microbenchmark throughput under CXL HWcc "
              "assumptions (local DRAM / CXL+HWcc / CXL+mCAS)");
    const char* workloads[] = {"threadtest-small", "xmalloc-small"};
    for (const char* w : workloads) {
        for (std::uint32_t threads : {1u, 2u, 4u}) {
            for (const std::string& alloc : {std::string("cxlalloc"),
                                             std::string("ralloc-like")}) {
                for (bench::MemoryMode mode :
                     {bench::MemoryMode::Local, bench::MemoryMode::CxlHwcc,
                      bench::MemoryMode::CxlMcas}) {
                    run_one(w, alloc, mode, threads);
                }
            }
        }
        std::puts("");
    }
    std::puts("Paper shape (Fig. 12): local ~= hwcc for both; under mCAS, "
              "cxlalloc-threadtest keeps ~80% of hwcc (local ops stay");
    std::puts("cached; no mCAS on the fast path) while ralloc-mcas pays an "
              "uncachable metadata read per free (10-99x gap);");
    std::puts("on xmalloc every remote free is an mCAS: cxlalloc-mcas drops "
              "to ~1% of hwcc but scales past ralloc-mcas, whose shared");
    std::puts("slab metadata contends on the engine.");
    bench::finish_metrics(opt);
    return 0;
}
