/// Pod fault storm: KV-style reference-cell traffic on a 2-host x 2-device
/// pod driven through a scripted FaultPlan — an NMP doorbell slowdown and
/// stall under a remote free batch, a long edge flap that parks frees and
/// throws typed EdgeDownErrors at cross-device readers, a short flap on the
/// monitor-facing edge that manufactures exactly one liveness false
/// suspect, a Suspect-device live evacuation, and finally a whole-host
/// kill that the LivenessDetector must notice and the surviving host must
/// adopt and recover.
///
/// Everything runs on one OS thread in lockstep rounds with fixed RNG
/// seeds, so every number below — including the CI-budgeted gauges
/// pod.edge_down_ops, liveness.false_suspects and evac.blocks_per_op — is
/// exactly reproducible. The bench self-gates:
///
///  - post-storm throughput (sim ns/op of the surviving worker) must stay
///    >= 90% of the pre-storm baseline;
///  - exact block accounting after the final drain: zero parked frees and,
///    on every classed small slab of both shards, free counter == bitmap
///    popcount == class capacity (a lost free or a double free after
///    host-kill recovery + quarantine replay cannot hide from this);
///  - one host death, at least one false suspect, a nonzero evacuation
///    with zero aborted moves, and the parked stash fully replayed.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/random.h"
#include "cxlalloc/migrate.h"
#include "pod/faults.h"
#include "pod/liveness.h"
#include "support.h"
#include "sync/detectable_cas.h"

namespace {

constexpr std::uint64_t kObjSize = 64;

/// Storm script timeline (injector steps; one step per storm round).
constexpr std::uint64_t kStepNmpDelay = 3;
constexpr std::uint64_t kStepNmpStall = 5;
constexpr std::uint64_t kStepLongFlap = 10;  ///< host 0 loses device 1
constexpr std::uint64_t kLongFlapDown = 20;  ///< ... until step 30
constexpr std::uint64_t kStepLeaseFlap = 40; ///< host 1 loses device 0
constexpr std::uint64_t kLeaseFlapDown = 5;  ///< long enough for Suspect only
constexpr std::uint64_t kStepEvacuate = 60;  ///< scripted Suspect + evac
constexpr std::uint64_t kStepHostKill = 80;
constexpr std::uint64_t kStormRounds = 100;

struct Plan {
    std::uint32_t objects;
    std::uint32_t ops_per_round;
    std::uint32_t pre_rounds;
    std::uint32_t post_rounds;
    std::uint32_t stash; ///< extra blocks per scripted stash free
};

cxl::EdgeCost
far_edge()
{
    cxl::EdgeCost e;
    e.read_add_ns = 100;
    e.write_add_ns = 150;
    e.ns_per_kib = 4;
    return e;
}

struct Worker {
    std::unique_ptr<pod::ThreadContext> ctx;
    pod::HostId host = 0;
    std::uint32_t lo = 0; ///< cell partition [lo, hi)
    std::uint32_t hi = 0;
    cxlcommon::Xoshiro rng{0};
    std::uint64_t ops = 0;
};

struct Rig {
    Plan plan;
    pod::Topology topo;
    bench::PodBundle b;
    cxlalloc::CxlAllocator* cell_shard = nullptr;
    cxl::HeapOffset cells = 0;
    cxl::HeapOffset lease_base = 0;
    std::unique_ptr<cxlalloc::HotSlabMigrator> migrator;
    std::unique_ptr<pod::LivenessDetector> detector;
    std::unique_ptr<pod::FaultInjector> injector;
    std::unique_ptr<pod::ThreadContext> monitor;
    Worker workers[2];
    std::vector<cxl::HeapOffset> stall_stash; ///< host-1 blocks, batch-freed
    std::vector<cxl::HeapOffset> park_stash;  ///< freed while the edge is Down
    std::uint64_t edge_down_ops = 0;
    std::uint64_t replayed = 0;
    std::uint64_t evacuated = 0;
    std::uint64_t rehomed = 0;
    std::uint64_t deaths_handled = 0;
    char payload[kObjSize];
    char buf[kObjSize];

    explicit Rig(const Plan& p)
        : plan(p),
          topo(pod::Topology::dense(2, 2, cxl::EdgeCost{}, far_edge()))
    {
        bench::Geometry geom;
        geom.small_slabs = 96; // 3 MiB/shard, ~2x the live set plus churn
        geom.large_slabs = 4;
        geom.huge_regions = 1;
        geom.huge_region_size = 1 << 20;
        // Reference cells plus the liveness lease table, both in the
        // device-0 shard's app-sync (always-coherent) region.
        geom.app_sync_bytes =
            static_cast<std::uint64_t>(plan.objects) * 8 +
            pod::kLeaseTableBytes;
        // NoHwcc: all synchronization rides the NMP engine, so the scripted
        // doorbell stall/delay hits the real mCAS path (under HWcc the
        // remote-free batch never rings a doorbell).
        b = bench::make_pod_bundle(topo, geom, bench::MemoryMode::CxlMcas);
        cell_shard = &b.heap->shard(topo.home_of(0));
        cells = cell_shard->layout().app_sync();
        lease_base = cells + static_cast<cxl::HeapOffset>(plan.objects) * 8;

        migrator = std::make_unique<cxlalloc::HotSlabMigrator>(*b.heap);
        migrator->set_cell_table(cells, plan.objects);
        migrator->set_metrics(bench::bundle_metrics());

        pod::LivenessConfig lcfg;
        lcfg.lease_base = lease_base;
        lcfg.suspect_after = 3;
        lcfg.dead_after = 8;
        detector = std::make_unique<pod::LivenessDetector>(*b.pod, lcfg);
        monitor = b.thread(0);

        for (pod::HostId h = 0; h < 2; h++) {
            Worker& w = workers[h];
            w.ctx = b.thread(h);
            w.host = h;
            w.lo = h * plan.objects / 2;
            w.hi = (h + 1) * plan.objects / 2;
            w.rng = cxlcommon::Xoshiro(0xfa017 + h * 7919u);
        }
        std::memset(payload, 0x6b, sizeof payload);

        pod::FaultPlan script;
        script.nmp_delay(kStepNmpDelay, 500, 2)
            .nmp_stall(kStepNmpStall, 2)
            .edge_flap(0, 1, kStepLongFlap, kLongFlapDown)
            .edge_flap(1, 0, kStepLeaseFlap, kLeaseFlapDown)
            .host_kill(1, kStepHostKill);
        injector = std::make_unique<pod::FaultInjector>(*b.pod, script);
    }

    cxl::HeapOffset
    cell_of(std::uint32_t i) const
    {
        return cells + static_cast<cxl::HeapOffset>(i) * 8;
    }

    /// Allocates and publishes @p w's cell partition (objects land on the
    /// worker's home device), plus the scripted stashes from host 1.
    void
    populate()
    {
        for (Worker& w : workers) {
            cxl::MemSession& mem = w.ctx->mem();
            for (std::uint32_t i = w.lo; i < w.hi; i++) {
                cxl::HeapOffset off = b.heap->allocate(*w.ctx, kObjSize);
                CXL_FATAL_IF(off == 0, "fault_storm: populate exhausted");
                mem.write_bytes(off, payload, kObjSize);
                mem.flush(off, kObjSize);
                mem.fence();
                auto res = cell_shard->cell_publish(
                    *w.ctx, cell_of(i), 0,
                    static_cast<std::uint32_t>(off >> 3));
                CXL_FATAL_IF(!res.success, "fault_storm: populate publish");
            }
        }
        // Host-1-owned blocks host 0 will batch-free through the stalled
        // doorbell (stall_stash) and into the Down edge (park_stash).
        Worker& w1 = workers[1];
        for (std::uint32_t i = 0; i < plan.stash * 2; i++) {
            cxl::HeapOffset off = b.heap->allocate(*w1.ctx, kObjSize);
            CXL_FATAL_IF(off == 0, "fault_storm: stash exhausted");
            (i < plan.stash ? stall_stash : park_stash).push_back(off);
        }
    }

    /// One workload op: 20% cross-partition read, else 50/50 own-partition
    /// update (alloc + publish + free old) / read. Typed EdgeDownErrors —
    /// the degraded-mode contract under a Down edge — are counted, never
    /// fatal.
    void
    do_op(Worker& w)
    {
        cxl::MemSession& mem = w.ctx->mem();
        double roll = w.rng.next_double();
        bool cross = roll < 0.2;
        bool update = !cross && roll >= 0.6;
        std::uint32_t idx =
            cross ? static_cast<std::uint32_t>(w.rng.next() % plan.objects)
                  : w.lo + static_cast<std::uint32_t>(w.rng.next() %
                                                      (w.hi - w.lo));
        try {
            cxl::HeapOffset cell = cell_of(idx);
            std::uint32_t val = cell_shard->dcas().read(mem, cell);
            if (val != 0) {
                auto off = static_cast<cxl::HeapOffset>(val) << 3;
                if (update) {
                    cxl::HeapOffset fresh =
                        b.heap->allocate(*w.ctx, kObjSize);
                    if (fresh != 0) {
                        mem.write_bytes(fresh, payload, kObjSize);
                        mem.flush(fresh, kObjSize);
                        mem.fence();
                        auto res = cell_shard->cell_publish(
                            *w.ctx, cell, val,
                            static_cast<std::uint32_t>(fresh >> 3));
                        b.heap->deallocate(*w.ctx,
                                           res.success ? off : fresh);
                    }
                } else {
                    mem.read_bytes(off, buf, kObjSize);
                }
            }
        } catch (const cxl::EdgeDownError&) {
            edge_down_ops++;
        }
        w.ops++;
    }

    /// Harness side of the script: actions keyed to the injector clock
    /// that need a thread (the injector itself only flips state).
    void
    scripted(std::uint64_t now)
    {
        Worker& w0 = workers[0];
        if (now == kStepNmpStall) {
            // Remote free batch from host 0 into host 1's shard: the only
            // cxlalloc path through the NMP doorbell, rung right after the
            // stall armed — the session's retry ladder must absorb it.
            b.heap->deallocate_batch(
                *w0.ctx, stall_stash.data(),
                static_cast<std::uint32_t>(stall_stash.size()));
            stall_stash.clear();
        }
        if (now == kStepLongFlap + 2) {
            // Frees aimed at the Down device: every one must park, none
            // may be lost — they replay after the flap recovers.
            b.heap->deallocate_batch(
                *w0.ctx, park_stash.data(),
                static_cast<std::uint32_t>(park_stash.size()));
        }
        if (now == kStepEvacuate) {
            // Device 1 starts answering erratically: mark it Suspect from
            // host 0's seat and pull the reachable blocks home while it
            // still answers.
            topo.set_edge_state(0, 1, cxl::EdgeState::Suspect);
            b.heap->refresh_placement();
            evacuated += migrator->evacuate_device(*w0.ctx, 1, 0);
            topo.set_edge_state(0, 1, cxl::EdgeState::Up);
            b.heap->refresh_placement();
        }
        if (injector->host_killed(1) && workers[1].ctx != nullptr) {
            // Host 1 dies: its context vanishes without writeback. The
            // monitor finds out via missed leases, not from us.
            if (obs::MetricsRegistry* reg = bench::bundle_metrics()) {
                workers[1].ctx->mem().publish_metrics(*reg);
            }
            b.pod->mark_crashed(std::move(workers[1].ctx),
                                pod::Pod::CrashSeverity::Host);
        }
    }

    /// Dead-host verdict: adopt every crashed slot on the surviving host,
    /// run migrator-aware recovery, evacuate the dead host's device, and
    /// take over its cell partition.
    void
    on_dead(pod::HostId host)
    {
        Worker& w0 = workers[0];
        for (cxl::ThreadId tid : b.pod->crashed_threads()) {
            auto rec = b.pod->adopt_thread(b.host_process[0], tid);
            migrator->recover(*rec);
            if (obs::MetricsRegistry* reg = bench::bundle_metrics()) {
                rec->mem().publish_metrics(*reg);
            }
            b.pod->release_thread(std::move(rec));
        }
        evacuated += migrator->evacuate_device(
            *w0.ctx, topo.home_of(host), topo.home_of(w0.host));
        // The storm left live blocks in slabs the survivor no longer owns
        // (slabs disown themselves when they fill while carrying remote
        // frees), and every free into those costs a serial mCAS. Re-home
        // them once so steady-state traffic is host-local again — this is
        // what the >= 90% post-storm throughput gate is really gating.
        rehomed += migrator->rehome(*w0.ctx, topo.home_of(w0.host));
        w0.lo = 0;
        w0.hi = plan.objects;
        deaths_handled++;
    }

    /// One lockstep round. Storm rounds advance the fault clock first.
    void
    round(bool storm)
    {
        if (storm) {
            injector->step();
            scripted(injector->now());
            b.heap->refresh_placement();
        }
        for (Worker& w : workers) {
            if (w.ctx != nullptr) {
                pod::LivenessDetector::beat(w.ctx->mem(), lease_base,
                                            w.host);
            }
        }
        for (pod::HostId dead : detector->poll(monitor->mem())) {
            on_dead(dead);
        }
        for (Worker& w : workers) {
            if (w.ctx == nullptr) {
                continue;
            }
            for (std::uint32_t k = 0; k < plan.ops_per_round; k++) {
                do_op(w);
            }
        }
        replayed += b.heap->replay_parked(*workers[0].ctx);
    }

    /// Sim ns/op of worker 0 over @p rounds lockstep rounds.
    double
    measure(std::uint32_t rounds, bool storm)
    {
        Worker& w0 = workers[0];
        std::uint64_t sim0 = w0.ctx->mem().sim_ns();
        std::uint64_t ops0 = w0.ops;
        for (std::uint32_t r = 0; r < rounds; r++) {
            round(storm);
        }
        std::uint64_t dops = w0.ops - ops0;
        return dops > 0 ? static_cast<double>(w0.ctx->mem().sim_ns() - sim0) /
                              static_cast<double>(dops)
                        : 0.0;
    }

    /// Frees every live object, drains the parked list, and sweeps both
    /// shards: every classed small slab must read free counter == bitmap
    /// popcount == class capacity. Returns the number of violations.
    std::uint32_t
    drain_and_verify()
    {
        Worker& w0 = workers[0];
        cxl::MemSession& mem = w0.ctx->mem();
        for (std::uint32_t i = 0; i < plan.objects; i++) {
            std::uint32_t val = cell_shard->dcas().read(mem, cell_of(i));
            if (val != 0) {
                b.heap->deallocate(*w0.ctx,
                                   static_cast<cxl::HeapOffset>(val) << 3);
            }
        }
        b.heap->refresh_placement();
        replayed += b.heap->replay_parked(*w0.ctx);

        std::uint32_t bad = 0;
        if (b.heap->parked_frees() != 0) {
            std::printf("FAIL: %" PRIu64 " frees still parked after full "
                        "drain\n",
                        b.heap->parked_frees());
            bad++;
        }
        for (cxl::DeviceId d = 0; d < b.heap->shard_count(); d++) {
            cxlalloc::CxlAllocator& shard = b.heap->shard(d);
            cxlalloc::SlabHeap& small = shard.small_heap();
            for (std::uint32_t s = 0; s < shard.config().small_slabs; s++) {
                std::uint8_t biased = small.debug_class_biased(mem, s);
                if (biased == 0) {
                    continue;
                }
                std::uint32_t free_blocks = small.debug_free_blocks(mem, s);
                std::uint32_t popcount = small.debug_bitset_count(mem, s);
                std::uint32_t remote = small.debug_remote_free(mem, s);
                // Conservation law on a quiescent slab: the bitset and its
                // shadow counter agree, and the remote-free down-counter
                // has come all the way down to the locally-freed count —
                // i.e. zero live blocks. A lost free (edge outage, dead
                // host, dropped quarantine replay) strands the counter
                // high; a double free trips the underflow assert upstream.
                if (free_blocks != popcount || remote != free_blocks) {
                    std::printf("FAIL: shard %u slab %u: free=%u pop=%u "
                                "remote=%u\n",
                                d, s, free_blocks, popcount, remote);
                    bad++;
                }
            }
        }
        b.heap->check_invariants(mem);
        return bad;
    }

    std::uint64_t
    total_ops() const
    {
        return workers[0].ops + workers[1].ops;
    }
};

} // namespace

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    Plan plan = opt.smoke ? Plan{256, 8, 10, 10, 8}
                          : Plan{1024, 16, 40, 40, 16};

    std::puts("Pod fault storm: 2 hosts x 2 devices, scripted NMP "
              "stall/delay + edge flaps + Suspect evacuation + host kill");

    Rig rig(plan);
    rig.populate();

    double pre_ns_op = rig.measure(plan.pre_rounds, /*storm=*/false);
    std::printf("pre-storm  %9.1f ns/op (sim, worker 0)\n", pre_ns_op);

    for (std::uint64_t r = 0; r < kStormRounds; r++) {
        rig.round(/*storm=*/true);
    }
    std::printf("storm      %" PRIu64 " rounds: %" PRIu64 " edge-down ops, "
                "%" PRIu64 " parked-free replays, %" PRIu64 " evacuated + %"
                PRIu64 " rehomed blocks, %" PRIu64 " false suspects, %"
                PRIu64 " deaths\n",
                kStormRounds, rig.edge_down_ops, rig.replayed, rig.evacuated,
                rig.rehomed, rig.detector->false_suspects(),
                rig.detector->deaths());

    double post_ns_op = rig.measure(plan.post_rounds, /*storm=*/false);
    double ratio = post_ns_op > 0 ? pre_ns_op / post_ns_op : 0;
    std::printf("post-storm %9.1f ns/op (sim, worker 0)  throughput ratio "
                "%.3f\n",
                post_ns_op, ratio);

    std::uint32_t failures = 0;
    auto gate = [&](bool ok, const char* what) {
        if (!ok) {
            std::printf("FAIL: %s\n", what);
            failures++;
        }
    };
    gate(rig.injector->done(), "fault plan did not fully fire/recover");
    gate(ratio >= 0.9, "post-storm throughput below 90% of pre-storm");
    gate(rig.edge_down_ops > 0, "no typed edge-down ops observed");
    gate(rig.detector->deaths() == 1 && rig.deaths_handled == 1,
         "host kill not detected exactly once");
    gate(rig.detector->false_suspects() >= 1,
         "lease flap produced no false suspect");
    gate(rig.evacuated > 0, "evacuation moved nothing");
    gate(rig.migrator->aborted() == 0, "evacuation aborted moves");
    gate(rig.replayed >= plan.stash, "parked stash not fully replayed");
    gate(rig.b.pod->nmp().total_stalled_doorbells() >= 2,
         "doorbell stall never exercised the retry ladder");
    failures += rig.drain_and_verify();

    std::uint64_t ops = rig.total_ops();
    if (obs::MetricsRegistry* reg = bench::bundle_metrics()) {
        rig.workers[0].ctx->mem().publish_metrics(*reg);
        rig.monitor->mem().publish_metrics(*reg);
        reg->shard(rig.workers[0].ctx->tid())
            .add(reg->counter("run.ops"), ops);
        reg->set_gauge(reg->gauge("pod.edge_down_ops"),
                       static_cast<double>(rig.edge_down_ops));
        reg->set_gauge(reg->gauge("liveness.false_suspects"),
                       static_cast<double>(rig.detector->false_suspects()));
        reg->set_gauge(reg->gauge("evac.blocks_per_op"),
                       ops > 0 ? static_cast<double>(rig.evacuated) /
                                     static_cast<double>(ops)
                               : 0);
        reg->set_gauge(reg->gauge("fault.post_storm_ratio"), ratio);
    }

    std::printf("fault_storm: %s (%" PRIu64 " ops, %" PRIu64
                " stalled doorbells)\n",
                failures == 0 ? "all gates passed" : "GATES FAILED",
                ops, rig.b.pod->nmp().total_stalled_doorbells());
    bench::finish_metrics(opt);
    return failures == 0 ? 0 : 1;
}
