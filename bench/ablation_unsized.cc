/// Ablation of the unsized-list spill threshold (paper §3.1.1: slabs are
/// transferred to the global free list when the thread-local unsized list
/// reaches "a configurable threshold length"). Sweeps the threshold on the
/// xmalloc workload, where stolen slabs constantly flow through the
/// unsized lists: a low threshold bounces slabs through the contended
/// global list; a high threshold hoards memory per thread.

#include <cstdio>

#include "support.h"
#include "workload/micro.h"

namespace {

void
run_with_limit(std::uint32_t limit, std::uint32_t threads)
{
    cxlalloc::Config cfg;
    cfg.small_slabs = 2048;
    cfg.large_slabs = 16;
    cfg.huge_regions = 4;
    cfg.unsized_limit = limit;
    pod::PodConfig pc;
    pc.device =
        cxlalloc::Layout(cfg).device_config(cxl::CoherenceMode::PartialHwcc);
    pod::Pod pod(pc);
    cxlalloc::CxlAllocator heap(pod, cfg);
    baselines::CxlallocAdapter adapter(&heap);
    pod::Process* proc = pod.create_process();
    heap.attach(*proc);

    workload::XmallocRing ring(threads);
    std::vector<std::thread> workers;
    std::vector<std::uint64_t> ops(threads, 0);
    std::vector<cxl::MemEventCounters> ev(threads);
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t w = 0; w < threads; w++) {
        workers.emplace_back([&, w] {
            auto ctx = pod.create_thread(proc);
            heap.attach_thread(*ctx);
            ops[w] = workload::run_xmalloc(adapter, *ctx, ring, w,
                                           200'000 / threads, 64);
            ev[w] = ctx->mem().counters();
            pod.release_thread(std::move(ctx));
        });
    }
    for (auto& th : workers) {
        th.join();
    }
    double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::uint64_t total_ops = 0;
    cxl::MemEventCounters total;
    for (std::uint32_t w = 0; w < threads; w++) {
        total_ops += ops[w];
        total += ev[w];
    }
    auto probe = pod.create_thread(proc);
    heap.attach_thread(*probe);
    auto stats = heap.stats(probe->mem());
    pod.release_thread(std::move(probe));
    std::printf("ablate unsized-limit=%-3u t=%-2u  %7.2f Mops/s  "
                "cas=%-8llu cas-fail=%-6llu heap=%u slabs "
                "global-free=%u\n",
                limit, threads, static_cast<double>(total_ops) / secs / 1e6,
                static_cast<unsigned long long>(total.cas_ops),
                static_cast<unsigned long long>(total.cas_failures),
                stats.small.length, stats.small.global_free);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    std::puts("Ablation: thread-local unsized free list spill threshold "
              "(xmalloc-small, producer/consumer slab flow)");
    for (std::uint32_t threads : {2u, 4u}) {
        for (std::uint32_t limit : {0u, 1u, 4u, 16u, 64u}) {
            run_with_limit(limit, threads);
        }
        std::puts("");
    }
    std::puts("Expected: limit=0 sends every recycled slab through the "
              "global list (max CAS traffic); large limits cut the CAS");
    std::puts("traffic but let each thread hoard slabs (watch heap size). "
              "The default (4) balances the two.");
    bench::finish_metrics(opt);
    return 0;
}
