/// Table 2 (paper §5.2.1): summary statistics of the key-value store
/// workloads — the specified mix plus an empirical sample from the actual
/// generators, so the reproduction of the trace shapes is checkable.

#include <cstdio>

#include "common/stats.h"
#include "support.h"
#include "workload/kv_workload.h"

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    std::puts("Table 2: in-memory key-value store workload summary");
    std::printf("%-10s %8s %8s %-9s %-12s %-14s | %-28s\n", "Workload",
                "Ins.%", "Del.%", "KeyDistr", "KeySize", "ValueSize",
                "empirical sample (100k ops)");
    for (const auto& spec : workload::all_kv_workloads()) {
        workload::KvOpStream stream(spec, 42);
        constexpr int kN = 100'000;
        std::uint64_t inserts = 0;
        std::uint64_t removes = 0;
        std::uint64_t kmin = ~0ULL, kmax = 0;
        std::uint64_t vmin = ~0ULL, vmax = 0;
        cxlcommon::RunningStat vsize;
        for (int i = 0; i < kN; i++) {
            workload::KvOp op = stream.next();
            kmin = std::min<std::uint64_t>(kmin, op.klen);
            kmax = std::max<std::uint64_t>(kmax, op.klen);
            if (op.type == workload::OpType::Insert) {
                inserts++;
                vmin = std::min<std::uint64_t>(vmin, op.vlen);
                vmax = std::max<std::uint64_t>(vmax, op.vlen);
                vsize.add(static_cast<double>(op.vlen));
            }
            removes += op.type == workload::OpType::Remove;
        }
        char keysz[32];
        char valsz[32];
        std::snprintf(keysz, sizeof keysz, "%u-%u B", spec.key_min,
                      spec.key_max);
        std::snprintf(valsz, sizeof valsz, "%u-%u B", spec.val_min,
                      spec.val_max);
        std::printf("%-10s %8.1f %8.1f %-9s %-12s %-14s | ins=%4.1f%% "
                    "key=[%llu,%llu] val=[%llu,%llu] mean=%.0fB\n",
                    spec.name.c_str(), spec.insert_pct * 100,
                    spec.remove_pct * 100,
                    spec.zipfian ? "Skew" : "Uniform", keysz, valsz,
                    100.0 * static_cast<double>(inserts) / kN,
                    static_cast<unsigned long long>(kmin),
                    static_cast<unsigned long long>(kmax),
                    static_cast<unsigned long long>(vmin),
                    static_cast<unsigned long long>(vmax), vsize.mean());
    }
    std::puts("\nPaper reference (Table 2): YCSB-Load 100% uniform 8B/960B; "
              "YCSB-A 25% skew; YCSB-D 5% skew;");
    std::puts("MC-12 79.7% uniform 44B/0-307KiB; MC-15 99.9% 14-19B/0-144B; "
              "MC-31 93.0% 40-46B/0-15B; MC-37 38.8% skew 68-82B/0-325KiB.");
    bench::finish_metrics(opt);
    return 0;
}
