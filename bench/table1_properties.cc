/// Table 1 (paper §5): properties of the evaluated memory allocators,
/// generated from each implementation's self-reported traits rather than
/// hard-coded, so the table stays honest as the code evolves.

#include <cstdio>

#include "support.h"

namespace {

const char*
recovery_str(baselines::AllocTraits::Recovery r)
{
    switch (r) {
      case baselines::AllocTraits::Recovery::None:
        return "x";
      case baselines::AllocTraits::Recovery::Blocking:
        return "B";
      case baselines::AllocTraits::Recovery::NonBlocking:
        return "NB";
    }
    return "?";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Options opt = bench::parse_options(argc, argv);
    std::puts("Table 1: properties of memory allocators in the evaluation");
    std::puts("(Mem: M=volatile in-process, XP=cross-process, CXL, PM; "
              "Fail/Rec: B=blocking, NB=non-blocking, x=none)");
    std::printf("%-26s %-10s %-4s %-5s %-5s %-5s %-5s\n", "Allocator", "Mem.",
                "XP", "mmap", "Fail", "Rec.", "Str.");
    bench::Geometry geom;
    geom.small_slabs = 64;
    geom.large_slabs = 8;
    geom.huge_regions = 2;
    for (const std::string& name : bench::all_allocators()) {
        if (name == "cxlalloc-nonrecoverable") {
            continue; // ablation variant, not a Table 1 row
        }
        bench::Bundle b = bench::make_bundle(name, geom);
        baselines::AllocTraits t = b.alloc->traits();
        std::printf("%-26s %-10s %-4s %-5s %-5s %-5s %-5s\n", name.c_str(),
                    t.memory.c_str(), t.cross_process ? "yes" : "x",
                    t.mmap_support ? "yes" : "x",
                    t.nonblocking_failure ? "NB" : "B",
                    recovery_str(t.recovery), t.strategy.c_str());
    }
    std::puts("\nPaper reference (Table 1): mimalloc M/x/yes/NB/x/x; boost "
              "XP/yes/x/B/x/x; lightning XP/yes/x/B/B/GC;");
    std::puts("cxl-shm CXL/yes/x/NB/NB/GC; ralloc PM/x/x/NB/B/App; "
              "cxlalloc XP,CXL/yes/yes/NB/NB/App.");
    bench::finish_metrics(opt);
    return 0;
}
