/// @file
/// Hazard-offset protocol under explored schedules (paper §3.3.2), with
/// simulated incoherent caches so stale reads are real: a reader
/// publishes an offset then dereferences it unless freed; a reclaimer
/// sets the free bit then reclaims unless the offset is published. The
/// oracle forbids dereferencing after reclamation. The correct protocol
/// (publish = store + flush + fence BEFORE re-checking the free bit)
/// survives every interleaving; the variant that skips the publish flush
/// exposes the missed-scan window and must be caught and replayed.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/test_faults.h"
#include "pod/pod.h"
#include "sched/explorer.h"
#include "sync/hazard_offsets.h"

namespace {

using cxlsync::HazardOffsets;
using sched::Event;
using sched::Explorer;
using sched::Op;
using sched::Options;
using sched::OracleFailure;
using sched::Result;
using sched::Run;
using sched::Strategy;

constexpr cxl::HeapOffset kHazardBase = 64 << 10; // SWcc, cache-simulated
constexpr cxl::HeapOffset kFreeWord = 128 << 10;
constexpr cxl::HeapOffset kDataWord = (128 << 10) + 64;
constexpr std::uint32_t kSlots = 2;

struct HazardWorld {
    HazardWorld() : pod(pod_config()), hz(kHazardBase, kSlots)
    {
        process = pod.create_process();
        reader = pod.create_thread(process);
        reclaimer = pod.create_thread(process);
    }

    static pod::PodConfig
    pod_config()
    {
        pod::PodConfig pc;
        pc.device.size = 1 << 20;
        pc.device.mode = cxl::CoherenceMode::PartialHwcc;
        pc.device.sync_region_size = 4096;
        // Per-thread SWcc caches: without them every store is immediately
        // visible and the missed-scan window cannot exist.
        pc.device.simulate_cache = true;
        return pc;
    }

    pod::Pod pod;
    pod::Process* process;
    HazardOffsets hz;
    std::unique_ptr<pod::ThreadContext> reader;
    std::unique_ptr<pod::ThreadContext> reclaimer;
    bool reclaimed = false;
};

/// Aggregated across schedules to prove both protocol outcomes are
/// actually exercised (reader dereferences; reclaimer reclaims).
struct Totals {
    std::uint64_t derefs = 0;
    std::uint64_t reclaims = 0;
};

std::function<void(Run&)>
hazard_factory(const std::shared_ptr<Totals>& totals)
{
    return [totals](sched::Run& run) {
        auto w = std::make_shared<HazardWorld>();
        run.spawn("reader", [w, totals] {
            cxl::MemSession& mem = w->reader->mem();
            std::uint32_t slot = w->hz.try_publish(mem, kDataWord);
            // Re-check the free bit AFTER the publication is visible
            // (flush before read: the reclaimer writes this line).
            mem.flush(kFreeWord, 8);
            if (mem.load<std::uint64_t>(kFreeWord) == 0) {
                (void)mem.load<std::uint64_t>(kDataWord); // the deref
                // The hook fires BEFORE the access, so the read materializes
                // when this vthread is next scheduled; execution stays
                // serialized from there to here, so `reclaimed` now reflects
                // everything that ran before the read actually happened.
                if (w->reclaimed) {
                    throw OracleFailure(
                        "hazard offset dereferenced after reclamation");
                }
                totals->derefs++;
            }
            if (slot != HazardOffsets::kNoSlot) {
                w->hz.remove(mem, slot);
            }
        });
        run.spawn("reclaimer", [w, totals] {
            cxl::MemSession& mem = w->reclaimer->mem();
            mem.store<std::uint64_t>(kFreeWord, 1);
            mem.flush(kFreeWord, 8);
            mem.fence();
            if (!w->hz.is_published(mem, kDataWord)) {
                w->reclaimed = true;
                totals->reclaims++;
            }
        });
        run.on_event([w](std::uint32_t, const Event& e) {
            if (e.op == Op::Load && e.addr == kDataWord && w->reclaimed) {
                throw OracleFailure(
                    "hazard offset dereferenced after reclamation");
            }
        });
    };
}

TEST(SchedHazard, CorrectProtocolSurvivesRandomSchedules)
{
    auto totals = std::make_shared<Totals>();
    Options opt;
    opt.seed = 31;
    opt.schedules = 400;
    Result r = Explorer(opt).run(hazard_factory(totals));
    EXPECT_TRUE(r.ok) << r.summary();
    // Coverage: the search must reach both sides of the handshake.
    EXPECT_GT(totals->derefs, 0u);
    EXPECT_GT(totals->reclaims, 0u);
}

TEST(SchedHazard, CorrectProtocolSurvivesPctSchedules)
{
    auto totals = std::make_shared<Totals>();
    Options opt;
    opt.strategy = Strategy::Pct;
    opt.seed = 37;
    opt.schedules = 400;
    Result r = Explorer(opt).run(hazard_factory(totals));
    EXPECT_TRUE(r.ok) << r.summary();
}

TEST(SchedHazard, SkippedPublishFlushIsCaughtAndReplays)
{
    // Protocol mutation: the publish store stays in the reader's cache, so
    // the reclaimer's scan reads a stale empty slot — the missed-scan
    // window. The explorer must find the resulting deref-after-reclaim.
    //
    // This is a depth-1 preemption bug: the reader must be descheduled at
    // its deref yield for the reclaimer's entire ~400-hook scan. A uniform
    // random walk never strings that many consecutive picks together; a
    // single PCT change point (depth 2) landing on the deref demotes the
    // reader exactly there. A second change point would fire mid-scan and
    // wake the reader early, so depth 2, not 3.
    struct FaultGuard {
        ~FaultGuard() { cxlcommon::test_faults::reset(); }
    } guard;
    cxlcommon::test_faults::skip_hazard_publish_flush = true;
    auto totals = std::make_shared<Totals>();
    Options opt;
    opt.strategy = Strategy::Pct;
    opt.pct_depth = 2;
    opt.seed = 41;
    opt.schedules = 1500;
    Explorer ex(opt);
    Result r = ex.run(hazard_factory(totals));
    ASSERT_FALSE(r.ok) << "missed-scan window not found";
    ASSERT_TRUE(r.failure.has_value());
    EXPECT_NE(r.failure->message.find("reclamation"), std::string::npos);

    Result again = ex.replay(*r.failure, hazard_factory(totals));
    ASSERT_FALSE(again.ok);
    EXPECT_EQ(again.failure->message, r.failure->message);
    EXPECT_EQ(again.failure->trace, r.failure->trace);
}

TEST(SchedHazard, PublishRetireCycleSurvivesRepeatedRounds)
{
    // Several publish/deref/retire rounds against a reclaimer sweeping
    // once: exercises slot reuse (publish after remove) under scheduling.
    Options opt;
    opt.seed = 43;
    opt.schedules = 200;
    Result r = Explorer(opt).run([](sched::Run& run) {
        auto w = std::make_shared<HazardWorld>();
        run.spawn("reader", [w] {
            cxl::MemSession& mem = w->reader->mem();
            for (int round = 0; round < 3; round++) {
                std::uint32_t slot = w->hz.try_publish(mem, kDataWord);
                mem.flush(kFreeWord, 8);
                if (mem.load<std::uint64_t>(kFreeWord) == 0) {
                    (void)mem.load<std::uint64_t>(kDataWord);
                    if (w->reclaimed) {
                        throw OracleFailure(
                            "hazard offset dereferenced after reclamation");
                    }
                }
                if (slot != HazardOffsets::kNoSlot) {
                    w->hz.remove(mem, slot);
                }
            }
        });
        run.spawn("reclaimer", [w] {
            cxl::MemSession& mem = w->reclaimer->mem();
            mem.store<std::uint64_t>(kFreeWord, 1);
            mem.flush(kFreeWord, 8);
            mem.fence();
            if (!w->hz.is_published(mem, kDataWord)) {
                w->reclaimed = true;
            }
        });
        run.on_event([w](std::uint32_t, const Event& e) {
            if (e.op == Op::Load && e.addr == kDataWord && w->reclaimed) {
                throw OracleFailure(
                    "hazard offset dereferenced after reclamation");
            }
        });
    });
    EXPECT_TRUE(r.ok) << r.summary();
}

} // namespace
