/// @file
/// Explorer semantics on toy worlds: serialization, outcome coverage,
/// fingerprint determinism, DFS exhaustiveness, failure replay, crash
/// injection and the step bound. The worlds yield via raw sched::hook()
/// calls, so these tests pin down the engine contract independent of the
/// simulator layers above it.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "sched/explorer.h"

namespace {

using sched::Event;
using sched::Explorer;
using sched::kNoVthread;
using sched::Op;
using sched::Options;
using sched::OracleFailure;
using sched::Result;
using sched::Run;
using sched::Strategy;

/// Classic lost update: read, yield, write back +1. Final counter is 2
/// only if the threads' read/write pairs do not interleave.
struct CounterWorld {
    int counter = 0;
    int finals_seen = 0;
};

std::function<void(Run&)>
counter_factory(const std::shared_ptr<std::set<int>>& outcomes)
{
    return [outcomes](sched::Run& run) {
        auto w = std::make_shared<CounterWorld>();
        for (int t = 0; t < 2; t++) {
            run.spawn("inc" + std::to_string(t), [w] {
                int v = w->counter;
                sched::hook(Op::Load, 0, 0); // yield between read and write
                w->counter = v + 1;
            });
        }
        run.at_end([w, outcomes](const sched::RunEnd&) {
            outcomes->insert(w->counter);
        });
    };
}

TEST(Explorer, RandomWalkReachesBothLostUpdateOutcomes)
{
    auto outcomes = std::make_shared<std::set<int>>();
    Options opt;
    opt.strategy = Strategy::Random;
    opt.seed = 7;
    opt.schedules = 64;
    Result r = Explorer(opt).run(counter_factory(outcomes));
    ASSERT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(r.schedules_run, 64u);
    // Both the benign (2) and the lost-update (1) interleaving exist.
    EXPECT_EQ(*outcomes, (std::set<int>{1, 2}));
}

TEST(Explorer, SameSeedSameFingerprintDifferentSeedDiverges)
{
    auto sink = std::make_shared<std::set<int>>();
    Options opt;
    opt.seed = 42;
    opt.schedules = 32;
    Result a = Explorer(opt).run(counter_factory(sink));
    Result b = Explorer(opt).run(counter_factory(sink));
    EXPECT_EQ(a.fingerprint, b.fingerprint)
        << "same seed must reproduce bit-for-bit identical schedules";
    EXPECT_EQ(a.total_steps, b.total_steps);
    opt.seed = 43;
    Result c = Explorer(opt).run(counter_factory(sink));
    EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(Explorer, DfsEnumeratesEveryInterleavingExactlyOnce)
{
    // Two threads, two recorded ops each: C(4,2) = 6 distinct op orders.
    auto orders = std::make_shared<std::set<std::string>>();
    Options opt;
    opt.strategy = Strategy::Dfs;
    opt.schedules = 512; // upper bound; the space is far smaller
    Result r = Explorer(opt).run([orders](sched::Run& run) {
        auto log = std::make_shared<std::string>();
        for (int t = 0; t < 2; t++) {
            run.spawn("t" + std::to_string(t), [log, t] {
                for (int i = 0; i < 2; i++) {
                    sched::hook(Op::Fence, static_cast<std::uint64_t>(t), 0);
                    log->push_back(static_cast<char>('a' + t));
                }
            });
        }
        run.at_end(
            [log, orders](const sched::RunEnd&) { orders->insert(*log); });
    });
    ASSERT_TRUE(r.ok) << r.summary();
    EXPECT_TRUE(r.exhausted) << "bounded space must be fully enumerated";
    EXPECT_EQ(orders->size(), 6u) << "aabb abab abba baba baab bbaa";
}

std::function<void(Run&)>
no_lost_update_factory()
{
    // The end oracle demands the benign outcome; the explorer must find
    // (and replay) a schedule that violates it.
    return [](sched::Run& run) {
        auto w = std::make_shared<CounterWorld>();
        for (int t = 0; t < 2; t++) {
            run.spawn("inc" + std::to_string(t), [w] {
                int v = w->counter;
                sched::hook(Op::Load, 0, 0);
                w->counter = v + 1;
            });
        }
        run.at_end([w](const sched::RunEnd&) {
            if (w->counter != 2) {
                throw OracleFailure("lost update: counter=" +
                                    std::to_string(w->counter));
            }
        });
    };
}

TEST(Explorer, ReplayReproducesAFailureBitForBit)
{
    Options opt;
    opt.seed = 3;
    opt.schedules = 256;
    Explorer ex(opt);
    Result r = ex.run(no_lost_update_factory());
    ASSERT_FALSE(r.ok);
    ASSERT_TRUE(r.failure.has_value());
    EXPECT_EQ(r.failure->seed, opt.seed);
    EXPECT_NE(r.summary().find("replay"), std::string::npos);

    Result r1 = ex.replay(*r.failure, no_lost_update_factory());
    Result r2 = ex.replay(*r.failure, no_lost_update_factory());
    ASSERT_FALSE(r1.ok);
    ASSERT_FALSE(r2.ok);
    EXPECT_EQ(r1.failure->message, r.failure->message);
    EXPECT_EQ(r1.failure->trace, r.failure->trace);
    EXPECT_EQ(r1.fingerprint, r2.fingerprint)
        << "replaying the same trace twice must be bit-for-bit identical";
    EXPECT_EQ(r1.failure->message, r2.failure->message);
}

TEST(Explorer, PctFindsTheOrderingBug)
{
    Options opt;
    opt.strategy = Strategy::Pct;
    opt.seed = 11;
    opt.schedules = 256;
    opt.pct_depth = 2;
    Result r = Explorer(opt).run(no_lost_update_factory());
    EXPECT_FALSE(r.ok) << "PCT should surface the single-preemption bug";
}

TEST(Explorer, DfsFindsTheOrderingBugAndWouldExhaustOtherwise)
{
    Options opt;
    opt.strategy = Strategy::Dfs;
    opt.schedules = 512;
    Result r = Explorer(opt).run(no_lost_update_factory());
    EXPECT_FALSE(r.ok) << "exhaustive search must hit the buggy order";
}

TEST(Explorer, CrashInjectionKillsMidBodyAndReportsIt)
{
    struct KillWorld {
        int steps_done[2] = {0, 0};
    };
    Options opt;
    opt.seed = 5;
    opt.schedules = 128;
    // Horizon deliberately exceeds the 4 yields per body so a fraction of
    // schedules draws a kill point past the end and completes un-killed.
    opt.crash = true;
    opt.crash_horizon = 16;
    auto kills_seen = std::make_shared<int>(0);
    Result r = Explorer(opt).run([kills_seen](sched::Run& run) {
        auto w = std::make_shared<KillWorld>();
        for (int t = 0; t < 2; t++) {
            run.spawn(
                "k" + std::to_string(t),
                [w, t] {
                    for (int i = 0; i < 4; i++) {
                        sched::hook(Op::Fence, 0, 0);
                        w->steps_done[t]++;
                    }
                },
                /*killable=*/true);
        }
        run.at_end([w, kills_seen](const sched::RunEnd& end) {
            if (end.killed == kNoVthread) {
                if (w->steps_done[0] != 4 || w->steps_done[1] != 4) {
                    throw OracleFailure("unkilled run did not finish");
                }
                return;
            }
            (*kills_seen)++;
            if (end.kill_yield == 0) {
                throw OracleFailure("kill reported without a yield index");
            }
            if (w->steps_done[end.killed] >= 4) {
                throw OracleFailure("killed vthread finished its body");
            }
            std::uint32_t other = 1 - end.killed;
            if (w->steps_done[other] != 4) {
                throw OracleFailure("surviving vthread did not finish");
            }
        });
    });
    ASSERT_TRUE(r.ok) << r.summary();
    EXPECT_GT(r.kills, 0u);
    EXPECT_LT(r.kills, r.schedules_run)
        << "some schedules should complete un-killed";
    EXPECT_EQ(r.kills, static_cast<std::uint64_t>(*kills_seen));
}

TEST(Explorer, StepBoundTruncatesLivelockWithoutFailing)
{
    Options opt;
    opt.schedules = 4;
    opt.max_steps = 100;
    Result r = Explorer(opt).run([](sched::Run& run) {
        run.spawn("spin", [] {
            while (true) {
                sched::hook(Op::Fence, 0, 0);
            }
        });
        run.at_end([](const sched::RunEnd&) {
            throw OracleFailure("end oracle must not run on truncation");
        });
    });
    ASSERT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(r.truncated, 4u);
}

TEST(Explorer, EventOraclesSeeEveryYieldWithSuppressedReentry)
{
    Options opt;
    opt.schedules = 8;
    auto events = std::make_shared<std::uint64_t>(0);
    Result r = Explorer(opt).run([events](sched::Run& run) {
        run.spawn("t", [] {
            sched::hook(Op::Flush, 64, 8);
            sched::hook(Op::Cas, 128, 9);
        });
        run.on_event([events](std::uint32_t vthread, const Event& e) {
            EXPECT_EQ(vthread, 0u);
            // Hooks fired from inside an oracle must not recurse.
            sched::hook(Op::Load, 0, 0);
            if (e.op == Op::Cas) {
                EXPECT_EQ(e.addr, 128u);
                EXPECT_EQ(e.aux, 9u);
            }
            (*events)++;
        });
    });
    ASSERT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(*events, 2u * 8u);
}

} // namespace
