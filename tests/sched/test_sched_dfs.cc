/// @file
/// Bounded-exhaustive (DFS) exploration of the sync protocols: small
/// enough worlds that the explorer can enumerate every interleaving (or
/// every depth-bounded prefix) and certify the protocol over the whole
/// space, not a sample. Labeled `slow` in CTest: thousands of schedules
/// per test.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "pod/pod.h"
#include "sched/explorer.h"
#include "sync/detectable_cas.h"
#include "sync/hazard_offsets.h"

namespace {

using cxlsync::DetectableCas;
using cxlsync::HazardOffsets;
using sched::Event;
using sched::Explorer;
using sched::Op;
using sched::Options;
using sched::OracleFailure;
using sched::Result;
using sched::Run;
using sched::Strategy;

TEST(SchedDfs, DetectableCasIncrementSpaceIsExhaustedAndExactlyOnce)
{
    // Two threads, one detectable increment each: every interleaving of
    // the full protocol (read, help record, CAS, retries) is enumerated.
    constexpr cxl::HeapOffset kHelpBase = 4096;
    constexpr cxl::HeapOffset kWord = 8192;

    struct World {
        World() : pod(pod_config()), dcas(kHelpBase)
        {
            process = pod.create_process();
            for (int i = 0; i < 2; i++) {
                ctxs[i] = pod.create_thread(process);
            }
        }
        static pod::PodConfig
        pod_config()
        {
            pod::PodConfig pc;
            pc.device.size = 64 << 10;
            pc.device.mode = cxl::CoherenceMode::PartialHwcc;
            pc.device.sync_region_size = 16 << 10;
            return pc;
        }
        pod::Pod pod;
        pod::Process* process;
        DetectableCas dcas;
        std::unique_ptr<pod::ThreadContext> ctxs[2];
    };

    Options opt;
    opt.strategy = Strategy::Dfs;
    opt.schedules = 100'000;
    // Retry storms make the unbounded space hard to size a priori; bound
    // branching so exhaustion is guaranteed within the budget (2^16 max).
    opt.dfs_max_depth = 16;
    Result r = Explorer(opt).run([](sched::Run& run) {
        auto w = std::make_shared<World>();
        for (int i = 0; i < 2; i++) {
            run.spawn("inc" + std::to_string(i), [w, i] {
                cxl::MemSession& mem = w->ctxs[i]->mem();
                while (true) {
                    std::uint32_t cur = w->dcas.read(mem, kWord);
                    if (w->dcas.try_cas(mem, kWord, cur, cur + 1, 1)
                            .success) {
                        break;
                    }
                }
            });
        }
        run.at_end([w](const sched::RunEnd&) {
            std::uint32_t v = w->dcas.read(w->ctxs[0]->mem(), kWord);
            if (v != 2) {
                throw OracleFailure("increments lost or duplicated: " +
                                    std::to_string(v));
            }
        });
    });
    ASSERT_TRUE(r.ok) << r.summary();
    EXPECT_TRUE(r.exhausted)
        << "space unexpectedly large: " << r.schedules_run << " schedules";
    EXPECT_GT(r.schedules_run, 100u);
}

TEST(SchedDfs, HazardProtocolSurvivesDepthBoundedEnumeration)
{
    // Reader/reclaimer handshake under simulated caches. The reclaimer's
    // full-table scan makes true exhaustion infeasible, so branching is
    // depth-bounded: every distinct prefix of the first 14 scheduling
    // decisions is enumerated (thousands of schedules), the tail runs
    // round-robin from thread 0.
    constexpr cxl::HeapOffset kHazardBase = 64 << 10;
    constexpr cxl::HeapOffset kFreeWord = 128 << 10;
    constexpr cxl::HeapOffset kDataWord = (128 << 10) + 64;

    struct World {
        World() : pod(pod_config()), hz(kHazardBase, 2)
        {
            process = pod.create_process();
            reader = pod.create_thread(process);
            reclaimer = pod.create_thread(process);
        }
        static pod::PodConfig
        pod_config()
        {
            pod::PodConfig pc;
            pc.device.size = 256 << 10;
            pc.device.mode = cxl::CoherenceMode::PartialHwcc;
            pc.device.sync_region_size = 4096;
            pc.device.simulate_cache = true;
            return pc;
        }
        pod::Pod pod;
        pod::Process* process;
        HazardOffsets hz;
        std::unique_ptr<pod::ThreadContext> reader;
        std::unique_ptr<pod::ThreadContext> reclaimer;
        bool reclaimed = false;
    };

    Options opt;
    opt.strategy = Strategy::Dfs;
    opt.schedules = 40'000;
    opt.dfs_max_depth = 14;
    Result r = Explorer(opt).run([](sched::Run& run) {
        auto w = std::make_shared<World>();
        run.spawn("reader", [w] {
            cxl::MemSession& mem = w->reader->mem();
            std::uint32_t slot = w->hz.try_publish(mem, kDataWord);
            mem.flush(kFreeWord, 8);
            if (mem.load<std::uint64_t>(kFreeWord) == 0) {
                (void)mem.load<std::uint64_t>(kDataWord);
                // Post-read check: the hook precedes the access, so only
                // here is `reclaimed` guaranteed current w.r.t. the read.
                if (w->reclaimed) {
                    throw OracleFailure(
                        "hazard offset dereferenced after reclamation");
                }
            }
            if (slot != HazardOffsets::kNoSlot) {
                w->hz.remove(mem, slot);
            }
        });
        run.spawn("reclaimer", [w] {
            cxl::MemSession& mem = w->reclaimer->mem();
            mem.store<std::uint64_t>(kFreeWord, 1);
            mem.flush(kFreeWord, 8);
            mem.fence();
            if (!w->hz.is_published(mem, kDataWord)) {
                w->reclaimed = true;
            }
        });
        run.on_event([w](std::uint32_t, const Event& e) {
            if (e.op == Op::Load && e.addr == kDataWord && w->reclaimed) {
                throw OracleFailure(
                    "hazard offset dereferenced after reclamation");
            }
        });
    });
    ASSERT_TRUE(r.ok) << r.summary();
    EXPECT_TRUE(r.exhausted)
        << "depth-bounded space not covered: " << r.schedules_run;
    EXPECT_GT(r.schedules_run, 1000u);
}

} // namespace
