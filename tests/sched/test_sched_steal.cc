/// @file
/// Slab steal/scavenge races under explored schedules (paper §3.2.1): an
/// owner churns its local heap while two remote threads free disjoint
/// halves of the owner's detached slabs, racing the remote-free counter
/// to zero and the resulting steal. End oracles sweep every classed slab
/// for the free-counter == bitset-popcount invariant and run the full
/// heap invariant checker; the crash variant kills any participant at an
/// arbitrary yield, recovers the slot, and sweeps again.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cxlalloc/allocator.h"
#include "pod/pod.h"
#include "sched/explorer.h"

namespace {

using sched::Explorer;
using sched::kNoVthread;
using sched::Options;
using sched::OracleFailure;
using sched::Result;
using sched::Run;
using sched::Strategy;

constexpr int kVthreads = 3; // owner + two remote freers
constexpr int kBlocks = 64;  // two full 32 KiB slabs of 1 KiB blocks

struct StealWorld {
    StealWorld() : cfg(make_config()), pod(make_pod(cfg)), alloc(pod, cfg)
    {
        process = pod.create_process();
        alloc.attach(*process);
        for (int i = 0; i < kVthreads; i++) {
            ctxs.push_back(pod.create_thread(process));
            alloc.attach_thread(*ctxs.back());
            tids.push_back(ctxs.back()->tid());
        }
        // Unhooked pre-state (the factory runs outside the scheduler):
        // fill two slabs so both start detached-full, owned by vthread 0.
        for (int n = 0; n < kBlocks; n++) {
            blocks.push_back(alloc.allocate(*ctxs[0], 1024));
        }
    }

    static cxlalloc::Config
    make_config()
    {
        cxlalloc::Config cfg;
        cfg.small_slabs = 32;
        cfg.large_slabs = 8;
        cfg.huge_regions = 2;
        cfg.huge_region_size = 1 << 20;
        cfg.huge_descs_per_thread = 4;
        cfg.hazard_slots_per_thread = 4;
        return cfg;
    }

    static pod::PodConfig
    make_pod(const cxlalloc::Config& cfg)
    {
        pod::PodConfig pc;
        // No cache simulation: the end oracle reads every slab descriptor
        // from a single session, which under simulated caches could see
        // legitimately-unflushed owner-local state.
        pc.device = cxlalloc::Layout(cfg).device_config(
            cxl::CoherenceMode::PartialHwcc, /*simulate_cache=*/false);
        return pc;
    }

    cxlalloc::Config cfg;
    pod::Pod pod;
    cxlalloc::CxlAllocator alloc;
    pod::Process* process;
    std::vector<std::unique_ptr<pod::ThreadContext>> ctxs;
    std::vector<cxl::ThreadId> tids;
    std::vector<cxl::HeapOffset> blocks;
};

/// Free-counter == popcount for every slab that currently has a class.
/// Holds at quiescence: local alloc/free maintain both together and
/// remote frees touch neither (they decrement only the HWcc counter).
void
sweep_slab_invariant(StealWorld& w, cxl::MemSession& mem)
{
    cxlalloc::SlabHeap& heap = w.alloc.small_heap();
    std::uint32_t length = heap.length(mem);
    for (std::uint32_t slab = 0; slab < length; slab++) {
        if (heap.debug_class_biased(mem, slab) == 0) {
            continue;
        }
        std::uint32_t counter = heap.debug_free_blocks(mem, slab);
        std::uint32_t popcount = heap.debug_bitset_count(mem, slab);
        if (counter != popcount) {
            throw OracleFailure(
                "slab " + std::to_string(slab) + " free counter " +
                std::to_string(counter) + " != bitset popcount " +
                std::to_string(popcount));
        }
    }
}

void
spawn_workload(Run& run, const std::shared_ptr<StealWorld>& w, bool killable)
{
    // vthread 0: the owner keeps churning its local heap.
    run.spawn(
        "owner",
        [w] {
            try {
                for (int n = 0; n < 8; n++) {
                    cxl::HeapOffset p = w->alloc.allocate(*w->ctxs[0], 1024);
                    w->alloc.deallocate(*w->ctxs[0], p);
                }
            } catch (const sched::VthreadKilled&) {
                w->pod.mark_crashed(std::move(w->ctxs[0]));
            }
        },
        killable);
    // vthreads 1, 2: remote-free interleaved halves of the owner's slabs,
    // racing both slabs' counters toward the steal.
    for (int i = 1; i <= 2; i++) {
        run.spawn(
            "remote" + std::to_string(i),
            [w, i] {
                try {
                    for (std::size_t n = static_cast<std::size_t>(i - 1);
                         n < w->blocks.size(); n += 2) {
                        w->alloc.deallocate(*w->ctxs[i], w->blocks[n]);
                    }
                } catch (const sched::VthreadKilled&) {
                    w->pod.mark_crashed(std::move(w->ctxs[i]));
                }
            },
            killable);
    }
}

TEST(SchedSteal, RemoteFreeRacesKeepCounterAndBitsetConsistent)
{
    Options opt;
    opt.seed = 61;
    opt.schedules = 48;
    Result r = Explorer(opt).run([](sched::Run& run) {
        auto w = std::make_shared<StealWorld>();
        spawn_workload(run, w, /*killable=*/false);
        run.at_end([w](const sched::RunEnd&) {
            cxl::MemSession& mem = w->ctxs[0]->mem();
            sweep_slab_invariant(*w, mem);
            w->alloc.check_invariants(mem);
            w->alloc.check_local_invariants(mem);
        });
    });
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(r.truncated, 0u);
}

TEST(SchedSteal, PctSchedulesKeepInvariants)
{
    Options opt;
    opt.strategy = Strategy::Pct;
    opt.seed = 67;
    opt.schedules = 48;
    opt.pct_depth = 3;
    Result r = Explorer(opt).run([](sched::Run& run) {
        auto w = std::make_shared<StealWorld>();
        spawn_workload(run, w, /*killable=*/false);
        run.at_end([w](const sched::RunEnd&) {
            sweep_slab_invariant(*w, w->ctxs[0]->mem());
            w->alloc.check_invariants(w->ctxs[0]->mem());
        });
    });
    EXPECT_TRUE(r.ok) << r.summary();
}

TEST(SchedSteal, KillAnyParticipantThenRecoverAndSweep)
{
    Options opt;
    opt.seed = 71;
    opt.schedules = 64;
    opt.crash = true;
    opt.crash_horizon = 400;
    Result r = Explorer(opt).run([](sched::Run& run) {
        auto w = std::make_shared<StealWorld>();
        spawn_workload(run, w, /*killable=*/true);
        run.at_end([w](const sched::RunEnd& end) {
            std::unique_ptr<pod::ThreadContext> adopted;
            if (end.killed != kNoVthread) {
                adopted = w->pod.adopt_thread(w->process,
                                              w->tids[end.killed]);
                w->alloc.recover(*adopted);
            }
            cxl::MemSession& mem = adopted != nullptr
                                       ? adopted->mem()
                                       : w->ctxs[0]->mem();
            sweep_slab_invariant(*w, mem);
            w->alloc.check_invariants(mem);
            if (adopted != nullptr) {
                // The recovered slot must still be able to allocate.
                cxl::HeapOffset p = w->alloc.allocate(*adopted, 1024);
                if (p == 0) {
                    throw OracleFailure("allocation failed after recovery");
                }
                w->alloc.deallocate(*adopted, p);
            }
        });
    });
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_GT(r.kills, 0u);
}

} // namespace
