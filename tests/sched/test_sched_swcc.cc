/// @file
/// SWcc publication protocol under explored schedules (paper §3.2.2): two
/// allocator threads churn small slabs with simulated incoherent caches
/// while a DirtyLineTracker oracle enforces flush-before-publish on every
/// CAS that pushes a descriptor onto the global free list. The deliberate
/// protocol mutation (skipping the descriptor flush in push_global_one)
/// must be caught within the CI budget and replay bit-for-bit — the
/// acceptance check of the schedule-explorer subsystem.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/test_faults.h"
#include "cxlalloc/allocator.h"
#include "pod/pod.h"
#include "sched/explorer.h"
#include "sched/oracles.h"
#include "sync/detectable_cas.h"

namespace {

using cxlsync::DcasWord;
using sched::Event;
using sched::Explorer;
using sched::kNoVthread;
using sched::Op;
using sched::Options;
using sched::OracleFailure;
using sched::Result;
using sched::Run;

constexpr int kVthreads = 2;
constexpr int kBlocks = 64; // two 32 KiB slabs of 1 KiB blocks per thread

/// Allocator rig with unsized_limit = 0: every slab that empties while its
/// class has siblings spills straight to the global list, so each body
/// deterministically exercises the publish path the oracle watches.
struct SwccWorld {
    SwccWorld()
        : cfg(make_config()), pod(make_pod(cfg)), alloc(pod, cfg),
          tracker(alloc.layout().small_swcc_desc(0),
                  alloc.layout().small_swcc_desc(cfg.small_slabs))
    {
        process = pod.create_process();
        alloc.attach(*process);
        for (int i = 0; i < kVthreads; i++) {
            ctxs.push_back(pod.create_thread(process));
            alloc.attach_thread(*ctxs.back());
            tids.push_back(ctxs.back()->tid());
        }
    }

    static cxlalloc::Config
    make_config()
    {
        cxlalloc::Config cfg;
        cfg.small_slabs = 32;
        cfg.large_slabs = 8;
        cfg.huge_regions = 2;
        cfg.huge_region_size = 1 << 20;
        cfg.huge_descs_per_thread = 4;
        cfg.hazard_slots_per_thread = 4;
        cfg.unsized_limit = 0;
        return cfg;
    }

    static pod::PodConfig
    make_pod(const cxlalloc::Config& cfg)
    {
        pod::PodConfig pc;
        pc.device = cxlalloc::Layout(cfg).device_config(
            cxl::CoherenceMode::PartialHwcc, /*simulate_cache=*/true);
        return pc;
    }

    cxlalloc::Config cfg;
    pod::Pod pod;
    cxlalloc::CxlAllocator alloc;
    pod::Process* process;
    std::vector<std::unique_ptr<pod::ThreadContext>> ctxs;
    std::vector<cxl::ThreadId> tids;
    sched::DirtyLineTracker tracker;
    std::uint64_t publishes = 0;
};

void
churn(SwccWorld& w, int i)
{
    std::vector<cxl::HeapOffset> blocks;
    for (int n = 0; n < kBlocks; n++) {
        blocks.push_back(w.alloc.allocate(*w.ctxs[i], 1024));
    }
    for (cxl::HeapOffset p : blocks) {
        w.alloc.deallocate(*w.ctxs[i], p);
    }
}

/// Watches every yield: any CAS installing a nonzero head on the small
/// global free list publishes desc(head - 1); the CASing thread must hold
/// no dirty lines of that descriptor.
void
install_publish_oracle(Run& run, const std::shared_ptr<SwccWorld>& w)
{
    run.on_event([w](std::uint32_t vthread, const Event& e) {
        w->tracker.observe(vthread, e);
        if (e.op != Op::Cas || e.addr != w->alloc.layout().small_free()) {
            return;
        }
        std::uint32_t raw = DcasWord::value(e.aux);
        if (raw == 0) {
            return;
        }
        w->publishes++;
        cxl::HeapOffset desc = w->alloc.layout().small_swcc_desc(raw - 1);
        sched::require_flushed(w->tracker, vthread, desc,
                               desc + cxlalloc::Layout::kSmallDescStride,
                               "small slab descriptor " +
                                   std::to_string(raw - 1));
    });
}

std::function<void(Run&)>
swcc_factory(const std::shared_ptr<std::uint64_t>& publish_total)
{
    return [publish_total](sched::Run& run) {
        auto w = std::make_shared<SwccWorld>();
        for (int i = 0; i < kVthreads; i++) {
            run.spawn("churn" + std::to_string(i), [w, i] { churn(*w, i); });
        }
        install_publish_oracle(run, w);
        run.at_end([w, publish_total](const sched::RunEnd&) {
            *publish_total += w->publishes;
            if (w->publishes == 0) {
                throw OracleFailure("workload never reached the publish "
                                    "path the oracle watches");
            }
        });
    };
}

TEST(SchedSwcc, CorrectProtocolFlushesBeforeEveryPublish)
{
    auto publishes = std::make_shared<std::uint64_t>(0);
    Options opt;
    opt.seed = 47;
    opt.schedules = 12;
    Result r = Explorer(opt).run(swcc_factory(publishes));
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_GT(*publishes, 0u);
}

TEST(SchedSwcc, SkippedPublishFlushIsCaughtAndReplaysBitForBit)
{
    struct FaultGuard {
        ~FaultGuard() { cxlcommon::test_faults::reset(); }
    } guard;
    cxlcommon::test_faults::skip_swcc_publish_flush = true;

    auto publishes = std::make_shared<std::uint64_t>(0);
    Options opt;
    opt.seed = 53;
    opt.schedules = 8;
    Explorer ex(opt);
    Result r = ex.run(swcc_factory(publishes));
    ASSERT_FALSE(r.ok) << "unflushed publish escaped the oracle";
    ASSERT_TRUE(r.failure.has_value());
    EXPECT_NE(r.failure->message.find("flush-before-publish"),
              std::string::npos);

    Result r1 = ex.replay(*r.failure, swcc_factory(publishes));
    Result r2 = ex.replay(*r.failure, swcc_factory(publishes));
    ASSERT_FALSE(r1.ok);
    ASSERT_FALSE(r2.ok);
    EXPECT_EQ(r1.failure->message, r.failure->message);
    EXPECT_EQ(r1.failure->trace, r.failure->trace);
    EXPECT_EQ(r1.fingerprint, r2.fingerprint)
        << "replay must be bit-for-bit deterministic";
}

TEST(SchedSwcc, KillDuringChurnThenRecoveryKeepsHeapUsable)
{
    auto publishes = std::make_shared<std::uint64_t>(0);
    Options opt;
    opt.seed = 59;
    opt.schedules = 24;
    opt.crash = true;
    opt.crash_horizon = 2000;
    Result r = Explorer(opt).run([publishes](sched::Run& run) {
        auto w = std::make_shared<SwccWorld>();
        for (int i = 0; i < kVthreads; i++) {
            run.spawn(
                "churn" + std::to_string(i),
                [w, i] {
                    try {
                        churn(*w, i);
                    } catch (const sched::VthreadKilled&) {
                        w->pod.mark_crashed(std::move(w->ctxs[i]));
                    }
                },
                /*killable=*/true);
        }
        install_publish_oracle(run, w);
        run.at_end([w, publishes](const sched::RunEnd& end) {
            *publishes += w->publishes;
            if (end.killed == kNoVthread) {
                return;
            }
            auto adopted =
                w->pod.adopt_thread(w->process, w->tids[end.killed]);
            w->alloc.recover(*adopted);
            // The recovered slot must be fully usable again.
            cxl::HeapOffset p = w->alloc.allocate(*adopted, 1024);
            if (p == 0) {
                throw OracleFailure("allocation failed after recovery");
            }
            w->alloc.deallocate(*adopted, p);
            w->alloc.check_local_invariants(adopted->mem());
        });
    });
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_GT(r.kills, 0u);
    EXPECT_GT(*publishes, 0u);
}

} // namespace
