/// @file
/// Record-durable-before-CAS oracle under explored schedules.
///
/// The deferred-record discipline (RecoveryLog::log_local) removes the
/// per-op flush+fence from the local fast path. Its soundness boundary is
/// the detectable CAS: a record describing a CAS-bearing operation must
/// be durable BEFORE the CAS fires, or `did_succeed` reasoning breaks
/// after a host crash. sched::RecordFlushOracle watches every vthread's
/// recovery-record row and fails any schedule where an Op::DcasTry fires
/// while the row is dirty. The correct allocator must pass; the
/// skip_record_publish_flush fault (defer where deferral is unsound) must
/// be caught within the CI budget and replay bit-for-bit.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/test_faults.h"
#include "cxlalloc/allocator.h"
#include "pod/pod.h"
#include "sched/explorer.h"
#include "sched/oracles.h"

namespace {

using sched::Event;
using sched::Explorer;
using sched::Op;
using sched::Options;
using sched::OracleFailure;
using sched::Result;
using sched::Run;

constexpr int kVthreads = 2;
constexpr int kBlocks = 64;

/// Same rig as test_sched_swcc: unsized_limit = 0 forces every empty slab
/// through the push-global detectable CAS, so each body crosses the
/// record-durability boundary many times.
struct RecordWorld {
    RecordWorld()
        : cfg(make_config()), pod(make_pod(cfg)), alloc(pod, cfg),
          oracle(alloc.layout().recovery_row(0),
                 alloc.layout().recovery_row(cxl::kMaxThreads) + 64)
    {
        process = pod.create_process();
        alloc.attach(*process);
        for (int i = 0; i < kVthreads; i++) {
            ctxs.push_back(pod.create_thread(process));
            alloc.attach_thread(*ctxs.back());
            tids.push_back(ctxs.back()->tid());
        }
    }

    static cxlalloc::Config
    make_config()
    {
        cxlalloc::Config cfg;
        cfg.small_slabs = 32;
        cfg.large_slabs = 8;
        cfg.huge_regions = 2;
        cfg.huge_region_size = 1 << 20;
        cfg.huge_descs_per_thread = 4;
        cfg.hazard_slots_per_thread = 4;
        cfg.unsized_limit = 0;
        return cfg;
    }

    static pod::PodConfig
    make_pod(const cxlalloc::Config& cfg)
    {
        pod::PodConfig pc;
        pc.device = cxlalloc::Layout(cfg).device_config(
            cxl::CoherenceMode::PartialHwcc, /*simulate_cache=*/true);
        return pc;
    }

    cxlalloc::Config cfg;
    pod::Pod pod;
    cxlalloc::CxlAllocator alloc;
    pod::Process* process;
    std::vector<std::unique_ptr<pod::ThreadContext>> ctxs;
    std::vector<cxl::ThreadId> tids;
    sched::RecordFlushOracle oracle;
    std::uint64_t cas_tries = 0;
};

void
churn(RecordWorld& w, int i)
{
    std::vector<cxl::HeapOffset> blocks;
    for (int n = 0; n < kBlocks; n++) {
        blocks.push_back(w.alloc.allocate(*w.ctxs[i], 1024));
    }
    for (cxl::HeapOffset p : blocks) {
        w.alloc.deallocate(*w.ctxs[i], p);
    }
}

std::function<void(Run&)>
record_factory(const std::shared_ptr<std::uint64_t>& cas_total)
{
    return [cas_total](Run& run) {
        auto w = std::make_shared<RecordWorld>();
        for (int i = 0; i < kVthreads; i++) {
            w->oracle.bind(static_cast<std::uint32_t>(i),
                           w->alloc.layout().recovery_row(w->tids[i]), 8);
            run.spawn("churn" + std::to_string(i), [w, i] { churn(*w, i); });
        }
        run.on_event([w](std::uint32_t vthread, const Event& e) {
            if (e.op == Op::DcasTry) {
                w->cas_tries++;
            }
            w->oracle.observe(vthread, e);
        });
        run.at_end([w, cas_total](const sched::RunEnd&) {
            *cas_total += w->cas_tries;
            if (w->cas_tries == 0) {
                throw OracleFailure("workload never crossed the "
                                    "record-durability boundary");
            }
        });
    };
}

TEST(SchedRecord, DeferredRecordsAreDurableBeforeEveryCas)
{
    auto cas_tries = std::make_shared<std::uint64_t>(0);
    Options opt;
    opt.seed = 61;
    opt.schedules = 12;
    Result r = Explorer(opt).run(record_factory(cas_tries));
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_GT(*cas_tries, 0u);
}

TEST(SchedRecord, UnsoundDeferralIsCaughtAndReplaysBitForBit)
{
    struct FaultGuard {
        ~FaultGuard() { cxlcommon::test_faults::reset(); }
    } guard;
    cxlcommon::test_faults::skip_record_publish_flush = true;

    auto cas_tries = std::make_shared<std::uint64_t>(0);
    Options opt;
    opt.seed = 67;
    opt.schedules = 8;
    Explorer ex(opt);
    Result r = ex.run(record_factory(cas_tries));
    ASSERT_FALSE(r.ok) << "dirty record at DcasTry escaped the oracle";
    ASSERT_TRUE(r.failure.has_value());
    EXPECT_NE(r.failure->message.find("record-durable-before-CAS"),
              std::string::npos)
        << r.failure->message;

    Result r1 = ex.replay(*r.failure, record_factory(cas_tries));
    Result r2 = ex.replay(*r.failure, record_factory(cas_tries));
    ASSERT_FALSE(r1.ok);
    ASSERT_FALSE(r2.ok);
    EXPECT_EQ(r1.failure->message, r.failure->message);
    EXPECT_EQ(r1.failure->trace, r.failure->trace);
    EXPECT_EQ(r1.fingerprint, r2.fingerprint)
        << "replay must be bit-for-bit deterministic";
}

} // namespace
