/// @file
/// Detectable CAS under explored schedules (paper §3.4.2): two virtual
/// threads race increments through DetectableCas while the explorer
/// serializes every interleaving and, in the crash variant, kills one
/// thread at an arbitrary yield point inside the protocol. The oracle is
/// exactly-once accounting: the final counter must equal the completed
/// increments plus the in-flight one iff did_succeed() says it landed.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "pod/pod.h"
#include "sched/explorer.h"
#include "sync/detectable_cas.h"

namespace {

using cxlsync::DetectableCas;
using sched::Explorer;
using sched::kNoVthread;
using sched::Options;
using sched::OracleFailure;
using sched::Result;
using sched::Run;
using sched::Strategy;

constexpr cxl::HeapOffset kHelpBase = 4096;
constexpr cxl::HeapOffset kWord = 8192;
constexpr int kVthreads = 2;
constexpr std::uint16_t kOpsPerThread = 4;

/// Pod + help array + one counter word, all in the HWcc sync region.
struct DcasWorld {
    DcasWorld() : pod(pod_config()), dcas(kHelpBase)
    {
        process = pod.create_process();
        for (int i = 0; i < kVthreads; i++) {
            ctxs.push_back(pod.create_thread(process));
            tids.push_back(ctxs.back()->tid());
        }
    }

    static pod::PodConfig
    pod_config()
    {
        pod::PodConfig pc;
        pc.device.size = 64 << 10;
        pc.device.mode = cxl::CoherenceMode::PartialHwcc;
        pc.device.sync_region_size = 16 << 10;
        return pc;
    }

    pod::Pod pod;
    pod::Process* process;
    DetectableCas dcas;
    std::vector<std::unique_ptr<pod::ThreadContext>> ctxs;
    std::vector<cxl::ThreadId> tids;

    /// Per-vthread bookkeeping, written only between hooks (so a kill can
    /// never land between updating it and the protocol step it describes).
    std::uint16_t attempt_version[kVthreads] = {};
    bool attempting[kVthreads] = {};
    std::uint32_t done[kVthreads] = {};

    cxl::MemSession&
    any_live_mem()
    {
        for (auto& ctx : ctxs) {
            if (ctx != nullptr) {
                return ctx->mem();
            }
        }
        std::abort(); // at most one vthread is killed per schedule
    }
};

std::function<void(Run&)>
dcas_factory()
{
    return [](sched::Run& run) {
        auto w = std::make_shared<DcasWorld>();
        for (int i = 0; i < kVthreads; i++) {
            run.spawn(
                "inc" + std::to_string(i),
                [w, i] {
                    try {
                        cxl::MemSession& mem = w->ctxs[i]->mem();
                        for (std::uint16_t k = 1; k <= kOpsPerThread; k++) {
                            // Record the attempt BEFORE the first yield of
                            // the protocol; a kill anywhere inside try_cas
                            // leaves attempting=true and the recovery query
                            // resolves whether the CAS landed.
                            w->attempt_version[i] = k;
                            w->attempting[i] = true;
                            while (true) {
                                std::uint32_t cur = w->dcas.read(mem, kWord);
                                auto r = w->dcas.try_cas(mem, kWord, cur,
                                                         cur + 1, k);
                                if (r.success) {
                                    break;
                                }
                            }
                            w->done[i]++;
                            w->attempting[i] = false;
                        }
                    } catch (const sched::VthreadKilled&) {
                        // Simulated thread death: leave shared state as-is,
                        // surrender the pod slot for later adoption.
                        w->pod.mark_crashed(std::move(w->ctxs[i]));
                    }
                },
                /*killable=*/true);
        }
        run.at_end([w](const sched::RunEnd& end) {
            std::uint64_t expected = 0;
            for (std::uint32_t d : w->done) {
                expected += d;
            }
            if (end.killed != kNoVthread) {
                auto adopted =
                    w->pod.adopt_thread(w->process, w->tids[end.killed]);
                if (w->attempting[end.killed] &&
                    w->dcas.did_succeed(adopted->mem(), kWord,
                                        w->attempt_version[end.killed])) {
                    expected += 1; // the in-flight increment landed
                }
            } else if (expected != kVthreads * kOpsPerThread) {
                throw OracleFailure("un-killed run lost increments");
            }
            std::uint32_t actual = w->dcas.read(w->any_live_mem(), kWord);
            if (actual != expected) {
                throw OracleFailure(
                    "exactly-once violated: counter=" +
                    std::to_string(actual) + " completed+inflight=" +
                    std::to_string(expected));
            }
        });
    };
}

TEST(SchedDcas, AllRandomSchedulesCountExactlyOnce)
{
    Options opt;
    opt.strategy = Strategy::Random;
    opt.seed = 17;
    opt.schedules = 128;
    Result r = Explorer(opt).run(dcas_factory());
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(r.schedules_run, 128u);
    EXPECT_EQ(r.truncated, 0u);
}

TEST(SchedDcas, PctSchedulesCountExactlyOnce)
{
    Options opt;
    opt.strategy = Strategy::Pct;
    opt.seed = 23;
    opt.schedules = 128;
    opt.pct_depth = 3;
    Result r = Explorer(opt).run(dcas_factory());
    EXPECT_TRUE(r.ok) << r.summary();
}

TEST(SchedDcas, KillAtAnyYieldInsideTheProtocolStaysExactlyOnce)
{
    Options opt;
    opt.seed = 29;
    opt.schedules = 256;
    opt.crash = true;
    opt.crash_horizon = 96;
    Result r = Explorer(opt).run(dcas_factory());
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_GT(r.kills, 0u) << "crash plan never fired";
}

} // namespace
