/// @file
/// Cross-host steal races on a 2-host x 2-device pod under explored
/// schedules: host 0's owner churns its home shard while host 1's threads
/// remote-free the owner's blocks over the far edge, racing the remote
/// counter to zero and the resulting steal — then the crash variant kills
/// any participant, adopts the slot, recovers every shard (NMP-batch shard
/// first) and sweeps the free-counter == bitset-popcount oracle over BOTH
/// shards.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cxlalloc/pod_shard.h"
#include "pod/pod.h"
#include "pod/topology.h"
#include "sched/explorer.h"

namespace {

using sched::Explorer;
using sched::kNoVthread;
using sched::Options;
using sched::OracleFailure;
using sched::Result;
using sched::Run;

constexpr int kBlocks = 48;

struct PodStealWorld {
    PodStealWorld()
        : cfg(make_config()),
          topo(pod::Topology::dense(2, 2, cxl::EdgeCost{}, far_edge())),
          pod(make_pod(cfg, topo)), alloc(pod, cfg)
    {
        for (pod::HostId h = 0; h < 2; h++) {
            procs.push_back(pod.create_process(h));
            alloc.attach(*procs.back());
        }
        // vthread 0 on host 0 (the owner), vthreads 1-2 on host 1.
        for (int i = 0; i < 3; i++) {
            ctxs.push_back(pod.create_thread(procs[i == 0 ? 0 : 1]));
            alloc.attach_thread(*ctxs.back());
            tids.push_back(ctxs.back()->tid());
        }
        // Pre-state: the owner fills blocks in its home shard that the
        // remote host will free across the fabric.
        for (int n = 0; n < kBlocks; n++) {
            blocks.push_back(alloc.allocate(*ctxs[0], 1024));
        }
    }

    static cxl::EdgeCost
    far_edge()
    {
        cxl::EdgeCost e;
        e.read_add_ns = 100;
        e.write_add_ns = 150;
        return e;
    }

    static cxlalloc::Config
    make_config()
    {
        cxlalloc::Config cfg;
        cfg.small_slabs = 32;
        cfg.large_slabs = 8;
        cfg.huge_regions = 2;
        cfg.huge_region_size = 1 << 20;
        cfg.huge_descs_per_thread = 4;
        cfg.hazard_slots_per_thread = 4;
        return cfg;
    }

    static pod::PodConfig
    make_pod(const cxlalloc::Config& cfg, const pod::Topology& topo)
    {
        pod::PodConfig pc;
        // No cache simulation: the end oracle reads every slab descriptor
        // from a single session, which under simulated caches could see
        // legitimately-unflushed owner-local state.
        pc.device = cxlalloc::PodShardedAllocator::device_config(
            cfg, topo, cxl::CoherenceMode::PartialHwcc,
            /*simulate_cache=*/false);
        pc.topology = topo;
        return pc;
    }

    cxlalloc::Config cfg;
    pod::Topology topo;
    pod::Pod pod;
    cxlalloc::PodShardedAllocator alloc;
    std::vector<pod::Process*> procs;
    std::vector<std::unique_ptr<pod::ThreadContext>> ctxs;
    std::vector<cxl::ThreadId> tids;
    std::vector<cxl::HeapOffset> blocks;
};

/// Free-counter == popcount for every classed slab of EVERY shard.
void
sweep_shard_invariant(PodStealWorld& w, cxl::MemSession& mem)
{
    for (cxl::DeviceId d = 0; d < w.alloc.shard_count(); d++) {
        cxlalloc::SlabHeap& heap = w.alloc.shard(d).small_heap();
        std::uint32_t length = heap.length(mem);
        for (std::uint32_t slab = 0; slab < length; slab++) {
            if (heap.debug_class_biased(mem, slab) == 0) {
                continue;
            }
            std::uint32_t counter = heap.debug_free_blocks(mem, slab);
            std::uint32_t popcount = heap.debug_bitset_count(mem, slab);
            if (counter != popcount) {
                throw OracleFailure(
                    "shard " + std::to_string(d) + " slab " +
                    std::to_string(slab) + " free counter " +
                    std::to_string(counter) + " != bitset popcount " +
                    std::to_string(popcount));
            }
        }
    }
}

void
spawn_workload(Run& run, const std::shared_ptr<PodStealWorld>& w,
               bool killable)
{
    // vthread 0: the owner keeps churning its home shard.
    run.spawn(
        "owner-h0",
        [w] {
            try {
                for (int n = 0; n < 8; n++) {
                    cxl::HeapOffset p = w->alloc.allocate(*w->ctxs[0], 1024);
                    w->alloc.deallocate(*w->ctxs[0], p);
                }
            } catch (const sched::VthreadKilled&) {
                w->pod.mark_crashed(std::move(w->ctxs[0]));
            }
        },
        killable);
    // vthreads 1, 2 (host 1): remote-free interleaved halves of the
    // owner's home-shard blocks across the fabric edge.
    for (int i = 1; i <= 2; i++) {
        run.spawn(
            "remote-h1-" + std::to_string(i),
            [w, i] {
                try {
                    for (std::size_t n = static_cast<std::size_t>(i - 1);
                         n < w->blocks.size(); n += 2) {
                        w->alloc.deallocate(*w->ctxs[i], w->blocks[n]);
                    }
                } catch (const sched::VthreadKilled&) {
                    w->pod.mark_crashed(std::move(w->ctxs[i]));
                }
            },
            killable);
    }
}

TEST(SchedPodSteal, CrossHostFreeRacesKeepBothShardsConsistent)
{
    Options opt;
    opt.seed = 83;
    opt.schedules = 48;
    Result r = Explorer(opt).run([](sched::Run& run) {
        auto w = std::make_shared<PodStealWorld>();
        spawn_workload(run, w, /*killable=*/false);
        run.at_end([w](const sched::RunEnd&) {
            cxl::MemSession& mem = w->ctxs[0]->mem();
            sweep_shard_invariant(*w, mem);
            w->alloc.check_invariants(mem);
        });
    });
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(r.truncated, 0u);
}

TEST(SchedPodSteal, KillAnyParticipantThenRecoverAllShardsAndSweep)
{
    Options opt;
    opt.seed = 89;
    opt.schedules = 64;
    opt.crash = true;
    opt.crash_horizon = 400;
    Result r = Explorer(opt).run([](sched::Run& run) {
        auto w = std::make_shared<PodStealWorld>();
        spawn_workload(run, w, /*killable=*/true);
        run.at_end([w](const sched::RunEnd& end) {
            std::unique_ptr<pod::ThreadContext> adopted;
            if (end.killed != kNoVthread) {
                // Adopt on the crashed thread's own host so the rescuer
                // reaches everything the dead thread touched.
                pod::Process* host_proc =
                    w->procs[end.killed == 0 ? 0 : 1];
                adopted = w->pod.adopt_thread(host_proc,
                                              w->tids[end.killed]);
                w->alloc.recover(*adopted);
            }
            cxl::MemSession& mem = adopted != nullptr
                                       ? adopted->mem()
                                       : w->ctxs[0]->mem();
            sweep_shard_invariant(*w, mem);
            w->alloc.check_invariants(mem);
            if (adopted != nullptr) {
                // The recovered slot must still be able to allocate, and
                // the allocation lands on the adopter's home shard.
                cxl::HeapOffset p = w->alloc.allocate(*adopted, 1024);
                if (p == 0) {
                    throw OracleFailure("allocation failed after recovery");
                }
                w->alloc.deallocate(*adopted, p);
            }
        });
    });
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_GT(r.kills, 0u);
}

} // namespace
