/// @file
/// Liveness and fault injection under explored schedules on a 2-host x
/// 2-device pod: a monitor vthread advances a FaultInjector (an edge flap
/// on host 0's far edge — every firing is a schedule point) and polls the
/// LivenessDetector while host 1's workers beat their lease between
/// allocator ops and remote frees, racing suspicion against in-flight
/// free batches and the edge epoch. The crash variant kills either worker
/// at any yield, takes the whole host down, drives the detector to the
/// Dead verdict with the beats gone, adopts every crashed slot on the
/// survivor, runs ordered multi-shard recovery, and sweeps the
/// free-counter == bitset-popcount oracle over both shards per schedule.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cxlalloc/pod_shard.h"
#include "pod/faults.h"
#include "pod/liveness.h"
#include "pod/pod.h"
#include "pod/topology.h"
#include "sched/explorer.h"

namespace {

using sched::Explorer;
using sched::kNoVthread;
using sched::Options;
using sched::OracleFailure;
using sched::Result;
using sched::Run;

constexpr int kBlocks = 24;

struct FaultWorld {
    FaultWorld()
        : cfg(make_config()),
          topo(pod::Topology::dense(2, 2, cxl::EdgeCost{}, far_edge())),
          pod(make_pod(cfg, topo)), alloc(pod, cfg)
    {
        for (pod::HostId h = 0; h < 2; h++) {
            procs.push_back(pod.create_process(h));
            alloc.attach(*procs.back());
        }
        // vthread 0: the monitor on host 0; vthreads 1-2: workers on
        // host 1 whose beats the monitor watches.
        for (int i = 0; i < 3; i++) {
            ctxs.push_back(pod.create_thread(procs[i == 0 ? 0 : 1]));
            alloc.attach_thread(*ctxs.back());
            tids.push_back(ctxs.back()->tid());
        }
        lease_base = alloc.shard(0).layout().app_sync();
        pod::LivenessConfig lcfg;
        lcfg.lease_base = lease_base;
        lcfg.suspect_after = 1;
        lcfg.dead_after = 3;
        detector = std::make_unique<pod::LivenessDetector>(pod, lcfg);
        // The flap fires mid-run and is a sched::hook yield, so WHERE it
        // lands relative to worker beats and frees is part of the
        // explored schedule space.
        pod::FaultPlan plan;
        plan.edge_flap(0, 1, /*at_step=*/2, /*down_for=*/1);
        injector = std::make_unique<pod::FaultInjector>(pod, plan);
        // Pre-state: host-0 blocks the host-1 workers free across the
        // fabric, racing the remote-free counters against everything else.
        for (int n = 0; n < kBlocks; n++) {
            blocks.push_back(alloc.allocate(*ctxs[0], 1024));
        }
    }

    void
    beat(int ctx_index, pod::HostId host)
    {
        pod::LivenessDetector::beat(ctxs[ctx_index]->mem(), lease_base,
                                    host);
    }

    static cxl::EdgeCost
    far_edge()
    {
        cxl::EdgeCost e;
        e.read_add_ns = 100;
        e.write_add_ns = 150;
        return e;
    }

    static cxlalloc::Config
    make_config()
    {
        cxlalloc::Config cfg;
        cfg.small_slabs = 32;
        cfg.large_slabs = 8;
        cfg.huge_regions = 2;
        cfg.huge_region_size = 1 << 20;
        cfg.huge_descs_per_thread = 4;
        cfg.hazard_slots_per_thread = 4;
        cfg.app_sync_bytes = pod::kLeaseTableBytes;
        return cfg;
    }

    static pod::PodConfig
    make_pod(const cxlalloc::Config& cfg, const pod::Topology& topo)
    {
        pod::PodConfig pc;
        // No cache simulation: the end oracle reads every slab descriptor
        // from a single session (see test_sched_pod_steal.cc).
        pc.device = cxlalloc::PodShardedAllocator::device_config(
            cfg, topo, cxl::CoherenceMode::PartialHwcc,
            /*simulate_cache=*/false);
        pc.topology = topo;
        return pc;
    }

    cxlalloc::Config cfg;
    pod::Topology topo;
    pod::Pod pod;
    cxlalloc::PodShardedAllocator alloc;
    std::vector<pod::Process*> procs;
    std::vector<std::unique_ptr<pod::ThreadContext>> ctxs;
    std::vector<cxl::ThreadId> tids;
    cxl::HeapOffset lease_base = 0;
    std::unique_ptr<pod::LivenessDetector> detector;
    std::unique_ptr<pod::FaultInjector> injector;
    std::vector<cxl::HeapOffset> blocks;
};

/// Free-counter == popcount for every classed slab of BOTH shards.
void
sweep_shard_invariant(FaultWorld& w, cxl::MemSession& mem)
{
    for (cxl::DeviceId d = 0; d < w.alloc.shard_count(); d++) {
        cxlalloc::SlabHeap& heap = w.alloc.shard(d).small_heap();
        std::uint32_t length = heap.length(mem);
        for (std::uint32_t slab = 0; slab < length; slab++) {
            if (heap.debug_class_biased(mem, slab) == 0) {
                continue;
            }
            std::uint32_t counter = heap.debug_free_blocks(mem, slab);
            std::uint32_t popcount = heap.debug_bitset_count(mem, slab);
            if (counter != popcount) {
                throw OracleFailure(
                    "shard " + std::to_string(d) + " slab " +
                    std::to_string(slab) + " free counter " +
                    std::to_string(counter) + " != bitset popcount " +
                    std::to_string(popcount));
            }
        }
    }
}

/// Finishes the fault plan (flap recovery included) and re-arms healthy
/// placement; at_end runs outside any vthread so the firings are plain.
void
settle_faults(FaultWorld& w)
{
    for (int i = 0; i < 8 && !w.injector->done(); i++) {
        w.injector->step();
    }
    if (!w.injector->done()) {
        throw OracleFailure("fault plan did not fully fire/recover");
    }
    w.alloc.refresh_placement();
}

void
spawn_workload(Run& run, const std::shared_ptr<FaultWorld>& w,
               bool killable)
{
    // vthread 0: the monitor. Advances the injector clock (firing the
    // flap at some explored yield), refreshes placement, beats its own
    // host and polls the workers' leases. Capped at 3 polls: with
    // dead_after = 3 the in-run detector can reach Suspect but never
    // Dead, so a starved-but-alive host is never killed mid-run — the
    // Dead verdict is driven deterministically in at_end.
    run.spawn("monitor-h0", [w] {
        try {
            for (int round = 0; round < 3; round++) {
                w->injector->step();
                w->alloc.refresh_placement();
                w->beat(0, 0);
                w->detector->poll(w->ctxs[0]->mem());
                cxl::HeapOffset p = w->alloc.allocate(*w->ctxs[0], 1024);
                if (p != 0) {
                    w->alloc.deallocate(*w->ctxs[0], p);
                }
            }
        } catch (const sched::VthreadKilled&) {
            w->pod.mark_crashed(std::move(w->ctxs[0]));
        }
    });
    // vthreads 1, 2 (host 1): beat the lease between ops while remote-
    // freeing interleaved halves of host 0's blocks across the fabric.
    for (int i = 1; i <= 2; i++) {
        run.spawn(
            "worker-h1-" + std::to_string(i),
            [w, i] {
                try {
                    for (std::size_t n = static_cast<std::size_t>(i - 1);
                         n < w->blocks.size(); n += 2) {
                        w->beat(i, 1);
                        w->alloc.deallocate(*w->ctxs[i], w->blocks[n]);
                    }
                } catch (const sched::VthreadKilled&) {
                    w->pod.mark_crashed(std::move(w->ctxs[i]));
                }
            },
            killable);
    }
}

TEST(SchedFaults, SuspicionRacesBeatsAndRemoteFreesWithoutFalseDeaths)
{
    Options opt;
    opt.seed = 107;
    opt.schedules = 48;
    Result r = Explorer(opt).run([](sched::Run& run) {
        auto w = std::make_shared<FaultWorld>();
        spawn_workload(run, w, /*killable=*/false);
        run.at_end([w](const sched::RunEnd&) {
            settle_faults(*w);
            // One flap = exactly two health transitions on that edge,
            // whatever the schedule did around it.
            if (w->topo.edge_epoch(0, 1) != 2) {
                throw OracleFailure("edge epoch " +
                                    std::to_string(
                                        w->topo.edge_epoch(0, 1)) +
                                    " after one flap");
            }
            // However suspicion interleaved with the beats, no host may
            // have been declared Dead: the monitor's 3 polls leave at
            // most 2 consecutive misses, below dead_after.
            if (w->detector->deaths() != 0) {
                throw OracleFailure("live host declared Dead");
            }
            // Clear whatever misses the schedule left behind (a beat
            // followed by a poll resets host 1 to Alive), then force one
            // full suspect round trip: two beat-free polls push host 1 to
            // Suspect — still short of dead_after — and a beat clears it.
            cxl::MemSession& mem = w->ctxs[0]->mem();
            w->beat(1, 1);
            w->detector->poll(mem);
            if (w->detector->misses(1) != 0) {
                throw OracleFailure("beat did not clear the miss count");
            }
            w->detector->poll(mem);
            w->detector->poll(mem);
            if (w->detector->health(1) != pod::HostHealth::Suspect) {
                throw OracleFailure("missed leases did not raise Suspect");
            }
            w->beat(1, 1);
            w->detector->poll(mem);
            if (w->detector->health(1) != pod::HostHealth::Alive ||
                w->detector->false_suspects() == 0) {
                throw OracleFailure("suspect host did not return to Alive");
            }
            sweep_shard_invariant(*w, mem);
            w->alloc.check_invariants(mem);
        });
    });
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(r.truncated, 0u);
}

TEST(SchedFaults, KillAWorkerAtAnyYieldThenDetectAdoptRecoverAndSweep)
{
    Options opt;
    opt.seed = 109;
    opt.schedules = 64;
    opt.crash = true;
    opt.crash_horizon = 400;
    Result r = Explorer(opt).run([](sched::Run& run) {
        auto w = std::make_shared<FaultWorld>();
        spawn_workload(run, w, /*killable=*/true);
        run.at_end([w](const sched::RunEnd& end) {
            settle_faults(*w);
            cxl::MemSession& monitor_mem = w->ctxs[0]->mem();
            if (end.killed != kNoVthread) {
                // The kill hit a host-1 worker (the monitor is not
                // killable); the whole host goes with it — its sibling's
                // context is dropped without writeback and the lease
                // falls silent.
                int sibling = end.killed == 1 ? 2 : 1;
                if (w->ctxs[sibling] != nullptr) {
                    w->pod.mark_crashed(std::move(w->ctxs[sibling]),
                                        pod::Pod::CrashSeverity::Host);
                }
                // The monitor keeps its cadence; with no beats arriving,
                // consecutive misses must reach the Dead verdict.
                std::vector<pod::HostId> dead;
                for (int r2 = 0; r2 < 8 && dead.empty(); r2++) {
                    w->beat(0, 0);
                    dead = w->detector->poll(monitor_mem);
                }
                if (dead.size() != 1 || dead[0] != 1) {
                    throw OracleFailure("host death not detected");
                }
                if (w->detector->health(1) != pod::HostHealth::Dead) {
                    throw OracleFailure("dead host not marked Dead");
                }
                // Adopt every crashed slot on the survivor and run the
                // ordered multi-shard recovery; the recovered identity
                // must be able to allocate again.
                for (cxl::ThreadId tid : w->pod.crashed_threads()) {
                    auto rec = w->pod.adopt_thread(w->procs[0], tid);
                    w->alloc.recover(*rec);
                    cxl::HeapOffset p = w->alloc.allocate(*rec, 1024);
                    if (p == 0) {
                        throw OracleFailure(
                            "allocation failed after recovery");
                    }
                    w->alloc.deallocate(*rec, p);
                    w->pod.release_thread(std::move(rec));
                }
            }
            sweep_shard_invariant(*w, monitor_mem);
            w->alloc.check_invariants(monitor_mem);
        });
    });
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_GT(r.kills, 0u);
}

} // namespace
