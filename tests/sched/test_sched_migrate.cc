/// @file
/// Hot-slab migration raced against allocation churn and reference-cell
/// updates on a tiered (CXL + private DRAM window) pod under explored
/// schedules: vthread 0 ping-pongs published objects between the tiers
/// while vthread 1 churns the shared slabs and vthread 2 republishes the
/// same cells — the publish CAS decides each race. The crash variant
/// kills any participant at any yield, adopts the slot, runs
/// HotSlabMigrator::recover (migration record first, then every shard)
/// and sweeps the free-counter == bitset-popcount oracle plus cell
/// sanity over ALL THREE windows.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cxlalloc/migrate.h"
#include "pod/pod.h"
#include "pod/topology.h"
#include "sched/explorer.h"
#include "sync/detectable_cas.h"

namespace {

using sched::Explorer;
using sched::kNoVthread;
using sched::Options;
using sched::OracleFailure;
using sched::Result;
using sched::Run;

constexpr std::uint32_t kCells = 4;
constexpr std::uint64_t kObjSize = 64;
constexpr std::uint8_t kFill = 0x42;

struct MigrateWorld {
    MigrateWorld()
        : cfg(make_config()), dram_cfg(make_dram_config(cfg)),
          topo(pod::Topology::with_local_dram(
              pod::Topology::dense(1, 2, cxl::EdgeCost{}, far_edge()))),
          pod(make_pod(cfg, dram_cfg, topo)), alloc(pod, cfg, &dram_cfg),
          migrator(alloc)
    {
        procs.push_back(pod.create_process(0));
        alloc.attach(*procs.back());
        for (int i = 0; i < 3; i++) {
            ctxs.push_back(pod.create_thread(procs[0]));
            alloc.attach_thread(*ctxs.back());
            tids.push_back(ctxs.back()->tid());
        }
        home = topo.home_of(0);
        dram = topo.dram_device_of(0);
        cells = alloc.shard(home).layout().app_sync();
        migrator.set_cell_table(cells, kCells);
        // Pre-state: one published object per cell, plus churn fodder.
        for (std::uint32_t i = 0; i < kCells; i++) {
            publish_fresh(*ctxs[0], cell(i));
        }
    }

    cxl::HeapOffset
    cell(std::uint32_t i) const
    {
        return cells + static_cast<cxl::HeapOffset>(i) * 8;
    }

    std::uint32_t
    read_cell(pod::ThreadContext& ctx, cxl::HeapOffset c)
    {
        return alloc.shard(home).dcas().read(ctx.mem(), c);
    }

    /// Allocate + fill + one-shot publish over whatever the cell holds;
    /// the loser of the CAS race is freed (app-side update protocol).
    void
    publish_fresh(pod::ThreadContext& ctx, cxl::HeapOffset c)
    {
        std::uint32_t val = read_cell(ctx, c);
        cxl::HeapOffset fresh = alloc.allocate(ctx, kObjSize);
        if (fresh == 0) {
            return;
        }
        std::uint8_t buf[kObjSize];
        for (std::uint8_t& b : buf) {
            b = kFill;
        }
        ctx.mem().write_bytes(fresh, buf, kObjSize);
        ctx.mem().flush(fresh, kObjSize);
        ctx.mem().fence();
        auto res = alloc.shard(home).cell_publish(
            ctx, c, val, static_cast<std::uint32_t>(fresh >> 3));
        cxl::HeapOffset loser =
            res.success ? static_cast<cxl::HeapOffset>(val) << 3 : fresh;
        if (loser != 0) {
            alloc.deallocate(ctx, loser);
        }
    }

    static cxl::EdgeCost
    far_edge()
    {
        cxl::EdgeCost e;
        e.read_add_ns = 100;
        e.write_add_ns = 150;
        return e;
    }

    static cxlalloc::Config
    make_config()
    {
        cxlalloc::Config cfg;
        cfg.small_slabs = 32;
        cfg.large_slabs = 8;
        cfg.huge_regions = 2;
        cfg.huge_region_size = 1 << 20;
        cfg.huge_descs_per_thread = 4;
        cfg.hazard_slots_per_thread = 4;
        cfg.app_sync_bytes = kCells * 8;
        cfg.dram_percent = 50;
        cfg.dram_max_block = 1024;
        return cfg;
    }

    static cxlalloc::Config
    make_dram_config(const cxlalloc::Config& base)
    {
        cxlalloc::Config d = base;
        d.small_slabs = 2;
        d.app_sync_bytes = 0;
        return d;
    }

    static pod::PodConfig
    make_pod(const cxlalloc::Config& cfg, const cxlalloc::Config& dram_cfg,
             const pod::Topology& topo)
    {
        pod::PodConfig pc;
        // No cache simulation: the end oracle reads every slab descriptor
        // from a single session (see test_sched_pod_steal.cc).
        pc.device = cxlalloc::PodShardedAllocator::device_config(
            cfg, topo, cxl::CoherenceMode::PartialHwcc,
            /*simulate_cache=*/false, 0, &dram_cfg);
        pc.topology = topo;
        return pc;
    }

    cxlalloc::Config cfg;
    cxlalloc::Config dram_cfg;
    pod::Topology topo;
    pod::Pod pod;
    cxlalloc::PodShardedAllocator alloc;
    cxlalloc::HotSlabMigrator migrator;
    std::vector<pod::Process*> procs;
    std::vector<std::unique_ptr<pod::ThreadContext>> ctxs;
    std::vector<cxl::ThreadId> tids;
    cxl::DeviceId home = 0;
    cxl::DeviceId dram = 0;
    cxl::HeapOffset cells = 0;
};

/// Free-counter == bitset-popcount for every classed slab of every shard
/// (both CXL windows and the DRAM window), plus cell sanity: every
/// nonzero cell names a small block in a classed slab of a valid window.
void
sweep_tiered_invariant(MigrateWorld& w, cxl::MemSession& mem)
{
    for (cxl::DeviceId d = 0; d < w.alloc.shard_count(); d++) {
        cxlalloc::SlabHeap& heap = w.alloc.shard(d).small_heap();
        std::uint32_t length = heap.length(mem);
        for (std::uint32_t slab = 0; slab < length; slab++) {
            if (heap.debug_class_biased(mem, slab) == 0) {
                continue;
            }
            std::uint32_t counter = heap.debug_free_blocks(mem, slab);
            std::uint32_t popcount = heap.debug_bitset_count(mem, slab);
            if (counter != popcount) {
                throw OracleFailure(
                    "shard " + std::to_string(d) + " slab " +
                    std::to_string(slab) + " free counter " +
                    std::to_string(counter) + " != bitset popcount " +
                    std::to_string(popcount));
            }
        }
    }
    for (std::uint32_t i = 0; i < kCells; i++) {
        std::uint32_t val =
            cxlsync::DcasWord::value(mem.atomic_load64(w.cell(i)));
        if (val == 0) {
            continue;
        }
        auto off = static_cast<cxl::HeapOffset>(val) << 3;
        cxl::DeviceId dev = w.pod.device().device_of(off);
        if (dev >= w.alloc.shard_count() ||
            !w.alloc.shard(dev).layout().in_small_data(off)) {
            throw OracleFailure("cell " + std::to_string(i) +
                                " names an out-of-heap offset");
        }
    }
}

void
spawn_workload(Run& run, const std::shared_ptr<MigrateWorld>& w,
               bool killable)
{
    // vthread 0: the migrator ping-pongs every published object between
    // the CXL home shard and the private DRAM window.
    run.spawn(
        "migrator",
        [w] {
            try {
                for (int round = 0; round < 3; round++) {
                    for (std::uint32_t c = 0; c < kCells; c++) {
                        std::uint32_t val =
                            w->read_cell(*w->ctxs[0], w->cell(c));
                        if (val == 0) {
                            continue;
                        }
                        cxl::DeviceId dev = w->pod.device().device_of(
                            static_cast<cxl::HeapOffset>(val) << 3);
                        cxl::DeviceId target =
                            dev == w->dram ? w->home : w->dram;
                        w->migrator.debug_migrate_cell(*w->ctxs[0],
                                                       w->cell(c), target);
                    }
                }
            } catch (const sched::VthreadKilled&) {
                w->pod.mark_crashed(std::move(w->ctxs[0]));
            }
        },
        killable);
    // vthread 1: allocation churn in the same slabs the migrator copies
    // into and out of (tier-split by the stride policy).
    run.spawn(
        "churn",
        [w] {
            try {
                for (int n = 0; n < 10; n++) {
                    cxl::HeapOffset p = w->alloc.allocate(*w->ctxs[1],
                                                          kObjSize);
                    if (p != 0) {
                        w->alloc.deallocate(*w->ctxs[1], p);
                    }
                }
            } catch (const sched::VthreadKilled&) {
                w->pod.mark_crashed(std::move(w->ctxs[1]));
            }
        },
        killable);
    // vthread 2: republishes the cells the migrator is moving — the
    // detectable-CAS publish decides every race, the loser is freed.
    run.spawn(
        "updates",
        [w] {
            try {
                for (int n = 0; n < 6; n++) {
                    w->publish_fresh(*w->ctxs[2],
                                     w->cell(static_cast<std::uint32_t>(n) %
                                             kCells));
                }
            } catch (const sched::VthreadKilled&) {
                w->pod.mark_crashed(std::move(w->ctxs[2]));
            }
        },
        killable);
}

TEST(SchedMigrate, MigrationRacesKeepAllTiersConsistent)
{
    Options opt;
    opt.seed = 101;
    opt.schedules = 48;
    Result r = Explorer(opt).run([](sched::Run& run) {
        auto w = std::make_shared<MigrateWorld>();
        spawn_workload(run, w, /*killable=*/false);
        run.at_end([w](const sched::RunEnd&) {
            cxl::MemSession& mem = w->ctxs[0]->mem();
            sweep_tiered_invariant(*w, mem);
            w->alloc.check_invariants(mem);
        });
    });
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(r.truncated, 0u);
}

TEST(SchedMigrate, KillAnyParticipantThenMigratorRecoverAndSweep)
{
    Options opt;
    opt.seed = 103;
    opt.schedules = 64;
    opt.crash = true;
    opt.crash_horizon = 500;
    Result r = Explorer(opt).run([](sched::Run& run) {
        auto w = std::make_shared<MigrateWorld>();
        spawn_workload(run, w, /*killable=*/true);
        run.at_end([w](const sched::RunEnd& end) {
            std::unique_ptr<pod::ThreadContext> adopted;
            if (end.killed != kNoVthread) {
                adopted = w->pod.adopt_thread(w->procs[0],
                                              w->tids[end.killed]);
                // Migration-aware recovery: drives any in-flight stage
                // machine to completion, then every shard.
                w->migrator.recover(*adopted);
            }
            cxl::MemSession& mem = adopted != nullptr
                                       ? adopted->mem()
                                       : w->ctxs[0]->mem();
            sweep_tiered_invariant(*w, mem);
            w->alloc.check_invariants(mem);
            if (adopted != nullptr) {
                cxl::HeapOffset p = w->alloc.allocate(*adopted, kObjSize);
                if (p == 0) {
                    throw OracleFailure("allocation failed after recovery");
                }
                w->alloc.deallocate(*adopted, p);
            }
        });
    });
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_GT(r.kills, 0u);
}

} // namespace
