#include "cxl/latency_model.h"

#include <gtest/gtest.h>

namespace {

using cxl::LatencyModel;

TEST(LatencyModelTest, LocalDramMatchesPaperMeasurement)
{
    // Paper §5.4 MLC measurements: local DRAM 112 ns, CXL 357 ns.
    EXPECT_EQ(LatencyModel::local_dram().read_ns, 112u);
    EXPECT_EQ(LatencyModel::cxl_hwcc().read_ns, 357u);
    EXPECT_EQ(LatencyModel::cxl_mcas().read_ns, 357u);
}

TEST(LatencyModelTest, McasCalibratedToFig11)
{
    // hw_cas p50 at 1 thread ~= 2.3 us.
    EXPECT_EQ(LatencyModel::cxl_mcas().mcas_ns, 2300u);
    // The mCAS mode has no plain CAS at all (no HWcc).
    EXPECT_EQ(LatencyModel::cxl_mcas().cas_ns, 0u);
}

TEST(LatencyModelTest, FlushCasForcesMiss)
{
    // sw_flush_cas: the CAS is always an uncached CXL access.
    LatencyModel m = LatencyModel::cxl_flush_cas();
    EXPECT_GE(m.cas_ns, LatencyModel::cxl_hwcc().read_ns);
    EXPECT_GT(m.cas_contended_ns, LatencyModel::cxl_hwcc().cas_contended_ns);
}

TEST(LatencyModelTest, CxlCostsDominateLocal)
{
    LatencyModel local = LatencyModel::local_dram();
    LatencyModel cxl_mem = LatencyModel::cxl_hwcc();
    EXPECT_GT(cxl_mem.read_ns, local.read_ns);
    EXPECT_GT(cxl_mem.flush_ns, local.flush_ns);
    EXPECT_GT(cxl_mem.cas_ns, local.cas_ns);
}

} // namespace
