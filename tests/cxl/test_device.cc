#include "cxl/device.h"

#include <gtest/gtest.h>

namespace {

using cxl::CoherenceMode;
using cxl::Device;
using cxl::DeviceConfig;

DeviceConfig
small_config(CoherenceMode mode)
{
    DeviceConfig cfg;
    cfg.size = 1 << 20;
    cfg.mode = mode;
    cfg.sync_region_size = 64 << 10;
    return cfg;
}

TEST(Device, FreshDeviceIsZeroFilled)
{
    Device dev(small_config(CoherenceMode::PartialHwcc));
    for (std::uint64_t off = 0; off < dev.size(); off += 4099) {
        EXPECT_EQ(*dev.raw(off), std::byte{0});
    }
}

TEST(Device, SyncRegionBoundaryPartialHwcc)
{
    Device dev(small_config(CoherenceMode::PartialHwcc));
    EXPECT_TRUE(dev.in_sync_region(0));
    EXPECT_TRUE(dev.in_sync_region((64 << 10) - 1));
    EXPECT_FALSE(dev.in_sync_region(64 << 10));
    EXPECT_FALSE(dev.in_sync_region(dev.size() - 1));
}

TEST(Device, FullHwccCoversWholeDevice)
{
    Device dev(small_config(CoherenceMode::FullHwcc));
    EXPECT_TRUE(dev.in_sync_region(dev.size() - 1));
}

TEST(Device, CommitAccountingCountsUniquePages)
{
    Device dev(small_config(CoherenceMode::PartialHwcc));
    EXPECT_EQ(dev.committed_bytes(), 0u);
    dev.note_committed(0, cxl::kPageSize);
    EXPECT_EQ(dev.committed_bytes(), cxl::kPageSize);
    // Re-committing the same page does not double count.
    dev.note_committed(0, cxl::kPageSize);
    EXPECT_EQ(dev.committed_bytes(), cxl::kPageSize);
    // A range spanning a partial page rounds up to whole pages.
    dev.note_committed(cxl::kPageSize, 1);
    EXPECT_EQ(dev.committed_bytes(), 2 * cxl::kPageSize);
}

TEST(Device, CommitAccountingSpansUnalignedRanges)
{
    Device dev(small_config(CoherenceMode::PartialHwcc));
    dev.note_committed(cxl::kPageSize - 1, 2); // touches two pages
    EXPECT_EQ(dev.committed_bytes(), 2 * cxl::kPageSize);
}

TEST(Device, ResetCommitAccounting)
{
    Device dev(small_config(CoherenceMode::PartialHwcc));
    dev.note_committed(0, 10 * cxl::kPageSize);
    dev.reset_commit_accounting();
    EXPECT_EQ(dev.committed_bytes(), 0u);
}

} // namespace
