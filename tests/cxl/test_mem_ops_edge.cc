/// Edge cases and misuse guards of the memory-access layer.

#include <gtest/gtest.h>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/test_faults.h"
#include "cxl/mem_ops.h"

namespace {

using cxl::CoherenceMode;
using cxl::Device;
using cxl::DeviceConfig;
using cxl::MemSession;
using cxl::Nmp;

struct Rig {
    explicit Rig(CoherenceMode mode, bool sim = false)
        : dev(DeviceConfig{.size = 1 << 20,
                           .mode = mode,
                           .sync_region_size = 64 << 10,
                           .simulate_cache = sim}),
          nmp(&dev)
    {
    }

    MemSession session(cxl::ThreadId tid) { return MemSession(&dev, &nmp, tid); }

    Device dev;
    Nmp nmp;
};

TEST(MemOpsEdge, CasOutsideSyncRegionDies)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    std::uint64_t expected = 0;
    EXPECT_DEATH(s.cas64(512 << 10, expected, 1), "CAS outside");
}

TEST(MemOpsEdge, FullHwccAllowsCasAnywhere)
{
    Rig rig(CoherenceMode::FullHwcc);
    MemSession s = rig.session(1);
    std::uint64_t expected = 0;
    EXPECT_TRUE(s.cas64(512 << 10, expected, 1));
}

TEST(MemOpsEdge, MisalignedAtomicDies)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    EXPECT_DEATH(s.atomic_load64(12345), "misaligned");
}

TEST(MemOpsEdge, AccessPastDeviceEndDies)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    EXPECT_DEATH(s.load<std::uint64_t>(rig.dev.size() - 4), "past device");
}

TEST(MemOpsEdge, OverflowingAccessLengthDies)
{
    // offset + len wraps uint64_t: the old `offset + len <= size` bounds
    // check wrapped to a tiny sum and let the access through.
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    EXPECT_DEATH(s.data_ptr(8, ~std::uint64_t{0} - 4), "past device");
    EXPECT_DEATH(s.data_ptr(~std::uint64_t{0} - 4, 8), "past device");
}

TEST(MemOpsEdge, FullRangeAccessAllowed)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    EXPECT_NE(s.data_ptr(0, rig.dev.size()), nullptr);
    EXPECT_NE(s.data_ptr(rig.dev.size() - 8, 8), nullptr);
}

TEST(MemOpsEdge, InvalidThreadIdDies)
{
    Rig rig(CoherenceMode::PartialHwcc);
    EXPECT_DEATH(rig.session(0), "valid thread id");
    EXPECT_DEATH(rig.session(cxl::kMaxThreads + 1), "valid thread id");
}

TEST(MemOpsEdge, CountersAccumulateAndReset)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    s.store<std::uint32_t>(200000, 1);
    (void)s.load<std::uint32_t>(200000);
    s.flush(200000, 4);
    s.fence();
    std::uint64_t expected = 0;
    s.cas64(128, expected, 1);
    EXPECT_EQ(s.counters().stores, 1u);
    EXPECT_EQ(s.counters().loads, 1u);
    EXPECT_EQ(s.counters().flushes, 1u);
    EXPECT_EQ(s.counters().fences, 1u);
    EXPECT_EQ(s.counters().cas_ops, 1u);
    s.reset_accounting();
    EXPECT_EQ(s.counters().stores, 0u);
    EXPECT_EQ(s.sim_ns(), 0u);
}

TEST(MemOpsEdge, CounterAggregationOperator)
{
    cxl::MemEventCounters a;
    cxl::MemEventCounters b;
    a.loads = 3;
    b.loads = 4;
    a.mcas_conflicts = 1;
    b.mcas_conflicts = 2;
    a += b;
    EXPECT_EQ(a.loads, 7u);
    EXPECT_EQ(a.mcas_conflicts, 3u);
}

TEST(MemOpsEdge, McasConflictCountedAndRecovered)
{
    // Force a real Fig. 6(b) conflict through the session layer.
    Rig rig(CoherenceMode::NoHwcc);
    MemSession s1 = rig.session(1);
    MemSession s2 = rig.session(2);
    rig.nmp.spwr(1, 256, 0, 7); // leave thread 1's op in flight
    std::uint64_t expected = 0;
    EXPECT_FALSE(s2.cas64(256, expected, 9));
    EXPECT_EQ(s2.counters().mcas_conflicts, 1u);
    EXPECT_TRUE(rig.nmp.sprd(1).success);
    // After the in-flight op completes, thread 2 succeeds (with the fresh
    // expected value cas64 reloaded).
    EXPECT_EQ(expected, 0u); // conflict happened before T1's write landed
    expected = s2.atomic_load64(256);
    EXPECT_TRUE(s2.cas64(256, expected, 9));
}

TEST(MemOpsEdge, WritebackAllPreservesDirtyData)
{
    Rig rig(CoherenceMode::PartialHwcc, /*sim=*/true);
    MemSession s = rig.session(1);
    s.store<std::uint64_t>(200000, 42);
    // Process crash: cache written back, store survives.
    s.cache().writeback_all();
    MemSession fresh = rig.session(2);
    EXPECT_EQ(fresh.load<std::uint64_t>(200000), 42u);
}

TEST(MemOpsEdge, SimulatedCacheLineGranularity)
{
    Rig rig(CoherenceMode::PartialHwcc, /*sim=*/true);
    MemSession a = rig.session(1);
    MemSession b = rig.session(2);
    // Two fields on ONE line: flushing the line publishes both.
    a.store<std::uint32_t>(200000, 1);
    a.store<std::uint32_t>(200004, 2);
    a.flush(200000, 1); // one byte -> whole line
    b.flush(200000, 64);
    EXPECT_EQ(b.load<std::uint32_t>(200000), 1u);
    EXPECT_EQ(b.load<std::uint32_t>(200004), 2u);
}

/// Guard stub recording every on_access and an adjustable mapping epoch.
struct CountingGuard : cxl::MappingGuard {
    bool
    on_access(MemSession&, cxl::HeapOffset offset, std::uint64_t len) override
    {
        calls++;
        last_offset = offset;
        last_len = len;
        return true; // verified: session may cache the translation
    }
    std::uint64_t mapping_epoch() const override { return epoch; }

    std::uint64_t calls = 0;
    std::uint64_t epoch = 1;
    cxl::HeapOffset last_offset = 0;
    std::uint64_t last_len = 0;
};

TEST(MemOpsEdge, FlushConsultsMappingGuard)
{
    // Regression: flush() used to skip check_access entirely, so flushing
    // a reclaimed (remapped) range bypassed the munmap-shootdown analog.
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    CountingGuard g;
    s.set_mapping_guard(&g);

    s.flush(8192, 64);
    EXPECT_EQ(g.calls, 1u) << "flush must fault unverified ranges in";
    EXPECT_EQ(g.last_offset, 8192u);

    s.flush(8192, 64); // translation now cached in the session TLB
    EXPECT_EQ(g.calls, 1u);

    g.epoch++; // a mapping was removed somewhere: shootdown
    s.flush(8192, 64);
    EXPECT_EQ(g.calls, 2u)
        << "flush after a remap must re-verify, not use the stale TLB";
}

TEST(MemOpsEdge, ZeroLengthFlushIsNoOp)
{
    // Regression: flush(offset, 0) underflowed the covered-line count and
    // flushed (and charged for) a huge range.
    Rig rig(CoherenceMode::PartialHwcc, /*sim=*/true);
    MemSession s = rig.session(1);
    std::uint64_t flushes = s.counters().flushes;
    std::uint64_t lines = s.counters().flushed_lines;
    s.flush(4096, 0);
    s.flush(rig.dev.size(), 0); // boundary: end-of-device, still a no-op
    EXPECT_EQ(s.counters().flushes, flushes);
    EXPECT_EQ(s.counters().flushed_lines, lines);
    EXPECT_EQ(s.sim_ns(), 0u);
}

TEST(MemOpsEdge, BulkOpsCountPerCoveredLine)
{
    // read_bytes/write_bytes used to count one load/store and charge zero
    // latency regardless of length; they now account per covered line,
    // consistent with flush (see ARCHITECTURE.md on mem.loads semantics).
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    std::vector<std::byte> buf(260);

    s.write_bytes(8192 + 28, buf.data(), 260); // spans 5 lines
    EXPECT_EQ(s.counters().stores, 5u);
    s.read_bytes(8192 + 28, buf.data(), 260);
    EXPECT_EQ(s.counters().loads, 5u);

    // A one-word transfer still costs exactly one event, like load<>.
    s.write_bytes(16384, buf.data(), 8);
    EXPECT_EQ(s.counters().stores, 6u);

    // Zero-length transfers touch no lines.
    s.read_bytes(8192, buf.data(), 0);
    s.write_bytes(8192, buf.data(), 0);
    EXPECT_EQ(s.counters().loads, 5u);
    EXPECT_EQ(s.counters().stores, 6u);

    // flush matches: one flush event, per-line write-back accounting.
    std::uint64_t lines = s.counters().flushed_lines;
    s.flush(8192 + 28, 260);
    EXPECT_EQ(s.counters().flushes, 1u);
    EXPECT_EQ(s.counters().flushed_lines - lines, 5u);
}

TEST(MemOpsEdge, FlushDirtyWritesBackOnlyDirtiedLines)
{
    Rig rig(CoherenceMode::PartialHwcc, /*sim=*/true);
    MemSession s = rig.session(1);
    const cxl::HeapOffset base = 128 << 10;
    const std::uint64_t len = 576; // a 9-line descriptor

    s.store<std::uint64_t>(base, 1);       // line 0
    s.store<std::uint64_t>(base + 128, 2); // line 2
    std::uint64_t flushes = s.counters().flushes;
    std::uint64_t lines = s.counters().flushed_lines;
    s.flush_dirty(base, len);
    EXPECT_EQ(s.counters().flushes - flushes, 2u) << "two disjoint runs";
    EXPECT_EQ(s.counters().flushed_lines - lines, 2u)
        << "only the 2 dirtied of 9 lines written back";

    // Idempotent: the lines are clean now.
    flushes = s.counters().flushes;
    s.flush_dirty(base, len);
    EXPECT_EQ(s.counters().flushes, flushes);

    // Adjacent dirty lines coalesce into one ranged clwb.
    s.store<std::uint64_t>(base + 64, 3);
    s.store<std::uint64_t>(base + 128, 4);
    flushes = s.counters().flushes;
    lines = s.counters().flushed_lines;
    s.flush_dirty(base, len);
    EXPECT_EQ(s.counters().flushes - flushes, 1u);
    EXPECT_EQ(s.counters().flushed_lines - lines, 2u);

    // The elided flushes were real elisions, not lost writes: a reader
    // sees everything after the publication fence.
    s.fence();
    MemSession r = rig.session(2);
    r.flush(base, len);
    EXPECT_EQ(r.load<std::uint64_t>(base), 1u);
    EXPECT_EQ(r.load<std::uint64_t>(base + 64), 3u);
    EXPECT_EQ(r.load<std::uint64_t>(base + 128), 4u);

    // Zero-length request: no-op.
    flushes = s.counters().flushes;
    s.flush_dirty(base, 0);
    EXPECT_EQ(s.counters().flushes, flushes);
}

TEST(MemOpsEdge, DirtyLineSetInsertEraseGrowOverflow)
{
    cxl::DirtyLineSet set;
    EXPECT_FALSE(set.contains(64));
    set.insert(64);
    EXPECT_TRUE(set.contains(64));
    EXPECT_EQ(set.size(), 1u);
    set.insert(64); // dedup
    EXPECT_EQ(set.size(), 1u);
    set.erase(64);
    EXPECT_FALSE(set.contains(64));
    EXPECT_EQ(set.size(), 0u);
    set.insert(128); // tombstone reuse
    EXPECT_TRUE(set.contains(128));

    // Growth keeps every entry findable.
    for (std::uint64_t i = 0; i < 5000; i++) {
        set.insert(i * 64);
    }
    for (std::uint64_t i = 0; i < 5000; i++) {
        ASSERT_TRUE(set.contains(i * 64)) << i;
    }
    EXPECT_FALSE(set.overflowed());

    // Past the size cap the set latches overflowed (flush_dirty then
    // degrades to a conservative full-range flush).
    for (std::uint64_t i = 0; i < 70000; i++) {
        set.insert(i * 64);
    }
    EXPECT_TRUE(set.overflowed());
    set.insert(1 << 30); // no-op after overflow; latch is sticky
    EXPECT_TRUE(set.overflowed());
}

TEST(MemOpsEdge, DirtyLineSetChurnDoesNotLatchOverflow)
{
    // Regression: erase() left tombstones that counted toward the probe
    // load forever, and growth was the only rehash — so steady alloc/free
    // cycling (insert+erase of a small working set) latched `overflowed`
    // once TOTAL traffic passed the cap, permanently degrading flush_dirty
    // to conservative full-range flushes. Tombstones are now purged by an
    // in-place rehash; only a genuinely large LIVE set may latch.
    cxl::DirtyLineSet set;
    for (std::uint64_t i = 0; i < 100; i++) {
        set.insert((1 << 20) + i * 64); // long-lived dirty lines
    }
    for (std::uint64_t i = 0; i < 200000; i++) {
        std::uint64_t line = (i % 16) * 64;
        set.insert(line);
        set.erase(line);
    }
    EXPECT_FALSE(set.overflowed())
        << "tombstone churn alone must never latch the overflow";
    EXPECT_EQ(set.size(), 100u);
    for (std::uint64_t i = 0; i < 100; i++) {
        ASSERT_TRUE(set.contains((1 << 20) + i * 64)) << i;
    }
}

TEST(MemOpsEdge, FlushDirtyConsultsMappingGuard)
{
    // Regression: flush_dirty() never check_access'd the REQUESTED range —
    // the nested flush() calls only cover dirty sub-runs, so a flush_dirty
    // over a reclaimed range whose lines happened to be clean silently
    // succeeded, bypassing the guard invariant flush() enforces.
    Rig rig(CoherenceMode::PartialHwcc, /*sim=*/true);
    MemSession s = rig.session(1);
    CountingGuard g;
    s.set_mapping_guard(&g);

    s.flush_dirty(8192, 576); // nothing dirty: no flush is issued...
    EXPECT_EQ(g.calls, 1u) << "...but the range must still be verified";
    EXPECT_EQ(g.last_offset, 8192u);
    EXPECT_EQ(g.last_len, 576u);

    s.flush_dirty(8192, 576); // translation now cached in the session TLB
    EXPECT_EQ(g.calls, 1u);

    g.epoch++; // a mapping was removed somewhere: shootdown
    s.flush_dirty(8192, 576);
    EXPECT_EQ(g.calls, 2u)
        << "clean-range flush_dirty after a remap must re-verify";
}

TEST(MemOpsEdge, DisabledDirtyTrackingDegradesButStillPublishes)
{
    // The skip_dirty_line_tracking fault models an undertracking bug:
    // flush_dirty believes nothing is dirty and elides everything. The
    // litmus suite proves this is CAUGHT (publish-undertracked); here we
    // just pin the mechanism the fault relies on.
    struct FaultGuard {
        ~FaultGuard() { cxlcommon::test_faults::reset(); }
    } guard;
    cxlcommon::test_faults::skip_dirty_line_tracking = true;

    Rig rig(CoherenceMode::PartialHwcc, /*sim=*/true);
    MemSession s = rig.session(1);
    s.store<std::uint64_t>(128 << 10, 7);
    EXPECT_EQ(s.dirty_set().size(), 0u);
    std::uint64_t flushes = s.counters().flushes;
    s.flush_dirty(128 << 10, 576);
    EXPECT_EQ(s.counters().flushes, flushes) << "undertracked: elides all";
}

} // namespace
