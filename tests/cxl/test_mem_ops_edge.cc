/// Edge cases and misuse guards of the memory-access layer.

#include <gtest/gtest.h>
#include <thread>

#include "cxl/mem_ops.h"

namespace {

using cxl::CoherenceMode;
using cxl::Device;
using cxl::DeviceConfig;
using cxl::MemSession;
using cxl::Nmp;

struct Rig {
    explicit Rig(CoherenceMode mode, bool sim = false)
        : dev(DeviceConfig{.size = 1 << 20,
                           .mode = mode,
                           .sync_region_size = 64 << 10,
                           .simulate_cache = sim}),
          nmp(&dev)
    {
    }

    MemSession session(cxl::ThreadId tid) { return MemSession(&dev, &nmp, tid); }

    Device dev;
    Nmp nmp;
};

TEST(MemOpsEdge, CasOutsideSyncRegionDies)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    std::uint64_t expected = 0;
    EXPECT_DEATH(s.cas64(512 << 10, expected, 1), "CAS outside");
}

TEST(MemOpsEdge, FullHwccAllowsCasAnywhere)
{
    Rig rig(CoherenceMode::FullHwcc);
    MemSession s = rig.session(1);
    std::uint64_t expected = 0;
    EXPECT_TRUE(s.cas64(512 << 10, expected, 1));
}

TEST(MemOpsEdge, MisalignedAtomicDies)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    EXPECT_DEATH(s.atomic_load64(12345), "misaligned");
}

TEST(MemOpsEdge, AccessPastDeviceEndDies)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    EXPECT_DEATH(s.load<std::uint64_t>(rig.dev.size() - 4), "past device");
}

TEST(MemOpsEdge, OverflowingAccessLengthDies)
{
    // offset + len wraps uint64_t: the old `offset + len <= size` bounds
    // check wrapped to a tiny sum and let the access through.
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    EXPECT_DEATH(s.data_ptr(8, ~std::uint64_t{0} - 4), "past device");
    EXPECT_DEATH(s.data_ptr(~std::uint64_t{0} - 4, 8), "past device");
}

TEST(MemOpsEdge, FullRangeAccessAllowed)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    EXPECT_NE(s.data_ptr(0, rig.dev.size()), nullptr);
    EXPECT_NE(s.data_ptr(rig.dev.size() - 8, 8), nullptr);
}

TEST(MemOpsEdge, InvalidThreadIdDies)
{
    Rig rig(CoherenceMode::PartialHwcc);
    EXPECT_DEATH(rig.session(0), "valid thread id");
    EXPECT_DEATH(rig.session(cxl::kMaxThreads + 1), "valid thread id");
}

TEST(MemOpsEdge, CountersAccumulateAndReset)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    s.store<std::uint32_t>(200000, 1);
    (void)s.load<std::uint32_t>(200000);
    s.flush(200000, 4);
    s.fence();
    std::uint64_t expected = 0;
    s.cas64(128, expected, 1);
    EXPECT_EQ(s.counters().stores, 1u);
    EXPECT_EQ(s.counters().loads, 1u);
    EXPECT_EQ(s.counters().flushes, 1u);
    EXPECT_EQ(s.counters().fences, 1u);
    EXPECT_EQ(s.counters().cas_ops, 1u);
    s.reset_accounting();
    EXPECT_EQ(s.counters().stores, 0u);
    EXPECT_EQ(s.sim_ns(), 0u);
}

TEST(MemOpsEdge, CounterAggregationOperator)
{
    cxl::MemEventCounters a;
    cxl::MemEventCounters b;
    a.loads = 3;
    b.loads = 4;
    a.mcas_conflicts = 1;
    b.mcas_conflicts = 2;
    a += b;
    EXPECT_EQ(a.loads, 7u);
    EXPECT_EQ(a.mcas_conflicts, 3u);
}

TEST(MemOpsEdge, McasConflictCountedAndRecovered)
{
    // Force a real Fig. 6(b) conflict through the session layer.
    Rig rig(CoherenceMode::NoHwcc);
    MemSession s1 = rig.session(1);
    MemSession s2 = rig.session(2);
    rig.nmp.spwr(1, 256, 0, 7); // leave thread 1's op in flight
    std::uint64_t expected = 0;
    EXPECT_FALSE(s2.cas64(256, expected, 9));
    EXPECT_EQ(s2.counters().mcas_conflicts, 1u);
    EXPECT_TRUE(rig.nmp.sprd(1).success);
    // After the in-flight op completes, thread 2 succeeds (with the fresh
    // expected value cas64 reloaded).
    EXPECT_EQ(expected, 0u); // conflict happened before T1's write landed
    expected = s2.atomic_load64(256);
    EXPECT_TRUE(s2.cas64(256, expected, 9));
}

TEST(MemOpsEdge, WritebackAllPreservesDirtyData)
{
    Rig rig(CoherenceMode::PartialHwcc, /*sim=*/true);
    MemSession s = rig.session(1);
    s.store<std::uint64_t>(200000, 42);
    // Process crash: cache written back, store survives.
    s.cache().writeback_all();
    MemSession fresh = rig.session(2);
    EXPECT_EQ(fresh.load<std::uint64_t>(200000), 42u);
}

TEST(MemOpsEdge, SimulatedCacheLineGranularity)
{
    Rig rig(CoherenceMode::PartialHwcc, /*sim=*/true);
    MemSession a = rig.session(1);
    MemSession b = rig.session(2);
    // Two fields on ONE line: flushing the line publishes both.
    a.store<std::uint32_t>(200000, 1);
    a.store<std::uint32_t>(200004, 2);
    a.flush(200000, 1); // one byte -> whole line
    b.flush(200000, 64);
    EXPECT_EQ(b.load<std::uint32_t>(200000), 1u);
    EXPECT_EQ(b.load<std::uint32_t>(200004), 2u);
}

} // namespace
