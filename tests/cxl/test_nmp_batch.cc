/// Batched NMP engine tests: deterministic competing-batch interleavings,
/// partial-batch conflicts, ring wrap-around and full-ring rejection at the
/// engine level; then the allocator's batched remote-free drain, including
/// a crash inside a half-submitted batch recovered through the §5.1
/// machinery (the operand ring is device memory and survives the crash).

#include "cxl/nmp.h"

#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "../cxlalloc/fixture.h"

namespace {

using cxl::CoherenceMode;
using cxl::Device;
using cxl::DeviceConfig;
using cxl::kNmpRingSlots;
using cxl::McasOperand;
using cxl::McasResult;
using cxl::Nmp;
using cxl::NmpSlotState;
using cxl::NmpSlotView;

class NmpBatchTest : public ::testing::Test {
  protected:
    NmpBatchTest()
        : dev_(DeviceConfig{.size = 1 << 20,
                            .mode = CoherenceMode::NoHwcc,
                            .sync_region_size = 64 << 10}),
          nmp_(&dev_)
    {
    }

    std::uint64_t
    word(std::uint64_t offset)
    {
        return std::atomic_ref<std::uint64_t>(
                   *reinterpret_cast<std::uint64_t*>(dev_.raw(offset)))
            .load(std::memory_order_acquire);
    }

    static McasOperand
    op(cxl::HeapOffset target, std::uint64_t expected, std::uint64_t swap)
    {
        return McasOperand{
            .target = target, .expected = expected, .swap = swap};
    }

    Device dev_;
    Nmp nmp_;
};

TEST_F(NmpBatchTest, DoorbellExecutesInPostingOrderPollIsFifo)
{
    ASSERT_TRUE(nmp_.spwr_post(1, op(128, 0, 10)));
    ASSERT_TRUE(nmp_.spwr_post(1, op(192, 0, 20)));
    ASSERT_TRUE(nmp_.spwr_post(1, op(256, 0, 30)));
    EXPECT_EQ(nmp_.ring_occupancy(1), 3u);
    EXPECT_EQ(nmp_.doorbell(1), 3u);
    McasResult r;
    ASSERT_TRUE(nmp_.poll(1, &r));
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.previous, 0u);
    ASSERT_TRUE(nmp_.poll(1, &r));
    EXPECT_TRUE(r.success);
    ASSERT_TRUE(nmp_.poll(1, &r));
    EXPECT_TRUE(r.success);
    EXPECT_FALSE(nmp_.poll(1, &r));
    EXPECT_EQ(word(128), 10u);
    EXPECT_EQ(word(192), 20u);
    EXPECT_EQ(word(256), 30u);
    EXPECT_EQ(nmp_.total_batches(), 1u);
    EXPECT_EQ(nmp_.total_ops(), 3u);
}

TEST_F(NmpBatchTest, FullRingRejectsFurtherPosts)
{
    for (std::uint32_t i = 0; i < kNmpRingSlots; i++) {
        ASSERT_TRUE(nmp_.spwr_post(1, op(128 + 64 * i, 0, i + 1)));
    }
    EXPECT_FALSE(nmp_.spwr_post(1, op(8192, 0, 99)));
    EXPECT_EQ(nmp_.doorbell(1), kNmpRingSlots);
    McasResult r;
    for (std::uint32_t i = 0; i < kNmpRingSlots; i++) {
        ASSERT_TRUE(nmp_.poll(1, &r));
        EXPECT_TRUE(r.success);
    }
    // Drained: the ring accepts again.
    EXPECT_TRUE(nmp_.spwr_post(1, op(8192, 0, 99)));
    EXPECT_EQ(nmp_.doorbell(1), 1u);
}

TEST_F(NmpBatchTest, WithinBatchDuplicateTargetIsDoomed)
{
    // Fig. 6(b) applies to a thread's own earlier slot too: one in-flight
    // operand per target pod-wide.
    ASSERT_TRUE(nmp_.spwr_post(1, op(256, 0, 1)));
    ASSERT_TRUE(nmp_.spwr_post(1, op(256, 0, 2)));
    EXPECT_EQ(nmp_.doorbell(1), 2u);
    McasResult first;
    McasResult second;
    ASSERT_TRUE(nmp_.poll(1, &first));
    ASSERT_TRUE(nmp_.poll(1, &second));
    EXPECT_TRUE(first.success);
    EXPECT_TRUE(second.conflict);
    EXPECT_EQ(word(256), 1u);
    EXPECT_EQ(nmp_.total_conflicts(), 1u);
}

TEST_F(NmpBatchTest, CompetingBatchesDoomTheLaterArrival)
{
    // T1 posts to 256 first; T2's post to the same target arrives while
    // T1's operand is staged and is doomed regardless of doorbell order.
    ASSERT_TRUE(nmp_.spwr_post(1, op(256, 0, 7)));
    ASSERT_TRUE(nmp_.spwr_post(2, op(256, 0, 8)));
    EXPECT_EQ(nmp_.doorbell(2), 1u);
    McasResult r2;
    ASSERT_TRUE(nmp_.poll(2, &r2));
    EXPECT_TRUE(r2.conflict);
    EXPECT_EQ(nmp_.doorbell(1), 1u);
    McasResult r1;
    ASSERT_TRUE(nmp_.poll(1, &r1));
    EXPECT_TRUE(r1.success);
    EXPECT_EQ(word(256), 7u);
}

TEST_F(NmpBatchTest, PartialBatchConflictOnlyHitsTheOverlappingTarget)
{
    ASSERT_TRUE(nmp_.spwr_post(1, op(256, 0, 1)));
    // T2's ring: one operand collides with T1's staged operand, the other
    // two are independent and must execute normally.
    ASSERT_TRUE(nmp_.spwr_post(2, op(512, 0, 2)));
    ASSERT_TRUE(nmp_.spwr_post(2, op(256, 0, 3)));
    ASSERT_TRUE(nmp_.spwr_post(2, op(768, 0, 4)));
    EXPECT_EQ(nmp_.doorbell(2), 3u);
    McasResult r;
    ASSERT_TRUE(nmp_.poll(2, &r));
    EXPECT_TRUE(r.success); // 512
    ASSERT_TRUE(nmp_.poll(2, &r));
    EXPECT_TRUE(r.conflict); // 256: doomed by T1's staged operand
    ASSERT_TRUE(nmp_.poll(2, &r));
    EXPECT_TRUE(r.success); // 768
    EXPECT_TRUE(nmp_.sprd(1).success);
    EXPECT_EQ(word(256), 1u);
    EXPECT_EQ(word(512), 2u);
    EXPECT_EQ(word(768), 4u);
}

TEST_F(NmpBatchTest, ConflictWindowClosesAtExecutionNotAtPoll)
{
    // Once the engine has executed an operand its CAS is done; an
    // executed-but-unpolled slot must not doom later arrivals.
    ASSERT_TRUE(nmp_.spwr_post(1, op(256, 0, 1)));
    EXPECT_EQ(nmp_.doorbell(1), 1u);
    ASSERT_TRUE(nmp_.spwr_post(2, op(256, 1, 2)));
    EXPECT_EQ(nmp_.doorbell(2), 1u);
    McasResult r2;
    ASSERT_TRUE(nmp_.poll(2, &r2));
    EXPECT_TRUE(r2.success);
    EXPECT_EQ(word(256), 2u);
    McasResult r1;
    ASSERT_TRUE(nmp_.poll(1, &r1));
    EXPECT_TRUE(r1.success);
}

TEST_F(NmpBatchTest, RingWrapsAroundAcrossManyBatches)
{
    // 5 rounds of 3 push head past kNmpRingSlots several times.
    std::uint64_t expect = 0;
    for (std::uint32_t round = 0; round < 5; round++) {
        for (std::uint32_t j = 0; j < 3; j++) {
            ASSERT_TRUE(nmp_.spwr_post(1, op(1024, expect, expect + 1)));
            EXPECT_EQ(nmp_.doorbell(1), 1u);
            McasResult r;
            ASSERT_TRUE(nmp_.poll(1, &r));
            ASSERT_TRUE(r.success);
            expect++;
        }
        // And one multi-operand batch per round on distinct targets.
        ASSERT_TRUE(nmp_.spwr_post(1, op(2048, round, round + 1)));
        ASSERT_TRUE(nmp_.spwr_post(1, op(4096, round, round + 1)));
        EXPECT_EQ(nmp_.doorbell(1), 2u);
        McasResult r;
        ASSERT_TRUE(nmp_.poll(1, &r));
        ASSERT_TRUE(nmp_.poll(1, &r));
    }
    EXPECT_EQ(word(1024), 15u);
    EXPECT_EQ(word(2048), 5u);
    EXPECT_EQ(word(4096), 5u);
}

TEST_F(NmpBatchTest, SnapshotShowsPostedThenExecutedThenDrains)
{
    ASSERT_TRUE(nmp_.spwr_post(3, op(128, 0, 1)));
    ASSERT_TRUE(nmp_.spwr_post(3, op(192, 0, 2)));
    NmpSlotView views[kNmpRingSlots];
    ASSERT_EQ(nmp_.ring_snapshot(3, views, kNmpRingSlots), 2u);
    EXPECT_EQ(views[0].state, NmpSlotState::Posted);
    EXPECT_EQ(views[1].state, NmpSlotState::Posted);
    EXPECT_EQ(views[0].op.target, 128u);
    EXPECT_EQ(views[1].op.target, 192u);
    nmp_.doorbell(3);
    ASSERT_EQ(nmp_.ring_snapshot(3, views, kNmpRingSlots), 2u);
    EXPECT_EQ(views[0].state, NmpSlotState::Executed);
    EXPECT_TRUE(views[0].result.success);
    McasResult r;
    ASSERT_TRUE(nmp_.poll(3, &r));
    ASSERT_EQ(nmp_.ring_snapshot(3, views, kNmpRingSlots), 1u);
    EXPECT_EQ(views[0].op.target, 192u);
}

TEST_F(NmpBatchTest, ResetRingDiscardsStagedOperandsAndStopsDooming)
{
    // A crashed thread's staged operand dooms competitors until recovery
    // releases the ring.
    ASSERT_TRUE(nmp_.spwr_post(1, op(256, 0, 1)));
    nmp_.reset_ring(1);
    EXPECT_EQ(nmp_.ring_occupancy(1), 0u);
    // A fresh post by another thread no longer conflicts.
    ASSERT_TRUE(nmp_.spwr_post(2, op(256, 0, 2)));
    EXPECT_EQ(nmp_.doorbell(2), 1u);
    McasResult r;
    ASSERT_TRUE(nmp_.poll(2, &r));
    EXPECT_TRUE(r.success);
    EXPECT_EQ(word(256), 2u);
    // The discarded operand never executed.
    EXPECT_FALSE(nmp_.poll(1, &r));
}

TEST_F(NmpBatchTest, ConcurrentBatchesLinearize)
{
    // 4 threads batch increments over striped words through spwr_batch,
    // retrying failures; every successful increment must be reflected.
    constexpr int kThreads = 4;
    constexpr int kIncrements = 300;
    constexpr std::uint32_t kStripes = 16;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([this, t] {
            auto tid = static_cast<cxl::ThreadId>(t + 1);
            int done = 0;
            std::uint32_t base = static_cast<std::uint32_t>(t) * 5;
            while (done < kIncrements) {
                McasOperand ops[kNmpRingSlots];
                auto want = static_cast<std::uint32_t>(
                    std::min<int>(kNmpRingSlots, kIncrements - done));
                for (std::uint32_t j = 0; j < want; j++) {
                    cxl::HeapOffset target =
                        8192 + ((base + j) % kStripes) * 64;
                    std::uint64_t cur = word(target);
                    ops[j] = op(target, cur, cur + 1);
                }
                std::uint32_t accepted = nmp_.spwr_batch(tid, ops, want);
                for (std::uint32_t k = 0; k < accepted; k++) {
                    McasResult r;
                    if (!nmp_.poll(tid, &r)) {
                        break; // impossible; avoid hanging on a bug
                    }
                    if (r.success) {
                        done++;
                    }
                }
                base += 3; // rotate the window
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < kStripes; s++) {
        total += word(8192 + s * 64);
    }
    EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIncrements);
}

// ------------------------- allocator batched drain ------------------------

using cxltest::Rig;
using cxltest::RigOptions;
using pod::ThreadCrashed;

RigOptions
nohwcc_opts()
{
    RigOptions opt;
    opt.mode = cxl::CoherenceMode::NoHwcc;
    return opt;
}

TEST(DeallocateBatch, DistinctSlabsShareOneDoorbell)
{
    Rig rig(nohwcc_opts());
    auto t1 = rig.thread();
    auto t2 = rig.thread();
    // Eight distinct size classes land in eight distinct slabs, all owned
    // by t1 — so t2's drain is eight remote frees of distinct counters.
    std::vector<cxl::HeapOffset> offs;
    for (std::uint64_t size : {8, 16, 32, 64, 128, 256, 512, 1024}) {
        cxl::HeapOffset p = rig.alloc.allocate(*t1, size);
        ASSERT_NE(p, 0u);
        offs.push_back(p);
    }
    const auto& before = t2->mem().counters();
    std::uint64_t batches0 = before.mcas_batches;
    rig.alloc.deallocate_batch(*t2, offs.data(),
                               static_cast<std::uint32_t>(offs.size()));
    const auto& after = t2->mem().counters();
    // One doorbell carried all eight decrements.
    EXPECT_EQ(after.mcas_batches - batches0, 1u);
    EXPECT_EQ(after.mcas_batch_ops, 8u);
    EXPECT_EQ(after.mcas_conflicts, 0u);
    rig.alloc.check_invariants(t1->mem());
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(DeallocateBatch, SameSlabDuplicatesFallBackWithoutSelfConflict)
{
    Rig rig(nohwcc_opts());
    auto t1 = rig.thread();
    auto t2 = rig.thread();
    std::vector<cxl::HeapOffset> offs;
    for (int i = 0; i < 12; i++) {
        cxl::HeapOffset p = rig.alloc.allocate(*t1, 64);
        ASSERT_NE(p, 0u);
        offs.push_back(p);
    }
    // All twelve live in one slab: the drain must serialize them (one per
    // round) rather than doom its own duplicates.
    rig.alloc.deallocate_batch(*t2, offs.data(),
                               static_cast<std::uint32_t>(offs.size()));
    EXPECT_EQ(t2->mem().counters().mcas_conflicts, 0u);
    rig.alloc.check_invariants(t1->mem());
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(DeallocateBatch, MixedLocalRemoteAndHugeMatchSerialSemantics)
{
    Rig rig(nohwcc_opts());
    auto t1 = rig.thread();
    auto t2 = rig.thread();
    std::vector<cxl::HeapOffset> offs;
    offs.push_back(rig.alloc.allocate(*t2, 64));     // local to t2
    offs.push_back(rig.alloc.allocate(*t1, 64));     // remote
    offs.push_back(rig.alloc.allocate(*t1, 4096));   // remote, large heap
    offs.push_back(rig.alloc.allocate(*t2, 1 << 20)); // huge
    for (cxl::HeapOffset p : offs) {
        ASSERT_NE(p, 0u);
    }
    rig.alloc.deallocate_batch(*t2, offs.data(),
                               static_cast<std::uint32_t>(offs.size()));
    rig.alloc.check_invariants(t1->mem());
    rig.alloc.check_local_invariants(t2->mem());
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

/// Fills one 1 KiB-class slab from a victim thread, remote-frees most
/// blocks in batches, crashes the freeing thread at @p point inside a
/// half-submitted batch, recovers via adoption, completes the remaining
/// frees, and proves exactly-once decrement semantics by stealing the slab
/// at counter zero: the final allocations must reuse the stolen slab (heap
/// length unchanged). A lost decrement leaves the counter above zero (no
/// steal, length grows); a doubled one underflow-asserts.
void
batch_crash_roundtrip(int point)
{
    Rig rig(nohwcc_opts());
    auto t1 = rig.thread();
    auto t2 = rig.thread();
    constexpr int kBlocks = 32; // 32 KiB slab / 1 KiB class
    std::vector<cxl::HeapOffset> offs;
    for (int i = 0; i < kBlocks; i++) {
        cxl::HeapOffset p = rig.alloc.allocate(*t1, 1024);
        ASSERT_NE(p, 0u);
        offs.push_back(p);
    }
    std::uint32_t len_before = rig.alloc.stats(t1->mem()).small.length;

    // Free 24 of 32 remotely, leaving the counter at 8.
    rig.alloc.deallocate_batch(*t2, offs.data(), 24);

    // Overwrite t2's record with a completed serial op (alloc + local
    // free) so a kMidBatchStage crash finds a NON-batch record: recovery
    // must then discard the staged-but-unlogged operand rather than redo
    // it. (With a stale FreeRemoteBatch record, redoing it would also be
    // correct — staged operands apply exactly once either way — but the
    // discard path is the one this test pins down.)
    cxl::HeapOffset scratch = rig.alloc.allocate(*t2, 64);
    ASSERT_NE(scratch, 0u);
    rig.alloc.deallocate(*t2, scratch);
    len_before = rig.alloc.stats(t1->mem()).small.length;

    // Crash inside the next batch (7 decrements; all target one slab, so
    // the first round stages exactly offs[24]).
    t2->arm_crash(point, 1);
    bool crashed = false;
    try {
        rig.alloc.deallocate_batch(*t2, offs.data() + 24, 7);
    } catch (const ThreadCrashed&) {
        crashed = true;
    }
    ASSERT_TRUE(crashed);
    cxl::ThreadId tid = t2->tid();
    rig.pod.mark_crashed(std::move(t2));
    t2 = rig.pod.adopt_thread(rig.process, tid);
    rig.alloc.recover(*t2);
    rig.alloc.check_invariants(t2->mem());
    rig.alloc.check_local_invariants(t2->mem());

    // kMidBatchStage: no record was logged, so recovery discarded the
    // staged operand — all 7 frees remain to be done. At the doorbell /
    // drain points the record was logged and recovery guarantees offs[24]'s
    // decrement landed exactly once — only the other 6 remain.
    if (point == cxlalloc::crashpoint::kMidBatchStage) {
        rig.alloc.deallocate_batch(*t2, offs.data() + 24, 7);
    } else {
        rig.alloc.deallocate_batch(*t2, offs.data() + 25, 6);
    }
    // Counter is now 1; the last free takes it to zero and t2 steals the
    // fully-remotely-freed slab (paper §3.2.1).
    rig.alloc.deallocate(*t2, offs[31]);
    rig.alloc.check_invariants(t2->mem());

    // The stolen slab serves t2's next allocations without growing the
    // heap: exactly-once decrements proven end to end.
    for (int i = 0; i < kBlocks; i++) {
        ASSERT_NE(rig.alloc.allocate(*t2, 1024), 0u);
    }
    EXPECT_EQ(rig.alloc.stats(t2->mem()).small.length, len_before);
    rig.alloc.check_invariants(t2->mem());
    rig.alloc.check_local_invariants(t2->mem());
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(DeallocateBatchCrash, MidBatchStage)
{
    batch_crash_roundtrip(cxlalloc::crashpoint::kMidBatchStage);
}

TEST(DeallocateBatchCrash, MidBatchDoorbell)
{
    batch_crash_roundtrip(cxlalloc::crashpoint::kMidBatchDoorbell);
}

TEST(DeallocateBatchCrash, MidBatchDrain)
{
    batch_crash_roundtrip(cxlalloc::crashpoint::kMidBatchDrain);
}

TEST(DeallocateBatchCrash, SweepCountdownsThroughMixedBatches)
{
    // §5.1-style sweep: mixed batched frees with the crash armed at each
    // batch point and several countdown depths; every interrupted state
    // must recover to a fully usable heap.
    for (int point : {cxlalloc::crashpoint::kMidBatchStage,
                      cxlalloc::crashpoint::kMidBatchDoorbell,
                      cxlalloc::crashpoint::kMidBatchDrain}) {
        for (std::uint32_t countdown = 1; countdown <= 5; countdown++) {
            Rig rig(nohwcc_opts());
            auto t1 = rig.thread();
            auto t2 = rig.thread();
            std::vector<cxl::HeapOffset> offs;
            for (int round = 0; round < 3; round++) {
                for (std::uint64_t size : {8, 16, 32, 64, 128, 256, 512}) {
                    cxl::HeapOffset p = rig.alloc.allocate(*t1, size);
                    ASSERT_NE(p, 0u);
                    offs.push_back(p);
                }
            }
            t2->arm_crash(point, countdown);
            bool crashed = false;
            try {
                rig.alloc.deallocate_batch(
                    *t2, offs.data(),
                    static_cast<std::uint32_t>(offs.size()));
                t2->disarm_crash();
            } catch (const ThreadCrashed&) {
                crashed = true;
                cxl::ThreadId tid = t2->tid();
                rig.pod.mark_crashed(std::move(t2));
                t2 = rig.pod.adopt_thread(rig.process, tid);
                rig.alloc.recover(*t2);
            }
            rig.alloc.check_invariants(t2->mem());
            rig.alloc.check_local_invariants(t2->mem());
            // The heap stays fully usable either way.
            for (int i = 0; i < 30; i++) {
                cxl::HeapOffset p = rig.alloc.allocate(*t2, 64);
                ASSERT_NE(p, 0u);
                rig.alloc.deallocate(*t2, p);
            }
            rig.alloc.check_invariants(t2->mem());
            (void)crashed;
            rig.pod.release_thread(std::move(t1));
            rig.pod.release_thread(std::move(t2));
        }
    }
}

} // namespace
