#include "cxl/nmp.h"

#include <gtest/gtest.h>
#include <thread>
#include <vector>

namespace {

using cxl::CoherenceMode;
using cxl::Device;
using cxl::DeviceConfig;
using cxl::McasResult;
using cxl::Nmp;

class NmpTest : public ::testing::Test {
  protected:
    NmpTest()
        : dev_(DeviceConfig{.size = 1 << 20,
                            .mode = CoherenceMode::NoHwcc,
                            .sync_region_size = 64 << 10}),
          nmp_(&dev_)
    {
    }

    std::uint64_t
    word(std::uint64_t offset)
    {
        // Device-biased memory is uncachable; model the direct read with an
        // atomic load so the multithreaded test below is race-free.
        return std::atomic_ref<std::uint64_t>(
                   *reinterpret_cast<std::uint64_t*>(dev_.raw(offset)))
            .load(std::memory_order_acquire);
    }

    Device dev_;
    Nmp nmp_;
};

TEST_F(NmpTest, SuccessfulSwapWritesMemory)
{
    McasResult r = nmp_.mcas(1, 128, 0, 42);
    EXPECT_TRUE(r.success);
    EXPECT_FALSE(r.conflict);
    EXPECT_EQ(r.previous, 0u);
    EXPECT_EQ(word(128), 42u);
}

TEST_F(NmpTest, MismatchFailsAndReturnsPrevious)
{
    nmp_.mcas(1, 128, 0, 42);
    McasResult r = nmp_.mcas(2, 128, 0, 99);
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(r.conflict);
    EXPECT_EQ(r.previous, 42u);
    EXPECT_EQ(word(128), 42u);
}

TEST_F(NmpTest, CompetingInFlightOpOnSameAddressFails)
{
    // Fig. 6(b): T1 posts spwr first; T2's spwr to the same target while
    // T1's pair is in flight dooms T2's operation.
    nmp_.spwr(1, 256, 0, 1);
    nmp_.spwr(2, 256, 0, 2);
    McasResult r2 = nmp_.sprd(2);
    EXPECT_TRUE(r2.conflict);
    EXPECT_FALSE(r2.success);
    McasResult r1 = nmp_.sprd(1);
    EXPECT_TRUE(r1.success);
    EXPECT_EQ(word(256), 1u);
    EXPECT_EQ(nmp_.total_conflicts(), 1u);
}

TEST_F(NmpTest, DifferentAddressesDoNotConflict)
{
    nmp_.spwr(1, 256, 0, 1);
    nmp_.spwr(2, 512, 0, 2);
    EXPECT_TRUE(nmp_.sprd(2).success);
    EXPECT_TRUE(nmp_.sprd(1).success);
}

TEST_F(NmpTest, ConflictDoomsTheLaterArrival)
{
    // The first-in-flight op completes even if the competitor's sprd is
    // issued first.
    nmp_.spwr(1, 256, 0, 7);
    nmp_.spwr(2, 256, 0, 8);
    McasResult r1 = nmp_.sprd(1);
    EXPECT_TRUE(r1.success);
    McasResult r2 = nmp_.sprd(2);
    EXPECT_TRUE(r2.conflict);
    EXPECT_EQ(word(256), 7u);
}

TEST_F(NmpTest, SerializedRetriesEventuallySucceed)
{
    // Software retries around conflicts: increment a counter from many
    // threads using only mCAS.
    constexpr int kThreads = 4;
    constexpr int kIncrements = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([this, t] {
            auto tid = static_cast<cxl::ThreadId>(t + 1);
            for (int i = 0; i < kIncrements; i++) {
                while (true) {
                    std::uint64_t cur = word(1024);
                    McasResult r = nmp_.mcas(tid, 1024, cur, cur + 1);
                    if (r.success) {
                        break;
                    }
                }
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_EQ(word(1024), kThreads * kIncrements);
}

TEST_F(NmpTest, OpsAreCounted)
{
    nmp_.mcas(1, 128, 0, 1);
    nmp_.mcas(1, 128, 1, 2);
    EXPECT_EQ(nmp_.total_ops(), 2u);
}

// ---------------------------------------------------------------------------
// McasBackoff: bounded exponential waits with deterministic jitter

TEST(McasBackoff, NominalDoublesToTheCapAndJitterStaysBounded)
{
    cxl::McasBackoff backoff(/*seed=*/1);
    std::uint64_t nominal = cxl::McasBackoff::kBaseNs;
    for (int i = 0; i < 12; i++) {
        std::uint64_t ns = backoff.next_ns();
        // Each wait is nominal + jitter, jitter in [0, nominal/2).
        EXPECT_GE(ns, nominal);
        EXPECT_LT(ns, nominal + nominal / 2);
        EXPECT_LE(ns, cxl::McasBackoff::kMaxNs * 3 / 2);
        if (nominal < cxl::McasBackoff::kMaxNs) {
            nominal *= 2;
        }
    }
    // After enough calls the nominal is pinned at the cap.
    EXPECT_EQ(nominal, cxl::McasBackoff::kMaxNs);
}

TEST(McasBackoff, SameSeedSameWaitsDifferentSeedsDecorrelate)
{
    cxl::McasBackoff a(42), b(42), c(43);
    bool diverged = false;
    for (int i = 0; i < 16; i++) {
        std::uint64_t wa = a.next_ns();
        EXPECT_EQ(wa, b.next_ns()); // replay determinism
        diverged |= wa != c.next_ns();
    }
    // Two threads seeded differently must not back off in lock-step —
    // that re-collision is exactly what the jitter exists to break.
    EXPECT_TRUE(diverged);
}

TEST(McasBackoff, ResetRestoresTheScaleNotTheJitterSequence)
{
    cxl::McasBackoff backoff(7);
    std::uint64_t first = backoff.next_ns();
    for (int i = 0; i < 5; i++) {
        backoff.next_ns();
    }
    backoff.reset();
    std::uint64_t after_reset = backoff.next_ns();
    // Back to the base scale...
    EXPECT_GE(after_reset, cxl::McasBackoff::kBaseNs);
    EXPECT_LT(after_reset,
              cxl::McasBackoff::kBaseNs + cxl::McasBackoff::kBaseNs / 2);
    // ...but the jitter stream kept advancing, so an exact replay of the
    // first wait would be a (vanishingly unlikely) coincidence we don't
    // assert either way; what we do assert is the zero-seed default is
    // still well-formed (rng never zero).
    cxl::McasBackoff zero;
    EXPECT_GE(zero.next_ns(), cxl::McasBackoff::kBaseNs);
    (void)first;
}

// ---------------------------------------------------------------------------
// Engine fault injection (pod fault layer; see pod/faults.h)

TEST_F(NmpTest, InjectedStallSwallowsWorkingDoorbellsOnly)
{
    nmp_.inject_stall(2);
    EXPECT_EQ(nmp_.stall_remaining(), 2u);

    // Empty ring: the doorbell is a no-op and must not consume budget.
    EXPECT_EQ(nmp_.doorbell(1), 0u);
    EXPECT_EQ(nmp_.stall_remaining(), 2u);
    EXPECT_EQ(nmp_.total_stalled_doorbells(), 0u);

    ASSERT_TRUE(nmp_.spwr_post(
        1, cxl::McasOperand{.target = 2048, .expected = 0, .swap = 5}));
    EXPECT_EQ(nmp_.doorbell(1), 0u);
    // The operand is still Posted — how a session distinguishes "stalled"
    // from "nothing to execute" before climbing its retry ladder.
    EXPECT_EQ(nmp_.posted_occupancy(1), 1u);
    EXPECT_EQ(nmp_.stall_remaining(), 1u);
    EXPECT_EQ(nmp_.doorbell(1), 0u);
    EXPECT_EQ(nmp_.stall_remaining(), 0u);
    EXPECT_EQ(nmp_.total_stalled_doorbells(), 2u);

    EXPECT_EQ(nmp_.doorbell(1), 1u);
    McasResult r;
    ASSERT_TRUE(nmp_.poll(1, &r));
    EXPECT_TRUE(r.success);
    EXPECT_EQ(word(2048), 5u);
    EXPECT_EQ(nmp_.posted_occupancy(1), 0u);
}

TEST_F(NmpTest, InjectedStallIsAdditive)
{
    nmp_.inject_stall(1);
    nmp_.inject_stall(2);
    EXPECT_EQ(nmp_.stall_remaining(), 3u);
}

TEST_F(NmpTest, InjectedDelayIsChargedPerAnsweredDoorbell)
{
    EXPECT_EQ(nmp_.take_injected_delay_ns(), 0u);
    nmp_.inject_delay(900, 2);
    EXPECT_EQ(nmp_.take_injected_delay_ns(), 900u);
    EXPECT_EQ(nmp_.take_injected_delay_ns(), 900u);
    EXPECT_EQ(nmp_.take_injected_delay_ns(), 0u);
}

TEST_F(NmpTest, StalledOperandSurvivesForRecoveryInspection)
{
    // A stall strands staged operands in device memory; ring_snapshot must
    // still see them (recovery reads the ring of a thread that gave up),
    // and reset_ring releases them without executing.
    nmp_.inject_stall(1);
    ASSERT_TRUE(nmp_.spwr_post(
        2, cxl::McasOperand{.target = 4096, .expected = 0, .swap = 9}));
    EXPECT_EQ(nmp_.doorbell(2), 0u);

    cxl::NmpSlotView view[cxl::kNmpRingSlots];
    ASSERT_EQ(nmp_.ring_snapshot(2, view, cxl::kNmpRingSlots), 1u);
    EXPECT_EQ(view[0].state, cxl::NmpSlotState::Posted);
    EXPECT_EQ(view[0].op.target, 4096u);
    EXPECT_EQ(view[0].op.swap, 9u);

    nmp_.reset_ring(2);
    EXPECT_EQ(nmp_.ring_occupancy(2), 0u);
    EXPECT_EQ(word(4096), 0u); // never executed
}

} // namespace
