#include "cxl/nmp.h"

#include <gtest/gtest.h>
#include <thread>
#include <vector>

namespace {

using cxl::CoherenceMode;
using cxl::Device;
using cxl::DeviceConfig;
using cxl::McasResult;
using cxl::Nmp;

class NmpTest : public ::testing::Test {
  protected:
    NmpTest()
        : dev_(DeviceConfig{.size = 1 << 20,
                            .mode = CoherenceMode::NoHwcc,
                            .sync_region_size = 64 << 10}),
          nmp_(&dev_)
    {
    }

    std::uint64_t
    word(std::uint64_t offset)
    {
        // Device-biased memory is uncachable; model the direct read with an
        // atomic load so the multithreaded test below is race-free.
        return std::atomic_ref<std::uint64_t>(
                   *reinterpret_cast<std::uint64_t*>(dev_.raw(offset)))
            .load(std::memory_order_acquire);
    }

    Device dev_;
    Nmp nmp_;
};

TEST_F(NmpTest, SuccessfulSwapWritesMemory)
{
    McasResult r = nmp_.mcas(1, 128, 0, 42);
    EXPECT_TRUE(r.success);
    EXPECT_FALSE(r.conflict);
    EXPECT_EQ(r.previous, 0u);
    EXPECT_EQ(word(128), 42u);
}

TEST_F(NmpTest, MismatchFailsAndReturnsPrevious)
{
    nmp_.mcas(1, 128, 0, 42);
    McasResult r = nmp_.mcas(2, 128, 0, 99);
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(r.conflict);
    EXPECT_EQ(r.previous, 42u);
    EXPECT_EQ(word(128), 42u);
}

TEST_F(NmpTest, CompetingInFlightOpOnSameAddressFails)
{
    // Fig. 6(b): T1 posts spwr first; T2's spwr to the same target while
    // T1's pair is in flight dooms T2's operation.
    nmp_.spwr(1, 256, 0, 1);
    nmp_.spwr(2, 256, 0, 2);
    McasResult r2 = nmp_.sprd(2);
    EXPECT_TRUE(r2.conflict);
    EXPECT_FALSE(r2.success);
    McasResult r1 = nmp_.sprd(1);
    EXPECT_TRUE(r1.success);
    EXPECT_EQ(word(256), 1u);
    EXPECT_EQ(nmp_.total_conflicts(), 1u);
}

TEST_F(NmpTest, DifferentAddressesDoNotConflict)
{
    nmp_.spwr(1, 256, 0, 1);
    nmp_.spwr(2, 512, 0, 2);
    EXPECT_TRUE(nmp_.sprd(2).success);
    EXPECT_TRUE(nmp_.sprd(1).success);
}

TEST_F(NmpTest, ConflictDoomsTheLaterArrival)
{
    // The first-in-flight op completes even if the competitor's sprd is
    // issued first.
    nmp_.spwr(1, 256, 0, 7);
    nmp_.spwr(2, 256, 0, 8);
    McasResult r1 = nmp_.sprd(1);
    EXPECT_TRUE(r1.success);
    McasResult r2 = nmp_.sprd(2);
    EXPECT_TRUE(r2.conflict);
    EXPECT_EQ(word(256), 7u);
}

TEST_F(NmpTest, SerializedRetriesEventuallySucceed)
{
    // Software retries around conflicts: increment a counter from many
    // threads using only mCAS.
    constexpr int kThreads = 4;
    constexpr int kIncrements = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([this, t] {
            auto tid = static_cast<cxl::ThreadId>(t + 1);
            for (int i = 0; i < kIncrements; i++) {
                while (true) {
                    std::uint64_t cur = word(1024);
                    McasResult r = nmp_.mcas(tid, 1024, cur, cur + 1);
                    if (r.success) {
                        break;
                    }
                }
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_EQ(word(1024), kThreads * kIncrements);
}

TEST_F(NmpTest, OpsAreCounted)
{
    nmp_.mcas(1, 128, 0, 1);
    nmp_.mcas(1, 128, 1, 2);
    EXPECT_EQ(nmp_.total_ops(), 2u);
}

} // namespace
