#include "cxl/mem_ops.h"

#include <gtest/gtest.h>
#include <thread>

namespace {

using cxl::CoherenceMode;
using cxl::Device;
using cxl::DeviceConfig;
using cxl::LatencyModel;
using cxl::MemSession;
using cxl::Nmp;

struct Rig {
    explicit Rig(CoherenceMode mode, bool simulate_cache = false)
        : dev(DeviceConfig{.size = 1 << 20,
                           .mode = mode,
                           .sync_region_size = 64 << 10,
                           .simulate_cache = simulate_cache}),
          nmp(&dev)
    {
    }

    MemSession
    session(cxl::ThreadId tid)
    {
        return MemSession(&dev, &nmp, tid);
    }

    Device dev;
    Nmp nmp;
};

TEST(MemSession, LoadStoreRoundTrip)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    s.store<std::uint32_t>(100000, 0xabcd);
    EXPECT_EQ(s.load<std::uint32_t>(100000), 0xabcdu);
    s.store<std::uint16_t>(100004, 7);
    EXPECT_EQ(s.load<std::uint16_t>(100004), 7u);
}

TEST(MemSession, CasDispatchesToHardwareCasUnderHwcc)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    std::uint64_t expected = 0;
    EXPECT_TRUE(s.cas64(128, expected, 5));
    EXPECT_EQ(s.counters().cas_ops, 1u);
    EXPECT_EQ(s.counters().mcas_ops, 0u);
    EXPECT_EQ(s.atomic_load64(128), 5u);
}

TEST(MemSession, CasFailureReloadsExpected)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    std::uint64_t expected = 0;
    ASSERT_TRUE(s.cas64(128, expected, 5));
    expected = 0; // stale
    EXPECT_FALSE(s.cas64(128, expected, 9));
    EXPECT_EQ(expected, 5u);
    EXPECT_EQ(s.counters().cas_failures, 1u);
}

TEST(MemSession, CasDispatchesToMcasUnderNoHwcc)
{
    Rig rig(CoherenceMode::NoHwcc);
    MemSession s = rig.session(1);
    std::uint64_t expected = 0;
    EXPECT_TRUE(s.cas64(128, expected, 5));
    EXPECT_EQ(s.counters().mcas_ops, 1u);
    EXPECT_EQ(s.counters().cas_ops, 0u);
    EXPECT_EQ(rig.nmp.total_ops(), 1u);
}

TEST(MemSession, CachedSwccAccessGoesThroughThreadCache)
{
    Rig rig(CoherenceMode::PartialHwcc, /*simulate_cache=*/true);
    MemSession writer = rig.session(1);
    MemSession reader = rig.session(2);
    std::uint64_t offset = 200000; // outside sync region -> SWcc

    writer.store<std::uint64_t>(offset, 11);
    EXPECT_EQ(reader.load<std::uint64_t>(offset), 0u)
        << "unflushed SWcc write must be invisible to other threads";

    writer.flush(offset, 8);
    writer.fence();
    EXPECT_EQ(reader.load<std::uint64_t>(offset), 0u)
        << "reader holds a stale copy until it flushes";
    reader.flush(offset, 8);
    EXPECT_EQ(reader.load<std::uint64_t>(offset), 11u);
}

TEST(MemSession, SyncRegionBypassesCacheSim)
{
    Rig rig(CoherenceMode::PartialHwcc, /*simulate_cache=*/true);
    MemSession writer = rig.session(1);
    MemSession reader = rig.session(2);
    writer.atomic_store64(128, 77);
    EXPECT_EQ(reader.atomic_load64(128), 77u)
        << "HWcc region is hardware-coherent: no flush required";
}

TEST(MemSession, DropCacheLosesUnflushedWrites)
{
    Rig rig(CoherenceMode::PartialHwcc, /*simulate_cache=*/true);
    MemSession s = rig.session(1);
    s.store<std::uint64_t>(200000, 42);
    s.drop_cache(); // crash
    MemSession s2 = rig.session(3);
    EXPECT_EQ(s2.load<std::uint64_t>(200000), 0u);
}

TEST(MemSession, LatencyModelAccruesSimTime)
{
    Rig rig(CoherenceMode::NoHwcc);
    MemSession s = rig.session(1);
    LatencyModel model = LatencyModel::cxl_mcas();
    s.set_latency_model(&model);
    std::uint64_t expected = 0;
    s.cas64(128, expected, 1);
    EXPECT_EQ(s.sim_ns(), model.mcas_ns);
    s.flush(200000, 64);
    EXPECT_EQ(s.sim_ns(), model.mcas_ns + model.flush_ns);
    s.fence();
    EXPECT_EQ(s.sim_ns(), model.mcas_ns + model.flush_ns + model.fence_ns);
}

TEST(MemSession, FlushSpanningLinesChargesPerLine)
{
    Rig rig(CoherenceMode::PartialHwcc);
    MemSession s = rig.session(1);
    LatencyModel model = LatencyModel::cxl_hwcc();
    s.set_latency_model(&model);
    s.flush(200000, 256); // 4 lines
    EXPECT_EQ(s.sim_ns(), 4 * model.flush_ns);
}

TEST(MemSession, BulkBytesRoundTrip)
{
    Rig rig(CoherenceMode::PartialHwcc, /*simulate_cache=*/true);
    MemSession s = rig.session(1);
    char msg[] = "hello cxl pod";
    s.write_bytes(300000, msg, sizeof msg);
    char out[sizeof msg] = {};
    s.read_bytes(300000, out, sizeof msg);
    EXPECT_STREQ(out, msg);
}

TEST(MemSession, ConcurrentCasIncrementsAreLinearizable)
{
    for (CoherenceMode mode :
         {CoherenceMode::PartialHwcc, CoherenceMode::NoHwcc}) {
        Rig rig(mode);
        constexpr int kThreads = 4;
        constexpr int kIncrements = 500;
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; t++) {
            threads.emplace_back([&rig, t] {
                MemSession s =
                    rig.session(static_cast<cxl::ThreadId>(t + 1));
                for (int i = 0; i < kIncrements; i++) {
                    std::uint64_t expected = s.atomic_load64(512);
                    while (!s.cas64(512, expected, expected + 1)) {
                    }
                }
            });
        }
        for (auto& th : threads) {
            th.join();
        }
        MemSession check = rig.session(kThreads + 1);
        EXPECT_EQ(check.atomic_load64(512), kThreads * kIncrements);
    }
}

} // namespace
