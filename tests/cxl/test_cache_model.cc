#include "cxl/cache_model.h"

#include <cstring>
#include <gtest/gtest.h>
#include <map>
#include <vector>

#include "common/random.h"

namespace {

using cxl::CoherenceMode;
using cxl::Device;
using cxl::DeviceConfig;
using cxl::ThreadCache;

class CacheModelTest : public ::testing::Test {
  protected:
    CacheModelTest()
        : dev_(DeviceConfig{.size = 1 << 20,
                            .mode = CoherenceMode::PartialHwcc,
                            .sync_region_size = 4096,
                            .simulate_cache = true})
    {
    }

    Device dev_;
};

TEST_F(CacheModelTest, WriteIsInvisibleUntilFlush)
{
    ThreadCache writer(&dev_);
    ThreadCache reader(&dev_);
    std::uint64_t offset = 8192;

    std::uint32_t value = 0xdeadbeef;
    writer.write(offset, &value, sizeof value);

    // The SWcc hazard the paper's protocol exists to handle: the reader
    // fetches from the device, which has not seen the write.
    std::uint32_t seen = 1;
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0u);

    writer.flush(offset, sizeof value);

    // The reader still holds its stale copy until it too flushes.
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0u);

    reader.flush(offset, sizeof seen);
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0xdeadbeefu);
}

TEST_F(CacheModelTest, WriterReadsOwnWrites)
{
    ThreadCache cache(&dev_);
    std::uint64_t v = 77;
    cache.write(5000, &v, sizeof v);
    std::uint64_t seen = 0;
    cache.read(5000, &seen, sizeof seen);
    EXPECT_EQ(seen, 77u);
}

TEST_F(CacheModelTest, CrossLineWriteSpansTwoLines)
{
    ThreadCache cache(&dev_);
    std::uint64_t offset = 8192 + 60; // straddles a 64 B boundary
    std::uint64_t v = 0x1122334455667788ULL;
    cache.write(offset, &v, sizeof v);
    EXPECT_EQ(cache.dirty_lines(), 2u);
    cache.flush(offset, sizeof v);
    EXPECT_EQ(cache.dirty_lines(), 0u);
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(offset), sizeof direct);
    EXPECT_EQ(direct, v);
}

TEST_F(CacheModelTest, InvalidateAllDropsDirtyData)
{
    // A crash loses unflushed writes: invalidate_all models the dying
    // thread's cache disappearing.
    ThreadCache cache(&dev_);
    std::uint64_t v = 99;
    cache.write(4096, &v, sizeof v);
    cache.invalidate_all();
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(4096), sizeof direct);
    EXPECT_EQ(direct, 0u);
}

TEST_F(CacheModelTest, FlushCleanLineJustInvalidates)
{
    ThreadCache cache(&dev_);
    std::uint64_t seen;
    cache.read(4096, &seen, sizeof seen); // fill, clean
    EXPECT_EQ(cache.resident_lines(), 1u);
    cache.flush(4096, 8);
    EXPECT_EQ(cache.resident_lines(), 0u);
}

TEST_F(CacheModelTest, StaleReadAfterRemoteWrite)
{
    // Reader caches a line; another thread updates the device (via its own
    // flush); reader keeps seeing the stale value until it flushes.
    ThreadCache reader(&dev_);
    ThreadCache writer(&dev_);
    std::uint64_t offset = 16384;

    std::uint64_t seen;
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0u);

    std::uint64_t v = 1234;
    writer.write(offset, &v, sizeof v);
    writer.flush(offset, sizeof v);

    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0u) << "reader must see its stale cached copy";

    reader.flush(offset, 8);
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 1234u);
}

/// First @p n line offsets (within @p limit) mapping to one cache set:
/// the deterministic conflict workload for eviction tests.
std::vector<std::uint64_t>
same_set_lines(std::size_t n, std::uint64_t limit)
{
    std::vector<std::uint64_t> lines;
    std::uint32_t set = ThreadCache::set_of(0);
    for (std::uint64_t off = 0; off < limit && lines.size() < n; off += 64) {
        if (ThreadCache::set_of(off) == set) {
            lines.push_back(off);
        }
    }
    return lines;
}

TEST_F(CacheModelTest, CapacityEvictionWritesDirtyVictimBack)
{
    // kWays+1 dirty lines in one set: the overflow write evicts the oldest
    // way and its data reaches the device early — before any flush. This is
    // the deterministic staleness source the set-associative store adds; it
    // is safe because early write-back is a prefix of the eventual flush.
    ThreadCache writer(&dev_);
    ThreadCache other(&dev_);
    auto lines = same_set_lines(ThreadCache::kWays + 1, dev_.size());
    ASSERT_EQ(lines.size(), ThreadCache::kWays + 1);

    for (std::size_t i = 0; i < lines.size(); i++) {
        std::uint64_t v = 1000 + i;
        writer.write(lines[i], &v, sizeof v);
    }
    EXPECT_EQ(writer.evictions(), 1u);
    EXPECT_EQ(writer.resident_lines(), ThreadCache::kWays);

    // The victim (the first line written) was written back: another cache
    // reads the value although the writer never flushed it.
    std::uint64_t seen = 0;
    other.read(lines[0], &seen, sizeof seen);
    EXPECT_EQ(seen, 1000u);

    // Non-evicted lines stay invisible until flushed, as ever.
    other.read(lines[1], &seen, sizeof seen);
    EXPECT_EQ(seen, 0u);
}

TEST_F(CacheModelTest, CapacityEvictionDropsCleanStaleLine)
{
    // A clean line evicted by conflict pressure is just dropped; the next
    // read refetches from the device and observes a remote write the
    // stale copy was hiding — eviction can only make reads fresher.
    ThreadCache reader(&dev_);
    ThreadCache writer(&dev_);
    auto lines = same_set_lines(ThreadCache::kWays + 1, dev_.size());
    ASSERT_EQ(lines.size(), ThreadCache::kWays + 1);

    std::uint64_t seen;
    reader.read(lines[0], &seen, sizeof seen); // clean, stale-to-be
    EXPECT_EQ(seen, 0u);

    std::uint64_t v = 4321;
    writer.write(lines[0], &v, sizeof v);
    writer.flush(lines[0], sizeof v);

    reader.read(lines[0], &seen, sizeof seen);
    EXPECT_EQ(seen, 0u) << "still cached, still stale";

    for (std::size_t i = 1; i < lines.size(); i++) {
        reader.read(lines[i], &seen, sizeof seen); // force the eviction
    }
    EXPECT_EQ(reader.evictions(), 1u);

    reader.read(lines[0], &seen, sizeof seen);
    EXPECT_EQ(seen, 4321u) << "refetched after clean eviction, no flush";
}

TEST_F(CacheModelTest, MruLineSurvivesConflictPressure)
{
    // The most-recently-touched way is exempt from victim selection, so a
    // hot dirty line survives a same-set scan of any length.
    ThreadCache cache(&dev_);
    auto lines = same_set_lines(3 * ThreadCache::kWays, dev_.size());
    ASSERT_EQ(lines.size(), 3 * ThreadCache::kWays);

    std::uint64_t hot = 7777;
    std::uint64_t seen;
    for (std::size_t i = 1; i < lines.size(); i++) {
        cache.write(lines[0], &hot, sizeof hot); // re-touch: stays MRU
        cache.read(lines[i], &seen, sizeof seen);
    }
    // Never written back: the device still reads zero.
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(lines[0]), sizeof direct);
    EXPECT_EQ(direct, 0u);
    cache.read(lines[0], &seen, sizeof seen);
    EXPECT_EQ(seen, 7777u);
}

TEST_F(CacheModelTest, RandomTraceMatchesFlatReferenceModel)
{
    // Equivalence replay: a single-writer trace of read/write/flush over a
    // working set far beyond capacity (forcing steady eviction traffic)
    // must behave exactly like a flat byte overlay — eviction timing is
    // invisible to the owning thread, and writeback_all leaves the device
    // equal to the overlay.
    ThreadCache cache(&dev_);
    std::map<std::uint64_t, std::uint8_t> reference; // offset -> byte
    cxlcommon::Xoshiro rng(42);
    const std::uint64_t span = 4096 * 64; // 4096 lines, 4x capacity

    for (int step = 0; step < 20000; step++) {
        std::uint64_t offset = rng.next_below(span - 8);
        switch (rng.next_below(8)) {
        case 0:
            cache.flush(offset, 8);
            break;
        case 1:
        case 2:
        case 3: {
            std::uint8_t v = static_cast<std::uint8_t>(rng.next_below(255)) + 1;
            std::uint8_t buf[4] = {v, v, v, v};
            cache.write(offset, buf, sizeof buf);
            for (std::uint64_t b = 0; b < sizeof buf; b++) {
                reference[offset + b] = v;
            }
            break;
        }
        default: {
            std::uint8_t buf[4];
            cache.read(offset, buf, sizeof buf);
            for (std::uint64_t b = 0; b < sizeof buf; b++) {
                auto it = reference.find(offset + b);
                std::uint8_t want = it == reference.end() ? 0 : it->second;
                ASSERT_EQ(buf[b], want) << "offset " << offset + b;
            }
            break;
        }
        }
    }
    EXPECT_GT(cache.evictions(), 0u) << "working set must overflow capacity";

    cache.writeback_all();
    EXPECT_EQ(cache.resident_lines(), 0u);
    for (const auto& [offset, want] : reference) {
        std::uint8_t got;
        std::memcpy(&got, dev_.raw(offset), 1);
        ASSERT_EQ(got, want) << "offset " << offset;
    }
}

} // namespace
