#include "cxl/cache_model.h"

#include <cstring>
#include <gtest/gtest.h>
#include <map>
#include <vector>

#include "common/random.h"

namespace {

using cxl::CoherenceMode;
using cxl::Device;
using cxl::DeviceConfig;
using cxl::ThreadCache;

class CacheModelTest : public ::testing::Test {
  protected:
    CacheModelTest()
        : dev_(DeviceConfig{.size = 1 << 20,
                            .mode = CoherenceMode::PartialHwcc,
                            .sync_region_size = 4096,
                            .simulate_cache = true})
    {
    }

    Device dev_;
};

TEST_F(CacheModelTest, WriteIsInvisibleUntilFlush)
{
    ThreadCache writer(&dev_);
    ThreadCache reader(&dev_);
    std::uint64_t offset = 8192;

    std::uint32_t value = 0xdeadbeef;
    writer.write(offset, &value, sizeof value);

    // The SWcc hazard the paper's protocol exists to handle: the reader
    // fetches from the device, which has not seen the write.
    std::uint32_t seen = 1;
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0u);

    writer.flush(offset, sizeof value);

    // The reader still holds its stale copy until it too flushes.
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0u);

    reader.flush(offset, sizeof seen);
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0xdeadbeefu);
}

TEST_F(CacheModelTest, WriterReadsOwnWrites)
{
    ThreadCache cache(&dev_);
    std::uint64_t v = 77;
    cache.write(5000, &v, sizeof v);
    std::uint64_t seen = 0;
    cache.read(5000, &seen, sizeof seen);
    EXPECT_EQ(seen, 77u);
}

TEST_F(CacheModelTest, CrossLineWriteSpansTwoLines)
{
    ThreadCache cache(&dev_);
    std::uint64_t offset = 8192 + 60; // straddles a 64 B boundary
    std::uint64_t v = 0x1122334455667788ULL;
    cache.write(offset, &v, sizeof v);
    EXPECT_EQ(cache.dirty_lines(), 2u);
    cache.flush(offset, sizeof v);
    EXPECT_EQ(cache.dirty_lines(), 0u);
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(offset), sizeof direct);
    EXPECT_EQ(direct, v);
}

TEST_F(CacheModelTest, InvalidateAllDropsDirtyData)
{
    // A crash loses unflushed writes: invalidate_all models the dying
    // thread's cache disappearing.
    ThreadCache cache(&dev_);
    std::uint64_t v = 99;
    cache.write(4096, &v, sizeof v);
    cache.invalidate_all();
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(4096), sizeof direct);
    EXPECT_EQ(direct, 0u);
}

TEST_F(CacheModelTest, FlushCleanLineJustInvalidates)
{
    ThreadCache cache(&dev_);
    std::uint64_t seen;
    cache.read(4096, &seen, sizeof seen); // fill, clean
    EXPECT_EQ(cache.resident_lines(), 1u);
    cache.flush(4096, 8);
    EXPECT_EQ(cache.resident_lines(), 0u);
}

TEST_F(CacheModelTest, StaleReadAfterRemoteWrite)
{
    // Reader caches a line; another thread updates the device (via its own
    // flush); reader keeps seeing the stale value until it flushes.
    ThreadCache reader(&dev_);
    ThreadCache writer(&dev_);
    std::uint64_t offset = 16384;

    std::uint64_t seen;
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0u);

    std::uint64_t v = 1234;
    writer.write(offset, &v, sizeof v);
    writer.flush(offset, sizeof v);

    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0u) << "reader must see its stale cached copy";

    reader.flush(offset, 8);
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 1234u);
}

/// First @p n line offsets (within @p limit) mapping to one cache set:
/// the deterministic conflict workload for eviction tests.
std::vector<std::uint64_t>
same_set_lines(std::size_t n, std::uint64_t limit)
{
    std::vector<std::uint64_t> lines;
    std::uint32_t set = ThreadCache::set_of(0);
    for (std::uint64_t off = 0; off < limit && lines.size() < n; off += 64) {
        if (ThreadCache::set_of(off) == set) {
            lines.push_back(off);
        }
    }
    return lines;
}

TEST_F(CacheModelTest, CapacityEvictionWritesDirtyVictimBack)
{
    // kWays+1 dirty lines in one set: the overflow write evicts the oldest
    // way and its data reaches the device early — before any flush. This is
    // the deterministic staleness source the set-associative store adds; it
    // is safe because early write-back is a prefix of the eventual flush.
    ThreadCache writer(&dev_);
    ThreadCache other(&dev_);
    auto lines = same_set_lines(ThreadCache::kWays + 1, dev_.size());
    ASSERT_EQ(lines.size(), ThreadCache::kWays + 1);

    for (std::size_t i = 0; i < lines.size(); i++) {
        std::uint64_t v = 1000 + i;
        writer.write(lines[i], &v, sizeof v);
    }
    EXPECT_EQ(writer.evictions(), 1u);
    EXPECT_EQ(writer.resident_lines(), ThreadCache::kWays);

    // The victim (the first line written) was written back: another cache
    // reads the value although the writer never flushed it.
    std::uint64_t seen = 0;
    other.read(lines[0], &seen, sizeof seen);
    EXPECT_EQ(seen, 1000u);

    // Non-evicted lines stay invisible until flushed, as ever.
    other.read(lines[1], &seen, sizeof seen);
    EXPECT_EQ(seen, 0u);
}

TEST_F(CacheModelTest, CapacityEvictionDropsCleanStaleLine)
{
    // A clean line evicted by conflict pressure is just dropped; the next
    // read refetches from the device and observes a remote write the
    // stale copy was hiding — eviction can only make reads fresher.
    ThreadCache reader(&dev_);
    ThreadCache writer(&dev_);
    auto lines = same_set_lines(ThreadCache::kWays + 1, dev_.size());
    ASSERT_EQ(lines.size(), ThreadCache::kWays + 1);

    std::uint64_t seen;
    reader.read(lines[0], &seen, sizeof seen); // clean, stale-to-be
    EXPECT_EQ(seen, 0u);

    std::uint64_t v = 4321;
    writer.write(lines[0], &v, sizeof v);
    writer.flush(lines[0], sizeof v);

    reader.read(lines[0], &seen, sizeof seen);
    EXPECT_EQ(seen, 0u) << "still cached, still stale";

    for (std::size_t i = 1; i < lines.size(); i++) {
        reader.read(lines[i], &seen, sizeof seen); // force the eviction
    }
    EXPECT_EQ(reader.evictions(), 1u);

    reader.read(lines[0], &seen, sizeof seen);
    EXPECT_EQ(seen, 4321u) << "refetched after clean eviction, no flush";
}

TEST_F(CacheModelTest, MruLineSurvivesConflictPressure)
{
    // The most-recently-touched way is exempt from victim selection, so a
    // hot dirty line survives a same-set scan of any length.
    ThreadCache cache(&dev_);
    auto lines = same_set_lines(3 * ThreadCache::kWays, dev_.size());
    ASSERT_EQ(lines.size(), 3 * ThreadCache::kWays);

    std::uint64_t hot = 7777;
    std::uint64_t seen;
    for (std::size_t i = 1; i < lines.size(); i++) {
        cache.write(lines[0], &hot, sizeof hot); // re-touch: stays MRU
        cache.read(lines[i], &seen, sizeof seen);
    }
    // Never written back: the device still reads zero.
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(lines[0]), sizeof direct);
    EXPECT_EQ(direct, 0u);
    cache.read(lines[0], &seen, sizeof seen);
    EXPECT_EQ(seen, 7777u);
}

TEST_F(CacheModelTest, RandomTraceMatchesFlatReferenceModel)
{
    // Equivalence replay: a single-writer trace of read/write/flush over a
    // working set far beyond capacity (forcing steady eviction traffic)
    // must behave exactly like a flat byte overlay — eviction timing is
    // invisible to the owning thread, and writeback_all leaves the device
    // equal to the overlay.
    ThreadCache cache(&dev_);
    std::map<std::uint64_t, std::uint8_t> reference; // offset -> byte
    cxlcommon::Xoshiro rng(42);
    const std::uint64_t span = 4096 * 64; // 4096 lines, 4x capacity

    for (int step = 0; step < 20000; step++) {
        std::uint64_t offset = rng.next_below(span - 8);
        switch (rng.next_below(8)) {
        case 0:
            cache.flush(offset, 8);
            break;
        case 1:
        case 2:
        case 3: {
            std::uint8_t v = static_cast<std::uint8_t>(rng.next_below(255)) + 1;
            std::uint8_t buf[4] = {v, v, v, v};
            cache.write(offset, buf, sizeof buf);
            for (std::uint64_t b = 0; b < sizeof buf; b++) {
                reference[offset + b] = v;
            }
            break;
        }
        default: {
            std::uint8_t buf[4];
            cache.read(offset, buf, sizeof buf);
            for (std::uint64_t b = 0; b < sizeof buf; b++) {
                auto it = reference.find(offset + b);
                std::uint8_t want = it == reference.end() ? 0 : it->second;
                ASSERT_EQ(buf[b], want) << "offset " << offset + b;
            }
            break;
        }
        }
    }
    EXPECT_GT(cache.evictions(), 0u) << "working set must overflow capacity";

    cache.writeback_all();
    EXPECT_EQ(cache.resident_lines(), 0u);
    for (const auto& [offset, want] : reference) {
        std::uint8_t got;
        std::memcpy(&got, dev_.raw(offset), 1);
        ASSERT_EQ(got, want) << "offset " << offset;
    }
}

TEST_F(CacheModelTest, VictimCursorWrapsWithoutEvictingMruPinnedWay)
{
    // The round-robin victim cursor must wrap past the set multiple times
    // while the MRU pin keeps tracking a moving hot way: the hot line is
    // never selected even when the cursor comes back around to its way,
    // and every eviction writes exactly one dirty victim to the device.
    ThreadCache cache(&dev_);
    auto lines = same_set_lines(3 * ThreadCache::kWays + 2, dev_.size());
    ASSERT_EQ(lines.size(), 3 * ThreadCache::kWays + 2);

    std::uint64_t hot = 4242;
    cache.write(lines[0], &hot, sizeof hot);
    for (std::size_t i = 1; i < lines.size(); i++) {
        cache.write(lines[0], &hot, sizeof hot); // re-touch: stays MRU
        std::uint64_t v = 100 + i;
        cache.write(lines[i], &v, sizeof v);
    }
    // 3*kWays+2 distinct lines through kWays ways: the cursor wrapped at
    // least twice.
    EXPECT_EQ(cache.evictions(), 2 * ThreadCache::kWays + 2);

    // The pinned line survived every wrap, still dirty (device reads 0).
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(lines[0]), sizeof direct);
    EXPECT_EQ(direct, 0u);
    std::uint64_t seen;
    cache.read(lines[0], &seen, sizeof seen);
    EXPECT_EQ(seen, 4242u);

    // Each eviction wrote its dirty victim back exactly once; lines still
    // resident never reached the device.
    std::uint64_t on_device = 0;
    for (std::size_t i = 1; i < lines.size(); i++) {
        std::memcpy(&direct, dev_.raw(lines[i]), sizeof direct);
        if (direct != 0) {
            EXPECT_EQ(direct, 100 + i);
            on_device++;
        }
    }
    EXPECT_EQ(on_device, cache.evictions());
}

TEST_F(CacheModelTest, DurableLinePersistsAheadOfDirtyEvictions)
{
    // The recovery-record row: once registered as the durable line, every
    // dirty victim's early write-back persists the newest record value
    // first, so a host crash can never surface a later operation's effect
    // on the device next to a stale record (see RecoveryLog's discipline).
    ThreadCache cache(&dev_);
    auto lines = same_set_lines(ThreadCache::kWays + 1, dev_.size());
    ASSERT_EQ(lines.size(), ThreadCache::kWays + 1);
    // Put the durable line in a different set so conflict pressure never
    // selects it as the victim itself.
    std::uint64_t durable = 0;
    for (std::uint64_t off = 64; off < dev_.size(); off += 64) {
        if (ThreadCache::set_of(off) != ThreadCache::set_of(lines[0])) {
            durable = off;
            break;
        }
    }
    ASSERT_NE(durable, 0u);
    cache.set_durable_line(durable);

    std::uint64_t record = 0xAAAA;
    cache.write(durable, &record, sizeof record);
    for (std::size_t i = 0; i < ThreadCache::kWays; i++) {
        std::uint64_t v = 100 + i;
        cache.write(lines[i], &v, sizeof v); // fill the set, no eviction
    }
    ASSERT_EQ(cache.evictions(), 0u);
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(durable), sizeof direct);
    EXPECT_EQ(direct, 0u) << "no eviction yet: record still cache-only";

    std::uint64_t v = 999;
    cache.write(lines[ThreadCache::kWays], &v, sizeof v); // dirty eviction
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.durable_writebacks(), 1u);
    std::memcpy(&direct, dev_.raw(durable), sizeof direct);
    EXPECT_EQ(direct, 0xAAAAu) << "record persisted ahead of the victim";

    // Persisting is a snapshot, not a flush: the line stays resident and
    // dirty, and a newer record value rides the next eviction.
    record = 0xBBBB;
    cache.write(durable, &record, sizeof record);
    v = 1000;
    cache.write(lines[0], &v, sizeof v); // refill: evicts another victim
    EXPECT_EQ(cache.evictions(), 2u);
    EXPECT_EQ(cache.durable_writebacks(), 2u);
    std::memcpy(&direct, dev_.raw(durable), sizeof direct);
    EXPECT_EQ(direct, 0xBBBBu);
}

TEST_F(CacheModelTest, DurableLineEvictedItselfNeedsNoExtraPersist)
{
    // When the victim IS the durable line, its early write-back already
    // carries the newest value — no second persist.
    ThreadCache cache(&dev_);
    auto lines = same_set_lines(ThreadCache::kWays + 1, dev_.size());
    ASSERT_EQ(lines.size(), ThreadCache::kWays + 1);
    cache.set_durable_line(lines[0]);

    for (std::size_t i = 0; i < ThreadCache::kWays; i++) {
        std::uint64_t v = 100 + i;
        cache.write(lines[i], &v, sizeof v);
    }
    std::uint64_t v = 999;
    cache.write(lines[ThreadCache::kWays], &v, sizeof v);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.durable_writebacks(), 0u);
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(lines[0]), sizeof direct);
    EXPECT_EQ(direct, 100u) << "victim write-back carried the record";
}

TEST_F(CacheModelTest, DurableLineSnapshotsBufferedStoresWithoutDraining)
{
    // Weak mode: the newest record value may still sit in the store
    // buffer when an unrelated drain forces a dirty eviction. The persist
    // overlays buffered stores onto the snapshot without draining them —
    // litmus-mode ordering state is untouched.
    ThreadCache cache(&dev_);
    auto lines = same_set_lines(ThreadCache::kWays + 1, dev_.size());
    ASSERT_EQ(lines.size(), ThreadCache::kWays + 1);
    std::uint64_t durable = 0;
    for (std::uint64_t off = 64; off < dev_.size(); off += 64) {
        if (ThreadCache::set_of(off) != ThreadCache::set_of(lines[0])) {
            durable = off;
            break;
        }
    }
    ASSERT_NE(durable, 0u);
    cache.set_durable_line(durable);

    // Fill the set with dirty lines in strong mode, then go weak.
    for (std::size_t i = 0; i < ThreadCache::kWays; i++) {
        std::uint64_t v = 100 + i;
        cache.write(lines[i], &v, sizeof v);
    }
    cxl::CacheKnobs k;
    k.store_buffer_entries = 2;
    cache.set_knobs(k);

    std::uint64_t conflict = 7; // oldest buffered: drains on overflow
    cache.write(lines[ThreadCache::kWays], &conflict, sizeof conflict);
    std::uint64_t record = 0x77;
    cache.write(durable, &record, sizeof record);
    EXPECT_EQ(cache.store_buffer_depth(), 2u);

    std::uint64_t other = 1; // overflow: drains the conflict line ->
                             // fill -> dirty eviction -> persist
    cache.write(durable + 64, &other, sizeof other);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.durable_writebacks(), 1u);
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(durable), sizeof direct);
    EXPECT_EQ(direct, 0x77u) << "buffered record value reached the device";
    EXPECT_EQ(cache.store_buffer_depth(), 2u)
        << "persist must not drain the buffer";
}

TEST_F(CacheModelTest, StoreBufferDelaysVisibilityUntilFence)
{
    // Weak mode: a store sits in the buffer (clwb moves it to the pending
    // write-back queue), and only sfence completes it to the device. The
    // owning thread still sees its own store via forwarding.
    ThreadCache cache(&dev_);
    cxl::CacheKnobs k;
    k.store_buffer_entries = 4;
    cache.set_knobs(k);

    std::uint64_t v = 9;
    cache.write(4096, &v, sizeof v);
    EXPECT_EQ(cache.store_buffer_depth(), 1u);

    std::uint64_t seen = 0;
    cache.read(4096, &seen, sizeof seen);
    EXPECT_EQ(seen, 9u); // forwarded, not drained
    EXPECT_EQ(cache.store_buffer_depth(), 1u);

    cache.flush(4096, sizeof v); // clwb: queued, not yet durable
    EXPECT_EQ(cache.store_buffer_depth(), 0u);
    EXPECT_EQ(cache.pending_writebacks(), 1u);
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(4096), sizeof direct);
    EXPECT_EQ(direct, 0u);

    cache.fence(); // sfence: completes the queued write-back
    EXPECT_EQ(cache.pending_writebacks(), 0u);
    std::memcpy(&direct, dev_.raw(4096), sizeof direct);
    EXPECT_EQ(direct, 9u);
}

TEST_F(CacheModelTest, LoadForwardingOffStallsOnBufferedLine)
{
    ThreadCache cache(&dev_);
    cxl::CacheKnobs k;
    k.store_buffer_entries = 4;
    k.load_forwarding = false;
    cache.set_knobs(k);

    std::uint64_t v = 5;
    cache.write(4096, &v, sizeof v);
    EXPECT_EQ(cache.store_buffer_depth(), 1u);
    std::uint64_t seen = 0;
    cache.read(4096, &seen, sizeof seen);
    EXPECT_EQ(seen, 5u);
    // Without forwarding the load stalled until the line's buffered
    // stores drained into the cache.
    EXPECT_EQ(cache.store_buffer_depth(), 0u);
}

TEST_F(CacheModelTest, SameLineStoresRetireInProgramOrderEvenNonFifo)
{
    // CoWW at unit level: overflow drains under the non-FIFO knob, but
    // same-line entries always apply in program order, so the final value
    // is the younger store.
    ThreadCache cache(&dev_);
    cxl::CacheKnobs k;
    k.store_buffer_entries = 1;
    k.fifo_drain = false;
    cache.set_knobs(k);

    std::uint64_t a = 1, b = 2;
    cache.write(4096, &a, sizeof a);
    cache.write(4096, &b, sizeof b); // overflow: oldest-for-this-line drains
    cache.fence();
    cache.flush(4096, sizeof b);
    cache.fence();
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(4096), sizeof direct);
    EXPECT_EQ(direct, 2u);
}

TEST_F(CacheModelTest, NonFifoDrainRetiresYoungestStoreFirst)
{
    // Distinct-line drain order is the knob's observable: overflow under
    // FIFO drains the OLDEST buffered store, non-FIFO the YOUNGEST (the
    // incoming store goes straight through while older ones to other
    // lines stay parked). Route the drains into a full cache set — a
    // drained store fills its line and evicts a dirty victim — so the
    // orders produce different eviction counts: FIFO pushes both parked
    // same-set stores through the full set (2 evictions), non-FIFO
    // commits only the other-set arrivals (0 evictions).
    for (bool fifo : {true, false}) {
        Device dev(DeviceConfig{.size = 1 << 20,
                                .mode = CoherenceMode::PartialHwcc,
                                .sync_region_size = 4096,
                                .simulate_cache = true});
        ThreadCache cache(&dev);
        auto lines = same_set_lines(ThreadCache::kWays + 2, dev.size());
        ASSERT_EQ(lines.size(), ThreadCache::kWays + 2);
        // Fill the set with dirty lines (strong mode).
        for (std::size_t i = 2; i < lines.size(); i++) {
            std::uint64_t v = 500 + i;
            cache.write(lines[i], &v, sizeof v);
        }
        ASSERT_EQ(cache.evictions(), 0u);

        cxl::CacheKnobs k;
        k.store_buffer_entries = 2;
        k.fifo_drain = fifo;
        cache.set_knobs(k);

        // Two other-set offsets for the overflow traffic.
        std::uint32_t set = ThreadCache::set_of(lines[0]);
        std::vector<std::uint64_t> other;
        for (std::uint64_t off = 0; other.size() < 2 && off < dev.size();
             off += 64) {
            if (ThreadCache::set_of(off) != set) {
                other.push_back(off);
            }
        }
        ASSERT_EQ(other.size(), 2u);

        std::uint64_t v = 111;
        cache.write(lines[0], &v, sizeof v);
        v = 222;
        cache.write(lines[1], &v, sizeof v);
        v = 9;
        cache.write(other[0], &v, sizeof v); // 1st overflow drain
        cache.write(other[1], &v, sizeof v); // 2nd overflow drain
        EXPECT_EQ(cache.store_buffer_depth(), 2u);
        EXPECT_EQ(cache.evictions(), fifo ? 2u : 0u)
            << (fifo ? "fifo" : "non-fifo");

        // Convergence: after fence + flush everything is where it belongs.
        cache.fence();
        cache.writeback_all();
        std::uint64_t direct;
        std::memcpy(&direct, dev.raw(lines[0]), sizeof direct);
        EXPECT_EQ(direct, 111u);
        std::memcpy(&direct, dev.raw(lines[1]), sizeof direct);
        EXPECT_EQ(direct, 222u);
    }
}

TEST_F(CacheModelTest, WritebackAllAndInvalidateAllDivergeOnWeakState)
{
    // The crash-severity split, extended to the new knobs: a PROCESS crash
    // (writeback_all) preserves buffered stores and flushed-but-unfenced
    // pending lines; a HOST crash (invalidate_all) loses both.
    for (bool host_crash : {false, true}) {
        Device dev(DeviceConfig{.size = 1 << 20,
                                .mode = CoherenceMode::PartialHwcc,
                                .sync_region_size = 4096,
                                .simulate_cache = true});
        ThreadCache cache(&dev);
        cxl::CacheKnobs k;
        k.store_buffer_entries = 4;
        cache.set_knobs(k);

        std::uint64_t a = 1, b = 2;
        cache.write(8192, &a, sizeof a);  // buffered only
        cache.write(16384, &b, sizeof b); // buffered...
        cache.flush(16384, sizeof b);     // ...then pending, never fenced
        EXPECT_EQ(cache.store_buffer_depth(), 1u);
        EXPECT_EQ(cache.pending_writebacks(), 1u);

        if (host_crash) {
            cache.invalidate_all();
        } else {
            cache.writeback_all();
        }
        EXPECT_EQ(cache.store_buffer_depth(), 0u);
        EXPECT_EQ(cache.pending_writebacks(), 0u);
        EXPECT_EQ(cache.resident_lines(), 0u);

        std::uint64_t da, db;
        std::memcpy(&da, dev.raw(8192), sizeof da);
        std::memcpy(&db, dev.raw(16384), sizeof db);
        if (host_crash) {
            EXPECT_EQ(da, 0u) << "host crash must lose buffered stores";
            EXPECT_EQ(db, 0u) << "host crash must lose unfenced pending";
        } else {
            EXPECT_EQ(da, 1u) << "process crash must keep buffered stores";
            EXPECT_EQ(db, 2u) << "process crash must keep pending lines";
        }
    }
}

} // namespace
