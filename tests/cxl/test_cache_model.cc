#include "cxl/cache_model.h"

#include <cstring>
#include <gtest/gtest.h>

namespace {

using cxl::CoherenceMode;
using cxl::Device;
using cxl::DeviceConfig;
using cxl::ThreadCache;

class CacheModelTest : public ::testing::Test {
  protected:
    CacheModelTest()
        : dev_(DeviceConfig{.size = 1 << 20,
                            .mode = CoherenceMode::PartialHwcc,
                            .sync_region_size = 4096,
                            .simulate_cache = true})
    {
    }

    Device dev_;
};

TEST_F(CacheModelTest, WriteIsInvisibleUntilFlush)
{
    ThreadCache writer(&dev_);
    ThreadCache reader(&dev_);
    std::uint64_t offset = 8192;

    std::uint32_t value = 0xdeadbeef;
    writer.write(offset, &value, sizeof value);

    // The SWcc hazard the paper's protocol exists to handle: the reader
    // fetches from the device, which has not seen the write.
    std::uint32_t seen = 1;
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0u);

    writer.flush(offset, sizeof value);

    // The reader still holds its stale copy until it too flushes.
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0u);

    reader.flush(offset, sizeof seen);
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0xdeadbeefu);
}

TEST_F(CacheModelTest, WriterReadsOwnWrites)
{
    ThreadCache cache(&dev_);
    std::uint64_t v = 77;
    cache.write(5000, &v, sizeof v);
    std::uint64_t seen = 0;
    cache.read(5000, &seen, sizeof seen);
    EXPECT_EQ(seen, 77u);
}

TEST_F(CacheModelTest, CrossLineWriteSpansTwoLines)
{
    ThreadCache cache(&dev_);
    std::uint64_t offset = 8192 + 60; // straddles a 64 B boundary
    std::uint64_t v = 0x1122334455667788ULL;
    cache.write(offset, &v, sizeof v);
    EXPECT_EQ(cache.dirty_lines(), 2u);
    cache.flush(offset, sizeof v);
    EXPECT_EQ(cache.dirty_lines(), 0u);
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(offset), sizeof direct);
    EXPECT_EQ(direct, v);
}

TEST_F(CacheModelTest, InvalidateAllDropsDirtyData)
{
    // A crash loses unflushed writes: invalidate_all models the dying
    // thread's cache disappearing.
    ThreadCache cache(&dev_);
    std::uint64_t v = 99;
    cache.write(4096, &v, sizeof v);
    cache.invalidate_all();
    std::uint64_t direct;
    std::memcpy(&direct, dev_.raw(4096), sizeof direct);
    EXPECT_EQ(direct, 0u);
}

TEST_F(CacheModelTest, FlushCleanLineJustInvalidates)
{
    ThreadCache cache(&dev_);
    std::uint64_t seen;
    cache.read(4096, &seen, sizeof seen); // fill, clean
    EXPECT_EQ(cache.resident_lines(), 1u);
    cache.flush(4096, 8);
    EXPECT_EQ(cache.resident_lines(), 0u);
}

TEST_F(CacheModelTest, StaleReadAfterRemoteWrite)
{
    // Reader caches a line; another thread updates the device (via its own
    // flush); reader keeps seeing the stale value until it flushes.
    ThreadCache reader(&dev_);
    ThreadCache writer(&dev_);
    std::uint64_t offset = 16384;

    std::uint64_t seen;
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0u);

    std::uint64_t v = 1234;
    writer.write(offset, &v, sizeof v);
    writer.flush(offset, sizeof v);

    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 0u) << "reader must see its stale cached copy";

    reader.flush(offset, 8);
    reader.read(offset, &seen, sizeof seen);
    EXPECT_EQ(seen, 1234u);
}

} // namespace
