/// Focused concurrency tests of the baselines' synchronization-critical
/// paths: cxl-shm's refcount pin/unpin races and ralloc's shared-slab
/// CAS traffic — the behaviours that drive their Fig. 8/9/12 curves.

#include <gtest/gtest.h>
#include <atomic>
#include <memory>
#include <thread>

#include "baselines/cxlshmish.h"
#include "baselines/rallocish.h"
#include "common/random.h"
#include "pod/pod.h"

namespace {

constexpr std::uint64_t kArenaBase = 1 << 20;
constexpr std::uint64_t kArenaSize = 32 << 20;

struct ShmRig {
    ShmRig()
    {
        pod::PodConfig pc;
        pc.device.size = kArenaBase + kArenaSize;
        pc.device.sync_region_size = kArenaBase;
        pod = std::make_unique<pod::Pod>(pc);
        proc = pod->create_process();
        alloc = std::make_unique<baselines::Cxlshmish>(*pod, kArenaBase,
                                                       kArenaSize);
    }

    std::unique_ptr<pod::Pod> pod;
    pod::Process* proc = nullptr;
    std::unique_ptr<baselines::Cxlshmish> alloc;
};

TEST(CxlshmConcurrency, ReadersPinWhileOwnerFrees)
{
    // The design the paper criticizes: readers bump a refcount per access.
    // Under concurrent pin/unpin + free, exactly one reclamation must
    // happen and no use-after-recycle.
    ShmRig rig;
    auto owner = rig.pod->create_thread(rig.proc);
    cxl::HeapOffset obj = rig.alloc->allocate(*owner, 64);
    ASSERT_NE(obj, 0u);
    *rig.alloc->pointer(*owner, obj, 1) = std::byte{0x77};

    std::atomic<bool> freed{false};
    std::atomic<int> bad_reads{0};
    constexpr int kReaders = 3;
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; r++) {
        readers.emplace_back([&, r] {
            auto t = rig.pod->create_thread(rig.proc);
            for (int i = 0; i < 3000; i++) {
                rig.alloc->on_access(*t, obj);
                if (!freed.load(std::memory_order_acquire) &&
                    *rig.alloc->pointer(*t, obj, 1) != std::byte{0x77}) {
                    bad_reads.fetch_add(1);
                }
                rig.alloc->after_access(*t, obj);
            }
            (void)r;
            rig.pod->release_thread(std::move(t));
        });
    }
    // Owner frees mid-flight; the object must survive until the last unpin.
    rig.alloc->deallocate(*owner, obj);
    freed.store(true, std::memory_order_release);
    for (auto& th : readers) {
        th.join();
    }
    EXPECT_EQ(bad_reads.load(), 0);
    // After all pins are gone the block recycles exactly once.
    cxl::HeapOffset again = rig.alloc->allocate(*owner, 64);
    EXPECT_EQ(again, obj);
    rig.pod->release_thread(std::move(owner));
}

TEST(CxlshmConcurrency, HotKeyRefcountTrafficIsPerAccess)
{
    // The YCSB-A/D story in one number: every access costs two RMWs on the
    // object's header line.
    ShmRig rig;
    auto t = rig.pod->create_thread(rig.proc);
    cxl::HeapOffset obj = rig.alloc->allocate(*t, 64);
    for (int i = 0; i < 1000; i++) {
        rig.alloc->on_access(*t, obj);
        rig.alloc->after_access(*t, obj);
    }
    // Object still alive (refcount balanced) and usable.
    *rig.alloc->pointer(*t, obj, 1) = std::byte{1};
    rig.alloc->deallocate(*t, obj);
    EXPECT_EQ(rig.alloc->allocate(*t, 64), obj);
    rig.pod->release_thread(std::move(t));
}

TEST(RallocConcurrency, SharedSlabFeedsManyThreadsWithoutLoss)
{
    pod::PodConfig pc;
    pc.device.size = kArenaBase + kArenaSize;
    pc.device.sync_region_size = kArenaBase;
    pod::Pod pod(pc);
    pod::Process* proc = pod.create_process();
    std::uint32_t slabs = 128;
    std::uint64_t meta = baselines::Rallocish::meta_size(slabs);
    baselines::Rallocish alloc(pod, 64, (64 + meta + 4095) & ~4095ULL,
                               slabs);

    constexpr int kThreads = 4;
    constexpr int kOps = 4000;
    std::atomic<std::uint64_t> allocated{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; w++) {
        workers.emplace_back([&, w] {
            auto t = pod.create_thread(proc);
            alloc.attach_thread(*t);
            cxlcommon::Xoshiro rng(w + 3);
            std::vector<cxl::HeapOffset> live;
            for (int i = 0; i < kOps; i++) {
                if (rng.next_below(2) == 0 || live.empty()) {
                    cxl::HeapOffset p = alloc.allocate(*t, 64);
                    ASSERT_NE(p, 0u);
                    allocated.fetch_add(1);
                    live.push_back(p);
                } else {
                    std::size_t pick = rng.next_below(live.size());
                    alloc.deallocate(*t, live[pick]);
                    live[pick] = live.back();
                    live.pop_back();
                }
            }
            for (auto p : live) {
                alloc.deallocate(*t, p);
            }
            alloc.flush_thread_cache(*t);
            pod.release_thread(std::move(t));
        });
    }
    for (auto& th : workers) {
        th.join();
    }
    // Everything freed and flushed: a full GC with an empty live set must
    // find zero leaked bytes.
    auto probe = pod.create_thread(proc);
    alloc.attach_thread(*probe);
    EXPECT_EQ(alloc.leaked_bytes(probe->mem(),
                                 [](cxl::HeapOffset) { return false; }),
              0u);
    EXPECT_GT(allocated.load(), 0u);
    pod.release_thread(std::move(probe));
}

} // namespace
