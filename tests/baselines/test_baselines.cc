/// Behavioural tests over every baseline allocator through the common
/// PodAllocator interface, plus checks of each baseline's load-bearing
/// property (what drives its curve in the paper's evaluation).

#include <gtest/gtest.h>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "baselines/boostish.h"
#include "baselines/cxlshmish.h"
#include "baselines/lightningish.h"
#include "baselines/mimic.h"
#include "baselines/rallocish.h"
#include "common/random.h"
#include "pod/pod.h"

namespace {

using baselines::PodAllocator;

constexpr std::uint64_t kArenaBase = 1 << 20;
constexpr std::uint64_t kArenaSize = 32 << 20;

struct BaselineRig {
    explicit BaselineRig(const std::string& which,
                         cxl::CoherenceMode mode = cxl::CoherenceMode::FullHwcc)
    {
        pod::PodConfig pc;
        pc.device.size = kArenaBase + kArenaSize + (8 << 20);
        pc.device.mode = mode;
        // Covers rallocish metadata (and more) so cas64 works there.
        pc.device.sync_region_size = kArenaBase + (1 << 20);
        pod = std::make_unique<pod::Pod>(pc);
        process = pod->create_process();
        if (which == "mimic") {
            alloc = std::make_unique<baselines::Mimic>(*pod, kArenaBase,
                                                       kArenaSize);
        } else if (which == "boostish") {
            alloc = std::make_unique<baselines::Boostish>(*pod, kArenaBase,
                                                          kArenaSize);
        } else if (which == "lightningish") {
            alloc = std::make_unique<baselines::Lightningish>(
                *pod, kArenaBase, kArenaSize);
        } else if (which == "cxlshmish") {
            alloc = std::make_unique<baselines::Cxlshmish>(*pod, kArenaBase,
                                                           kArenaSize);
        } else if (which == "rallocish") {
            std::uint32_t slabs = 256;
            std::uint64_t meta = baselines::Rallocish::meta_size(slabs);
            alloc = std::make_unique<baselines::Rallocish>(
                *pod, kArenaBase, kArenaBase + ((meta + 4095) & ~4095ULL),
                slabs);
        }
    }

    std::unique_ptr<pod::ThreadContext>
    thread()
    {
        auto ctx = pod->create_thread(process);
        alloc->attach_thread(*ctx);
        return ctx;
    }

    std::unique_ptr<pod::Pod> pod;
    pod::Process* process = nullptr;
    std::unique_ptr<PodAllocator> alloc;
};

class AllBaselines : public ::testing::TestWithParam<const char*> {};

TEST_P(AllBaselines, AllocateWriteFree)
{
    BaselineRig rig(GetParam());
    auto t = rig.thread();
    cxl::HeapOffset p = rig.alloc->allocate(*t, 128);
    ASSERT_NE(p, 0u);
    std::byte* data = rig.alloc->pointer(*t, p, 128);
    std::memset(data, 0x42, 128);
    rig.alloc->deallocate(*t, p);
    rig.pod->release_thread(std::move(t));
}

TEST_P(AllBaselines, LiveAllocationsDistinct)
{
    BaselineRig rig(GetParam());
    auto t = rig.thread();
    std::set<cxl::HeapOffset> seen;
    std::vector<cxl::HeapOffset> live;
    for (int i = 0; i < 2000; i++) {
        cxl::HeapOffset p = rig.alloc->allocate(*t, 64);
        ASSERT_NE(p, 0u);
        ASSERT_TRUE(seen.insert(p).second);
        live.push_back(p);
    }
    for (auto p : live) {
        rig.alloc->deallocate(*t, p);
    }
    rig.pod->release_thread(std::move(t));
}

TEST_P(AllBaselines, ChurnReusesMemory)
{
    BaselineRig rig(GetParam());
    auto t = rig.thread();
    cxlcommon::Xoshiro rng(7);
    std::vector<cxl::HeapOffset> live;
    for (int i = 0; i < 20000; i++) {
        if (rng.next_below(2) == 0 || live.empty()) {
            cxl::HeapOffset p =
                rig.alloc->allocate(*t, 8 + rng.next_below(1000));
            ASSERT_NE(p, 0u) << "arena exhausted: allocator is not reusing "
                                "freed memory";
            live.push_back(p);
        } else {
            std::size_t pick = rng.next_below(live.size());
            rig.alloc->deallocate(*t, live[pick]);
            live[pick] = live.back();
            live.pop_back();
        }
    }
    for (auto p : live) {
        rig.alloc->deallocate(*t, p);
    }
    rig.pod->release_thread(std::move(t));
}

TEST_P(AllBaselines, MultithreadedRemoteFrees)
{
    BaselineRig rig(GetParam());
    constexpr int kItems = 5000;
    std::vector<cxl::HeapOffset> queue(kItems, 0);
    std::atomic<int> produced{0};
    std::thread producer([&] {
        auto t = rig.thread();
        for (int i = 0; i < kItems; i++) {
            cxl::HeapOffset p = rig.alloc->allocate(*t, 64);
            ASSERT_NE(p, 0u);
            queue[i] = p;
            produced.store(i + 1, std::memory_order_release);
        }
        rig.pod->release_thread(std::move(t));
    });
    std::thread consumer([&] {
        auto t = rig.thread();
        for (int i = 0; i < kItems; i++) {
            while (produced.load(std::memory_order_acquire) <= i) {
            }
            rig.alloc->deallocate(*t, queue[i]);
        }
        rig.pod->release_thread(std::move(t));
    });
    producer.join();
    consumer.join();
}

INSTANTIATE_TEST_SUITE_P(Baselines, AllBaselines,
                         ::testing::Values("mimic", "boostish",
                                           "lightningish", "cxlshmish",
                                           "rallocish"));

// ---- Per-baseline property tests ----

TEST(CxlshmishProps, RejectsAllocationsOver1KiB)
{
    BaselineRig rig("cxlshmish");
    auto t = rig.thread();
    auto* shm = static_cast<baselines::Cxlshmish*>(rig.alloc.get());
    EXPECT_EQ(rig.alloc->allocate(*t, 2048), 0u);
    EXPECT_EQ(shm->unsupported_allocs(), 1u);
    EXPECT_EQ(rig.alloc->traits().max_alloc, 1u << 10);
    rig.pod->release_thread(std::move(t));
}

TEST(CxlshmishProps, RefcountKeepsObjectAliveAcrossFree)
{
    BaselineRig rig("cxlshmish");
    auto t = rig.thread();
    cxl::HeapOffset p = rig.alloc->allocate(*t, 64);
    std::byte* data = rig.alloc->pointer(*t, p, 64);
    data[0] = std::byte{9};
    rig.alloc->on_access(*t, p);   // reader pins
    rig.alloc->deallocate(*t, p);  // owner frees while pinned
    // Object must not have been recycled yet: same class allocation gets
    // different memory.
    cxl::HeapOffset q = rig.alloc->allocate(*t, 64);
    EXPECT_NE(q, p);
    EXPECT_EQ(rig.alloc->pointer(*t, p, 64)[0], std::byte{9});
    rig.alloc->after_access(*t, p); // unpin completes the free
    cxl::HeapOffset r = rig.alloc->allocate(*t, 64);
    EXPECT_EQ(r, p) << "block should be recycled after last unpin";
    rig.pod->release_thread(std::move(t));
}

TEST(LightningishProps, TrackingArrayDominatesMetadata)
{
    BaselineRig rig("lightningish");
    auto t = rig.thread();
    std::vector<cxl::HeapOffset> live;
    for (int i = 0; i < 10000; i++) {
        live.push_back(rig.alloc->allocate(*t, 32));
    }
    // An order of magnitude more metadata than boost-style headers: one
    // 64 B entry per allocation.
    EXPECT_GE(rig.alloc->metadata_overhead_bytes(), 10000u * 64);
    for (auto p : live) {
        rig.alloc->deallocate(*t, p);
    }
    rig.pod->release_thread(std::move(t));
}

TEST(LightningishProps, GcReclaimsDeadThreadsAllocations)
{
    BaselineRig rig("lightningish");
    auto victim = rig.thread();
    auto* lt = static_cast<baselines::Lightningish*>(rig.alloc.get());
    for (int i = 0; i < 100; i++) {
        ASSERT_NE(rig.alloc->allocate(*victim, 1024), 0u);
    }
    cxl::ThreadId vid = victim->tid();
    rig.pod->mark_crashed(std::move(victim));
    lt->recover_gc(vid);
    // The freed space is allocatable again: grab a big chunk that only
    // fits if the dead thread's 100 KiB came back.
    auto t = rig.thread();
    std::vector<cxl::HeapOffset> grab;
    for (int i = 0; i < 100; i++) {
        cxl::HeapOffset p = rig.alloc->allocate(*t, 1024);
        ASSERT_NE(p, 0u);
        grab.push_back(p);
    }
    rig.pod->release_thread(std::move(t));
}

TEST(RallocishProps, SharedPartialSlabsServeMultipleThreads)
{
    BaselineRig rig("rallocish");
    auto t1 = rig.thread();
    auto t2 = rig.thread();
    auto* ra = static_cast<baselines::Rallocish*>(rig.alloc.get());
    // Thread 1 creates a slab; thread 2's allocations of the same class
    // come from the SAME slab (shared partial list), not a new one.
    cxl::HeapOffset p1 = rig.alloc->allocate(*t1, 64);
    ASSERT_NE(p1, 0u);
    std::uint32_t slabs = ra->slabs_used(t1->mem());
    cxl::HeapOffset p2 = rig.alloc->allocate(*t2, 64);
    ASSERT_NE(p2, 0u);
    EXPECT_EQ(ra->slabs_used(t2->mem()), slabs)
        << "second thread should share the partial slab";
    rig.pod->release_thread(std::move(t1));
    rig.pod->release_thread(std::move(t2));
}

TEST(RallocishProps, GcRecoversAndLeakIsMeasurable)
{
    BaselineRig rig("rallocish");
    auto t = rig.thread();
    auto* ra = static_cast<baselines::Rallocish*>(rig.alloc.get());
    std::set<cxl::HeapOffset> live;
    std::vector<cxl::HeapOffset> lost;
    for (int i = 0; i < 1000; i++) {
        cxl::HeapOffset p = rig.alloc->allocate(*t, 64);
        ASSERT_NE(p, 0u);
        if (i % 2 == 0) {
            live.insert(p);
        } else {
            lost.push_back(p); // the "crashed thread's" allocations
        }
    }
    // Quiesce: live threads flush their caches before leak accounting/GC
    // (a crashed thread cannot, which is exactly ralloc's leak).
    ra->flush_thread_cache(*t);
    auto is_live = [&](cxl::HeapOffset p) { return live.count(p) > 0; };
    std::uint64_t leaked = ra->leaked_bytes(t->mem(), is_live);
    EXPECT_GE(leaked, 500u * 64) << "lost blocks must show up as leak";
    std::uint64_t reclaimed = ra->recover_gc(t->mem(), is_live);
    EXPECT_GE(reclaimed, leaked);
    EXPECT_EQ(ra->leaked_bytes(t->mem(), is_live), 0u);
    rig.pod->release_thread(std::move(t));
}

TEST(RallocishProps, WorksOverMcas)
{
    BaselineRig rig("rallocish", cxl::CoherenceMode::NoHwcc);
    auto t = rig.thread();
    for (int i = 0; i < 200; i++) {
        cxl::HeapOffset p = rig.alloc->allocate(*t, 64);
        ASSERT_NE(p, 0u);
        rig.alloc->deallocate(*t, p);
    }
    EXPECT_GT(t->mem().counters().mcas_ops, 0u);
    EXPECT_EQ(t->mem().counters().cas_ops, 0u);
    rig.pod->release_thread(std::move(t));
}

TEST(MimicProps, RecyclesEmptyPagesAcrossThreads)
{
    BaselineRig rig("mimic");
    auto t1 = rig.thread();
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 4096; i++) {
        ptrs.push_back(rig.alloc->allocate(*t1, 64));
    }
    std::uint64_t committed = rig.pod->device().committed_bytes();
    for (auto p : ptrs) {
        rig.alloc->deallocate(*t1, p);
    }
    // A different thread allocating the same class should reuse recycled
    // pages rather than bump new ones.
    auto t2 = rig.thread();
    for (int i = 0; i < 4096; i++) {
        ASSERT_NE(rig.alloc->allocate(*t2, 64), 0u);
    }
    EXPECT_LE(rig.pod->device().committed_bytes(), committed + (128 << 10));
    rig.pod->release_thread(std::move(t1));
    rig.pod->release_thread(std::move(t2));
}

TEST(BoostishProps, TraitsMatchTable1)
{
    BaselineRig rig("boostish");
    auto t = rig.alloc->traits();
    EXPECT_TRUE(t.cross_process);
    EXPECT_FALSE(t.mmap_support);
    EXPECT_FALSE(t.nonblocking_failure);
    EXPECT_EQ(t.recovery, baselines::AllocTraits::Recovery::None);
}

} // namespace
