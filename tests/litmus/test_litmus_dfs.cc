/// @file
/// DFS exhaustion proofs for the litmus catalog (slow label).
///
/// For every shape with at most two threads the bounded interleaving
/// space is small enough to enumerate completely: `ok && exhausted`
/// upgrades the fast suite's "never observed" to "unreachable under the
/// model". The four-thread IRIW shapes are explored under the same DFS
/// within a schedule budget (ok, possibly not exhausted). DFS must also
/// FIND the weakened-SB bug deterministically, without random luck.

#include <string>

#include <gtest/gtest.h>

#include "cxl/litmus/litmus.h"
#include "sched/explorer.h"

using cxl::litmus::check;
using cxl::litmus::disciplined_shapes;
using cxl::litmus::Shape;
using cxl::litmus::weak_knobs;
using cxl::litmus::World;

namespace {

sched::Options
dfs_opts(std::uint32_t schedules)
{
    sched::Options o;
    o.strategy = sched::Strategy::Dfs;
    o.schedules = schedules;
    return o;
}

TEST(LitmusDfs, TwoThreadShapesExhaustivelyUnreachable)
{
    for (const Shape& shape : disciplined_shapes()) {
        if (shape.threads > 2) {
            continue; // IRIW: budgeted, in the test below
        }
        sched::Result r = check(shape, dfs_opts(2'000'000));
        EXPECT_TRUE(r.ok) << shape.name << ": "
                          << (r.failure ? r.failure->message : "?");
        EXPECT_TRUE(r.exhausted)
            << shape.name << ": interleaving space not fully enumerated ("
            << r.schedules_run << " schedules)";
        EXPECT_EQ(r.truncated, 0u) << shape.name;
    }
}

TEST(LitmusDfs, IriwHoldsWithinDfsBudget)
{
    for (const Shape& shape : disciplined_shapes()) {
        if (shape.threads <= 2) {
            continue;
        }
        sched::Result r = check(shape, dfs_opts(100'000));
        EXPECT_TRUE(r.ok) << shape.name << ": "
                          << (r.failure ? r.failure->message : "?");
        EXPECT_GT(r.schedules_run, 1000u) << shape.name;
    }
}

TEST(LitmusDfs, DfsFindsWeakenedSbDeterministically)
{
    Shape s;
    s.name = "SB-skip-fence";
    s.threads = 2;
    s.knobs = weak_knobs(/*fifo=*/true);
    s.body = [](World& w, int t) {
        int mine = t == 0 ? 0 : 1;
        int other = t == 0 ? 1 : 0;
        w.st(t, mine, 1);
        w.flush_var(t, mine);
        w.refetch(t, other);
        w.reg(t, 0) = w.ld(t, other);
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.reg(0, 0) == 0 && w.reg(1, 0) == 0) {
            return "both writes invisible (skipped fences)";
        }
        return "";
    };
    sched::Result r = check(s, dfs_opts(2'000'000));
    ASSERT_FALSE(r.ok) << "DFS failed to find the seeded ordering bug";
    ASSERT_TRUE(r.failure.has_value());
    EXPECT_NE(r.failure->message.find("forbidden outcome"),
              std::string::npos);
}

} // namespace
