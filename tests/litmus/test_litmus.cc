/// @file
/// Fast litmus suite (tentpole, ROADMAP item 5).
///
/// Every disciplined shape is explored under Random and PCT schedules and
/// must never reach its forbidden outcome. The deliberately-weakened
/// variants — a skipped fence, a skipped data flush, a skipped reader
/// refetch, undertracked dirty lines — MUST reach theirs within a bounded
/// budget, and the failing schedule must replay bit-for-bit.
///
/// DFS exhaustion proofs live in test_litmus_dfs.cc (slow label).

#include <string>

#include <gtest/gtest.h>

#include "common/test_faults.h"
#include "cxl/litmus/litmus.h"
#include "sched/explorer.h"

using cxl::CacheKnobs;
using cxl::litmus::check;
using cxl::litmus::disciplined_shapes;
using cxl::litmus::factory;
using cxl::litmus::Shape;
using cxl::litmus::weak_knobs;
using cxl::litmus::World;

namespace {

sched::Options
random_opts(std::uint64_t seed, int schedules = 300)
{
    sched::Options o;
    o.strategy = sched::Strategy::Random;
    o.seed = seed;
    o.schedules = schedules;
    return o;
}

sched::Options
pct_opts(std::uint64_t seed, int schedules = 300)
{
    sched::Options o;
    o.strategy = sched::Strategy::Pct;
    o.seed = seed;
    o.schedules = schedules;
    o.pct_depth = 3;
    return o;
}

/// A weakened shape must fail within the budget AND the recorded failure
/// must reproduce bit-for-bit under Strategy::Replay.
void
expect_caught_and_replayed(const Shape& shape, const sched::Options& opts)
{
    sched::Result r = check(shape, opts);
    ASSERT_FALSE(r.ok) << shape.name << ": weakened variant was NOT caught in "
                       << opts.schedules << " schedules";
    ASSERT_TRUE(r.failure.has_value());
    EXPECT_NE(r.failure->message.find("forbidden outcome"), std::string::npos)
        << shape.name << ": unexpected failure: " << r.failure->message;

    sched::Explorer replayer(opts);
    sched::Result r1 = replayer.replay(*r.failure, factory(shape));
    sched::Result r2 = replayer.replay(*r.failure, factory(shape));
    ASSERT_FALSE(r1.ok) << shape.name << ": replay did not reproduce";
    ASSERT_FALSE(r2.ok);
    ASSERT_TRUE(r1.failure.has_value());
    EXPECT_EQ(r1.failure->message, r.failure->message);
    EXPECT_EQ(r1.failure->trace, r.failure->trace);
    EXPECT_EQ(r1.fingerprint, r2.fingerprint)
        << shape.name << ": replay fingerprint diverged (not bit-for-bit)";
}

// --- Disciplined shapes: forbidden outcomes never reached. ---------------

TEST(Litmus, DisciplinedShapesHoldUnderRandom)
{
    for (const Shape& shape : disciplined_shapes()) {
        sched::Result r = check(shape, random_opts(0xCAFE + 1));
        EXPECT_TRUE(r.ok) << shape.name << ": "
                          << (r.failure ? r.failure->message : "?");
        EXPECT_GT(r.schedules_run, 0u);
    }
}

TEST(Litmus, DisciplinedShapesHoldUnderPct)
{
    for (const Shape& shape : disciplined_shapes()) {
        sched::Result r = check(shape, pct_opts(0xBEEF + 2));
        EXPECT_TRUE(r.ok) << shape.name << ": "
                          << (r.failure ? r.failure->message : "?");
    }
}

TEST(Litmus, CatalogCoversRequiredShapes)
{
    // The acceptance bar: >= 16 shapes, covering every classic name.
    auto shapes = disciplined_shapes();
    EXPECT_GE(shapes.size(), 16u);
    for (const char* want :
         {"SB", "LB", "MP", "MpCoalesced", "IRIW", "CoRR", "CoWW", "R+",
          "S+", "2+2W", "SwccPublishDirtyOnly"}) {
        bool found = false;
        for (const Shape& s : shapes) {
            if (s.name.rfind(want, 0) == 0) {
                found = true;
            }
        }
        EXPECT_TRUE(found) << "missing litmus shape " << want;
    }
}

// --- Weakened variants: forbidden outcome reached, caught, replayed. -----

/// SB with the fences removed under store-buffer knobs: both stores can
/// sit in their buffers across both loads, so r0 == r1 == 0 is reachable.
TEST(Litmus, WeakenedSbSkipFenceCaught)
{
    Shape s;
    s.name = "SB-skip-fence";
    s.threads = 2;
    s.knobs = weak_knobs(/*fifo=*/true);
    s.body = [](World& w, int t) {
        int mine = t == 0 ? 0 : 1;
        int other = t == 0 ? 1 : 0;
        w.st(t, mine, 1);
        w.flush_var(t, mine); // clwb queues the line; no sfence completes it
        w.refetch(t, other);
        w.reg(t, 0) = w.ld(t, other);
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.reg(0, 0) == 0 && w.reg(1, 0) == 0) {
            return "both writes invisible (skipped fences)";
        }
        return "";
    };
    expect_caught_and_replayed(s, random_opts(11, 400));
}

/// MP with the DATA flush skipped: the flag can become durable while the
/// data is still only in the writer's cache.
TEST(Litmus, WeakenedMpSkipDataFlushCaught)
{
    Shape s;
    s.name = "MP-skip-data-flush";
    s.threads = 2;
    s.knobs = CacheKnobs{}; // even the strong model catches this one
    s.body = [](World& w, int t) {
        if (t == 0) {
            w.st(t, 0, 1); // data, never flushed
            w.st(t, 1, 1);
            w.flush_var(t, 1);
            w.fence(t);
        } else {
            w.refetch(t, 1);
            w.reg(t, 0) = w.ld(t, 1);
            w.refetch(t, 0);
            w.reg(t, 1) = w.ld(t, 0);
        }
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.reg(1, 0) == 1 && w.reg(1, 1) == 0) {
            return "flag durable before data (skipped data flush)";
        }
        return "";
    };
    expect_caught_and_replayed(s, random_opts(12, 400));
}

/// MP where the reader has a WARM stale copy of the data line and skips
/// the reader-side refetch: the protocol's flush-before-read rule is what
/// makes MP hold, and dropping it is observable.
TEST(Litmus, WeakenedMpWarmSkipRefetchCaught)
{
    Shape s;
    s.name = "MP-warm-skip-refetch";
    s.threads = 2;
    s.knobs = CacheKnobs{};
    s.body = [](World& w, int t) {
        if (t == 0) {
            w.reg(t, 3) = w.ld(t, 0); // warm a stale copy of x (== 0)
            w.st(t, 1, 1);            // tell the writer to go
            w.flush_var(t, 1);
            w.fence(t);
            // Wait until the writer published the flag.
            w.refetch(t, 2);
            for (int i = 0; i < 64 && w.ld(t, 2) != 1; i++) {
                w.refetch(t, 2);
            }
            w.reg(t, 0) = w.ld(t, 2);
            // BUG: no refetch(t, 0) here — reads the warm stale line.
            w.reg(t, 1) = w.ld(t, 0);
        } else {
            w.refetch(t, 1);
            for (int i = 0; i < 64 && w.ld(t, 1) != 1; i++) {
                w.refetch(t, 1);
            }
            if (w.ld(t, 1) == 1) {
                w.st(t, 0, 1);
                w.flush_var(t, 0);
                w.fence(t);
                w.st(t, 2, 1);
                w.flush_var(t, 2);
                w.fence(t);
            }
        }
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.reg(0, 0) == 1 && w.reg(0, 1) == 0) {
            return "stale warm line read after flag (skipped refetch)";
        }
        return "";
    };
    expect_caught_and_replayed(s, random_opts(13, 400));
}

/// The allocator publication pattern with dirty-line tracking disabled:
/// flush_dirty under-flushes (believes nothing is dirty), so a published
/// "descriptor" can be observed stale. Guards the DirtyLineSet itself.
TEST(Litmus, WeakenedPublishUndertrackedCaught)
{
    cxlcommon::test_faults::reset();
    cxlcommon::test_faults::skip_dirty_line_tracking = true;

    Shape s;
    s.name = "publish-undertracked";
    s.threads = 2;
    s.knobs = CacheKnobs{};
    s.body = [](World& w, int t) {
        cxl::HeapOffset line0 = World::kDescBase;
        if (t == 0) {
            w.mem(t).store<std::uint64_t>(line0, 1);
            // Tracking is off, so this flushes nothing.
            w.mem(t).flush_dirty(World::kDescBase, World::kDescLen);
            w.fence(t);
            w.mem(t).atomic_store64(World::kFlag, 1);
        } else {
            w.reg(t, 0) = w.mem(t).atomic_load64(World::kFlag);
            if (w.reg(t, 0) == 1) {
                w.mem(t).flush(line0, 8);
                w.reg(t, 1) = w.mem(t).load<std::uint64_t>(line0);
            }
        }
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.reg(1, 0) == 1 && w.reg(1, 1) != 1) {
            return "published descriptor stale (dirty lines untracked)";
        }
        return "";
    };
    expect_caught_and_replayed(s, random_opts(14, 400));
    cxlcommon::test_faults::reset();
}

} // namespace
