#include "common/zipfian.h"

#include <gtest/gtest.h>
#include <vector>

namespace {

using cxlcommon::ScrambledZipfian;
using cxlcommon::Xoshiro;
using cxlcommon::Zipfian;

TEST(Zipfian, SamplesWithinRange)
{
    Zipfian z(1000, 0.99);
    Xoshiro rng(3);
    for (int i = 0; i < 10000; i++) {
        EXPECT_LT(z.sample(rng), 1000u);
    }
}

TEST(Zipfian, RankZeroIsHottest)
{
    Zipfian z(10000, 0.99);
    Xoshiro rng(5);
    std::vector<std::uint64_t> counts(10000, 0);
    constexpr int kN = 200000;
    for (int i = 0; i < kN; i++) {
        counts[z.sample(rng)]++;
    }
    // Rank 0 should dominate every other rank.
    for (std::size_t r = 1; r < 100; r++) {
        EXPECT_GE(counts[0], counts[r]);
    }
    // And take a visible share of total mass (zipf 0.99 on 10k keys gives
    // the head roughly 10% of samples).
    EXPECT_GT(counts[0], kN / 20);
}

TEST(Zipfian, SkewIncreasesHeadMass)
{
    Xoshiro rng1(7);
    Xoshiro rng2(7);
    Zipfian mild(1000, 0.5);
    Zipfian heavy(1000, 0.99);
    int head_mild = 0;
    int head_heavy = 0;
    for (int i = 0; i < 50000; i++) {
        head_mild += mild.sample(rng1) < 10;
        head_heavy += heavy.sample(rng2) < 10;
    }
    EXPECT_GT(head_heavy, head_mild);
}

TEST(ScrambledZipfian, SpreadsHotKeys)
{
    ScrambledZipfian z(1000);
    Xoshiro rng(13);
    std::vector<std::uint64_t> counts(1000, 0);
    for (int i = 0; i < 100000; i++) {
        std::uint64_t k = z.sample(rng);
        ASSERT_LT(k, 1000u);
        counts[k]++;
    }
    // The hottest key should not be key 0 deterministically adjacent to
    // key 1; just confirm hot mass exists somewhere and range holds.
    std::uint64_t max = 0;
    for (auto c : counts) {
        max = std::max(max, c);
    }
    EXPECT_GT(max, 1000u); // a hot key exists (uniform would be ~100)
}

TEST(Zipfian, LargePopulationConstructsQuickly)
{
    // The zeta tail approximation must keep this cheap.
    Zipfian z(100'000'000ULL, 0.99);
    Xoshiro rng(1);
    for (int i = 0; i < 1000; i++) {
        EXPECT_LT(z.sample(rng), 100'000'000ULL);
    }
}

TEST(Zipfian, ThetaOneProducesFiniteSkewedSamples)
{
    // theta == 1.0 used to divide by zero in both the zeta tail and
    // alpha = 1/(1-theta), yielding inf/NaN and degenerate samples.
    Zipfian z(100'000, 1.0);
    Xoshiro rng(9);
    std::vector<std::uint64_t> counts(100'000, 0);
    for (int i = 0; i < 100'000; i++) {
        std::uint64_t k = z.sample(rng);
        ASSERT_LT(k, 100'000u);
        counts[k]++;
    }
    // Harder skew than theta=0.5: rank 0 dominates and holds real mass.
    for (std::size_t r = 1; r < 100; r++) {
        EXPECT_GE(counts[0], counts[r]);
    }
    EXPECT_GT(counts[0], 1'000u);
}

TEST(Zipfian, ThetaOneHeadHeavierThanMildSkew)
{
    Xoshiro rng1(21);
    Xoshiro rng2(21);
    Zipfian mild(10'000, 0.5);
    Zipfian unit(10'000, 1.0);
    int head_mild = 0;
    int head_unit = 0;
    for (int i = 0; i < 50'000; i++) {
        head_mild += mild.sample(rng1) < 10;
        head_unit += unit.sample(rng2) < 10;
    }
    EXPECT_GT(head_unit, head_mild);
}

TEST(Zipfian, ThetaOneLargePopulationIsFinite)
{
    // The log-form zeta tail must stay finite where the power form's
    // 1/(1-theta) factor blew up.
    Zipfian z(100'000'000ULL, 1.0);
    Xoshiro rng(2);
    for (int i = 0; i < 1000; i++) {
        EXPECT_LT(z.sample(rng), 100'000'000ULL);
    }
}

TEST(Zipfian, RejectsThetaOutsideYcsbRange)
{
    EXPECT_DEATH(Zipfian(1000, 0.0), "theta outside");
    EXPECT_DEATH(Zipfian(1000, 1.5), "theta outside");
    EXPECT_DEATH(Zipfian(1000, -0.5), "theta outside");
}

} // namespace
