#include "common/stats.h"

#include <gtest/gtest.h>

namespace {

using cxlcommon::LatencyRecorder;
using cxlcommon::RunningStat;

TEST(LatencyRecorder, PercentilesOfKnownDistribution)
{
    LatencyRecorder rec;
    for (std::uint64_t i = 1; i <= 100; i++) {
        rec.record(i * 10);
    }
    EXPECT_EQ(rec.count(), 100u);
    EXPECT_NEAR(static_cast<double>(rec.percentile(50)), 500, 10);
    EXPECT_NEAR(static_cast<double>(rec.percentile(99)), 990, 10);
    EXPECT_EQ(rec.percentile(0), 10u);
    EXPECT_EQ(rec.percentile(100), 1000u);
}

TEST(LatencyRecorder, PercentileInterpolatesBetweenSamples)
{
    LatencyRecorder rec;
    for (std::uint64_t v : {10u, 20u, 30u, 40u}) {
        rec.record(v);
    }
    // rank(p50) = 0.5 * 3 = 1.5 -> halfway between 20 and 30.
    EXPECT_EQ(rec.percentile(50), 25u);
    // rank(p25) = 0.75 -> 10 + 0.75 * 10 = 17.5, rounds to 18.
    EXPECT_EQ(rec.percentile(25), 18u);
    // rank(p99) = 2.97 -> 30 + 0.97 * 10 = 39.7, rounds to 40.
    EXPECT_EQ(rec.percentile(99), 40u);
    EXPECT_EQ(rec.percentile(0), 10u);
    EXPECT_EQ(rec.percentile(100), 40u);
}

TEST(LatencyRecorder, PercentileNoLongerFloorTruncates)
{
    // Two samples: the median is their midpoint, not whichever sample the
    // truncated index used to land on.
    LatencyRecorder rec;
    rec.record(0);
    rec.record(100);
    EXPECT_EQ(rec.percentile(50), 50u);
}

TEST(LatencyRecorder, RecordAfterPercentileResorts)
{
    LatencyRecorder rec;
    rec.record(100);
    EXPECT_EQ(rec.percentile(50), 100u);
    rec.record(1);
    EXPECT_EQ(rec.percentile(0), 1u);
}

TEST(LatencyRecorder, MergeCombinesSamples)
{
    LatencyRecorder a;
    LatencyRecorder b;
    a.record(1);
    b.record(3);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.percentile(100), 3u);
}

TEST(RunningStat, MeanAndStddev)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.add(x);
    }
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(RunningStat, SingleSampleHasZeroStddev)
{
    RunningStat s;
    s.add(42);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Format, Bytes)
{
    EXPECT_EQ(cxlcommon::format_bytes(512), "512.00 B");
    EXPECT_EQ(cxlcommon::format_bytes(1536), "1.50 KiB");
    EXPECT_EQ(cxlcommon::format_bytes(3ULL << 30), "3.00 GiB");
}

TEST(Format, Rate)
{
    EXPECT_EQ(cxlcommon::format_rate(1500.0), "1.50K ops/s");
    EXPECT_EQ(cxlcommon::format_rate(2.5e6), "2.50M ops/s");
}

} // namespace
