#include "common/offset_ptr.h"

#include <cstring>
#include <gtest/gtest.h>
#include <vector>

namespace {

using cxlcommon::OffsetPtr;

struct Node {
    int value;
    OffsetPtr<Node> next;
};

TEST(OffsetPtr, NullByDefault)
{
    OffsetPtr<int> p;
    EXPECT_EQ(p.get(), nullptr);
    EXPECT_FALSE(p);
}

TEST(OffsetPtr, ZeroFilledIsNull)
{
    // PC-S requirement: zero-initialized shared memory decodes as null.
    alignas(OffsetPtr<int>) unsigned char raw[sizeof(OffsetPtr<int>)] = {};
    auto* p = reinterpret_cast<OffsetPtr<int>*>(raw);
    EXPECT_EQ(p->get(), nullptr);
}

TEST(OffsetPtr, PointsWithinSameBuffer)
{
    std::vector<unsigned char> heap(4096);
    auto* a = reinterpret_cast<Node*>(heap.data());
    auto* b = reinterpret_cast<Node*>(heap.data() + 512);
    a->value = 1;
    b->value = 2;
    a->next = b;
    EXPECT_EQ(a->next->value, 2);
}

TEST(OffsetPtr, SurvivesBufferRelocation)
{
    // The heart of offset pointers: a linked structure memcpy'd to a
    // different base address (a process mapping the heap elsewhere) still
    // resolves, because distances are self-relative.
    std::vector<unsigned char> original(4096);
    auto* a = reinterpret_cast<Node*>(original.data());
    auto* b = reinterpret_cast<Node*>(original.data() + 256);
    a->value = 10;
    b->value = 20;
    a->next = b;
    b->next = nullptr;

    std::vector<unsigned char> relocated(4096);
    std::memcpy(relocated.data(), original.data(), original.size());
    auto* a2 = reinterpret_cast<Node*>(relocated.data());
    ASSERT_NE(a2->next.get(), nullptr);
    EXPECT_EQ(a2->next->value, 20);
    EXPECT_EQ(a2->next.get(),
              reinterpret_cast<Node*>(relocated.data() + 256));
    EXPECT_EQ(a2->next->next.get(), nullptr);
}

TEST(OffsetPtr, CopyRebindsToSameTarget)
{
    std::vector<unsigned char> heap(1024);
    auto* n = reinterpret_cast<Node*>(heap.data());
    n->value = 7;
    OffsetPtr<Node> p;
    p = n;
    OffsetPtr<Node> q(p); // q lives at a different address than p
    EXPECT_EQ(q.get(), n);
    OffsetPtr<Node> r;
    r = p;
    EXPECT_EQ(r.get(), n);
}

TEST(OffsetPtr, AssignNullptrClears)
{
    int x = 5;
    OffsetPtr<int> p;
    p = &x;
    EXPECT_TRUE(p);
    p = nullptr;
    EXPECT_FALSE(p);
}

} // namespace
