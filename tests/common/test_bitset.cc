#include "common/bitset.h"

#include <gtest/gtest.h>

namespace {

using cxlcommon::BlockBitset;

TEST(BlockBitset, FillSetsExactlyCount)
{
    BlockBitset<4096> bits;
    bits.fill(100);
    EXPECT_EQ(bits.count(), 100u);
    EXPECT_TRUE(bits.test(0));
    EXPECT_TRUE(bits.test(99));
    EXPECT_FALSE(bits.test(100));
    EXPECT_FALSE(bits.test(4095));
}

TEST(BlockBitset, FillFullCapacity)
{
    BlockBitset<4096> bits;
    bits.fill(4096);
    EXPECT_EQ(bits.count(), 4096u);
    EXPECT_TRUE(bits.test(4095));
}

TEST(BlockBitset, FillWordBoundary)
{
    BlockBitset<256> bits;
    bits.fill(64);
    EXPECT_EQ(bits.count(), 64u);
    EXPECT_TRUE(bits.test(63));
    EXPECT_FALSE(bits.test(64));
}

TEST(BlockBitset, PopFirstReturnsAscendingIndices)
{
    BlockBitset<128> bits;
    bits.fill(3);
    EXPECT_EQ(bits.pop_first(), 0u);
    EXPECT_EQ(bits.pop_first(), 1u);
    EXPECT_EQ(bits.pop_first(), 2u);
    EXPECT_EQ(bits.pop_first(), 128u); // empty sentinel
}

TEST(BlockBitset, PopFirstSkipsEmptyWords)
{
    BlockBitset<256> bits;
    bits.clear_all();
    bits.set(200);
    EXPECT_EQ(bits.pop_first(), 200u);
    EXPECT_TRUE(bits.none());
}

TEST(BlockBitset, SetResetRoundTrip)
{
    BlockBitset<64> bits;
    bits.clear_all();
    bits.set(5);
    EXPECT_TRUE(bits.test(5));
    bits.reset(5);
    EXPECT_FALSE(bits.test(5));
    EXPECT_TRUE(bits.none());
}

TEST(BlockBitset, ZeroFilledMemoryIsEmpty)
{
    // Zero-is-valid requirement: a zeroed bitset must decode as "no blocks
    // free".
    alignas(BlockBitset<128>) unsigned char raw[sizeof(BlockBitset<128>)] = {};
    auto* bits = reinterpret_cast<BlockBitset<128>*>(raw);
    EXPECT_TRUE(bits->none());
    EXPECT_EQ(bits->pop_first(), 128u);
}

class BitsetFillParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetFillParam, CountMatchesFill)
{
    BlockBitset<4096> bits;
    bits.fill(GetParam());
    EXPECT_EQ(bits.count(), GetParam());
    std::size_t popped = 0;
    while (bits.pop_first() != 4096u) {
        popped++;
    }
    EXPECT_EQ(popped, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitsetFillParam,
                         ::testing::Values(0, 1, 63, 64, 65, 127, 1000, 4095,
                                           4096));

} // namespace
