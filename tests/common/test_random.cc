#include "common/random.h"

#include <gtest/gtest.h>

namespace {

using cxlcommon::Xoshiro;

TEST(Xoshiro, DeterministicForSeed)
{
    Xoshiro a(42);
    Xoshiro b(42);
    for (int i = 0; i < 100; i++) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Xoshiro, DifferentSeedsDiverge)
{
    Xoshiro a(1);
    Xoshiro b(2);
    int same = 0;
    for (int i = 0; i < 64; i++) {
        if (a.next() == b.next()) {
            same++;
        }
    }
    EXPECT_LT(same, 2);
}

TEST(Xoshiro, NextBelowInRange)
{
    Xoshiro rng(7);
    for (int i = 0; i < 10000; i++) {
        EXPECT_LT(rng.next_below(17), 17u);
    }
}

TEST(Xoshiro, NextRangeInclusive)
{
    Xoshiro rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 20000; i++) {
        std::uint64_t v = rng.next_range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, DoubleInUnitInterval)
{
    Xoshiro rng(11);
    double sum = 0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; i++) {
        double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        sum += d;
    }
    // Mean of U[0,1) should be close to 0.5.
    EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Splitmix, AdvancesState)
{
    std::uint64_t s = 0;
    std::uint64_t a = cxlcommon::splitmix64(s);
    std::uint64_t b = cxlcommon::splitmix64(s);
    EXPECT_NE(a, b);
    EXPECT_NE(s, 0u);
}

} // namespace
