#include "common/index.h"

#include <gtest/gtest.h>

namespace {

using cxlcommon::OptIndex;

TEST(OptIndex, DefaultIsNone)
{
    OptIndex idx;
    EXPECT_TRUE(idx.is_none());
    EXPECT_FALSE(idx.is_some());
    EXPECT_EQ(idx.raw(), 0u);
}

TEST(OptIndex, ZeroIndexIsRepresentable)
{
    // The whole point of the biased encoding: slab index 0 must be
    // distinguishable from "no slab".
    OptIndex idx = OptIndex::some(0);
    EXPECT_TRUE(idx.is_some());
    EXPECT_EQ(idx.get(), 0u);
    EXPECT_EQ(idx.raw(), 1u);
}

TEST(OptIndex, RoundTripThroughRaw)
{
    OptIndex idx = OptIndex::some(41);
    OptIndex back = OptIndex::from_raw(idx.raw());
    EXPECT_EQ(back, idx);
    EXPECT_EQ(back.get(), 41u);
}

TEST(OptIndex, NoneEqualsDefault)
{
    EXPECT_EQ(OptIndex::none(), OptIndex());
    EXPECT_NE(OptIndex::some(0), OptIndex::none());
}

} // namespace
