/// The key-value store integration over EVERY allocator (the Fig. 8
/// configuration at test scale): correctness must be allocator-independent.

#include <gtest/gtest.h>
#include <map>
#include <memory>
#include <thread>

#include "harness/bundles.h"
#include "common/random.h"
#include "kv/kv_store.h"
#include "workload/kv_workload.h"

namespace {

class KvOverAllocator : public ::testing::TestWithParam<const char*> {};

TEST_P(KvOverAllocator, YcsbAMixCorrectness)
{
    bench::Geometry geom;
    geom.small_slabs = 1024;
    geom.large_slabs = 16;
    geom.huge_regions = 4;
    geom.extra_bytes = kv::HashTable::footprint(4096);
    bench::Bundle b = bench::make_bundle(GetParam(), geom);
    kv::KvStore store(*b.pod, b.extra_base, 4096, b.alloc.get());

    auto ctx = b.thread();
    workload::KvOpStream stream(workload::ycsb_a(), 5);
    std::vector<char> value(960, 'x');
    std::vector<char> out(1024);
    // Oracle: live copies per key (duplicate inserts shadow; remove drops
    // the newest copy).
    std::map<std::uint64_t, int> copies;
    for (int i = 0; i < 8000; i++) {
        workload::KvOp op = stream.next();
        switch (op.type) {
          case workload::OpType::Insert:
          case workload::OpType::Update:
            ASSERT_TRUE(store.insert(*ctx, op.key, op.klen, value.data(),
                                     op.vlen));
            copies[op.key]++;
            break;
          case workload::OpType::Remove: {
            bool removed = store.remove(*ctx, op.key, op.klen);
            EXPECT_EQ(removed, copies[op.key] > 0) << "remove disagrees";
            if (removed) {
                copies[op.key]--;
            }
            break;
          }
          case workload::OpType::Read: {
            bool hit =
                store.get(*ctx, op.key, op.klen, out.data(), out.size());
            EXPECT_EQ(hit, copies[op.key] > 0)
                << "lookup disagrees with oracle for key " << op.key;
            break;
          }
        }
    }
    store.table().clear(*ctx);
    b.pod->release_thread(std::move(ctx));
}

TEST_P(KvOverAllocator, TwoThreadMix)
{
    bench::Geometry geom;
    geom.small_slabs = 1024;
    geom.large_slabs = 16;
    geom.huge_regions = 4;
    geom.extra_bytes = kv::HashTable::footprint(4096);
    bench::Bundle b = bench::make_bundle(GetParam(), geom);
    kv::KvStore store(*b.pod, b.extra_base, 4096, b.alloc.get());
    std::vector<std::thread> workers;
    for (int w = 0; w < 2; w++) {
        workers.emplace_back([&, w] {
            auto ctx = b.thread();
            workload::KvOpStream stream(workload::ycsb_a(), 100 + w);
            std::vector<char> value(960, 'y');
            std::vector<char> out(1024);
            for (int i = 0; i < 4000; i++) {
                workload::KvOp op = stream.next();
                if (op.type == workload::OpType::Insert) {
                    store.insert(*ctx, op.key, op.klen, value.data(),
                                 op.vlen);
                } else if (op.type == workload::OpType::Remove) {
                    store.remove(*ctx, op.key, op.klen);
                } else {
                    store.get(*ctx, op.key, op.klen, out.data(), out.size());
                }
            }
            b.pod->release_thread(std::move(ctx));
        });
    }
    for (auto& w : workers) {
        w.join();
    }
    auto probe = b.thread();
    store.table().clear(*probe);
    b.pod->release_thread(std::move(probe));
}

INSTANTIATE_TEST_SUITE_P(Allocators, KvOverAllocator,
                         ::testing::Values("cxlalloc",
                                           "cxlalloc-nonrecoverable",
                                           "mimalloc-like", "ralloc-like",
                                           "cxl-shm-like", "boost-like",
                                           "lightning-like"));

} // namespace
