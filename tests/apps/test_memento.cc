#include "memento/recoverable_map.h"
#include "memento/recoverable_queue.h"

#include <gtest/gtest.h>

#include "baselines/cxlalloc_adapter.h"
#include "../cxlalloc/fixture.h"

namespace {

using memento::RecoverableMap;
using memento::RecoverableQueue;
using pod::ThreadCrashed;

struct MementoRig {
    MementoRig() : rig(options()), adapter(&rig.alloc)
    {
        // Queue + map metadata and the bucket array live in extra device
        // space past the heap. The queue's detectable CAS needs coherent
        // words there, so the rig runs under FullHwcc — matching the
        // paper, whose Fig. 7 experiment runs on regular DRAM.
        cxl::HeapOffset at = rig.alloc.layout().end();
        queue = std::make_unique<RecoverableQueue>(rig.pod, at, &adapter);
        at += RecoverableQueue::meta_size();
        cxl::HeapOffset mmeta = at;
        at += RecoverableMap::meta_size();
        map = std::make_unique<RecoverableMap>(rig.pod, mmeta, at, kBuckets,
                                               &adapter);
    }

    static constexpr std::uint64_t kBuckets = 512;

    static cxltest::RigOptions
    options()
    {
        cxltest::RigOptions opt;
        opt.mode = cxl::CoherenceMode::FullHwcc;
        opt.extra_device_bytes = RecoverableQueue::meta_size() +
                                 RecoverableMap::meta_size() +
                                 kv::HashTable::footprint(kBuckets);
        return opt;
    }

    /// Crashes ctx at app point @p point while running @p op, then adopts
    /// and fully recovers (allocator first, then the structure).
    template <typename F>
    bool
    crash_and_recover(std::unique_ptr<pod::ThreadContext>& ctx, F&& op,
                      int point, bool use_map)
    {
        ctx->arm_crash(point, 1);
        bool crashed = false;
        try {
            op(*ctx);
        } catch (const ThreadCrashed&) {
            crashed = true;
        }
        ctx->disarm_crash();
        if (!crashed) {
            return false;
        }
        cxl::ThreadId tid = ctx->tid();
        rig.pod.mark_crashed(std::move(ctx));
        ctx = rig.pod.adopt_thread(rig.process, tid);
        rig.alloc.recover(*ctx);
        if (use_map) {
            map->recover(*ctx);
        } else {
            queue->recover(*ctx);
        }
        return true;
    }

    cxltest::Rig rig;
    baselines::CxlallocAdapter adapter;
    std::unique_ptr<RecoverableQueue> queue;
    std::unique_ptr<RecoverableMap> map;
};

TEST(MementoQueue, PushPopRoundTrip)
{
    MementoRig m;
    auto t = m.rig.thread();
    for (int i = 0; i < 100; i++) {
        ASSERT_TRUE(m.queue->push(*t, 64 + i, 0xab));
    }
    EXPECT_EQ(m.queue->approximate_size(*t), 100u);
    for (int i = 0; i < 100; i++) {
        ASSERT_TRUE(m.queue->pop(*t));
    }
    EXPECT_FALSE(m.queue->pop(*t));
    m.rig.alloc.check_invariants(t->mem());
    m.rig.pod.release_thread(std::move(t));
}

class QueueCrash : public ::testing::TestWithParam<int> {};

TEST_P(QueueCrash, PushCrashNeverLosesOrLeaksObjects)
{
    MementoRig m;
    auto t = m.rig.thread();
    for (int i = 0; i < 10; i++) {
        ASSERT_TRUE(m.queue->push(*t, 128, 1));
    }
    bool crashed = m.crash_and_recover(
        t, [&](pod::ThreadContext& c) { m.queue->push(c, 128, 2); },
        GetParam(), /*use_map=*/false);
    std::uint64_t size = m.queue->approximate_size(*t);
    if (crashed && GetParam() == memento::qcrash::kAfterAlloc) {
        // Crash before the app record: the allocator-level leak of one
        // block is the documented App-recovery boundary; the queue itself
        // is unchanged.
        EXPECT_EQ(size, 10u);
    } else {
        // Record written: recovery completes the push exactly once.
        EXPECT_EQ(size, 11u);
    }
    // Everything still pops and frees cleanly.
    while (m.queue->pop(*t)) {
    }
    m.rig.alloc.check_invariants(t->mem());
    m.rig.pod.release_thread(std::move(t));
}

INSTANTIATE_TEST_SUITE_P(Points, QueueCrash,
                         ::testing::Values(memento::qcrash::kAfterAlloc,
                                           memento::qcrash::kAfterRecord,
                                           memento::qcrash::kAfterLink));

TEST(MementoQueue, PopCrashFreesUnlinkedNode)
{
    MementoRig m;
    auto t = m.rig.thread();
    for (int i = 0; i < 5; i++) {
        ASSERT_TRUE(m.queue->push(*t, 256, 3));
    }
    bool crashed = m.crash_and_recover(
        t, [&](pod::ThreadContext& c) { m.queue->pop(c); },
        memento::qcrash::kAfterUnlink, /*use_map=*/false);
    EXPECT_TRUE(crashed);
    EXPECT_EQ(m.queue->approximate_size(*t), 4u);
    // The unlinked node was freed by recovery: repeated crash-free cycles
    // must not exhaust the heap (checked implicitly by churn below).
    for (int i = 0; i < 2000; i++) {
        ASSERT_TRUE(m.queue->push(*t, 256, 4));
        ASSERT_TRUE(m.queue->pop(*t));
    }
    m.rig.alloc.check_invariants(t->mem());
    m.rig.pod.release_thread(std::move(t));
}

TEST(MementoMap, InsertRemoveContains)
{
    MementoRig m;
    auto t = m.rig.thread();
    for (std::uint64_t id = 0; id < 200; id++) {
        ASSERT_TRUE(m.map->insert(*t, id, 64 + id % 512));
    }
    for (std::uint64_t id = 0; id < 200; id++) {
        EXPECT_TRUE(m.map->contains(*t, id));
    }
    for (std::uint64_t id = 0; id < 200; id++) {
        EXPECT_TRUE(m.map->remove(*t, id));
    }
    EXPECT_FALSE(m.map->contains(*t, 0));
    m.map->clear(*t);
    m.rig.pod.release_thread(std::move(t));
}

class MapCrash : public ::testing::TestWithParam<int> {};

TEST_P(MapCrash, InsertCrashRecoversWithoutLoss)
{
    MementoRig m;
    auto t = m.rig.thread();
    for (std::uint64_t id = 0; id < 10; id++) {
        ASSERT_TRUE(m.map->insert(*t, id, 64));
    }
    bool crashed = m.crash_and_recover(
        t, [&](pod::ThreadContext& c) { m.map->insert(c, 99, 64); },
        GetParam(), /*use_map=*/true);
    ASSERT_TRUE(crashed);
    if (GetParam() != memento::mcrash::kMapAfterAlloc) {
        // Once the record exists, the insert must complete exactly once.
        EXPECT_TRUE(m.map->contains(*t, 99));
    }
    for (std::uint64_t id = 0; id < 10; id++) {
        EXPECT_TRUE(m.map->contains(*t, id));
    }
    m.map->clear(*t);
    m.rig.alloc.check_invariants(t->mem());
    m.rig.pod.release_thread(std::move(t));
}

INSTANTIATE_TEST_SUITE_P(Points, MapCrash,
                         ::testing::Values(memento::mcrash::kMapAfterAlloc,
                                           memento::mcrash::kMapAfterRecord,
                                           memento::mcrash::kMapAfterLink));

TEST(MementoQueue, GcRootsWalkMatchesContents)
{
    MementoRig m;
    auto t = m.rig.thread();
    for (int i = 0; i < 25; i++) {
        ASSERT_TRUE(m.queue->push(*t, 64, 1));
    }
    int walked = 0;
    m.queue->for_each(*t, [&](cxl::HeapOffset) { walked++; });
    EXPECT_EQ(walked, 25);
    m.queue->drain(*t);
    m.rig.pod.release_thread(std::move(t));
}

} // namespace
