#include "kv/hash_table.h"

#include <gtest/gtest.h>
#include <set>
#include <thread>

#include "baselines/cxlalloc_adapter.h"
#include "common/random.h"
#include "kv/kv_store.h"
#include "../cxlalloc/fixture.h"

namespace {

using cxltest::Rig;

/// A rig with a hash table whose bucket array lives in the huge region
/// (carved directly; not an allocator allocation).
struct KvRig {
    KvRig() : rig(options()), adapter(&rig.alloc)
    {
        // Steal the tail of the device for buckets (outside heap data).
        cxl::HeapOffset buckets =
            rig.pod.device().size() - kv::HashTable::footprint(kBuckets);
        table = std::make_unique<kv::HashTable>(rig.pod, buckets, kBuckets,
                                                &adapter);
    }

    static constexpr std::uint64_t kBuckets = 1024;

    static cxltest::RigOptions
    options()
    {
        cxltest::RigOptions opt;
        opt.extra_device_bytes = kv::HashTable::footprint(kBuckets);
        return opt;
    }

    Rig rig;
    baselines::CxlallocAdapter adapter;
    std::unique_ptr<kv::HashTable> table;
};

TEST(HashTableTest, InsertGetRemove)
{
    KvRig kv;
    auto t = kv.rig.thread();
    EXPECT_TRUE(kv.table->insert(*t, "alpha", 5, "one", 3));
    char out[16] = {};
    std::uint32_t vlen = 0;
    EXPECT_TRUE(kv.table->get(*t, "alpha", 5, out, sizeof out, &vlen));
    EXPECT_EQ(vlen, 3u);
    EXPECT_EQ(std::memcmp(out, "one", 3), 0);
    EXPECT_FALSE(kv.table->get(*t, "beta", 4, nullptr, 0, nullptr));
    EXPECT_TRUE(kv.table->remove(*t, "alpha", 5));
    EXPECT_FALSE(kv.table->get(*t, "alpha", 5, nullptr, 0, nullptr));
    EXPECT_FALSE(kv.table->remove(*t, "alpha", 5));
    kv.table->clear(*t);
    kv.rig.pod.release_thread(std::move(t));
}

TEST(HashTableTest, ManyKeysSurviveCollisions)
{
    KvRig kv;
    auto t = kv.rig.thread();
    constexpr int kN = 5000; // ~5 keys per bucket: chains exercised
    for (std::uint64_t i = 0; i < kN; i++) {
        ASSERT_TRUE(kv.table->insert(*t, &i, 8, &i, 8));
    }
    EXPECT_EQ(kv.table->size(), static_cast<std::uint64_t>(kN));
    for (std::uint64_t i = 0; i < kN; i++) {
        std::uint64_t v = 0;
        std::uint32_t vlen = 0;
        ASSERT_TRUE(kv.table->get(*t, &i, 8, &v, 8, &vlen));
        EXPECT_EQ(v, i);
    }
    for (std::uint64_t i = 0; i < kN; i += 2) {
        ASSERT_TRUE(kv.table->remove(*t, &i, 8));
    }
    for (std::uint64_t i = 0; i < kN; i++) {
        EXPECT_EQ(kv.table->get(*t, &i, 8, nullptr, 0, nullptr), i % 2 == 1);
    }
    kv.table->clear(*t);
    kv.rig.pod.release_thread(std::move(t));
}

TEST(HashTableTest, DeletedMemoryIsReclaimedThroughEbr)
{
    KvRig kv;
    auto t = kv.rig.thread();
    // Insert/remove churn far exceeding the heap if nodes leaked.
    for (std::uint64_t round = 0; round < 50; round++) {
        for (std::uint64_t i = 0; i < 500; i++) {
            std::uint64_t key = round * 500 + i;
            char value[960];
            ASSERT_TRUE(kv.table->insert(*t, &key, 8, value, sizeof value))
                << "allocator exhausted: EBR is not reclaiming";
        }
        for (std::uint64_t i = 0; i < 500; i++) {
            std::uint64_t key = round * 500 + i;
            ASSERT_TRUE(kv.table->remove(*t, &key, 8));
        }
    }
    kv.table->clear(*t);
    kv.rig.pod.release_thread(std::move(t));
}

TEST(HashTableTest, ConcurrentMixedOperations)
{
    KvRig kv;
    constexpr int kThreads = 4;
    constexpr int kOps = 3000;
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; w++) {
        workers.emplace_back([&kv, w] {
            auto t = kv.rig.thread();
            cxlcommon::Xoshiro rng(w * 31 + 1);
            for (int i = 0; i < kOps; i++) {
                std::uint64_t key = rng.next_below(256);
                switch (rng.next_below(3)) {
                  case 0:
                    kv.table->insert(*t, &key, 8, &key, 8);
                    break;
                  case 1: {
                    std::uint64_t v;
                    kv.table->get(*t, &key, 8, &v, 8, nullptr);
                    break;
                  }
                  default:
                    kv.table->remove(*t, &key, 8);
                    break;
                }
            }
            kv.rig.pod.release_thread(std::move(t));
        });
    }
    for (auto& w : workers) {
        w.join();
    }
    auto t = kv.rig.thread();
    // Every node the walk sees must be retrievable.
    kv.table->for_each_node([&](cxl::HeapOffset node) {
        EXPECT_NE(node, 0u);
    });
    kv.table->clear(*t);
    kv.rig.alloc.check_invariants(t->mem());
    kv.rig.pod.release_thread(std::move(t));
}

TEST(HashTableTest, DetectableNodeLifecycle)
{
    KvRig kv;
    auto t = kv.rig.thread();
    std::uint64_t key = 42;
    std::uint64_t node = kv.table->alloc_node(*t, &key, 8, "v", 1);
    ASSERT_NE(node, 0u);
    EXPECT_FALSE(kv.table->contains_node(*t, node));
    EXPECT_FALSE(kv.table->get(*t, &key, 8, nullptr, 0, nullptr));
    kv.table->link_node(*t, node);
    EXPECT_TRUE(kv.table->contains_node(*t, node));
    EXPECT_TRUE(kv.table->get(*t, &key, 8, nullptr, 0, nullptr));
    kv.table->clear(*t);
    kv.rig.pod.release_thread(std::move(t));
}

TEST(KvStoreTest, FormatKeyDeterministicAndSized)
{
    char a[96];
    char b[96];
    kv::KvStore::format_key(1234, 44, a);
    kv::KvStore::format_key(1234, 44, b);
    EXPECT_EQ(std::memcmp(a, b, 44), 0);
    kv::KvStore::format_key(7, 8, a);
    EXPECT_EQ(a[7], '7');
    EXPECT_EQ(a[0], 'k');
}

} // namespace
