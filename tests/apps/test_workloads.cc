#include "workload/kv_workload.h"
#include "workload/micro.h"

#include <gtest/gtest.h>
#include <map>
#include <thread>

#include "baselines/cxlalloc_adapter.h"
#include "../cxlalloc/fixture.h"

namespace {

using namespace workload;

TEST(KvWorkloads, SpecsMatchTable2)
{
    auto all = all_kv_workloads();
    ASSERT_EQ(all.size(), 7u);
    EXPECT_EQ(all[0].name, "YCSB-Load");
    EXPECT_DOUBLE_EQ(all[0].insert_pct, 1.0);
    EXPECT_EQ(all[1].name, "YCSB-A");
    EXPECT_DOUBLE_EQ(all[1].insert_pct, 0.25);
    EXPECT_DOUBLE_EQ(all[1].remove_pct, 0.25);
    EXPECT_TRUE(all[1].zipfian);
    EXPECT_EQ(all[2].name, "YCSB-D");
    EXPECT_DOUBLE_EQ(all[2].insert_pct, 0.05);
    // MC rows: insert %, key distribution, key size, value size (Table 2).
    EXPECT_DOUBLE_EQ(all[3].insert_pct, 0.797);
    EXPECT_EQ(all[3].key_min, 44u);
    EXPECT_EQ(all[3].val_max, 307u << 10);
    EXPECT_FALSE(all[3].zipfian);
    EXPECT_DOUBLE_EQ(all[4].insert_pct, 0.999);
    EXPECT_EQ(all[4].val_max, 144u);
    EXPECT_DOUBLE_EQ(all[5].insert_pct, 0.93);
    EXPECT_EQ(all[5].val_max, 15u);
    EXPECT_DOUBLE_EQ(all[6].insert_pct, 0.388);
    EXPECT_TRUE(all[6].zipfian);
    EXPECT_EQ(all[6].key_max, 82u);
}

TEST(KvWorkloads, EmpiricalMixMatchesSpec)
{
    for (const auto& spec : all_kv_workloads()) {
        KvOpStream stream(spec, 99);
        constexpr int kN = 50000;
        int inserts = 0;
        int removes = 0;
        for (int i = 0; i < kN; i++) {
            KvOp op = stream.next();
            inserts += op.type == OpType::Insert;
            removes += op.type == OpType::Remove;
            EXPECT_GE(op.klen, spec.key_min);
            EXPECT_LE(op.klen, spec.key_max);
            if (op.type == OpType::Insert) {
                EXPECT_GE(op.vlen, spec.val_min);
                EXPECT_LE(op.vlen, spec.val_max);
            }
            EXPECT_LT(op.key, spec.keyspace);
        }
        EXPECT_NEAR(static_cast<double>(inserts) / kN, spec.insert_pct, 0.01)
            << spec.name;
        EXPECT_NEAR(static_cast<double>(removes) / kN, spec.remove_pct, 0.01)
            << spec.name;
    }
}

TEST(KvWorkloads, KeyLengthIsDeterministicPerKey)
{
    auto spec = mc15(); // variable key lengths
    for (std::uint64_t key = 0; key < 1000; key++) {
        EXPECT_EQ(KvOpStream::key_len(spec, key),
                  KvOpStream::key_len(spec, key));
    }
    // And actually variable.
    bool varied = false;
    for (std::uint64_t key = 1; key < 100 && !varied; key++) {
        varied = KvOpStream::key_len(spec, key) !=
                 KvOpStream::key_len(spec, 0);
    }
    EXPECT_TRUE(varied);
}

TEST(KvWorkloads, SkewedStreamHammersHotKeys)
{
    // Scrambled-zipfian hot ranks land on arbitrary key ids, so measure
    // concentration: how often does the single most frequent key appear?
    auto max_frequency = [](KvOpStream s) {
        std::map<std::uint64_t, int> counts;
        for (int i = 0; i < 20000; i++) {
            counts[s.next().key]++;
        }
        int max = 0;
        for (const auto& [key, n] : counts) {
            max = std::max(max, n);
        }
        return max;
    };
    int skew = max_frequency(KvOpStream(ycsb_a(), 1));
    int uniform = max_frequency(KvOpStream(mc12(), 1));
    EXPECT_GT(skew, uniform * 10)
        << "zipf 0.99 should concentrate mass on a hot key";
}

TEST(Threadtest, RunsExactWorkAmount)
{
    cxltest::Rig rig;
    baselines::CxlallocAdapter adapter(&rig.alloc);
    auto t = rig.thread();
    std::uint64_t pairs = run_threadtest(adapter, *t, /*rounds=*/10,
                                         /*batch=*/100, /*size=*/64);
    EXPECT_EQ(pairs, 1000u);
    rig.alloc.check_local_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(Xmalloc, RingCompletesAndBalances)
{
    cxltest::Rig rig;
    baselines::CxlallocAdapter adapter(&rig.alloc);
    constexpr std::uint32_t kThreads = 3;
    constexpr std::uint64_t kCount = 2000;
    XmallocRing ring(kThreads);
    std::vector<std::thread> workers;
    std::vector<std::uint64_t> done(kThreads, 0);
    for (std::uint32_t w = 0; w < kThreads; w++) {
        workers.emplace_back([&, w] {
            auto t = rig.thread();
            done[w] = run_xmalloc(adapter, *t, ring, w, kCount, 128);
            rig.pod.release_thread(std::move(t));
        });
    }
    for (auto& th : workers) {
        th.join();
    }
    for (std::uint32_t w = 0; w < kThreads; w++) {
        EXPECT_EQ(done[w], 2 * kCount) << "thread " << w;
    }
    auto checker = rig.thread();
    rig.alloc.check_invariants(checker->mem());
    rig.pod.release_thread(std::move(checker));
}

TEST(SpscRingTest, OrderAndCapacity)
{
    SpscRing ring(4);
    std::uint64_t v;
    EXPECT_FALSE(ring.pop(&v));
    EXPECT_TRUE(ring.push(1));
    EXPECT_TRUE(ring.push(2));
    EXPECT_TRUE(ring.push(3));
    EXPECT_TRUE(ring.push(4));
    EXPECT_FALSE(ring.push(5)) << "capacity respected";
    EXPECT_TRUE(ring.pop(&v));
    EXPECT_EQ(v, 1u);
    EXPECT_TRUE(ring.push(5));
    EXPECT_TRUE(ring.pop(&v));
    EXPECT_EQ(v, 2u);
}

} // namespace
