/// Concurrent Memento-structure tests: multiple threads pushing/popping
/// and inserting/removing while crashes strike, end-state checked exactly.

#include <gtest/gtest.h>
#include <atomic>
#include <thread>

#include "baselines/cxlalloc_adapter.h"
#include "common/random.h"
#include "memento/recoverable_map.h"
#include "memento/recoverable_queue.h"
#include "../cxlalloc/fixture.h"

namespace {

using memento::RecoverableMap;
using memento::RecoverableQueue;
using pod::ThreadCrashed;

struct MRig {
    MRig() : rig(options()), adapter(&rig.alloc)
    {
        cxl::HeapOffset at = rig.alloc.layout().end();
        queue = std::make_unique<RecoverableQueue>(rig.pod, at, &adapter);
        at += RecoverableQueue::meta_size();
        cxl::HeapOffset mmeta = at;
        at += RecoverableMap::meta_size();
        map = std::make_unique<RecoverableMap>(rig.pod, mmeta, at, kBuckets,
                                               &adapter);
    }

    static constexpr std::uint64_t kBuckets = 2048;

    static cxltest::RigOptions
    options()
    {
        cxltest::RigOptions opt;
        opt.mode = cxl::CoherenceMode::FullHwcc;
        opt.extra_device_bytes = RecoverableQueue::meta_size() +
                                 RecoverableMap::meta_size() +
                                 kv::HashTable::footprint(kBuckets);
        return opt;
    }

    cxltest::Rig rig;
    baselines::CxlallocAdapter adapter;
    std::unique_ptr<RecoverableQueue> queue;
    std::unique_ptr<RecoverableMap> map;
};

TEST(MementoConcurrent, QueuePushPopBalanceAcrossThreads)
{
    MRig m;
    constexpr int kThreads = 4;
    constexpr int kPer = 3000;
    std::vector<std::thread> workers;
    std::atomic<std::uint64_t> pops{0};
    for (int w = 0; w < kThreads; w++) {
        workers.emplace_back([&] {
            auto t = m.rig.thread();
            for (int i = 0; i < kPer; i++) {
                ASSERT_TRUE(m.queue->push(*t, 64, 1));
                if (m.queue->pop(*t)) {
                    pops.fetch_add(1);
                }
            }
            m.rig.pod.release_thread(std::move(t));
        });
    }
    for (auto& th : workers) {
        th.join();
    }
    auto t = m.rig.thread();
    std::uint64_t remaining = m.queue->approximate_size(*t);
    EXPECT_EQ(pops.load() + remaining,
              static_cast<std::uint64_t>(kThreads) * kPer);
    m.queue->drain(*t);
    m.rig.alloc.check_invariants(t->mem());
    m.rig.pod.release_thread(std::move(t));
}

TEST(MementoConcurrent, CrashWhileOthersKeepPushing)
{
    MRig m;
    std::atomic<bool> crashed_done{false};
    std::atomic<std::uint64_t> victim_pushes{0};
    std::thread victim_thread([&] {
        auto t = m.rig.thread();
        t->arm_crash(memento::qcrash::kAfterLink, 500);
        try {
            for (int i = 0; i < 100000; i++) {
                m.queue->push(*t, 64, 2);
                victim_pushes.fetch_add(1);
            }
        } catch (const ThreadCrashed&) {
            // The armed push completed its link before the crash fired.
            victim_pushes.fetch_add(1);
            cxl::ThreadId tid = t->tid();
            m.rig.pod.mark_crashed(std::move(t));
            auto recovered = m.rig.pod.adopt_thread(m.rig.process, tid);
            m.rig.alloc.recover(*recovered);
            m.queue->recover(*recovered);
            m.rig.pod.release_thread(std::move(recovered));
        }
        crashed_done.store(true);
    });
    std::uint64_t live_pushes = 0;
    {
        auto t = m.rig.thread();
        while (!crashed_done.load()) {
            ASSERT_TRUE(m.queue->push(*t, 32, 3));
            live_pushes++;
        }
        m.rig.pod.release_thread(std::move(t));
    }
    victim_thread.join();
    auto t = m.rig.thread();
    EXPECT_EQ(m.queue->approximate_size(*t),
              victim_pushes.load() + live_pushes);
    m.queue->drain(*t);
    m.rig.alloc.check_invariants(t->mem());
    m.rig.pod.release_thread(std::move(t));
}

TEST(MementoConcurrent, MapParallelDistinctKeyRanges)
{
    MRig m;
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPer = 1500;
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; w++) {
        workers.emplace_back([&, w] {
            auto t = m.rig.thread();
            for (std::uint64_t i = 0; i < kPer; i++) {
                ASSERT_TRUE(m.map->insert(*t, w * kPer + i, 40 + w));
            }
            m.rig.pod.release_thread(std::move(t));
        });
    }
    for (auto& th : workers) {
        th.join();
    }
    auto t = m.rig.thread();
    for (std::uint64_t id = 0; id < kThreads * kPer; id++) {
        EXPECT_TRUE(m.map->contains(*t, id)) << "id " << id;
    }
    for (std::uint64_t id = 0; id < kThreads * kPer; id++) {
        EXPECT_TRUE(m.map->remove(*t, id));
    }
    m.map->clear(*t);
    m.rig.alloc.check_invariants(t->mem());
    m.rig.pod.release_thread(std::move(t));
}

TEST(MementoConcurrent, RepeatedCrashesAcrossBothStructures)
{
    MRig m;
    auto t = m.rig.thread();
    cxlcommon::Xoshiro rng(12);
    int crashes = 0;
    std::uint64_t next_id = 0;
    for (int round = 0; round < 30; round++) {
        int point = (round % 2 == 0) ? memento::qcrash::kAfterRecord
                                     : memento::mcrash::kMapAfterRecord;
        t->arm_crash(point, 1 + static_cast<std::uint32_t>(
                                   rng.next_below(50)));
        try {
            for (int i = 0; i < 120; i++) {
                if (round % 2 == 0) {
                    m.queue->push(*t, 48, 1);
                } else {
                    m.map->insert(*t, next_id++, 48);
                }
            }
            t->disarm_crash();
        } catch (const ThreadCrashed&) {
            crashes++;
            cxl::ThreadId tid = t->tid();
            m.rig.pod.mark_crashed(std::move(t));
            t = m.rig.pod.adopt_thread(m.rig.process, tid);
            m.rig.alloc.recover(*t);
            m.queue->recover(*t);
            m.map->recover(*t);
            m.rig.alloc.check_invariants(t->mem());
        }
    }
    EXPECT_GT(crashes, 10);
    m.queue->drain(*t);
    m.map->clear(*t);
    m.rig.alloc.check_invariants(t->mem());
    m.rig.pod.release_thread(std::move(t));
}

} // namespace
