#include "pod/process.h"

#include <gtest/gtest.h>

#include "pod/pod.h"

namespace {

using pod::FaultResolver;
using pod::MappedRange;
using pod::Pod;
using pod::PodConfig;
using pod::Process;

PodConfig
checked_config()
{
    PodConfig cfg;
    cfg.device.size = 4 << 20;
    cfg.device.mode = cxl::CoherenceMode::PartialHwcc;
    cfg.device.sync_region_size = 64 << 10;
    cfg.checked_mappings = true;
    return cfg;
}

/// Test resolver: treats [heap_start, heap_start + heap_len) as valid heap
/// memory backed at page granularity.
class RangeResolver : public FaultResolver {
  public:
    RangeResolver(cxl::HeapOffset start, std::uint64_t len)
        : start_(start), len_(len)
    {
    }

    bool
    resolve_fault(Process&, cxl::MemSession&, cxl::HeapOffset offset,
                  MappedRange* out) override
    {
        if (offset < start_ || offset >= start_ + len_) {
            return false;
        }
        faults++;
        out->start = offset & ~(cxl::kPageSize - 1);
        out->len = cxl::kPageSize;
        return true;
    }

    int faults = 0;

  private:
    cxl::HeapOffset start_;
    std::uint64_t len_;
};

TEST(Process, MappingInstallAndRemove)
{
    Pod pod(checked_config());
    Process* p = pod.create_process();
    EXPECT_FALSE(p->is_mapped(0));
    p->install_mapping(0, 2 * cxl::kPageSize);
    EXPECT_TRUE(p->is_mapped(0));
    EXPECT_TRUE(p->is_mapped(cxl::kPageSize));
    EXPECT_FALSE(p->is_mapped(2 * cxl::kPageSize));
    EXPECT_EQ(p->mapped_bytes(), 2 * cxl::kPageSize);
    p->remove_mapping(0, cxl::kPageSize);
    EXPECT_FALSE(p->is_mapped(0));
    EXPECT_TRUE(p->is_mapped(cxl::kPageSize));
    EXPECT_EQ(p->mapped_bytes(), cxl::kPageSize);
}

TEST(Process, MappingsArePerProcess)
{
    // PC-T is exactly the property that this is NOT automatic: a mapping in
    // one process is invisible in another.
    Pod pod(checked_config());
    Process* a = pod.create_process();
    Process* b = pod.create_process();
    a->install_mapping(0, cxl::kPageSize);
    EXPECT_TRUE(a->is_mapped(0));
    EXPECT_FALSE(b->is_mapped(0));
}

TEST(Process, OverlappingReservationAborts)
{
    Pod pod(checked_config());
    Process* p = pod.create_process();
    p->reserve("small-data", 0, 1 << 20);
    EXPECT_DEATH(p->reserve("huge-data", 512 << 10, 1 << 20), "PC-S");
}

TEST(Process, DisjointReservationsCoexist)
{
    Pod pod(checked_config());
    Process* p = pod.create_process();
    p->reserve("a", 0, 1 << 20);
    p->reserve("b", 1 << 20, 1 << 20);
    SUCCEED();
}

TEST(Process, FaultHandlerInstallsMappingOnAccess)
{
    Pod pod(checked_config());
    Process* p = pod.create_process();
    RangeResolver resolver(1 << 20, 1 << 20);
    p->set_resolver(&resolver);
    auto thread = pod.create_thread(p);

    // First access to heap memory faults and installs the page.
    thread->mem().store<std::uint64_t>(1 << 20, 42);
    EXPECT_EQ(resolver.faults, 1);
    EXPECT_TRUE(p->is_mapped(1 << 20));
    EXPECT_EQ(p->faults_resolved(), 1u);

    // Subsequent access to the same page does not fault again.
    EXPECT_EQ(thread->mem().load<std::uint64_t>(1 << 20), 42u);
    EXPECT_EQ(resolver.faults, 1);

    pod.release_thread(std::move(thread));
}

TEST(Process, PcTAcrossProcesses)
{
    // The paper's PC-T scenario: process A maps (and writes) memory;
    // process B dereferences the same offset and must fault-in the mapping
    // transparently rather than crash.
    Pod pod(checked_config());
    Process* a = pod.create_process();
    Process* b = pod.create_process();
    RangeResolver resolver(1 << 20, 1 << 20);
    a->set_resolver(&resolver);
    b->set_resolver(&resolver);
    auto ta = pod.create_thread(a);
    auto tb = pod.create_thread(b);

    ta->mem().store<std::uint64_t>((1 << 20) + 8, 7);
    EXPECT_FALSE(b->is_mapped(1 << 20));
    EXPECT_EQ(tb->mem().load<std::uint64_t>((1 << 20) + 8), 7u);
    EXPECT_TRUE(b->is_mapped(1 << 20));

    pod.release_thread(std::move(ta));
    pod.release_thread(std::move(tb));
}

TEST(Process, AccessOutsideHeapSegfaults)
{
    Pod pod(checked_config());
    Process* p = pod.create_process();
    RangeResolver resolver(1 << 20, 1 << 20);
    p->set_resolver(&resolver);
    auto thread = pod.create_thread(p);
    EXPECT_DEATH(thread->mem().store<std::uint64_t>(3 << 20, 1), "segfault");
    pod.release_thread(std::move(thread));
}

TEST(Process, TlbCachesVerifiedRanges)
{
    Pod pod(checked_config());
    Process* p = pod.create_process();
    RangeResolver resolver(1 << 20, 1 << 20);
    p->set_resolver(&resolver);
    auto thread = pod.create_thread(p);

    thread->mem().store<std::uint64_t>(1 << 20, 42);
    EXPECT_EQ(resolver.faults, 1);
    std::uint64_t misses = thread->mem().counters().tlb_misses;
    EXPECT_GE(misses, 1u);

    // Repeat accesses inside the verified page hit the session TLB: no
    // further misses, no page-bitmap walk, definitely no fault.
    for (int i = 0; i < 16; i++) {
        thread->mem().load<std::uint64_t>((1 << 20) + 8 * i);
    }
    EXPECT_EQ(thread->mem().counters().tlb_misses, misses);
    EXPECT_GE(thread->mem().counters().tlb_hits, 16u);
    EXPECT_EQ(resolver.faults, 1);

    pod.release_thread(std::move(thread));
}

TEST(Process, StaleTlbEntryRefaultsAfterUnmap)
{
    // The negative test for the TLB invalidation contract: after
    // remove_mapping (the munmap analog, e.g. hazard-offset reclamation)
    // an access the TLB previously verified MUST re-fault. If the epoch
    // shoot-down were missing, the stale TLB entry would wave the access
    // through to reused backing memory.
    Pod pod(checked_config());
    Process* p = pod.create_process();
    RangeResolver resolver(1 << 20, 1 << 20);
    p->set_resolver(&resolver);
    auto thread = pod.create_thread(p);

    thread->mem().store<std::uint64_t>(1 << 20, 42);
    EXPECT_EQ(resolver.faults, 1);
    thread->mem().load<std::uint64_t>(1 << 20); // now cached in the TLB
    EXPECT_GE(thread->mem().counters().tlb_hits, 1u);

    p->remove_mapping(1 << 20, cxl::kPageSize);
    EXPECT_FALSE(p->is_mapped(1 << 20));

    thread->mem().load<std::uint64_t>(1 << 20);
    EXPECT_EQ(resolver.faults, 2) << "stale TLB entry suppressed the fault";
    EXPECT_TRUE(p->is_mapped(1 << 20));

    pod.release_thread(std::move(thread));
}

TEST(Process, FaultHandlerRangesAreNotCached)
{
    // on_access returns "unverified" during fault-handler re-entry; the
    // session must not wave those metadata ranges into its TLB. Observable
    // contract here: an unchecked process never populates the TLB at all.
    PodConfig cfg = checked_config();
    cfg.checked_mappings = false;
    Pod pod(cfg);
    Process* p = pod.create_process();
    auto thread = pod.create_thread(p);
    for (int i = 0; i < 8; i++) {
        thread->mem().store<std::uint64_t>(1 << 20, i);
    }
    EXPECT_EQ(thread->mem().counters().tlb_hits, 0u);
    pod.release_thread(std::move(thread));
}

TEST(Process, UncheckedProcessSkipsGuard)
{
    PodConfig cfg = checked_config();
    cfg.checked_mappings = false;
    Pod pod(cfg);
    Process* p = pod.create_process();
    auto thread = pod.create_thread(p);
    // No resolver, no mappings: access succeeds because PC-T checking is
    // disabled (benchmark fast path).
    thread->mem().store<std::uint64_t>(3 << 20, 1);
    EXPECT_EQ(thread->mem().load<std::uint64_t>(3 << 20), 1u);
    pod.release_thread(std::move(thread));
}

} // namespace
