/// @file
/// Pod fault-injection framework: the fault-point registry (mirroring the
/// crashpoint registry's discipline), FaultPlan builders and the
/// for_point sweep helper, and the deterministic FaultInjector step clock
/// applied to a live 2x2 pod — edge health flips on the shared topology
/// table, NMP stall/delay arming on the engine, host-kill latching.

#include <gtest/gtest.h>

#include <memory>

#include "cxl/nmp.h"
#include "cxl/types.h"
#include "pod/faults.h"
#include "pod/pod.h"
#include "pod/topology.h"

namespace {

using cxl::EdgeState;
using pod::FaultEvent;
using pod::FaultInjector;
using pod::FaultKind;
using pod::FaultPlan;
using pod::FaultPointInfo;
using pod::FaultPointRegistry;
using pod::Pod;
using pod::PodConfig;
using pod::Topology;
namespace faultpoint = pod::faultpoint;

cxl::EdgeCost
far_edge()
{
    cxl::EdgeCost e;
    e.read_add_ns = 100;
    e.write_add_ns = 150;
    e.ns_per_kib = 4;
    return e;
}

/// 2 hosts x 2 devices, every edge wired (the smallest pod where edge
/// faults and host kills are both non-degenerate).
struct FaultPod {
    FaultPod()
    {
        PodConfig pc;
        pc.device.windows = 2;
        pc.device.window_bits = 16;
        pc.device.size = 2ull << 16;
        pc.device.sync_region_size = 4096;
        pc.topology = Topology::dense(2, 2, cxl::EdgeCost{}, far_edge());
        pod = std::make_unique<Pod>(pc);
    }

    const Topology& topo() const { return pod->topology(); }

    std::unique_ptr<Pod> pod;
};

// ---------------------------------------------------------------------------
// Fault-point registry

TEST(FaultRegistry, RegistersEveryPodPointIdempotently)
{
    pod::register_fault_points();
    pod::register_fault_points(); // second call must be a no-op

    const FaultPointRegistry& reg = FaultPointRegistry::instance();
    const FaultPointInfo* down = reg.find(faultpoint::kEdgeDown);
    ASSERT_NE(down, nullptr);
    EXPECT_EQ(down->name, "fault.edge_down");
    ASSERT_NE(reg.find(faultpoint::kEdgeFlap), nullptr);
    ASSERT_NE(reg.find(faultpoint::kNmpStall), nullptr);
    ASSERT_NE(reg.find(faultpoint::kNmpDelay), nullptr);
    const FaultPointInfo* kill = reg.find(faultpoint::kHostKill);
    ASSERT_NE(kill, nullptr);
    EXPECT_EQ(kill->name, "fault.host_kill");
    EXPECT_FALSE(kill->site.empty());

    const FaultPointInfo* by_name = reg.find_name("fault.nmp_stall");
    ASSERT_NE(by_name, nullptr);
    EXPECT_EQ(by_name->id, faultpoint::kNmpStall);

    EXPECT_EQ(reg.find(999), nullptr);
    EXPECT_EQ(reg.find_name("fault.no_such_point"), nullptr);
}

TEST(FaultRegistry, AllIsSortedById)
{
    pod::register_fault_points();
    std::vector<FaultPointInfo> all = FaultPointRegistry::instance().all();
    ASSERT_GE(all.size(), 5u);
    for (std::size_t i = 1; i < all.size(); i++) {
        EXPECT_LT(all[i - 1].id, all[i].id);
    }
    // The five pod points all appear.
    std::uint32_t seen = 0;
    for (const FaultPointInfo& info : all) {
        if (info.id >= faultpoint::kEdgeDown &&
            info.id <= faultpoint::kHostKill) {
            seen++;
        }
    }
    EXPECT_EQ(seen, 5u);
}

TEST(FaultRegistry, NameLookupFallsBackForUnknownIds)
{
    pod::register_fault_points();
    EXPECT_EQ(pod::fault_point_name(faultpoint::kEdgeFlap),
              "fault.edge_flap");
    EXPECT_EQ(pod::fault_point_name(999), "faultpoint:999");
}

TEST(FaultRegistryDeathTest, ConflictingReRegistrationDies)
{
    pod::register_fault_points();
    EXPECT_DEATH(FaultPointRegistry::instance().add(
                     faultpoint::kEdgeDown, "fault.renamed", "elsewhere"),
                 "different names");
}

TEST(FaultRegistry, EveryKindMapsToARegisteredPoint)
{
    pod::register_fault_points();
    for (FaultKind kind :
         {FaultKind::EdgeDown, FaultKind::EdgeFlap, FaultKind::NmpStall,
          FaultKind::NmpDelay, FaultKind::HostKill}) {
        const FaultPointInfo* info =
            FaultPointRegistry::instance().find(pod::fault_point_of(kind));
        ASSERT_NE(info, nullptr);
    }
}

// ---------------------------------------------------------------------------
// FaultPlan builders

TEST(FaultPlan, BuildersChainAndRecordEveryField)
{
    FaultPlan plan;
    plan.edge_down(0, 1, 3)
        .edge_flap(1, 0, 5, 7)
        .nmp_stall(2, 3)
        .nmp_delay(4, 650, 2)
        .host_kill(1, 9);
    ASSERT_EQ(plan.events.size(), 5u);

    EXPECT_EQ(plan.events[0].kind, FaultKind::EdgeDown);
    EXPECT_EQ(plan.events[0].host, 0u);
    EXPECT_EQ(plan.events[0].device, 1);
    EXPECT_EQ(plan.events[0].at_step, 3u);

    EXPECT_EQ(plan.events[1].kind, FaultKind::EdgeFlap);
    EXPECT_EQ(plan.events[1].recover_after, 7u);

    EXPECT_EQ(plan.events[2].kind, FaultKind::NmpStall);
    EXPECT_EQ(plan.events[2].count, 3u);

    EXPECT_EQ(plan.events[3].kind, FaultKind::NmpDelay);
    EXPECT_EQ(plan.events[3].delay_ns, 650u);
    EXPECT_EQ(plan.events[3].count, 2u);

    EXPECT_EQ(plan.events[4].kind, FaultKind::HostKill);
    EXPECT_EQ(plan.events[4].host, 1u);
}

TEST(FaultPlan, ForPointCoversEveryRegisteredPointWithSaneDefaults)
{
    pod::register_fault_points();
    // The sweep contract: iterate the registry, get a one-event plan per
    // point. Unknown ids abort (tested below), so a point added without a
    // for_point arm cannot silently produce an empty sweep entry.
    for (const FaultPointInfo& info : FaultPointRegistry::instance().all()) {
        if (info.id < faultpoint::kEdgeDown ||
            info.id > faultpoint::kHostKill) {
            continue;
        }
        FaultPlan plan = FaultPlan::for_point(info.id, 0, 1, 6);
        ASSERT_EQ(plan.events.size(), 1u) << info.name;
        EXPECT_EQ(pod::fault_point_of(plan.events[0].kind), info.id);
        EXPECT_EQ(plan.events[0].at_step, 6u);
    }
    EXPECT_EQ(FaultPlan::for_point(faultpoint::kEdgeFlap, 0, 0, 1)
                  .events[0]
                  .recover_after,
              4u);
    EXPECT_EQ(FaultPlan::for_point(faultpoint::kNmpStall, 0, 0, 1)
                  .events[0]
                  .count,
              2u);
    const FaultEvent& delay =
        FaultPlan::for_point(faultpoint::kNmpDelay, 0, 0, 1).events[0];
    EXPECT_EQ(delay.delay_ns, 500u);
    EXPECT_EQ(delay.count, 2u);
}

TEST(FaultPlanDeathTest, ForPointUnknownIdDies)
{
    EXPECT_DEATH(FaultPlan::for_point(999, 0, 0, 1), "unknown fault point");
}

TEST(FaultPlanDeathTest, ZeroLengthFlapDies)
{
    FaultPlan plan;
    EXPECT_DEATH(plan.edge_flap(0, 0, 1, 0), "at least one step");
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjector, StepClockIsOneBased)
{
    FaultPod rig;
    FaultPlan plan;
    plan.edge_down(0, 1, 1);
    FaultInjector inj(*rig.pod, plan);

    EXPECT_EQ(inj.now(), 0u);
    EXPECT_EQ(inj.fired(), 0u);
    EXPECT_FALSE(inj.done());
    EXPECT_EQ(rig.topo().edge_state(0, 1), EdgeState::Up);

    inj.step(); // the first step() is step 1: at_step == 1 fires here
    EXPECT_EQ(inj.now(), 1u);
    EXPECT_EQ(inj.fired(), 1u);
    EXPECT_EQ(rig.topo().edge_state(0, 1), EdgeState::Down);
    EXPECT_TRUE(inj.done()); // EdgeDown schedules no recovery
}

TEST(FaultInjector, EdgeDownBumpsEpochAndStaysDown)
{
    FaultPod rig;
    std::uint64_t epoch0 = rig.topo().edge_epoch(0, 1);
    FaultPlan plan;
    plan.edge_down(0, 1, 2);
    FaultInjector inj(*rig.pod, plan);

    inj.step();
    EXPECT_EQ(rig.topo().edge_state(0, 1), EdgeState::Up);
    inj.step();
    EXPECT_EQ(rig.topo().edge_state(0, 1), EdgeState::Down);
    EXPECT_EQ(rig.topo().edge_epoch(0, 1), epoch0 + 1);
    for (int i = 0; i < 5; i++) {
        inj.step();
    }
    // No scheduled recovery: the edge stays Down and the epoch is stable.
    EXPECT_EQ(rig.topo().edge_state(0, 1), EdgeState::Down);
    EXPECT_EQ(rig.topo().edge_epoch(0, 1), epoch0 + 1);
    // Only the edge we named was touched.
    EXPECT_EQ(rig.topo().edge_state(1, 1), EdgeState::Up);
    EXPECT_EQ(rig.topo().edge_state(0, 0), EdgeState::Up);
}

TEST(FaultInjector, FlapDropsThenRecoversOnSchedule)
{
    FaultPod rig;
    std::uint64_t epoch0 = rig.topo().edge_epoch(1, 0);
    FaultPlan plan;
    plan.edge_flap(1, 0, /*at_step=*/2, /*down_for=*/3);
    FaultInjector inj(*rig.pod, plan);

    inj.step(); // 1
    EXPECT_EQ(rig.topo().edge_state(1, 0), EdgeState::Up);
    inj.step(); // 2: fires
    EXPECT_EQ(rig.topo().edge_state(1, 0), EdgeState::Down);
    EXPECT_FALSE(inj.done()); // recovery pending
    inj.step();               // 3
    inj.step();               // 4
    EXPECT_EQ(rig.topo().edge_state(1, 0), EdgeState::Down);
    inj.step(); // 5 == 2 + down_for: recovers
    EXPECT_EQ(rig.topo().edge_state(1, 0), EdgeState::Up);
    EXPECT_TRUE(inj.done());
    // One Down transition plus one Up transition.
    EXPECT_EQ(rig.topo().edge_epoch(1, 0), epoch0 + 2);
}

TEST(FaultInjector, EventsFireInStepOrderRegardlessOfPlanOrder)
{
    FaultPod rig;
    FaultPlan plan;
    // Listed out of order: the injector sorts by at_step (stably).
    plan.edge_down(0, 1, 3).edge_down(1, 0, 1).edge_down(0, 0, 3);
    FaultInjector inj(*rig.pod, plan);

    inj.step();
    EXPECT_EQ(inj.fired(), 1u);
    EXPECT_EQ(rig.topo().edge_state(1, 0), EdgeState::Down);
    EXPECT_EQ(rig.topo().edge_state(0, 1), EdgeState::Up);
    inj.step();
    EXPECT_EQ(inj.fired(), 1u);
    inj.step(); // both step-3 events fire within one step()
    EXPECT_EQ(inj.fired(), 3u);
    EXPECT_EQ(rig.topo().edge_state(0, 1), EdgeState::Down);
    EXPECT_EQ(rig.topo().edge_state(0, 0), EdgeState::Down);
    EXPECT_TRUE(inj.done());
}

TEST(FaultInjector, NmpStallArmsTheEngineBudget)
{
    FaultPod rig;
    FaultPlan plan;
    plan.nmp_stall(1, 3);
    FaultInjector inj(*rig.pod, plan);
    cxl::Nmp& nmp = rig.pod->nmp();

    inj.step();
    EXPECT_EQ(nmp.stall_remaining(), 3u);

    // An empty doorbell does not consume the budget: an unresponsive
    // engine is only observable when something was staged.
    EXPECT_EQ(nmp.doorbell(1), 0u);
    EXPECT_EQ(nmp.stall_remaining(), 3u);
    EXPECT_EQ(nmp.total_stalled_doorbells(), 0u);

    ASSERT_TRUE(nmp.spwr_post(
        1, cxl::McasOperand{.target = 64, .expected = 0, .swap = 7}));
    EXPECT_EQ(nmp.doorbell(1), 0u); // swallowed
    EXPECT_EQ(nmp.posted_occupancy(1), 1u);
    EXPECT_EQ(nmp.stall_remaining(), 2u);
    EXPECT_EQ(nmp.total_stalled_doorbells(), 1u);
    EXPECT_EQ(nmp.doorbell(1), 0u);
    EXPECT_EQ(nmp.doorbell(1), 0u);
    EXPECT_EQ(nmp.stall_remaining(), 0u);
    EXPECT_EQ(nmp.total_stalled_doorbells(), 3u);

    // Budget exhausted: the engine answers and the operand executes.
    EXPECT_EQ(nmp.doorbell(1), 1u);
    cxl::McasResult res;
    ASSERT_TRUE(nmp.poll(1, &res));
    EXPECT_TRUE(res.success);
    EXPECT_EQ(nmp.posted_occupancy(1), 0u);
}

TEST(FaultInjector, NmpDelayArmsPerDoorbellExtraLatency)
{
    FaultPod rig;
    FaultPlan plan;
    plan.nmp_delay(1, 750, 2);
    FaultInjector inj(*rig.pod, plan);
    cxl::Nmp& nmp = rig.pod->nmp();

    EXPECT_EQ(nmp.take_injected_delay_ns(), 0u); // nothing armed yet
    inj.step();
    EXPECT_EQ(nmp.take_injected_delay_ns(), 750u);
    EXPECT_EQ(nmp.take_injected_delay_ns(), 750u);
    EXPECT_EQ(nmp.take_injected_delay_ns(), 0u); // budget drained
}

TEST(FaultInjector, HostKillLatchesWithoutCrashingSlots)
{
    FaultPod rig;
    pod::Process* p1 = rig.pod->create_process(1);
    auto t1 = rig.pod->create_thread(p1);
    cxl::ThreadId tid = t1->tid();

    FaultPlan plan;
    plan.host_kill(1, 1);
    FaultInjector inj(*rig.pod, plan);
    EXPECT_FALSE(inj.host_killed(1));

    inj.step();
    EXPECT_TRUE(inj.host_killed(1));
    EXPECT_FALSE(inj.host_killed(0));
    // The injector only latches the verdict; the harness owns the actual
    // crash (it holds the ThreadContexts), so the slot is still Live.
    EXPECT_EQ(rig.pod->slot_state(tid), pod::SlotState::Live);

    rig.pod->mark_crashed(std::move(t1), pod::Pod::CrashSeverity::Host);
    EXPECT_EQ(rig.pod->slot_state(tid), pod::SlotState::Crashed);
}

TEST(FaultInjectorDeathTest, ValidatesEventsAgainstTheTopology)
{
    FaultPod rig;
    {
        FaultPlan plan;
        plan.edge_down(5, 0, 1); // host 5 of a 2-host pod
        EXPECT_DEATH(FaultInjector inj(*rig.pod, plan),
                     "outside the topology");
    }
    {
        FaultPlan plan;
        plan.host_kill(7, 1);
        EXPECT_DEATH(FaultInjector inj(*rig.pod, plan),
                     "outside the topology");
    }
    {
        FaultPlan plan;
        plan.edge_down(0, 0, 0); // steps are 1-based
        EXPECT_DEATH(FaultInjector inj(*rig.pod, plan), "step >= 1");
    }
}

} // namespace
