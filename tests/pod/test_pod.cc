#include "pod/pod.h"

#include <gtest/gtest.h>

namespace {

using pod::Pod;
using pod::PodConfig;
using pod::SlotState;
using pod::ThreadContext;
using pod::ThreadCrashed;

PodConfig
basic_config()
{
    PodConfig cfg;
    cfg.device.size = 1 << 20;
    cfg.device.sync_region_size = 64 << 10;
    return cfg;
}

TEST(Pod, ThreadSlotsAssignedLowestFirst)
{
    Pod pod(basic_config());
    auto* proc = pod.create_process();
    auto t1 = pod.create_thread(proc);
    auto t2 = pod.create_thread(proc);
    EXPECT_EQ(t1->tid(), 1);
    EXPECT_EQ(t2->tid(), 2);
    pod.release_thread(std::move(t1));
    auto t3 = pod.create_thread(proc);
    EXPECT_EQ(t3->tid(), 1) << "freed slot is reused";
    pod.release_thread(std::move(t2));
    pod.release_thread(std::move(t3));
}

TEST(Pod, CrashedSlotIsNotReusedUntilAdopted)
{
    Pod pod(basic_config());
    auto* proc = pod.create_process();
    auto t1 = pod.create_thread(proc);
    cxl::ThreadId tid = t1->tid();
    pod.mark_crashed(std::move(t1));
    EXPECT_EQ(pod.slot_state(tid), SlotState::Crashed);

    auto t2 = pod.create_thread(proc);
    EXPECT_NE(t2->tid(), tid) << "crashed slot must await recovery";

    auto recovered = pod.adopt_thread(proc, tid);
    EXPECT_EQ(recovered->tid(), tid);
    EXPECT_EQ(pod.slot_state(tid), SlotState::Live);

    pod.release_thread(std::move(t2));
    pod.release_thread(std::move(recovered));
}

TEST(Pod, CrashedThreadsListsPendingRecovery)
{
    Pod pod(basic_config());
    auto* proc = pod.create_process();
    auto t1 = pod.create_thread(proc);
    auto t2 = pod.create_thread(proc);
    pod.mark_crashed(std::move(t1));
    pod.mark_crashed(std::move(t2));
    auto crashed = pod.crashed_threads();
    ASSERT_EQ(crashed.size(), 2u);
    EXPECT_EQ(crashed[0], 1);
    EXPECT_EQ(crashed[1], 2);
}

TEST(ThreadContextTest, WhiteBoxCrashFiresAtArmedPoint)
{
    Pod pod(basic_config());
    auto* proc = pod.create_process();
    auto t = pod.create_thread(proc);
    t->arm_crash(/*point=*/3, /*countdown=*/2);
    t->maybe_crash(1); // different point: no crash
    t->maybe_crash(3); // first hit: countdown 2 -> 1
    EXPECT_THROW(t->maybe_crash(3), ThreadCrashed);
    // Disarmed after firing.
    t->maybe_crash(3);
    pod.release_thread(std::move(t));
}

TEST(ThreadContextTest, RandomCrashEventuallyFires)
{
    Pod pod(basic_config());
    auto* proc = pod.create_process();
    auto t = pod.create_thread(proc);
    t->arm_random_crash(/*seed=*/5, /*prob=*/0.05);
    bool crashed = false;
    for (int i = 0; i < 1000 && !crashed; i++) {
        try {
            t->maybe_crash(0);
        } catch (const ThreadCrashed&) {
            crashed = true;
        }
    }
    EXPECT_TRUE(crashed);
    pod.release_thread(std::move(t));
}

TEST(ThreadContextTest, DisarmedThreadNeverCrashes)
{
    Pod pod(basic_config());
    auto* proc = pod.create_process();
    auto t = pod.create_thread(proc);
    t->arm_random_crash(5, 0.5);
    t->disarm_crash();
    for (int i = 0; i < 100; i++) {
        t->maybe_crash(0);
    }
    pod.release_thread(std::move(t));
}

} // namespace
