/// Pod resource-limit and misuse tests.

#include <gtest/gtest.h>

#include "pod/pod.h"

namespace {

using pod::Pod;
using pod::PodConfig;

PodConfig
tiny_config()
{
    PodConfig cfg;
    cfg.device.size = 1 << 20;
    cfg.device.sync_region_size = 64 << 10;
    return cfg;
}

TEST(PodLimits, ProcessLimitEnforced)
{
    Pod pod(tiny_config());
    for (std::uint32_t i = 0; i < cxl::kMaxProcesses; i++) {
        EXPECT_NE(pod.create_process(), nullptr);
    }
    EXPECT_DEATH(pod.create_process(), "too many processes");
}

TEST(PodLimits, ThreadSlotsExhaust)
{
    Pod pod(tiny_config());
    auto* proc = pod.create_process();
    std::vector<std::unique_ptr<pod::ThreadContext>> ctxs;
    for (std::uint32_t i = 0; i < cxl::kMaxThreads; i++) {
        ctxs.push_back(pod.create_thread(proc));
    }
    EXPECT_DEATH(pod.create_thread(proc), "no free thread slots");
    for (auto& c : ctxs) {
        pod.release_thread(std::move(c));
    }
}

TEST(PodLimits, AdoptingLiveSlotDies)
{
    Pod pod(tiny_config());
    auto* proc = pod.create_process();
    auto t = pod.create_thread(proc);
    cxl::ThreadId tid = t->tid();
    EXPECT_DEATH(pod.adopt_thread(proc, tid), "not crashed");
    pod.release_thread(std::move(t));
}

TEST(PodLimits, DeviceMisconfigurationDies)
{
    PodConfig cfg = tiny_config();
    cfg.device.size = 12345; // not page aligned
    EXPECT_DEATH(Pod pod(cfg), "page aligned");

    PodConfig cfg2 = tiny_config();
    cfg2.device.sync_region_size = cfg2.device.size + cxl::kPageSize;
    EXPECT_DEATH(Pod pod2(cfg2), "sync region larger");
}

TEST(PodLimits, AllSlotsRecoverableAfterMassCrash)
{
    // Crash a batch of threads; every slot must be adoptable and the pod
    // fully reusable afterwards.
    Pod pod(tiny_config());
    auto* proc = pod.create_process();
    std::vector<cxl::ThreadId> dead;
    for (int i = 0; i < 8; i++) {
        auto t = pod.create_thread(proc);
        dead.push_back(t->tid());
        pod.mark_crashed(std::move(t));
    }
    EXPECT_EQ(pod.crashed_threads().size(), 8u);
    for (cxl::ThreadId tid : dead) {
        auto t = pod.adopt_thread(proc, tid);
        EXPECT_EQ(t->tid(), tid);
        pod.release_thread(std::move(t));
    }
    EXPECT_TRUE(pod.crashed_threads().empty());
}

} // namespace
