/// @file
/// Real-thread (TSan-targeted) exercise of the pod fault layer: worker
/// threads on both hosts beat their liveness leases between allocator
/// ops while a monitor thread concurrently polls the detector, flaps an
/// edge's runtime health (EdgeStateCell atomics), refreshes the
/// degradation masks read lock-free on every allocation, and parks /
/// replays frees across the flapping edge. The monitor owns ALL traffic
/// over the flapped edge, so each Down window is sequenced against the
/// frees it parks — every other cross-thread interaction (lease cells,
/// health masks, shard free paths, the park list) races for real.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cxlalloc/pod_shard.h"
#include "pod/liveness.h"
#include "pod/pod.h"
#include "pod/topology.h"

namespace {

using cxl::EdgeState;
using cxlalloc::PodShardedAllocator;
using pod::Pod;
using pod::PodConfig;
using pod::Topology;

constexpr std::uint64_t kObjSize = 1024;
constexpr int kWorkersPerHost = 2;
constexpr int kWorkerIters = 1200;
constexpr int kMonitorFlips = 200;
constexpr std::uint32_t kCrossBlocks = 64;

cxl::EdgeCost
far_edge()
{
    cxl::EdgeCost e;
    e.read_add_ns = 100;
    e.write_add_ns = 150;
    return e;
}

TEST(FaultThreads, ConcurrentBeatsPollsFlapsAndParkedFreesStayConsistent)
{
    cxlalloc::Config cfg;
    cfg.small_slabs = 32;
    cfg.large_slabs = 8;
    cfg.huge_regions = 2;
    cfg.huge_region_size = 1 << 20;
    cfg.huge_descs_per_thread = 4;
    cfg.hazard_slots_per_thread = 4;
    cfg.app_sync_bytes = pod::kLeaseTableBytes;

    Topology topo = Topology::dense(2, 2, cxl::EdgeCost{}, far_edge());
    PodConfig pc;
    pc.device = PodShardedAllocator::device_config(
        cfg, topo, cxl::CoherenceMode::PartialHwcc,
        /*simulate_cache=*/false);
    pc.topology = topo;
    Pod pod(pc);
    PodShardedAllocator alloc(pod, cfg);
    std::vector<pod::Process*> procs;
    for (pod::HostId h = 0; h < 2; h++) {
        procs.push_back(pod.create_process(h));
        alloc.attach(*procs.back());
    }

    cxl::HeapOffset lease_base = alloc.shard(0).layout().app_sync();
    pod::LivenessConfig lcfg;
    lcfg.lease_base = lease_base;
    lcfg.suspect_after = 2;
    // Dead is out of reach: OS scheduling may starve a beating thread
    // for any number of polls, and a host declared Dead mid-run would
    // flip slots under the live workers.
    lcfg.dead_after = 1u << 30;
    pod::LivenessDetector detector(pod, lcfg);

    // Device-1 blocks the monitor will free across the flapping edge
    // (parked while Down, replayed when Up comes back).
    auto setup_h1 = pod.create_thread(procs[1]);
    alloc.attach_thread(*setup_h1);
    std::vector<cxl::HeapOffset> cross;
    for (std::uint32_t i = 0; i < kCrossBlocks; i++) {
        cxl::HeapOffset p = alloc.allocate(*setup_h1, kObjSize);
        ASSERT_NE(p, 0u);
        ASSERT_EQ(pod.device().device_of(p), 1);
        cross.push_back(p);
    }

    std::vector<std::unique_ptr<pod::ThreadContext>> worker_ctx;
    std::vector<pod::HostId> worker_host;
    for (pod::HostId h = 0; h < 2; h++) {
        for (int t = 0; t < kWorkersPerHost; t++) {
            worker_ctx.push_back(pod.create_thread(procs[h]));
            alloc.attach_thread(*worker_ctx.back());
            worker_host.push_back(h);
        }
    }
    auto monitor_ctx = pod.create_thread(procs[0]);
    alloc.attach_thread(*monitor_ctx);

    std::uint64_t epoch0 = topo.edge_epoch(0, 1);
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;

    // Workers: beat the lease, churn home-shard allocations. Their hosts'
    // edges never flap, so their sessions never cross a Down edge — the
    // mask reads on their alloc/free paths still race refresh_placement.
    for (std::size_t t = 0; t < worker_ctx.size(); t++) {
        threads.emplace_back([&, t] {
            pod::ThreadContext& ctx = *worker_ctx[t];
            pod::HostId host = worker_host[t];
            std::vector<cxl::HeapOffset> mine;
            for (int i = 0; i < kWorkerIters; i++) {
                pod::LivenessDetector::beat(ctx.mem(), lease_base, host);
                cxl::HeapOffset p = alloc.allocate(ctx, kObjSize);
                if (p == 0) {
                    failures.fetch_add(1);
                    break;
                }
                mine.push_back(p);
                if (mine.size() > 12) {
                    alloc.deallocate(ctx, mine.front());
                    mine.erase(mine.begin());
                }
            }
            for (cxl::HeapOffset p : mine) {
                alloc.deallocate(ctx, p);
            }
        });
    }

    // Monitor: flap edge (0, 1), refresh the masks, trickle the cross
    // frees (parking while Down), replay parked frees when Up, beat its
    // own host, and poll everyone's leases.
    threads.emplace_back([&] {
        std::size_t next_cross = 0;
        for (int f = 0; f < kMonitorFlips; f++) {
            bool down = (f % 2) == 0;
            topo.set_edge_state(0, 1, down ? EdgeState::Down
                                           : EdgeState::Up);
            alloc.refresh_placement();
            if (next_cross < cross.size()) {
                alloc.deallocate(*monitor_ctx, cross[next_cross++]);
            }
            if (!down) {
                alloc.replay_parked(*monitor_ctx);
            }
            pod::LivenessDetector::beat(monitor_ctx->mem(), lease_base, 0);
            if (f % 4 == 0) {
                detector.poll(monitor_ctx->mem());
            }
            std::this_thread::yield();
        }
        // Drain the remaining cross blocks with the edge restored.
        topo.set_edge_state(0, 1, EdgeState::Up);
        alloc.refresh_placement();
        while (next_cross < cross.size()) {
            alloc.deallocate(*monitor_ctx, cross[next_cross++]);
        }
        alloc.replay_parked(*monitor_ctx);
    });

    for (std::thread& th : threads) {
        th.join();
    }
    EXPECT_EQ(failures.load(), 0);

    // Quiescent verdicts: nothing died, the flap count is exactly the
    // epoch delta (nobody else touched that edge), and a final beat+poll
    // returns both hosts to Alive whatever suspicion was in flight.
    EXPECT_EQ(detector.deaths(), 0u);
    EXPECT_EQ(topo.edge_epoch(0, 1) - epoch0,
              static_cast<std::uint64_t>(kMonitorFlips) + 1);
    pod::LivenessDetector::beat(monitor_ctx->mem(), lease_base, 0);
    pod::LivenessDetector::beat(setup_h1->mem(), lease_base, 1);
    detector.poll(monitor_ctx->mem());
    EXPECT_EQ(detector.health(0), pod::HostHealth::Alive);
    EXPECT_EQ(detector.health(1), pod::HostHealth::Alive);

    // Exact block accounting: nothing parked, and counter == popcount on
    // every classed slab of both shards.
    EXPECT_EQ(alloc.parked_frees(), 0u);
    cxl::MemSession& mem = monitor_ctx->mem();
    for (cxl::DeviceId d = 0; d < alloc.shard_count(); d++) {
        cxlalloc::SlabHeap& heap = alloc.shard(d).small_heap();
        std::uint32_t length = heap.length(mem);
        for (std::uint32_t slab = 0; slab < length; slab++) {
            if (heap.debug_class_biased(mem, slab) == 0) {
                continue;
            }
            EXPECT_EQ(heap.debug_free_blocks(mem, slab),
                      heap.debug_bitset_count(mem, slab))
                << "shard " << d << " slab " << slab;
        }
    }
    alloc.check_invariants(mem);
}

} // namespace
