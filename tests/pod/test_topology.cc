/// @file
/// Pod topology: offset<->device window encoding, dense/octopus presets,
/// home/placement-order policy, per-window sync regions, and session-level
/// routing (local/remote accounting, window-span and reachability guards).

#include <gtest/gtest.h>

#include <memory>

#include "cxl/types.h"
#include "pod/pod.h"
#include "pod/topology.h"

namespace {

using cxl::EdgeCost;
using pod::HostId;
using pod::Pod;
using pod::PodConfig;
using pod::Topology;

EdgeCost
far_edge()
{
    EdgeCost e;
    e.read_add_ns = 100;
    e.write_add_ns = 150;
    e.ns_per_kib = 4;
    return e;
}

// ---------------------------------------------------------------------------
// Offset encoding

TEST(PodEncoding, RoundTripsAcrossWindowSizes)
{
    for (std::uint32_t bits : {12u, 16u, 24u, 40u}) {
        for (cxl::DeviceId dev : {0, 1, 7, 15}) {
            for (std::uint64_t local :
                 {std::uint64_t{0}, std::uint64_t{63},
                  (std::uint64_t{1} << bits) - 1}) {
                cxl::HeapOffset off = cxl::pod_encode(dev, local, bits);
                EXPECT_EQ(cxl::pod_device_of(off, bits), dev);
                EXPECT_EQ(cxl::pod_local_of(off, bits), local);
            }
        }
    }
}

TEST(PodEncoding, ZeroWindowBitsIsTheLegacySingleDevice)
{
    EXPECT_EQ(cxl::pod_device_of(0xdeadbeef, 0), 0);
    EXPECT_EQ(cxl::pod_local_of(0xdeadbeef, 0), 0xdeadbeefu);
}

TEST(PodEncoding, DeviceWindowsPartitionTheArena)
{
    cxl::DeviceConfig dc;
    dc.windows = 4;
    dc.window_bits = 16;
    dc.size = 4ull << 16;
    dc.sync_region_size = 4096;
    cxl::Device dev(dc);
    EXPECT_EQ(dev.windows(), 4u);
    EXPECT_EQ(dev.device_of(0), 0);
    EXPECT_EQ(dev.device_of((1ull << 16) - 1), 0);
    EXPECT_EQ(dev.device_of(1ull << 16), 1);
    EXPECT_EQ(dev.device_of(dc.size - 1), 3);
    EXPECT_EQ(dev.window_base(2), 2ull << 16);
    // Each window has its own sync prefix.
    for (cxl::DeviceId d = 0; d < 4; d++) {
        EXPECT_TRUE(dev.in_sync_region(dev.window_base(d)));
        EXPECT_TRUE(dev.in_sync_region(dev.window_base(d) + 4095));
        EXPECT_FALSE(dev.in_sync_region(dev.window_base(d) + 4096));
    }
}

TEST(PodEncodingDeathTest, MisshapenWindowConfigDies)
{
    cxl::DeviceConfig dc;
    dc.windows = 4;
    dc.window_bits = 16;
    dc.size = 3ull << 16; // not windows << window_bits
    EXPECT_DEATH(cxl::Device dev(dc), "windows");
}

// ---------------------------------------------------------------------------
// Topology presets and placement policy

TEST(Topology, DenseReachesEverythingNearestIsHome)
{
    Topology t = Topology::dense(4, 4, EdgeCost{}, far_edge());
    for (HostId h = 0; h < 4; h++) {
        for (cxl::DeviceId d = 0; d < 4; d++) {
            EXPECT_TRUE(t.reachable(h, d));
        }
        EXPECT_EQ(t.home_of(h), h); // 4 hosts over 4 devices: 1:1
        auto order = t.placement_order(h);
        ASSERT_EQ(order.size(), 4u);
        EXPECT_EQ(order.front(), t.home_of(h));
    }
    // Hosts sharing a device when hosts > devices.
    Topology wide = Topology::dense(8, 4, EdgeCost{}, far_edge());
    EXPECT_EQ(wide.home_of(0), 0);
    EXPECT_EQ(wide.home_of(1), 0);
    EXPECT_EQ(wide.home_of(7), 3);
}

TEST(Topology, OctopusArmsLimitReach)
{
    Topology t = Topology::octopus(4, 4, /*arms=*/2, EdgeCost{}, far_edge());
    for (HostId h = 0; h < 4; h++) {
        auto order = t.placement_order(h);
        EXPECT_EQ(order.size(), 2u);
        EXPECT_EQ(order.front(), t.home_of(h));
        std::uint32_t reachable = 0;
        for (cxl::DeviceId d = 0; d < 4; d++) {
            reachable += t.reachable(h, d) ? 1 : 0;
        }
        EXPECT_EQ(reachable, 2u);
    }
    // arms=1: only the nearest head.
    Topology one = Topology::octopus(4, 4, 1, EdgeCost{}, far_edge());
    EXPECT_EQ(one.placement_order(2).size(), 1u);
    EXPECT_EQ(one.home_of(2), 2);
}

TEST(Topology, PlacementOrderSortsByEdgeWeight)
{
    Topology t(1, 3);
    t.edge(0, 0).read_add_ns = 500;
    t.edge(0, 1).read_add_ns = 10;
    t.edge(0, 2).read_add_ns = 100;
    EXPECT_EQ(t.home_of(0), 1);
    auto order = t.placement_order(0);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 0);
}

TEST(TopologyDeathTest, HostWithNoReachableDeviceDies)
{
    Topology t(2, 2);
    t.edge(1, 0).reachable = false;
    t.edge(1, 1).reachable = false;
    EXPECT_DEATH(t.home_of(1), "reaches no device");
}

// ---------------------------------------------------------------------------
// Session routing through the topology

struct RoutedPod {
    explicit RoutedPod(Topology topo)
    {
        PodConfig pc;
        pc.device.windows = topo.devices();
        pc.device.window_bits = 16;
        pc.device.size = static_cast<std::uint64_t>(topo.devices()) << 16;
        pc.device.sync_region_size = 4096;
        pc.topology = topo;
        pod = std::make_unique<Pod>(pc);
    }

    std::unique_ptr<Pod> pod;
};

TEST(PodRouting, CountsLocalAndRemoteAccessesPerEdge)
{
    RoutedPod rig(Topology::dense(2, 2, EdgeCost{}, far_edge()));
    auto* p0 = rig.pod->create_process(0);
    auto t0 = rig.pod->create_thread(p0);
    EXPECT_EQ(t0->mem().home_device(), 0);
    EXPECT_EQ(t0->mem().pod_host(), 0u);

    t0->mem().store<std::uint64_t>(8, 1);              // window 0: local
    t0->mem().store<std::uint64_t>((1ull << 16) + 8, 2); // window 1: remote
    t0->mem().load<std::uint64_t>(16);                  // local

    const auto& c = t0->mem().counters();
    EXPECT_EQ(c.pod_local, 2u);
    EXPECT_EQ(c.pod_remote, 1u);
}

TEST(PodRouting, EdgeCostsChargeSimTime)
{
    Topology topo = Topology::dense(2, 2, EdgeCost{}, far_edge());
    RoutedPod rig(topo);
    auto* p0 = rig.pod->create_process(0);
    auto t0 = rig.pod->create_thread(p0);
    cxl::LatencyModel model = cxl::LatencyModel::cxl_hwcc();
    t0->mem().set_latency_model(&model);

    t0->mem().load<std::uint64_t>(0);
    std::uint64_t local_ns = t0->mem().sim_ns();
    t0->mem().load<std::uint64_t>(1ull << 16);
    std::uint64_t after_remote = t0->mem().sim_ns();
    // The far edge adds read_add_ns (plus byte cost) on top of base CXL.
    EXPECT_GE(after_remote - local_ns, local_ns + far_edge().read_add_ns);
}

TEST(PodRouting, SecondHostHasItsOwnHome)
{
    RoutedPod rig(Topology::dense(2, 2, EdgeCost{}, far_edge()));
    auto* p1 = rig.pod->create_process(1);
    auto t1 = rig.pod->create_thread(p1);
    EXPECT_EQ(t1->mem().home_device(), 1);
    t1->mem().store<std::uint64_t>((1ull << 16) + 8, 1);
    EXPECT_EQ(t1->mem().counters().pod_local, 1u);
    EXPECT_EQ(t1->mem().counters().pod_remote, 0u);
}

TEST(PodRouting, UnreachableWindowRejectsAccess)
{
    // Octopus with one arm: host 0 is wired to device 0 only; touching
    // window 1 is rejected deterministically, never misrouted. Since the
    // fault layer the rejection is a typed recoverable error, and the
    // exception distinguishes "no wire" from "wired edge currently Down".
    RoutedPod rig(Topology::octopus(2, 2, 1, EdgeCost{}, far_edge()));
    auto* p0 = rig.pod->create_process(0);
    auto t0 = rig.pod->create_thread(p0);
    t0->mem().store<std::uint64_t>(8, 1); // home window: fine
    try {
        t0->mem().load<std::uint64_t>(1ull << 16);
        FAIL() << "unwired access did not throw";
    } catch (const cxl::EdgeDownError& e) {
        EXPECT_EQ(e.device(), 1);
        EXPECT_FALSE(e.wired());
    }
    EXPECT_EQ(t0->mem().counters().pod_edge_down, 1u);
}

TEST(PodRoutingDeathTest, UnreachableWindowPanicsWithKnobOn)
{
    // The historical abort-on-unreachable contract survives behind the
    // debug knob for harnesses that want misroutes to be loud.
    RoutedPod rig(Topology::octopus(2, 2, 1, EdgeCost{}, far_edge()));
    auto* p0 = rig.pod->create_process(0);
    auto t0 = rig.pod->create_thread(p0);
    cxl::set_edge_down_panics(true);
    EXPECT_DEATH(t0->mem().load<std::uint64_t>(1ull << 16), "unreachable");
    cxl::set_edge_down_panics(false);
}

TEST(PodRoutingDeathTest, WindowSpanningAccessDies)
{
    RoutedPod rig(Topology::dense(2, 2, EdgeCost{}, far_edge()));
    auto* p0 = rig.pod->create_process(0);
    auto t0 = rig.pod->create_thread(p0);
    std::uint8_t buf[16] = {};
    EXPECT_DEATH(t0->mem().write_bytes((1ull << 16) - 8, buf, 16), "spans");
}

TEST(PodRoutingDeathTest, HostOutOfRangeDies)
{
    RoutedPod rig(Topology::dense(2, 2, EdgeCost{}, far_edge()));
    EXPECT_DEATH(rig.pod->create_process(5), "host");
}

TEST(PodRoutingDeathTest, TopologyMustMatchWindows)
{
    PodConfig pc;
    pc.device.windows = 2;
    pc.device.window_bits = 16;
    pc.device.size = 2ull << 16;
    pc.device.sync_region_size = 4096;
    pc.topology = Topology::dense(2, 4, EdgeCost{}, far_edge());
    EXPECT_DEATH(Pod pod(pc), "match");
}

} // namespace
