/// @file
/// Host liveness leases: beat/poll sequence tracking, the priming round,
/// Suspect on consecutive misses and the false-suspect round trip, the
/// Dead verdict flipping the host's slots, zombie beats not resurrecting
/// a Dead host, and degraded-link tolerance (beats and polls swallowing
/// EdgeDownError as misses, never crashes).

#include <gtest/gtest.h>

#include <memory>

#include "cxl/types.h"
#include "pod/liveness.h"
#include "pod/pod.h"
#include "pod/topology.h"

namespace {

using cxl::EdgeState;
using pod::HostHealth;
using pod::LivenessConfig;
using pod::LivenessDetector;
using pod::Pod;
using pod::PodConfig;
using pod::Topology;

constexpr cxl::HeapOffset kLeaseBase = 512;

cxl::EdgeCost
far_edge()
{
    cxl::EdgeCost e;
    e.read_add_ns = 100;
    e.write_add_ns = 150;
    return e;
}

/// 2 hosts x 2 devices; the lease table lives in device 0's sync prefix,
/// so host 1 beats across the fabric and the monitor on host 0 reads it
/// locally.
struct LivenessPod {
    LivenessPod()
    {
        PodConfig pc;
        pc.device.windows = 2;
        pc.device.window_bits = 16;
        pc.device.size = 2ull << 16;
        pc.device.sync_region_size = 4096;
        pc.topology = Topology::dense(2, 2, cxl::EdgeCost{}, far_edge());
        pod = std::make_unique<Pod>(pc);
        for (pod::HostId h = 0; h < 2; h++) {
            procs.push_back(pod->create_process(h));
            ctxs.push_back(pod->create_thread(procs.back()));
        }
    }

    LivenessDetector
    detector(std::uint32_t suspect_after, std::uint32_t dead_after)
    {
        LivenessConfig cfg;
        cfg.lease_base = kLeaseBase;
        cfg.suspect_after = suspect_after;
        cfg.dead_after = dead_after;
        return LivenessDetector(*pod, cfg);
    }

    void
    beat(pod::HostId host)
    {
        LivenessDetector::beat(ctxs[host]->mem(), kLeaseBase, host);
    }

    cxl::MemSession& monitor() { return ctxs[0]->mem(); }

    std::unique_ptr<Pod> pod;
    std::vector<pod::Process*> procs;
    std::vector<std::unique_ptr<pod::ThreadContext>> ctxs;
};

TEST(Liveness, LeaseCellsAreEightBytesApart)
{
    EXPECT_EQ(LivenessDetector::lease_cell(kLeaseBase, 0), kLeaseBase);
    EXPECT_EQ(LivenessDetector::lease_cell(kLeaseBase, 3),
              kLeaseBase + 24u);
}

TEST(Liveness, BeatAdvancesTheSequence)
{
    LivenessPod rig;
    EXPECT_EQ(rig.monitor().atomic_load64(
                  LivenessDetector::lease_cell(kLeaseBase, 1)),
              0u);
    rig.beat(1);
    rig.beat(1);
    rig.beat(1);
    EXPECT_EQ(rig.monitor().atomic_load64(
                  LivenessDetector::lease_cell(kLeaseBase, 1)),
              3u);
    // Host 0's cell is untouched.
    EXPECT_EQ(rig.monitor().atomic_load64(
                  LivenessDetector::lease_cell(kLeaseBase, 0)),
              0u);
}

TEST(Liveness, PrimingRoundCountsNoMisses)
{
    LivenessPod rig;
    LivenessDetector det = rig.detector(1, 2);
    // Nobody has ever beaten, but the first poll only records baselines.
    EXPECT_TRUE(det.poll(rig.monitor()).empty());
    EXPECT_EQ(det.rounds(), 1u);
    for (pod::HostId h = 0; h < 2; h++) {
        EXPECT_EQ(det.misses(h), 0u);
        EXPECT_EQ(det.health(h), HostHealth::Alive);
    }
}

TEST(Liveness, ConsecutiveMissesRaiseSuspectAndABeatClearsIt)
{
    LivenessPod rig;
    LivenessDetector det = rig.detector(/*suspect_after=*/2,
                                        /*dead_after=*/10);
    det.poll(rig.monitor()); // priming

    rig.beat(0);
    det.poll(rig.monitor()); // host 0 advanced, host 1 missed (1)
    EXPECT_EQ(det.health(0), HostHealth::Alive);
    EXPECT_EQ(det.health(1), HostHealth::Alive);
    EXPECT_EQ(det.misses(1), 1u);

    rig.beat(0);
    det.poll(rig.monitor()); // host 1 missed (2): Suspect
    EXPECT_EQ(det.health(1), HostHealth::Suspect);
    EXPECT_EQ(det.false_suspects(), 0u);

    rig.beat(1); // it was just slow
    det.poll(rig.monitor());
    EXPECT_EQ(det.health(1), HostHealth::Alive);
    EXPECT_EQ(det.misses(1), 0u);
    EXPECT_EQ(det.false_suspects(), 1u);
    EXPECT_EQ(det.deaths(), 0u);
}

TEST(Liveness, DeadVerdictFlipsTheHostsSlotsOnce)
{
    LivenessPod rig;
    cxl::ThreadId victim = rig.ctxs[1]->tid();
    LivenessDetector det = rig.detector(/*suspect_after=*/2,
                                        /*dead_after=*/3);
    det.poll(rig.monitor()); // priming
    for (int round = 1; round <= 2; round++) {
        rig.beat(0);
        EXPECT_TRUE(det.poll(rig.monitor()).empty());
    }
    EXPECT_EQ(det.health(1), HostHealth::Suspect);
    EXPECT_EQ(rig.pod->slot_state(victim), pod::SlotState::Live);

    rig.beat(0);
    std::vector<pod::HostId> dead = det.poll(rig.monitor()); // miss 3
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0], 1u);
    EXPECT_EQ(det.health(1), HostHealth::Dead);
    EXPECT_EQ(det.deaths(), 1u);
    // The verdict crashed every Live slot of the dead host...
    EXPECT_EQ(rig.pod->slot_state(victim), pod::SlotState::Crashed);
    // ...and the beating host is untouched.
    EXPECT_EQ(det.health(0), HostHealth::Alive);
    EXPECT_EQ(rig.pod->slot_state(rig.ctxs[0]->tid()),
              pod::SlotState::Live);

    // Dead is reported exactly once, and further misses change nothing.
    rig.beat(0);
    EXPECT_TRUE(det.poll(rig.monitor()).empty());
    EXPECT_EQ(det.deaths(), 1u);
}

TEST(Liveness, ZombieBeatDoesNotResurrectADeadHost)
{
    LivenessPod rig;
    LivenessDetector det = rig.detector(1, 2);
    det.poll(rig.monitor());
    rig.beat(0);
    det.poll(rig.monitor());
    rig.beat(0);
    det.poll(rig.monitor());
    ASSERT_EQ(det.health(1), HostHealth::Dead);

    // A lingering thread of the "dead" host beats again: adoption may
    // already be rewriting its state, so the verdict must hold.
    rig.beat(1);
    rig.beat(0);
    EXPECT_TRUE(det.poll(rig.monitor()).empty());
    EXPECT_EQ(det.health(1), HostHealth::Dead);
    EXPECT_EQ(det.deaths(), 1u);
    EXPECT_EQ(det.false_suspects(), 0u);
}

TEST(Liveness, BeatSwallowsADownEdge)
{
    LivenessPod rig;
    // Host 1 loses its link to the lease device: the beat is dropped on
    // the floor, not thrown into the caller.
    rig.pod->topology().set_edge_state(1, 0, EdgeState::Down);
    EXPECT_NO_THROW(rig.beat(1));
    EXPECT_EQ(rig.monitor().atomic_load64(
                  LivenessDetector::lease_cell(kLeaseBase, 1)),
              0u);
    rig.pod->topology().set_edge_state(1, 0, EdgeState::Up);
    rig.beat(1);
    EXPECT_EQ(rig.monitor().atomic_load64(
                  LivenessDetector::lease_cell(kLeaseBase, 1)),
              1u);
}

TEST(Liveness, MonitorLinkOutageCountsAsMissesNotACrash)
{
    LivenessPod rig;
    LivenessDetector det = rig.detector(/*suspect_after=*/1,
                                        /*dead_after=*/100);
    det.poll(rig.monitor()); // priming
    // The monitor's own link to the lease device flaps: every host's
    // lease becomes unobservable, which is weighed exactly like every
    // host going silent — misses for all, including the monitor's host.
    rig.pod->topology().set_edge_state(0, 0, EdgeState::Down);
    rig.beat(1); // host 1 is fine and keeps beating over its own edge
    EXPECT_NO_THROW(det.poll(rig.monitor()));
    EXPECT_EQ(det.misses(0), 1u);
    EXPECT_EQ(det.misses(1), 1u);
    EXPECT_EQ(det.health(1), HostHealth::Suspect);

    // The link recovers: the beats that kept flowing clear the suspicion
    // and count the false suspects the outage manufactured (both hosts
    // were suspected, both proved alive).
    rig.pod->topology().set_edge_state(0, 0, EdgeState::Up);
    rig.beat(0);
    rig.beat(1);
    det.poll(rig.monitor());
    EXPECT_EQ(det.health(0), HostHealth::Alive);
    EXPECT_EQ(det.health(1), HostHealth::Alive);
    EXPECT_EQ(det.false_suspects(), 2u);
    EXPECT_EQ(det.deaths(), 0u);
}

TEST(LivenessDeathTest, MisshapenConfigDies)
{
    LivenessPod rig;
    LivenessConfig cfg;
    cfg.lease_base = kLeaseBase;
    cfg.suspect_after = 0;
    EXPECT_DEATH(LivenessDetector det(*rig.pod, cfg), "suspect_after");
    cfg.suspect_after = 4;
    cfg.dead_after = 2;
    EXPECT_DEATH(LivenessDetector det(*rig.pod, cfg), "dead_after");
}

} // namespace
