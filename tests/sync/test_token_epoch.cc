#include "sync/token_epoch.h"

#include <atomic>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

namespace {

using cxlsync::Retired;
using cxlsync::TokenEpoch;

std::atomic<int> g_freed{0};

void
count_free(void*, std::uint64_t)
{
    g_freed.fetch_add(1);
}

class TokenEpochTest : public ::testing::Test {
  protected:
    void SetUp() override { g_freed = 0; }
};

TEST_F(TokenEpochTest, RetiredNodeNotFreedWhileReaderActive)
{
    TokenEpoch ebr(2);
    ebr.enter(0);
    ebr.enter(1);
    ebr.retire(0, Retired{count_free, nullptr, 0});
    ebr.exit(0); // thread 1 still inside: epoch cannot advance
    EXPECT_EQ(g_freed.load(), 0);
    ebr.exit(1);
}

TEST_F(TokenEpochTest, RetiredNodeFreedAfterTwoAdvances)
{
    TokenEpoch ebr(1);
    ebr.enter(0);
    ebr.retire(0, Retired{count_free, nullptr, 0});
    ebr.exit(0);
    // Single participant: each exit advances; after enough rounds the
    // limbo bucket cycles back and is freed.
    for (int i = 0; i < 4 && g_freed.load() == 0; i++) {
        ebr.enter(0);
        ebr.exit(0);
    }
    EXPECT_EQ(g_freed.load(), 1);
}

TEST_F(TokenEpochTest, DrainAllFreesEverything)
{
    TokenEpoch ebr(2);
    ebr.enter(0);
    ebr.retire(0, Retired{count_free, nullptr, 0});
    ebr.retire(0, Retired{count_free, nullptr, 1});
    ebr.exit(0);
    ebr.drain_all();
    EXPECT_EQ(g_freed.load(), 2);
}

TEST_F(TokenEpochTest, DestructorDrains)
{
    {
        TokenEpoch ebr(1);
        ebr.enter(0);
        ebr.retire(0, Retired{count_free, nullptr, 0});
        ebr.exit(0);
    }
    EXPECT_EQ(g_freed.load(), 1);
}

TEST_F(TokenEpochTest, ConcurrentChurnFreesEventually)
{
    constexpr int kThreads = 4;
    constexpr int kOps = 2000;
    TokenEpoch ebr(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&ebr, t] {
            for (int i = 0; i < kOps; i++) {
                ebr.enter(t);
                ebr.retire(t, Retired{count_free, nullptr, 0});
                ebr.exit(t);
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    int freed_before_drain = g_freed.load();
    EXPECT_GT(freed_before_drain, 0)
        << "token passing must reclaim during execution, not only at drain";
    ebr.drain_all();
    EXPECT_EQ(g_freed.load(), kThreads * kOps);
}

TEST_F(TokenEpochTest, EpochAdvancesWhenAllQuiescent)
{
    TokenEpoch ebr(2);
    std::uint64_t e0 = ebr.epoch();
    ebr.enter(0);
    ebr.exit(0); // holder of token: advance should happen
    EXPECT_GT(ebr.epoch(), e0);
}

} // namespace
