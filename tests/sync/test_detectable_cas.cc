#include "sync/detectable_cas.h"

#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "cxl/device.h"
#include "cxl/nmp.h"

namespace {

using cxl::CoherenceMode;
using cxl::Device;
using cxl::DeviceConfig;
using cxl::MemSession;
using cxl::Nmp;
using cxlsync::DcasWord;
using cxlsync::DetectableCas;

constexpr cxl::HeapOffset kHelpBase = 0;
constexpr cxl::HeapOffset kWord = 8 * (cxl::kMaxThreads + 2);

struct Rig {
    explicit Rig(CoherenceMode mode = CoherenceMode::PartialHwcc)
        : dev(DeviceConfig{.size = 1 << 20,
                           .mode = mode,
                           .sync_region_size = 64 << 10}),
          nmp(&dev), dcas(kHelpBase)
    {
    }

    MemSession
    session(cxl::ThreadId tid)
    {
        return MemSession(&dev, &nmp, tid);
    }

    Device dev;
    Nmp nmp;
    DetectableCas dcas;
};

TEST(DcasWord, PackUnpackRoundTrip)
{
    std::uint64_t w = DcasWord::pack(0xdeadbeef, 17, 42);
    EXPECT_EQ(DcasWord::value(w), 0xdeadbeefu);
    EXPECT_EQ(DcasWord::tid(w), 17);
    EXPECT_EQ(DcasWord::version(w), 42);
}

TEST(DcasWord, ZeroWordIsUnowned)
{
    EXPECT_EQ(DcasWord::value(0), 0u);
    EXPECT_EQ(DcasWord::tid(0), cxl::kNoThread);
}

TEST(VersionGeq, WrapAware)
{
    EXPECT_TRUE(cxlsync::version_geq(5, 5));
    EXPECT_TRUE(cxlsync::version_geq(6, 5));
    EXPECT_FALSE(cxlsync::version_geq(5, 6));
    // Wraparound in the 15-bit circular space: 2 is "after" 32766.
    EXPECT_TRUE(cxlsync::version_geq(2, 32766));
    EXPECT_FALSE(cxlsync::version_geq(32766, 2));
}

TEST(DetectableCas, SuccessfulCasVisibleViaRead)
{
    Rig rig;
    MemSession s = rig.session(1);
    auto r = rig.dcas.try_cas(s, kWord, 0, 123, /*version=*/1);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(rig.dcas.read(s, kWord), 123u);
}

TEST(DetectableCas, FailureReturnsObservedValue)
{
    Rig rig;
    MemSession s = rig.session(1);
    ASSERT_TRUE(rig.dcas.try_cas(s, kWord, 0, 123, 1).success);
    auto r = rig.dcas.try_cas(s, kWord, 0, 55, 2);
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.observed, 123u);
}

TEST(DetectableCas, RecoveryDetectsSuccessWhileTagInPlace)
{
    Rig rig;
    MemSession s = rig.session(1);
    ASSERT_TRUE(rig.dcas.try_cas(s, kWord, 0, 7, /*version=*/9).success);
    // "Crash": thread 1 asks whether its op with version 9 took effect.
    EXPECT_TRUE(rig.dcas.did_succeed(s, kWord, 9));
    // Its never-executed next op did not.
    EXPECT_FALSE(rig.dcas.did_succeed(s, kWord, 10));
}

TEST(DetectableCas, RecoveryDetectsSuccessAfterDisplacement)
{
    // The essential detectable-CAS property: thread 1's successful CAS is
    // detectable even after thread 2 overwrites the word, because thread 2
    // recorded the displaced tag in the help array.
    Rig rig;
    MemSession s1 = rig.session(1);
    MemSession s2 = rig.session(2);
    ASSERT_TRUE(rig.dcas.try_cas(s1, kWord, 0, 7, /*version=*/9).success);
    ASSERT_TRUE(rig.dcas.try_cas(s2, kWord, 7, 8, /*version=*/1).success);
    EXPECT_TRUE(rig.dcas.did_succeed(s1, kWord, 9));
}

TEST(DetectableCas, RecoveryDetectsFailure)
{
    Rig rig;
    MemSession s1 = rig.session(1);
    MemSession s2 = rig.session(2);
    // Thread 1's CAS never happened (it "crashed" before the attempt);
    // thread 2's ops must not make thread 1's query come back true.
    ASSERT_TRUE(rig.dcas.try_cas(s2, kWord, 0, 7, 1).success);
    ASSERT_TRUE(rig.dcas.try_cas(s2, kWord, 7, 9, 2).success);
    EXPECT_FALSE(rig.dcas.did_succeed(s1, kWord, 4));
}

TEST(DetectableCas, HelpArrayTracksNewestVersion)
{
    Rig rig;
    MemSession s1 = rig.session(1);
    MemSession s2 = rig.session(2);
    // Two successive successful ops by thread 1, both displaced by
    // thread 2: both must be detectable.
    ASSERT_TRUE(rig.dcas.try_cas(s1, kWord, 0, 1, 1).success);
    ASSERT_TRUE(rig.dcas.try_cas(s2, kWord, 1, 2, 1).success);
    ASSERT_TRUE(rig.dcas.try_cas(s1, kWord, 2, 3, 2).success);
    ASSERT_TRUE(rig.dcas.try_cas(s2, kWord, 3, 4, 2).success);
    EXPECT_TRUE(rig.dcas.did_succeed(s1, kWord, 1));
    EXPECT_TRUE(rig.dcas.did_succeed(s1, kWord, 2));
    EXPECT_FALSE(rig.dcas.did_succeed(s1, kWord, 3));
}

TEST(DetectableCas, WorksOverMcas)
{
    Rig rig(CoherenceMode::NoHwcc);
    MemSession s1 = rig.session(1);
    MemSession s2 = rig.session(2);
    ASSERT_TRUE(rig.dcas.try_cas(s1, kWord, 0, 7, 9).success);
    ASSERT_TRUE(rig.dcas.try_cas(s2, kWord, 7, 8, 1).success);
    EXPECT_TRUE(rig.dcas.did_succeed(s1, kWord, 9));
    EXPECT_GT(rig.nmp.total_ops(), 0u);
}

TEST(DetectableCas, ConcurrentCountedIncrements)
{
    for (CoherenceMode mode :
         {CoherenceMode::PartialHwcc, CoherenceMode::NoHwcc}) {
        Rig rig(mode);
        constexpr int kThreads = 4;
        constexpr int kOps = 300;
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; t++) {
            threads.emplace_back([&rig, t] {
                MemSession s =
                    rig.session(static_cast<cxl::ThreadId>(t + 1));
                for (std::uint16_t v = 1; v <= kOps; v++) {
                    std::uint32_t cur = rig.dcas.read(s, kWord);
                    while (true) {
                        auto r = rig.dcas.try_cas(s, kWord, cur, cur + 1, v);
                        if (r.success) {
                            break;
                        }
                        cur = r.observed;
                    }
                }
            });
        }
        for (auto& th : threads) {
            th.join();
        }
        MemSession check = rig.session(kThreads + 1);
        EXPECT_EQ(rig.dcas.read(check, kWord), kThreads * kOps);
    }
}

TEST(DetectableCas, NonrecoverableVariantSkipsHelpRecording)
{
    Rig rig;
    DetectableCas plain(kHelpBase, /*detectable=*/false);
    MemSession s1 = rig.session(1);
    MemSession s2 = rig.session(2);
    ASSERT_TRUE(plain.try_cas(s1, kWord, 0, 7, 1).success);
    ASSERT_TRUE(plain.try_cas(s2, kWord, 7, 8, 1).success);
    // Help entry for thread 1 was never written.
    EXPECT_EQ(s1.atomic_load64(kHelpBase + 8 * 1), 0u);
}

} // namespace
