#include "sync/hazard_offsets.h"

#include <gtest/gtest.h>

#include "cxl/device.h"
#include "cxl/nmp.h"

namespace {

using cxl::CoherenceMode;
using cxl::Device;
using cxl::DeviceConfig;
using cxl::MemSession;
using cxl::Nmp;
using cxlsync::HazardOffsets;

class HazardTest : public ::testing::Test {
  protected:
    HazardTest()
        : dev_(DeviceConfig{.size = 4 << 20,
                            .mode = CoherenceMode::PartialHwcc,
                            .sync_region_size = 4096,
                            .simulate_cache = true}),
          nmp_(&dev_), hazards_(1 << 20, /*slots_per_thread=*/4)
    {
    }

    MemSession
    session(cxl::ThreadId tid)
    {
        return MemSession(&dev_, &nmp_, tid);
    }

    Device dev_;
    Nmp nmp_;
    HazardOffsets hazards_;
};

TEST_F(HazardTest, PublishThenVisibleToScan)
{
    MemSession a = session(1);
    MemSession b = session(2);
    hazards_.publish(a, 0x5000);
    // The flush-after-write / flush-before-read discipline makes the hazard
    // visible despite simulated (incoherent) caches.
    EXPECT_TRUE(hazards_.is_published(b, 0x5000));
    EXPECT_FALSE(hazards_.is_published(b, 0x6000));
}

TEST_F(HazardTest, RemoveBySlot)
{
    MemSession a = session(1);
    std::uint32_t slot = hazards_.publish(a, 0x5000);
    hazards_.remove(a, slot);
    MemSession b = session(2);
    EXPECT_FALSE(hazards_.is_published(b, 0x5000));
}

TEST_F(HazardTest, RemoveByValue)
{
    MemSession a = session(1);
    hazards_.publish(a, 0x5000);
    hazards_.publish(a, 0x7000);
    EXPECT_TRUE(hazards_.remove_value(a, 0x5000));
    EXPECT_FALSE(hazards_.remove_value(a, 0x5000));
    MemSession b = session(2);
    EXPECT_FALSE(hazards_.is_published(b, 0x5000));
    EXPECT_TRUE(hazards_.is_published(b, 0x7000));
}

TEST_F(HazardTest, SlotsFillLowestFirstAndRecycle)
{
    MemSession a = session(1);
    EXPECT_EQ(hazards_.publish(a, 0x1000), 0u);
    EXPECT_EQ(hazards_.publish(a, 0x2000), 1u);
    hazards_.remove(a, 0);
    EXPECT_EQ(hazards_.publish(a, 0x3000), 0u);
}

TEST_F(HazardTest, RowExhaustionAborts)
{
    MemSession a = session(1);
    for (int i = 0; i < 4; i++) {
        hazards_.publish(a, 0x1000 + i * 8);
    }
    EXPECT_DEATH(hazards_.publish(a, 0x9000), "full");
}

TEST_F(HazardTest, PerThreadRowsAreIndependent)
{
    MemSession a = session(1);
    MemSession b = session(2);
    hazards_.publish(a, 0x5000);
    hazards_.publish(b, 0x5000);
    // Removing thread 1's publication leaves thread 2's intact: the mapping
    // is still held somewhere in the pod, so reclamation must wait.
    EXPECT_TRUE(hazards_.remove_value(a, 0x5000));
    MemSession c = session(3);
    EXPECT_TRUE(hazards_.is_published(c, 0x5000));
    EXPECT_TRUE(hazards_.remove_value(b, 0x5000));
    EXPECT_FALSE(hazards_.is_published(c, 0x5000));
}

TEST_F(HazardTest, CrashedThreadsHazardsRemainPublished)
{
    // A crashed process never removed its hazard: the offset must stay
    // protected (conservative leak, reclaimed by that slot's recovery).
    MemSession a = session(1);
    hazards_.publish(a, 0x5000);
    a.drop_cache(); // crash: note the publish flushed, so state survives
    MemSession b = session(2);
    EXPECT_TRUE(hazards_.is_published(b, 0x5000));
}

} // namespace
