/// Model test of the SWccDesc.free counter (the O(1) slab-fullness
/// tracker): after every operation — alloc, local free, remote free with
/// steal, scavenge, crash recovery — every classed slab's counter must
/// equal the popcount of its free bitset. The bitset stays the durable
/// truth; the counter is a shadow the fast path trusts, so any divergence
/// is a correctness bug (a slab could be mis-detected as full or empty).

#include <gtest/gtest.h>
#include <vector>

#include "common/random.h"
#include "fixture.h"

namespace {

using cxltest::Rig;
using pod::ThreadCrashed;

/// Asserts counter == popcount for every classed slab of both slab heaps.
/// Classless slabs (unsized/global) are skipped: their bitset is stale
/// leftovers by design and the counter is rebuilt by the next bitset_fill.
void
check_counters(Rig& rig, cxl::MemSession& mem)
{
    for (auto* heap : {&rig.alloc.small_heap(), &rig.alloc.large_heap()}) {
        std::uint32_t len = heap->length(mem);
        for (std::uint32_t slab = 0; slab < len; slab++) {
            if (heap->debug_class_biased(mem, slab) == 0) {
                continue;
            }
            ASSERT_EQ(heap->debug_free_blocks(mem, slab),
                      heap->debug_bitset_count(mem, slab))
                << "slab " << slab << " counter diverged from bitset";
        }
    }
}

TEST(BitsetCounter, RandomizedAllocFreeKeepsCounterExact)
{
    Rig rig;
    auto t = rig.thread();
    cxlcommon::Xoshiro rng(7);
    std::vector<cxl::HeapOffset> live;
    for (int step = 0; step < 3000; step++) {
        if (rng.next_below(3) != 0 || live.empty()) {
            // Mixed small + large classes; tiny sizes exercise the widest
            // bitsets (8 B class: 4096 blocks, 64 words).
            std::uint64_t size = 8 + rng.next_below(2040);
            cxl::HeapOffset p = rig.alloc.allocate(*t, size);
            if (p != 0) {
                live.push_back(p);
            }
        } else {
            std::size_t pick = rng.next_below(live.size());
            rig.alloc.deallocate(*t, live[pick]);
            live[pick] = live.back();
            live.pop_back();
        }
        check_counters(rig, t->mem());
    }
    for (auto p : live) {
        rig.alloc.deallocate(*t, p);
    }
    check_counters(rig, t->mem());
    rig.alloc.check_invariants(t->mem());
    rig.alloc.check_local_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(BitsetCounter, RemoteFreeAndStealKeepCounterExact)
{
    Rig rig;
    auto producer = rig.thread();
    auto consumer = rig.thread();
    // Fill several slabs completely (512 blocks each at 64 B) so they
    // detach, then free every block from the other thread: the HWcc
    // down-counter hits zero and the consumer steals the slabs.
    std::vector<cxl::HeapOffset> blocks;
    for (int i = 0; i < 4 * 512; i++) {
        cxl::HeapOffset p = rig.alloc.allocate(*producer, 64);
        ASSERT_NE(p, 0u);
        blocks.push_back(p);
    }
    check_counters(rig, producer->mem());
    for (std::size_t i = 0; i < blocks.size(); i++) {
        rig.alloc.deallocate(*consumer, blocks[i]);
        if (i % 64 == 0) {
            check_counters(rig, consumer->mem());
        }
    }
    check_counters(rig, consumer->mem());
    // Stolen slabs must be reusable with a consistent counter.
    for (int i = 0; i < 600; i++) {
        cxl::HeapOffset p = rig.alloc.allocate(*consumer, 64);
        ASSERT_NE(p, 0u);
    }
    check_counters(rig, consumer->mem());
    rig.pod.release_thread(std::move(producer));
    rig.pod.release_thread(std::move(consumer));
}

TEST(BitsetCounter, ScavengeUnderPressureKeepsCounterExact)
{
    // Exhaust the small heap with one class, free everything (leaving warm
    // slabs on the sized list), then demand another class until scavenging
    // reclaims them: the one-load emptiness check must agree with the scan.
    Rig rig;
    auto t = rig.thread();
    std::vector<cxl::HeapOffset> live;
    cxl::HeapOffset p;
    while ((p = rig.alloc.allocate(*t, 512)) != 0) {
        live.push_back(p);
    }
    check_counters(rig, t->mem());
    for (auto q : live) {
        rig.alloc.deallocate(*t, q);
    }
    check_counters(rig, t->mem());
    live.clear();
    while ((p = rig.alloc.allocate(*t, 1024)) != 0) {
        live.push_back(p);
    }
    EXPECT_FALSE(live.empty());
    check_counters(rig, t->mem());
    rig.alloc.check_invariants(t->mem());
    rig.alloc.check_local_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(BitsetCounter, CrashpointSweepKeepsCounterExact)
{
    // Crash at every instrumentation point in turn, recover, and demand
    // the counter/bitset agreement recovery promises (the counter is
    // recomputed from the durable bitset, never trusted across a crash).
    for (int countdown = 1; countdown <= 60; countdown += 3) {
        Rig rig;
        auto t = rig.thread();
        cxlcommon::Xoshiro rng(1000 + countdown);
        std::vector<cxl::HeapOffset> live;
        bool crashed = false;
        for (int point :
             {cxlalloc::crashpoint::kAfterRecord,
              cxlalloc::crashpoint::kMidInit,
              cxlalloc::crashpoint::kAfterDcas,
              cxlalloc::crashpoint::kMidAlloc,
              cxlalloc::crashpoint::kMidDetach,
              cxlalloc::crashpoint::kMidFreeLocal,
              cxlalloc::crashpoint::kMidSteal,
              cxlalloc::crashpoint::kMidPushGlobal}) {
            t->arm_crash(point, static_cast<std::uint32_t>(countdown));
            try {
                for (int i = 0; i < 400 && !crashed; i++) {
                    if (rng.next_below(3) != 0 || live.empty()) {
                        cxl::HeapOffset p =
                            rig.alloc.allocate(*t, 8 + rng.next_below(1016));
                        if (p != 0) {
                            live.push_back(p);
                        }
                    } else {
                        std::size_t pick = rng.next_below(live.size());
                        rig.alloc.deallocate(*t, live[pick]);
                        live[pick] = live.back();
                        live.pop_back();
                    }
                }
                t->disarm_crash();
            } catch (const ThreadCrashed&) {
                crashed = true;
                cxl::ThreadId tid = t->tid();
                rig.pod.mark_crashed(std::move(t));
                t = rig.pod.adopt_thread(rig.process, tid);
                rig.alloc.recover(*t);
                check_counters(rig, t->mem());
                rig.alloc.check_invariants(t->mem());
                rig.alloc.check_local_invariants(t->mem());
            }
            if (crashed) {
                break;
            }
        }
        // Crashed or not, the heap keeps serving with exact counters.
        for (int i = 0; i < 30; i++) {
            cxl::HeapOffset p = rig.alloc.allocate(*t, 64);
            ASSERT_NE(p, 0u);
            rig.alloc.deallocate(*t, p);
        }
        check_counters(rig, t->mem());
        rig.pod.release_thread(std::move(t));
    }
}

} // namespace
