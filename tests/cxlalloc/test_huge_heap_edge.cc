/// Deeper huge-heap tests: descriptor pool exhaustion/recycling, fault
/// behaviour for freed allocations, multi-region usage, and hazard
/// lifecycle across the fault handler.

#include <gtest/gtest.h>
#include <vector>

#include "fixture.h"

namespace {

using cxltest::Rig;
using cxltest::RigOptions;

TEST(HugeEdge, DescriptorPoolExhaustsAndRecyclesViaCleanup)
{
    Rig rig; // 16 descriptors per thread in the fixture config
    auto t = rig.thread();
    std::vector<cxl::HeapOffset> live;
    // Hold 6 live allocations (hazard slots bound concurrent mappings per
    // thread), then churn well past the pool size: only cleanup-based
    // descriptor recycling lets this succeed.
    for (int i = 0; i < 6; i++) {
        cxl::HeapOffset p = rig.alloc.allocate(*t, 600 << 10);
        ASSERT_NE(p, 0u);
        live.push_back(p);
    }
    for (int i = 0; i < 100; i++) {
        cxl::HeapOffset p = rig.alloc.allocate(*t, 600 << 10);
        ASSERT_NE(p, 0u) << "churn iteration " << i;
        rig.alloc.deallocate(*t, p);
    }
    for (auto p : live) {
        rig.alloc.deallocate(*t, p);
    }
    rig.alloc.cleanup(*t);
    rig.alloc.check_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(HugeEdge, FaultOnFreedAllocationIsARealSegfault)
{
    // PC-T must NOT resurrect freed memory: once a huge allocation is
    // freed, a process without the mapping faulting on it gets a genuine
    // segfault (the descriptor walk finds no live allocation).
    RigOptions opt;
    opt.checked_mappings = true;
    Rig rig(opt);
    auto* proc2 = rig.new_process();
    auto t1 = rig.thread();
    auto t2 = rig.thread(proc2);
    cxl::HeapOffset p = rig.alloc.allocate(*t1, 1 << 20);
    rig.alloc.deallocate(*t1, p);
    EXPECT_DEATH((void)rig.alloc.pointer(*t2, p, 8), "segfault");
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(HugeEdge, SeveralAllocationsShareOneRegion)
{
    // Regions are 4 MiB in the fixture; four 600 KiB allocations must be
    // carved from ONE reservation region (the interval set at work), not
    // one region each.
    Rig rig;
    auto t = rig.thread();
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 4; i++) {
        ptrs.push_back(rig.alloc.allocate(*t, 600 << 10));
    }
    auto stats = rig.alloc.stats(t->mem());
    EXPECT_EQ(stats.huge.regions_claimed, 1u);
    EXPECT_EQ(stats.huge.live_allocations, 4u);
    for (auto p : ptrs) {
        rig.alloc.deallocate(*t, p);
    }
    rig.pod.release_thread(std::move(t));
}

TEST(HugeEdge, FaultingProcessHazardRemovedByItsCleanup)
{
    RigOptions opt;
    opt.checked_mappings = true;
    Rig rig(opt);
    auto* proc2 = rig.new_process();
    auto t1 = rig.thread();
    auto t2 = rig.thread(proc2);
    cxl::HeapOffset p = rig.alloc.allocate(*t1, 1 << 20);
    (void)rig.alloc.pointer(*t2, p, 8); // t2 faults -> publishes hazard
    rig.alloc.deallocate(*t1, p);
    // t2's cleanup finds the freed descriptor, unmaps, removes the hazard.
    rig.alloc.cleanup(*t2);
    EXPECT_FALSE(proc2->is_mapped(p));
    // Now t1 can reclaim (cleanup) and reuse the space.
    rig.alloc.cleanup(*t1);
    cxl::HeapOffset q = rig.alloc.allocate(*t1, 4 << 20); // full region
    EXPECT_NE(q, 0u);
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(HugeEdge, PageRoundingOfOddSizes)
{
    Rig rig;
    auto t = rig.thread();
    cxl::HeapOffset p = rig.alloc.allocate(*t, (512 << 10) + 12345);
    ASSERT_NE(p, 0u);
    EXPECT_EQ(p % cxl::kPageSize, 0u) << "huge allocations page-aligned";
    // The entire rounded extent is writable.
    std::memset(rig.alloc.pointer(*t, p, (512 << 10) + 12345), 1,
                (512 << 10) + 12345);
    rig.alloc.deallocate(*t, p);
    rig.pod.release_thread(std::move(t));
}

TEST(HugeEdge, RemoteFreeFollowedByOwnerReuse)
{
    Rig rig;
    auto owner = rig.thread();
    auto other = rig.thread();
    cxl::HeapOffset p = rig.alloc.allocate(*owner, 2 << 20);
    rig.alloc.deallocate(*other, p); // non-owner free
    rig.alloc.cleanup(*owner);       // owner reclaims desc + space
    cxl::HeapOffset q = rig.alloc.allocate(*owner, 2 << 20);
    EXPECT_EQ(q, p) << "address space should be reused after reclaim";
    rig.pod.release_thread(std::move(owner));
    rig.pod.release_thread(std::move(other));
}

TEST(HugeEdge, LargeHeapRemoteFreesAndSteal)
{
    // The large heap runs the same remote-free protocol as the small heap;
    // exercise it explicitly with 512 KiB slabs of 128 KiB blocks.
    Rig rig;
    auto owner = rig.thread();
    auto other = rig.thread();
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 4; i++) { // exactly one large slab (4 x 128 KiB)
        cxl::HeapOffset p = rig.alloc.allocate(*owner, 128 << 10);
        ASSERT_NE(p, 0u);
        EXPECT_TRUE(rig.alloc.layout().in_large_data(p));
        ptrs.push_back(p);
    }
    std::uint32_t len = rig.alloc.stats(owner->mem()).large.length;
    for (auto p : ptrs) {
        rig.alloc.deallocate(*other, p); // all remote -> steal
    }
    for (int i = 0; i < 4; i++) {
        ASSERT_NE(rig.alloc.allocate(*other, 128 << 10), 0u);
    }
    EXPECT_EQ(rig.alloc.stats(other->mem()).large.length, len)
        << "stolen large slab should be reused, not extended past";
    rig.alloc.check_invariants(owner->mem());
    rig.pod.release_thread(std::move(owner));
    rig.pod.release_thread(std::move(other));
}

} // namespace
