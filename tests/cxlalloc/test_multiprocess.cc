/// Heavier cross-process tests: pointer consistency over shared data
/// structures, heap extension visibility, and remote frees from many
/// processes — all with per-access PC-T checking enabled.

#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "common/offset_ptr.h"
#include "common/random.h"
#include "fixture.h"

namespace {

using cxltest::Rig;
using cxltest::RigOptions;

RigOptions
checked()
{
    RigOptions opt;
    opt.checked_mappings = true;
    return opt;
}

TEST(MultiProcess, SharedLinkedListAcrossFourProcesses)
{
    // Each process appends nodes to one shared list using offset-based
    // next pointers, then every process walks and validates the whole
    // list. This is the PC-S + PC-T end-to-end story.
    Rig rig(checked());
    struct Node {
        std::uint64_t value;
        cxl::HeapOffset next; // offset pointer (0 = null)
    };
    constexpr int kProcs = 4;
    constexpr int kPerProc = 50;

    std::vector<pod::Process*> procs{rig.process};
    for (int i = 1; i < kProcs; i++) {
        procs.push_back(rig.new_process());
    }
    cxl::HeapOffset head = 0;
    std::uint64_t counter = 0;
    for (int p = 0; p < kProcs; p++) {
        auto t = rig.thread(procs[p]);
        for (int i = 0; i < kPerProc; i++) {
            cxl::HeapOffset n = rig.alloc.allocate(*t, sizeof(Node));
            ASSERT_NE(n, 0u);
            auto* node = reinterpret_cast<Node*>(
                rig.alloc.pointer(*t, n, sizeof(Node)));
            node->value = counter++;
            node->next = head;
            head = n;
        }
        rig.pod.release_thread(std::move(t));
    }
    // Every process can walk the full list (faulting in mappings of slabs
    // extended by other processes).
    for (int p = 0; p < kProcs; p++) {
        auto t = rig.thread(procs[p]);
        std::uint64_t expect = counter;
        cxl::HeapOffset cursor = head;
        while (cursor != 0) {
            auto* node = reinterpret_cast<Node*>(
                rig.alloc.pointer(*t, cursor, sizeof(Node)));
            EXPECT_EQ(node->value, --expect);
            cursor = node->next;
        }
        EXPECT_EQ(expect, 0u);
        rig.pod.release_thread(std::move(t));
    }
    // Tear down: free every node from a process that allocated none of
    // the others' (all remote frees work cross-process).
    auto t = rig.thread(procs[kProcs - 1]);
    cxl::HeapOffset cursor = head;
    while (cursor != 0) {
        auto* node = reinterpret_cast<Node*>(
            rig.alloc.pointer(*t, cursor, sizeof(Node)));
        cxl::HeapOffset next = node->next;
        rig.alloc.deallocate(*t, cursor);
        cursor = next;
    }
    rig.alloc.check_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(MultiProcess, SelfRelativeOffsetPtrInSharedHeap)
{
    // OffsetPtr<T> works inside allocator-served shared memory: built in
    // one process, resolved in another.
    Rig rig(checked());
    auto* proc2 = rig.new_process();
    auto t1 = rig.thread();
    auto t2 = rig.thread(proc2);
    struct Cell {
        int value;
        cxlcommon::OffsetPtr<Cell> next;
    };
    cxl::HeapOffset a = rig.alloc.allocate(*t1, sizeof(Cell));
    cxl::HeapOffset c = rig.alloc.allocate(*t1, sizeof(Cell));
    auto* cell_a = reinterpret_cast<Cell*>(
        rig.alloc.pointer(*t1, a, sizeof(Cell)));
    auto* cell_c = reinterpret_cast<Cell*>(
        rig.alloc.pointer(*t1, c, sizeof(Cell)));
    cell_a->value = 1;
    cell_c->value = 2;
    cell_a->next = cell_c;
    // Process 2 resolves the self-relative pointer through its own view.
    auto* seen = reinterpret_cast<Cell*>(
        rig.alloc.pointer(*t2, a, sizeof(Cell)));
    ASSERT_TRUE(seen->next);
    EXPECT_EQ(seen->next->value, 2);
    rig.alloc.deallocate(*t2, a);
    rig.alloc.deallocate(*t2, c);
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(MultiProcess, HeapExtensionVisibleViaFaults)
{
    // Process A extends the small heap far past what B has mapped; B can
    // still read every allocation, faulting per slab.
    Rig rig(checked());
    auto* proc_b = rig.new_process();
    auto ta = rig.thread();
    auto tb = rig.thread(proc_b);
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 2000; i++) { // ~ 32 slabs of 512 B blocks
        cxl::HeapOffset p = rig.alloc.allocate(*ta, 512);
        ASSERT_NE(p, 0u);
        *rig.alloc.pointer(*ta, p, 1) = std::byte{0x7e};
        ptrs.push_back(p);
    }
    std::uint64_t faults_before = proc_b->faults_resolved();
    for (auto p : ptrs) {
        EXPECT_EQ(*rig.alloc.pointer(*tb, p, 1), std::byte{0x7e});
    }
    EXPECT_GT(proc_b->faults_resolved(), faults_before);
    for (auto p : ptrs) {
        rig.alloc.deallocate(*tb, p); // remote frees from process B
    }
    rig.alloc.check_invariants(ta->mem());
    rig.pod.release_thread(std::move(ta));
    rig.pod.release_thread(std::move(tb));
}

TEST(MultiProcess, ConcurrentProcessesChurnConcurrently)
{
    Rig rig(checked());
    constexpr int kProcs = 3;
    std::vector<pod::Process*> procs{rig.process};
    for (int i = 1; i < kProcs; i++) {
        procs.push_back(rig.new_process());
    }
    std::vector<std::thread> workers;
    for (int p = 0; p < kProcs; p++) {
        workers.emplace_back([&rig, &procs, p] {
            auto t = rig.thread(procs[p]);
            cxlcommon::Xoshiro rng(p + 5);
            std::vector<cxl::HeapOffset> live;
            for (int i = 0; i < 3000; i++) {
                if (rng.next_below(2) == 0 || live.empty()) {
                    cxl::HeapOffset q =
                        rig.alloc.allocate(*t, 8 + rng.next_below(1016));
                    ASSERT_NE(q, 0u);
                    live.push_back(q);
                } else {
                    std::size_t pick = rng.next_below(live.size());
                    rig.alloc.deallocate(*t, live[pick]);
                    live[pick] = live.back();
                    live.pop_back();
                }
            }
            for (auto q : live) {
                rig.alloc.deallocate(*t, q);
            }
            rig.alloc.check_local_invariants(t->mem());
            rig.pod.release_thread(std::move(t));
        });
    }
    for (auto& w : workers) {
        w.join();
    }
    auto checker = rig.thread();
    rig.alloc.check_invariants(checker->mem());
    rig.pod.release_thread(std::move(checker));
}

TEST(MultiProcess, CrashInOneProcessRecoveredFromAnother)
{
    // The paper's recovery model allows a DIFFERENT process to adopt a
    // crashed thread's slot (e.g. the process died entirely).
    Rig rig(checked());
    auto* proc2 = rig.new_process();
    auto victim = rig.thread();
    for (int i = 0; i < 100; i++) {
        rig.alloc.allocate(*victim, 256);
    }
    victim->arm_crash(cxlalloc::crashpoint::kAfterRecord, 1);
    try {
        rig.alloc.allocate(*victim, 256);
    } catch (const pod::ThreadCrashed&) {
    }
    cxl::ThreadId dead = victim->tid();
    rig.pod.mark_crashed(std::move(victim));

    auto rescuer = rig.pod.adopt_thread(proc2, dead);
    rig.alloc.recover(*rescuer);
    cxl::HeapOffset p = rig.alloc.allocate(*rescuer, 256);
    EXPECT_NE(p, 0u);
    rig.alloc.check_invariants(rescuer->mem());
    rig.pod.release_thread(std::move(rescuer));
}

} // namespace
