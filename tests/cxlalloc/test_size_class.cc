#include "cxlalloc/size_class.h"

#include <gtest/gtest.h>

namespace {

using namespace cxlalloc;

TEST(SizeClass, SmallClassesCoverRange)
{
    EXPECT_EQ(small_class_size(0), 8u);
    EXPECT_EQ(small_class_size(kNumSmallClasses - 1), kSmallMax);
}

TEST(SizeClass, SmallClassesStrictlyIncreasing)
{
    for (std::uint32_t c = 1; c < kNumSmallClasses; c++) {
        EXPECT_GT(small_class_size(c), small_class_size(c - 1));
    }
}

TEST(SizeClass, LargeClassesStrictlyIncreasing)
{
    EXPECT_GT(large_class_size(0), kSmallMax);
    EXPECT_EQ(large_class_size(kNumLargeClasses - 1), kLargeMax);
    for (std::uint32_t c = 1; c < kNumLargeClasses; c++) {
        EXPECT_GT(large_class_size(c), large_class_size(c - 1));
    }
}

TEST(SizeClass, SmallClassForFitsAndIsTight)
{
    for (std::uint64_t size = 1; size <= kSmallMax; size++) {
        std::uint32_t cls = small_class_for(size);
        EXPECT_GE(small_class_size(cls), size);
        if (cls > 0) {
            EXPECT_LT(small_class_size(cls - 1), size)
                << "class not minimal for size " << size;
        }
    }
}

TEST(SizeClass, LargeClassForFitsAndIsTight)
{
    for (std::uint64_t size = kSmallMax + 1; size <= kLargeMax;
         size += 509) { // prime stride keeps the sweep cheap
        std::uint32_t cls = large_class_for(size);
        EXPECT_GE(large_class_size(cls), size);
        if (cls > 0) {
            EXPECT_LT(large_class_size(cls - 1), size);
        }
    }
}

TEST(SizeClass, InternalFragmentationBounded)
{
    // The ladder should waste at most ~34% for any size.
    for (std::uint64_t size = 1; size <= kSmallMax; size++) {
        std::uint64_t block = small_class_size(small_class_for(size));
        EXPECT_LE(static_cast<double>(block),
                  static_cast<double>(size) * 1.34 + 8.0);
    }
    for (std::uint64_t size = kSmallMax + 1; size <= kLargeMax; size += 101) {
        std::uint64_t block = large_class_size(large_class_for(size));
        EXPECT_LE(static_cast<double>(block),
                  static_cast<double>(size) * 1.51);
    }
}

TEST(SizeClass, BlocksPerSlab)
{
    EXPECT_EQ(small_blocks_per_slab(0), 4096u);                 // 32K / 8
    EXPECT_EQ(small_blocks_per_slab(kNumSmallClasses - 1), 32u); // 32K / 1K
    EXPECT_EQ(large_blocks_per_slab(kNumLargeClasses - 1), 1u); // 512K/512K
}

TEST(SizeClass, MaxBlocksFitRecoveryAuxField)
{
    // The recovery record stores block indices in 12 bits.
    EXPECT_LE(small_blocks_per_slab(0), 4096u);
    EXPECT_LE(large_blocks_per_slab(0), 4096u);
}

} // namespace
