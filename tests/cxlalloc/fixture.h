/// @file
/// Shared test rig: a pod + allocator with a small heap geometry.

#pragma once

#include <memory>

#include "cxlalloc/allocator.h"
#include "pod/pod.h"

namespace cxltest {

struct RigOptions {
    cxl::CoherenceMode mode = cxl::CoherenceMode::PartialHwcc;
    bool simulate_cache = false;
    bool checked_mappings = false;
    bool recoverable = true;
    /// Extra device space past the heap layout (index bucket arrays etc.).
    std::uint64_t extra_device_bytes = 0;
};

struct Rig {
    explicit Rig(const RigOptions& opt = RigOptions{})
        : config(small_config(opt)),
          pod(pod_config(config, opt)),
          alloc(pod, config)
    {
        process = pod.create_process();
        alloc.attach(*process);
    }

    static cxlalloc::Config
    small_config(const RigOptions& opt)
    {
        cxlalloc::Config cfg;
        cfg.small_slabs = 128;           // 4 MiB small data
        cfg.large_slabs = 16;            // 8 MiB large data
        cfg.huge_regions = 8;
        cfg.huge_region_size = 4 << 20;  // 32 MiB huge data
        cfg.huge_descs_per_thread = 16;
        cfg.hazard_slots_per_thread = 8;
        cfg.recoverable = opt.recoverable;
        return cfg;
    }

    static pod::PodConfig
    pod_config(const cxlalloc::Config& cfg, const RigOptions& opt)
    {
        pod::PodConfig pc;
        pc.device =
            cxlalloc::Layout(cfg).device_config(opt.mode, opt.simulate_cache);
        pc.device.size += (opt.extra_device_bytes + cxl::kPageSize - 1) &
                          ~(cxl::kPageSize - 1);
        pc.checked_mappings = opt.checked_mappings;
        return pc;
    }

    std::unique_ptr<pod::ThreadContext>
    thread(pod::Process* in_process = nullptr)
    {
        auto ctx = pod.create_thread(in_process ? in_process : process);
        alloc.attach_thread(*ctx);
        return ctx;
    }

    pod::Process*
    new_process()
    {
        pod::Process* p = pod.create_process();
        alloc.attach(*p);
        return p;
    }

    cxlalloc::Config config;
    pod::Pod pod;
    cxlalloc::CxlAllocator alloc;
    pod::Process* process;
};

} // namespace cxltest
