/// @file
/// Real-thread (TSan-targeted) exercise of the tiered heap: worker
/// threads churn stride-split allocations and bump slab heat through
/// note_access while a migrator thread runs epochs concurrently —
/// promotions/demotions race live allocation and free traffic on every
/// window. Workers never touch migratable payloads (the migrator owns
/// the published objects), so every cross-thread interaction goes
/// through the allocator's own synchronization or the heat atomics.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cxlalloc/migrate.h"
#include "pod/pod.h"
#include "pod/topology.h"
#include "sync/detectable_cas.h"

namespace {

using cxlalloc::HotSlabMigrator;
using cxlalloc::PodShardedAllocator;
using pod::Pod;
using pod::PodConfig;
using pod::Topology;

constexpr std::uint32_t kCells = 32;
constexpr std::uint64_t kObjSize = 64;
constexpr int kWorkers = 3;

cxl::EdgeCost
far_edge()
{
    cxl::EdgeCost e;
    e.read_add_ns = 100;
    e.write_add_ns = 150;
    return e;
}

TEST(TieredThreads, ConcurrentMigrationAndChurnStayConsistent)
{
    cxlalloc::Config cfg;
    cfg.small_slabs = 32;
    cfg.large_slabs = 8;
    cfg.huge_regions = 2;
    cfg.huge_region_size = 1 << 20;
    cfg.huge_descs_per_thread = 4;
    cfg.hazard_slots_per_thread = 4;
    cfg.app_sync_bytes = kCells * 8;
    cfg.dram_percent = 50;
    cfg.dram_max_block = 1024;
    cxlalloc::Config dram_cfg = cfg;
    // Every thread that stride-places into DRAM detaches an active slab
    // there (setup + workers + the migrator), so the DRAM shard needs
    // slabs beyond the claimant count or promotions abort on capacity.
    dram_cfg.small_slabs = 8;
    dram_cfg.app_sync_bytes = 0;

    Topology topo = Topology::with_local_dram(
        Topology::dense(1, 2, cxl::EdgeCost{}, far_edge()));
    PodConfig pc;
    pc.device = PodShardedAllocator::device_config(
        cfg, topo, cxl::CoherenceMode::PartialHwcc,
        /*simulate_cache=*/false, 0, &dram_cfg);
    pc.topology = topo;
    Pod pod(pc);
    PodShardedAllocator alloc(pod, cfg, &dram_cfg);
    pod::Process* proc = pod.create_process(0);
    alloc.attach(*proc);

    HotSlabMigrator::Options mopt;
    mopt.max_moves_per_epoch = 64;
    HotSlabMigrator migrator(alloc, mopt);
    cxl::DeviceId home = topo.home_of(0);
    cxl::HeapOffset cells = alloc.shard(home).layout().app_sync();
    migrator.set_cell_table(cells, kCells);
    auto cell_of = [&](std::uint32_t i) {
        return cells + static_cast<cxl::HeapOffset>(i) * 8;
    };

    // Populate: one published 64-B object per cell, from the main thread.
    auto setup = pod.create_thread(proc);
    alloc.attach_thread(*setup);
    for (std::uint32_t i = 0; i < kCells; i++) {
        cxl::HeapOffset off = alloc.allocate(*setup, kObjSize);
        ASSERT_NE(off, 0u);
        auto res = alloc.shard(home).cell_publish(
            *setup, cell_of(i), 0, static_cast<std::uint32_t>(off >> 3));
        ASSERT_TRUE(res.success);
    }

    std::vector<std::unique_ptr<pod::ThreadContext>> worker_ctx;
    for (int t = 0; t < kWorkers; t++) {
        worker_ctx.push_back(pod.create_thread(proc));
        alloc.attach_thread(*worker_ctx.back());
    }
    auto mig_ctx = pod.create_thread(proc);
    alloc.attach_thread(*mig_ctx);

    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < kWorkers; t++) {
        threads.emplace_back([&, t] {
            pod::ThreadContext& ctx = *worker_ctx[t];
            std::vector<cxl::HeapOffset> mine;
            for (int i = 0; i < 2000; i++) {
                cxl::HeapOffset p = alloc.allocate(ctx, kObjSize);
                if (p == 0) {
                    failures.fetch_add(1);
                    break;
                }
                mine.push_back(p);
                if (mine.size() > 16) {
                    alloc.deallocate(ctx, mine.front());
                    mine.erase(mine.begin());
                }
                // Heat the worker's slice of the published set: reads go
                // through the atomic cell word; the payload is never
                // touched (the migrator may be moving it right now).
                std::uint32_t c = static_cast<std::uint32_t>(i + t) %
                                  (kCells / 2);
                std::uint32_t val = cxlsync::DcasWord::value(
                    ctx.mem().atomic_load64(cell_of(c)));
                if (val != 0) {
                    migrator.note_access(
                        static_cast<cxl::HeapOffset>(val) << 3);
                }
            }
            for (cxl::HeapOffset p : mine) {
                alloc.deallocate(ctx, p);
            }
        });
    }
    threads.emplace_back([&] {
        for (int e = 0; e < 40 && !stop.load(); e++) {
            migrator.run_epoch(*mig_ctx);
            std::this_thread::yield();
        }
    });

    for (std::size_t t = 0; t < threads.size(); t++) {
        if (t == threads.size() - 1) {
            stop.store(true);
        }
        threads[t].join();
    }
    EXPECT_EQ(failures.load(), 0);

    // Deterministic tail: with the workers quiet, one hot CXL resident
    // must promote within two epochs regardless of racing history.
    cxl::DeviceId dram = topo.dram_device_of(0);
    std::uint32_t hot_cell = kCells - 1;
    for (int e = 0; e < 2; e++) {
        std::uint32_t val = cxlsync::DcasWord::value(
            setup->mem().atomic_load64(cell_of(hot_cell)));
        ASSERT_NE(val, 0u);
        auto off = static_cast<cxl::HeapOffset>(val) << 3;
        if (pod.device().device_of(off) == dram) {
            break;
        }
        for (int i = 0; i < 64; i++) {
            migrator.note_access(off);
        }
        migrator.run_epoch(*mig_ctx);
    }
    std::uint32_t final_val = cxlsync::DcasWord::value(
        setup->mem().atomic_load64(cell_of(hot_cell)));
    ASSERT_NE(final_val, 0u);
    EXPECT_EQ(pod.device().device_of(
                  static_cast<cxl::HeapOffset>(final_val) << 3),
              dram);
    EXPECT_GT(migrator.promotions(), 0u);

    // Quiescent sweep: counter == popcount on every window, and the heap
    // still round-trips.
    cxl::MemSession& mem = setup->mem();
    for (cxl::DeviceId d = 0; d < alloc.shard_count(); d++) {
        cxlalloc::SlabHeap& heap = alloc.shard(d).small_heap();
        std::uint32_t length = heap.length(mem);
        for (std::uint32_t slab = 0; slab < length; slab++) {
            if (heap.debug_class_biased(mem, slab) == 0) {
                continue;
            }
            EXPECT_EQ(heap.debug_free_blocks(mem, slab),
                      heap.debug_bitset_count(mem, slab))
                << "shard " << d << " slab " << slab;
        }
    }
    alloc.check_invariants(mem);
    cxl::HeapOffset p = alloc.allocate(*setup, kObjSize);
    ASSERT_NE(p, 0u);
    alloc.deallocate(*setup, p);
}

} // namespace
