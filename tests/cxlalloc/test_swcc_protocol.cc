/// Tests of the SWcc protocol (paper §3.2.2) under the simulated
/// incoherent per-thread caches: the allocator must stay correct when
/// stale reads are possible, flushing exactly at ownership transitions.

#include <gtest/gtest.h>
#include <vector>

#include "fixture.h"

namespace {

using cxltest::Rig;
using cxltest::RigOptions;

RigOptions
swcc_options(cxl::CoherenceMode mode = cxl::CoherenceMode::PartialHwcc)
{
    RigOptions opt;
    opt.mode = mode;
    opt.simulate_cache = true;
    return opt;
}

TEST(SwccProtocol, GlobalListHandoffAcrossIncoherentCaches)
{
    // Thread 1 builds slabs and spills them to the global free list; the
    // flush-on-ownership-change protocol must make the descriptors visible
    // to thread 2 despite fully incoherent caches.
    Rig rig(swcc_options());
    auto t1 = rig.thread();
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 32 * 8; i++) {
        ptrs.push_back(rig.alloc.allocate(*t1, 1024));
    }
    for (auto p : ptrs) {
        rig.alloc.deallocate(*t1, p);
    }
    ASSERT_GT(rig.alloc.stats(t1->mem()).small.global_free, 0u);

    auto t2 = rig.thread();
    std::uint32_t len = rig.alloc.stats(t2->mem()).small.length;
    for (int i = 0; i < 64; i++) {
        ASSERT_NE(rig.alloc.allocate(*t2, 1024), 0u);
    }
    EXPECT_EQ(rig.alloc.stats(t2->mem()).small.length, len)
        << "thread 2 failed to consume global slabs (stale metadata?)";
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(SwccProtocol, RemoteFreeWithStaleOwnerIsSafe)
{
    // The paper's §3.2.2 case analysis: a freeing thread may act on a
    // stale cached SWccDesc.owner. Construct the stale-cache scenario
    // explicitly and verify the remote path still works.
    Rig rig(swcc_options());
    auto owner = rig.thread();
    auto freer = rig.thread();

    cxl::HeapOffset p = rig.alloc.allocate(*owner, 512);
    // The freer caches the descriptor line (via a first remote free of a
    // sibling block).
    cxl::HeapOffset p2 = rig.alloc.allocate(*owner, 512);
    rig.alloc.deallocate(*freer, p2);
    // Remote free of p with whatever cached owner value the freer holds.
    rig.alloc.deallocate(*freer, p);
    rig.alloc.check_local_invariants(owner->mem());
    rig.pod.release_thread(std::move(owner));
    rig.pod.release_thread(std::move(freer));
}

TEST(SwccProtocol, StealAcrossIncoherentCaches)
{
    Rig rig(swcc_options());
    auto owner = rig.thread();
    auto thief = rig.thread();
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 64; i++) {
        ptrs.push_back(rig.alloc.allocate(*owner, 512));
    }
    for (auto p : ptrs) {
        rig.alloc.deallocate(*thief, p);
    }
    // The thief stole the fully-remotely-freed slab; it must be able to
    // initialize and allocate from it even though the previous owner's
    // cache held (flushed) descriptor state.
    std::uint32_t len = rig.alloc.stats(thief->mem()).small.length;
    for (int i = 0; i < 64; i++) {
        ASSERT_NE(rig.alloc.allocate(*thief, 512), 0u);
    }
    EXPECT_EQ(rig.alloc.stats(thief->mem()).small.length, len);
    rig.pod.release_thread(std::move(owner));
    rig.pod.release_thread(std::move(thief));
}

TEST(SwccProtocol, OwnerKeepsDescriptorCached)
{
    // The performance claim behind the case analysis: local operations
    // neither flush nor fence. The recovery record is DEFERRED (store
    // only; process-crash recovery writes the cache back, see
    // RecoveryLog::log_local), so the steady-state alloc/free cycle is
    // completely free of ordering instructions.
    Rig rig(swcc_options());
    auto t = rig.thread();
    for (int i = 0; i < 10; i++) {
        rig.alloc.deallocate(*t, rig.alloc.allocate(*t, 64)); // warm-up
    }
    std::uint64_t flushes_before = t->mem().counters().flushes;
    std::uint64_t fences_before = t->mem().counters().fences;
    for (int i = 0; i < 100; i++) {
        rig.alloc.deallocate(*t, rig.alloc.allocate(*t, 64));
    }
    EXPECT_EQ(t->mem().counters().flushes - flushes_before, 0u)
        << "local fast path must not flush (record is deferred)";
    EXPECT_EQ(t->mem().counters().fences - fences_before, 0u)
        << "local fast path must not fence";
    // The deferred record still exists on the fast path: it must ride the
    // NEXT publication's fence, not vanish. Force one (slab transitions)
    // and verify the allocator still passes its global invariants.
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 3000; i++) {
        ptrs.push_back(rig.alloc.allocate(*t, 64));
    }
    for (auto p : ptrs) {
        rig.alloc.deallocate(*t, p);
    }
    EXPECT_GT(t->mem().counters().flushes, flushes_before);
    rig.alloc.check_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(SwccProtocol, WorksUnderMcasMode)
{
    // No HWcc at all: every counter update goes through the NMP.
    Rig rig(swcc_options(cxl::CoherenceMode::NoHwcc));
    auto a = rig.thread();
    auto b = rig.thread();
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 500; i++) {
        ptrs.push_back(rig.alloc.allocate(*a, 256));
    }
    for (auto p : ptrs) {
        rig.alloc.deallocate(*b, p);
    }
    EXPECT_GT(a->mem().counters().mcas_ops + b->mem().counters().mcas_ops,
              0u);
    EXPECT_EQ(a->mem().counters().cas_ops + b->mem().counters().cas_ops, 0u);
    rig.alloc.check_invariants(a->mem());
    rig.pod.release_thread(std::move(a));
    rig.pod.release_thread(std::move(b));
}

TEST(SwccProtocol, HostCrashLosesOnlyUnflushedLocalState)
{
    // Under a HOST crash (cache dropped, not written back), everything the
    // protocol flushed — global free list descriptors, recovery record —
    // survives; thread-local list heads may be stale, which is the
    // documented limitation of host-level failures.
    Rig rig(swcc_options());
    auto t1 = rig.thread();
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 32 * 8; i++) {
        ptrs.push_back(rig.alloc.allocate(*t1, 1024));
    }
    for (auto p : ptrs) {
        rig.alloc.deallocate(*t1, p);
    }
    std::uint32_t global_before = rig.alloc.stats(t1->mem()).small.global_free;
    ASSERT_GT(global_before, 0u);
    rig.pod.mark_crashed(std::move(t1), pod::Pod::CrashSeverity::Host);
    // Slabs that reached the global free list were flushed there: another
    // thread can still consume every one of them.
    auto t2 = rig.thread();
    std::uint32_t len = rig.alloc.stats(t2->mem()).small.length;
    for (std::uint32_t i = 0; i < global_before * 32; i++) {
        ASSERT_NE(rig.alloc.allocate(*t2, 1024), 0u);
    }
    EXPECT_EQ(rig.alloc.stats(t2->mem()).small.length, len);
    rig.pod.release_thread(std::move(t2));
}

} // namespace
