/// Fragmentation behaviour, including the paper's acknowledged pathological
/// case (§3.2.1): a counter-based remote-free protocol cannot reuse
/// remotely freed blocks until the WHOLE slab is remotely freed, so a slab
/// with a mix of local and remote frees can strand memory — and the
/// disowned state is what bounds the damage.

#include <gtest/gtest.h>
#include <vector>

#include "fixture.h"

namespace {

using cxltest::Rig;

TEST(Fragmentation, PaperPathologyStrandsPartiallyRemoteFreedSlab)
{
    // Construct the §3.2.1 pathological pattern: the owner allocates a
    // full slab, one block is freed LOCALLY (so the counter can never
    // reach zero), the rest are freed REMOTELY, and the owner stops
    // allocating this class. The remotely freed blocks stay unusable —
    // exactly what the paper concedes.
    Rig rig;
    auto owner = rig.thread();
    auto other = rig.thread();
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 64; i++) { // one full 512 B slab
        ptrs.push_back(rig.alloc.allocate(*owner, 512));
    }
    // Slab is now detached (full). Owner frees one block locally: slab
    // returns to the sized list with one free block.
    rig.alloc.deallocate(*owner, ptrs[0]);
    // Everything else freed remotely: counter ends at 1, never 0.
    for (int i = 1; i < 64; i++) {
        rig.alloc.deallocate(*other, ptrs[i]);
    }
    // The OTHER thread cannot reuse any of the 63 blocks it freed; its
    // allocations of this class come from fresh slabs.
    std::uint32_t len_before = rig.alloc.stats(other->mem()).small.length;
    for (int i = 0; i < 64; i++) {
        ASSERT_NE(rig.alloc.allocate(*other, 512), 0u);
    }
    EXPECT_GT(rig.alloc.stats(other->mem()).small.length, len_before)
        << "remotely freed blocks must NOT be reusable (counter protocol)";
    // The OWNER still can reuse its locally-freed block.
    cxl::HeapOffset again = rig.alloc.allocate(*owner, 512);
    EXPECT_EQ(again, ptrs[0]);
    rig.alloc.check_invariants(owner->mem());
    rig.pod.release_thread(std::move(owner));
    rig.pod.release_thread(std::move(other));
}

TEST(Fragmentation, DisownedStateEventuallyReclaimsMixedSlab)
{
    // The counterpart (§3.2.1): when a slab fills up WITH remote frees in
    // its history, it is disowned — all future frees take the remote path
    // and the whole slab IS eventually stolen and reused.
    Rig rig;
    auto owner = rig.thread();
    auto other = rig.thread();
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 63; i++) {
        ptrs.push_back(rig.alloc.allocate(*owner, 512));
    }
    rig.alloc.deallocate(*other, ptrs[0]); // remote free while non-full
    ptrs[0] = rig.alloc.allocate(*owner, 512);
    ptrs.push_back(rig.alloc.allocate(*owner, 512)); // fills -> disowned
    // Now ALL frees (even the original owner's) take the remote path.
    for (auto p : ptrs) {
        rig.alloc.deallocate(*owner, p);
    }
    // The slab was fully remotely freed -> stolen by the owner thread and
    // recyclable: allocating this class must NOT grow the heap.
    std::uint32_t len = rig.alloc.stats(owner->mem()).small.length;
    for (int i = 0; i < 64; i++) {
        ASSERT_NE(rig.alloc.allocate(*owner, 512), 0u);
    }
    EXPECT_EQ(rig.alloc.stats(owner->mem()).small.length, len);
    rig.pod.release_thread(std::move(owner));
    rig.pod.release_thread(std::move(other));
}

TEST(Fragmentation, InternalFragmentationBoundedOnChurn)
{
    // Committed memory stays within a constant factor of the live bytes
    // across a size-mixed churn ("our evaluation does not show excessive
    // fragmentation", §3.2.1).
    Rig rig;
    auto t = rig.thread();
    cxlcommon::Xoshiro rng(31);
    std::vector<std::pair<cxl::HeapOffset, std::uint64_t>> live;
    std::uint64_t live_bytes = 0;
    for (int i = 0; i < 20000; i++) {
        if (rng.next_below(2) == 0 || live.empty()) {
            std::uint64_t size = 8 + rng.next_below(1016);
            cxl::HeapOffset p = rig.alloc.allocate(*t, size);
            ASSERT_NE(p, 0u);
            live.emplace_back(p, size);
            live_bytes += size;
        } else {
            std::size_t pick = rng.next_below(live.size());
            live_bytes -= live[pick].second;
            rig.alloc.deallocate(*t, live[pick].first);
            live[pick] = live.back();
            live.pop_back();
        }
    }
    std::uint64_t committed = rig.pod.device().committed_bytes();
    // Allow generous slop for metadata + warm slabs, but catch unbounded
    // fragmentation: the heap must stay within ~4x of live payload.
    EXPECT_LT(committed, live_bytes * 4 + (4 << 20))
        << "live=" << live_bytes << " committed=" << committed;
    for (auto [p, size] : live) {
        rig.alloc.deallocate(*t, p);
    }
    rig.pod.release_thread(std::move(t));
}

TEST(Fragmentation, HugeAddressSpaceCoalesces)
{
    // Interval-set coalescing prevents huge address-space fragmentation:
    // after any alloc/free sequence completes, one thread's region is one
    // fragment again.
    Rig rig;
    auto t = rig.thread();
    std::vector<cxl::HeapOffset> held;
    for (int round = 0; round < 5; round++) {
        for (int i = 0; i < 4; i++) {
            cxl::HeapOffset p = rig.alloc.allocate(*t, (i + 1) << 19);
            ASSERT_NE(p, 0u);
            held.push_back(p);
        }
        for (auto p : held) {
            rig.alloc.deallocate(*t, p);
        }
        held.clear();
        rig.alloc.cleanup(*t);
    }
    const auto& free_set = rig.alloc.thread_state(t->tid()).huge_free;
    EXPECT_LE(free_set.fragments(), 2u)
        << "freed huge regions should coalesce";
    rig.pod.release_thread(std::move(t));
}

} // namespace
