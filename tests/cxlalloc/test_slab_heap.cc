#include <gtest/gtest.h>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "fixture.h"

namespace {

using cxltest::Rig;
using cxltest::RigOptions;

TEST(SlabAlloc, BasicAllocateFree)
{
    Rig rig;
    auto t = rig.pod.create_thread(rig.process);
    rig.alloc.attach_thread(*t);
    cxl::HeapOffset p = rig.alloc.allocate(*t, 64);
    ASSERT_NE(p, 0u);
    EXPECT_TRUE(rig.alloc.layout().in_small_data(p));
    // Writable through the data pointer.
    std::byte* data = rig.alloc.pointer(*t, p, 64);
    std::memset(data, 0xab, 64);
    rig.alloc.deallocate(*t, p);
    rig.alloc.check_invariants(t->mem());
    rig.alloc.check_local_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(SlabAlloc, DistinctLiveAllocationsDoNotOverlap)
{
    Rig rig;
    auto t = rig.thread();
    std::set<cxl::HeapOffset> seen;
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 5000; i++) {
        cxl::HeapOffset p = rig.alloc.allocate(*t, 48);
        ASSERT_NE(p, 0u);
        ASSERT_TRUE(seen.insert(p).second) << "duplicate allocation";
        // 48 -> class 48: offsets must be 48 apart at least
        ptrs.push_back(p);
    }
    for (auto it = seen.begin(); std::next(it) != seen.end(); ++it) {
        EXPECT_GE(*std::next(it) - *it, 48u);
    }
    for (auto p : ptrs) {
        rig.alloc.deallocate(*t, p);
    }
    rig.alloc.check_local_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(SlabAlloc, FreedMemoryIsReused)
{
    Rig rig;
    auto t = rig.thread();
    cxl::HeapOffset p = rig.alloc.allocate(*t, 128);
    rig.alloc.deallocate(*t, p);
    cxl::HeapOffset q = rig.alloc.allocate(*t, 128);
    EXPECT_EQ(p, q) << "same-class free then alloc should reuse the block";
    rig.pod.release_thread(std::move(t));
}

TEST(SlabAlloc, AllocationAlignedToClassSize)
{
    Rig rig;
    auto t = rig.thread();
    const cxl::HeapOffset base = rig.alloc.layout().small_data();
    for (std::uint64_t size : {8u, 16u, 64u, 256u, 1024u}) {
        cxl::HeapOffset p = rig.alloc.allocate(*t, size);
        ASSERT_NE(p, 0u);
        EXPECT_EQ((p - base) % size, 0u) << "size " << size;
    }
    rig.pod.release_thread(std::move(t));
}

TEST(SlabAlloc, LargeHeapServesBigBlocks)
{
    Rig rig;
    auto t = rig.thread();
    cxl::HeapOffset p = rig.alloc.allocate(*t, 100 << 10); // 100 KiB
    ASSERT_NE(p, 0u);
    EXPECT_TRUE(rig.alloc.layout().in_large_data(p));
    std::byte* data = rig.alloc.pointer(*t, p, 100 << 10);
    std::memset(data, 0x5a, 100 << 10);
    rig.alloc.deallocate(*t, p);
    rig.alloc.check_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(SlabAlloc, FullSlabDetachesAndLocalFreeRelinks)
{
    Rig rig;
    auto t = rig.thread();
    // Fill exactly one slab of 1 KiB blocks (32 per slab).
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 32; i++) {
        ptrs.push_back(rig.alloc.allocate(*t, 1024));
    }
    // The next allocation must come from a different slab.
    cxl::HeapOffset next = rig.alloc.allocate(*t, 1024);
    EXPECT_NE((ptrs[0] - rig.alloc.layout().small_data()) / (32 << 10),
              (next - rig.alloc.layout().small_data()) / (32 << 10));
    // Free one block of the full (detached) slab: it relinks, and its free
    // block is reused before extending further.
    rig.alloc.deallocate(*t, ptrs[5]);
    cxl::HeapOffset reuse = rig.alloc.allocate(*t, 1024);
    EXPECT_EQ(reuse, ptrs[5]);
    rig.alloc.check_local_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(SlabAlloc, EmptiedSlabRecyclesToOtherClass)
{
    Rig rig;
    auto t = rig.thread();
    std::uint32_t slabs_before = 0;
    {
        std::vector<cxl::HeapOffset> ptrs;
        for (int i = 0; i < 64; i++) {
            ptrs.push_back(rig.alloc.allocate(*t, 1024));
        }
        slabs_before = rig.alloc.stats(t->mem()).small.length;
        for (auto p : ptrs) {
            rig.alloc.deallocate(*t, p);
        }
    }
    // Allocating a different class should reuse the recycled slabs rather
    // than extend the heap.
    std::vector<cxl::HeapOffset> other;
    for (int i = 0; i < 1000; i++) {
        other.push_back(rig.alloc.allocate(*t, 8));
    }
    EXPECT_LE(rig.alloc.stats(t->mem()).small.length, slabs_before + 1);
    rig.pod.release_thread(std::move(t));
}

TEST(SlabAlloc, RemoteFreeDecrementsAndStealReclaims)
{
    Rig rig;
    auto producer = rig.thread();
    auto consumer = rig.thread();
    // Producer fills one whole slab (32 KiB / 512 B = 64 blocks) and hands
    // every block to the consumer.
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 64; i++) {
        ptrs.push_back(rig.alloc.allocate(*producer, 512));
    }
    std::uint32_t len_before = rig.alloc.stats(producer->mem()).small.length;
    // Consumer remote-frees everything; the last free steals the slab.
    for (auto p : ptrs) {
        rig.alloc.deallocate(*consumer, p);
    }
    // Consumer can now allocate from the stolen slab without extending.
    for (int i = 0; i < 64; i++) {
        cxl::HeapOffset p = rig.alloc.allocate(*consumer, 512);
        ASSERT_NE(p, 0u);
    }
    EXPECT_EQ(rig.alloc.stats(consumer->mem()).small.length, len_before)
        << "steal should recycle the slab instead of extending the heap";
    rig.alloc.check_invariants(producer->mem());
    rig.pod.release_thread(std::move(producer));
    rig.pod.release_thread(std::move(consumer));
}

TEST(SlabAlloc, MixedLocalRemoteFreesDisownAndReclaim)
{
    Rig rig;
    auto a = rig.thread();
    auto b = rig.thread();
    // Thread a fills a slab; frees one block locally BEFORE the slab fills,
    // then the slab fills with a remote free in the history -> disowned.
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 63; i++) {
        ptrs.push_back(rig.alloc.allocate(*a, 512));
    }
    rig.alloc.deallocate(*b, ptrs[0]); // one remote free while non-full
    // Fill the slab back up (reuses nothing: remote frees are not visible
    // to the owner's bitset), so the slab goes disowned at the fill point.
    ptrs[0] = rig.alloc.allocate(*a, 512);
    ptrs.push_back(rig.alloc.allocate(*a, 512));
    // All remaining frees from the owner now take the remote path too.
    for (auto p : ptrs) {
        rig.alloc.deallocate(*a, p);
    }
    rig.alloc.check_invariants(a->mem());
    rig.alloc.check_local_invariants(a->mem());
    rig.alloc.check_local_invariants(b->mem());
    rig.pod.release_thread(std::move(a));
    rig.pod.release_thread(std::move(b));
}

TEST(SlabAlloc, UnsizedOverflowSpillsToGlobalList)
{
    Rig rig;
    auto t = rig.thread();
    // Create and fully free many slabs of one class; the unsized list is
    // capped, so the surplus must reach the global free list.
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 32 * 12; i++) {
        ptrs.push_back(rig.alloc.allocate(*t, 1024));
    }
    for (auto p : ptrs) {
        rig.alloc.deallocate(*t, p);
    }
    auto stats = rig.alloc.stats(t->mem());
    EXPECT_GT(stats.small.global_free, 0u);
    rig.alloc.check_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(SlabAlloc, GlobalListFeedsOtherThreads)
{
    Rig rig;
    auto t1 = rig.thread();
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 32 * 12; i++) {
        ptrs.push_back(rig.alloc.allocate(*t1, 1024));
    }
    for (auto p : ptrs) {
        rig.alloc.deallocate(*t1, p);
    }
    std::uint32_t len_before = rig.alloc.stats(t1->mem()).small.length;
    std::uint32_t global_before = rig.alloc.stats(t1->mem()).small.global_free;
    ASSERT_GT(global_before, 0u);
    // A fresh thread should draw from the global list, not extend.
    auto t2 = rig.thread();
    for (int i = 0; i < 32; i++) {
        ASSERT_NE(rig.alloc.allocate(*t2, 1024), 0u);
    }
    EXPECT_EQ(rig.alloc.stats(t2->mem()).small.length, len_before);
    EXPECT_LT(rig.alloc.stats(t2->mem()).small.global_free, global_before);
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(SlabAlloc, HeapExhaustionReturnsNull)
{
    Rig rig;
    auto t = rig.thread();
    // 16 large slabs of 512 KiB, one 512 KiB block each.
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 16; i++) {
        cxl::HeapOffset p = rig.alloc.allocate(*t, 512 << 10);
        ASSERT_NE(p, 0u);
        ptrs.push_back(p);
    }
    EXPECT_EQ(rig.alloc.allocate(*t, 512 << 10), 0u);
    for (auto p : ptrs) {
        rig.alloc.deallocate(*t, p);
    }
    // After freeing, allocation succeeds again.
    EXPECT_NE(rig.alloc.allocate(*t, 512 << 10), 0u);
    rig.pod.release_thread(std::move(t));
}

TEST(SlabAlloc, ZeroedHeapNeedsNoInitialization)
{
    // Paper §4: zeroed memory is a valid heap. The fixture performs no
    // initialization pass — the first allocation on a fresh device must
    // just work, including from a second process attached concurrently.
    Rig rig;
    auto* proc2 = rig.new_process();
    auto t1 = rig.thread();
    auto t2 = rig.thread(proc2);
    cxl::HeapOffset p1 = rig.alloc.allocate(*t1, 64);
    cxl::HeapOffset p2 = rig.alloc.allocate(*t2, 64);
    EXPECT_NE(p1, 0u);
    EXPECT_NE(p2, 0u);
    EXPECT_NE(p1, p2);
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(SlabAlloc, CrossProcessSharedData)
{
    // PC-S: an offset allocated in one process names the same bytes in
    // another.
    Rig rig;
    auto* proc2 = rig.new_process();
    auto t1 = rig.thread();
    auto t2 = rig.thread(proc2);
    cxl::HeapOffset p = rig.alloc.allocate(*t1, 256);
    std::byte* w = rig.alloc.pointer(*t1, p, 256);
    std::memcpy(w, "cross-process hello", 20);
    const std::byte* r = rig.alloc.pointer(*t2, p, 256);
    EXPECT_EQ(std::memcmp(r, "cross-process hello", 20), 0);
    rig.alloc.deallocate(*t2, p); // remote free from the other process
    rig.alloc.check_invariants(t1->mem());
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(SlabAlloc, MultithreadedChurn)
{
    for (cxl::CoherenceMode mode :
         {cxl::CoherenceMode::PartialHwcc, cxl::CoherenceMode::NoHwcc}) {
        RigOptions opt;
        opt.mode = mode;
        Rig rig(opt);
        constexpr int kThreads = 4;
        constexpr int kOps = 4000;
        std::vector<std::thread> workers;
        for (int w = 0; w < kThreads; w++) {
            workers.emplace_back([&rig, w] {
                auto t = rig.thread();
                cxlcommon::Xoshiro rng(w + 1);
                std::vector<cxl::HeapOffset> live;
                for (int i = 0; i < kOps; i++) {
                    if (rng.next_below(3) != 0 || live.empty()) {
                        std::uint64_t size = 8 + rng.next_below(1017);
                        cxl::HeapOffset p = rig.alloc.allocate(*t, size);
                        ASSERT_NE(p, 0u);
                        live.push_back(p);
                    } else {
                        std::size_t pick = rng.next_below(live.size());
                        rig.alloc.deallocate(*t, live[pick]);
                        live[pick] = live.back();
                        live.pop_back();
                    }
                }
                for (auto p : live) {
                    rig.alloc.deallocate(*t, p);
                }
                rig.alloc.check_local_invariants(t->mem());
                rig.pod.release_thread(std::move(t));
            });
        }
        for (auto& w : workers) {
            w.join();
        }
        auto checker = rig.thread();
        rig.alloc.check_invariants(checker->mem());
        rig.pod.release_thread(std::move(checker));
    }
}

TEST(SlabAlloc, ProducerConsumerPipeline)
{
    // The xmalloc pattern: every block allocated on one thread is freed on
    // another, hammering the remote-free/steal path concurrently.
    Rig rig;
    constexpr int kItems = 20000;
    std::vector<cxl::HeapOffset> queue(kItems, 0);
    std::atomic<int> produced{0};
    std::thread producer([&] {
        auto t = rig.thread();
        for (int i = 0; i < kItems; i++) {
            cxl::HeapOffset p = rig.alloc.allocate(*t, 64);
            ASSERT_NE(p, 0u);
            queue[i] = p;
            produced.store(i + 1, std::memory_order_release);
        }
        rig.pod.release_thread(std::move(t));
    });
    std::thread consumer([&] {
        auto t = rig.thread();
        for (int i = 0; i < kItems; i++) {
            while (produced.load(std::memory_order_acquire) <= i) {
            }
            rig.alloc.deallocate(*t, queue[i]);
        }
        rig.pod.release_thread(std::move(t));
    });
    producer.join();
    consumer.join();
    auto checker = rig.thread();
    rig.alloc.check_invariants(checker->mem());
    auto stats = rig.alloc.stats(checker->mem());
    // The heap never needs more slabs than the live working set plus the
    // scheduling lag (on one core the producer can run ahead of the
    // consumer, so the bound is the full footprint: 20000 * 64 B = 40
    // slabs). Crucially, every fully-remotely-freed slab must have been
    // stolen and recycled: after the run they sit on free lists instead of
    // being leaked in the disowned/detached limbo.
    EXPECT_LE(stats.small.length, 41u);
    EXPECT_GT(stats.small.global_free, 0u)
        << "consumer's steals never recycled slabs to the global list";
    rig.pod.release_thread(std::move(checker));
}

} // namespace
