#include "cxlalloc/layout.h"

#include <gtest/gtest.h>

namespace {

using namespace cxlalloc;

Config
test_config()
{
    Config cfg;
    cfg.small_slabs = 128;
    cfg.large_slabs = 16;
    cfg.huge_regions = 8;
    cfg.huge_region_size = 4 << 20;
    return cfg;
}

TEST(LayoutTest, RegionsAreOrderedAndDisjoint)
{
    Layout l(test_config());
    EXPECT_GT(l.help_array(), 0u) << "offset 0 reserved as null";
    EXPECT_LT(l.help_array(), l.small_len());
    EXPECT_LT(l.small_len(), l.hwcc_end());
    EXPECT_LE(l.hwcc_end(), l.recovery_row(0));
    EXPECT_LT(l.recovery_row(0), l.small_local(0));
    EXPECT_LT(l.small_local(0), l.small_swcc_desc(0));
    EXPECT_LT(l.small_swcc_desc(0), l.small_data());
    EXPECT_LT(l.small_data(), l.large_data());
    EXPECT_LT(l.large_data(), l.huge_data());
    EXPECT_LT(l.huge_data(), l.end());
}

TEST(LayoutTest, HwccRegionIsSmallFractionOfHeap)
{
    // The whole point of the metadata split (§3.2): HWcc bytes are tiny
    // relative to the heap.
    Layout l(test_config());
    EXPECT_LT(l.hwcc_bytes() * 20, l.end());
}

TEST(LayoutTest, HwccPerSlabIsOneWord)
{
    Layout l(test_config());
    EXPECT_EQ(l.small_hwcc_desc(1) - l.small_hwcc_desc(0), 8u);
    EXPECT_EQ(l.large_hwcc_desc(1) - l.large_hwcc_desc(0), 8u);
}

TEST(LayoutTest, DataStridesMatchSlabSizes)
{
    Layout l(test_config());
    EXPECT_EQ(l.small_slab_data(1) - l.small_slab_data(0), kSmallSlabSize);
    EXPECT_EQ(l.large_slab_data(1) - l.large_slab_data(0), kLargeSlabSize);
    EXPECT_EQ(l.huge_region_data(1) - l.huge_region_data(0),
              test_config().huge_region_size);
}

TEST(LayoutTest, DeviceConfigCoversLayout)
{
    Layout l(test_config());
    auto dev = l.device_config(cxl::CoherenceMode::PartialHwcc);
    EXPECT_GE(dev.size, l.end());
    EXPECT_EQ(dev.size % cxl::kPageSize, 0u);
    EXPECT_EQ(dev.sync_region_size, l.hwcc_end());
}

TEST(LayoutTest, RegionPredicates)
{
    Layout l(test_config());
    EXPECT_TRUE(l.in_small_data(l.small_data()));
    EXPECT_FALSE(l.in_small_data(l.large_data()));
    EXPECT_TRUE(l.in_large_data(l.large_data()));
    EXPECT_TRUE(l.in_huge_data(l.huge_data()));
    EXPECT_FALSE(l.in_huge_data(l.end()));
}

TEST(LayoutTest, DescStridesHoldBitsets)
{
    // Small descriptors: 16 B header + 512 B bitset (4096 blocks).
    EXPECT_GE(Layout::kSmallDescStride, 16u + 4096 / 8);
    // Large descriptors: 16 B header + 48 B bitset (341 blocks max).
    std::uint64_t max_large_blocks = kLargeSlabSize / large_class_size(0);
    EXPECT_GE(Layout::kLargeDescStride, 16 + (max_large_blocks + 7) / 8);
}

TEST(LayoutTest, PerThreadRowsDoNotShareCachelines)
{
    Layout l(test_config());
    EXPECT_GE(l.recovery_row(2) - l.recovery_row(1), 64u);
    EXPECT_GE(l.small_local(2) - l.small_local(1), 64u);
    EXPECT_GE(l.huge_local(2) - l.huge_local(1), 64u);
}

TEST(LayoutTest, SameConfigSameLayout)
{
    // PC-S by construction: two processes computing the layout from the
    // same config agree on every offset.
    Layout a(test_config());
    Layout b(test_config());
    EXPECT_EQ(a.small_data(), b.small_data());
    EXPECT_EQ(a.huge_data(), b.huge_data());
    EXPECT_EQ(a.end(), b.end());
}

} // namespace
