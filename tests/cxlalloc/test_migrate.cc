/// @file
/// Tiered placement and hot-slab migration: stride-split placement into
/// the host-private DRAM window, capacity fallback to the CXL probe
/// order, the epoch promote/demote policy, inertness on DRAM-less
/// topologies, and a registry-driven crash sweep over every "migrate.*"
/// point with an exact no-lost/no-duplicated-blocks oracle.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cxlalloc/migrate.h"
#include "cxlalloc/size_class.h"
#include "pod/crashpoint.h"
#include "pod/pod.h"
#include "pod/topology.h"
#include "sync/detectable_cas.h"

namespace {

using cxlalloc::HotSlabMigrator;
using cxlalloc::PodShardedAllocator;
using pod::HostId;
using pod::Pod;
using pod::PodConfig;
using pod::ThreadCrashed;
using pod::Topology;

constexpr std::uint32_t kCells = 16;
constexpr std::uint64_t kObjSize = 64;

cxl::EdgeCost
far_edge()
{
    cxl::EdgeCost e;
    e.read_add_ns = 100;
    e.write_add_ns = 150;
    return e;
}

/// A 1-host (default) pod over 2 CXL devices, optionally extended with a
/// per-host private DRAM window, plus a migrator over the sharded heap.
struct TieredWorld {
    explicit TieredWorld(std::uint32_t dram_percent, bool tiered = true,
                         HostId hosts = 1)
    {
        cfg.small_slabs = 4;
        cfg.large_slabs = 2;
        cfg.huge_regions = 2;
        cfg.huge_region_size = 1 << 20;
        cfg.huge_descs_per_thread = 4;
        cfg.hazard_slots_per_thread = 4;
        cfg.app_sync_bytes = kCells * 8;
        cfg.dram_percent = dram_percent;
        cfg.dram_max_block = 1024;
        dram_cfg = cfg;
        dram_cfg.small_slabs = 2;
        dram_cfg.app_sync_bytes = 0;

        Topology base = Topology::dense(hosts, 2, cxl::EdgeCost{}, far_edge());
        topo = tiered ? Topology::with_local_dram(base) : base;

        PodConfig pc;
        pc.device = PodShardedAllocator::device_config(
            cfg, topo, cxl::CoherenceMode::PartialHwcc,
            /*simulate_cache=*/false, 0, tiered ? &dram_cfg : nullptr);
        pc.topology = topo;
        pod = std::make_unique<Pod>(pc);
        alloc = std::make_unique<PodShardedAllocator>(
            *pod, cfg, tiered ? &dram_cfg : nullptr);
        for (HostId h = 0; h < hosts; h++) {
            procs.push_back(pod->create_process(h));
            alloc->attach(*procs.back());
        }
        migrator = std::make_unique<HotSlabMigrator>(*alloc);
        migrator->set_cell_table(cell(0), kCells);
    }

    std::unique_ptr<pod::ThreadContext>
    thread(HostId host = 0)
    {
        auto ctx = pod->create_thread(procs[host]);
        alloc->attach_thread(*ctx);
        return ctx;
    }

    cxl::DeviceId home() const { return topo.home_of(0); }
    cxl::DeviceId dram() const { return topo.dram_device_of(0); }

    cxl::DeviceId device_of(cxl::HeapOffset p)
    {
        return pod->device().device_of(p);
    }

    cxl::HeapOffset
    cell(std::uint32_t i)
    {
        return alloc->shard(home()).layout().app_sync() +
               static_cast<cxl::HeapOffset>(i) * 8;
    }

    std::uint32_t
    cell_value(cxl::MemSession& mem, std::uint32_t i)
    {
        return alloc->shard(home()).dcas().read(mem, cell(i));
    }

    /// Allocates a block, fills it with @p fill, publishes it in cell @p i.
    cxl::HeapOffset
    make_object(pod::ThreadContext& ctx, std::uint32_t i, std::uint8_t fill)
    {
        cxl::HeapOffset off = alloc->allocate(ctx, kObjSize);
        EXPECT_NE(off, 0u);
        std::uint8_t buf[kObjSize];
        std::memset(buf, fill, sizeof buf);
        ctx.mem().write_bytes(off, buf, kObjSize);
        ctx.mem().flush(off, kObjSize);
        ctx.mem().fence();
        auto res = alloc->shard(home()).cell_publish(
            ctx, cell(i), 0, static_cast<std::uint32_t>(off >> 3));
        EXPECT_TRUE(res.success);
        return off;
    }

    bool
    payload_is(cxl::MemSession& mem, cxl::HeapOffset off, std::uint8_t fill)
    {
        std::uint8_t buf[kObjSize];
        mem.read_bytes(off, buf, kObjSize);
        for (std::uint8_t b : buf) {
            if (b != fill) {
                return false;
            }
        }
        return true;
    }

    cxlalloc::Config cfg;
    cxlalloc::Config dram_cfg;
    Topology topo;
    std::unique_ptr<Pod> pod;
    std::unique_ptr<PodShardedAllocator> alloc;
    std::unique_ptr<HotSlabMigrator> migrator;
    std::vector<pod::Process*> procs;
};

/// Free-counter == bitset-popcount for every classed small slab of every
/// shard, and the exact number of allocated small blocks across the pod —
/// the no-lost/no-duplicated-blocks oracle of the migration crash sweep.
std::uint64_t
sweep_and_count_allocated(TieredWorld& w, cxl::MemSession& mem)
{
    std::uint64_t allocated = 0;
    for (cxl::DeviceId d = 0; d < w.alloc->shard_count(); d++) {
        cxlalloc::SlabHeap& heap = w.alloc->shard(d).small_heap();
        std::uint32_t length = heap.length(mem);
        for (std::uint32_t slab = 0; slab < length; slab++) {
            std::uint8_t biased = heap.debug_class_biased(mem, slab);
            if (biased == 0) {
                continue;
            }
            std::uint32_t counter = heap.debug_free_blocks(mem, slab);
            std::uint32_t popcount = heap.debug_bitset_count(mem, slab);
            EXPECT_EQ(counter, popcount)
                << "shard " << d << " slab " << slab;
            std::uint64_t capacity =
                cxlalloc::small_blocks_per_slab(biased - 1);
            allocated += capacity - counter;
        }
    }
    return allocated;
}

TEST(TieredPlacement, StrideSplitsEligibleAllocations)
{
    TieredWorld w(/*dram_percent=*/50);
    auto ctx = w.thread();
    std::vector<cxl::HeapOffset> held;
    std::uint32_t on_dram = 0;
    for (int i = 0; i < 32; i++) {
        cxl::HeapOffset p = w.alloc->allocate(*ctx, kObjSize);
        ASSERT_NE(p, 0u);
        held.push_back(p);
        if (w.device_of(p) == w.dram()) {
            on_dram++;
        }
    }
    EXPECT_EQ(on_dram, 16u) << "50% split must be exact over whole periods";

    // Oversize allocations (> dram_max_block) never tier to DRAM.
    for (int i = 0; i < 8; i++) {
        cxl::HeapOffset p = w.alloc->allocate(*ctx, 2048);
        ASSERT_NE(p, 0u);
        EXPECT_NE(w.device_of(p), w.dram());
        held.push_back(p);
    }
    for (cxl::HeapOffset p : held) {
        w.alloc->deallocate(*ctx, p);
    }
    w.alloc->check_invariants(ctx->mem());
    w.pod->release_thread(std::move(ctx));
}

TEST(TieredPlacement, DramExhaustionFallsBackToCxlProbeOrder)
{
    // 100% DRAM preference against a 2-slab DRAM shard (64 1-KiB blocks):
    // the capacity limit degrades placement, never correctness.
    TieredWorld w(/*dram_percent=*/100);
    auto ctx = w.thread();
    std::vector<cxl::HeapOffset> held;
    std::uint32_t on_dram = 0;
    for (int i = 0; i < 100; i++) {
        cxl::HeapOffset p = w.alloc->allocate(*ctx, 1024);
        ASSERT_NE(p, 0u) << "fallback must absorb DRAM exhaustion";
        held.push_back(p);
        if (w.device_of(p) == w.dram()) {
            on_dram++;
        }
    }
    EXPECT_EQ(on_dram, 64u) << "DRAM fills to capacity first at 100%";
    for (cxl::HeapOffset p : held) {
        w.alloc->deallocate(*ctx, p);
    }
    w.alloc->check_invariants(ctx->mem());
    w.pod->release_thread(std::move(ctx));
}

TEST(TieredPlacement, ForeignHostDramIsNeverUsed)
{
    TieredWorld w(/*dram_percent=*/50, /*tiered=*/true, /*hosts=*/2);
    for (HostId h = 0; h < 2; h++) {
        cxl::DeviceId own_dram = w.topo.dram_device_of(h);
        cxl::DeviceId other_dram = w.topo.dram_device_of(1 - h);
        auto ctx = w.thread(h);
        std::vector<cxl::HeapOffset> held;
        bool used_own = false;
        for (int i = 0; i < 40; i++) {
            cxl::HeapOffset p = w.alloc->allocate(*ctx, kObjSize);
            ASSERT_NE(p, 0u);
            held.push_back(p);
            EXPECT_NE(w.device_of(p), other_dram)
                << "DRAM windows are host-private";
            used_own = used_own || w.device_of(p) == own_dram;
        }
        EXPECT_TRUE(used_own);
        for (cxl::HeapOffset p : held) {
            w.alloc->deallocate(*ctx, p);
        }
        w.pod->release_thread(std::move(ctx));
    }
}

TEST(Migrate, InertWithoutDramTier)
{
    TieredWorld w(/*dram_percent=*/50, /*tiered=*/false);
    EXPECT_FALSE(w.migrator->active());
    auto ctx = w.thread();
    cxl::HeapOffset obj = w.make_object(*ctx, 0, 0x11);
    w.migrator->note_access(obj); // no-op, must not touch anything
    EXPECT_EQ(w.migrator->run_epoch(*ctx), 0u);
    EXPECT_EQ(w.cell_value(ctx->mem(), 0),
              static_cast<std::uint32_t>(obj >> 3));
    EXPECT_EQ(w.device_of(obj), w.home());

    // recover() degrades to exactly PodShardedAllocator::recover.
    cxl::ThreadId tid = ctx->tid();
    w.pod->mark_crashed(std::move(ctx));
    auto rescuer = w.pod->adopt_thread(w.procs[0], tid);
    w.migrator->recover(*rescuer);
    w.alloc->check_invariants(rescuer->mem());
    cxl::HeapOffset p = w.alloc->allocate(*rescuer, kObjSize);
    ASSERT_NE(p, 0u);
    w.alloc->deallocate(*rescuer, p);
    w.alloc->deallocate(*rescuer, obj);
    w.pod->release_thread(std::move(rescuer));
}

TEST(Migrate, DebugMigrateRoundTripsWithIntactPayload)
{
    TieredWorld w(/*dram_percent=*/0); // placement all-CXL, migration on
    EXPECT_TRUE(w.migrator->active());
    auto ctx = w.thread();
    cxl::MemSession& mem = ctx->mem();
    cxl::HeapOffset obj = w.make_object(*ctx, 0, 0xab);
    EXPECT_EQ(w.device_of(obj), w.home());
    EXPECT_EQ(sweep_and_count_allocated(w, mem), 1u);

    // Promote: cell follows the copy, payload intact, loser freed.
    ASSERT_TRUE(w.migrator->debug_migrate_cell(*ctx, w.cell(0), w.dram()));
    std::uint32_t val = w.cell_value(mem, 0);
    ASSERT_NE(val, 0u);
    auto promoted = static_cast<cxl::HeapOffset>(val) << 3;
    EXPECT_NE(promoted, obj);
    EXPECT_EQ(w.device_of(promoted), w.dram());
    EXPECT_TRUE(w.payload_is(mem, promoted, 0xab));
    EXPECT_EQ(sweep_and_count_allocated(w, mem), 1u);

    // Migrating to the tier it already lives on is a no-op.
    EXPECT_FALSE(w.migrator->debug_migrate_cell(*ctx, w.cell(0), w.dram()));

    // Demote back to the home shard.
    ASSERT_TRUE(w.migrator->debug_migrate_cell(*ctx, w.cell(0), w.home()));
    val = w.cell_value(mem, 0);
    ASSERT_NE(val, 0u);
    auto demoted = static_cast<cxl::HeapOffset>(val) << 3;
    EXPECT_EQ(w.device_of(demoted), w.home());
    EXPECT_TRUE(w.payload_is(mem, demoted, 0xab));
    EXPECT_EQ(sweep_and_count_allocated(w, mem), 1u);

    w.alloc->deallocate(*ctx, demoted);
    EXPECT_EQ(sweep_and_count_allocated(w, mem), 0u);
    w.alloc->check_invariants(mem);
    w.pod->release_thread(std::move(ctx));
}

TEST(Migrate, RunEpochPromotesHotDemotesColdAndDecaysHeat)
{
    TieredWorld w(/*dram_percent=*/0);
    auto ctx = w.thread();
    cxl::MemSession& mem = ctx->mem();

    // hot: 64-B object on the home shard, 32 recorded accesses.
    cxl::HeapOffset hot = w.make_object(*ctx, 0, 0x01);
    // lukewarm CXL: different size class => different slab, no accesses.
    cxl::HeapOffset cold_cxl = w.alloc->allocate(*ctx, 128);
    ASSERT_NE(cold_cxl, 0u);
    auto pub = w.alloc->shard(w.home()).cell_publish(
        *ctx, w.cell(1), 0, static_cast<std::uint32_t>(cold_cxl >> 3));
    ASSERT_TRUE(pub.success);
    // cold DRAM resident: placed by a forced migration, never accessed.
    w.make_object(*ctx, 2, 0x03);
    ASSERT_TRUE(w.migrator->debug_migrate_cell(*ctx, w.cell(2), w.dram()));

    for (int i = 0; i < 32; i++) {
        w.migrator->note_access(hot);
    }
    const cxlalloc::Layout& l = w.alloc->shard(w.home()).layout();
    auto hot_slab = static_cast<std::uint32_t>(
        (hot - l.small_data()) / cxlalloc::kSmallSlabSize);
    EXPECT_EQ(w.migrator->debug_heat(w.home(), hot_slab), 32u);

    EXPECT_EQ(w.migrator->run_epoch(*ctx), 2u);
    EXPECT_EQ(w.migrator->promotions(), 1u);
    EXPECT_EQ(w.migrator->demotions(), 1u);

    // The hot object moved to DRAM, the cold DRAM resident moved home,
    // the unheated CXL object stayed put.
    auto where = [&](std::uint32_t i) {
        return w.device_of(static_cast<cxl::HeapOffset>(
                               w.cell_value(mem, i))
                           << 3);
    };
    EXPECT_EQ(where(0), w.dram());
    EXPECT_EQ(where(1), w.home());
    EXPECT_EQ(where(2), w.home());

    // Heat decayed by half at the epoch boundary.
    EXPECT_EQ(w.migrator->debug_heat(w.home(), hot_slab), 16u);

    EXPECT_EQ(sweep_and_count_allocated(w, mem), 3u);
    w.alloc->check_invariants(mem);
    w.pod->release_thread(std::move(ctx));
}

/// Every "migrate.*" crash point, pulled from the central registry so new
/// points widen the sweep automatically.
std::vector<pod::CrashPointInfo>
migrate_crash_points()
{
    cxlalloc::register_migrate_crash_points();
    std::vector<pod::CrashPointInfo> points;
    for (const pod::CrashPointInfo& info :
         pod::CrashPointRegistry::instance().all()) {
        if (info.name.rfind("migrate.", 0) == 0) {
            points.push_back(info);
        }
    }
    return points;
}

TEST(MigrateCrash, EveryCrashPointRecoversWithExactBlockAccounting)
{
    std::vector<pod::CrashPointInfo> points = migrate_crash_points();
    ASSERT_GE(points.size(), 6u);
    for (const pod::CrashPointInfo& point : points) {
        SCOPED_TRACE(point.name);
        TieredWorld w(/*dram_percent=*/0);
        auto ctx = w.thread();
        cxl::ThreadId tid = ctx->tid();
        cxl::HeapOffset obj = w.make_object(*ctx, 0, 0x5c);
        ASSERT_EQ(w.device_of(obj), w.home());

        ctx->arm_crash(point.id, 1);
        EXPECT_THROW(
            w.migrator->debug_migrate_cell(*ctx, w.cell(0), w.dram()),
            ThreadCrashed);
        w.pod->mark_crashed(std::move(ctx));

        auto rescuer = w.pod->adopt_thread(w.procs[0], tid);
        w.migrator->recover(*rescuer);
        cxl::MemSession& mem = rescuer->mem();

        // Oracle: the cell names exactly one live, intact block — nothing
        // leaked on either tier, nothing freed twice.
        std::uint32_t val = w.cell_value(mem, 0);
        ASSERT_NE(val, 0u);
        auto winner = static_cast<cxl::HeapOffset>(val) << 3;
        EXPECT_TRUE(w.payload_is(mem, winner, 0x5c));
        cxl::DeviceId dev = w.device_of(winner);
        EXPECT_TRUE(dev == w.home() || dev == w.dram());
        EXPECT_EQ(sweep_and_count_allocated(w, mem), 1u);
        w.alloc->check_invariants(mem);

        // The adopted slot keeps working, and a fresh migration of the
        // same cell completes cleanly after recovery.
        cxl::HeapOffset p = w.alloc->allocate(*rescuer, kObjSize);
        ASSERT_NE(p, 0u);
        w.alloc->deallocate(*rescuer, p);
        cxl::DeviceId other = dev == w.dram() ? w.home() : w.dram();
        EXPECT_TRUE(
            w.migrator->debug_migrate_cell(*rescuer, w.cell(0), other));
        w.alloc->deallocate(
            *rescuer,
            static_cast<cxl::HeapOffset>(w.cell_value(mem, 0)) << 3);
        EXPECT_EQ(sweep_and_count_allocated(w, mem), 0u);
        w.pod->release_thread(std::move(rescuer));
    }
}

TEST(MigrateCrash, RecoveryReentersAfterCrashingMidRecovery)
{
    TieredWorld w(/*dram_percent=*/0);
    auto ctx = w.thread();
    cxl::ThreadId tid = ctx->tid();
    cxl::HeapOffset obj = w.make_object(*ctx, 0, 0x77);

    // First crash after the payload copy (stage Copied: target block
    // allocated and recorded, cell still pointing at the original).
    ctx->arm_crash(cxlalloc::migratepoint::kAfterCopy, 1);
    EXPECT_THROW(w.migrator->debug_migrate_cell(*ctx, w.cell(0), w.dram()),
                 ThreadCrashed);
    w.pod->mark_crashed(std::move(ctx));

    // The rescuer crashes again inside recovery's own free of the loser.
    auto r1 = w.pod->adopt_thread(w.procs[0], tid);
    r1->arm_crash(cxlalloc::migratepoint::kMidFree, 1);
    EXPECT_THROW(w.migrator->recover(*r1), ThreadCrashed);
    w.pod->mark_crashed(std::move(r1));

    auto r2 = w.pod->adopt_thread(w.procs[0], tid);
    w.migrator->recover(*r2);
    cxl::MemSession& mem = r2->mem();
    std::uint32_t val = w.cell_value(mem, 0);
    ASSERT_NE(val, 0u);
    auto winner = static_cast<cxl::HeapOffset>(val) << 3;
    EXPECT_EQ(winner, obj) << "unpublished migration keeps the original";
    EXPECT_TRUE(w.payload_is(mem, winner, 0x77));
    EXPECT_EQ(sweep_and_count_allocated(w, mem), 1u);
    w.alloc->check_invariants(mem);
    w.alloc->deallocate(*r2, winner);
    w.pod->release_thread(std::move(r2));
}

} // namespace
