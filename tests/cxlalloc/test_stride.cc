/// @file
/// StrideScheduler unit tests: exact split ratios, deterministic tie
/// handling, and — the point of the port — consistent ticket
/// renormalization. Sidle's stride_scheduler zeroes both tickets only in
/// the branch about to overflow, erasing the inter-tier phase; here the
/// common minimum is subtracted from both tickets, so the pick sequence
/// across the renorm boundary is byte-identical to an unrenormalized
/// scheduler's.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cxlalloc/stride.h"

namespace {

using cxlalloc::StrideScheduler;

std::uint32_t
count_dram(StrideScheduler& s, std::uint32_t draws)
{
    std::uint32_t dram = 0;
    for (std::uint32_t i = 0; i < draws; i++) {
        if (s.next_dram()) {
            dram++;
        }
    }
    return dram;
}

TEST(Stride, ZeroPercentNeverPicksDram)
{
    StrideScheduler s;
    s.configure(0);
    EXPECT_EQ(count_dram(s, 1000), 0u);
    // Degenerate percentages clamp to the endpoints.
    s.configure(200);
    EXPECT_EQ(count_dram(s, 1000), 1000u);
}

TEST(Stride, HundredPercentAlwaysPicksDram)
{
    StrideScheduler s;
    s.configure(100);
    EXPECT_EQ(count_dram(s, 1000), 1000u);
}

TEST(Stride, SplitIsExactOverWholePeriods)
{
    // 1000 draws is a whole number of stride periods for each of these
    // percentages, so the split is exact, not approximate.
    for (std::uint32_t pct : {10u, 20u, 25u, 50u, 75u, 90u}) {
        StrideScheduler s;
        s.configure(pct);
        EXPECT_EQ(count_dram(s, 1000), pct * 10) << "pct=" << pct;
    }
}

TEST(Stride, EverySlidingWindowStaysNearTheTarget)
{
    // The stride property: any window of one period length contains
    // exactly the target count +/- 1, not just the long-run average.
    StrideScheduler s;
    s.configure(25); // period 4: one DRAM pick per 4 draws
    std::vector<bool> picks;
    for (int i = 0; i < 400; i++) {
        picks.push_back(s.next_dram());
    }
    for (std::size_t start = 0; start + 4 <= picks.size(); start++) {
        int dram = 0;
        for (std::size_t i = start; i < start + 4; i++) {
            dram += picks[i] ? 1 : 0;
        }
        EXPECT_GE(dram, 0);
        EXPECT_LE(dram, 2) << "window at " << start;
    }
}

TEST(Stride, TieBreaksToDram)
{
    StrideScheduler s;
    s.configure(50);
    // Equal tickets (the initial state, and every other step at 50%)
    // go to DRAM first, then strictly alternate.
    for (int i = 0; i < 100; i++) {
        EXPECT_TRUE(s.next_dram()) << "step " << i;
        EXPECT_FALSE(s.next_dram()) << "step " << i;
    }
}

TEST(Stride, ReconfigureResetsTickets)
{
    StrideScheduler s;
    s.configure(75);
    count_dram(s, 37); // leave the tickets mid-phase
    s.configure(50);
    EXPECT_EQ(s.ticket_dram(), 0u);
    EXPECT_EQ(s.ticket_cxl(), 0u);
    EXPECT_TRUE(s.next_dram());
}

/// The Sidle-wart regression test: drive both tickets to the renorm
/// threshold and verify the pick sequence is identical to a scheduler
/// whose tickets carry only the relative phase — i.e. renormalization
/// preserved the phase exactly instead of zeroing it away.
TEST(Stride, RenormalizationPreservesRelativePhase)
{
    StrideScheduler near_wrap;
    StrideScheduler reference;
    near_wrap.configure(30);
    reference.configure(30);
    // Same relative phase (cxl leads dram by 2), offset by ~threshold.
    near_wrap.debug_set_tickets(StrideScheduler::kRenormThreshold - 5,
                                StrideScheduler::kRenormThreshold - 3);
    reference.debug_set_tickets(0, 2);
    for (int i = 0; i < 10000; i++) {
        ASSERT_EQ(near_wrap.next_dram(), reference.next_dram())
            << "diverged at draw " << i;
    }
}

TEST(Stride, TicketsStayBoundedAcrossManyRenorms)
{
    // Run enough draws to cross the renorm threshold several times and
    // check both that the tickets never grow past threshold + max stride
    // (no overflow possible) and that the split stays exact throughout.
    StrideScheduler s;
    s.configure(25);
    s.debug_set_tickets(StrideScheduler::kRenormThreshold - 7,
                        StrideScheduler::kRenormThreshold - 7);
    constexpr std::uint32_t kDraws = 4u << 20; // several threshold crossings
    std::uint32_t dram = 0;
    for (std::uint32_t i = 0; i < kDraws; i++) {
        if (s.next_dram()) {
            dram++;
        }
        ASSERT_LT(s.ticket_dram(), StrideScheduler::kRenormThreshold + 100);
        ASSERT_LT(s.ticket_cxl(), StrideScheduler::kRenormThreshold + 100);
    }
    EXPECT_EQ(dram, kDraws / 4);
}

TEST(Stride, SkewedSplitSurvivesRenormBoundary)
{
    // 10% DRAM with tickets planted so the very next picks straddle a
    // renorm: the pick stream must equal that of a scheduler carrying the
    // same relative phase far from the boundary — the 1-in-10 cadence
    // does not hiccup when the renorm fires.
    StrideScheduler near_wrap;
    StrideScheduler reference;
    near_wrap.configure(10);
    reference.configure(10);
    near_wrap.debug_set_tickets(StrideScheduler::kRenormThreshold - 9,
                                StrideScheduler::kRenormThreshold - 1);
    reference.debug_set_tickets(0, 8);
    EXPECT_EQ(count_dram(near_wrap, 1000), count_dram(reference, 1000));
}

} // namespace
