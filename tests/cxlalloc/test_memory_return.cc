/// Tests of the MADV_REMOVE analog (paper §3.3.1): slabs parked on the
/// global free list return their backing memory to the device, and get it
/// back when acquired — while the (monotonic) mapping itself stays.

#include <gtest/gtest.h>
#include <vector>

#include "fixture.h"

namespace {

using cxltest::Rig;

TEST(MemoryReturn, GlobalSlabsDecommitBacking)
{
    Rig rig;
    auto t = rig.thread();
    // Build and fully free enough 1 KiB-class slabs that several spill to
    // the global free list.
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 32 * 12; i++) {
        ptrs.push_back(rig.alloc.allocate(*t, 1024));
    }
    std::uint64_t peak = rig.pod.device().committed_bytes();
    for (auto p : ptrs) {
        rig.alloc.deallocate(*t, p);
    }
    auto stats = rig.alloc.stats(t->mem());
    ASSERT_GT(stats.small.global_free, 0u);
    std::uint64_t after = rig.pod.device().committed_bytes();
    EXPECT_LE(after + static_cast<std::uint64_t>(stats.small.global_free) *
                          (32 << 10),
              peak)
        << "each global slab should have returned its 32 KiB of backing";
    rig.pod.release_thread(std::move(t));
}

TEST(MemoryReturn, ReacquiredSlabIsRecommitted)
{
    Rig rig;
    auto t1 = rig.thread();
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 32 * 12; i++) {
        ptrs.push_back(rig.alloc.allocate(*t1, 1024));
    }
    for (auto p : ptrs) {
        rig.alloc.deallocate(*t1, p);
    }
    std::uint64_t decommitted = rig.pod.device().committed_bytes();
    // A second thread pulls slabs back off the global list; backing must
    // be recommitted and usable.
    auto t2 = rig.thread();
    for (int i = 0; i < 64; i++) {
        cxl::HeapOffset p = rig.alloc.allocate(*t2, 1024);
        ASSERT_NE(p, 0u);
        std::memset(rig.alloc.pointer(*t2, p, 1024), 0x3c, 1024);
    }
    EXPECT_GT(rig.pod.device().committed_bytes(), decommitted);
    rig.alloc.check_invariants(t2->mem());
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(MemoryReturn, MappingStaysMonotonicWhileBackingReturns)
{
    // Paper §3.3.1: "heap extension is monotonic — cxlalloc never unmaps
    // small heap memory mappings"; only the backing is MADV_REMOVE'd.
    cxltest::RigOptions opt;
    opt.checked_mappings = true;
    Rig rig(opt);
    auto t = rig.thread();
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 32 * 12; i++) {
        ptrs.push_back(rig.alloc.allocate(*t, 1024));
    }
    cxl::HeapOffset probe = ptrs[0];
    for (auto p : ptrs) {
        rig.alloc.deallocate(*t, p);
    }
    // Even for a slab now parked on the global list, the mapping remains
    // installed in this process (no fault, no crash).
    EXPECT_TRUE(rig.process->is_mapped(probe));
    rig.pod.release_thread(std::move(t));
}

} // namespace
