/// @file
/// Degraded-mode placement and fault recovery on the sharded pod
/// allocator: runtime Down/Suspect masks from the topology health table,
/// healthy-first probing, parked frees across an edge outage (deferred,
/// never lost) and their replay, plus the registry-driven fault sweep —
/// every registered fault point injected mid-workload must leave exact
/// block accounting after recovery.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cxlalloc/pod_shard.h"
#include "pod/faults.h"
#include "pod/pod.h"
#include "pod/topology.h"

namespace {

using cxl::EdgeCost;
using cxl::EdgeState;
using cxlalloc::PodShardedAllocator;
using pod::FaultInjector;
using pod::FaultPlan;
using pod::FaultPointInfo;
using pod::FaultPointRegistry;
using pod::HostId;
using pod::Pod;
using pod::PodConfig;
using pod::Topology;
namespace faultpoint = pod::faultpoint;

EdgeCost
far_edge()
{
    EdgeCost e;
    e.read_add_ns = 100;
    e.write_add_ns = 150;
    return e;
}

/// A 2x2 dense pod with one tiny shard per device (2 small slabs = 64
/// 1-KiB blocks each), mirroring test_pod_shard.cc's world.
struct DegradedWorld {
    DegradedWorld()
        : topo(Topology::dense(2, 2, EdgeCost{}, far_edge()))
    {
        cfg.small_slabs = 2;
        cfg.large_slabs = 2;
        cfg.huge_regions = 2;
        cfg.huge_region_size = 1 << 20;
        cfg.huge_descs_per_thread = 4;
        cfg.hazard_slots_per_thread = 4;

        PodConfig pc;
        pc.device = PodShardedAllocator::device_config(
            cfg, topo, cxl::CoherenceMode::PartialHwcc);
        pc.topology = topo;
        pod = std::make_unique<Pod>(pc);
        alloc = std::make_unique<PodShardedAllocator>(*pod, cfg);
        for (HostId h = 0; h < 2; h++) {
            procs.push_back(pod->create_process(h));
            alloc->attach(*procs.back());
        }
    }

    std::unique_ptr<pod::ThreadContext>
    thread(HostId host)
    {
        auto ctx = pod->create_thread(procs[host]);
        alloc->attach_thread(*ctx);
        return ctx;
    }

    cxl::DeviceId device_of(cxl::HeapOffset p)
    {
        return pod->device().device_of(p);
    }

    /// Quiescent conservation oracle: free counter == bitset popcount on
    /// every classed small slab of every shard.
    void
    sweep_accounting(cxl::MemSession& mem)
    {
        for (cxl::DeviceId d = 0; d < alloc->shard_count(); d++) {
            cxlalloc::SlabHeap& heap = alloc->shard(d).small_heap();
            std::uint32_t length = heap.length(mem);
            for (std::uint32_t slab = 0; slab < length; slab++) {
                if (heap.debug_class_biased(mem, slab) == 0) {
                    continue;
                }
                EXPECT_EQ(heap.debug_free_blocks(mem, slab),
                          heap.debug_bitset_count(mem, slab))
                    << "shard " << d << " slab " << slab;
            }
        }
        alloc->check_invariants(mem);
    }

    cxlalloc::Config cfg;
    Topology topo;
    std::unique_ptr<Pod> pod;
    std::unique_ptr<PodShardedAllocator> alloc;
    std::vector<pod::Process*> procs;
};

// ---------------------------------------------------------------------------
// Health masks

TEST(PodDegraded, RefreshPlacementTracksEdgeHealthPerHost)
{
    DegradedWorld w;
    EXPECT_EQ(w.alloc->down_mask(0), 0u);
    EXPECT_EQ(w.alloc->suspect_mask(0), 0u);

    w.topo.set_edge_state(0, 1, EdgeState::Down);
    w.alloc->refresh_placement();
    EXPECT_EQ(w.alloc->down_mask(0), 1u << 1);
    EXPECT_EQ(w.alloc->suspect_mask(0), 0u);
    // Host 1's row is untouched: health is per (host, device) edge, not
    // per device.
    EXPECT_EQ(w.alloc->down_mask(1), 0u);

    w.topo.set_edge_state(0, 1, EdgeState::Suspect);
    w.alloc->refresh_placement();
    EXPECT_EQ(w.alloc->down_mask(0), 0u);
    EXPECT_EQ(w.alloc->suspect_mask(0), 1u << 1);

    w.topo.set_edge_state(0, 1, EdgeState::Up);
    w.alloc->refresh_placement();
    EXPECT_EQ(w.alloc->down_mask(0), 0u);
    EXPECT_EQ(w.alloc->suspect_mask(0), 0u);
}

TEST(PodDegraded, DownDeviceIsNeverProbed)
{
    DegradedWorld w;
    auto ctx = w.thread(0);
    w.topo.set_edge_state(0, 1, EdgeState::Down);
    w.alloc->refresh_placement();

    // Exhaust everything host 0 may touch: every block lands at home, and
    // exhaustion returns 0 instead of spilling onto the Down device.
    std::vector<cxl::HeapOffset> held;
    cxl::HeapOffset p = 0;
    while ((p = w.alloc->allocate(*ctx, 1024)) != 0) {
        EXPECT_EQ(w.device_of(p), 0);
        held.push_back(p);
        ASSERT_LE(held.size(), 256u) << "runaway allocation";
    }
    EXPECT_GT(held.size(), 0u);

    // The edge comes back: the very next allocation can spill again.
    w.topo.set_edge_state(0, 1, EdgeState::Up);
    w.alloc->refresh_placement();
    p = w.alloc->allocate(*ctx, 1024);
    ASSERT_NE(p, 0u);
    EXPECT_EQ(w.device_of(p), 1);
    w.alloc->deallocate(*ctx, p);

    for (cxl::HeapOffset h : held) {
        w.alloc->deallocate(*ctx, h);
    }
    w.sweep_accounting(ctx->mem());
    w.pod->release_thread(std::move(ctx));
}

TEST(PodDegraded, SuspectDeviceIsProbedOnlyAfterHealthyExhaustion)
{
    DegradedWorld w;
    auto ctx = w.thread(0);
    w.topo.set_edge_state(0, 1, EdgeState::Suspect);
    w.alloc->refresh_placement();

    // While the healthy home shard has room, nothing lands on the Suspect
    // device; once home is exhausted the Suspect edge is still usable.
    std::vector<cxl::HeapOffset> held;
    bool spilled = false;
    cxl::HeapOffset p = 0;
    while ((p = w.alloc->allocate(*ctx, 1024)) != 0) {
        if (w.device_of(p) == 1) {
            spilled = true;
        } else {
            EXPECT_FALSE(spilled)
                << "home allocation after the spill began";
        }
        held.push_back(p);
        ASSERT_LE(held.size(), 256u) << "runaway allocation";
    }
    EXPECT_TRUE(spilled) << "Suspect must degrade placement, not capacity";

    for (cxl::HeapOffset h : held) {
        w.alloc->deallocate(*ctx, h);
    }
    w.sweep_accounting(ctx->mem());
    w.pod->release_thread(std::move(ctx));
}

// ---------------------------------------------------------------------------
// Parked frees

TEST(PodDegraded, FreesIntoADownDeviceParkAndReplayAfterRecovery)
{
    DegradedWorld w;
    auto c0 = w.thread(0);
    auto c1 = w.thread(1);

    // Host 1 fills blocks on its home device 1; host 0 will free them.
    std::vector<cxl::HeapOffset> blocks;
    for (int i = 0; i < 8; i++) {
        cxl::HeapOffset p = w.alloc->allocate(*c1, 1024);
        ASSERT_NE(p, 0u);
        ASSERT_EQ(w.device_of(p), 1);
        blocks.push_back(p);
    }

    w.topo.set_edge_state(0, 1, EdgeState::Down);
    w.alloc->refresh_placement();
    for (cxl::HeapOffset p : blocks) {
        w.alloc->deallocate(*c0, p); // parks: the edge is Down
    }
    EXPECT_EQ(w.alloc->parked_frees(), 8u);
    // Replay with the edge still Down is a no-op — parked means deferred,
    // not dropped on the floor.
    EXPECT_EQ(w.alloc->replay_parked(*c0), 0u);
    EXPECT_EQ(w.alloc->parked_frees(), 8u);

    w.topo.set_edge_state(0, 1, EdgeState::Up);
    w.alloc->refresh_placement();
    EXPECT_EQ(w.alloc->replay_parked(*c0), 8u);
    EXPECT_EQ(w.alloc->parked_frees(), 0u);

    w.sweep_accounting(c0->mem());
    w.pod->release_thread(std::move(c0));
    w.pod->release_thread(std::move(c1));
}

TEST(PodDegraded, BatchFreeParksOnlyTheDownPortion)
{
    DegradedWorld w;
    auto c0 = w.thread(0);
    auto c1 = w.thread(1);

    std::vector<cxl::HeapOffset> mixed;
    for (int i = 0; i < 4; i++) {
        cxl::HeapOffset home = w.alloc->allocate(*c0, 1024);
        cxl::HeapOffset far = w.alloc->allocate(*c1, 1024);
        ASSERT_NE(home, 0u);
        ASSERT_NE(far, 0u);
        mixed.push_back(home);
        mixed.push_back(far);
    }

    w.topo.set_edge_state(0, 1, EdgeState::Down);
    w.alloc->refresh_placement();
    w.alloc->deallocate_batch(*c0, mixed.data(),
                              static_cast<std::uint32_t>(mixed.size()));
    // The device-0 half freed straight through; only the Down half parks.
    EXPECT_EQ(w.alloc->parked_frees(), 4u);

    w.topo.set_edge_state(0, 1, EdgeState::Up);
    w.alloc->refresh_placement();
    EXPECT_EQ(w.alloc->replay_parked(*c0), 4u);

    w.sweep_accounting(c0->mem());
    w.pod->release_thread(std::move(c0));
    w.pod->release_thread(std::move(c1));
}

// ---------------------------------------------------------------------------
// Registry-driven fault sweep

/// Every registered pod fault point, injected mid-workload through
/// FaultPlan::for_point, must leave the allocator with exact block
/// accounting once the fault is recovered: edges restored, dead hosts
/// adopted and recovered, parked frees drained.
TEST(PodDegraded, RegistrySweepEveryFaultPointKeepsBlockAccounting)
{
    pod::register_fault_points();
    for (const FaultPointInfo& info : FaultPointRegistry::instance().all()) {
        if (info.id < faultpoint::kEdgeDown ||
            info.id > faultpoint::kHostKill) {
            continue; // crashpoint ids live in other registries' sweeps
        }
        SCOPED_TRACE(info.name);

        DegradedWorld w;
        auto c0 = w.thread(0);
        auto c1 = w.thread(1);
        // Edge faults degrade host 0's view of device 1; the kill takes
        // host 1, so the surviving worker always drives recovery.
        HostId victim = info.id == faultpoint::kHostKill ? 1 : 0;
        FaultInjector inj(*w.pod,
                          FaultPlan::for_point(info.id, victim,
                                               /*device=*/1, /*at_step=*/4));

        std::vector<cxl::HeapOffset> live0, live1;
        for (int round = 0; round < 12; round++) {
            inj.step();
            w.alloc->refresh_placement();
            if (inj.host_killed(1) && c1 != nullptr) {
                // Host 1 dies without writeback; the survivor adopts every
                // crashed slot, recovers all shards, and inherits the dead
                // host's live blocks.
                w.pod->mark_crashed(std::move(c1),
                                    Pod::CrashSeverity::Host);
                for (cxl::ThreadId tid : w.pod->crashed_threads()) {
                    auto rec = w.pod->adopt_thread(w.procs[0], tid);
                    w.alloc->recover(*rec);
                    w.pod->release_thread(std::move(rec));
                }
                live0.insert(live0.end(), live1.begin(), live1.end());
                live1.clear();
            }
            cxl::HeapOffset p = w.alloc->allocate(*c0, 1024);
            if (p != 0) {
                live0.push_back(p);
            }
            if (c1 != nullptr) {
                p = w.alloc->allocate(*c1, 1024);
                if (p != 0) {
                    live1.push_back(p);
                }
            }
            // Cross-host frees every other round: under a Down edge these
            // park; they must all be accounted for at the end.
            if (round % 2 == 0 && !live1.empty()) {
                w.alloc->deallocate(*c0, live1.back());
                live1.pop_back();
            }
            if (round % 3 == 0 && !live0.empty() && c1 != nullptr) {
                w.alloc->deallocate(*c1, live0.back());
                live0.pop_back();
            }
        }
        EXPECT_TRUE(inj.done()) << "plan did not fully fire/recover";

        // Recovery: restore every edge (EdgeDown schedules none itself),
        // drain the survivors' blocks, replay anything parked.
        for (HostId h = 0; h < 2; h++) {
            for (cxl::DeviceId d = 0; d < 2; d++) {
                w.topo.set_edge_state(h, d, EdgeState::Up);
            }
        }
        w.alloc->refresh_placement();
        for (cxl::HeapOffset p : live0) {
            w.alloc->deallocate(*c0, p);
        }
        for (cxl::HeapOffset p : live1) {
            w.alloc->deallocate(c1 != nullptr ? *c1 : *c0, p);
        }
        w.alloc->replay_parked(*c0);
        EXPECT_EQ(w.alloc->parked_frees(), 0u);

        w.sweep_accounting(c0->mem());
        w.pod->release_thread(std::move(c0));
        if (c1 != nullptr) {
            w.pod->release_thread(std::move(c1));
        }
    }
}

} // namespace
