/// White-box and black-box recovery tests (paper §5.1): crash a thread at
/// defined (or random) points inside allocator operations, adopt its slot,
/// run recovery, and verify the heap is consistent and nothing is lost
/// except at most the in-flight block.

#include <gtest/gtest.h>
#include <cstring>
#include <vector>

#include "common/cacheline.h"
#include "common/random.h"
#include "cxl/cache_model.h"
#include "cxlalloc/recovery.h"
#include "fixture.h"

namespace {

using cxlalloc::crashpoint::kAfterDcas;
using cxlalloc::crashpoint::kAfterRecord;
using cxlalloc::crashpoint::kMidAlloc;
using cxlalloc::crashpoint::kMidDetach;
using cxlalloc::crashpoint::kMidFreeLocal;
using cxlalloc::crashpoint::kMidHugeAlloc;
using cxlalloc::crashpoint::kMidHugeFree;
using cxlalloc::crashpoint::kMidHugeMap;
using cxlalloc::crashpoint::kMidInit;
using cxlalloc::crashpoint::kMidPushGlobal;
using cxlalloc::crashpoint::kMidSteal;
using cxltest::Rig;
using cxltest::RigOptions;
using pod::ThreadCrashed;

/// Crashes `ctx` while running `op`, then adopts + recovers the slot.
/// Returns false if the armed point was never reached (op completed).
template <typename F>
bool
crash_and_recover(Rig& rig, std::unique_ptr<pod::ThreadContext>& ctx, F&& op,
                  int point, std::uint32_t countdown = 1)
{
    ctx->arm_crash(point, countdown);
    bool crashed = false;
    try {
        op(*ctx);
    } catch (const ThreadCrashed&) {
        crashed = true;
    }
    ctx->disarm_crash();
    if (!crashed) {
        return false;
    }
    cxl::ThreadId tid = ctx->tid();
    rig.pod.mark_crashed(std::move(ctx));
    ctx = rig.pod.adopt_thread(rig.process, tid);
    rig.alloc.recover(*ctx);
    return true;
}

void
verify_consistent(Rig& rig, pod::ThreadContext& ctx)
{
    rig.alloc.check_invariants(ctx.mem());
    rig.alloc.check_local_invariants(ctx.mem());
    // The heap must still be fully usable from the recovered slot.
    cxl::HeapOffset p = rig.alloc.allocate(ctx, 64);
    ASSERT_NE(p, 0u);
    rig.alloc.deallocate(ctx, p);
}

class WhiteBoxCrash : public ::testing::TestWithParam<int> {};

TEST_P(WhiteBoxCrash, CrashInsideAllocThenRecover)
{
    Rig rig;
    auto t = rig.thread();
    // Warm up so every code path (init, detach, ...) is reachable.
    std::vector<cxl::HeapOffset> warm;
    for (int i = 0; i < 100; i++) {
        warm.push_back(rig.alloc.allocate(*t, 512));
    }
    bool crashed = crash_and_recover(
        rig, t, [&](pod::ThreadContext& c) { rig.alloc.allocate(c, 512); },
        GetParam());
    (void)crashed; // some points are not on this path; that is fine
    verify_consistent(rig, *t);
    for (auto p : warm) {
        rig.alloc.deallocate(*t, p);
    }
    verify_consistent(rig, *t);
    rig.pod.release_thread(std::move(t));
}

INSTANTIATE_TEST_SUITE_P(Points, WhiteBoxCrash,
                         ::testing::Values(kAfterRecord, kMidInit,
                                           kAfterDcas, kMidAlloc,
                                           kMidDetach));

TEST(CrashRecovery, CrashDuringInitSlabRedoesTransition)
{
    Rig rig;
    auto t = rig.thread();
    // First allocation goes: extend -> unsized -> init. Crash mid-init.
    bool crashed = crash_and_recover(
        rig, t, [&](pod::ThreadContext& c) { rig.alloc.allocate(c, 64); },
        kMidInit);
    EXPECT_TRUE(crashed);
    // After recovery the slab must be usable: allocations proceed without
    // extending the heap again.
    cxl::HeapOffset p = rig.alloc.allocate(*t, 64);
    ASSERT_NE(p, 0u);
    EXPECT_EQ(rig.alloc.stats(t->mem()).small.length, 1u);
    verify_consistent(rig, *t);
    rig.pod.release_thread(std::move(t));
}

TEST(CrashRecovery, CrashAfterExtendDcasKeepsSlab)
{
    Rig rig;
    auto t = rig.thread();
    bool crashed = crash_and_recover(
        rig, t, [&](pod::ThreadContext& c) { rig.alloc.allocate(c, 64); },
        kAfterDcas);
    EXPECT_TRUE(crashed);
    // The length CAS landed before the crash; recovery must hand the slab
    // to the recovered thread rather than leak it.
    EXPECT_EQ(rig.alloc.stats(t->mem()).small.length, 1u);
    cxl::HeapOffset p = rig.alloc.allocate(*t, 64);
    ASSERT_NE(p, 0u);
    EXPECT_EQ(rig.alloc.stats(t->mem()).small.length, 1u)
        << "recovered slab was leaked: allocation extended the heap again";
    verify_consistent(rig, *t);
    rig.pod.release_thread(std::move(t));
}

TEST(CrashRecovery, CrashDuringLocalFree)
{
    Rig rig;
    auto t = rig.thread();
    cxl::HeapOffset p = rig.alloc.allocate(*t, 256);
    bool crashed = crash_and_recover(
        rig, t, [&](pod::ThreadContext& c) { rig.alloc.deallocate(c, p); },
        kMidFreeLocal);
    EXPECT_TRUE(crashed);
    // Recovery completes the free: the same block is allocatable again.
    cxl::HeapOffset q = rig.alloc.allocate(*t, 256);
    EXPECT_EQ(q, p);
    verify_consistent(rig, *t);
    rig.pod.release_thread(std::move(t));
}

/// Reads an 8-byte word straight from the device array, bypassing every
/// simulated thread cache — i.e. the state a HOST crash preserves.
std::uint64_t
device_word(Rig& rig, cxl::HeapOffset off)
{
    std::uint64_t w;
    std::memcpy(&w, rig.pod.device().raw(off), sizeof(w));
    return w;
}

/// Reads `want` distinct small-data lines that map to cache set
/// `target_set`: enough clean conflict fills to cycle the set's ways and
/// evict everything previously resident there, dirty lines included.
/// Returns how many conflict lines were actually found and read.
int
churn_cache_set(Rig& rig, pod::ThreadContext& ctx, std::uint32_t target_set,
                int want)
{
    const cxlalloc::Layout& layout = rig.alloc.layout();
    cxl::HeapOffset begin = layout.small_data();
    cxl::HeapOffset end =
        begin + rig.config.small_slabs * cxlalloc::kSmallSlabSize;
    int read = 0;
    for (cxl::HeapOffset line = begin; line < end && read < want;
         line += cxlcommon::kCacheLine) {
        if (cxl::ThreadCache::set_of(line) == target_set) {
            (void)ctx.mem().load<std::uint64_t>(line);
            read++;
        }
    }
    return read;
}

TEST(CrashRecovery, HostCrashEvictionCannotResurrectStaleRecord)
{
    // The deferred (log_local) recovery record is host-crash sound only if
    // no later operation's effect can become durable while the device still
    // holds an older record. Explicit flushes are protocol-ordered, so the
    // dangerous channel is a capacity EVICTION writing an effect line back
    // early. Construct exactly that interleaving and host-crash on it.
    RigOptions opt;
    opt.simulate_cache = true;
    Rig rig(opt);
    auto t = rig.thread();
    const cxlalloc::Layout& layout = rig.alloc.layout();

    // Fill one 256 B slab completely: the final allocation's Detach
    // transition flush_descs the whole descriptor, making the class byte
    // and the all-zero bitset durable.
    constexpr int kBlocks = 128; // 32 KiB slab / 256 B blocks
    std::vector<cxl::HeapOffset> warm;
    for (int i = 0; i < kBlocks; i++) {
        warm.push_back(rig.alloc.allocate(*t, 256));
        ASSERT_NE(warm.back(), 0u);
    }
    auto slab = static_cast<std::uint32_t>(
        (warm[0] - layout.small_data()) / cxlalloc::kSmallSlabSize);
    cxl::HeapOffset desc = layout.small_swcc_desc(slab);
    cxl::HeapOffset record_row = layout.recovery_row(t->tid());
    std::uint32_t record_set = cxl::ThreadCache::set_of(record_row);
    std::uint32_t desc_set = cxl::ThreadCache::set_of(desc);
    // Geometry precondition: evicting the descriptor line must not drag the
    // record row out with it (that write-back would mask the hazard).
    ASSERT_NE(record_set, desc_set);

    // Free blocks 1 then 0: the cache now holds dirty bitset bits for both
    // and a deferred FreeLocal(block 0) record; nothing was flushed.
    rig.alloc.deallocate(*t, warm[1]);
    rig.alloc.deallocate(*t, warm[0]);

    // Make THAT record durable by evicting its row, as steady-state cache
    // pressure would.
    std::uint64_t detach_rec = device_word(rig, record_row);
    ASSERT_EQ(churn_cache_set(rig, *t, record_set, 24), 24);
    std::uint64_t freelocal_rec = device_word(rig, record_row);
    ASSERT_NE(freelocal_rec, detach_rec)
        << "conflict reads failed to evict the dirty record row";

    // Re-allocate: hands block 0 back (lowest free bit). The Alloc record
    // and the cleared bitset bit exist only in the cache.
    cxl::HeapOffset a = rig.alloc.allocate(*t, 256);
    ASSERT_EQ(a, warm[0]);

    // Evict the descriptor's first line: the cleared bit goes durable while
    // the device record still says FreeLocal(block 0) — unless the cache
    // persists the registered durable line (the record row) first.
    ASSERT_EQ(device_word(rig, desc + cxlalloc::DescField::kBitset), 0u);
    std::uint64_t evictions = t->mem().cache().evictions();
    ASSERT_EQ(churn_cache_set(rig, *t, desc_set, 24), 24);
    EXPECT_GT(t->mem().cache().evictions(), evictions);
    ASSERT_EQ(device_word(rig, desc + cxlalloc::DescField::kBitset),
              std::uint64_t{1} << 1)
        << "descriptor bitset line was not written back as constructed";
    EXPECT_GE(t->mem().cache().durable_writebacks(), 1u);
    EXPECT_NE(device_word(rig, record_row), freelocal_rec)
        << "an effect line went durable ahead of the newer Alloc record";

    // Host crash: everything still cached is lost.
    cxl::ThreadId tid = t->tid();
    rig.pod.mark_crashed(std::move(t), pod::Pod::CrashSeverity::Host);
    t = rig.pod.adopt_thread(rig.process, tid);
    rig.alloc.recover(*t);
    rig.alloc.check_invariants(t->mem());
    rig.alloc.check_local_invariants(t->mem());

    // Block 0 is live application memory across the crash. Replaying a
    // stale FreeLocal would mark it free again — a double allocation.
    std::uint64_t word0 =
        t->mem().load<std::uint64_t>(desc + cxlalloc::DescField::kBitset);
    EXPECT_EQ(word0 & 1u, 0u)
        << "host-crash recovery resurrected a stale FreeLocal record";
    for (int i = 0; i < kBlocks; i++) {
        cxl::HeapOffset p = rig.alloc.allocate(*t, 256);
        ASSERT_NE(p, 0u);
        EXPECT_NE(p, a) << "live block handed out twice after recovery";
    }
    rig.pod.release_thread(std::move(t));
}

TEST(CrashRecovery, CrashDuringRemoteFreeCompletesDecrement)
{
    Rig rig;
    auto owner = rig.thread();
    auto other = rig.thread();
    cxl::HeapOffset p = rig.alloc.allocate(*owner, 512);
    bool crashed = crash_and_recover(
        rig, other, [&](pod::ThreadContext& c) { rig.alloc.deallocate(c, p); },
        kAfterRecord);
    EXPECT_TRUE(crashed);
    verify_consistent(rig, *other);
    verify_consistent(rig, *owner);
    rig.pod.release_thread(std::move(owner));
    rig.pod.release_thread(std::move(other));
}

TEST(CrashRecovery, CrashMidStealCompletesSteal)
{
    Rig rig;
    auto owner = rig.thread();
    auto other = rig.thread();
    // Fill one whole 512 B slab (64 blocks) and remote-free all of it;
    // the final decrement triggers the steal, where we crash.
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 64; i++) {
        ptrs.push_back(rig.alloc.allocate(*owner, 512));
    }
    for (int i = 0; i < 63; i++) {
        rig.alloc.deallocate(*other, ptrs[i]);
    }
    bool crashed = crash_and_recover(
        rig, other,
        [&](pod::ThreadContext& c) { rig.alloc.deallocate(c, ptrs[63]); },
        kMidSteal);
    EXPECT_TRUE(crashed);
    // The steal completed during recovery: the recovered thread can
    // allocate 64 blocks without extending the heap.
    std::uint32_t len = rig.alloc.stats(other->mem()).small.length;
    for (int i = 0; i < 64; i++) {
        ASSERT_NE(rig.alloc.allocate(*other, 512), 0u);
    }
    EXPECT_EQ(rig.alloc.stats(other->mem()).small.length, len);
    verify_consistent(rig, *other);
    rig.pod.release_thread(std::move(owner));
    rig.pod.release_thread(std::move(other));
}

TEST(CrashRecovery, CrashDuringPushGlobalFinishesPush)
{
    Rig rig;
    auto t = rig.thread();
    // Build up enough empty slabs that a free triggers the global spill.
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 32 * 8; i++) {
        ptrs.push_back(rig.alloc.allocate(*t, 1024));
    }
    bool crashed = false;
    for (auto p : ptrs) {
        if (!crashed) {
            t->arm_crash(kMidPushGlobal, 1);
            try {
                rig.alloc.deallocate(*t, p);
                t->disarm_crash();
            } catch (const ThreadCrashed&) {
                crashed = true;
                cxl::ThreadId tid = t->tid();
                rig.pod.mark_crashed(std::move(t));
                t = rig.pod.adopt_thread(rig.process, tid);
                rig.alloc.recover(*t);
            }
        } else {
            rig.alloc.deallocate(*t, p);
        }
    }
    EXPECT_TRUE(crashed);
    // The mid-push slab must be on the global list (not lost).
    verify_consistent(rig, *t);
    rig.pod.release_thread(std::move(t));
}

TEST(CrashRecovery, CrashDuringHugeAllocCompletesAllocation)
{
    Rig rig;
    auto t = rig.thread();
    for (int point : {kAfterRecord, kMidHugeAlloc, kMidHugeMap}) {
        auto live_before = rig.alloc.stats(t->mem()).huge.live_allocations;
        bool crashed = crash_and_recover(
            rig, t,
            [&](pod::ThreadContext& c) { rig.alloc.allocate(c, 1 << 20); },
            point);
        EXPECT_TRUE(crashed) << "point " << point;
        rig.alloc.check_invariants(t->mem());
        auto live_after = rig.alloc.stats(t->mem()).huge.live_allocations;
        // Either nothing happened or the allocation completed during
        // recovery (the pointer is leaked to the app's recovery, §5.2.1).
        EXPECT_LE(live_after, live_before + 1);
        // Heap still serves huge allocations afterwards.
        cxl::HeapOffset p = rig.alloc.allocate(*t, 1 << 20);
        ASSERT_NE(p, 0u);
        rig.alloc.deallocate(*t, p);
        rig.alloc.cleanup(*t);
    }
    rig.pod.release_thread(std::move(t));
}

TEST(CrashRecovery, CrashDuringHugeFreeCompletesFree)
{
    Rig rig;
    auto t = rig.thread();
    cxl::HeapOffset p = rig.alloc.allocate(*t, 1 << 20);
    bool crashed = crash_and_recover(
        rig, t, [&](pod::ThreadContext& c) { rig.alloc.deallocate(c, p); },
        kMidHugeFree);
    EXPECT_TRUE(crashed);
    EXPECT_EQ(rig.alloc.stats(t->mem()).huge.live_allocations, 0u);
    rig.alloc.cleanup(*t);
    // The address space is reusable.
    cxl::HeapOffset q = rig.alloc.allocate(*t, 1 << 20);
    ASSERT_NE(q, 0u);
    rig.pod.release_thread(std::move(t));
}

TEST(CrashRecovery, LiveThreadsNeverBlockOnCrashedThread)
{
    // The paper's core liveness claim (§3.4.1): a thread crashing inside
    // an allocator operation must not block other live threads.
    Rig rig;
    auto victim = rig.thread();
    auto live = rig.thread();
    // Crash the victim mid-operation and do NOT recover it.
    victim->arm_crash(kAfterRecord, 1);
    try {
        rig.alloc.allocate(*victim, 64);
    } catch (const ThreadCrashed&) {
    }
    rig.pod.mark_crashed(std::move(victim));
    // The live thread allocates and frees at will.
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 1000; i++) {
        cxl::HeapOffset p = rig.alloc.allocate(*live, 8 + (i % 1000));
        ASSERT_NE(p, 0u);
        ptrs.push_back(p);
    }
    for (auto p : ptrs) {
        rig.alloc.deallocate(*live, p);
    }
    rig.alloc.check_local_invariants(live->mem());
    rig.pod.release_thread(std::move(live));
}

TEST(CrashRecovery, BlackBoxRandomCrashes)
{
    // Black-box testing (paper §5.1): crash at random points during a
    // random workload, recover, and check invariants after every crash.
    Rig rig;
    cxlcommon::Xoshiro rng(2026);
    auto t = rig.thread();
    std::vector<cxl::HeapOffset> live;
    int crashes = 0;
    for (int i = 0; i < 8000; i++) {
        t->arm_random_crash(rng.next(), 0.002);
        bool freeing = rng.next_below(3) == 0 && !live.empty();
        std::size_t pick = freeing ? rng.next_below(live.size()) : 0;
        try {
            if (!freeing) {
                std::uint64_t size = 8 + rng.next_below(2040);
                cxl::HeapOffset p = rig.alloc.allocate(*t, size);
                if (p != 0) {
                    live.push_back(p);
                }
            } else {
                rig.alloc.deallocate(*t, live[pick]);
                live[pick] = live.back();
                live.pop_back();
            }
            t->disarm_crash();
        } catch (const ThreadCrashed&) {
            crashes++;
            cxl::ThreadId tid = t->tid();
            rig.pod.mark_crashed(std::move(t));
            t = rig.pod.adopt_thread(rig.process, tid);
            rig.alloc.recover(*t);
            rig.alloc.check_invariants(t->mem());
            rig.alloc.check_local_invariants(t->mem());
            // Semantics after recovery: an interrupted allocation leaks at
            // most its in-flight block (never entered `live`); an
            // interrupted free is COMPLETED by recovery, so the offset
            // must leave `live` exactly as if the call had returned.
            if (freeing) {
                live[pick] = live.back();
                live.pop_back();
            }
        }
    }
    EXPECT_GT(crashes, 3) << "crash probability too low to be meaningful";
    for (auto p : live) {
        rig.alloc.deallocate(*t, p);
    }
    rig.alloc.check_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(CrashRecovery, NonrecoverableVariantSkipsLogging)
{
    RigOptions opt;
    opt.recoverable = false;
    Rig rig(opt);
    auto t = rig.thread();
    std::uint64_t flushes_before = t->mem().counters().flushes;
    for (int i = 0; i < 100; i++) {
        rig.alloc.deallocate(*t, rig.alloc.allocate(*t, 64));
    }
    std::uint64_t flushes = t->mem().counters().flushes - flushes_before;
    // Without recovery records there is no per-op flush on the fast path.
    EXPECT_LT(flushes, 20u);
    rig.pod.release_thread(std::move(t));
}

TEST(CrashRecovery, RecoverableOverheadIsPerOpRecord)
{
    Rig rig;
    auto t = rig.thread();
    // Warm up so the steady state is pure fast path.
    for (int i = 0; i < 10; i++) {
        rig.alloc.deallocate(*t, rig.alloc.allocate(*t, 64));
    }
    std::uint64_t flushes_before = t->mem().counters().flushes;
    for (int i = 0; i < 100; i++) {
        rig.alloc.deallocate(*t, rig.alloc.allocate(*t, 64));
    }
    std::uint64_t flushes = t->mem().counters().flushes - flushes_before;
    // The record is a plain 8-byte store on the fast path; its write-back
    // is deferred to the next publication fence (RecoveryLog::log_local),
    // so recoverable steady state now costs ZERO flushes — identical to
    // the nonrecoverable ablation above. The remaining overhead is the
    // store itself.
    EXPECT_EQ(flushes, 0u);
    rig.pod.release_thread(std::move(t));
}

} // namespace
