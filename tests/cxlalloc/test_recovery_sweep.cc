/// Systematic crash-point sweep: run a fixed mixed workload and crash the
/// thread at the Nth instrumentation point for every N, recovering each
/// time and checking full heap consistency. This brute-forces the space of
/// interrupted-operation states far beyond the targeted white-box tests.

#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "common/random.h"
#include "fixture.h"
#include "pod/crashpoint.h"

namespace {

using cxltest::Rig;
using pod::ThreadCrashed;

/// Every allocator-layer crash point, pulled from the central registry so
/// new points widen the sweep automatically (`cxlalloc_inspect
/// --list-crashpoints` prints the same inventory).
std::vector<int>
allocator_crash_points()
{
    cxlalloc::register_crash_points();
    std::vector<int> points;
    for (const pod::CrashPointInfo& info :
         pod::CrashPointRegistry::instance().all()) {
        const std::string& name = info.name;
        if (name.rfind("slab.", 0) == 0 || name.rfind("huge.", 0) == 0) {
            points.push_back(info.id);
        }
    }
    return points;
}

/// The workload whose every instrumentation point we sweep: mixed sizes,
/// frees (local + empty-slab recycling), plus a huge allocation.
std::uint64_t
workload_step(Rig& rig, pod::ThreadContext& ctx, cxlcommon::Xoshiro& rng,
              std::vector<cxl::HeapOffset>& live)
{
    if (rng.next_below(3) != 0 || live.empty()) {
        std::uint64_t size = rng.next_below(100) == 0
                                 ? (1 << 20)                // occasional huge
                                 : 8 + rng.next_below(2040);
        cxl::HeapOffset p = rig.alloc.allocate(ctx, size);
        if (p != 0) {
            live.push_back(p);
        }
        return 1;
    }
    std::size_t pick = rng.next_below(live.size());
    rig.alloc.deallocate(ctx, live[pick]);
    live[pick] = live.back();
    live.pop_back();
    return 1;
}

class CrashEverywhere : public ::testing::TestWithParam<int> {};

TEST_P(CrashEverywhere, SweepCountdownRange)
{
    // Each instance sweeps a band of countdown values so CTest can
    // parallelize; every maybe_crash() site in the band gets hit once.
    const int base = GetParam();
    for (int countdown = base; countdown < base + 40; countdown += 4) {
        Rig rig;
        auto t = rig.thread();
        cxlcommon::Xoshiro rng(countdown); // different schedule per sweep
        std::vector<cxl::HeapOffset> live;

        // Arm a crash at the countdown-th instrumentation point of ANY
        // kind: use random-crash with probability derived deterministically
        // is imprecise, so instead arm each registered point in turn.
        bool crashed = false;
        for (int point : allocator_crash_points()) {
            t->arm_crash(point, static_cast<std::uint32_t>(countdown));
            try {
                for (int i = 0; i < 800 && !crashed; i++) {
                    workload_step(rig, *t, rng, live);
                }
                t->disarm_crash();
            } catch (const ThreadCrashed&) {
                crashed = true;
                cxl::ThreadId tid = t->tid();
                rig.pod.mark_crashed(std::move(t));
                t = rig.pod.adopt_thread(rig.process, tid);
                rig.alloc.recover(*t);
                rig.alloc.check_invariants(t->mem());
                rig.alloc.check_local_invariants(t->mem());
            }
            if (crashed) {
                break;
            }
        }
        // Whether or not a crash fired at this depth, the heap must stay
        // fully usable afterwards.
        for (int i = 0; i < 50; i++) {
            cxl::HeapOffset p = rig.alloc.allocate(*t, 64);
            ASSERT_NE(p, 0u);
            rig.alloc.deallocate(*t, p);
        }
        if (!crashed) {
            // No crash: `live` is exact, so every entry frees cleanly.
            // (After a crash mid-free the interrupted offset may already
            // have been freed by recovery, so tracking is conservative and
            // we leave `live` to the heap.)
            for (auto p : live) {
                rig.alloc.deallocate(*t, p);
            }
        }
        rig.alloc.check_invariants(t->mem());
        rig.alloc.check_local_invariants(t->mem());
        rig.pod.release_thread(std::move(t));
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, CrashEverywhere,
                         ::testing::Values(1, 41, 81, 121));

TEST(CrashEverywhere, RepeatedCrashRecoverCyclesOnOneSlot)
{
    // The same slot crashes and recovers many times in a row; versions,
    // help entries and records must keep working across generations.
    Rig rig;
    auto t = rig.thread();
    cxlcommon::Xoshiro rng(99);
    std::vector<cxl::HeapOffset> live;
    int crashes = 0;
    for (int round = 0; round < 60; round++) {
        t->arm_crash(cxlalloc::crashpoint::kAfterRecord,
                     1 + static_cast<std::uint32_t>(rng.next_below(20)));
        try {
            for (int i = 0; i < 200; i++) {
                workload_step(rig, *t, rng, live);
            }
            t->disarm_crash();
        } catch (const ThreadCrashed&) {
            crashes++;
            cxl::ThreadId tid = t->tid();
            rig.pod.mark_crashed(std::move(t));
            t = rig.pod.adopt_thread(rig.process, tid);
            rig.alloc.recover(*t);
            rig.alloc.check_invariants(t->mem());
            // Forget `live` tracking fidelity after a crash mid-free; just
            // stop freeing old pointers and keep allocating.
            live.clear();
        }
    }
    EXPECT_GT(crashes, 20);
    cxl::HeapOffset p = rig.alloc.allocate(*t, 64);
    EXPECT_NE(p, 0u);
    rig.pod.release_thread(std::move(t));
}

TEST(CrashEverywhere, TwoThreadsCrashSimultaneously)
{
    Rig rig;
    auto a = rig.thread();
    auto b = rig.thread();
    for (int i = 0; i < 200; i++) {
        rig.alloc.allocate(*a, 128);
        rig.alloc.allocate(*b, 256);
    }
    a->arm_crash(cxlalloc::crashpoint::kAfterRecord, 1);
    b->arm_crash(cxlalloc::crashpoint::kMidInit, 1);
    try {
        rig.alloc.allocate(*a, 128);
    } catch (const ThreadCrashed&) {
    }
    try {
        for (int i = 0; i < 200; i++) {
            rig.alloc.allocate(*b, 8 + i); // force an init eventually
        }
        b->disarm_crash();
    } catch (const ThreadCrashed&) {
    }
    cxl::ThreadId ta = a->tid();
    cxl::ThreadId tb = b->tid();
    rig.pod.mark_crashed(std::move(a));
    rig.pod.mark_crashed(std::move(b));
    EXPECT_EQ(rig.pod.crashed_threads().size(), 2u);
    // Recover in the opposite order of crashing.
    auto rb = rig.pod.adopt_thread(rig.process, tb);
    rig.alloc.recover(*rb);
    auto ra = rig.pod.adopt_thread(rig.process, ta);
    rig.alloc.recover(*ra);
    rig.alloc.check_invariants(ra->mem());
    EXPECT_NE(rig.alloc.allocate(*ra, 64), 0u);
    EXPECT_NE(rig.alloc.allocate(*rb, 64), 0u);
    rig.pod.release_thread(std::move(ra));
    rig.pod.release_thread(std::move(rb));
}

} // namespace
