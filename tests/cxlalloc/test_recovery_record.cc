#include "cxlalloc/recovery.h"

#include <gtest/gtest.h>

namespace {

using namespace cxlalloc;

TEST(OpRecordTest, PackUnpackRoundTrip)
{
    OpRecord r;
    r.op = Op::FreeRemote;
    r.large_heap = true;
    r.aux = 0x0abc;
    r.version = 0x7abc & 0x7fff;
    r.index = 0xdeadbeef;
    OpRecord back = OpRecord::unpack(r.pack());
    EXPECT_EQ(back.op, r.op);
    EXPECT_EQ(back.large_heap, r.large_heap);
    EXPECT_EQ(back.aux, r.aux);
    EXPECT_EQ(back.version, r.version);
    EXPECT_EQ(back.index, r.index);
}

TEST(OpRecordTest, ZeroWordIsNone)
{
    OpRecord r = OpRecord::unpack(0);
    EXPECT_EQ(r.op, Op::None);
    EXPECT_EQ(r.index, 0u);
}

TEST(OpRecordTest, MaxBlockIndexFits)
{
    OpRecord r;
    r.op = Op::Alloc;
    r.aux = 4095; // largest block index (32 KiB / 8 B - 1)
    OpRecord back = OpRecord::unpack(r.pack());
    EXPECT_EQ(back.aux, 4095);
    EXPECT_FALSE(back.large_heap);
}

TEST(OpRecordTest, HeapBitIndependentOfAux)
{
    OpRecord r;
    r.op = Op::Init;
    r.large_heap = true;
    r.aux = 0;
    OpRecord back = OpRecord::unpack(r.pack());
    EXPECT_TRUE(back.large_heap);
    EXPECT_EQ(back.aux, 0);
}

class OpRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(OpRoundTrip, EveryOpCodeSurvives)
{
    OpRecord r;
    r.op = static_cast<Op>(GetParam());
    r.index = 42;
    r.version = 7;
    EXPECT_EQ(OpRecord::unpack(r.pack()).op, r.op);
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpRoundTrip, ::testing::Range(0, 13));

} // namespace
