/// @file
/// Topology-aware sharded allocation over a multi-device pod: home
/// placement, cross-host stealing on exhaustion, deterministic rejection
/// under sparse topologies, cross-host free routing, and recovery.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "cxlalloc/pod_shard.h"
#include "pod/pod.h"
#include "pod/topology.h"

namespace {

using cxl::EdgeCost;
using cxlalloc::PodShardedAllocator;
using pod::HostId;
using pod::Pod;
using pod::PodConfig;
using pod::Topology;

EdgeCost
far_edge()
{
    EdgeCost e;
    e.read_add_ns = 100;
    e.write_add_ns = 150;
    return e;
}

/// A pod with one tiny shard per device (2 small slabs = 64 1-KiB blocks).
struct ShardWorld {
    explicit ShardWorld(Topology topo)
    {
        cfg.small_slabs = 2;
        cfg.large_slabs = 2;
        cfg.huge_regions = 2;
        cfg.huge_region_size = 1 << 20;
        cfg.huge_descs_per_thread = 4;
        cfg.hazard_slots_per_thread = 4;

        PodConfig pc;
        pc.device = PodShardedAllocator::device_config(
            cfg, topo, cxl::CoherenceMode::PartialHwcc);
        pc.topology = topo;
        pod = std::make_unique<Pod>(pc);
        alloc = std::make_unique<PodShardedAllocator>(*pod, cfg);
        for (HostId h = 0; h < topo.hosts(); h++) {
            procs.push_back(pod->create_process(h));
            alloc->attach(*procs.back());
        }
    }

    std::unique_ptr<pod::ThreadContext>
    thread(HostId host)
    {
        auto ctx = pod->create_thread(procs[host]);
        alloc->attach_thread(*ctx);
        return ctx;
    }

    cxl::DeviceId device_of(cxl::HeapOffset p)
    {
        return pod->device().device_of(p);
    }

    cxlalloc::Config cfg;
    std::unique_ptr<Pod> pod;
    std::unique_ptr<PodShardedAllocator> alloc;
    std::vector<pod::Process*> procs;
};

TEST(PodShard, DeviceConfigTilesOneWindowPerDevice)
{
    Topology topo = Topology::dense(4, 4, EdgeCost{}, far_edge());
    ShardWorld w(topo);
    EXPECT_EQ(w.pod->device().windows(), 4u);
    EXPECT_EQ(w.alloc->shard_count(), 4u);
    // Every shard's layout occupies exactly its window.
    for (cxl::DeviceId d = 0; d < 4; d++) {
        const cxlalloc::Layout& l = w.alloc->shard(d).layout();
        EXPECT_EQ(l.base(), w.pod->device().window_base(d));
        EXPECT_EQ(w.device_of(l.end() - 1), d);
    }
}

TEST(PodShard, HomePlacementKeepsAllocationsHostLocal)
{
    Topology topo = Topology::dense(2, 2, EdgeCost{}, far_edge());
    ShardWorld w(topo);
    for (HostId h = 0; h < 2; h++) {
        auto ctx = w.thread(h);
        for (int i = 0; i < 8; i++) {
            cxl::HeapOffset p = w.alloc->allocate(*ctx, 1024);
            ASSERT_NE(p, 0u);
            EXPECT_EQ(w.device_of(p), topo.home_of(h));
            w.alloc->deallocate(*ctx, p);
        }
        w.pod->release_thread(std::move(ctx));
    }
}

TEST(PodShard, ExhaustedHomeStealsFromNextCheapestEdge)
{
    Topology topo = Topology::dense(2, 2, EdgeCost{}, far_edge());
    ShardWorld w(topo);
    auto ctx = w.thread(0);
    std::vector<cxl::HeapOffset> held;
    std::set<cxl::DeviceId> devices;
    // Drain far past the home shard's 64-block small capacity.
    for (int i = 0; i < 96; i++) {
        cxl::HeapOffset p = w.alloc->allocate(*ctx, 1024);
        if (p == 0) {
            break;
        }
        held.push_back(p);
        devices.insert(w.device_of(p));
    }
    EXPECT_GT(held.size(), 64u) << "steal should extend past home capacity";
    EXPECT_EQ(devices.count(0), 1u);
    EXPECT_EQ(devices.count(1), 1u) << "exhaustion must spill to device 1";
    // Home-first: the first allocations all landed at home.
    EXPECT_EQ(w.device_of(held.front()), topo.home_of(0));
    for (cxl::HeapOffset p : held) {
        w.alloc->deallocate(*ctx, p);
    }
    w.alloc->check_invariants(ctx->mem());
    w.pod->release_thread(std::move(ctx));
}

TEST(PodShard, SparseTopologyRejectsInsteadOfMisrouting)
{
    // Host 0 is wired to device 0 only: exhausting that one arm must
    // return 0 — the unreachable shard is never probed.
    Topology topo = Topology::octopus(2, 2, /*arms=*/1, EdgeCost{},
                                      far_edge());
    ShardWorld w(topo);
    auto ctx = w.thread(0);
    std::vector<cxl::HeapOffset> held;
    cxl::HeapOffset p = 0;
    while ((p = w.alloc->allocate(*ctx, 1024)) != 0) {
        EXPECT_EQ(w.device_of(p), 0);
        held.push_back(p);
        ASSERT_LE(held.size(), 256u) << "runaway allocation";
    }
    EXPECT_GT(held.size(), 0u);
    // Deterministic: still rejected on retry, and again after freeing one
    // block the next allocation succeeds — from the reachable arm.
    EXPECT_EQ(w.alloc->allocate(*ctx, 1024), 0u);
    w.alloc->deallocate(*ctx, held.back());
    held.pop_back();
    cxl::HeapOffset again = w.alloc->allocate(*ctx, 1024);
    ASSERT_NE(again, 0u);
    EXPECT_EQ(w.device_of(again), 0);
    w.alloc->deallocate(*ctx, again);
    for (cxl::HeapOffset q : held) {
        w.alloc->deallocate(*ctx, q);
    }
    w.pod->release_thread(std::move(ctx));
}

TEST(PodShard, CrossHostFreeRoutesToTheOwningShard)
{
    Topology topo = Topology::dense(2, 2, EdgeCost{}, far_edge());
    ShardWorld w(topo);
    auto t0 = w.thread(0);
    auto t1 = w.thread(1);

    // Host 0 allocates from its home; host 1 frees that memory — a remote
    // free into device 0, which host 1 reaches over its far edge.
    std::vector<cxl::HeapOffset> blocks;
    for (int i = 0; i < 16; i++) {
        cxl::HeapOffset p = w.alloc->allocate(*t0, 1024);
        ASSERT_NE(p, 0u);
        EXPECT_EQ(w.device_of(p), 0);
        blocks.push_back(p);
    }
    std::uint64_t remote_before = t1->mem().counters().pod_remote;
    for (cxl::HeapOffset p : blocks) {
        w.alloc->deallocate(*t1, p);
    }
    EXPECT_GT(t1->mem().counters().pod_remote, remote_before)
        << "cross-host frees must traverse the edge";
    w.alloc->check_invariants(t0->mem());
    w.pod->release_thread(std::move(t0));
    w.pod->release_thread(std::move(t1));
}

TEST(PodShard, BatchedFreePartitionsByWindow)
{
    Topology topo = Topology::dense(2, 2, EdgeCost{}, far_edge());
    ShardWorld w(topo);
    auto t0 = w.thread(0);
    auto t1 = w.thread(1);
    std::vector<cxl::HeapOffset> mixed;
    for (int i = 0; i < 8; i++) {
        cxl::HeapOffset a = w.alloc->allocate(*t0, 1024);
        cxl::HeapOffset b = w.alloc->allocate(*t1, 1024);
        ASSERT_NE(a, 0u);
        ASSERT_NE(b, 0u);
        mixed.push_back(a);
        mixed.push_back(b);
    }
    // One batch spanning both windows: each shard drains its part.
    w.alloc->deallocate_batch(*t0, mixed.data(),
                              static_cast<std::uint32_t>(mixed.size()));
    w.alloc->check_invariants(t0->mem());
    w.pod->release_thread(std::move(t0));
    w.pod->release_thread(std::move(t1));
}

TEST(PodShard, RecoverSweepsEveryReachableShard)
{
    Topology topo = Topology::dense(2, 2, EdgeCost{}, far_edge());
    ShardWorld w(topo);
    auto victim = w.thread(0);
    cxl::ThreadId vtid = victim->tid();
    // Leave allocations in both windows (home + a forced steal via direct
    // shard use), then crash.
    cxl::HeapOffset home_block = w.alloc->allocate(*victim, 1024);
    ASSERT_NE(home_block, 0u);
    cxl::HeapOffset far_block = w.alloc->shard(1).allocate(*victim, 1024);
    ASSERT_NE(far_block, 0u);
    w.pod->mark_crashed(std::move(victim));

    auto rescuer = w.pod->adopt_thread(w.procs[0], vtid);
    w.alloc->recover(*rescuer);
    w.alloc->check_invariants(rescuer->mem());
    // The adopted slot keeps working, and the dead thread's blocks are
    // still live and freeable.
    cxl::HeapOffset p = w.alloc->allocate(*rescuer, 1024);
    ASSERT_NE(p, 0u);
    w.alloc->deallocate(*rescuer, p);
    w.alloc->deallocate(*rescuer, home_block);
    w.alloc->deallocate(*rescuer, far_block);
    w.alloc->check_invariants(rescuer->mem());
    w.pod->release_thread(std::move(rescuer));
}

TEST(PodShardDeathTest, TrivialTopologyIsRejected)
{
    cxlalloc::Config cfg;
    PodConfig pc;
    pc.device = cxlalloc::Layout(cfg).device_config(
        cxl::CoherenceMode::PartialHwcc);
    Pod pod(pc);
    EXPECT_DEATH(PodShardedAllocator alloc(pod, cfg), "topology");
}

} // namespace
