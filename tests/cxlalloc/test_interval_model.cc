/// Model-checking test for IntervalSet: every operation is mirrored
/// against a plain per-byte reference bitmap over a small universe, so any
/// divergence in membership, totals or coalescing is caught exactly.

#include <gtest/gtest.h>
#include <vector>

#include "common/random.h"
#include "cxlalloc/interval_set.h"

namespace {

using cxlalloc::IntervalSet;

class Model {
  public:
    explicit Model(std::size_t universe) : free_(universe, false) {}

    void
    insert(std::uint64_t start, std::uint64_t len)
    {
        for (std::uint64_t i = start; i < start + len; i++) {
            free_[i] = true;
        }
    }

    void
    remove(std::uint64_t start, std::uint64_t len)
    {
        for (std::uint64_t i = start; i < start + len; i++) {
            free_[i] = false;
        }
    }

    bool
    contains(std::uint64_t start, std::uint64_t len) const
    {
        for (std::uint64_t i = start; i < start + len; i++) {
            if (!free_[i]) {
                return false;
            }
        }
        return true;
    }

    std::uint64_t
    total() const
    {
        std::uint64_t n = 0;
        for (bool b : free_) {
            n += b;
        }
        return n;
    }

    std::size_t
    fragments() const
    {
        std::size_t n = 0;
        for (std::size_t i = 0; i < free_.size(); i++) {
            if (free_[i] && (i == 0 || !free_[i - 1])) {
                n++;
            }
        }
        return n;
    }

    /// Finds whether any run of @p len free bytes exists.
    bool
    can_fit(std::uint64_t len) const
    {
        std::uint64_t run = 0;
        for (bool b : free_) {
            run = b ? run + 1 : 0;
            if (run >= len) {
                return true;
            }
        }
        return false;
    }

  private:
    std::vector<bool> free_;
};

TEST(IntervalModel, RandomOpsAgreeWithReference)
{
    constexpr std::uint64_t kUniverse = 512;
    IntervalSet set;
    Model model(kUniverse);
    cxlcommon::Xoshiro rng(2025);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> taken;

    for (int step = 0; step < 5000; step++) {
        std::uint64_t action = rng.next_below(2);
        if (action == 0) {
            // take: carve some length, mirror as remove on the model.
            std::uint64_t len = 1 + rng.next_below(32);
            std::uint64_t start = 0;
            bool ok = set.take(len, &start);
            ASSERT_EQ(ok, model.can_fit(len)) << "step " << step;
            if (ok) {
                ASSERT_TRUE(model.contains(start, len)) << "step " << step;
                model.remove(start, len);
                taken.emplace_back(start, len);
            } else if (taken.empty()) {
                // Bootstrap: seed the universe once it is empty-empty.
                set.insert(0, kUniverse);
                model.insert(0, kUniverse);
            }
        } else if (!taken.empty()) {
            std::size_t pick = rng.next_below(taken.size());
            auto [start, len] = taken[pick];
            taken[pick] = taken.back();
            taken.pop_back();
            set.insert(start, len);
            model.insert(start, len);
        }
        ASSERT_EQ(set.total(), model.total()) << "step " << step;
        ASSERT_EQ(set.fragments(), model.fragments())
            << "coalescing diverged at step " << step;
    }
}

TEST(IntervalModel, SplitRemoveAgrees)
{
    constexpr std::uint64_t kUniverse = 256;
    IntervalSet set;
    Model model(kUniverse);
    set.insert(0, kUniverse);
    model.insert(0, kUniverse);
    cxlcommon::Xoshiro rng(7);
    // Punch random holes (only where the range is actually free).
    for (int i = 0; i < 300; i++) {
        std::uint64_t len = 1 + rng.next_below(16);
        std::uint64_t start = rng.next_below(kUniverse - len);
        if (model.contains(start, len)) {
            set.remove(start, len);
            model.remove(start, len);
        }
        ASSERT_EQ(set.total(), model.total());
        ASSERT_EQ(set.fragments(), model.fragments());
        ASSERT_EQ(set.contains(start, len), model.contains(start, len));
    }
}

} // namespace
