#include "cxlalloc/interval_set.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace {

using cxlalloc::IntervalSet;

TEST(IntervalSetTest, TakeFromSingleInterval)
{
    IntervalSet set;
    set.insert(1000, 100);
    std::uint64_t start = 0;
    ASSERT_TRUE(set.take(40, &start));
    EXPECT_EQ(start, 1000u);
    EXPECT_EQ(set.total(), 60u);
    ASSERT_TRUE(set.take(60, &start));
    EXPECT_EQ(start, 1040u);
    EXPECT_EQ(set.total(), 0u);
    EXPECT_FALSE(set.take(1, &start));
}

TEST(IntervalSetTest, BestFitPrefersSmallestHole)
{
    IntervalSet set;
    set.insert(0, 100);
    set.insert(1000, 30);
    std::uint64_t start = 0;
    ASSERT_TRUE(set.take(30, &start));
    EXPECT_EQ(start, 1000u) << "exact-fit hole wins over the big one";
}

TEST(IntervalSetTest, InsertMergesAdjacent)
{
    IntervalSet set;
    set.insert(0, 10);
    set.insert(20, 10);
    EXPECT_EQ(set.fragments(), 2u);
    set.insert(10, 10); // bridges the gap
    EXPECT_EQ(set.fragments(), 1u);
    EXPECT_EQ(set.total(), 30u);
    std::uint64_t start = 0;
    ASSERT_TRUE(set.take(30, &start));
    EXPECT_EQ(start, 0u);
}

TEST(IntervalSetTest, RemoveSplitsInterval)
{
    IntervalSet set;
    set.insert(0, 100);
    set.remove(40, 20);
    EXPECT_EQ(set.fragments(), 2u);
    EXPECT_EQ(set.total(), 80u);
    EXPECT_TRUE(set.contains(0, 40));
    EXPECT_TRUE(set.contains(60, 40));
    EXPECT_FALSE(set.contains(39, 2));
}

TEST(IntervalSetTest, RemoveAtBoundaries)
{
    IntervalSet set;
    set.insert(0, 100);
    set.remove(0, 10);
    set.remove(90, 10);
    EXPECT_EQ(set.total(), 80u);
    EXPECT_EQ(set.fragments(), 1u);
    EXPECT_TRUE(set.contains(10, 80));
}

TEST(IntervalSetTest, FreeThenReinsertRoundTrip)
{
    // Mirrors the huge heap's usage: take carves, insert returns.
    IntervalSet set;
    set.insert(0, 1 << 20);
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    ASSERT_TRUE(set.take(4096, &a));
    ASSERT_TRUE(set.take(8192, &b));
    set.insert(a, 4096);
    set.insert(b, 8192);
    EXPECT_EQ(set.total(), 1u << 20);
    EXPECT_EQ(set.fragments(), 1u);
}

TEST(IntervalSetTest, RandomizedInvariants)
{
    // Property: after any sequence of take/insert pairs, total bytes are
    // conserved and fragments never overlap (checked via contains()).
    cxlcommon::Xoshiro rng(99);
    IntervalSet set;
    constexpr std::uint64_t kSpace = 1 << 20;
    set.insert(0, kSpace);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> held;
    std::uint64_t held_bytes = 0;
    for (int i = 0; i < 2000; i++) {
        if (rng.next_below(2) == 0 || held.empty()) {
            std::uint64_t len = (rng.next_below(64) + 1) * 4096;
            std::uint64_t start = 0;
            if (set.take(len, &start)) {
                held.emplace_back(start, len);
                held_bytes += len;
                EXPECT_FALSE(set.contains(start, len));
            }
        } else {
            std::size_t pick = rng.next_below(held.size());
            auto [start, len] = held[pick];
            held[pick] = held.back();
            held.pop_back();
            set.insert(start, len);
            held_bytes -= len;
            EXPECT_TRUE(set.contains(start, len));
        }
        ASSERT_EQ(set.total() + held_bytes, kSpace);
    }
}

} // namespace
