/// Property-style sweeps over the allocator: every size class, every
/// coherence mode, data integrity under churn, and boundary conditions.

#include <gtest/gtest.h>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "fixture.h"

namespace {

using cxltest::Rig;
using cxltest::RigOptions;

// ---- Size sweep: one test per interesting size -------------------------

class SizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SizeSweep, AllocWriteReadFree)
{
    Rig rig;
    auto t = rig.thread();
    std::uint64_t size = GetParam();
    cxl::HeapOffset p = rig.alloc.allocate(*t, size);
    ASSERT_NE(p, 0u) << "size " << size;
    // The whole extent must be writable and must not alias any sibling.
    std::byte* data = rig.alloc.pointer(*t, p, size);
    std::memset(data, 0x5c, size);
    cxl::HeapOffset q = rig.alloc.allocate(*t, size);
    if (q != 0) {
        std::byte* other = rig.alloc.pointer(*t, q, size);
        std::memset(other, 0xa3, size);
        EXPECT_EQ(static_cast<unsigned char>(data[0]), 0x5c)
            << "allocations alias at size " << size;
        EXPECT_EQ(static_cast<unsigned char>(data[size - 1]), 0x5c);
        rig.alloc.deallocate(*t, q);
    }
    rig.alloc.deallocate(*t, p);
    rig.alloc.check_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SizeSweep,
    ::testing::Values(1, 7, 8, 9, 16, 24, 63, 64, 65, 100, 128, 255, 256,
                      500, 512, 960, 1023, 1024,        // small heap edge
                      1025, 1536, 2048, 4000, 8192,     // large heap
                      100 << 10, 256 << 10, (512 << 10) - 1,
                      512 << 10,                        // large heap edge
                      (512 << 10) + 1, 600 << 10, 1 << 20,
                      2 << 20));                        // huge heap

// ---- Every size class exactly ------------------------------------------

TEST(ClassSweep, EverySmallClassRoundTrips)
{
    Rig rig;
    auto t = rig.thread();
    for (std::uint32_t cls = 0; cls < cxlalloc::kNumSmallClasses; cls++) {
        std::uint64_t size = cxlalloc::small_class_size(cls);
        cxl::HeapOffset p = rig.alloc.allocate(*t, size);
        ASSERT_NE(p, 0u);
        EXPECT_TRUE(rig.alloc.layout().in_small_data(p));
        rig.alloc.deallocate(*t, p);
    }
    rig.alloc.check_local_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(ClassSweep, EveryLargeClassRoundTrips)
{
    Rig rig;
    auto t = rig.thread();
    for (std::uint32_t cls = 0; cls < cxlalloc::kNumLargeClasses; cls++) {
        std::uint64_t size = cxlalloc::large_class_size(cls);
        cxl::HeapOffset p = rig.alloc.allocate(*t, size);
        ASSERT_NE(p, 0u) << "class " << cls;
        EXPECT_TRUE(rig.alloc.layout().in_large_data(p));
        rig.alloc.deallocate(*t, p);
    }
    rig.alloc.check_local_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

// ---- Mode matrix: churn under every coherence/recoverability setting ----

class ModeMatrix
    : public ::testing::TestWithParam<std::tuple<cxl::CoherenceMode, bool,
                                                 bool>> {};

TEST_P(ModeMatrix, ChurnStaysConsistent)
{
    RigOptions opt;
    opt.mode = std::get<0>(GetParam());
    opt.simulate_cache = std::get<1>(GetParam());
    opt.recoverable = std::get<2>(GetParam());
    Rig rig(opt);
    auto t = rig.thread();
    cxlcommon::Xoshiro rng(11);
    std::vector<std::pair<cxl::HeapOffset, std::uint64_t>> live;
    for (int i = 0; i < 3000; i++) {
        if (rng.next_below(3) != 0 || live.empty()) {
            std::uint64_t size = 8 + rng.next_below(4088);
            cxl::HeapOffset p = rig.alloc.allocate(*t, size);
            ASSERT_NE(p, 0u);
            // Stamp the first byte with a size-derived value.
            *rig.alloc.pointer(*t, p, 1) =
                static_cast<std::byte>(size & 0xff);
            live.emplace_back(p, size);
        } else {
            std::size_t pick = rng.next_below(live.size());
            auto [p, size] = live[pick];
            EXPECT_EQ(*rig.alloc.pointer(*t, p, 1),
                      static_cast<std::byte>(size & 0xff))
                << "payload corrupted";
            rig.alloc.deallocate(*t, p);
            live[pick] = live.back();
            live.pop_back();
        }
    }
    for (auto [p, size] : live) {
        rig.alloc.deallocate(*t, p);
    }
    rig.alloc.check_invariants(t->mem());
    rig.alloc.check_local_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ModeMatrix,
    ::testing::Combine(::testing::Values(cxl::CoherenceMode::FullHwcc,
                                         cxl::CoherenceMode::PartialHwcc,
                                         cxl::CoherenceMode::NoHwcc),
                       ::testing::Bool(),   // simulate_cache
                       ::testing::Bool())); // recoverable

// ---- Boundary + misc properties ----------------------------------------

TEST(AllocProperties, SmallLargeHugeRoutingBoundaries)
{
    Rig rig;
    auto t = rig.thread();
    const auto& layout = rig.alloc.layout();
    cxl::HeapOffset a = rig.alloc.allocate(*t, 1024);
    cxl::HeapOffset b = rig.alloc.allocate(*t, 1025);
    cxl::HeapOffset c = rig.alloc.allocate(*t, 512 << 10);
    cxl::HeapOffset d = rig.alloc.allocate(*t, (512 << 10) + 1);
    EXPECT_TRUE(layout.in_small_data(a));
    EXPECT_TRUE(layout.in_large_data(b));
    EXPECT_TRUE(layout.in_large_data(c));
    EXPECT_TRUE(layout.in_huge_data(d));
    for (auto p : {a, b, c, d}) {
        rig.alloc.deallocate(*t, p);
    }
    rig.pod.release_thread(std::move(t));
}

TEST(AllocProperties, OffsetsNeverNullAndInsideDevice)
{
    Rig rig;
    auto t = rig.thread();
    cxlcommon::Xoshiro rng(3);
    for (int i = 0; i < 500; i++) {
        std::uint64_t size = 8 + rng.next_below(2040);
        cxl::HeapOffset p = rig.alloc.allocate(*t, size);
        ASSERT_NE(p, 0u);
        EXPECT_LT(p + size, rig.pod.device().size());
        rig.alloc.deallocate(*t, p);
    }
    rig.pod.release_thread(std::move(t));
}

TEST(AllocProperties, HwccFootprintIsConstantUnderLoad)
{
    // §3.2: HWcc consumption depends only on heap geometry, never on the
    // workload.
    Rig rig;
    auto t = rig.thread();
    std::uint64_t before = rig.alloc.stats(t->mem()).hwcc_bytes;
    std::vector<cxl::HeapOffset> live;
    for (int i = 0; i < 3000; i++) {
        live.push_back(rig.alloc.allocate(*t, 64 + (i % 960)));
    }
    EXPECT_EQ(rig.alloc.stats(t->mem()).hwcc_bytes, before);
    for (auto p : live) {
        rig.alloc.deallocate(*t, p);
    }
    rig.pod.release_thread(std::move(t));
}

TEST(AllocProperties, CommittedBytesTrackHeapGrowthNotChurn)
{
    Rig rig;
    auto t = rig.thread();
    for (int i = 0; i < 100; i++) {
        rig.alloc.deallocate(*t, rig.alloc.allocate(*t, 64));
    }
    std::uint64_t after_warm = rig.pod.device().committed_bytes();
    for (int i = 0; i < 10000; i++) {
        rig.alloc.deallocate(*t, rig.alloc.allocate(*t, 64));
    }
    EXPECT_EQ(rig.pod.device().committed_bytes(), after_warm)
        << "steady-state churn must not commit new memory";
    rig.pod.release_thread(std::move(t));
}

TEST(AllocProperties, ManyThreadSlotsSequentially)
{
    // Exercise thread-slot reuse across the whole slot space.
    Rig rig;
    for (int round = 0; round < 3; round++) {
        std::vector<std::unique_ptr<pod::ThreadContext>> ctxs;
        for (int i = 0; i < 16; i++) {
            ctxs.push_back(rig.thread());
            cxl::HeapOffset p = rig.alloc.allocate(*ctxs.back(), 128);
            ASSERT_NE(p, 0u);
            rig.alloc.deallocate(*ctxs.back(), p);
        }
        for (auto& c : ctxs) {
            rig.pod.release_thread(std::move(c));
        }
    }
}

TEST(AllocProperties, InterleavedSizeClassesShareSlabsCorrectly)
{
    // Alternating classes must land in distinct slabs with no cross-talk.
    Rig rig;
    auto t = rig.thread();
    std::vector<cxl::HeapOffset> small8;
    std::vector<cxl::HeapOffset> big512;
    for (int i = 0; i < 200; i++) {
        small8.push_back(rig.alloc.allocate(*t, 8));
        big512.push_back(rig.alloc.allocate(*t, 512));
    }
    auto slab_of = [&](cxl::HeapOffset p) {
        return (p - rig.alloc.layout().small_data()) / (32 << 10);
    };
    for (auto a : small8) {
        for (auto b : big512) {
            EXPECT_NE(slab_of(a), slab_of(b))
                << "different classes in one slab";
            break; // one cross-check per element is enough
        }
    }
    for (auto p : small8) {
        rig.alloc.deallocate(*t, p);
    }
    for (auto p : big512) {
        rig.alloc.deallocate(*t, p);
    }
    rig.alloc.check_local_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

} // namespace
