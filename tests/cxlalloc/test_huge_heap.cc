#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "fixture.h"

namespace {

using cxltest::Rig;
using cxltest::RigOptions;

TEST(HugeAlloc, BasicAllocateFree)
{
    Rig rig;
    auto t = rig.thread();
    cxl::HeapOffset p = rig.alloc.allocate(*t, 1 << 20);
    ASSERT_NE(p, 0u);
    EXPECT_TRUE(rig.alloc.layout().in_huge_data(p));
    std::byte* data = rig.alloc.pointer(*t, p, 1 << 20);
    std::memset(data, 0x77, 1 << 20);
    auto stats = rig.alloc.stats(t->mem());
    EXPECT_EQ(stats.huge.live_allocations, 1u);
    EXPECT_EQ(stats.huge.live_bytes, 1u << 20);
    rig.alloc.deallocate(*t, p);
    EXPECT_EQ(rig.alloc.stats(t->mem()).huge.live_allocations, 0u);
    rig.alloc.check_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(HugeAlloc, MappingInstalledAndRemoved)
{
    RigOptions opt;
    opt.checked_mappings = true;
    Rig rig(opt);
    auto t = rig.thread();
    cxl::HeapOffset p = rig.alloc.allocate(*t, 1 << 20);
    ASSERT_NE(p, 0u);
    EXPECT_TRUE(rig.process->is_mapped(p));
    rig.alloc.deallocate(*t, p);
    EXPECT_FALSE(rig.process->is_mapped(p));
    rig.pod.release_thread(std::move(t));
}

TEST(HugeAlloc, AddressSpaceAndDescriptorsRecycle)
{
    Rig rig;
    auto t = rig.thread();
    // Many more alloc/free cycles than there are descriptors or regions:
    // only reclamation (cleanup) makes this terminate successfully.
    for (int i = 0; i < 200; i++) {
        cxl::HeapOffset p = rig.alloc.allocate(*t, 2 << 20);
        ASSERT_NE(p, 0u) << "iteration " << i;
        rig.alloc.deallocate(*t, p);
        rig.alloc.cleanup(*t);
    }
    rig.alloc.check_invariants(t->mem());
    rig.pod.release_thread(std::move(t));
}

TEST(HugeAlloc, PcTFaultInstallsMappingInOtherProcess)
{
    RigOptions opt;
    opt.checked_mappings = true;
    Rig rig(opt);
    auto* proc2 = rig.new_process();
    auto t1 = rig.thread();
    auto t2 = rig.thread(proc2);

    cxl::HeapOffset p = rig.alloc.allocate(*t1, 1 << 20);
    std::byte* w = rig.alloc.pointer(*t1, p, 8);
    w[0] = std::byte{42};

    // Process 2 has no mapping; dereferencing faults through the handler,
    // which walks the huge descriptor lists (paper §3.3.2).
    EXPECT_FALSE(proc2->is_mapped(p));
    const std::byte* r = rig.alloc.pointer(*t2, p, 8);
    EXPECT_EQ(r[0], std::byte{42});
    EXPECT_TRUE(proc2->is_mapped(p));
    EXPECT_GE(proc2->faults_resolved(), 1u);

    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(HugeAlloc, HazardBlocksReclamationUntilUnmap)
{
    RigOptions opt;
    opt.checked_mappings = true;
    Rig rig(opt);
    auto* proc2 = rig.new_process();
    auto t1 = rig.thread();
    auto t2 = rig.thread(proc2);

    cxl::HeapOffset p = rig.alloc.allocate(*t1, 1 << 20);
    // Process 2 faults the mapping in: its thread publishes a hazard.
    (void)rig.alloc.pointer(*t2, p, 8);
    ASSERT_TRUE(proc2->is_mapped(p));

    // Free from the owner. The descriptor is marked free, but process 2's
    // hazard must prevent reclamation.
    rig.alloc.deallocate(*t1, p);
    rig.alloc.cleanup(*t1);
    std::uint64_t free_before = rig.alloc.thread_state(t1->tid()).huge_free
                                    .total();

    // Process 2 eventually runs its own cleanup: unmaps and removes the
    // hazard; now the owner can reclaim descriptor + address space.
    rig.alloc.cleanup(*t2);
    EXPECT_FALSE(proc2->is_mapped(p));
    rig.alloc.cleanup(*t1);
    EXPECT_GT(rig.alloc.thread_state(t1->tid()).huge_free.total(),
              free_before);

    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(HugeAlloc, CrossThreadFree)
{
    Rig rig;
    auto t1 = rig.thread();
    auto t2 = rig.thread();
    cxl::HeapOffset p = rig.alloc.allocate(*t1, 1 << 20);
    rig.alloc.deallocate(*t2, p); // non-owner free: walks owner's desc list
    EXPECT_EQ(rig.alloc.stats(t1->mem()).huge.live_allocations, 0u);
    // Owner reclaims on its next cleanup.
    rig.alloc.cleanup(*t1);
    rig.alloc.check_invariants(t1->mem());
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(HugeAlloc, RegionsGrantExclusiveOwnership)
{
    Rig rig;
    auto t1 = rig.thread();
    auto t2 = rig.thread();
    cxl::HeapOffset p1 = rig.alloc.allocate(*t1, 1 << 20);
    cxl::HeapOffset p2 = rig.alloc.allocate(*t2, 1 << 20);
    ASSERT_NE(p1, 0u);
    ASSERT_NE(p2, 0u);
    // Different threads claim different reservation regions.
    std::uint64_t region_size = rig.config.huge_region_size;
    cxl::HeapOffset base = rig.alloc.layout().huge_data();
    EXPECT_NE((p1 - base) / region_size, (p2 - base) / region_size);
    rig.pod.release_thread(std::move(t1));
    rig.pod.release_thread(std::move(t2));
}

TEST(HugeAlloc, ExhaustionReturnsNullThenRecovers)
{
    Rig rig;
    auto t = rig.thread();
    // 8 regions x 4 MiB; each allocation takes a full region.
    std::vector<cxl::HeapOffset> held;
    while (true) {
        cxl::HeapOffset p = rig.alloc.allocate(*t, 4 << 20);
        if (p == 0) {
            break;
        }
        held.push_back(p);
    }
    EXPECT_EQ(held.size(), 8u);
    for (auto p : held) {
        rig.alloc.deallocate(*t, p);
    }
    rig.alloc.cleanup(*t);
    EXPECT_NE(rig.alloc.allocate(*t, 4 << 20), 0u);
    rig.pod.release_thread(std::move(t));
}

TEST(HugeAlloc, OversizedRequestRejected)
{
    Rig rig;
    auto t = rig.thread();
    EXPECT_EQ(rig.alloc.allocate(*t, rig.config.huge_region_size + 1), 0u);
    rig.pod.release_thread(std::move(t));
}

TEST(HugeAlloc, ConcurrentHugeChurn)
{
    Rig rig;
    constexpr int kThreads = 4;
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; w++) {
        workers.emplace_back([&rig] {
            auto t = rig.thread();
            for (int i = 0; i < 40; i++) {
                cxl::HeapOffset p = rig.alloc.allocate(*t, 1 << 20);
                ASSERT_NE(p, 0u);
                rig.alloc.deallocate(*t, p);
                rig.alloc.cleanup(*t);
            }
            rig.pod.release_thread(std::move(t));
        });
    }
    for (auto& w : workers) {
        w.join();
    }
    auto checker = rig.thread();
    rig.alloc.check_invariants(checker->mem());
    EXPECT_EQ(rig.alloc.stats(checker->mem()).huge.live_allocations, 0u);
    rig.pod.release_thread(std::move(checker));
}

} // namespace
