#include "cxlalloc/c_api.h"

#include <cstring>
#include <gtest/gtest.h>
#include <thread>

namespace {

struct PodGuard {
    explicit PodGuard(const cxlalloc_options_t* opts = nullptr)
        : pod(cxlalloc_pod_create(opts))
    {
    }
    ~PodGuard() { cxlalloc_pod_destroy(pod); }
    cxlalloc_pod_t* pod;
};

cxlalloc_options_t
small_options()
{
    cxlalloc_options_t o = {};
    o.small_slabs = 128;
    o.large_slabs = 8;
    o.huge_regions = 4;
    o.huge_region_size = 4 << 20;
    o.coherence = 1;
    return o;
}

TEST(CApi, MallocFreeRoundTrip)
{
    auto opts = small_options();
    PodGuard g(&opts);
    ASSERT_NE(g.pod, nullptr);
    cxlalloc_process_t* proc = cxlalloc_process_attach(g.pod);
    ASSERT_NE(proc, nullptr);
    uint16_t tid = cxlalloc_thread_bind(proc);
    ASSERT_GT(tid, 0);

    uint64_t p = cxlalloc_malloc(256);
    ASSERT_NE(p, 0u);
    std::memset(cxlalloc_ptr(p, 256), 0x11, 256);
    cxlalloc_free(p);

    cxlalloc_stats_t stats;
    ASSERT_EQ(cxlalloc_stats_get(&stats), 0);
    EXPECT_GT(stats.committed_bytes, 0u);
    EXPECT_GT(stats.hwcc_bytes, 0u);
    cxlalloc_thread_unbind();
    cxlalloc_process_detach(proc);
}

TEST(CApi, UnboundThreadRejectsOperations)
{
    EXPECT_EQ(cxlalloc_malloc(64), 0u);
    cxlalloc_stats_t stats;
    EXPECT_EQ(cxlalloc_stats_get(&stats), -1);
}

TEST(CApi, DoubleBindRejected)
{
    auto opts = small_options();
    PodGuard g(&opts);
    cxlalloc_process_t* proc = cxlalloc_process_attach(g.pod);
    uint16_t tid = cxlalloc_thread_bind(proc);
    ASSERT_GT(tid, 0);
    EXPECT_EQ(cxlalloc_thread_bind(proc), 0u);
    cxlalloc_thread_unbind();
    cxlalloc_process_detach(proc);
}

TEST(CApi, CrossProcessOffsetsAreStable)
{
    auto opts = small_options();
    PodGuard g(&opts);
    cxlalloc_process_t* a = cxlalloc_process_attach(g.pod);
    cxlalloc_process_t* b = cxlalloc_process_attach(g.pod);

    uint64_t offset = 0;
    std::thread writer([&] {
        ASSERT_GT(cxlalloc_thread_bind(a), 0);
        offset = cxlalloc_malloc(64);
        std::memcpy(cxlalloc_ptr(offset, 64), "c-api cross-process", 20);
        cxlalloc_thread_unbind();
    });
    writer.join();
    std::thread reader([&] {
        ASSERT_GT(cxlalloc_thread_bind(b), 0);
        EXPECT_EQ(std::memcmp(cxlalloc_ptr(offset, 64),
                              "c-api cross-process", 20),
                  0);
        cxlalloc_free(offset); // remote free from the other process
        cxlalloc_thread_unbind();
    });
    reader.join();
    cxlalloc_process_detach(a);
    cxlalloc_process_detach(b);
}

TEST(CApi, InvalidCoherenceRejected)
{
    cxlalloc_options_t o = small_options();
    o.coherence = 9;
    EXPECT_EQ(cxlalloc_pod_create(&o), nullptr);
}

TEST(CApi, McasModeWorks)
{
    cxlalloc_options_t o = small_options();
    o.coherence = 2; // no HWcc: mCAS
    PodGuard g(&o);
    cxlalloc_process_t* proc = cxlalloc_process_attach(g.pod);
    ASSERT_GT(cxlalloc_thread_bind(proc), 0);
    for (int i = 0; i < 200; i++) {
        uint64_t p = cxlalloc_malloc(64);
        ASSERT_NE(p, 0u);
        cxlalloc_free(p);
    }
    cxlalloc_thread_unbind();
    cxlalloc_process_detach(proc);
}

TEST(CApi, AdoptRecoversCrashedSlot)
{
    auto opts = small_options();
    PodGuard g(&opts);
    cxlalloc_process_t* proc = cxlalloc_process_attach(g.pod);
    // Simulate a crash through the C++ side: bind, then mark crashed by
    // leaking the binding via a thread that never unbinds cleanly is not
    // expressible in pure C; use the pod directly.
    uint16_t dead = 0;
    {
        std::thread victim([&] {
            dead = cxlalloc_thread_bind(proc);
            ASSERT_GT(dead, 0);
            uint64_t p = cxlalloc_malloc(64);
            ASSERT_NE(p, 0u);
            // Die without unbinding: the slot stays Live; promote it to
            // Crashed through the C++ pod handle (the OS would do this).
        });
        victim.join();
    }
    // The victim thread's thread_local binding died with it; release its
    // slot as crashed via the C++ API (test-only plumbing).
    // NOTE: tls_binding was destroyed without release; recreate state:
    // slot `dead` is still Live in the pod. Nothing more to assert here
    // beyond adopt failing for a live slot:
    EXPECT_EQ(cxlalloc_thread_adopt(proc, dead), 0u)
        << "adopting a live (non-crashed) slot must fail";
    cxlalloc_process_detach(proc);
}

TEST(CApi, ZeroSizeMallocReturnsNull)
{
    auto opts = small_options();
    PodGuard g(&opts);
    cxlalloc_process_t* proc = cxlalloc_process_attach(g.pod);
    ASSERT_GT(cxlalloc_thread_bind(proc), 0);
    EXPECT_EQ(cxlalloc_malloc(0), 0u);
    cxlalloc_thread_unbind();
    cxlalloc_process_detach(proc);
}

} // namespace
