/// Bounded soak test: everything at once — multiple processes, multiple
/// threads, all three heaps, PC-T checks, random crashes with recovery,
/// huge-heap cleanup — with full invariant checks at the end. This is the
/// closest single test to the paper's §5.1 methodology ("we run all of our
/// benchmarks with these checks enabled and observe no errors").

#include <gtest/gtest.h>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "fixture.h"

namespace {

using cxltest::Rig;
using cxltest::RigOptions;
using pod::ThreadCrashed;

TEST(Soak, EverythingAtOnce)
{
    RigOptions opt;
    opt.checked_mappings = true;
    Rig rig(opt);
    constexpr int kProcs = 3;
    constexpr int kThreadsPerProc = 2;
    constexpr int kOpsPerThread = 5000;

    std::vector<pod::Process*> procs{rig.process};
    for (int i = 1; i < kProcs; i++) {
        procs.push_back(rig.new_process());
    }

    // Cross-thread mailbox so frees are frequently remote + cross-process.
    std::mutex mailbox_mu;
    std::vector<cxl::HeapOffset> mailbox;
    std::atomic<int> crashes{0};

    std::vector<std::thread> workers;
    for (int p = 0; p < kProcs; p++) {
        for (int w = 0; w < kThreadsPerProc; w++) {
            workers.emplace_back([&, p, w] {
                auto t = rig.thread(procs[p]);
                cxlcommon::Xoshiro rng(p * 100 + w + 1);
                t->arm_random_crash(rng.next(), 0.0005);
                for (int i = 0; i < kOpsPerThread; i++) {
                    try {
                        std::uint64_t roll = rng.next_below(100);
                        if (roll < 60) {
                            // Small/large/huge allocation mix.
                            std::uint64_t size =
                                roll < 50 ? 8 + rng.next_below(2040)
                                          : (roll < 58
                                                 ? 4096 + rng.next_below(
                                                              60000)
                                                 : (600 << 10));
                            cxl::HeapOffset q =
                                rig.alloc.allocate(*t, size);
                            if (q != 0) {
                                *rig.alloc.pointer(*t, q, 1) = std::byte{1};
                                std::lock_guard<std::mutex> lk(mailbox_mu);
                                mailbox.push_back(q);
                            }
                        } else if (roll < 95) {
                            cxl::HeapOffset victim = 0;
                            {
                                std::lock_guard<std::mutex> lk(mailbox_mu);
                                if (!mailbox.empty()) {
                                    victim = mailbox.back();
                                    mailbox.pop_back();
                                }
                            }
                            if (victim != 0) {
                                rig.alloc.deallocate(*t, victim);
                            }
                        } else {
                            rig.alloc.cleanup(*t);
                        }
                    } catch (const ThreadCrashed&) {
                        crashes.fetch_add(1);
                        cxl::ThreadId tid = t->tid();
                        rig.pod.mark_crashed(std::move(t));
                        t = rig.pod.adopt_thread(procs[p], tid);
                        rig.alloc.recover(*t);
                        t->arm_random_crash(rng.next(), 0.0005);
                        // NOTE: an interrupted mailbox free may have
                        // completed; the mailbox entry was already popped
                        // before the call, so tracking stays exact.
                    }
                }
                t->disarm_crash();
                rig.alloc.check_local_invariants(t->mem());
                rig.pod.release_thread(std::move(t));
            });
        }
    }
    for (auto& th : workers) {
        th.join();
    }
    EXPECT_GT(crashes.load(), 0) << "soak should include crashes";

    // Drain the mailbox and verify the whole heap.
    auto t = rig.thread();
    for (auto q : mailbox) {
        rig.alloc.deallocate(*t, q);
    }
    rig.alloc.cleanup(*t);
    rig.alloc.check_invariants(t->mem());
    rig.alloc.check_local_invariants(t->mem());
    // Heap fully serviceable afterwards.
    for (int i = 0; i < 100; i++) {
        cxl::HeapOffset q = rig.alloc.allocate(*t, 64 + i);
        ASSERT_NE(q, 0u);
        rig.alloc.deallocate(*t, q);
    }
    rig.pod.release_thread(std::move(t));
}

} // namespace
