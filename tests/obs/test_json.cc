/// Minimal JSON reader: grammar coverage and error reporting.

#include "obs/json.h"

#include <gtest/gtest.h>

namespace {

obs::json::Value
must_parse(std::string_view text)
{
    std::string err;
    obs::json::Value v = obs::json::parse(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    return v;
}

TEST(Json, Scalars)
{
    EXPECT_TRUE(must_parse("null").is_null());
    EXPECT_TRUE(must_parse("true").as_bool());
    EXPECT_FALSE(must_parse("false").as_bool());
    EXPECT_DOUBLE_EQ(must_parse("0").as_number(), 0.0);
    EXPECT_DOUBLE_EQ(must_parse("-17").as_number(), -17.0);
    EXPECT_DOUBLE_EQ(must_parse("3.5e2").as_number(), 350.0);
    EXPECT_EQ(must_parse("1234567890123").as_uint(), 1'234'567'890'123u);
    EXPECT_EQ(must_parse("\"hi\"").as_string(), "hi");
}

TEST(Json, StringEscapes)
{
    EXPECT_EQ(must_parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
    EXPECT_EQ(must_parse(R"("A/")").as_string(), "A/");
}

TEST(Json, NestedStructure)
{
    obs::json::Value v = must_parse(
        R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
    const obs::json::Array& a = v.find("a")->as_array();
    ASSERT_EQ(a.size(), 3u);
    EXPECT_DOUBLE_EQ(a[1].as_number(), 2.0);
    EXPECT_TRUE(a[2].find("b")->as_bool());
    EXPECT_TRUE(v.find("c")->find("d")->is_null());
    EXPECT_EQ(v.find("e")->as_string(), "x");
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_EQ(a[0].find("not-an-object"), nullptr);
}

TEST(Json, EmptyContainers)
{
    EXPECT_TRUE(must_parse("[]").as_array().empty());
    EXPECT_TRUE(must_parse("{}").as_object().empty());
    EXPECT_TRUE(must_parse("  [ ]  ").as_array().empty());
}

TEST(Json, ErrorsAreReported)
{
    for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterm",
                            "1 2", "{\"a\" 1}", "[1 2]"}) {
        std::string err;
        obs::json::Value v = obs::json::parse(bad, &err);
        EXPECT_TRUE(v.is_null()) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

} // namespace
