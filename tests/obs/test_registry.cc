/// Metrics registry: interning, sharded accumulation, snapshot/merge
/// round-trips, absorb-with-prefix, and the JSON export parsed back.

#include "obs/registry.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"

namespace {

TEST(Registry, InterningIsIdempotent)
{
    obs::MetricsRegistry reg;
    obs::MetricId a = reg.counter("ops");
    obs::MetricId b = reg.counter("ops");
    EXPECT_EQ(a, b);
    EXPECT_NE(reg.counter("other"), a);
    // Kinds have independent namespaces.
    EXPECT_EQ(reg.histogram("ops"), obs::MetricId{0});
    EXPECT_EQ(reg.gauge("ops"), obs::MetricId{0});
}

TEST(Registry, ShardsSumIntoSnapshot)
{
    obs::MetricsRegistry reg;
    obs::MetricId ops = reg.counter("ops");
    obs::MetricId lat = reg.histogram("lat_ns");
    reg.shard(1).add(ops, 10);
    reg.shard(2).add(ops, 32);
    reg.shard(1).record(lat, 100);
    reg.shard(2).record(lat, 300);

    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("ops"), 42u);
    EXPECT_EQ(snap.counter("never-registered"), 0u);
    const obs::Histogram* h = snap.histogram("lat_ns");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 2u);
    EXPECT_EQ(h->min(), 100u);
    EXPECT_EQ(h->max(), 300u);
}

TEST(Registry, ConcurrentWritersAreExact)
{
    obs::MetricsRegistry reg;
    obs::MetricId ops = reg.counter("ops");
    obs::MetricId lat = reg.histogram("lat_ns");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 50'000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; t++) {
        workers.emplace_back([&, t] {
            obs::MetricsShard& sh = reg.shard(static_cast<std::uint32_t>(t + 1));
            for (std::uint64_t i = 0; i < kPerThread; i++) {
                sh.add(ops);
                sh.record(lat, i);
            }
        });
    }
    for (auto& w : workers) {
        w.join();
    }
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("ops"), kThreads * kPerThread);
    EXPECT_EQ(snap.histogram("lat_ns")->count(), kThreads * kPerThread);
}

TEST(Registry, SnapshotMergeRoundTrip)
{
    obs::MetricsRegistry a;
    obs::MetricsRegistry b;
    a.shard(1).add(a.counter("ops"), 5);
    a.shard(1).record(a.histogram("lat"), 10);
    b.shard(1).add(b.counter("ops"), 7);
    b.shard(1).add(b.counter("only-b"), 1);
    b.shard(1).record(b.histogram("lat"), 30);

    obs::MetricsSnapshot sa = a.snapshot();
    sa.merge(b.snapshot());
    EXPECT_EQ(sa.counter("ops"), 12u);
    EXPECT_EQ(sa.counter("only-b"), 1u);
    EXPECT_EQ(sa.histogram("lat")->count(), 2u);
    EXPECT_EQ(sa.histogram("lat")->min(), 10u);
    EXPECT_EQ(sa.histogram("lat")->max(), 30u);
}

TEST(Registry, AbsorbWithPrefix)
{
    obs::MetricsRegistry scoped;
    scoped.shard(3).add(scoped.counter("cas_ops"), 9);
    scoped.shard(3).record(scoped.histogram("cas_ns"), 1'000);

    obs::MetricsRegistry global;
    global.absorb(scoped.snapshot(), "fig11.hw_cas.t4.");
    obs::MetricsSnapshot snap = global.snapshot();
    EXPECT_EQ(snap.counter("fig11.hw_cas.t4.cas_ops"), 9u);
    const obs::Histogram* h = snap.histogram("fig11.hw_cas.t4.cas_ns");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 1u);
}

TEST(Registry, GaugesLatestWins)
{
    obs::MetricsRegistry reg;
    obs::MetricId g = reg.gauge("sim_ns_max");
    reg.set_gauge(g, 1.5);
    reg.set_gauge(g, 4.25);
    EXPECT_DOUBLE_EQ(reg.snapshot().gauge("sim_ns_max"), 4.25);
}

TEST(Registry, TraceEventsSortedAndNamed)
{
    obs::MetricsRegistry reg;
    obs::MetricId op_a = reg.op("alloc");
    obs::MetricId op_f = reg.op("free");
    reg.shard(2).trace().push({op_f, 2, 200, 5, 64});
    reg.shard(1).trace().push({op_a, 1, 100, 9, 128});

    obs::MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.trace.size(), 2u);
    EXPECT_EQ(snap.trace[0].op, "alloc");
    EXPECT_EQ(snap.trace[0].start_ns, 100u);
    EXPECT_EQ(snap.trace[0].arg, 128u);
    EXPECT_EQ(snap.trace[1].op, "free");
    EXPECT_EQ(snap.trace[1].shard, 2u);
}

TEST(Registry, ResetKeepsIdsValid)
{
    obs::MetricsRegistry reg;
    obs::MetricId ops = reg.counter("ops");
    reg.shard(1).add(ops, 3);
    reg.reset();
    EXPECT_EQ(reg.snapshot().counter("ops"), 0u);
    reg.shard(1).add(ops, 2);
    EXPECT_EQ(reg.snapshot().counter("ops"), 2u);
}

TEST(Registry, JsonExportParsesBack)
{
    obs::MetricsRegistry reg;
    reg.shard(1).add(reg.counter("mem.loads"), 1'234);
    reg.set_gauge(reg.gauge("run.sim_ns_max"), 5e6);
    obs::MetricId lat = reg.histogram("alloc.alloc_ns");
    for (std::uint64_t v = 100; v <= 1'000; v += 10) {
        reg.shard(1).record(lat, v);
    }
    reg.shard(1).trace().push({reg.op("alloc"), 1, 10, 20, 64});

    std::string text = obs::to_json(reg.snapshot());
    std::string err;
    obs::json::Value root = obs::json::parse(text, &err);
    ASSERT_FALSE(root.is_null()) << err;

    EXPECT_EQ(root.find("schema")->as_string(), "cxlalloc-metrics-v1");
    EXPECT_EQ(root.find("counters")->find("mem.loads")->as_uint(), 1'234u);
    EXPECT_DOUBLE_EQ(root.find("gauges")->find("run.sim_ns_max")->as_number(),
                     5e6);

    const obs::json::Value* h =
        root.find("histograms")->find("alloc.alloc_ns");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->find("count")->as_uint(), 91u);
    EXPECT_EQ(h->find("min")->as_uint(), 100u);
    EXPECT_EQ(h->find("max")->as_uint(), 1'000u);
    double p50 = h->find("p50")->as_number();
    double p99 = h->find("p99")->as_number();
    EXPECT_GE(p50, 100.0);
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, 1'000.0);
    ASSERT_FALSE(h->find("buckets")->as_array().empty());

    const obs::json::Array& trace = root.find("trace")->as_array();
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace[0].find("op")->as_string(), "alloc");
    EXPECT_EQ(trace[0].find("arg")->as_uint(), 64u);

    // CSV comes out non-empty with one row per metric at minimum.
    EXPECT_NE(obs::to_csv(reg.snapshot()).find("mem.loads"),
              std::string::npos);
}

} // namespace
