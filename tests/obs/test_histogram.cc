/// Log-linear histogram: bucket geometry, percentile interpolation, merge.

#include "obs/histogram.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace {

TEST(Histogram, SmallValuesAreExact)
{
    for (std::uint64_t v = 0; v < 16; v++) {
        std::uint32_t idx = obs::Histogram::bucket_of(v);
        EXPECT_EQ(obs::Histogram::bucket_lower(idx), v);
        EXPECT_EQ(obs::Histogram::bucket_upper(idx), v + 1);
    }
}

TEST(Histogram, BucketBoundsCoverValue)
{
    cxlcommon::Xoshiro rng(7);
    for (int i = 0; i < 200'000; i++) {
        // Random magnitudes across the whole range.
        std::uint64_t v = rng.next() >> (rng.next_below(64));
        std::uint32_t idx = obs::Histogram::bucket_of(v);
        ASSERT_LT(idx, obs::Histogram::kBucketCount);
        EXPECT_GE(v, obs::Histogram::bucket_lower(idx));
        // The top bucket's bound saturates at uint64 max (inclusive).
        std::uint64_t up = obs::Histogram::bucket_upper(idx);
        EXPECT_TRUE(v < up || up == ~std::uint64_t{0}) << "value " << v;
    }
}

TEST(Histogram, RelativeErrorBounded)
{
    // Bucket width <= lower/16 for values >= 16 (one linear step per
    // sixteenth of the octave), the histogram's accuracy contract.
    cxlcommon::Xoshiro rng(11);
    for (int i = 0; i < 100'000; i++) {
        std::uint64_t v = 16 + (rng.next() >> rng.next_below(59));
        std::uint32_t idx = obs::Histogram::bucket_of(v);
        std::uint64_t lo = obs::Histogram::bucket_lower(idx);
        std::uint64_t hi = obs::Histogram::bucket_upper(idx);
        EXPECT_LE(hi - lo, lo / 16 + 1) << "value " << v;
    }
}

TEST(Histogram, BasicStats)
{
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);

    h.record(100);
    h.record(200);
    h.record(300);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 600u);
    EXPECT_EQ(h.min(), 100u);
    EXPECT_EQ(h.max(), 300u);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(Histogram, PercentileMonotoneAndClamped)
{
    obs::Histogram h;
    cxlcommon::Xoshiro rng(3);
    for (int i = 0; i < 10'000; i++) {
        h.record(1'000 + rng.next_below(1'000'000));
    }
    double prev = 0;
    for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
        double v = h.percentile(p);
        EXPECT_GE(v, prev) << "p" << p;
        EXPECT_GE(v, static_cast<double>(h.min()));
        EXPECT_LE(v, static_cast<double>(h.max()));
        prev = v;
    }
    EXPECT_DOUBLE_EQ(h.percentile(0), static_cast<double>(h.min()));
    EXPECT_DOUBLE_EQ(h.percentile(100), static_cast<double>(h.max()));
}

TEST(Histogram, PercentileAccuracyOnUniform)
{
    // Uniform samples in [0, 100000): p50 should land near 50000 within
    // the log-linear bucket error (~6.25%).
    obs::Histogram h;
    for (std::uint64_t v = 0; v < 100'000; v++) {
        h.record(v);
    }
    EXPECT_NEAR(h.percentile(50), 50'000, 50'000 * 0.07);
    EXPECT_NEAR(h.percentile(90), 90'000, 90'000 * 0.07);
    EXPECT_NEAR(h.percentile(99), 99'000, 99'000 * 0.07);
}

TEST(Histogram, MergeMatchesCombinedRecording)
{
    obs::Histogram a;
    obs::Histogram b;
    obs::Histogram both;
    cxlcommon::Xoshiro rng(5);
    for (int i = 0; i < 5'000; i++) {
        std::uint64_t v = rng.next_below(1 << 20);
        if (i % 2 == 0) {
            a.record(v);
        } else {
            b.record(v);
        }
        both.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.sum(), both.sum());
    EXPECT_EQ(a.min(), both.min());
    EXPECT_EQ(a.max(), both.max());
    for (std::uint32_t i = 0; i < obs::Histogram::kBucketCount; i++) {
        ASSERT_EQ(a.bucket_count(i), both.bucket_count(i)) << "bucket " << i;
    }
}

TEST(Histogram, SnapshotAndReset)
{
    obs::Histogram h;
    h.record(42);
    h.record(7);
    obs::Histogram snap = h.snapshot();
    EXPECT_EQ(snap.count(), 2u);
    EXPECT_EQ(snap.min(), 7u);
    EXPECT_EQ(snap.max(), 42u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(snap.count(), 2u); // snapshot unaffected
}

} // namespace
