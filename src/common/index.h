/// @file
/// Nullable index encoding for intrusive, index-linked lists.
///
/// Cxlalloc requires that all-zero memory constitutes a valid, empty heap
/// (paper §4, "Heap initialization"). Raw index 0 is a legal slab index, so
/// every stored link uses the encoding `stored = index + 1`, with 0 meaning
/// "null". OptIndex wraps that convention so call sites cannot mix raw and
/// stored values.

#pragma once

#include <cstdint>

#include "common/assert.h"

namespace cxlcommon {

/// A nullable 32-bit index whose zero *representation* is null, so that
/// zero-initialized link words decode as empty lists.
class OptIndex {
  public:
    constexpr OptIndex() : raw_(0) {}

    /// Builds from the stored (biased) representation, e.g. a word loaded
    /// from shared memory.
    static constexpr OptIndex
    from_raw(std::uint32_t raw)
    {
        OptIndex idx;
        idx.raw_ = raw;
        return idx;
    }

    /// Builds a non-null OptIndex referring to @p index.
    static constexpr OptIndex
    some(std::uint32_t index)
    {
        OptIndex idx;
        idx.raw_ = index + 1;
        return idx;
    }

    /// The null index.
    static constexpr OptIndex
    none()
    {
        return OptIndex();
    }

    constexpr bool is_none() const { return raw_ == 0; }
    constexpr bool is_some() const { return raw_ != 0; }

    /// The unbiased index; must not be null.
    std::uint32_t
    get() const
    {
        CXL_ASSERT(raw_ != 0, "dereferencing null OptIndex");
        return raw_ - 1;
    }

    /// The stored (biased) representation for writing to shared memory.
    constexpr std::uint32_t raw() const { return raw_; }

    constexpr bool operator==(const OptIndex&) const = default;

  private:
    std::uint32_t raw_;
};

} // namespace cxlcommon
