/// @file
/// Fixed-capacity block bitset used for SWccDesc.free (paper Fig. 3).
///
/// The bitset is single-writer (only a slab's owner mutates it; ownership
/// transfer is mediated by flush/fence in the SWcc protocol), so plain
/// non-atomic words suffice. Capacity is bounded by the maximum number of
/// blocks in a slab: 32 KiB / 8 B = 4096.

#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "common/assert.h"

namespace cxlcommon {

/// A bitset over up to N bits where a set bit means "block free".
template <std::size_t N>
class BlockBitset {
    static constexpr std::size_t kWords = (N + 63) / 64;

  public:
    /// Number of bits this bitset can hold.
    static constexpr std::size_t capacity() { return N; }

    /// Clears all bits (no block free).
    void
    clear_all()
    {
        words_.fill(0);
    }

    /// Sets bits [0, count) (all of the slab's blocks free) and clears the
    /// rest.
    void
    fill(std::size_t count)
    {
        CXL_ASSERT(count <= N, "bitset fill out of range");
        words_.fill(0);
        std::size_t full = count / 64;
        for (std::size_t i = 0; i < full; i++) {
            words_[i] = ~std::uint64_t{0};
        }
        std::size_t rem = count % 64;
        if (rem != 0) {
            words_[full] = (std::uint64_t{1} << rem) - 1;
        }
    }

    bool
    test(std::size_t i) const
    {
        CXL_ASSERT(i < N, "bitset index out of range");
        return (words_[i / 64] >> (i % 64)) & 1;
    }

    void
    set(std::size_t i)
    {
        CXL_ASSERT(i < N, "bitset index out of range");
        words_[i / 64] |= std::uint64_t{1} << (i % 64);
    }

    void
    reset(std::size_t i)
    {
        CXL_ASSERT(i < N, "bitset index out of range");
        words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
    }

    /// Finds and clears the lowest set bit; returns its index, or N if the
    /// bitset is empty. This is the small-heap allocation fast path.
    std::size_t
    pop_first()
    {
        for (std::size_t w = 0; w < kWords; w++) {
            if (words_[w] != 0) {
                unsigned bit = std::countr_zero(words_[w]);
                words_[w] &= words_[w] - 1;
                return w * 64 + bit;
            }
        }
        return N;
    }

    /// Number of set (free) bits.
    std::size_t
    count() const
    {
        std::size_t total = 0;
        for (auto w : words_) {
            total += std::popcount(w);
        }
        return total;
    }

    bool
    none() const
    {
        for (auto w : words_) {
            if (w != 0) {
                return false;
            }
        }
        return true;
    }

  private:
    std::array<std::uint64_t, kWords> words_;
};

} // namespace cxlcommon
