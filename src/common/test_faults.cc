#include "common/test_faults.h"

namespace cxlcommon::test_faults {

bool skip_swcc_publish_flush = false;
bool skip_hazard_publish_flush = false;

void
reset()
{
    skip_swcc_publish_flush = false;
    skip_hazard_publish_flush = false;
}

} // namespace cxlcommon::test_faults
