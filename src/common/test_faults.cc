#include "common/test_faults.h"

namespace cxlcommon::test_faults {

bool skip_swcc_publish_flush = false;
bool skip_hazard_publish_flush = false;
bool skip_record_publish_flush = false;
bool skip_dirty_line_tracking = false;

void
reset()
{
    skip_swcc_publish_flush = false;
    skip_hazard_publish_flush = false;
    skip_record_publish_flush = false;
    skip_dirty_line_tracking = false;
}

} // namespace cxlcommon::test_faults
