#include "common/zipfian.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace cxlcommon {

namespace {

/// Below this distance from theta == 1 the closed-form tail and the Gray
/// et al. constants switch to their logarithmic / nudged forms: the power
/// forms divide by (1 - theta) and blow up to inf/NaN.
constexpr double kThetaOneEps = 1e-6;

} // namespace

double
Zipfian::zeta(std::uint64_t n, double theta)
{
    // Direct summation is O(n); cap the exact prefix and extrapolate with the
    // Euler-Maclaurin tail so constructing generators over hundreds of
    // millions of keys stays cheap while matching YCSB closely.
    constexpr std::uint64_t kExact = 1'000'000;
    double sum = 0;
    std::uint64_t m = n < kExact ? n : kExact;
    for (std::uint64_t i = 1; i <= m; i++) {
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (n > m) {
        // Integral approximation of the remaining tail. The antiderivative
        // of x^-theta is x^(1-theta)/(1-theta) except at theta == 1, where
        // it is ln(x); near 1 the power form divides by ~0.
        double a = static_cast<double>(m);
        double b = static_cast<double>(n);
        if (std::abs(1.0 - theta) < kThetaOneEps) {
            sum += std::log(b / a);
        } else {
            sum += (std::pow(b, 1 - theta) - std::pow(a, 1 - theta)) /
                   (1 - theta);
        }
    }
    return sum;
}

Zipfian::Zipfian(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    CXL_ASSERT(n > 0, "zipfian over empty population");
    CXL_FATAL_IF(!(theta > 0.0 && theta <= 1.0),
                 "zipfian theta outside (0, 1] (YCSB skew range)");
    // Gray et al.'s sampling constants divide by (1 - theta); at theta == 1
    // use a value nudged just below it (the distributions are
    // indistinguishable at this epsilon) while zeta() keeps the exact
    // logarithmic tail.
    double t = std::min(theta, 1.0 - kThetaOneEps);
    alpha_ = 1.0 / (1.0 - t);
    zetan_ = zeta(n, theta);
    double zeta2 = zeta(2, theta);
    eta_ = (1 - std::pow(2.0 / static_cast<double>(n), 1 - t)) /
           (1 - zeta2 / zetan_);
}

std::uint64_t
Zipfian::sample(Xoshiro& rng)
{
    double u = rng.next_double();
    double uz = u * zetan_;
    if (uz < 1.0) {
        return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
        return 1;
    }
    auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

ScrambledZipfian::ScrambledZipfian(std::uint64_t n, double theta)
    : zipf_(n, theta)
{
}

std::uint64_t
ScrambledZipfian::sample(Xoshiro& rng)
{
    std::uint64_t rank = zipf_.sample(rng);
    // FNV-style scramble, stable across runs.
    std::uint64_t h = rank;
    h = splitmix64(h);
    return h % zipf_.n();
}

} // namespace cxlcommon
