/// @file
/// Offset pointers (paper §2.3): the pointer-alternative that provides
/// spatial pointer consistency (PC-S) across processes.
///
/// Two flavours are provided:
///  - HeapOffset: a plain 64-bit byte offset into the shared device/heap,
///    resolved against a per-process base. This is the representation the
///    allocator trades in and what applications should store in shared
///    data structures.
///  - OffsetPtr<T>: a self-relative pointer (stores `target - this`),
///    usable inside shared memory even when each process maps the heap at a
///    different virtual address, as long as intra-heap distances are stable.

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/assert.h"

namespace cxlcommon {

/// A byte offset into the shared heap. Offset 0 is reserved as null; the
/// heap layout guarantees no allocation is ever handed out at offset 0.
using HeapOffset = std::uint64_t;

inline constexpr HeapOffset kNullOffset = 0;

/// Self-relative pointer: stores the signed distance from its own address to
/// the target. Distance 0 (pointing at itself) encodes null, which makes a
/// zero-filled OffsetPtr null — required for zero-is-valid heap layouts.
template <typename T>
class OffsetPtr {
  public:
    OffsetPtr() : delta_(0) {}

    OffsetPtr(const OffsetPtr& other) { set(other.get()); }

    OffsetPtr&
    operator=(const OffsetPtr& other)
    {
        set(other.get());
        return *this;
    }

    OffsetPtr& operator=(T* ptr)
    {
        set(ptr);
        return *this;
    }

    /// Resolves to an absolute pointer in this process.
    T*
    get() const
    {
        if (delta_ == 0) {
            return nullptr;
        }
        auto self = reinterpret_cast<std::intptr_t>(this);
        return reinterpret_cast<T*>(self + delta_);
    }

    /// Points this OffsetPtr at @p ptr (or null).
    void
    set(T* ptr)
    {
        if (ptr == nullptr) {
            delta_ = 0;
            return;
        }
        auto self = reinterpret_cast<std::intptr_t>(this);
        auto target = reinterpret_cast<std::intptr_t>(ptr);
        CXL_ASSERT(target != self, "self-relative pointer cannot target itself");
        delta_ = target - self;
    }

    T* operator->() const { return get(); }
    T& operator*() const { return *get(); }
    explicit operator bool() const { return delta_ != 0; }

  private:
    std::intptr_t delta_;
};

} // namespace cxlcommon
