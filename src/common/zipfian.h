/// @file
/// YCSB-style Zipfian key sampler (paper Table 2: "Skew" distribution with
/// the default Zipfian constant 0.99).

#pragma once

#include <cstdint>

#include "common/random.h"

namespace cxlcommon {

/// Draws integers in [0, n) with a Zipfian distribution, using the Gray et
/// al. rejection-inversion-free algorithm that YCSB's ZipfianGenerator uses.
class Zipfian {
  public:
    /// @param n      population size (number of distinct keys)
    /// @param theta  skew; YCSB default 0.99
    Zipfian(std::uint64_t n, double theta = 0.99);

    /// Next sample in [0, n()).
    std::uint64_t sample(Xoshiro& rng);

    std::uint64_t n() const { return n_; }

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
};

/// Fisher-Yates style scrambling so that adjacent Zipfian ranks do not map
/// to adjacent keys (YCSB's ScrambledZipfian).
class ScrambledZipfian {
  public:
    ScrambledZipfian(std::uint64_t n, double theta = 0.99);

    std::uint64_t sample(Xoshiro& rng);

    std::uint64_t n() const { return zipf_.n(); }

  private:
    Zipfian zipf_;
};

} // namespace cxlcommon
