/// @file
/// Deterministic pseudo-random number generation for workloads and tests.
///
/// xoshiro256** with splitmix64 seeding: fast, high quality, and reproducible
/// across platforms (unlike std::default_random_engine distributions).

#pragma once

#include <cstdint>

namespace cxlcommon {

/// splitmix64 step, used for seeding and cheap hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator.
class Xoshiro {
  public:
    explicit Xoshiro(std::uint64_t seed);

    /// Next 64 uniformly random bits.
    std::uint64_t next();

    /// Uniform integer in [0, bound). @p bound must be nonzero.
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform integer in [lo, hi] inclusive.
    std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

    /// Uniform double in [0, 1).
    double next_double();

  private:
    std::uint64_t s_[4];
};

} // namespace cxlcommon
