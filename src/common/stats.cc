#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.h"

namespace cxlcommon {

std::uint64_t
LatencyRecorder::percentile(double p)
{
    CXL_ASSERT(!samples_.empty(), "percentile of empty recorder");
    CXL_ASSERT(p >= 0.0 && p <= 100.0, "percentile outside [0, 100]");
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    // Linear interpolation between adjacent ranks; flooring the rank biases
    // high percentiles (p99, p99.9) low on small sample counts.
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    std::uint64_t base = samples_[lo];
    if (frac <= 0.0 || lo + 1 >= samples_.size()) {
        return base;
    }
    double interp = static_cast<double>(base) +
                    frac * static_cast<double>(samples_[lo + 1] - base);
    return static_cast<std::uint64_t>(std::llround(interp));
}

void
LatencyRecorder::merge(const LatencyRecorder& other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
}

std::string
LatencyRecorder::summary()
{
    char buf[160];
    if (samples_.empty()) {
        return "(no samples)";
    }
    std::snprintf(buf, sizeof buf,
                  "p50=%lluns p90=%lluns p99=%lluns p99.9=%lluns",
                  static_cast<unsigned long long>(percentile(50)),
                  static_cast<unsigned long long>(percentile(90)),
                  static_cast<unsigned long long>(percentile(99)),
                  static_cast<unsigned long long>(percentile(99.9)));
    return buf;
}

void
RunningStat::add(double x)
{
    n_++;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::stddev() const
{
    if (n_ < 2) {
        return 0;
    }
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

std::string
format_bytes(std::uint64_t bytes)
{
    const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    int unit = 0;
    while (value >= 1024.0 && unit < 4) {
        value /= 1024.0;
        unit++;
    }
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.2f %s", value, units[unit]);
    return buf;
}

std::string
format_rate(double per_sec)
{
    const char* units[] = {"", "K", "M", "G"};
    int unit = 0;
    while (per_sec >= 1000.0 && unit < 3) {
        per_sec /= 1000.0;
        unit++;
    }
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.2f%s ops/s", per_sec, units[unit]);
    return buf;
}

} // namespace cxlcommon
