/// @file
/// Test-only fault switches: deliberately-broken protocol variants.
///
/// Each flag disables exactly one step of a proven-necessary protocol
/// (e.g. the flush that orders a descriptor's payload before its
/// publication). They exist so the schedule explorer's oracles can be
/// shown to have teeth: tests/sched flips a flag, explores, and asserts
/// the oracle catches the violation within the CI budget. All flags
/// default to off and nothing outside tests may set them; they are plain
/// bools (not atomics) because explored schedules are fully serialized
/// and real-thread tests never touch them.

#pragma once

namespace cxlcommon::test_faults {

/// SlabHeap::push_global_one: skip the descriptor flush before the CAS
/// that publishes the slab onto the global free list (paper §3.2 case
/// "free slab publication"). Under a Host-severity crash the consumer can
/// then pop a descriptor whose payload never reached the device.
extern bool skip_swcc_publish_flush;

/// HazardOffsets::try_publish: skip the flush + fence after writing the
/// hazard slot. A reclaimer's scan can then miss the publication and
/// reclaim the block while the reader still dereferences it.
extern bool skip_hazard_publish_flush;

/// Restores every flag to its default (off); tests call this from their
/// fixture teardown so a failing test cannot poison its neighbours.
void reset();

} // namespace cxlcommon::test_faults
