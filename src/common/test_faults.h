/// @file
/// Test-only fault switches: deliberately-broken protocol variants.
///
/// Each flag disables exactly one step of a proven-necessary protocol
/// (e.g. the flush that orders a descriptor's payload before its
/// publication). They exist so the schedule explorer's oracles can be
/// shown to have teeth: tests/sched flips a flag, explores, and asserts
/// the oracle catches the violation within the CI budget. All flags
/// default to off and nothing outside tests may set them; they are plain
/// bools (not atomics) because explored schedules are fully serialized
/// and real-thread tests never touch them.

#pragma once

namespace cxlcommon::test_faults {

/// SlabHeap::push_global_one: skip the descriptor flush before the CAS
/// that publishes the slab onto the global free list (paper §3.2 case
/// "free slab publication"). Under a Host-severity crash the consumer can
/// then pop a descriptor whose payload never reached the device.
extern bool skip_swcc_publish_flush;

/// HazardOffsets::try_publish: skip the flush + fence after writing the
/// hazard slot. A reclaimer's scan can then miss the publication and
/// reclaim the block while the reader still dereferences it.
extern bool skip_hazard_publish_flush;

/// RecoveryLog::log: defer the record's flush + fence as if the op were a
/// local one (the deferred-record discipline applied where it is NOT
/// sound — before a detectable CAS). The RecordFlushOracle must catch the
/// dirty record row at the DcasTry hook.
extern bool skip_record_publish_flush;

/// MemSession::note_dirty: drop dirty-line bookkeeping, modeling an
/// undertracking bug — flush_dirty() then misses genuinely dirty lines
/// and the flush-before-publish oracle / litmus suite must catch the
/// stale publication.
extern bool skip_dirty_line_tracking;

/// Restores every flag to its default (off); tests call this from their
/// fixture teardown so a failing test cannot poison its neighbours.
void reset();

} // namespace cxlcommon::test_faults
