/// @file
/// Invariant-checking macros (paper §5.1 "runtime invariant checks").
///
/// CXL_ASSERT is compiled in when CXLALLOC_INVARIANT_CHECKS is defined (the
/// default build); CXL_FATAL always aborts. Following the gem5 panic()/fatal()
/// distinction: CXL_ASSERT/CXL_PANIC signal library bugs, CXL_FATAL signals
/// unrecoverable user/configuration errors.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace cxlcommon {

[[noreturn]] inline void
fail(const char* kind, const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", kind, file, line, msg);
    std::abort();
}

} // namespace cxlcommon

#define CXL_PANIC(msg) ::cxlcommon::fail("panic", __FILE__, __LINE__, msg)
#define CXL_FATAL(msg) ::cxlcommon::fail("fatal", __FILE__, __LINE__, msg)

/// Aborts with a fatal (user-error) message when @p cond holds.
#define CXL_FATAL_IF(cond, msg)                                                \
    do {                                                                       \
        if (cond) {                                                            \
            CXL_FATAL(msg);                                                    \
        }                                                                      \
    } while (0)

#if defined(CXLALLOC_INVARIANT_CHECKS)
#define CXL_ASSERT(cond, msg)                                                  \
    do {                                                                       \
        if (!(cond)) {                                                         \
            ::cxlcommon::fail("invariant", __FILE__, __LINE__,                 \
                              msg " (" #cond ")");                             \
        }                                                                      \
    } while (0)
#else
#define CXL_ASSERT(cond, msg) do { (void)sizeof(cond); } while (0)
#endif

/// Cross-checks too expensive for the default build (e.g. full bitset
/// scans validating the O(1) free-block counter on every allocation).
/// CXLALLOC_PARANOID_CHECKS promotes them to CXL_ASSERTs; the sanitizer CI
/// job builds with it on. Note the checks themselves issue simulated
/// memory accesses, so paranoid builds distort mem.* event counters.
#if defined(CXLALLOC_PARANOID_CHECKS)
#define CXL_PARANOID_ASSERT(cond, msg) CXL_ASSERT(cond, msg)
#else
#define CXL_PARANOID_ASSERT(cond, msg) do { } while (0)
#endif
