/// @file
/// Measurement helpers: latency percentile summaries (paper Fig. 11 reports
/// p50/p90/p99/p99.9) and mean/stddev summaries (paper §5 "error bars for
/// standard deviation").

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cxlcommon {

/// Collects raw samples and reports percentiles.
class LatencyRecorder {
  public:
    void
    record(std::uint64_t ns)
    {
        samples_.push_back(ns);
        sorted_ = false;
    }

    void reserve(std::size_t n) { samples_.reserve(n); }

    std::size_t count() const { return samples_.size(); }

    /// Percentile in [0, 100]; sorts on demand.
    std::uint64_t percentile(double p);

    /// Merges another recorder's samples into this one.
    void merge(const LatencyRecorder& other);

    /// "p50=… p90=… p99=… p99.9=…" for bench output.
    std::string summary();

  private:
    std::vector<std::uint64_t> samples_;
    bool sorted_ = false;
};

/// Online mean/stddev (Welford).
class RunningStat {
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }
    double stddev() const;

  private:
    std::size_t n_ = 0;
    double mean_ = 0;
    double m2_ = 0;
};

/// Pretty-prints byte counts ("1.5 GiB") for memory columns.
std::string format_bytes(std::uint64_t bytes);

/// Pretty-prints a throughput value ("12.3M ops/s").
std::string format_rate(double per_sec);

} // namespace cxlcommon
