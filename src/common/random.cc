#include "common/random.h"

#include "common/assert.h"

namespace cxlcommon {

std::uint64_t
splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Xoshiro::Xoshiro(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& s : s_) {
        s = splitmix64(sm);
    }
}

std::uint64_t
Xoshiro::next()
{
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Xoshiro::next_below(std::uint64_t bound)
{
    CXL_ASSERT(bound != 0, "next_below(0)");
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // workloads do not need perfectly unbiased sampling.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

std::uint64_t
Xoshiro::next_range(std::uint64_t lo, std::uint64_t hi)
{
    CXL_ASSERT(lo <= hi, "next_range lo > hi");
    return lo + next_below(hi - lo + 1);
}

double
Xoshiro::next_double()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace cxlcommon
