/// @file
/// Cacheline-related constants shared by the SWcc cache model and the
/// allocator's flush/fence accounting.

#pragma once

#include <cstddef>
#include <cstdint>

namespace cxlcommon {

/// Size of one cacheline, the coherence granularity of a CXL pod.
inline constexpr std::size_t kCacheLine = 64;

/// log2(kCacheLine), for shift-based line arithmetic.
inline constexpr unsigned kCacheLineBits = 6;

/// Rounds @p offset down to its containing cacheline boundary.
constexpr std::uint64_t
line_of(std::uint64_t offset)
{
    return offset & ~static_cast<std::uint64_t>(kCacheLine - 1);
}

/// Rounds @p n up to a multiple of @p align (a power of two).
constexpr std::uint64_t
align_up(std::uint64_t n, std::uint64_t align)
{
    return (n + align - 1) & ~(align - 1);
}

/// True if @p n is a power of two (and nonzero).
constexpr bool
is_pow2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

} // namespace cxlcommon
