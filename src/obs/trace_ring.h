/// @file
/// Lightweight per-op trace ring: the last kTraceCapacity operations of one
/// shard (thread), each a fixed 40-byte record. Overwrites the oldest entry
/// when full, so tracing never allocates and never grows.
///
/// Writer: the owning shard's thread. Reader: snapshot code; collection is
/// best-effort (an in-flight push may be missed or duplicated) which is the
/// usual contract for flight-recorder rings.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace obs {

inline constexpr std::uint32_t kTraceCapacity = 256;

struct TraceEvent {
    std::uint32_t op = 0;    ///< interned op label (MetricsRegistry::op)
    std::uint32_t shard = 0; ///< recording shard id
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint64_t arg = 0;   ///< op-specific (size, offset, ...)
};

class TraceRing {
  public:
    void
    push(const TraceEvent& e)
    {
        std::uint64_t h = head_.load(std::memory_order_relaxed);
        ring_[h % kTraceCapacity] = e;
        head_.store(h + 1, std::memory_order_release);
    }

    /// Total events ever pushed (>= capacity means wrapped).
    std::uint64_t pushed() const
    {
        return head_.load(std::memory_order_acquire);
    }

    /// Appends the retained events, oldest first.
    void
    collect(std::vector<TraceEvent>& out) const
    {
        std::uint64_t h = head_.load(std::memory_order_acquire);
        std::uint64_t n = h < kTraceCapacity ? h : kTraceCapacity;
        for (std::uint64_t i = h - n; i < h; i++) {
            out.push_back(ring_[i % kTraceCapacity]);
        }
    }

  private:
    std::array<TraceEvent, kTraceCapacity> ring_{};
    std::atomic<std::uint64_t> head_{0};
};

} // namespace obs
