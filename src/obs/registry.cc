#include "obs/registry.h"

#include <algorithm>

#include "common/assert.h"

namespace obs {

std::uint64_t
MetricsSnapshot::counter(std::string_view name) const
{
    for (const auto& [n, v] : counters) {
        if (n == name) {
            return v;
        }
    }
    return 0;
}

double
MetricsSnapshot::gauge(std::string_view name) const
{
    for (const auto& [n, v] : gauges) {
        if (n == name) {
            return v;
        }
    }
    return 0;
}

const Histogram*
MetricsSnapshot::histogram(std::string_view name) const
{
    for (const auto& [n, h] : histograms) {
        if (n == name) {
            return &h;
        }
    }
    return nullptr;
}

void
MetricsSnapshot::merge(const MetricsSnapshot& other)
{
    for (const auto& [name, v] : other.counters) {
        auto it = std::find_if(counters.begin(), counters.end(),
                               [&](const auto& p) { return p.first == name; });
        if (it == counters.end()) {
            counters.emplace_back(name, v);
        } else {
            it->second += v;
        }
    }
    for (const auto& [name, v] : other.gauges) {
        auto it = std::find_if(gauges.begin(), gauges.end(),
                               [&](const auto& p) { return p.first == name; });
        if (it == gauges.end()) {
            gauges.emplace_back(name, v);
        } else {
            it->second = v; // gauges: latest value wins
        }
    }
    for (const auto& [name, h] : other.histograms) {
        auto it = std::find_if(histograms.begin(), histograms.end(),
                               [&](const auto& p) { return p.first == name; });
        if (it == histograms.end()) {
            histograms.emplace_back(name, h);
        } else {
            it->second.merge(h);
        }
    }
    trace.insert(trace.end(), other.trace.begin(), other.trace.end());
}

MetricsRegistry::~MetricsRegistry()
{
    for (auto& slot : shards_) {
        delete slot.load(std::memory_order_acquire);
    }
}

MetricId
MetricsRegistry::intern(std::vector<std::string>& names, std::size_t cap,
                        std::string_view name, const char* kind)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < names.size(); i++) {
        if (names[i] == name) {
            return static_cast<MetricId>(i);
        }
    }
    if (names.size() >= cap) {
        std::fprintf(stderr, "metrics registry: out of %s slots (%zu) "
                             "registering '%.*s'\n",
                     kind, cap, static_cast<int>(name.size()), name.data());
        std::abort();
    }
    names.emplace_back(name);
    return static_cast<MetricId>(names.size() - 1);
}

MetricId
MetricsRegistry::counter(std::string_view name)
{
    return intern(counter_names_, kMaxCounters, name, "counter");
}

MetricId
MetricsRegistry::gauge(std::string_view name)
{
    return intern(gauge_names_, kMaxGauges, name, "gauge");
}

MetricId
MetricsRegistry::histogram(std::string_view name)
{
    return intern(histogram_names_, kMaxHistograms, name, "histogram");
}

MetricId
MetricsRegistry::op(std::string_view name)
{
    // Op labels have no fixed storage; cap only bounds the name table.
    return intern(op_names_, 4096, name, "trace op");
}

MetricsShard&
MetricsRegistry::shard(std::uint32_t shard_id)
{
    CXL_ASSERT(shard_id < kMaxShards, "metrics shard id out of range");
    MetricsShard* s = shards_[shard_id].load(std::memory_order_acquire);
    if (s != nullptr) {
        return *s;
    }
    std::lock_guard<std::mutex> lock(mu_);
    s = shards_[shard_id].load(std::memory_order_acquire);
    if (s == nullptr) {
        s = new MetricsShard();
        shards_[shard_id].store(s, std::memory_order_release);
    }
    return *s;
}

void
MetricsRegistry::set_gauge(MetricId id, double value)
{
    gauge_values_[id].store(value, std::memory_order_relaxed);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    // Copy the name tables under the lock, then read shard values relaxed.
    std::vector<std::string> counters, gauges, hists, ops;
    {
        std::lock_guard<std::mutex> lock(mu_);
        counters = counter_names_;
        gauges = gauge_names_;
        hists = histogram_names_;
        ops = op_names_;
    }
    MetricsSnapshot snap;
    snap.counters.reserve(counters.size());
    for (std::size_t c = 0; c < counters.size(); c++) {
        std::uint64_t total = 0;
        for (const auto& slot : shards_) {
            const MetricsShard* s = slot.load(std::memory_order_acquire);
            if (s != nullptr) {
                total += s->counters_[c].load(std::memory_order_relaxed);
            }
        }
        snap.counters.emplace_back(counters[c], total);
    }
    for (std::size_t g = 0; g < gauges.size(); g++) {
        snap.gauges.emplace_back(
            gauges[g], gauge_values_[g].load(std::memory_order_relaxed));
    }
    for (std::size_t h = 0; h < hists.size(); h++) {
        Histogram merged;
        for (const auto& slot : shards_) {
            const MetricsShard* s = slot.load(std::memory_order_acquire);
            if (s != nullptr) {
                merged.merge(s->histograms_[h].snapshot());
            }
        }
        snap.histograms.emplace_back(hists[h], merged);
    }
    std::vector<TraceEvent> events;
    for (const auto& slot : shards_) {
        const MetricsShard* s = slot.load(std::memory_order_acquire);
        if (s != nullptr) {
            s->trace_.collect(events);
        }
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  return a.start_ns < b.start_ns;
              });
    snap.trace.reserve(events.size());
    for (const TraceEvent& e : events) {
        NamedTraceEvent ne;
        ne.op = e.op < ops.size() ? ops[e.op] : "?";
        ne.shard = e.shard;
        ne.start_ns = e.start_ns;
        ne.dur_ns = e.dur_ns;
        ne.arg = e.arg;
        snap.trace.push_back(std::move(ne));
    }
    return snap;
}

void
MetricsRegistry::absorb(const MetricsSnapshot& snap, std::string_view prefix)
{
    std::string name;
    MetricsShard& sh = shard(0);
    for (const auto& [n, v] : snap.counters) {
        if (v == 0) {
            continue;
        }
        name.assign(prefix);
        name += n;
        sh.add(counter(name), v);
    }
    for (const auto& [n, v] : snap.gauges) {
        name.assign(prefix);
        name += n;
        set_gauge(gauge(name), v);
    }
    for (const auto& [n, h] : snap.histograms) {
        if (h.count() == 0) {
            continue;
        }
        name.assign(prefix);
        name += n;
        sh.histograms_[histogram(name)].merge(h);
    }
}

void
MetricsRegistry::reset()
{
    for (auto& slot : shards_) {
        MetricsShard* s = slot.load(std::memory_order_acquire);
        if (s == nullptr) {
            continue;
        }
        for (auto& c : s->counters_) {
            c.store(0, std::memory_order_relaxed);
        }
        for (auto& h : s->histograms_) {
            h.reset();
        }
    }
    for (auto& g : gauge_values_) {
        g.store(0, std::memory_order_relaxed);
    }
}

MetricsRegistry&
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace obs
