/// @file
/// Minimal JSON reader for verifying exported metrics snapshots.
///
/// Supports the full JSON grammar the exporter emits (objects, arrays,
/// strings with escapes, numbers, booleans, null). Numbers are held as
/// doubles: exact for the integer counters this repo emits up to 2^53,
/// which is far beyond any test's magnitude. Not a general-purpose
/// parser — no streaming, no UTF-16 surrogate handling.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

enum class Kind { Null, Bool, Number, String, Array, Object };

class Value {
  public:
    Value() = default;
    explicit Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    explicit Value(double d) : kind_(Kind::Number), num_(d) {}
    explicit Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    explicit Value(Array a);
    explicit Value(Object o);

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::Null; }

    bool as_bool() const { return bool_; }
    double as_number() const { return num_; }
    std::uint64_t as_uint() const { return static_cast<std::uint64_t>(num_); }
    const std::string& as_string() const { return str_; }
    const Array& as_array() const;
    const Object& as_object() const;

    /// Object member lookup; nullptr when absent or not an object.
    const Value* find(std::string_view key) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::shared_ptr<Array> arr_;   // shared_ptr keeps Value copyable
    std::shared_ptr<Object> obj_;
};

/// Parses @p text; on failure returns a null Value and sets @p error.
Value parse(std::string_view text, std::string* error);

} // namespace obs::json
