/// @file
/// Per-thread-sharded metrics registry: the repo's observability substrate.
///
/// Names (counters, gauges, histograms, trace op labels) are interned once
/// under a mutex; the returned MetricId then indexes plain arrays inside a
/// per-thread MetricsShard, so the hot path is an unsynchronized relaxed
/// add/record with no cache-line sharing between threads. Shards are keyed
/// by the pod-global ThreadId (1..160, shard 0 serves process-level code),
/// matching cxl::kMaxThreads without depending on the cxl layer.
///
/// snapshot() merges every live shard into a plain MetricsSnapshot that
/// can itself be merged, absorbed into another registry under a name
/// prefix, or exported as JSON/CSV (obs/export.h).

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace_ring.h"

namespace obs {

using MetricId = std::uint32_t;
inline constexpr MetricId kInvalidMetric = ~MetricId{0};

/// Shard 0 is process-level; 1..kMaxShards-1 mirror pod thread ids.
/// Capacities cover the pod-topology metrics: per-edge counters (ops + ns
/// per (host, device) pair, up to 16x16 edges in principle, 16x4 in the
/// shipped presets) and per-edge latency histograms. Shards are allocated
/// lazily, so unused capacity costs nothing until a thread id publishes.
inline constexpr std::uint32_t kMaxShards = 161;
inline constexpr std::uint32_t kMaxCounters = 320;
inline constexpr std::uint32_t kMaxGauges = 128;
inline constexpr std::uint32_t kMaxHistograms = 96;

/// One thread's unsynchronized metric storage. Writers: the owning thread.
/// Readers: any thread, via the registry snapshot (relaxed atomics).
class MetricsShard {
  public:
    void
    add(MetricId counter, std::uint64_t delta = 1)
    {
        counters_[counter].fetch_add(delta, std::memory_order_relaxed);
    }

    void
    record(MetricId histogram, std::uint64_t value)
    {
        histograms_[histogram].record(value);
    }

    TraceRing& trace() { return trace_; }

  private:
    friend class MetricsRegistry;

    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters_{};
    std::array<Histogram, kMaxHistograms> histograms_{};
    TraceRing trace_;
};

/// A trace event with its op label resolved.
struct NamedTraceEvent {
    std::string op;
    std::uint32_t shard = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint64_t arg = 0;
};

/// Plain, mergeable view of a registry at one instant.
struct MetricsSnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram>> histograms;
    std::vector<NamedTraceEvent> trace;

    /// Counter value by name; 0 if never registered.
    std::uint64_t counter(std::string_view name) const;

    /// Gauge value by name; 0 if never registered.
    double gauge(std::string_view name) const;

    /// Histogram by name; nullptr if never registered.
    const Histogram* histogram(std::string_view name) const;

    /// Adds @p other into this snapshot, matching metrics by name.
    void merge(const MetricsSnapshot& other);
};

class MetricsRegistry {
  public:
    MetricsRegistry() = default;
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Interns @p name (idempotent) and returns its id. Aborts if the
    /// fixed-capacity table for that metric kind is full.
    MetricId counter(std::string_view name);
    MetricId gauge(std::string_view name);
    MetricId histogram(std::string_view name);
    /// Trace op labels share the interning machinery but have no storage.
    MetricId op(std::string_view name);

    /// The shard for @p shard_id (created on first use, then lock-free).
    MetricsShard& shard(std::uint32_t shard_id);

    /// Gauges are registry-level (a "current value" has no meaningful
    /// per-shard merge); set is a relaxed store.
    void set_gauge(MetricId id, double value);

    /// Convenience: counter add on the process-level shard 0.
    void add(MetricId counter, std::uint64_t delta = 1) { shard(0).add(counter, delta); }

    /// Merges all shards into a plain snapshot. Safe concurrently with
    /// writers (counter/histogram reads are relaxed-atomic; the trace ring
    /// is best-effort).
    MetricsSnapshot snapshot() const;

    /// Adds @p snap's metrics into shard 0, interning each name with
    /// @p prefix prepended. Lets a scoped registry (one bench series) be
    /// folded into a process-wide one.
    void absorb(const MetricsSnapshot& snap, std::string_view prefix = {});

    /// Zeroes all shards' values; keeps interned names and ids valid.
    void reset();

    /// Process-wide registry used by the bench harness.
    static MetricsRegistry& global();

  private:
    MetricId intern(std::vector<std::string>& names, std::size_t cap,
                    std::string_view name, const char* kind);

    mutable std::mutex mu_;
    std::vector<std::string> counter_names_;
    std::vector<std::string> gauge_names_;
    std::vector<std::string> histogram_names_;
    std::vector<std::string> op_names_;
    std::array<std::atomic<double>, kMaxGauges> gauge_values_{};
    std::array<std::atomic<MetricsShard*>, kMaxShards> shards_{};
};

} // namespace obs
