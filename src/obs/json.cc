#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace obs::json {

Value::Value(Array a)
    : kind_(Kind::Array), arr_(std::make_shared<Array>(std::move(a)))
{
}

Value::Value(Object o)
    : kind_(Kind::Object), obj_(std::make_shared<Object>(std::move(o)))
{
}

const Array&
Value::as_array() const
{
    static const Array kEmpty;
    return arr_ != nullptr ? *arr_ : kEmpty;
}

const Object&
Value::as_object() const
{
    static const Object kEmpty;
    return obj_ != nullptr ? *obj_ : kEmpty;
}

const Value*
Value::find(std::string_view key) const
{
    if (kind_ != Kind::Object) {
        return nullptr;
    }
    for (const auto& [k, v] : *obj_) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

namespace {

class Parser {
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value
    run(std::string* error)
    {
        Value v = value();
        skip_ws();
        if (ok_ && pos_ != text_.size()) {
            fail("trailing characters after document");
        }
        if (!ok_) {
            if (error != nullptr) {
                *error = error_;
            }
            return Value();
        }
        return v;
    }

  private:
    void
    fail(const std::string& why)
    {
        if (ok_) {
            ok_ = false;
            error_ = why + " at byte " + std::to_string(pos_);
        }
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            pos_++;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            pos_++;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) == word) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    Value
    value()
    {
        skip_ws();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return Value();
        }
        char c = text_[pos_];
        switch (c) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return Value(string());
          case 't':
            if (literal("true")) {
                return Value(true);
            }
            fail("bad literal");
            return Value();
          case 'f':
            if (literal("false")) {
                return Value(false);
            }
            fail("bad literal");
            return Value();
          case 'n':
            if (literal("null")) {
                return Value();
            }
            fail("bad literal");
            return Value();
          default:
            return number();
        }
    }

    Value
    object()
    {
        pos_++; // '{'
        Object out;
        skip_ws();
        if (consume('}')) {
            return Value(std::move(out));
        }
        while (ok_) {
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                break;
            }
            std::string key = string();
            skip_ws();
            if (!consume(':')) {
                fail("expected ':'");
                break;
            }
            out.emplace_back(std::move(key), value());
            skip_ws();
            if (consume(',')) {
                continue;
            }
            if (consume('}')) {
                break;
            }
            fail("expected ',' or '}'");
        }
        return Value(std::move(out));
    }

    Value
    array()
    {
        pos_++; // '['
        Array out;
        skip_ws();
        if (consume(']')) {
            return Value(std::move(out));
        }
        while (ok_) {
            out.push_back(value());
            skip_ws();
            if (consume(',')) {
                continue;
            }
            if (consume(']')) {
                break;
            }
            fail("expected ',' or ']'");
        }
        return Value(std::move(out));
    }

    std::string
    string()
    {
        pos_++; // '"'
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) {
                break;
            }
            char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                // ASCII \uXXXX only (all the exporter ever emits).
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; i++) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        fail("bad \\u escape");
                        return out;
                    }
                }
                out.push_back(static_cast<char>(code & 0x7F));
                break;
              }
              default:
                fail("bad escape");
                return out;
            }
        }
        fail("unterminated string");
        return out;
    }

    Value
    number()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            pos_++;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            pos_++;
        }
        if (pos_ == start) {
            fail("expected value");
            return Value();
        }
        std::string num(text_.substr(start, pos_ - start));
        char* end = nullptr;
        double d = std::strtod(num.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            fail("bad number");
            return Value();
        }
        return Value(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

} // namespace

Value
parse(std::string_view text, std::string* error)
{
    return Parser(text).run(error);
}

} // namespace obs::json
