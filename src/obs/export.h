/// @file
/// Machine-readable snapshot export: JSON (schema "cxlalloc-metrics-v1")
/// and CSV, plus the one-line percentile summary benches print per row.
///
/// JSON shape:
///   {
///     "schema": "cxlalloc-metrics-v1",
///     "counters":   {"mem.loads": 123, ...},
///     "gauges":     {"run.sim_ns_max": 4.5e6, ...},
///     "histograms": {"alloc.ns": {"count":N,"min":..,"max":..,"mean":..,
///                    "p50":..,"p90":..,"p99":..,"p999":..,
///                    "buckets":[[lower,count],...nonzero only]}},
///     "trace":      [{"op":"alloc","shard":3,"start_ns":..,"dur_ns":..,
///                     "arg":64}, ...]
///   }

#pragma once

#include <string>

#include "obs/registry.h"

namespace obs {

/// Serializes @p snap as pretty-stable JSON (sorted by insertion order).
std::string to_json(const MetricsSnapshot& snap);

/// Serializes @p snap as "kind,name,..." CSV rows.
std::string to_csv(const MetricsSnapshot& snap);

/// "p50=… p90=… p99=… p99.9=…" (values in ns) for bench rows.
std::string summary(const Histogram& h);

/// Writes @p contents to @p path; returns false (with a stderr note) on
/// any I/O failure.
bool write_file(const std::string& path, const std::string& contents);

} // namespace obs
