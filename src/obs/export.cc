#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace obs {

namespace {

void
append_escaped(std::string& out, std::string_view s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
append_u64(std::string& out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
}

void
append_double(std::string& out, double v)
{
    char buf[40];
    // %.17g round-trips doubles; integral values print without exponent.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof buf, "%.0f", v);
    } else {
        std::snprintf(buf, sizeof buf, "%.17g", v);
    }
    out += buf;
}

void
append_histogram_json(std::string& out, const Histogram& h)
{
    out += "{\"count\":";
    append_u64(out, h.count());
    out += ",\"min\":";
    append_u64(out, h.min());
    out += ",\"max\":";
    append_u64(out, h.max());
    out += ",\"mean\":";
    append_double(out, h.mean());
    out += ",\"p50\":";
    append_double(out, h.percentile(50));
    out += ",\"p90\":";
    append_double(out, h.percentile(90));
    out += ",\"p99\":";
    append_double(out, h.percentile(99));
    out += ",\"p999\":";
    append_double(out, h.percentile(99.9));
    out += ",\"buckets\":[";
    bool first = true;
    for (std::uint32_t i = 0; i < Histogram::kBucketCount; i++) {
        std::uint64_t c = h.bucket_count(i);
        if (c == 0) {
            continue;
        }
        if (!first) {
            out.push_back(',');
        }
        first = false;
        out += "[";
        append_u64(out, Histogram::bucket_lower(i));
        out.push_back(',');
        append_u64(out, c);
        out += "]";
    }
    out += "]}";
}

} // namespace

std::string
to_json(const MetricsSnapshot& snap)
{
    std::string out;
    out += "{\n  \"schema\": \"cxlalloc-metrics-v1\",\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, v] : snap.counters) {
        if (!first) {
            out.push_back(',');
        }
        first = false;
        out += "\n    ";
        append_escaped(out, name);
        out += ": ";
        append_u64(out, v);
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, v] : snap.gauges) {
        if (!first) {
            out.push_back(',');
        }
        first = false;
        out += "\n    ";
        append_escaped(out, name);
        out += ": ";
        append_double(out, v);
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : snap.histograms) {
        if (!first) {
            out.push_back(',');
        }
        first = false;
        out += "\n    ";
        append_escaped(out, name);
        out += ": ";
        append_histogram_json(out, h);
    }
    out += "\n  },\n  \"trace\": [";
    first = true;
    for (const auto& e : snap.trace) {
        if (!first) {
            out.push_back(',');
        }
        first = false;
        out += "\n    {\"op\":";
        append_escaped(out, e.op);
        out += ",\"shard\":";
        append_u64(out, e.shard);
        out += ",\"start_ns\":";
        append_u64(out, e.start_ns);
        out += ",\"dur_ns\":";
        append_u64(out, e.dur_ns);
        out += ",\"arg\":";
        append_u64(out, e.arg);
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string
to_csv(const MetricsSnapshot& snap)
{
    std::string out = "kind,name,count,min,max,mean,p50,p90,p99,p999\n";
    char buf[256];
    for (const auto& [name, v] : snap.counters) {
        std::snprintf(buf, sizeof buf, "counter,%s,%" PRIu64 ",,,,,,,\n",
                      name.c_str(), v);
        out += buf;
    }
    for (const auto& [name, v] : snap.gauges) {
        std::snprintf(buf, sizeof buf, "gauge,%s,%.17g,,,,,,,\n",
                      name.c_str(), v);
        out += buf;
    }
    for (const auto& [name, h] : snap.histograms) {
        std::snprintf(buf, sizeof buf,
                      "histogram,%s,%" PRIu64 ",%" PRIu64 ",%" PRIu64
                      ",%.1f,%.1f,%.1f,%.1f,%.1f\n",
                      name.c_str(), h.count(), h.min(), h.max(), h.mean(),
                      h.percentile(50), h.percentile(90), h.percentile(99),
                      h.percentile(99.9));
        out += buf;
    }
    return out;
}

std::string
summary(const Histogram& h)
{
    if (h.count() == 0) {
        return "(no samples)";
    }
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "p50=%.0fns p90=%.0fns p99=%.0fns p99.9=%.0fns",
                  h.percentile(50), h.percentile(90), h.percentile(99),
                  h.percentile(99.9));
    return buf;
}

bool
write_file(const std::string& path, const std::string& contents)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "metrics: cannot open '%s' for writing\n",
                     path.c_str());
        return false;
    }
    std::size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
    bool ok = std::fclose(f) == 0 && n == contents.size();
    if (!ok) {
        std::fprintf(stderr, "metrics: short write to '%s'\n", path.c_str());
    }
    return ok;
}

} // namespace obs
