/// @file
/// Monotonic nanosecond clock for op timing and trace timestamps.

#pragma once

#include <chrono>
#include <cstdint>

namespace obs {

/// Nanoseconds on the steady clock (monotonic, arbitrary epoch).
inline std::uint64_t
now_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace obs
