#include "obs/histogram.h"

#include <atomic>
#include <bit>

#include "common/assert.h"

namespace obs {

namespace {

inline std::uint64_t
relaxed_load(const std::uint64_t& cell)
{
    // atomic_ref<const T> arrives only in C++26; the cast is safe because
    // the referenced cell is always a mutable member.
    return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(cell))
        .load(std::memory_order_relaxed);
}

inline void
relaxed_store(std::uint64_t& cell, std::uint64_t value)
{
    std::atomic_ref<std::uint64_t>(cell).store(value,
                                               std::memory_order_relaxed);
}

} // namespace

std::uint32_t
Histogram::bucket_of(std::uint64_t value)
{
    if (value < kSubBuckets) {
        return static_cast<std::uint32_t>(value);
    }
    // value in [2^e, 2^(e+1)); the kSubBits bits below the leading one
    // select the linear sub-bucket within the octave.
    auto e = static_cast<std::uint32_t>(63 - std::countl_zero(value));
    auto sub = static_cast<std::uint32_t>((value >> (e - kSubBits)) &
                                          (kSubBuckets - 1));
    std::uint32_t idx = kSubBuckets + (e - kSubBits) * kSubBuckets + sub;
    return idx < kBucketCount ? idx : kBucketCount - 1;
}

std::uint64_t
Histogram::bucket_lower(std::uint32_t idx)
{
    CXL_ASSERT(idx < kBucketCount, "histogram bucket out of range");
    if (idx < kSubBuckets) {
        return idx;
    }
    std::uint32_t b = idx - kSubBuckets;
    std::uint32_t e = kSubBits + b / kSubBuckets;
    std::uint64_t sub = b % kSubBuckets;
    return (kSubBuckets + sub) << (e - kSubBits);
}

std::uint64_t
Histogram::bucket_upper(std::uint32_t idx)
{
    CXL_ASSERT(idx < kBucketCount, "histogram bucket out of range");
    if (idx < kSubBuckets) {
        return idx + 1;
    }
    std::uint32_t b = idx - kSubBuckets;
    std::uint32_t e = kSubBits + b / kSubBuckets;
    std::uint64_t lo = bucket_lower(idx);
    std::uint64_t hi = lo + (std::uint64_t{1} << (e - kSubBits));
    // The top bucket's bound is 2^64; saturate instead of wrapping to 0.
    return hi > lo ? hi : ~std::uint64_t{0};
}

void
Histogram::record(std::uint64_t value)
{
    std::uint64_t& cell = buckets_[bucket_of(value)];
    relaxed_store(cell, relaxed_load(cell) + 1);
    relaxed_store(count_, relaxed_load(count_) + 1);
    relaxed_store(sum_, relaxed_load(sum_) + value);
    if (value < relaxed_load(min_)) {
        relaxed_store(min_, value);
    }
    if (value > relaxed_load(max_)) {
        relaxed_store(max_, value);
    }
}

Histogram
Histogram::snapshot() const
{
    Histogram out;
    out.count_ = relaxed_load(count_);
    out.sum_ = relaxed_load(sum_);
    out.min_ = relaxed_load(min_);
    out.max_ = relaxed_load(max_);
    for (std::uint32_t i = 0; i < kBucketCount; i++) {
        out.buckets_[i] = relaxed_load(buckets_[i]);
    }
    return out;
}

void
Histogram::merge(const Histogram& other)
{
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) {
        min_ = other.min_;
    }
    if (other.max_ > max_) {
        max_ = other.max_;
    }
    for (std::uint32_t i = 0; i < kBucketCount; i++) {
        buckets_[i] += other.buckets_[i];
    }
}

void
Histogram::reset()
{
    *this = Histogram{};
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
}

double
Histogram::percentile(double p) const
{
    CXL_ASSERT(p >= 0.0 && p <= 100.0, "percentile outside [0, 100]");
    if (count_ == 0) {
        return 0.0;
    }
    double rank = p / 100.0 * static_cast<double>(count_ - 1);
    std::uint64_t cum = 0;
    for (std::uint32_t i = 0; i < kBucketCount; i++) {
        std::uint64_t c = buckets_[i];
        if (c == 0) {
            continue;
        }
        if (rank < static_cast<double>(cum + c)) {
            // Linear interpolation by rank position within the bucket span.
            double pos = (rank - static_cast<double>(cum)) /
                         static_cast<double>(c);
            auto lo = static_cast<double>(bucket_lower(i));
            auto hi = static_cast<double>(bucket_upper(i));
            double v = lo + pos * (hi - lo);
            // Bucket bounds are coarser than the exact extrema.
            if (v < static_cast<double>(min())) {
                v = static_cast<double>(min());
            }
            if (v > static_cast<double>(max_)) {
                v = static_cast<double>(max_);
            }
            return v;
        }
        cum += c;
    }
    return static_cast<double>(max_);
}

} // namespace obs
