/// @file
/// Fixed-footprint log-linear latency histogram (HDR-histogram style).
///
/// Values are bucketed into 16 linear sub-buckets per power-of-two octave,
/// bounding relative error at 1/16 (~6.25%) while covering the full uint64
/// range in a constant ~7.8 KiB of counters. Unlike LatencyRecorder, which
/// keeps every raw sample in an unbounded vector, a histogram's memory
/// cost is independent of the number of recorded operations — so it is
/// safe to leave enabled in hot allocation loops.
///
/// Concurrency contract: record() may be called by exactly one writer
/// thread at a time (the owning shard's thread); snapshot() may run
/// concurrently with record() from any thread. Both sides go through
/// relaxed std::atomic_ref so concurrent snapshots are tear-free.
/// merge() and percentile() are meant for quiesced/snapshot copies.

#pragma once

#include <array>
#include <cstdint>

namespace obs {

class Histogram {
  public:
    /// Linear sub-buckets per octave (power of two).
    static constexpr std::uint32_t kSubBuckets = 16;
    static constexpr std::uint32_t kSubBits = 4; // log2(kSubBuckets)
    /// Octaves above the exact [0, 16) range; covers all of uint64.
    static constexpr std::uint32_t kOctaves = 60;
    static constexpr std::uint32_t kBucketCount =
        kSubBuckets + kOctaves * kSubBuckets;

    /// Bucket index for @p value (exact for values < 16).
    static std::uint32_t bucket_of(std::uint64_t value);

    /// Inclusive lower bound of bucket @p idx.
    static std::uint64_t bucket_lower(std::uint32_t idx);

    /// Exclusive upper bound of bucket @p idx (saturated to uint64 max for
    /// the topmost bucket, whose true bound 2^64 is unrepresentable).
    static std::uint64_t bucket_upper(std::uint32_t idx);

    /// Records one sample (writer thread only).
    void record(std::uint64_t value);

    /// Tear-free copy, safe while a writer is concurrently recording.
    Histogram snapshot() const;

    /// Adds @p other's samples into this histogram (quiesced data only).
    void merge(const Histogram& other);

    /// Discards all samples.
    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    /// Exact observed extrema (not bucket bounds). 0 when empty.
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /// Percentile in [0, 100], linearly interpolated inside the covering
    /// bucket and clamped to the exact [min, max] extrema. 0 when empty.
    double percentile(double p) const;

    std::uint64_t bucket_count(std::uint32_t idx) const
    {
        return buckets_[idx];
    }

  private:
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
    std::array<std::uint64_t, kBucketCount> buckets_{};
};

/// "p50=… p90=… p99=… p99.9=…" one-liner for bench output.
// (defined in export.cc)

} // namespace obs
