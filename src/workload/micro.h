/// @file
/// Allocator micro-benchmark drivers (paper §5.2.2, §5.3):
///  - threadtest: the highest-possible-throughput probe — each thread
///    repeatedly allocates a batch of fixed-size objects and frees them,
///    entirely thread-locally;
///  - xmalloc: a producer-consumer workload where every object allocated
///    by one thread is freed by its ring neighbour, stressing the
///    remote-free path (CAS/mCAS).
/// Both are reused at object size 1 GiB-scale for the huge-allocation
/// study (threadtest-huge / xmalloc-huge, Fig. 10).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/pod_allocator.h"
#include "pod/thread_context.h"

namespace workload {

/// threadtest inner loop for one thread: @p rounds rounds of allocating
/// @p batch objects of @p size bytes and freeing them all.
/// Returns the number of alloc+free pairs executed.
std::uint64_t run_threadtest(baselines::PodAllocator& alloc,
                             pod::ThreadContext& ctx, std::uint64_t rounds,
                             std::uint64_t batch, std::uint64_t size);

/// Single-producer single-consumer ring used to hand allocations between
/// xmalloc neighbours.
class SpscRing {
  public:
    explicit SpscRing(std::size_t capacity)
        : capacity_(capacity), slots_(std::make_unique<Slot[]>(capacity))
    {
    }

    bool
    push(std::uint64_t value)
    {
        std::size_t t = tail_.load(std::memory_order_relaxed);
        Slot& slot = slots_[t % capacity_];
        if (slot.full.load(std::memory_order_acquire)) {
            return false;
        }
        slot.value = value;
        slot.full.store(true, std::memory_order_release);
        tail_.store(t + 1, std::memory_order_relaxed);
        return true;
    }

    bool
    pop(std::uint64_t* value)
    {
        std::size_t h = head_.load(std::memory_order_relaxed);
        Slot& slot = slots_[h % capacity_];
        if (!slot.full.load(std::memory_order_acquire)) {
            return false;
        }
        *value = slot.value;
        slot.full.store(false, std::memory_order_release);
        head_.store(h + 1, std::memory_order_relaxed);
        return true;
    }

  private:
    struct Slot {
        std::uint64_t value = 0;
        std::atomic<bool> full{false};
    };

    std::size_t capacity_;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<std::size_t> head_{0};
    std::atomic<std::size_t> tail_{0};
};

/// Shared state for one xmalloc run with N participants in a ring.
struct XmallocRing {
    explicit XmallocRing(std::uint32_t participants,
                         std::size_t ring_capacity = 256);

    std::uint32_t participants;
    std::vector<std::unique_ptr<SpscRing>> rings; ///< rings[i]: i -> i+1
};

/// xmalloc inner loop for participant @p index: allocates @p count objects
/// of @p size, pushing each to the right neighbour and freeing everything
/// arriving from the left. Returns alloc+free pairs completed by this
/// thread. All participants must run concurrently.
/// When @p touch is true, the consumer reads one byte of each incoming
/// object before freeing it — in a cross-process setting this drives the
/// PC-T fault handler (Fig. 10's xmalloc-huge).
std::uint64_t run_xmalloc(baselines::PodAllocator& alloc,
                          pod::ThreadContext& ctx, XmallocRing& ring,
                          std::uint32_t index, std::uint64_t count,
                          std::uint64_t size, bool touch = false);

} // namespace workload
