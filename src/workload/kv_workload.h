/// @file
/// Key-value workload specifications and operation streams (paper Table 2):
/// YCSB Load/A/D and synthesized equivalents of the Twitter memcached
/// traces MC-12/15/31/37.
///
/// Substitution note (DESIGN.md §2): the real MC traces are SNIA downloads
/// (6.7 GiB of production data). McSynth draws operations matching the
/// published summary statistics — insert fraction, key distribution, key
/// size range, value size range — which is what exercises the allocator.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>
#include <string>

#include "common/random.h"
#include "common/zipfian.h"

namespace workload {

enum class OpType : std::uint8_t { Insert, Read, Remove, Update };

/// One key-value operation. Key length is a deterministic function of the
/// key id so lookups and inserts agree.
struct KvOp {
    OpType type;
    std::uint64_t key;
    std::uint32_t klen;
    std::uint32_t vlen; ///< meaningful for Insert/Update
};

/// A Table 2 row.
struct KvWorkloadSpec {
    std::string name;
    double insert_pct;         ///< fraction of ops that insert
    double remove_pct = 0;     ///< fraction that delete
    double update_pct = 0;     ///< fraction that update in place
    bool zipfian = false;      ///< "Skew" vs "Uniform" key distribution
    std::uint32_t key_min;     ///< key size range (bytes)
    std::uint32_t key_max;
    std::uint32_t val_min;     ///< value size range (bytes)
    std::uint32_t val_max;
    bool heavy_tail = false;   ///< bias value sizes small with a long tail
    std::uint64_t keyspace = 100'000; ///< distinct key ids
};

/// The paper's seven workloads (Table 2). YCSB-A is the modified variant:
/// 25 % insert + 25 % delete (instead of 50 % update) to stress the
/// allocator.
KvWorkloadSpec ycsb_load();
KvWorkloadSpec ycsb_a();
KvWorkloadSpec ycsb_d();
KvWorkloadSpec mc12();
KvWorkloadSpec mc15();
KvWorkloadSpec mc31();
KvWorkloadSpec mc37();

/// All seven, in paper order.
std::vector<KvWorkloadSpec> all_kv_workloads();

/// Deterministic per-thread stream of operations for a spec.
class KvOpStream {
  public:
    KvOpStream(const KvWorkloadSpec& spec, std::uint64_t seed);

    KvOp next();

    /// Key length for @p key under @p spec (deterministic).
    static std::uint32_t key_len(const KvWorkloadSpec& spec,
                                 std::uint64_t key);

    const KvWorkloadSpec& spec() const { return spec_; }

  private:
    std::uint64_t sample_key();
    std::uint32_t value_size();

    KvWorkloadSpec spec_;
    cxlcommon::Xoshiro rng_;
    std::optional<cxlcommon::ScrambledZipfian> zipf_;
    std::uint64_t insert_cursor_;
};

} // namespace workload
