#include "workload/micro.h"

#include <thread>

#include "common/assert.h"

namespace workload {

std::uint64_t
run_threadtest(baselines::PodAllocator& alloc, pod::ThreadContext& ctx,
               std::uint64_t rounds, std::uint64_t batch, std::uint64_t size)
{
    std::vector<cxl::HeapOffset> held(batch, 0);
    std::uint64_t pairs = 0;
    for (std::uint64_t r = 0; r < rounds; r++) {
        for (std::uint64_t i = 0; i < batch; i++) {
            held[i] = alloc.allocate(ctx, size);
            CXL_ASSERT(held[i] != 0, "threadtest: allocator exhausted");
        }
        for (std::uint64_t i = 0; i < batch; i++) {
            alloc.deallocate(ctx, held[i]);
        }
        pairs += batch;
    }
    return pairs;
}

XmallocRing::XmallocRing(std::uint32_t n, std::size_t ring_capacity)
    : participants(n)
{
    for (std::uint32_t i = 0; i < n; i++) {
        rings.push_back(std::make_unique<SpscRing>(ring_capacity));
    }
}

std::uint64_t
run_xmalloc(baselines::PodAllocator& alloc, pod::ThreadContext& ctx,
            XmallocRing& ring, std::uint32_t index, std::uint64_t count,
            std::uint64_t size, bool touch)
{
    SpscRing& outbox = *ring.rings[index];
    SpscRing& inbox = *ring.rings[(index + ring.participants - 1) %
                                  ring.participants];
    std::uint64_t sent = 0;
    std::uint64_t freed = 0;
    std::uint64_t pending = 0; // allocated, waiting for outbox space
    while (sent < count || freed < count) {
        // Drain the inbox: every pop is a REMOTE free (the object was
        // allocated by our left neighbour).
        std::uint64_t incoming;
        bool progressed = false;
        while (freed < count && inbox.pop(&incoming)) {
            if (touch) {
                // Dereference before freeing: faults the mapping into this
                // process if the producer lives elsewhere (PC-T).
                volatile std::byte sink = *alloc.pointer(ctx, incoming, 1);
                (void)sink;
            }
            alloc.deallocate(ctx, incoming);
            freed++;
            progressed = true;
        }
        if (sent < count) {
            if (pending == 0) {
                pending = alloc.allocate(ctx, size);
                CXL_ASSERT(pending != 0, "xmalloc: allocator exhausted");
            }
            if (outbox.push(pending)) {
                pending = 0;
                sent++;
                progressed = true;
            }
        }
        if (!progressed) {
            // Blocked on a neighbour (full outbox / empty inbox): let it
            // run — essential on machines with fewer cores than threads.
            std::this_thread::yield();
        }
    }
    return sent + freed;
}

} // namespace workload
