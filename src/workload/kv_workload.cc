#include "workload/kv_workload.h"

#include <cmath>
#include <vector>

namespace workload {

KvWorkloadSpec
ycsb_load()
{
    KvWorkloadSpec s;
    s.name = "YCSB-Load";
    s.insert_pct = 1.0;
    s.zipfian = false;
    s.key_min = s.key_max = 8;
    s.val_min = s.val_max = 960;
    return s;
}

KvWorkloadSpec
ycsb_a()
{
    // Modified per the paper: 25% insert + 25% delete + 50% read.
    KvWorkloadSpec s;
    s.name = "YCSB-A";
    s.insert_pct = 0.25;
    s.remove_pct = 0.25;
    s.zipfian = true;
    s.key_min = s.key_max = 8;
    s.val_min = s.val_max = 960;
    return s;
}

KvWorkloadSpec
ycsb_d()
{
    KvWorkloadSpec s;
    s.name = "YCSB-D";
    s.insert_pct = 0.05;
    s.zipfian = true;
    s.key_min = s.key_max = 8;
    s.val_min = s.val_max = 960;
    return s;
}

KvWorkloadSpec
mc12()
{
    KvWorkloadSpec s;
    s.name = "MC-12";
    s.insert_pct = 0.797;
    s.zipfian = false;
    s.key_min = s.key_max = 44;
    s.val_min = 0;
    s.val_max = 307 << 10;
    s.heavy_tail = true;
    return s;
}

KvWorkloadSpec
mc15()
{
    KvWorkloadSpec s;
    s.name = "MC-15";
    s.insert_pct = 0.999;
    s.zipfian = false;
    s.key_min = 14;
    s.key_max = 19;
    s.val_min = 0;
    s.val_max = 144;
    s.heavy_tail = true;
    return s;
}

KvWorkloadSpec
mc31()
{
    KvWorkloadSpec s;
    s.name = "MC-31";
    s.insert_pct = 0.93;
    s.zipfian = false;
    s.key_min = 40;
    s.key_max = 46;
    s.val_min = 0;
    s.val_max = 15;
    s.heavy_tail = true;
    return s;
}

KvWorkloadSpec
mc37()
{
    KvWorkloadSpec s;
    s.name = "MC-37";
    s.insert_pct = 0.388;
    s.zipfian = true;
    s.key_min = 68;
    s.key_max = 82;
    s.val_min = 0;
    s.val_max = 325 << 10;
    s.heavy_tail = true;
    return s;
}

std::vector<KvWorkloadSpec>
all_kv_workloads()
{
    return {ycsb_load(), ycsb_a(), ycsb_d(), mc12(), mc15(), mc31(), mc37()};
}

KvOpStream::KvOpStream(const KvWorkloadSpec& spec, std::uint64_t seed)
    : spec_(spec), rng_(seed), insert_cursor_(seed << 20)
{
    if (spec_.zipfian) {
        zipf_.emplace(spec_.keyspace, 0.99);
    }
}

std::uint32_t
KvOpStream::key_len(const KvWorkloadSpec& spec, std::uint64_t key)
{
    if (spec.key_min == spec.key_max) {
        return spec.key_min;
    }
    std::uint64_t h = key;
    h = cxlcommon::splitmix64(h);
    return spec.key_min +
           static_cast<std::uint32_t>(h % (spec.key_max - spec.key_min + 1));
}

std::uint64_t
KvOpStream::sample_key()
{
    if (zipf_) {
        return zipf_->sample(rng_);
    }
    return rng_.next_below(spec_.keyspace);
}

std::uint32_t
KvOpStream::value_size()
{
    if (spec_.val_min == spec_.val_max) {
        return spec_.val_min;
    }
    double r = rng_.next_double();
    if (spec_.heavy_tail) {
        // Production caches are dominated by small objects with a long
        // tail (the Twitter study [66]); a cubed uniform biases small.
        r = r * r * r;
    }
    return spec_.val_min +
           static_cast<std::uint32_t>(
               r * static_cast<double>(spec_.val_max - spec_.val_min));
}

KvOp
KvOpStream::next()
{
    double r = rng_.next_double();
    KvOp op;
    if (r < spec_.insert_pct) {
        op.type = OpType::Insert;
        // New keys within the shared keyspace so later reads can hit them.
        op.key = sample_key();
    } else if (r < spec_.insert_pct + spec_.remove_pct) {
        op.type = OpType::Remove;
        op.key = sample_key();
    } else if (r < spec_.insert_pct + spec_.remove_pct + spec_.update_pct) {
        op.type = OpType::Update;
        op.key = sample_key();
    } else {
        op.type = OpType::Read;
        op.key = sample_key();
    }
    op.klen = key_len(spec_, op.key);
    op.vlen = (op.type == OpType::Insert || op.type == OpType::Update)
                  ? value_size()
                  : 0;
    return op;
}

} // namespace workload
