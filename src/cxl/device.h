/// @file
/// The simulated multi-headed CXL memory device.
///
/// Substitution note (see DESIGN.md §2): the paper's device is a real
/// multi-headed CXL module shared by hosts over PCIe. Here the device is a
/// single in-process arena; coherence semantics (HWcc region, SWcc region,
/// device-biased region) are enforced by MemSession/ThreadCache on top of
/// this class, and atomicity by std::atomic_ref on arena words. The device
/// is assumed reliable (paper §2.1 failure model): its contents survive
/// simulated process crashes because the arena outlives them.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cxl/types.h"

namespace cxl {

/// Static configuration of the device.
struct DeviceConfig {
    /// Total capacity in bytes (must be page-aligned).
    std::uint64_t size = 256ULL << 20;

    /// Coherence support.
    CoherenceMode mode = CoherenceMode::PartialHwcc;

    /// Bytes at the start of the device that support inter-host atomics:
    /// the HWcc region (PartialHwcc) or device-biased region (NoHwcc).
    /// Ignored under FullHwcc (the whole device is coherent).
    std::uint64_t sync_region_size = 16ULL << 20;

    /// When true, per-thread SWcc caches are simulated so that stale reads
    /// are deterministically observable. When false, accesses go straight
    /// to the arena (fast path for benchmarks); flush/fence are counted.
    bool simulate_cache = false;
};

/// The shared memory device: a flat byte arena plus commit accounting.
class Device {
  public:
    explicit Device(const DeviceConfig& config);

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    const DeviceConfig& config() const { return config_; }
    std::uint64_t size() const { return config_.size; }
    CoherenceMode mode() const { return config_.mode; }

    /// True if @p offset lies in the region where inter-host atomics work
    /// (HWcc or device-biased, depending on mode).
    bool
    in_sync_region(HeapOffset offset) const
    {
        if (config_.mode == CoherenceMode::FullHwcc) {
            return true;
        }
        return offset < config_.sync_region_size;
    }

    /// Raw pointer into the arena. Callers outside MemSession should only
    /// use this for bulk application data, never for shared metadata.
    std::byte*
    raw(HeapOffset offset)
    {
        return arena_.get() + offset;
    }

    const std::byte*
    raw(HeapOffset offset) const
    {
        return arena_.get() + offset;
    }

    /// Marks the pages covering [offset, offset+len) as committed (backed
    /// by device DRAM). Idempotent; used for the PSS-analog memory report.
    void note_committed(HeapOffset offset, std::uint64_t len);

    /// Marks the pages fully inside [offset, offset+len) as returned to
    /// the device (the MADV_REMOVE analog, paper §3.3.1): the virtual
    /// mapping may remain, but the backing memory is no longer charged.
    void note_decommitted(HeapOffset offset, std::uint64_t len);

    /// Total committed bytes (unique pages touched across the pod).
    std::uint64_t committed_bytes() const;

    /// Returns committed accounting to zero (between benchmark trials).
    void reset_commit_accounting();

  private:
    DeviceConfig config_;
    std::unique_ptr<std::byte[]> arena_;
    /// One bit per page; atomic words so threads can commit concurrently.
    std::vector<std::atomic<std::uint64_t>> commit_bitmap_;
    std::atomic<std::uint64_t> committed_pages_{0};
};

} // namespace cxl
