/// @file
/// The simulated multi-headed CXL memory device.
///
/// Substitution note (see DESIGN.md §2): the paper's device is a real
/// multi-headed CXL module shared by hosts over PCIe. Here the device is a
/// single in-process arena; coherence semantics (HWcc region, SWcc region,
/// device-biased region) are enforced by MemSession/ThreadCache on top of
/// this class, and atomicity by std::atomic_ref on arena words. The device
/// is assumed reliable (paper §2.1 failure model): its contents survive
/// simulated process crashes because the arena outlives them.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cxl/types.h"

namespace cxl {

/// Static configuration of the device.
struct DeviceConfig {
    /// Total capacity in bytes (must be page-aligned). With windows > 1
    /// this must equal windows << window_bits.
    std::uint64_t size = 256ULL << 20;

    /// Coherence support.
    CoherenceMode mode = CoherenceMode::PartialHwcc;

    /// Bytes at the start of the device (of each window, when windowed)
    /// that support inter-host atomics: the HWcc region (PartialHwcc) or
    /// device-biased region (NoHwcc). Ignored under FullHwcc (the whole
    /// device is coherent).
    std::uint64_t sync_region_size = 16ULL << 20;

    /// When true, per-thread SWcc caches are simulated so that stale reads
    /// are deterministically observable. When false, accesses go straight
    /// to the arena (fast path for benchmarks); flush/fence are counted.
    bool simulate_cache = false;

    /// Pod mode: the arena is partitioned into `windows` equal power-of-two
    /// windows of 1 << window_bits bytes, one per pod memory device; the
    /// device id of an offset is its high bits (cxl::pod_device_of). The
    /// defaults (1 window, 0 bits) are the legacy single-device arena.
    /// Each window carries its own sync-region prefix, so every device
    /// contributes HWcc (or device-biased) words for the metadata that
    /// lives on it.
    std::uint32_t windows = 1;
    std::uint32_t window_bits = 0;
};

/// The shared memory device: a flat byte arena plus commit accounting.
/// In pod mode the one arena models all of the pod's device heads —
/// offsets stay globally unique (PC-S across hosts holds by construction)
/// and the window high bits carry the device id.
class Device {
  public:
    explicit Device(const DeviceConfig& config);
    ~Device();

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    const DeviceConfig& config() const { return config_; }
    std::uint64_t size() const { return config_.size; }
    CoherenceMode mode() const { return config_.mode; }

    /// Number of device windows (1 = legacy single device).
    std::uint32_t windows() const { return config_.windows; }
    std::uint32_t window_bits() const { return config_.window_bits; }

    /// Device id owning @p offset (0 on a single-window device).
    DeviceId
    device_of(HeapOffset offset) const
    {
        return pod_device_of(offset, config_.window_bits);
    }

    /// First offset of window @p device.
    HeapOffset
    window_base(DeviceId device) const
    {
        return static_cast<HeapOffset>(device) << config_.window_bits;
    }

    /// True if @p offset lies in the region where inter-host atomics work
    /// (HWcc or device-biased, depending on mode). Windowed devices carry
    /// one such prefix per window.
    bool
    in_sync_region(HeapOffset offset) const
    {
        if (config_.mode == CoherenceMode::FullHwcc) {
            return true;
        }
        return pod_local_of(offset, config_.window_bits) <
               config_.sync_region_size;
    }

    /// Raw pointer into the arena. Callers outside MemSession should only
    /// use this for bulk application data, never for shared metadata.
    std::byte*
    raw(HeapOffset offset)
    {
        return arena_ + offset;
    }

    const std::byte*
    raw(HeapOffset offset) const
    {
        return arena_ + offset;
    }

    /// Marks the pages covering [offset, offset+len) as committed (backed
    /// by device DRAM). Idempotent; used for the PSS-analog memory report.
    void note_committed(HeapOffset offset, std::uint64_t len);

    /// Marks the pages fully inside [offset, offset+len) as returned to
    /// the device (the MADV_REMOVE analog, paper §3.3.1): the virtual
    /// mapping may remain, but the backing memory is no longer charged.
    void note_decommitted(HeapOffset offset, std::uint64_t len);

    /// Total committed bytes (unique pages touched across the pod).
    std::uint64_t committed_bytes() const;

    /// Returns committed accounting to zero (between benchmark trials).
    void reset_commit_accounting();

  private:
    DeviceConfig config_;
    /// Arena storage: mmap'd (lazy-zero, so a 16-window pod arena costs
    /// physical memory only for pages actually touched) with a new[]
    /// fallback; `arena_` is the base either way.
    std::byte* arena_ = nullptr;
    std::unique_ptr<std::byte[]> arena_heap_;
    std::uint64_t arena_map_len_ = 0;
    /// One bit per page; atomic words so threads can commit concurrently.
    std::vector<std::atomic<std::uint64_t>> commit_bitmap_;
    std::atomic<std::uint64_t> committed_pages_{0};
};

} // namespace cxl
