/// @file
/// MemSession: a thread's window onto the simulated CXL device.
///
/// Every allocator access to shared memory goes through a MemSession, which
/// enforces the region semantics of the configured coherence mode:
///  - sync region (HWcc or device-biased): word accesses are atomic; cas64
///    dispatches to a real CPU CAS (HWcc) or to the NMP mCAS engine
///    (NoHwcc). The device-biased region is uncachable, so accesses are
///    charged uncached latency.
///  - SWcc region: plain loads/stores, optionally routed through the
///    per-thread ThreadCache so stale reads are observable; flush()/fence()
///    implement the paper's software coherence protocol.
///
/// The session also accumulates event counters and (optionally) simulated
/// time from a LatencyModel, which benchmarks use to report paper-shaped
/// results on hardware unlike the authors' testbeds.

#pragma once

#include <array>
#include <atomic>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/assert.h"
#include "common/cacheline.h"
#include "common/test_faults.h"
#include "cxl/cache_model.h"
#include "cxl/device.h"
#include "cxl/latency_model.h"
#include "cxl/nmp.h"
#include "cxl/types.h"
#include "obs/histogram.h"
#include "sched/hook.h"

namespace obs {
class MetricsRegistry;
}

namespace cxl {

/// Debug knob restoring the historical behavior of an access over an
/// unusable edge: when true, check_access dies with CXL_FATAL (the
/// pre-fault-layer contract) instead of throwing EdgeDownError. Process-
/// global; meant for debugging a pod that should never see edge faults.
void set_edge_down_panics(bool on);
bool edge_down_panics();

/// Doorbell retries MemSession attempts against a stalled NMP engine
/// before escalating to NmpStallError, each separated by one McasBackoff
/// step — the bounded timeout of the retry ladder (worst case roughly
/// kNmpStallRetryLimit * McasBackoff::kMaxNs * 1.5 of simulated wait).
inline constexpr std::uint32_t kNmpStallRetryLimit = 10;

/// Event counts for one thread's session.
struct MemEventCounters {
    /// Line-granular access counts: a bulk read/write of N cachelines
    /// counts N (matching the per-line latency it is charged), a word
    /// access counts 1.
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    /// flush() calls (one per invocation, however many lines it covers).
    std::uint64_t flushes = 0;
    /// Cachelines actually written back/invalidated by those flushes —
    /// the per-line cost the fence-elision work optimizes. flush_dirty()
    /// adds only the lines it really flushed.
    std::uint64_t flushed_lines = 0;
    std::uint64_t fences = 0;
    std::uint64_t cas_ops = 0;
    std::uint64_t cas_failures = 0;
    std::uint64_t mcas_ops = 0;
    std::uint64_t mcas_conflicts = 0;
    /// Batched doorbells rung (each is one device round trip).
    std::uint64_t mcas_batches = 0;
    /// Operands carried by those doorbells (occupancy = ops / batches).
    std::uint64_t mcas_batch_ops = 0;
    std::uint64_t faults = 0;
    /// Accesses whose mapping check was answered by the session TLB.
    std::uint64_t tlb_hits = 0;
    /// Accesses that had to consult the mapping guard.
    std::uint64_t tlb_misses = 0;
    /// Pod routing split (sessions with set_pod_routing only): accesses to
    /// the session host's home device vs any other device. One event per
    /// access (not per line) — the placement-policy signal, not a latency
    /// proxy.
    std::uint64_t pod_local = 0;
    std::uint64_t pod_remote = 0;
    /// Accesses routed to a host-private local-DRAM window (MemTier::
    /// LocalDram edges) — the tiering win the migrator optimizes for.
    std::uint64_t pod_dram = 0;
    /// Accesses rejected with EdgeDownError (statically unreachable or
    /// runtime-Down edge) — the degraded-mode signal fault_storm budgets.
    std::uint64_t pod_edge_down = 0;
    /// Doorbell retry ladders that exhausted their bound against a stalled
    /// NMP engine and escalated to an NmpStallError device-failure report.
    std::uint64_t nmp_stall_escalations = 0;

    MemEventCounters&
    operator+=(const MemEventCounters& o)
    {
        loads += o.loads;
        stores += o.stores;
        flushes += o.flushes;
        flushed_lines += o.flushed_lines;
        fences += o.fences;
        cas_ops += o.cas_ops;
        cas_failures += o.cas_failures;
        mcas_ops += o.mcas_ops;
        mcas_conflicts += o.mcas_conflicts;
        mcas_batches += o.mcas_batches;
        mcas_batch_ops += o.mcas_batch_ops;
        faults += o.faults;
        tlb_hits += o.tlb_hits;
        tlb_misses += o.tlb_misses;
        pod_local += o.pod_local;
        pod_remote += o.pod_remote;
        pod_dram += o.pod_dram;
        pod_edge_down += o.pod_edge_down;
        nmp_stall_escalations += o.nmp_stall_escalations;
        return *this;
    }
};

/// Interface the pod layer implements to intercept accesses to not-yet-
/// mapped offsets (the SIGSEGV-handler analog providing PC-T).
class MemSession;

class MappingGuard {
  public:
    virtual ~MappingGuard() = default;

    /// Ensures [offset, offset+len) is mapped in the calling process,
    /// faulting into the registered handler if not. Aborts (true segfault)
    /// if the handler cannot back the access. @p mem identifies the
    /// faulting thread (the handler runs on the faulting thread's stack).
    /// Returns true when the guard actually VERIFIED the range is mapped —
    /// only then may the session cache the translation in its TLB. False
    /// means the access was waved through unverified (unchecked mode, or
    /// re-entry from inside the fault handler) and must not be cached.
    virtual bool on_access(MemSession& mem, HeapOffset offset,
                           std::uint64_t len) = 0;

    /// Monotonic counter bumped on every mapping removal. Sessions compare
    /// it against the epoch their TLB entries were filled under and drop
    /// them all on mismatch — the munmap-shootdown analog that keeps PC-T
    /// reclamation (hazard-offset unmaps, huge-region reclaim) correct.
    virtual std::uint64_t mapping_epoch() const = 0;
};

/// Session-side record of which SWcc cachelines this thread has dirtied
/// since it last flushed them: the index flush_dirty() consults to write
/// back 1 line instead of 9 on the common descriptor publication. Open-
/// addressed, fixed small footprint. Tombstone pressure from steady
/// insert/erase churn is purged by rehashing in place; the table only
/// grows when LIVE entries load it, and only if they exceed the size cap
/// does it latch `overflowed`, degrading flush_dirty() to a conservative
/// full-range flush (correctness never depends on the set being complete
/// — only the elision's effectiveness does).
class DirtyLineSet {
  public:
    DirtyLineSet();

    /// Records a line-aligned offset as dirty. No-op after overflow.
    void insert(std::uint64_t line);

    /// Clears a line; returns true if it was recorded dirty.
    bool erase(std::uint64_t line);

    bool contains(std::uint64_t line) const;
    bool overflowed() const { return overflowed_; }
    std::size_t size() const { return size_; }

  private:
    static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
    static constexpr std::uint64_t kTombstone = ~std::uint64_t{0} - 1;
    static constexpr std::size_t kInitialSlots = 1024;
    static constexpr std::size_t kMaxSlots = 1 << 16;

    std::size_t slot_of(std::uint64_t line) const;
    void rehash(std::size_t new_slots);

    std::vector<std::uint64_t> slots_;
    std::size_t size_ = 0;
    std::size_t used_ = 0; ///< live + tombstoned slots (probe-chain load)
    bool overflowed_ = false;
};

/// A thread's access session. Not thread-safe; one per thread.
class MemSession {
  public:
    MemSession(Device* device, Nmp* nmp, ThreadId tid);

    ThreadId tid() const { return tid_; }
    Device* device() { return device_; }

    /// Installs the PC-T mapping guard (and enables per-access checks).
    void
    set_mapping_guard(MappingGuard* guard)
    {
        guard_ = guard;
        tlb_ = {};
        tlb_epoch_ = guard != nullptr ? guard->mapping_epoch() : 0;
    }

    /// Attaches a latency model; simulated time accrues from then on.
    void
    set_latency_model(const LatencyModel* model)
    {
        model_ = model;
    }

    /// Routes this session through a pod topology: @p row is the session
    /// host's row of the (host, device) edge-cost matrix (@p devices
    /// entries, must outlive the session), @p home its first-touch home
    /// device, @p host the host id (metric labels only). From then on
    /// every access is checked against the row's reachability, charged the
    /// edge's extra latency on top of the base model, and counted into the
    /// pod_local/pod_remote split plus per-edge ops/ns accounting. The
    /// device must be window-partitioned (pod/topology.h); a session
    /// without routing behaves exactly as before. @p states, when non-null,
    /// is the host's runtime edge-health row (pod::Topology::state_row,
    /// same lifetime contract as @p row): accesses over a Down edge are
    /// rejected with EdgeDownError exactly like statically-unreachable
    /// ones.
    void set_pod_routing(const EdgeCost* row, std::uint32_t devices,
                         DeviceId home, std::uint32_t host,
                         const EdgeStateCell* states = nullptr);

    /// Device id an offset routes to (0 without a windowed device).
    DeviceId
    device_of(HeapOffset offset) const
    {
        return pod_device_of(offset, window_bits_);
    }

    DeviceId home_device() const { return home_device_; }
    std::uint32_t pod_host() const { return host_; }

    /// Loads a word-sized trivially copyable T from shared memory.
    template <typename T>
    T
    load(HeapOffset offset)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        sched::hook(sched::Op::Load, offset, sizeof(T));
        check_access(offset, sizeof(T));
        counters_.loads++;
        if (cache_sim_at(offset)) {
            charge(model_ ? model_->cached_ns : 0);
            T value;
            cache_.read(offset, &value, sizeof(T));
            return value;
        }
        charge_load(offset);
        return atomic_at<T>(offset).load(std::memory_order_relaxed);
    }

    /// Stores a word-sized trivially copyable T to shared memory.
    template <typename T>
    void
    store(HeapOffset offset, T value)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        sched::hook(sched::Op::Store, offset, sizeof(T));
        check_access(offset, sizeof(T));
        counters_.stores++;
        if (cache_sim_at(offset)) {
            charge(model_ ? model_->cached_ns : 0);
            cache_.write(offset, &value, sizeof(T));
            note_dirty(offset, sizeof(T));
            return;
        }
        charge_store(offset);
        atomic_at<T>(offset).store(value, std::memory_order_relaxed);
        if (!device_->in_sync_region(offset)) {
            note_dirty(offset, sizeof(T));
        }
    }

    /// Bulk read of SWcc data (goes through the cache model if enabled).
    void read_bytes(HeapOffset offset, void* out, std::uint64_t len);

    /// Bulk write of SWcc data.
    void write_bytes(HeapOffset offset, const void* in, std::uint64_t len);

    /// Direct pointer for application payload bytes. Mapping-checked, but
    /// bypasses the cache model: payloads are application data whose
    /// coherence is the application's business (paper manages only
    /// allocator metadata in SWcc).
    std::byte*
    data_ptr(HeapOffset offset, std::uint64_t len)
    {
        check_access(offset, len);
        return device_->raw(offset);
    }

    /// Writes back + invalidates the cachelines covering [offset, +len).
    /// Mapping-checked like every other access path (flushing a reclaimed
    /// range must fault, not silently touch stale translations). A zero-
    /// length flush is a no-op: no event, no counter, no latency.
    void flush(HeapOffset offset, std::uint64_t len = cxlcommon::kCacheLine);

    /// Flushes only the lines of [offset, offset+len) this session has
    /// dirtied since their last flush — the paper's §3.2.2 observation
    /// that the owner already knows which descriptor fields it wrote.
    /// Counts one flush (and per-line latency) per contiguous dirty run;
    /// clean lines cost nothing. Falls back to flush(offset, len) if the
    /// dirty index overflowed. Guarded by litmus shape SwccPublishDirtyOnly
    /// and the sched publish oracle (flush-before-publish over the full
    /// descriptor range stays enforced).
    void flush_dirty(HeapOffset offset, std::uint64_t len);

    /// Store fence ordering flushes before subsequent writes. In litmus
    /// mode (cache knobs with a store buffer) this also completes the
    /// cache's in-flight store-buffer drain and pending write-backs.
    void fence();

    /// 64-bit compare-and-swap on the sync region. Under NoHwcc this is an
    /// NMP mCAS; an engine conflict counts as a failure and reloads
    /// @p expected like a value mismatch would. Returns true on swap.
    bool cas64(HeapOffset offset, std::uint64_t& expected,
               std::uint64_t desired);

    /// Stages one mCAS operand into this thread's NMP ring without ringing
    /// the doorbell (NoHwcc only; the staging window is what batch-crash
    /// recovery inspects). Returns false when the ring is full — drain
    /// with mcas_doorbell() + mcas_poll() first.
    bool mcas_post(const McasOperand& op);

    /// Rings this thread's doorbell: every staged operand executes in one
    /// simulated device round trip, charged mcas_ns + (k-1) *
    /// mcas_batch_slot_ns for k operands. Returns k.
    std::uint32_t mcas_doorbell();

    /// Harvests the oldest completed operand's result (FIFO). A conflicted
    /// result is charged mcas_conflict_ns and counted here, not at the
    /// doorbell. Returns false when nothing is pending.
    bool mcas_poll(McasResult* out);

    /// Submits up to kNmpRingSlots INDEPENDENT operands as one batch and
    /// harvests their results in order: post + doorbell + poll. Returns
    /// the number accepted (< n only if @p n exceeds ring capacity).
    /// Under HWcc modes there is no engine to batch, so this degenerates
    /// to a serial coherent-CAS loop with identical result semantics
    /// (conflict never reported). Operands must target distinct addresses
    /// or later duplicates fail with a conflict (Fig. 6(b)).
    std::uint32_t mcas_batch(const McasOperand* ops, std::uint32_t n,
                             McasResult* results);

    /// Atomic (coherent) 64-bit load from the sync region.
    std::uint64_t atomic_load64(HeapOffset offset);

    /// Atomic (coherent) 64-bit store to the sync region.
    void atomic_store64(HeapOffset offset, std::uint64_t value);

    /// Registers the line holding this thread's recovery-record row as the
    /// cache's durable line: its newest value is persisted ahead of any
    /// dirty capacity eviction, so a host crash can never surface a later
    /// operation's effect next to a stale record (see ThreadCache and
    /// RecoveryLog's discipline note). Idempotent; a no-op without the
    /// cache model (stores then reach the device in program order anyway).
    void
    set_durable_row(HeapOffset row)
    {
        cache_.set_durable_line(cxlcommon::line_of(row));
    }

    /// Drops this thread's simulated cache without write-back: what a crash
    /// does to unflushed state.
    void
    drop_cache()
    {
        cache_.invalidate_all();
    }

    ThreadCache& cache() { return cache_; }

    /// The session's dirty-line index (tests and stats).
    const DirtyLineSet& dirty_set() const { return dirty_; }

    MemEventCounters& counters() { return counters_; }
    const MemEventCounters& counters() const { return counters_; }

    /// Publishes this session's event counters and simulated time into
    /// @p registry under "mem.*", sharded by this session's thread id.
    /// Call at quiesce points (end of a run); cheap enough to call often.
    void publish_metrics(obs::MetricsRegistry& registry) const;

    /// Simulated nanoseconds accumulated by this session.
    std::uint64_t sim_ns() const { return sim_ns_; }
    void charge(std::uint64_t ns) { sim_ns_ += ns; }
    void
    reset_accounting()
    {
        sim_ns_ = 0;
        counters_ = MemEventCounters{};
        mcas_round_trip_ns_.reset();
        for (std::uint32_t d = 0; d < edge_devices_; d++) {
            edge_ops_[d] = 0;
            edge_ns_[d] = 0;
            edge_hist_[d].reset();
        }
    }

  private:
    /// Rings this thread's doorbell with the bounded stall-retry ladder:
    /// when operands are posted but the engine does not answer, retries up
    /// to kNmpStallRetryLimit times with McasBackoff waits (charged as
    /// simulated ns), then escalates by throwing NmpStallError. Returns
    /// the number of operands executed (0 only for an empty ring).
    std::uint32_t doorbell_with_ladder();

    template <typename T>
    std::atomic_ref<T>
    atomic_at(HeapOffset offset)
    {
        CXL_ASSERT(offset % sizeof(T) == 0, "misaligned shared access");
        return std::atomic_ref<T>(
            *reinterpret_cast<T*>(device_->raw(offset)));
    }

    /// True if this access should be routed through the simulated cache:
    /// cache simulation on, and the offset is in cacheable (non-device-
    /// biased) memory outside the always-coherent region.
    bool
    cache_sim_at(HeapOffset offset) const
    {
        return device_->config().simulate_cache &&
               !device_->in_sync_region(offset);
    }

    void
    check_access(HeapOffset offset, std::uint64_t len)
    {
        // Overflow-safe form: `offset + len <= size` wraps for huge len and
        // would wave a wild access through.
        std::uint64_t size = device_->size();
        CXL_ASSERT(len <= size && offset <= size - len,
                   "access past device end");
        if (edge_row_ != nullptr) {
            DeviceId dev = pod_device_of(offset, window_bits_);
            CXL_ASSERT(dev == pod_device_of(offset + len - 1, window_bits_),
                       "access spans device windows");
            CXL_ASSERT(dev < edge_devices_, "device id out of range");
            // Reachability is a safety property (an unreachable edge has
            // no wire to carry the access), so it is enforced even in
            // builds without invariant checks — but as a typed,
            // recoverable rejection: a sparse topology's stray access and
            // a runtime-Down edge both surface as EdgeDownError so the
            // caller can degrade (park the free, re-place the alloc)
            // instead of dying. set_edge_down_panics() restores the
            // historical CXL_FATAL for debugging.
            bool wired = edge_row_[dev].reachable;
            if (!wired ||
                (edge_state_row_ != nullptr &&
                 edge_state_row_[dev].state.load(
                     std::memory_order_acquire) ==
                     static_cast<std::uint8_t>(EdgeState::Down))) {
                counters_.pod_edge_down++;
                CXL_FATAL_IF(edge_down_panics(),
                             "access to pod device unreachable from this "
                             "host");
                throw EdgeDownError(dev, offset, wired);
            }
            if (edge_row_[dev].tier == MemTier::LocalDram) {
                counters_.pod_dram++;
            } else if (dev == home_device_) {
                counters_.pod_local++;
            } else {
                counters_.pod_remote++;
            }
            edge_ops_[dev]++;
        }
        if (guard_ == nullptr) {
            return;
        }
        std::uint64_t epoch = guard_->mapping_epoch();
        if (epoch != tlb_epoch_) {
            // Some mapping was removed since these entries were filled:
            // every cached translation is suspect. Drop them all and
            // re-verify (the munmap TLB-shootdown analog).
            tlb_ = {};
            tlb_epoch_ = epoch;
        } else {
            for (std::uint32_t i = 0; i < kTlbEntries; i++) {
                const TlbEntry& e = tlb_[i];
                if (offset >= e.start && offset + len <= e.end) {
                    counters_.tlb_hits++;
                    return;
                }
            }
        }
        counters_.tlb_misses++;
        if (guard_->on_access(*this, offset, len)) {
            // Verified mapped: cache the covering pages. Mappings are
            // page-granular, so the whole rounded range is known good.
            tlb_[tlb_next_] = TlbEntry{
                offset & ~static_cast<HeapOffset>(kPageSize - 1),
                cxlcommon::align_up(offset + len, kPageSize)};
            tlb_next_ = (tlb_next_ + 1) % kTlbEntries;
        }
    }

    void
    charge_load(HeapOffset offset)
    {
        if (model_ == nullptr) {
            return;
        }
        // Device-biased memory is uncachable: every load goes to the medium.
        bool uncachable = device_->mode() == CoherenceMode::NoHwcc &&
                          device_->in_sync_region(offset);
        charge(uncachable ? model_->read_ns : model_->cached_ns);
        charge_edge(offset, 1, 8, /*write=*/false);
    }

    void
    charge_store(HeapOffset offset)
    {
        if (model_ == nullptr) {
            return;
        }
        bool uncachable = device_->mode() == CoherenceMode::NoHwcc &&
                          device_->in_sync_region(offset);
        charge(uncachable ? model_->write_ns : model_->cached_ns);
        charge_edge(offset, 1, 8, /*write=*/true);
    }

    /// Adds the (host, device) edge cost of moving @p lines cachelines /
    /// @p bytes bytes at @p offset on top of the base model charge, and
    /// folds it into the per-edge latency accounting. A no-op without pod
    /// routing or a latency model, and free on zero-cost (host-local)
    /// edges.
    void
    charge_edge(HeapOffset offset, std::uint64_t lines, std::uint64_t bytes,
                bool write)
    {
        if (edge_row_ == nullptr || model_ == nullptr) {
            return;
        }
        DeviceId dev = pod_device_of(offset, window_bits_);
        const EdgeCost& e = edge_row_[dev];
        std::uint64_t add =
            lines * (write ? e.write_add_ns : e.read_add_ns) +
            bytes * e.ns_per_kib / 1024;
        if (add == 0) {
            return;
        }
        charge(add);
        edge_ns_[dev] += add;
        edge_hist_[dev].record(add);
    }

    /// Records the SWcc lines covering [offset, offset+len) as dirtied by
    /// this session. The test fault models an undertracking bug: lines go
    /// dirty without being recorded, so flush_dirty() under-flushes and
    /// the publish oracle / litmus suite must catch the stale publication.
    void
    note_dirty(HeapOffset offset, std::uint64_t len)
    {
        if (cxlcommon::test_faults::skip_dirty_line_tracking) {
            return;
        }
        std::uint64_t first = cxlcommon::line_of(offset);
        std::uint64_t last = cxlcommon::line_of(offset + len - 1);
        for (std::uint64_t line = first; line <= last;
             line += cxlcommon::kCacheLine) {
            dirty_.insert(line);
        }
    }

    /// One verified-mapped range, page-rounded; start == end means empty.
    struct TlbEntry {
        HeapOffset start = 0;
        HeapOffset end = 0;
    };

    /// Last-N resolved ranges. Metadata accesses revisit the same
    /// descriptor and local-row pages, so a handful of entries absorbs
    /// nearly every guard consultation (the page-bitmap walk).
    static constexpr std::uint32_t kTlbEntries = 8;

    Device* device_;
    Nmp* nmp_;
    ThreadId tid_;
    ThreadCache cache_;
    DirtyLineSet dirty_;
    MappingGuard* guard_ = nullptr;
    std::array<TlbEntry, kTlbEntries> tlb_{};
    std::uint32_t tlb_next_ = 0;
    std::uint64_t tlb_epoch_ = 0;
    const LatencyModel* model_ = nullptr;
    MemEventCounters counters_;
    std::uint64_t sim_ns_ = 0;
    /// Modeled cost of each mCAS device round trip (single or batched),
    /// merged into "mem.mcas_round_trip_ns" by publish_metrics.
    obs::Histogram mcas_round_trip_ns_;

    // ---- Pod routing (set_pod_routing; all empty/zero otherwise). ----
    /// This host's row of the edge-cost matrix (edge_devices_ entries).
    const EdgeCost* edge_row_ = nullptr;
    /// Runtime edge-health row (null when the caller routes without the
    /// fault layer — then only static reachability is enforced).
    const EdgeStateCell* edge_state_row_ = nullptr;
    std::uint32_t edge_devices_ = 0;
    DeviceId home_device_ = 0;
    std::uint32_t host_ = 0;
    std::uint32_t window_bits_ = 0;
    /// Per-device accounting for this session's host row: accesses, extra
    /// edge nanoseconds, and the edge-latency distribution (published as
    /// pod.edge.h<host>.d<dev>.* by publish_metrics).
    std::vector<std::uint64_t> edge_ops_;
    std::vector<std::uint64_t> edge_ns_;
    std::vector<obs::Histogram> edge_hist_;
};

} // namespace cxl
