/// @file
/// Calibrated latency model for the simulated memory substrate.
///
/// Constants come from the paper's testbed measurements (§5.4): local DRAM
/// read 112 ns, CXL read 357 ns over PCIe 5.0 x16, single-thread NMP mCAS
/// p50 ≈ 2.3 µs, and sw_flush_cas (flush + CAS, the software emulation of
/// mCAS) landing below hw_cas at one thread but above it under contention
/// (Fig. 11). Benchmarks report *simulated* time computed from per-thread
/// event streams in addition to wall-clock, so that the paper's shape is
/// recoverable on a host whose core count and memory differ from the
/// authors' testbeds.

#pragma once

#include <cstdint>

namespace cxl {

/// Per-operation costs in nanoseconds.
struct LatencyModel {
    std::uint64_t read_ns = 0;        ///< uncached load from the medium
    std::uint64_t write_ns = 0;       ///< store (posted; cheaper than read)
    std::uint64_t cached_ns = 2;      ///< load/store that can hit CPU cache
    std::uint64_t flush_ns = 0;       ///< clwb/clflush + drain
    std::uint64_t fence_ns = 0;       ///< sfence
    std::uint64_t cas_ns = 0;         ///< HWcc CAS (uncontended)
    std::uint64_t cas_contended_ns = 0; ///< extra per coherence conflict
    std::uint64_t mcas_ns = 0;        ///< NMP spwr+sprd round trip
    std::uint64_t mcas_conflict_ns = 0; ///< extra when engine reports conflict
    /// Incremental cost per ADDITIONAL operand sharing one batched round
    /// trip: a k-operand doorbell costs mcas_ns + (k-1) * this (plus
    /// conflict surcharges). The round trip (spwr DMA + doorbell + sprd)
    /// dominates mcas_ns; extra operands only pay the engine's serialized
    /// per-operand processing (Fig. 6(a) pipeline).
    std::uint64_t mcas_batch_slot_ns = 0;

    /// Host-local DDR DRAM (the "local" series in Fig. 12).
    static LatencyModel local_dram();

    /// CXL-attached memory with inter-host HWcc ("-hwcc" series).
    static LatencyModel cxl_hwcc();

    /// CXL-attached memory with no HWcc; synchronization via NMP mCAS
    /// ("-mcas" series).
    static LatencyModel cxl_mcas();

    /// sw_flush_cas configuration of Fig. 11: cacheline flush then CAS,
    /// the software emulation of mCAS used by prior work.
    static LatencyModel cxl_flush_cas();
};

} // namespace cxl
