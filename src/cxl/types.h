/// @file
/// Shared identifiers and limits for the simulated CXL pod.

#pragma once

#include <atomic>
#include <cstdint>
#include <exception>

#include "common/offset_ptr.h"

namespace cxl {

using cxlcommon::HeapOffset;
using cxlcommon::kNullOffset;

/// Pod-global thread identifier. 0 means "no thread" so that zero-filled
/// owner fields decode as unowned (zero-is-valid heap initialization).
using ThreadId = std::uint16_t;

inline constexpr ThreadId kNoThread = 0;

/// Maximum number of pod-global thread slots. Thread IDs are 1..kMaxThreads.
/// Sized for the pod-topology experiments: 16 hosts x 8 pinned threads each
/// plus harness helpers (preload, probes, recovery adopters).
inline constexpr std::uint32_t kMaxThreads = 160;

/// Maximum number of sharing processes in the pod (>= one per host in the
/// largest pod preset, plus per-thread processes in the PC-T studies).
inline constexpr std::uint32_t kMaxProcesses = 64;

/// Simulated page size: the granularity at which memory mappings are
/// installed into a process (the mmap analog).
inline constexpr std::uint64_t kPageSize = 4096;

/// Coherence support of the simulated device (paper Fig. 1).
enum class CoherenceMode {
    /// CXL 3.x back-invalidation everywhere: plain CAS works on any line.
    FullHwcc,
    /// HWcc limited to a small contiguous region (Fig. 1(A)); the rest is
    /// kept coherent in software (SWcc).
    PartialHwcc,
    /// No HWcc (Fig. 1(B)): synchronization only via the NMP's mCAS on the
    /// device-biased (uncachable) region; the rest is SWcc.
    NoHwcc,
};

const char* to_string(CoherenceMode mode);

// ---- Pod topology primitives (see pod/topology.h for the pod model). ----

/// Identifies one memory device (head) of the pod. With a window-partitioned
/// device the id is carried in the high bits of every HeapOffset.
using DeviceId = std::uint16_t;

/// Maximum devices per pod: DeviceId values are 0..kMaxDevices-1.
inline constexpr std::uint32_t kMaxDevices = 16;

/// Memory tier a pod device belongs to. CXL devices are the shared fabric
/// tier every topology has; a LocalDram device models one host's private
/// DRAM exposed as a dedicated window (pod::Topology::with_local_dram), so
/// MemSession charges DRAM vs CXL latency purely by the offset's window
/// bits.
enum class MemTier : std::uint8_t {
    Cxl = 0,
    LocalDram = 1,
};

/// Cost of one (host, device) edge of the pod interconnect. Added on top of
/// the LatencyModel's base per-op costs, so a zero-cost edge reproduces the
/// single-device behavior exactly.
struct EdgeCost {
    /// False models an Octopus-style sparse pod: the host has no path to
    /// the device at all. Accesses must be rejected, never misrouted.
    bool reachable = true;
    /// Tier of the device this edge reaches. LocalDram edges are host-
    /// private (reachable from exactly one host) and are skipped by
    /// capacity placement (home_of / placement_order): only the explicit
    /// tiering policy ever allocates there.
    MemTier tier = MemTier::Cxl;
    /// Extra nanoseconds per cacheline read over this edge (switch hops,
    /// longer flit path).
    std::uint32_t read_add_ns = 0;
    /// Extra nanoseconds per cacheline written or flushed over this edge.
    std::uint32_t write_add_ns = 0;
    /// Bandwidth term for bulk transfers: extra nanoseconds per KiB moved.
    std::uint32_t ns_per_kib = 0;
};

/// Runtime health of one (host, device) edge, layered over the static
/// EdgeCost wiring. The EdgeCost matrix says whether a wire *exists*; the
/// EdgeState says whether it is currently *usable*. Fault detection (lease
/// misses, NMP stall escalations, injected faults) moves edges through
/// Up -> Suspect -> Down and back; placement and the session access checks
/// consult it on every operation (one relaxed byte load).
enum class EdgeState : std::uint8_t {
    /// Healthy: full traffic.
    Up = 0,
    /// Degrading: still carries traffic, but placement deprioritizes the
    /// device and evacuation may be draining it.
    Suspect = 1,
    /// Unusable: accesses are rejected with EdgeDownError; frees destined
    /// for the device are parked until the edge recovers.
    Down = 2,
};

inline const char*
to_string(EdgeState state)
{
    switch (state) {
    case EdgeState::Up: return "Up";
    case EdgeState::Suspect: return "Suspect";
    case EdgeState::Down: return "Down";
    }
    return "?";
}

/// One edge's mutable runtime cell: current state plus a monotonic epoch
/// bumped on every transition (so observers can tell two flaps apart from
/// no flap). Readers on the access path are lock-free; writers are the
/// fault layer (pod/faults.h) and the liveness detector.
struct EdgeStateCell {
    std::atomic<std::uint8_t> state{0};
    std::atomic<std::uint64_t> epoch{0};
};

/// Typed, recoverable rejection of an access over an edge with no usable
/// path: either the topology has no wire at all (static sparse-pod
/// unreachability) or the edge is runtime-Down. Callers in degraded pods
/// catch this, refresh placement, and retry elsewhere; the historical
/// hard-panic behavior is available behind cxl::set_edge_down_panics().
class EdgeDownError : public std::exception {
  public:
    EdgeDownError(DeviceId device, HeapOffset offset, bool wired)
        : device_(device), offset_(offset), wired_(wired)
    {
    }

    DeviceId device() const { return device_; }
    HeapOffset offset() const { return offset_; }

    /// True when the wire exists but is runtime-Down (the edge may come
    /// back); false when the topology never had a path (a stray access in
    /// a sparse Octopus pod — a placement bug, not a fault).
    bool wired() const { return wired_; }

    const char*
    what() const noexcept override
    {
        return wired_ ? "access to pod device over a Down edge"
                      : "access to pod device unreachable from this host";
    }

  private:
    DeviceId device_;
    HeapOffset offset_;
    bool wired_;
};

/// Offset -> device routing for a window-partitioned arena: device d owns
/// offsets [d << window_bits, (d+1) << window_bits). window_bits == 0 means
/// the legacy single-device arena (everything routes to device 0).
constexpr DeviceId
pod_device_of(HeapOffset offset, std::uint32_t window_bits)
{
    return window_bits == 0 ? DeviceId{0}
                            : static_cast<DeviceId>(offset >> window_bits);
}

/// Device-local offset (the low window bits).
constexpr HeapOffset
pod_local_of(HeapOffset offset, std::uint32_t window_bits)
{
    return window_bits == 0
               ? offset
               : offset & ((HeapOffset{1} << window_bits) - 1);
}

/// Composes a pod-global offset from a device id and a device-local offset.
constexpr HeapOffset
pod_encode(DeviceId device, HeapOffset local, std::uint32_t window_bits)
{
    return window_bits == 0
               ? local
               : (static_cast<HeapOffset>(device) << window_bits) | local;
}

} // namespace cxl
