/// @file
/// Shared identifiers and limits for the simulated CXL pod.

#pragma once

#include <cstdint>

#include "common/offset_ptr.h"

namespace cxl {

using cxlcommon::HeapOffset;
using cxlcommon::kNullOffset;

/// Pod-global thread identifier. 0 means "no thread" so that zero-filled
/// owner fields decode as unowned (zero-is-valid heap initialization).
using ThreadId = std::uint16_t;

inline constexpr ThreadId kNoThread = 0;

/// Maximum number of pod-global thread slots. Thread IDs are 1..kMaxThreads.
/// 8-16 hosts with a handful of pinned threads each; 64 slots is generous.
inline constexpr std::uint32_t kMaxThreads = 64;

/// Maximum number of sharing processes in the pod.
inline constexpr std::uint32_t kMaxProcesses = 16;

/// Simulated page size: the granularity at which memory mappings are
/// installed into a process (the mmap analog).
inline constexpr std::uint64_t kPageSize = 4096;

/// Coherence support of the simulated device (paper Fig. 1).
enum class CoherenceMode {
    /// CXL 3.x back-invalidation everywhere: plain CAS works on any line.
    FullHwcc,
    /// HWcc limited to a small contiguous region (Fig. 1(A)); the rest is
    /// kept coherent in software (SWcc).
    PartialHwcc,
    /// No HWcc (Fig. 1(B)): synchronization only via the NMP's mCAS on the
    /// device-biased (uncachable) region; the rest is SWcc.
    NoHwcc,
};

const char* to_string(CoherenceMode mode);

} // namespace cxl
