#include "cxl/nmp.h"

#include <atomic>
#include <string>

#include "common/assert.h"
#include "obs/registry.h"

namespace cxl {

// ------------------------------------------------------------ batched path

bool
Nmp::spwr_post(ThreadId tid, const McasOperand& op)
{
    CXL_ASSERT(tid != kNoThread && tid <= kMaxThreads, "bad thread id");
    CXL_ASSERT(device_->in_sync_region(op.target),
               "mCAS target outside device-biased region");
    CXL_ASSERT(op.target % 8 == 0, "mCAS target must be 8-byte aligned");
    std::lock_guard<std::mutex> lock(mu_);
    Ring& ring = rings_[tid];
    if (ring.size == kNmpRingSlots) {
        return false;
    }
    Slot& slot = ring.at(ring.head + ring.size);
    ring.size++;
    slot.op = op;
    slot.state = NmpSlotState::Posted;
    slot.doomed = false;
    // Fig. 6(b): an operand that arrives while another staged operand is in
    // flight on the same target address is failed. "Staged" ends when the
    // engine executes the operand — an executed-but-unpolled slot is
    // already serialized and no longer excludes competitors.
    for (std::uint32_t t = 1; t <= kMaxThreads; t++) {
        const Ring& other = rings_[t];
        for (std::uint32_t i = 0; i < other.size; i++) {
            const Slot& competitor = other.at(other.head + i);
            if (&competitor == &slot) {
                continue;
            }
            if (competitor.state == NmpSlotState::Posted &&
                competitor.op.target == op.target) {
                slot.doomed = true;
                return true;
            }
        }
    }
    return true;
}

void
Nmp::execute_locked(Slot& slot)
{
    ops_++;
    slot.state = NmpSlotState::Executed;
    if (slot.doomed) {
        conflicts_++;
        slot.result =
            McasResult{.success = false, .conflict = true, .previous = 0};
        return;
    }
    std::atomic_ref<std::uint64_t> word(
        *reinterpret_cast<std::uint64_t*>(device_->raw(slot.op.target)));
    std::uint64_t previous = word.load(std::memory_order_acquire);
    bool success = previous == slot.op.expected;
    if (success) {
        // "On an mCAS success, all subsequent sprd and spwr operations are
        // stalled until the swap value is written" — under mu_, the write
        // completes before any other engine work.
        word.store(slot.op.swap, std::memory_order_release);
    }
    slot.result = McasResult{.success = success, .conflict = false,
                             .previous = previous};
}

std::uint32_t
Nmp::doorbell(ThreadId tid)
{
    CXL_ASSERT(tid != kNoThread && tid <= kMaxThreads, "bad thread id");
    std::lock_guard<std::mutex> lock(mu_);
    Ring& ring = rings_[tid];
    if (stall_budget_ > 0) {
        // Injected engine stall: a doorbell with work to do goes
        // unanswered (empty rings don't consume the budget — the engine
        // "not responding" is only observable when something was staged).
        bool any_posted = false;
        for (std::uint32_t i = 0; i < ring.size && !any_posted; i++) {
            any_posted = ring.at(ring.head + i).state == NmpSlotState::Posted;
        }
        if (any_posted) {
            stall_budget_--;
            stalled_++;
            return 0;
        }
    }
    std::uint32_t executed = 0;
    for (std::uint32_t i = 0; i < ring.size; i++) {
        Slot& slot = ring.at(ring.head + i);
        if (slot.state == NmpSlotState::Posted) {
            execute_locked(slot);
            executed++;
        }
    }
    if (executed > 0) {
        batches_++;
        occupancy_.record(executed);
    }
    return executed;
}

bool
Nmp::poll(ThreadId tid, McasResult* out)
{
    CXL_ASSERT(tid != kNoThread && tid <= kMaxThreads, "bad thread id");
    std::lock_guard<std::mutex> lock(mu_);
    Ring& ring = rings_[tid];
    if (ring.size == 0 ||
        ring.at(ring.head).state != NmpSlotState::Executed) {
        return false;
    }
    Slot& slot = ring.at(ring.head);
    *out = slot.result;
    slot.state = NmpSlotState::Free;
    ring.head = (ring.head + 1) % kNmpRingSlots;
    ring.size--;
    return true;
}

std::uint32_t
Nmp::spwr_batch(ThreadId tid, const McasOperand* ops, std::uint32_t n)
{
    std::uint32_t accepted = 0;
    while (accepted < n && spwr_post(tid, ops[accepted])) {
        accepted++;
    }
    doorbell(tid);
    return accepted;
}

// ------------------------------------------------------ legacy two-phase

void
Nmp::spwr(ThreadId tid, HeapOffset target, std::uint64_t expected,
          std::uint64_t swap)
{
    CXL_ASSERT(ring_occupancy(tid) == 0,
               "spwr while previous mCAS still in flight");
    bool posted = spwr_post(
        tid, McasOperand{.target = target, .expected = expected,
                         .swap = swap});
    CXL_ASSERT(posted, "empty ring rejected a post");
    (void)posted;
}

McasResult
Nmp::sprd(ThreadId tid)
{
    CXL_ASSERT(ring_occupancy(tid) != 0, "sprd without matching spwr");
    doorbell(tid);
    McasResult result;
    bool ok = poll(tid, &result);
    CXL_ASSERT(ok, "doorbell produced no completion");
    (void)ok;
    return result;
}

McasResult
Nmp::mcas(ThreadId tid, HeapOffset target, std::uint64_t expected,
          std::uint64_t swap)
{
    spwr(tid, target, expected, swap);
    return sprd(tid);
}

// ------------------------------------------------------ fault injection

void
Nmp::inject_stall(std::uint32_t doorbells)
{
    std::lock_guard<std::mutex> lock(mu_);
    stall_budget_ += doorbells;
}

void
Nmp::inject_delay(std::uint64_t extra_ns, std::uint32_t doorbells)
{
    std::lock_guard<std::mutex> lock(mu_);
    delay_ns_ = extra_ns;
    delay_budget_ += doorbells;
}

std::uint32_t
Nmp::stall_remaining() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stall_budget_;
}

std::uint64_t
Nmp::take_injected_delay_ns()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (delay_budget_ == 0) {
        return 0;
    }
    delay_budget_--;
    return delay_ns_;
}

// -------------------------------------------------------- introspection

std::uint32_t
Nmp::posted_occupancy(ThreadId tid) const
{
    CXL_ASSERT(tid != kNoThread && tid <= kMaxThreads, "bad thread id");
    std::lock_guard<std::mutex> lock(mu_);
    const Ring& ring = rings_[tid];
    std::uint32_t posted = 0;
    for (std::uint32_t i = 0; i < ring.size; i++) {
        if (ring.at(ring.head + i).state == NmpSlotState::Posted) {
            posted++;
        }
    }
    return posted;
}

std::uint32_t
Nmp::ring_occupancy(ThreadId tid) const
{
    CXL_ASSERT(tid != kNoThread && tid <= kMaxThreads, "bad thread id");
    std::lock_guard<std::mutex> lock(mu_);
    return rings_[tid].size;
}

std::uint32_t
Nmp::ring_snapshot(ThreadId tid, NmpSlotView* out, std::uint32_t cap) const
{
    CXL_ASSERT(tid != kNoThread && tid <= kMaxThreads, "bad thread id");
    std::lock_guard<std::mutex> lock(mu_);
    const Ring& ring = rings_[tid];
    std::uint32_t n = ring.size < cap ? ring.size : cap;
    for (std::uint32_t i = 0; i < n; i++) {
        const Slot& slot = ring.at(ring.head + i);
        out[i] = NmpSlotView{.op = slot.op, .state = slot.state,
                             .result = slot.result};
    }
    return n;
}

void
Nmp::reset_ring(ThreadId tid)
{
    CXL_ASSERT(tid != kNoThread && tid <= kMaxThreads, "bad thread id");
    std::lock_guard<std::mutex> lock(mu_);
    rings_[tid] = Ring{};
}

void
Nmp::publish_metrics(obs::MetricsRegistry& registry,
                     std::string_view prefix) const
{
    obs::MetricsSnapshot snap;
    obs::Histogram occ;
    {
        std::lock_guard<std::mutex> lock(mu_);
        snap.counters.emplace_back("nmp.ops", ops_);
        snap.counters.emplace_back("nmp.conflicts", conflicts_);
        snap.counters.emplace_back("nmp.batches", batches_);
        if (stalled_ != 0) {
            snap.counters.emplace_back("nmp.stalled_doorbells", stalled_);
        }
        occ = occupancy_.snapshot();
    }
    snap.histograms.emplace_back("nmp.batch_occupancy", occ);
    registry.absorb(snap, prefix);
}

} // namespace cxl
