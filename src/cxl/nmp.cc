#include "cxl/nmp.h"
#include <atomic>

#include "common/assert.h"

namespace cxl {

void
Nmp::spwr(ThreadId tid, HeapOffset target, std::uint64_t expected,
          std::uint64_t swap)
{
    CXL_ASSERT(tid != kNoThread && tid <= kMaxThreads, "bad thread id");
    CXL_ASSERT(device_->in_sync_region(target),
               "mCAS target outside device-biased region");
    CXL_ASSERT(target % 8 == 0, "mCAS target must be 8-byte aligned");
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[tid];
    CXL_ASSERT(!slot.valid, "spwr while previous mCAS still in flight");
    slot.target = target;
    slot.expected = expected;
    slot.swap = swap;
    slot.valid = true;
    slot.doomed = false;
    // Fig. 6(b): an operation that arrives while another spwr-sprd pair is
    // in progress on the same target address is failed.
    for (std::uint32_t other = 1; other <= kMaxThreads; other++) {
        if (other == tid) {
            continue;
        }
        const Slot& competitor = slots_[other];
        if (competitor.valid && competitor.target == target) {
            slot.doomed = true;
            break;
        }
    }
}

McasResult
Nmp::sprd(ThreadId tid)
{
    CXL_ASSERT(tid != kNoThread && tid <= kMaxThreads, "bad thread id");
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[tid];
    CXL_ASSERT(slot.valid, "sprd without matching spwr");
    slot.valid = false;
    ops_++;
    if (slot.doomed) {
        conflicts_++;
        return McasResult{.success = false, .conflict = true, .previous = 0};
    }
    std::atomic_ref<std::uint64_t> word(
        *reinterpret_cast<std::uint64_t*>(device_->raw(slot.target)));
    std::uint64_t previous = word.load(std::memory_order_acquire);
    bool success = previous == slot.expected;
    if (success) {
        // "On an mCAS success, all subsequent sprd and spwr operations are
        // stalled until the swap value is written" — under mu_, the write
        // completes before any other engine work.
        word.store(slot.swap, std::memory_order_release);
    }
    return McasResult{.success = success, .conflict = false,
                      .previous = previous};
}

McasResult
Nmp::mcas(ThreadId tid, HeapOffset target, std::uint64_t expected,
          std::uint64_t swap)
{
    spwr(tid, target, expected, swap);
    return sprd(tid);
}

} // namespace cxl
