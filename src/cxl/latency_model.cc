#include "cxl/latency_model.h"

namespace cxl {

LatencyModel
LatencyModel::local_dram()
{
    LatencyModel m;
    m.read_ns = 112;        // paper §5.4 MLC measurement
    m.write_ns = 60;
    m.cached_ns = 2;
    m.flush_ns = 80;
    m.fence_ns = 20;
    m.cas_ns = 30;
    m.cas_contended_ns = 70;
    m.mcas_ns = 0;          // not applicable
    m.mcas_conflict_ns = 0;
    return m;
}

LatencyModel
LatencyModel::cxl_hwcc()
{
    LatencyModel m;
    m.read_ns = 357;        // paper §5.4 MLC measurement
    m.write_ns = 180;
    m.cached_ns = 2;        // HWcc lines may live in CPU cache
    m.flush_ns = 250;
    m.fence_ns = 20;
    m.cas_ns = 100;         // sw_cas in Fig. 11: line resident in CPU cache
    m.cas_contended_ns = 600; // back-invalidation ping-pong
    m.mcas_ns = 0;
    m.mcas_conflict_ns = 0;
    return m;
}

LatencyModel
LatencyModel::cxl_mcas()
{
    LatencyModel m;
    m.read_ns = 357;
    m.write_ns = 180;
    m.cached_ns = 2;        // SWcc lines may still be CPU-cached
    m.flush_ns = 250;
    m.fence_ns = 20;
    m.cas_ns = 0;           // no HWcc: plain CAS unavailable
    m.cas_contended_ns = 0;
    m.mcas_ns = 2300;       // Fig. 11 hw_cas p50 at 1 thread
    m.mcas_conflict_ns = 180; // engine scales mildly under contention
    // The engine's serialized compare-and-swap pass per extra operand in a
    // batched doorbell; the ~2.3 us round trip is paid once per batch.
    m.mcas_batch_slot_ns = 150;
    return m;
}

LatencyModel
LatencyModel::cxl_flush_cas()
{
    LatencyModel m = cxl_hwcc();
    // sw_flush_cas: every CAS preceded by a flush of the target line, so the
    // CAS itself always misses to CXL memory.
    m.cas_ns = 357 + 250;
    m.cas_contended_ns = 1400; // degrades faster than the NMP under load
    return m;
}

} // namespace cxl
