#include "cxl/litmus/litmus.h"

#include <cstring>

#include "common/assert.h"

namespace cxl::litmus {

namespace {

DeviceConfig
litmus_device()
{
    return DeviceConfig{.size = 1 << 20,
                        .mode = CoherenceMode::PartialHwcc,
                        .sync_region_size = 64 << 10,
                        .simulate_cache = true};
}

} // namespace

World::World(int threads, const CacheKnobs& knobs)
    : dev_(litmus_device()), nmp_(&dev_)
{
    CXL_ASSERT(threads >= 1 && threads <= kMaxThreads,
               "litmus world supports 1..4 threads");
    sessions_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; t++) {
        sessions_.emplace_back(&dev_, &nmp_,
                               static_cast<ThreadId>(t + 1));
        sessions_.back().cache().set_knobs(knobs);
    }
}

std::uint64_t
World::device_at(HeapOffset offset) const
{
    std::uint64_t value;
    std::memcpy(&value, dev_.raw(offset), sizeof value);
    return value;
}

std::uint64_t
World::device_value(int v) const
{
    return device_at(var(v));
}

std::function<void(sched::Run&)>
factory(const Shape& shape)
{
    return [shape](sched::Run& run) {
        auto w = std::make_shared<World>(shape.threads, shape.knobs);
        for (int t = 0; t < shape.threads; t++) {
            run.spawn(shape.name + ":T" + std::to_string(t),
                      [w, t, shape] { shape.body(*w, t); });
        }
        run.at_end([w, shape](const sched::RunEnd&) {
            std::string bad = shape.forbidden(*w);
            if (!bad.empty()) {
                throw sched::OracleFailure(shape.name +
                                           ": forbidden outcome reached: " +
                                           bad);
            }
        });
    };
}

sched::Result
check(const Shape& shape, const sched::Options& options)
{
    return sched::Explorer(options).run(factory(shape));
}

CacheKnobs
weak_knobs(bool fifo)
{
    CacheKnobs knobs;
    knobs.store_buffer_entries = 4;
    knobs.load_forwarding = true;
    knobs.fifo_drain = fifo;
    return knobs;
}

namespace {

constexpr int kX = 0;
constexpr int kY = 1;

/// Store buffering: w(x) || w(y), each thread then reads the other's
/// variable. Forbidden: both read the initial value — impossible once
/// each write is flushed AND fenced before the cross-read (the cycle
/// argument: T0.fence < T0.ld(y) < T1.fence < T1.ld(x) < T0.fence).
Shape
sb(const std::string& name, const CacheKnobs& knobs)
{
    Shape s;
    s.name = name;
    s.threads = 2;
    s.knobs = knobs;
    s.body = [](World& w, int t) {
        int mine = t == 0 ? kX : kY;
        int other = t == 0 ? kY : kX;
        w.st(t, mine, 1);
        w.flush_var(t, mine);
        w.fence(t);
        w.refetch(t, other);
        w.reg(t, 0) = w.ld(t, other);
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.reg(0, 0) == 0 && w.reg(1, 0) == 0) {
            return "r0 == 0 && r1 == 0 (both writes invisible)";
        }
        return "";
    };
    return s;
}

/// Message passing: data then flag, each flushed and fenced. Forbidden:
/// flag observed but data stale.
Shape
mp(const std::string& name, const CacheKnobs& knobs)
{
    Shape s;
    s.name = name;
    s.threads = 2;
    s.knobs = knobs;
    s.body = [](World& w, int t) {
        if (t == 0) {
            w.st(t, kX, 1);
            w.flush_var(t, kX);
            w.fence(t);
            w.st(t, kY, 1);
            w.flush_var(t, kY);
            w.fence(t);
        } else {
            w.refetch(t, kY);
            w.reg(t, 0) = w.ld(t, kY);
            w.refetch(t, kX);
            w.reg(t, 1) = w.ld(t, kX);
        }
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.reg(1, 0) == 1 && w.reg(1, 1) == 0) {
            return "flag seen but data stale (r0 == 1, r1 == 0)";
        }
        return "";
    };
    return s;
}

/// MP with ONE trailing fence covering both flushes — the exact pattern
/// flush_desc relies on: descriptor lines + deferred record share a
/// single fence. The flag only becomes durable at that fence, by which
/// point the data write-back completed too.
Shape
mp_coalesced(const std::string& name, const CacheKnobs& knobs)
{
    Shape s;
    s.name = name;
    s.threads = 2;
    s.knobs = knobs;
    s.body = [](World& w, int t) {
        if (t == 0) {
            w.st(t, kX, 1);
            w.st(t, kY, 1);
            w.flush_var(t, kX);
            w.flush_var(t, kY);
            w.fence(t); // one fence orders both write-backs
        } else {
            w.refetch(t, kY);
            w.reg(t, 0) = w.ld(t, kY);
            w.refetch(t, kX);
            w.reg(t, 1) = w.ld(t, kX);
        }
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.reg(1, 0) == 1 && w.reg(1, 1) == 0) {
            return "flag seen but data stale under coalesced fence";
        }
        return "";
    };
    return s;
}

/// Load buffering: reads must not observe writes that program-order-
/// follow the other thread's read. The model never reorders a load with
/// a later store (loads execute at their hook), so this holds under
/// every knob setting — documented as a property of the model, proven by
/// DFS.
Shape
lb(const std::string& name, const CacheKnobs& knobs)
{
    Shape s;
    s.name = name;
    s.threads = 2;
    s.knobs = knobs;
    s.body = [](World& w, int t) {
        int mine = t == 0 ? kX : kY;
        int other = t == 0 ? kY : kX;
        w.refetch(t, other);
        w.reg(t, 0) = w.ld(t, other);
        w.st(t, mine, 1);
        w.flush_var(t, mine);
        w.fence(t);
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.reg(0, 0) == 1 && w.reg(1, 0) == 1) {
            return "both loads saw the other thread's later store";
        }
        return "";
    };
    return s;
}

/// Independent reads of independent writes: the device is the single
/// serialization point, so the two readers must agree on the write
/// order (multi-copy atomicity holds in a CXL pod's shared medium).
Shape
iriw(const std::string& name, const CacheKnobs& knobs)
{
    Shape s;
    s.name = name;
    s.threads = 4;
    s.knobs = knobs;
    s.body = [](World& w, int t) {
        if (t == 0 || t == 1) {
            int mine = t == 0 ? kX : kY;
            w.st(t, mine, 1);
            w.flush_var(t, mine);
            w.fence(t);
            return;
        }
        int first = t == 2 ? kX : kY;
        int second = t == 2 ? kY : kX;
        w.refetch(t, first);
        w.reg(t, 0) = w.ld(t, first);
        w.refetch(t, second);
        w.reg(t, 1) = w.ld(t, second);
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.reg(2, 0) == 1 && w.reg(2, 1) == 0 && w.reg(3, 0) == 1 &&
            w.reg(3, 1) == 0) {
            return "readers disagree on the write order";
        }
        return "";
    };
    return s;
}

/// Coherent read-read: two reads of the same location by one thread
/// (no intervening refetch) must not go backwards in time.
Shape
corr(const std::string& name, const CacheKnobs& knobs)
{
    Shape s;
    s.name = name;
    s.threads = 2;
    s.knobs = knobs;
    s.body = [](World& w, int t) {
        if (t == 0) {
            w.st(t, kX, 1);
            w.flush_var(t, kX);
            w.fence(t);
        } else {
            w.refetch(t, kX);
            w.reg(t, 0) = w.ld(t, kX);
            w.reg(t, 1) = w.ld(t, kX);
        }
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.reg(1, 0) == 1 && w.reg(1, 1) == 0) {
            return "read went backwards (1 then 0)";
        }
        return "";
    };
    return s;
}

/// Coherent write-write: same-location stores retire in program order
/// even under the non-FIFO drain knob (same-line entries always drain
/// in order — the constraint drain_entry enforces).
Shape
coww(const std::string& name, const CacheKnobs& knobs)
{
    Shape s;
    s.name = name;
    s.threads = 1;
    s.knobs = knobs;
    s.body = [](World& w, int t) {
        w.st(t, kX, 1);
        w.st(t, kX, 2);
        w.flush_var(t, kX);
        w.fence(t);
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.device_value(kX) != 2) {
            return "same-line stores retired out of order (device x = " +
                   std::to_string(w.device_value(kX)) + ")";
        }
        return "";
    };
    return s;
}

/// R: w(x); w(y) || w(y'); r(x). If the second thread's y-write is the
/// final one it serialized after the first thread's, whose x-write was
/// already durable — the read must see it.
Shape
shape_r(const std::string& name, const CacheKnobs& knobs)
{
    Shape s;
    s.name = name;
    s.threads = 2;
    s.knobs = knobs;
    s.body = [](World& w, int t) {
        if (t == 0) {
            w.st(t, kX, 1);
            w.flush_var(t, kX);
            w.fence(t);
            w.st(t, kY, 1);
            w.flush_var(t, kY);
            w.fence(t);
        } else {
            w.st(t, kY, 2);
            w.flush_var(t, kY);
            w.fence(t);
            w.refetch(t, kX);
            w.reg(t, 0) = w.ld(t, kX);
        }
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.device_value(kY) == 2 && w.reg(1, 0) == 0) {
            return "y final from T1 but T1 missed T0's earlier x";
        }
        return "";
    };
    return s;
}

/// S: w(x=2); w(y=1) || r(y); w(x=1). Seeing the flag implies the
/// reader's own later x-write serialized after the writer's — x cannot
/// finish as 2.
Shape
shape_s(const std::string& name, const CacheKnobs& knobs)
{
    Shape s;
    s.name = name;
    s.threads = 2;
    s.knobs = knobs;
    s.body = [](World& w, int t) {
        if (t == 0) {
            w.st(t, kX, 2);
            w.flush_var(t, kX);
            w.fence(t);
            w.st(t, kY, 1);
            w.flush_var(t, kY);
            w.fence(t);
        } else {
            w.refetch(t, kY);
            w.reg(t, 0) = w.ld(t, kY);
            w.st(t, kX, 1);
            w.flush_var(t, kX);
            w.fence(t);
        }
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.reg(1, 0) == 1 && w.device_value(kX) == 2) {
            return "flag seen but writer's x outlived reader's x";
        }
        return "";
    };
    return s;
}

/// 2+2W: both threads write both variables in opposite orders. A fence
/// completes a thread's pending write-backs as one unit, so the final
/// state cannot interleave halves of each thread's pair.
Shape
two_plus_two_w(const std::string& name, const CacheKnobs& knobs)
{
    Shape s;
    s.name = name;
    s.threads = 2;
    s.knobs = knobs;
    s.body = [](World& w, int t) {
        if (t == 0) {
            w.st(t, kX, 1);
            w.st(t, kY, 2);
            w.flush_var(t, kX);
            w.flush_var(t, kY);
            w.fence(t);
        } else {
            w.st(t, kY, 1);
            w.st(t, kX, 2);
            w.flush_var(t, kY);
            w.flush_var(t, kX);
            w.fence(t);
        }
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.device_value(kX) == 1 && w.device_value(kY) == 1) {
            return "each thread's first write lost to the other's second";
        }
        return "";
    };
    return s;
}

/// The allocator's actual publication pattern: dirty a SUBSET of a
/// 9-line descriptor, publish via flush_dirty (only dirtied lines) + one
/// fence + coherent flag. A reader that sees the flag must see every
/// dirtied line — the litmus guard for flush_desc's dirty-only elision.
Shape
swcc_publish_dirty_only(const std::string& name, const CacheKnobs& knobs)
{
    Shape s;
    s.name = name;
    s.threads = 2;
    s.knobs = knobs;
    s.body = [](World& w, int t) {
        HeapOffset line0 = World::kDescBase;
        HeapOffset line2 = World::kDescBase + 128;
        if (t == 0) {
            w.mem(t).store<std::uint64_t>(line0, 1);
            w.mem(t).store<std::uint64_t>(line2, 2);
            w.mem(t).flush_dirty(World::kDescBase, World::kDescLen);
            w.fence(t);
            w.mem(t).atomic_store64(World::kFlag, 1);
        } else {
            w.reg(t, 0) = w.mem(t).atomic_load64(World::kFlag);
            if (w.reg(t, 0) == 1) {
                w.mem(t).flush(line0, 8);
                w.mem(t).flush(line2, 8);
                w.reg(t, 1) = w.mem(t).load<std::uint64_t>(line0);
                w.reg(t, 2) = w.mem(t).load<std::uint64_t>(line2);
            }
        }
    };
    s.forbidden = [](World& w) -> std::string {
        if (w.reg(1, 0) == 1 &&
            (w.reg(1, 1) != 1 || w.reg(1, 2) != 2)) {
            return "published descriptor observed with stale lines (" +
                   std::to_string(w.reg(1, 1)) + ", " +
                   std::to_string(w.reg(1, 2)) + ")";
        }
        return "";
    };
    return s;
}

} // namespace

std::vector<Shape>
disciplined_shapes()
{
    CacheKnobs strong; // defaults: synchronous, no buffer
    CacheKnobs fifo = weak_knobs(/*fifo=*/true);
    CacheKnobs wild = weak_knobs(/*fifo=*/false);
    return {
        sb("SB", strong),
        sb("SB+buf", fifo),
        sb("SB+buf-nonfifo", wild),
        mp("MP", strong),
        mp("MP+buf", fifo),
        mp_coalesced("MpCoalesced", strong),
        mp_coalesced("MpCoalesced+buf", fifo),
        lb("LB", strong),
        lb("LB+buf-nonfifo", wild),
        iriw("IRIW", strong),
        iriw("IRIW+buf", fifo),
        corr("CoRR", strong),
        corr("CoRR+buf", fifo),
        coww("CoWW+buf", fifo),
        coww("CoWW+buf-nonfifo", wild),
        shape_r("R+buf", fifo),
        shape_s("S+buf", fifo),
        two_plus_two_w("2+2W", strong),
        two_plus_two_w("2+2W+buf", fifo),
        swcc_publish_dirty_only("SwccPublishDirtyOnly", strong),
        swcc_publish_dirty_only("SwccPublishDirtyOnly+buf", fifo),
    };
}

} // namespace cxl::litmus
