/// @file
/// Litmus-test harness for the SWcc memory model (ROADMAP item 5).
///
/// A Shape is a classic multi-thread litmus test (SB, LB, MP, IRIW, CoRR,
/// CoWW, R, S, 2+2W, ...) expressed against MemSession + ThreadCache with
/// configurable reordering knobs (cxl::CacheKnobs: bounded store buffer,
/// load forwarding, FIFO vs non-FIFO drain). Each shape declares its
/// forbidden final outcomes; the sched::Explorer runs the shape's threads
/// under Random/PCT/DFS strategies and an at_end oracle fails the
/// schedule if a forbidden outcome is ever reached. DFS proves the
/// outcome unreachable over the bounded interleaving space; the
/// deliberately-weakened variants (a skipped flush or fence) must reach
/// it and replay bit-for-bit.
///
/// The proofs these tests encode are what license the allocator's fence
/// elisions: flush_desc's dirty-only write-back (SwccPublishDirtyOnly),
/// the single trailing fence covering multiple flushes (MpCoalesced), and
/// the deferred recovery record (record rides the publication fence).

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cxl/cache_model.h"
#include "cxl/mem_ops.h"
#include "cxl/nmp.h"
#include "sched/explorer.h"

namespace cxl::litmus {

/// Shared-memory world for one litmus run: a small simulated device with
/// per-thread sessions (simulate_cache on, knobs per shape) plus a
/// register file for observed values. Variables live on distinct SWcc
/// cachelines; the flag used by message-passing shapes lives in the
/// always-coherent sync region so its visibility is a single
/// serialization point (the CAS-word analog).
class World {
  public:
    static constexpr int kMaxThreads = 4;
    static constexpr int kRegs = 4;

    /// Coherent flag word (sync region).
    static constexpr HeapOffset kFlag = 4096;
    /// A 9-line "descriptor" range, mirroring Layout::kSmallDescStride:
    /// the SwccPublishDirtyOnly shape publishes it via flush_dirty.
    static constexpr HeapOffset kDescBase = 128 << 10;
    static constexpr std::uint64_t kDescLen = 576;

    World(int threads, const CacheKnobs& knobs);

    MemSession& mem(int t) { return sessions_[static_cast<std::size_t>(t)]; }
    std::uint64_t& reg(int t, int i) { return regs_[t][i]; }
    std::uint64_t reg(int t, int i) const { return regs_[t][i]; }

    /// SWcc variable v's device offset: distinct cachelines, staggered so
    /// neighboring variables also land in different cache sets.
    static HeapOffset
    var(int v)
    {
        return (64 << 10) + static_cast<HeapOffset>(v) * 192;
    }

    /// The value variable v holds on the DEVICE right now (bypasses every
    /// cache): what a post-crash reader would find.
    std::uint64_t device_value(int v) const;
    std::uint64_t device_at(HeapOffset offset) const;

    // Litmus primitives, thread t acting:
    void
    st(int t, int v, std::uint64_t value)
    {
        mem(t).store<std::uint64_t>(var(v), value);
    }
    std::uint64_t ld(int t, int v) { return mem(t).load<std::uint64_t>(var(v)); }
    void flush_var(int t, int v) { mem(t).flush(var(v), 8); }
    /// Reader-side SWcc refetch: identical to flush_var, named for the
    /// protocol role (invalidate own stale copy before loading).
    void refetch(int t, int v) { mem(t).flush(var(v), 8); }
    void fence(int t) { mem(t).fence(); }

  private:
    Device dev_;
    Nmp nmp_;
    std::vector<MemSession> sessions_;
    std::array<std::array<std::uint64_t, kRegs>, kMaxThreads> regs_{};
};

/// One litmus test: N threads, a per-thread program, and a predicate over
/// the final state. `forbidden` returns an empty string when the outcome
/// is allowed, else a description of the forbidden outcome reached (which
/// becomes the OracleFailure message).
struct Shape {
    std::string name;
    int threads = 2;
    CacheKnobs knobs;
    std::function<void(World&, int)> body;
    std::function<std::string(World&)> forbidden;
};

/// Schedule factory for the explorer: fresh World per schedule, one
/// vthread per litmus thread, forbidden-outcome oracle at_end.
std::function<void(sched::Run&)> factory(const Shape& shape);

/// Explores @p shape under @p options. Result::ok means no explored
/// schedule reached a forbidden outcome.
sched::Result check(const Shape& shape, const sched::Options& options);

/// The disciplined shape catalog (every forbidden outcome unreachable
/// under the SWcc flush/fence discipline). Used by the fast suite, the
/// DFS suite and the TSan job so the list is defined once.
std::vector<Shape> disciplined_shapes();

/// Store-buffer knobs used by the "weak" variants: bounded buffer with
/// delayed drain, forwarding on, FIFO (TSO-like) or non-FIFO drain.
CacheKnobs weak_knobs(bool fifo = true);

} // namespace cxl::litmus
