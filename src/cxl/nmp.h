/// @file
/// Near-memory-processing (NMP) mCAS engine (paper §4, Fig. 6).
///
/// Substitution note: the paper implements this in the FPGA of an Intel
/// Agilex 7 CXL Type-2 board. We reproduce the *interface contract* and the
/// *conflict semantics*:
///  - a thread initiates an mCAS by writing a 64 B operand block (expected
///    value, swap value, target address) to its private cacheline in the
///    special-write (spwr) region, then reading a 16 B response (success
///    bit + previous value) from its cacheline in the special-read (sprd)
///    region;
///  - only one spwr-sprd pair may be in flight per target address: a
///    competing operation that arrives while another targets the same
///    address is failed (Fig. 6(b));
///  - all engine work is serialized at the device, which is what provides
///    atomicity without any cache coherence.
///
/// The two-phase spwr()/sprd() API is exposed so tests can interleave
/// competing operations deterministically; mcas() is the convenience wrapper
/// the allocator uses.

#pragma once

#include <array>
#include <cstdint>
#include <mutex>

#include "cxl/device.h"
#include "cxl/types.h"

namespace cxl {

/// Outcome of one mCAS.
struct McasResult {
    /// True if the swap was performed.
    bool success = false;
    /// True if the operation was failed because a competing spwr-sprd pair
    /// targeted the same address (hardware does not retry; software must).
    bool conflict = false;
    /// Value observed at the target (undefined when conflict).
    std::uint64_t previous = 0;
};

/// The simulated NMP unit managing the device-biased region.
class Nmp {
  public:
    explicit Nmp(Device* device) : device_(device) {}

    /// Phase 1: thread @p tid posts operands to its spwr cacheline.
    /// Returns false (operation already doomed) if a competing in-flight
    /// operation targets the same address.
    void spwr(ThreadId tid, HeapOffset target, std::uint64_t expected,
              std::uint64_t swap);

    /// Phase 2: thread @p tid reads its sprd cacheline, triggering the
    /// compare-and-swap.
    McasResult sprd(ThreadId tid);

    /// Full spwr+sprd round trip.
    McasResult mcas(ThreadId tid, HeapOffset target, std::uint64_t expected,
                    std::uint64_t swap);

    std::uint64_t total_ops() const { return ops_; }
    std::uint64_t total_conflicts() const { return conflicts_; }

  private:
    struct Slot {
        HeapOffset target = 0;
        std::uint64_t expected = 0;
        std::uint64_t swap = 0;
        bool valid = false;
        bool doomed = false;
    };

    Device* device_;
    /// The device serializes engine work; one mutex models that pipeline.
    std::mutex mu_;
    /// Register array: one slot per thread (its spwr/sprd cachelines).
    std::array<Slot, kMaxThreads + 1> slots_{};
    std::uint64_t ops_ = 0;
    std::uint64_t conflicts_ = 0;
};

} // namespace cxl
