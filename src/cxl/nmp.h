/// @file
/// Near-memory-processing (NMP) mCAS engine (paper §4, Fig. 6), batched.
///
/// Substitution note: the paper implements this in the FPGA of an Intel
/// Agilex 7 CXL Type-2 board. We reproduce the *interface contract* and the
/// *conflict semantics*:
///  - each thread owns a ring of kNmpRingSlots operand slots in the
///    special-write (spwr) region (one 64 B cacheline per slot: expected
///    value, swap value, target address) and matching response slots in the
///    special-read (sprd) region (success bit + previous value);
///  - a thread stages one or more independent operands into its ring
///    (spwr_post), then *doorbells* the ring: the device executes every
///    staged operand of that thread in posting order within one serialized
///    engine pass — one device round trip, however many operands it
///    carries. Completions are harvested in FIFO order with poll();
///  - only one staged-but-unexecuted operand may exist per target address
///    pod-wide: an operand that arrives (is posted) while another staged
///    operand — any thread's, including an earlier slot of the same ring —
///    targets the same address is failed (Fig. 6(b)). The engine reports
///    the failure as a conflict at execution time; hardware does not retry,
///    software must (see McasBackoff);
///  - all engine work is serialized at the device, which is what provides
///    atomicity without any cache coherence.
///
/// The spwr()/sprd() pair is the legacy single-operand path (a ring of
/// one), kept so the original two-phase tests and the uncontended allocator
/// fast path read exactly as the paper describes. spwr_post()/doorbell()/
/// poll() expose the same phases batched, and let tests interleave
/// competing batches deterministically; spwr_batch() and mcas() are the
/// convenience wrappers consumers use.
///
/// Persistence: the ring lives in device memory, which survives host and
/// process crashes (paper §2.1 failure model). Recovery code inspects a
/// crashed thread's ring via ring_snapshot() to learn exactly which staged
/// operands executed, then releases it with reset_ring().

#pragma once

#include <array>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string_view>

#include "cxl/device.h"
#include "cxl/types.h"
#include "obs/histogram.h"

namespace obs {
class MetricsRegistry;
}

namespace cxl {

/// Operand slots per thread ring (spwr cachelines per thread).
inline constexpr std::uint32_t kNmpRingSlots = 8;

/// One mCAS operand as staged in a spwr slot.
struct McasOperand {
    HeapOffset target = 0;
    std::uint64_t expected = 0;
    std::uint64_t swap = 0;
};

/// Outcome of one mCAS.
struct McasResult {
    /// True if the swap was performed.
    bool success = false;
    /// True if the operation was failed because a competing staged operand
    /// targeted the same address (hardware does not retry; software must).
    bool conflict = false;
    /// Value observed at the target (undefined when conflict).
    std::uint64_t previous = 0;
};

/// Lifecycle of a ring slot.
enum class NmpSlotState : std::uint8_t {
    Free,     ///< no operand
    Posted,   ///< staged by spwr_post, doorbell not yet processed it
    Executed, ///< engine executed it; result awaits poll()
};

/// Introspection view of one live ring slot (recovery + tests).
struct NmpSlotView {
    McasOperand op;
    NmpSlotState state = NmpSlotState::Free;
    /// Valid only when state == Executed.
    McasResult result;
};

/// A persistently stalled NMP engine: the doorbell retry ladder
/// (MemSession, kNmpStallRetryLimit attempts with McasBackoff waits)
/// exhausted its bound without the engine answering. This is the typed
/// device-failure report: the thread's staged operands are still in its
/// ring (device memory — recovery inspects them via ring_snapshot and
/// releases them with reset_ring once the engine is back or the device is
/// written off).
class NmpStallError : public std::exception {
  public:
    explicit NmpStallError(ThreadId tid) : tid_(tid) {}

    ThreadId tid() const { return tid_; }

    const char*
    what() const noexcept override
    {
        return "NMP engine stalled: doorbell retry ladder exhausted";
    }

  private:
    ThreadId tid_;
};

/// Bounded exponential backoff for mCAS conflict-retry loops. A conflicted
/// operand means another staged operand beat us to the target; retrying
/// immediately re-conflicts against the same in-flight window, so software
/// waits 2^k * base (capped) before resubmitting. Returns the wait in
/// simulated nanoseconds so callers on the latency-model path can charge it.
///
/// Each wait carries deterministic bounded jitter in [0, nominal/2): two
/// threads that conflict on the same target back off by the same nominal
/// 2^k * base, so without jitter their retries re-collide in lock-step
/// forever (most visibly under the sched explorer, whose yield ordering is
/// deterministic). The jitter stream is a pure function of the seed — same
/// seed, same waits — so replayed schedules stay bit-for-bit identical.
class McasBackoff {
  public:
    static constexpr std::uint64_t kBaseNs = 200;
    static constexpr std::uint64_t kMaxNs = 12'800; // base << 6

    McasBackoff() : McasBackoff(0) {}

    /// Seeds the jitter stream; callers pass their ThreadId so competing
    /// threads draw decorrelated waits.
    explicit McasBackoff(std::uint64_t seed)
    {
        rng_ = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        if (rng_ == 0) {
            rng_ = 1;
        }
    }

    /// Next wait: nominal 2^k * base (growing 2x per call until the cap)
    /// plus jitter < nominal/2. Total is bounded by kMaxNs * 3 / 2.
    std::uint64_t
    next_ns()
    {
        std::uint64_t ns = kBaseNs << shift_;
        if (ns < kMaxNs) {
            shift_++;
        }
        // xorshift64: cheap, deterministic, never zero.
        rng_ ^= rng_ << 13;
        rng_ ^= rng_ >> 7;
        rng_ ^= rng_ << 17;
        return ns + rng_ % (ns / 2);
    }

    /// Call after a success so the next conflict starts small again (the
    /// jitter stream keeps advancing — reset restores the *scale*, not
    /// the sequence).
    void reset() { shift_ = 0; }

  private:
    std::uint32_t shift_ = 0;
    std::uint64_t rng_;
};

/// The simulated NMP unit managing the device-biased region.
class Nmp {
  public:
    explicit Nmp(Device* device) : device_(device) {}

    // ---- legacy two-phase path (single operand; a ring of one) ----

    /// Phase 1: thread @p tid posts operands to its spwr ring, which must
    /// be empty (one in-flight operation, the pre-batching discipline).
    /// The operand is conflict-checked against every staged operand
    /// pod-wide; a doomed operand is reported as a conflict by sprd().
    void spwr(ThreadId tid, HeapOffset target, std::uint64_t expected,
              std::uint64_t swap);

    /// Phase 2: thread @p tid reads its sprd cacheline, triggering the
    /// compare-and-swap (doorbell + poll of a one-operand ring).
    McasResult sprd(ThreadId tid);

    /// Full spwr+sprd round trip.
    McasResult mcas(ThreadId tid, HeapOffset target, std::uint64_t expected,
                    std::uint64_t swap);

    // ---- batched path ----

    /// Stages @p op into the next free slot of @p tid's ring without
    /// ringing the doorbell. Returns false if the ring is full (the caller
    /// must doorbell + poll first). Conflict detection happens *here*, at
    /// arrival: an operand posted while any staged operand targets the same
    /// address is doomed (Fig. 6(b)), including an earlier operand of the
    /// same ring.
    bool spwr_post(ThreadId tid, const McasOperand& op);

    /// Rings @p tid's doorbell: the engine executes every posted operand of
    /// that ring, in posting order, within one serialized pass (one device
    /// round trip regardless of occupancy). Returns the number executed.
    std::uint32_t doorbell(ThreadId tid);

    /// Harvests the oldest executed operand's result into @p out. Returns
    /// false when no executed result is pending. Results are FIFO.
    bool poll(ThreadId tid, McasResult* out);

    /// Convenience: stages up to @p n operands (stopping early if the ring
    /// fills) and doorbells once. Returns the number accepted; the caller
    /// polls that many results.
    std::uint32_t spwr_batch(ThreadId tid, const McasOperand* ops,
                             std::uint32_t n);

    // ---- fault injection (pod fault layer; see pod/faults.h) ----

    /// Arms an engine stall: the next @p doorbells doorbell rings that
    /// find posted operands are ignored (the engine does not answer;
    /// nothing executes). Empty doorbells do not consume the budget.
    /// Sessions see doorbell() return 0 with operands still posted and
    /// climb their retry ladder (kNmpStallRetryLimit). Additive.
    void inject_stall(std::uint32_t doorbells);

    /// Arms an engine slowdown: the next @p doorbells *answered* doorbells
    /// each report @p extra_ns of additional simulated latency, which the
    /// session charges on top of the modeled round trip. Additive.
    void inject_delay(std::uint64_t extra_ns, std::uint32_t doorbells);

    /// Doorbell rings the stall budget still covers.
    std::uint32_t stall_remaining() const;

    /// Extra ns the session must charge for the doorbell it just rang
    /// (consumes one armed delay; 0 when none armed).
    std::uint64_t take_injected_delay_ns();

    /// Doorbell rings swallowed by injected stalls so far.
    std::uint64_t total_stalled_doorbells() const { return stalled_; }

    // ---- recovery / test introspection ----

    /// Live (posted + executed-unpolled) operands in @p tid's ring.
    std::uint32_t ring_occupancy(ThreadId tid) const;

    /// Operands of @p tid's ring still in Posted state (staged, doorbell
    /// not yet answered) — nonzero after a stalled doorbell, which is how
    /// the session distinguishes "stall" from "nothing to execute".
    std::uint32_t posted_occupancy(ThreadId tid) const;

    /// Copies up to @p cap live slots of @p tid's ring, oldest first.
    /// Recovery uses this to learn which operands of a crashed thread's
    /// batch were staged and which executed (the ring is device memory and
    /// survives the crash).
    std::uint32_t ring_snapshot(ThreadId tid, NmpSlotView* out,
                                std::uint32_t cap) const;

    /// Frees every slot of @p tid's ring, discarding staged operands and
    /// unpolled results. Called when a crashed thread's slot is adopted,
    /// after recovery has inspected the ring: a dead thread's staged
    /// operands must stop dooming the rest of the pod.
    void reset_ring(ThreadId tid);

    // ---- engine statistics ----

    std::uint64_t total_ops() const { return ops_; }
    std::uint64_t total_conflicts() const { return conflicts_; }
    /// Doorbell rings that executed at least one operand.
    std::uint64_t total_batches() const { return batches_; }

    /// Publishes engine counters ("nmp.ops", "nmp.conflicts",
    /// "nmp.batches") and the per-doorbell occupancy histogram
    /// ("nmp.batch_occupancy") into @p registry, optionally under
    /// @p prefix. Call at quiesce points.
    void publish_metrics(obs::MetricsRegistry& registry,
                         std::string_view prefix = {}) const;

  private:
    struct Slot {
        McasOperand op;
        McasResult result;
        NmpSlotState state = NmpSlotState::Free;
        bool doomed = false;
    };

    /// One thread's spwr/sprd ring: a FIFO of kNmpRingSlots slots.
    struct Ring {
        std::array<Slot, kNmpRingSlots> slots{};
        std::uint32_t head = 0; ///< oldest live slot
        std::uint32_t size = 0; ///< live (posted + executed) slots

        Slot& at(std::uint32_t i) { return slots[i % kNmpRingSlots]; }
        const Slot&
        at(std::uint32_t i) const
        {
            return slots[i % kNmpRingSlots];
        }
    };

    /// Executes one staged operand (engine pass body). Caller holds mu_.
    void execute_locked(Slot& slot);

    Device* device_;
    /// The device serializes engine work; one mutex models that pipeline.
    mutable std::mutex mu_;
    /// Per-thread operand rings (the spwr/sprd region contents).
    std::array<Ring, kMaxThreads + 1> rings_{};
    std::uint64_t ops_ = 0;
    std::uint64_t conflicts_ = 0;
    std::uint64_t batches_ = 0;
    // Fault-injection state (guarded by mu_ except the stat counter).
    std::uint32_t stall_budget_ = 0;
    std::uint32_t delay_budget_ = 0;
    std::uint64_t delay_ns_ = 0;
    std::uint64_t stalled_ = 0;
    /// Operands executed per doorbell (batch occupancy), recorded under mu_.
    obs::Histogram occupancy_;
};

} // namespace cxl
