#include "cxl/device.h"

#include <cstring>

#include "common/assert.h"
#include "common/cacheline.h"

namespace cxl {

const char*
to_string(CoherenceMode mode)
{
    switch (mode) {
      case CoherenceMode::FullHwcc:
        return "full-hwcc";
      case CoherenceMode::PartialHwcc:
        return "partial-hwcc";
      case CoherenceMode::NoHwcc:
        return "no-hwcc(mcas)";
    }
    return "?";
}

Device::Device(const DeviceConfig& config)
    : config_(config)
{
    CXL_FATAL_IF(config_.size == 0, "device size must be nonzero");
    CXL_FATAL_IF(config_.size % kPageSize != 0,
                 "device size must be page aligned");
    CXL_FATAL_IF(config_.sync_region_size > config_.size,
                 "sync region larger than device");
    arena_ = std::make_unique<std::byte[]>(config_.size);
    // A fresh device is zero-filled: cxlalloc relies on zeroed memory being
    // a valid, initialized heap (paper §4).
    std::memset(arena_.get(), 0, config_.size);
    std::uint64_t pages = config_.size / kPageSize;
    commit_bitmap_ = std::vector<std::atomic<std::uint64_t>>((pages + 63) / 64);
    for (auto& word : commit_bitmap_) {
        word.store(0, std::memory_order_relaxed);
    }
}

void
Device::note_committed(HeapOffset offset, std::uint64_t len)
{
    CXL_ASSERT(offset + len <= config_.size, "commit past end of device");
    std::uint64_t first = offset / kPageSize;
    std::uint64_t last = (offset + len + kPageSize - 1) / kPageSize;
    for (std::uint64_t page = first; page < last; page++) {
        auto& word = commit_bitmap_[page / 64];
        std::uint64_t bit = std::uint64_t{1} << (page % 64);
        std::uint64_t prev = word.fetch_or(bit, std::memory_order_relaxed);
        if (!(prev & bit)) {
            committed_pages_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

void
Device::note_decommitted(HeapOffset offset, std::uint64_t len)
{
    // Only whole pages inside the range can be returned.
    std::uint64_t first = (offset + kPageSize - 1) / kPageSize;
    std::uint64_t last = (offset + len) / kPageSize;
    for (std::uint64_t page = first; page < last; page++) {
        auto& word = commit_bitmap_[page / 64];
        std::uint64_t bit = std::uint64_t{1} << (page % 64);
        std::uint64_t prev = word.fetch_and(~bit, std::memory_order_relaxed);
        if (prev & bit) {
            committed_pages_.fetch_sub(1, std::memory_order_relaxed);
        }
    }
}

std::uint64_t
Device::committed_bytes() const
{
    return committed_pages_.load(std::memory_order_relaxed) * kPageSize;
}

void
Device::reset_commit_accounting()
{
    for (auto& word : commit_bitmap_) {
        word.store(0, std::memory_order_relaxed);
    }
    committed_pages_.store(0, std::memory_order_relaxed);
}

} // namespace cxl
