#include "cxl/device.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#endif

#include "common/assert.h"
#include "common/cacheline.h"

namespace cxl {

const char*
to_string(CoherenceMode mode)
{
    switch (mode) {
      case CoherenceMode::FullHwcc:
        return "full-hwcc";
      case CoherenceMode::PartialHwcc:
        return "partial-hwcc";
      case CoherenceMode::NoHwcc:
        return "no-hwcc(mcas)";
    }
    return "?";
}

Device::Device(const DeviceConfig& config)
    : config_(config)
{
    CXL_FATAL_IF(config_.size == 0, "device size must be nonzero");
    CXL_FATAL_IF(config_.size % kPageSize != 0,
                 "device size must be page aligned");
    CXL_FATAL_IF(config_.windows == 0, "device needs at least one window");
    CXL_FATAL_IF(config_.windows > kMaxDevices,
                 "more windows than kMaxDevices");
    if (config_.windows > 1 || config_.window_bits != 0) {
        CXL_FATAL_IF(config_.window_bits < 12 || config_.window_bits >= 63,
                     "window bits out of range");
        CXL_FATAL_IF(config_.size !=
                         (static_cast<std::uint64_t>(config_.windows)
                          << config_.window_bits),
                     "windowed device size must be windows << window_bits");
        CXL_FATAL_IF(config_.sync_region_size >
                         (std::uint64_t{1} << config_.window_bits),
                     "sync region larger than a window");
    } else {
        CXL_FATAL_IF(config_.sync_region_size > config_.size,
                     "sync region larger than device");
    }
    // A fresh device is zero-filled: cxlalloc relies on zeroed memory being
    // a valid, initialized heap (paper §4). mmap gives that for free and
    // commits pages lazily — a windowed pod arena reserves
    // windows << window_bits bytes of address space but only pages the
    // workload touches cost physical memory.
#if defined(__unix__) || defined(__APPLE__)
    void* map = ::mmap(nullptr, config_.size, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (map != MAP_FAILED) {
        arena_ = static_cast<std::byte*>(map);
        arena_map_len_ = config_.size;
    }
#endif
    if (arena_ == nullptr) {
        arena_heap_ = std::make_unique<std::byte[]>(config_.size);
        std::memset(arena_heap_.get(), 0, config_.size);
        arena_ = arena_heap_.get();
    }
    std::uint64_t pages = config_.size / kPageSize;
    commit_bitmap_ = std::vector<std::atomic<std::uint64_t>>((pages + 63) / 64);
    for (auto& word : commit_bitmap_) {
        word.store(0, std::memory_order_relaxed);
    }
}

Device::~Device()
{
#if defined(__unix__) || defined(__APPLE__)
    if (arena_map_len_ != 0) {
        ::munmap(arena_, arena_map_len_);
    }
#endif
}

void
Device::note_committed(HeapOffset offset, std::uint64_t len)
{
    CXL_ASSERT(offset + len <= config_.size, "commit past end of device");
    std::uint64_t first = offset / kPageSize;
    std::uint64_t last = (offset + len + kPageSize - 1) / kPageSize;
    for (std::uint64_t page = first; page < last; page++) {
        auto& word = commit_bitmap_[page / 64];
        std::uint64_t bit = std::uint64_t{1} << (page % 64);
        std::uint64_t prev = word.fetch_or(bit, std::memory_order_relaxed);
        if (!(prev & bit)) {
            committed_pages_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

void
Device::note_decommitted(HeapOffset offset, std::uint64_t len)
{
    // Only whole pages inside the range can be returned.
    std::uint64_t first = (offset + kPageSize - 1) / kPageSize;
    std::uint64_t last = (offset + len) / kPageSize;
    for (std::uint64_t page = first; page < last; page++) {
        auto& word = commit_bitmap_[page / 64];
        std::uint64_t bit = std::uint64_t{1} << (page % 64);
        std::uint64_t prev = word.fetch_and(~bit, std::memory_order_relaxed);
        if (prev & bit) {
            committed_pages_.fetch_sub(1, std::memory_order_relaxed);
        }
    }
}

std::uint64_t
Device::committed_bytes() const
{
    return committed_pages_.load(std::memory_order_relaxed) * kPageSize;
}

void
Device::reset_commit_accounting()
{
    for (auto& word : commit_bitmap_) {
        word.store(0, std::memory_order_relaxed);
    }
    committed_pages_.store(0, std::memory_order_relaxed);
}

} // namespace cxl
