#include "cxl/mem_ops.h"

#include <cstdio>
#include <thread>

#include "obs/registry.h"

namespace cxl {

using cxlcommon::kCacheLine;
using cxlcommon::line_of;

namespace {

/// Cachelines covered by [offset, offset + len), len > 0.
std::uint64_t
covered_lines(HeapOffset offset, std::uint64_t len)
{
    return (line_of(offset + len - 1) - line_of(offset)) / kCacheLine + 1;
}

std::atomic<bool> g_edge_down_panics{false};

} // namespace

void
set_edge_down_panics(bool on)
{
    g_edge_down_panics.store(on, std::memory_order_relaxed);
}

bool
edge_down_panics()
{
    return g_edge_down_panics.load(std::memory_order_relaxed);
}

DirtyLineSet::DirtyLineSet() : slots_(kInitialSlots, kEmpty) {}

std::size_t
DirtyLineSet::slot_of(std::uint64_t line) const
{
    // Fibonacci hash, same rationale as ThreadCache::set_of: line offsets
    // arrive with regular strides that plain modulo would pile up.
    return static_cast<std::size_t>(
               ((line >> cxlcommon::kCacheLineBits) *
                0x9E3779B97F4A7C15ULL) >>
               32) &
           (slots_.size() - 1);
}

void
DirtyLineSet::rehash(std::size_t new_slots)
{
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(new_slots, kEmpty);
    size_ = 0;
    used_ = 0;
    for (std::uint64_t line : old) {
        if (line != kEmpty && line != kTombstone) {
            insert(line);
        }
    }
}

void
DirtyLineSet::insert(std::uint64_t line)
{
    if (overflowed_) {
        return;
    }
    if (used_ * 4 >= slots_.size() * 3) {
        // Probe chains are loaded — but by what? Steady alloc/free churn
        // erases every line it flushes, so most of `used_` can be
        // tombstones. Growing (or latching) on tombstone pressure would
        // ratchet a long-lived session into the conservative full-flush
        // path for no live reason; instead, rehash in place to purge the
        // tombstones and only grow/latch when LIVE entries genuinely load
        // the table.
        if (size_ * 4 >= slots_.size() * 3) {
            if (slots_.size() >= kMaxSlots) {
                // Latch: callers must now treat EVERY line as possibly
                // dirty.
                overflowed_ = true;
                return;
            }
            rehash(slots_.size() * 2);
        } else {
            rehash(slots_.size());
        }
    }
    std::size_t i = slot_of(line);
    std::size_t first_tombstone = slots_.size();
    while (slots_[i] != kEmpty) {
        if (slots_[i] == line) {
            return;
        }
        if (slots_[i] == kTombstone && first_tombstone == slots_.size()) {
            first_tombstone = i;
        }
        i = (i + 1) & (slots_.size() - 1);
    }
    if (first_tombstone != slots_.size()) {
        slots_[first_tombstone] = line;
    } else {
        slots_[i] = line;
        used_++;
    }
    size_++;
}

bool
DirtyLineSet::erase(std::uint64_t line)
{
    std::size_t i = slot_of(line);
    while (slots_[i] != kEmpty) {
        if (slots_[i] == line) {
            slots_[i] = kTombstone;
            size_--;
            return true;
        }
        i = (i + 1) & (slots_.size() - 1);
    }
    return false;
}

bool
DirtyLineSet::contains(std::uint64_t line) const
{
    std::size_t i = slot_of(line);
    while (slots_[i] != kEmpty) {
        if (slots_[i] == line) {
            return true;
        }
        i = (i + 1) & (slots_.size() - 1);
    }
    return false;
}

MemSession::MemSession(Device* device, Nmp* nmp, ThreadId tid)
    : device_(device), nmp_(nmp), tid_(tid), cache_(device)
{
    CXL_ASSERT(tid != kNoThread && tid <= kMaxThreads,
               "session requires a valid thread id");
}

void
MemSession::set_pod_routing(const EdgeCost* row, std::uint32_t devices,
                            DeviceId home, std::uint32_t host,
                            const EdgeStateCell* states)
{
    CXL_ASSERT(row != nullptr && devices > 0, "empty edge row");
    CXL_ASSERT(devices <= device_->windows(),
               "more topology devices than device windows");
    CXL_ASSERT(home < devices, "home device out of range");
    CXL_ASSERT(row[home].reachable, "home device must be reachable");
    edge_row_ = row;
    edge_state_row_ = states;
    edge_devices_ = devices;
    home_device_ = home;
    host_ = host;
    window_bits_ = device_->window_bits();
    edge_ops_.assign(devices, 0);
    edge_ns_.assign(devices, 0);
    edge_hist_.assign(devices, obs::Histogram{});
}

void
MemSession::read_bytes(HeapOffset offset, void* out, std::uint64_t len)
{
    if (len == 0) {
        return;
    }
    sched::hook(sched::Op::ReadBytes, offset, len);
    check_access(offset, len);
    // Bulk traffic is charged and counted per covered line, matching the
    // per-line accounting flush() uses; a one-word read_bytes costs the
    // same as a load<>.
    std::uint64_t lines = covered_lines(offset, len);
    counters_.loads += lines;
    if (cache_sim_at(offset)) {
        charge(model_ ? lines * model_->cached_ns : 0);
        cache_.read(offset, out, len);
        return;
    }
    if (model_ != nullptr) {
        bool uncachable = device_->mode() == CoherenceMode::NoHwcc &&
                          device_->in_sync_region(offset);
        charge(lines * (uncachable ? model_->read_ns : model_->cached_ns));
        charge_edge(offset, lines, len, /*write=*/false);
    }
    std::memcpy(out, device_->raw(offset), len);
}

void
MemSession::write_bytes(HeapOffset offset, const void* in, std::uint64_t len)
{
    if (len == 0) {
        return;
    }
    sched::hook(sched::Op::WriteBytes, offset, len);
    check_access(offset, len);
    std::uint64_t lines = covered_lines(offset, len);
    counters_.stores += lines;
    if (cache_sim_at(offset)) {
        charge(model_ ? lines * model_->cached_ns : 0);
        cache_.write(offset, in, len);
        note_dirty(offset, len);
        return;
    }
    if (model_ != nullptr) {
        bool uncachable = device_->mode() == CoherenceMode::NoHwcc &&
                          device_->in_sync_region(offset);
        charge(lines * (uncachable ? model_->write_ns : model_->cached_ns));
        charge_edge(offset, lines, len, /*write=*/true);
    }
    std::memcpy(device_->raw(offset), in, len);
    if (!device_->in_sync_region(offset)) {
        note_dirty(offset, len);
    }
}

void
MemSession::flush(HeapOffset offset, std::uint64_t len)
{
    if (len == 0) {
        // A zero-length flush covers no lines. The old code computed
        // line_of(offset + len - 1) here and underflowed to ~2^58 lines
        // of simulated latency.
        return;
    }
    sched::hook(sched::Op::Flush, offset, len);
    // Same mapping discipline as loads/stores: flushing a reclaimed range
    // must fault into the guard (or die), not bypass the TLB shootdown.
    check_access(offset, len);
    counters_.flushes++;
    std::uint64_t lines = covered_lines(offset, len);
    counters_.flushed_lines += lines;
    if (model_ != nullptr) {
        // One clwb per covered line; write-backs cross the edge.
        charge(lines * model_->flush_ns);
        charge_edge(offset, lines, len, /*write=*/true);
    }
    if (device_->config().simulate_cache) {
        cache_.flush(offset, len);
    }
    // Without the cache model, stores already reached the arena; the flush
    // still orders against fence() because stores used atomic_ref.
    std::uint64_t first = line_of(offset);
    std::uint64_t last = line_of(offset + len - 1);
    for (std::uint64_t line = first; line <= last; line += kCacheLine) {
        dirty_.erase(line);
    }
}

void
MemSession::flush_dirty(HeapOffset offset, std::uint64_t len)
{
    if (len == 0) {
        return;
    }
    // The hook reports the REQUESTED range; the per-run Flush events that
    // follow tell oracles which lines were actually written back.
    sched::hook(sched::Op::FlushDirty, offset, len);
    // Mapping-check the REQUESTED range, mirroring flush(): the nested
    // flush() calls only cover dirty sub-runs, so a flush_dirty over a
    // reclaimed range whose lines happen to be clean would otherwise slip
    // past the guard and the TLB shootdown.
    check_access(offset, len);
    if (dirty_.overflowed()) {
        flush(offset, len);
        return;
    }
    std::uint64_t first = line_of(offset);
    std::uint64_t last = line_of(offset + len - 1);
    std::uint64_t run_start = 0;
    std::uint64_t run_len = 0;
    for (std::uint64_t line = first; line <= last; line += kCacheLine) {
        if (dirty_.contains(line)) {
            if (run_len == 0) {
                run_start = line;
            }
            run_len += kCacheLine;
        } else if (run_len != 0) {
            flush(run_start, run_len);
            run_len = 0;
        }
    }
    if (run_len != 0) {
        flush(run_start, run_len);
    }
}

void
MemSession::fence()
{
    sched::hook(sched::Op::Fence);
    counters_.fences++;
    if (model_ != nullptr) {
        charge(model_->fence_ns);
    }
    if (device_->config().simulate_cache) {
        // Completes the simulated cache's in-flight work (store-buffer
        // drain + pending write-backs) when litmus knobs are active; a
        // no-op in the default strong mode.
        cache_.fence();
    }
    // sfence semantics: order the preceding flushes (stores) before
    // subsequent stores.
    std::atomic_thread_fence(std::memory_order_release);
}

bool
MemSession::cas64(HeapOffset offset, std::uint64_t& expected,
                  std::uint64_t desired)
{
    CXL_ASSERT(device_->in_sync_region(offset),
               "CAS outside the HWcc/device-biased region");
    // aux carries the desired word so publication oracles can decode what
    // is about to become reachable.
    sched::hook(sched::Op::Cas, offset, desired);
    check_access(offset, 8);
    if (device_->mode() == CoherenceMode::NoHwcc) {
        counters_.mcas_ops++;
        // Stall-aware spwr/doorbell/poll (the legacy Nmp::mcas wrapper
        // asserts the doorbell answered, which a stalled engine violates):
        // post the operand, then climb the same bounded retry ladder
        // mcas_doorbell() uses before escalating.
        bool posted = nmp_->spwr_post(
            tid_, McasOperand{.target = offset, .expected = expected,
                              .swap = desired});
        CXL_ASSERT(posted, "cas64 while a previous batch is still staged");
        (void)posted;
        doorbell_with_ladder();
        McasResult result;
        bool completed = nmp_->poll(tid_, &result);
        CXL_ASSERT(completed, "doorbell produced no completion");
        (void)completed;
        if (model_ != nullptr) {
            charge(model_->mcas_ns +
                   (result.conflict ? model_->mcas_conflict_ns : 0));
            mcas_round_trip_ns_.record(model_->mcas_ns);
            charge_edge(offset, 1, 8, /*write=*/true);
        }
        if (result.conflict) {
            counters_.mcas_conflicts++;
            // An in-flight spwr-sprd pair on real hardware completes in
            // microseconds; on a host with fewer cores than threads the
            // owning thread may be descheduled mid-pair, so yield instead
            // of burning the timeslice re-conflicting against it.
            std::this_thread::yield();
            // Hardware reports no previous value on conflict; reload so the
            // caller's retry loop sees fresh state.
            expected = atomic_load64(offset);
            return false;
        }
        if (!result.success) {
            expected = result.previous;
        }
        return result.success;
    }
    counters_.cas_ops++;
    bool ok = atomic_at<std::uint64_t>(offset).compare_exchange_strong(
        expected, desired, std::memory_order_acq_rel,
        std::memory_order_acquire);
    if (model_ != nullptr) {
        charge(model_->cas_ns + (ok ? 0 : model_->cas_contended_ns));
        charge_edge(offset, 1, 8, /*write=*/true);
    }
    if (!ok) {
        counters_.cas_failures++;
    }
    return ok;
}

bool
MemSession::mcas_post(const McasOperand& op)
{
    CXL_ASSERT(device_->mode() == CoherenceMode::NoHwcc,
               "mcas_post requires the NMP engine (NoHwcc mode)");
    CXL_ASSERT(device_->in_sync_region(op.target),
               "mCAS target outside the device-biased region");
    sched::hook(sched::Op::McasPost, op.target, op.swap);
    check_access(op.target, 8);
    // Staging writes the operand into the spwr ring: one posted store to
    // device memory.
    counters_.stores++;
    charge_store(op.target);
    return nmp_->spwr_post(tid_, op);
}

std::uint32_t
MemSession::doorbell_with_ladder()
{
    sched::hook(sched::Op::McasDoorbell);
    std::uint32_t executed = nmp_->doorbell(tid_);
    if (executed == 0 && nmp_->posted_occupancy(tid_) > 0) {
        // Operands are staged but the engine did not answer: a stall, not
        // an empty ring. Retry on the McasBackoff ladder — bounded, so a
        // dead engine becomes a typed device-failure report instead of an
        // infinite spin. The waits are simulated (charged), not wall
        // clock; each retry passes a sched yield so explorers can
        // interleave recovery actions between attempts.
        McasBackoff backoff(tid_);
        for (std::uint32_t attempt = 0;
             attempt < kNmpStallRetryLimit && executed == 0; attempt++) {
            charge(backoff.next_ns());
            sched::hook(sched::Op::McasDoorbell);
            executed = nmp_->doorbell(tid_);
        }
        if (executed == 0) {
            counters_.nmp_stall_escalations++;
            throw NmpStallError(tid_);
        }
    }
    if (executed > 0) {
        // Injected engine slowdowns surface here as extra simulated ns.
        charge(nmp_->take_injected_delay_ns());
    }
    return executed;
}

std::uint32_t
MemSession::mcas_doorbell()
{
    std::uint32_t executed = doorbell_with_ladder();
    if (executed == 0) {
        return 0;
    }
    counters_.mcas_ops += executed;
    counters_.mcas_batches++;
    counters_.mcas_batch_ops += executed;
    if (model_ != nullptr) {
        std::uint64_t trip = model_->mcas_ns +
                             (executed - 1) * model_->mcas_batch_slot_ns;
        charge(trip);
        mcas_round_trip_ns_.record(trip);
    }
    return executed;
}

bool
MemSession::mcas_poll(McasResult* out)
{
    sched::hook(sched::Op::McasPoll);
    if (!nmp_->poll(tid_, out)) {
        return false;
    }
    if (out->conflict) {
        counters_.mcas_conflicts++;
        if (model_ != nullptr) {
            charge(model_->mcas_conflict_ns);
        }
    }
    return true;
}

std::uint32_t
MemSession::mcas_batch(const McasOperand* ops, std::uint32_t n,
                       McasResult* results)
{
    if (device_->mode() != CoherenceMode::NoHwcc) {
        // Coherent CAS needs no engine: same result contract, one CAS per
        // operand, conflict never reported.
        for (std::uint32_t i = 0; i < n; i++) {
            std::uint64_t expected = ops[i].expected;
            bool ok = cas64(ops[i].target, expected, ops[i].swap);
            results[i] = McasResult{.success = ok, .conflict = false,
                                    .previous = ok ? ops[i].expected
                                                   : expected};
        }
        return n;
    }
    std::uint32_t accepted = 0;
    while (accepted < n && mcas_post(ops[accepted])) {
        accepted++;
    }
    mcas_doorbell();
    for (std::uint32_t i = 0; i < accepted; i++) {
        bool ok = mcas_poll(&results[i]);
        CXL_ASSERT(ok, "doorbell lost a completion");
        (void)ok;
    }
    return accepted;
}

void
MemSession::publish_metrics(obs::MetricsRegistry& registry) const
{
    obs::MetricsShard& sh = registry.shard(tid_);
    const MemEventCounters& c = counters_;
    auto pub = [&](const char* name, std::uint64_t value) {
        if (value != 0) {
            sh.add(registry.counter(name), value);
        }
    };
    pub("mem.loads", c.loads);
    pub("mem.stores", c.stores);
    pub("mem.flushes", c.flushes);
    pub("mem.flushed_lines", c.flushed_lines);
    pub("mem.fences", c.fences);
    pub("mem.cas_ops", c.cas_ops);
    pub("mem.cas_failures", c.cas_failures);
    pub("mem.mcas_ops", c.mcas_ops);
    pub("mem.mcas_conflicts", c.mcas_conflicts);
    pub("mem.mcas_batches", c.mcas_batches);
    pub("mem.mcas_batch_ops", c.mcas_batch_ops);
    pub("mem.faults", c.faults);
    pub("mem.tlb_hits", c.tlb_hits);
    pub("mem.tlb_misses", c.tlb_misses);
    pub("pod.local_ops", c.pod_local);
    pub("pod.remote_ops", c.pod_remote);
    pub("pod.dram_ops", c.pod_dram);
    pub("pod.edge_down_ops", c.pod_edge_down);
    pub("mem.nmp_stall_escalations", c.nmp_stall_escalations);
    pub("cache.evictions", cache_.evictions());
    pub("mem.sim_ns", sim_ns_);
    if (mcas_round_trip_ns_.count() != 0) {
        obs::MetricsSnapshot hists;
        hists.histograms.emplace_back("mem.mcas_round_trip_ns",
                                      mcas_round_trip_ns_.snapshot());
        registry.absorb(hists);
    }
    // Per-edge traffic from this session's host row: access counts, extra
    // edge nanoseconds, and the edge-latency distribution (nonzero-cost
    // accesses only — a zero-cost host-local edge has no distribution).
    if (edge_row_ != nullptr) {
        obs::MetricsSnapshot hists;
        char name[64];
        for (std::uint32_t d = 0; d < edge_devices_; d++) {
            if (edge_ops_[d] != 0) {
                std::snprintf(name, sizeof name, "pod.edge.h%u.d%u.ops",
                              host_, d);
                pub(name, edge_ops_[d]);
            }
            if (edge_ns_[d] != 0) {
                std::snprintf(name, sizeof name, "pod.edge.h%u.d%u.ns",
                              host_, d);
                pub(name, edge_ns_[d]);
            }
            if (edge_hist_[d].count() != 0) {
                std::snprintf(name, sizeof name, "pod.edge.h%u.d%u.lat_ns",
                              host_, d);
                hists.histograms.emplace_back(name,
                                              edge_hist_[d].snapshot());
            }
        }
        if (!hists.histograms.empty()) {
            registry.absorb(hists);
        }
    }
}

std::uint64_t
MemSession::atomic_load64(HeapOffset offset)
{
    CXL_ASSERT(device_->in_sync_region(offset),
               "atomic load outside the HWcc/device-biased region");
    sched::hook(sched::Op::AtomicLoad, offset);
    check_access(offset, 8);
    counters_.loads++;
    charge_load(offset);
    return atomic_at<std::uint64_t>(offset).load(std::memory_order_acquire);
}

void
MemSession::atomic_store64(HeapOffset offset, std::uint64_t value)
{
    CXL_ASSERT(device_->in_sync_region(offset),
               "atomic store outside the HWcc/device-biased region");
    sched::hook(sched::Op::AtomicStore, offset, value);
    check_access(offset, 8);
    counters_.stores++;
    charge_store(offset);
    atomic_at<std::uint64_t>(offset).store(value, std::memory_order_release);
}

} // namespace cxl
