#include "cxl/cache_model.h"

#include <cstring>

#include "common/assert.h"

namespace cxl {

using cxlcommon::kCacheLine;
using cxlcommon::line_of;

void
ThreadCache::write_back(const Line& line)
{
    std::memcpy(device_->raw(line.tag), line.data.data(), kCacheLine);
}

ThreadCache::Line*
ThreadCache::lookup(std::uint64_t line_offset)
{
    Set& set = sets_[set_of(line_offset)];
    for (std::uint32_t way = 0; way < kWays; way++) {
        if (set.ways[way].tag == line_offset) {
            set.mru = static_cast<std::uint8_t>(way);
            return &set.ways[way];
        }
    }
    return nullptr;
}

ThreadCache::Line&
ThreadCache::fill(std::uint64_t line_offset)
{
    Set& set = sets_[set_of(line_offset)];
    std::uint32_t invalid = kWays;
    for (std::uint32_t way = 0; way < kWays; way++) {
        if (set.ways[way].tag == line_offset) {
            set.mru = static_cast<std::uint8_t>(way);
            return set.ways[way];
        }
        if (set.ways[way].tag == kNoTag && invalid == kWays) {
            invalid = way;
        }
    }
    std::uint32_t way;
    if (invalid != kWays) {
        way = invalid;
        resident_++;
    } else {
        // Deterministic victim: round-robin cursor, skipping the MRU way.
        way = set.victim;
        if (way == set.mru) {
            way = (way + 1) % kWays;
        }
        set.victim = static_cast<std::uint8_t>((way + 1) % kWays);
        Line& old = set.ways[way];
        if (old.dirty) {
            // Early write-back: safe because this thread is the exclusive
            // writer of any line it holds dirty (SWcc ownership rules) —
            // the store was going to reach the device at the next flush or
            // process-crash writeback anyway.
            write_back(old);
        }
        evictions_++;
    }
    Line& line = set.ways[way];
    line.tag = line_offset;
    line.dirty = false;
    std::memcpy(line.data.data(), device_->raw(line_offset), kCacheLine);
    set.mru = static_cast<std::uint8_t>(way);
    return line;
}

void
ThreadCache::read(HeapOffset offset, void* out, std::size_t len)
{
    auto* dst = static_cast<std::byte*>(out);
    while (len > 0) {
        std::uint64_t line = line_of(offset);
        std::size_t within = offset - line;
        std::size_t chunk = std::min(len, kCacheLine - within);
        Line& entry = fill(line);
        std::memcpy(dst, entry.data.data() + within, chunk);
        dst += chunk;
        offset += chunk;
        len -= chunk;
    }
}

void
ThreadCache::write(HeapOffset offset, const void* in, std::size_t len)
{
    const auto* src = static_cast<const std::byte*>(in);
    while (len > 0) {
        std::uint64_t line = line_of(offset);
        std::size_t within = offset - line;
        std::size_t chunk = std::min(len, kCacheLine - within);
        Line& entry = fill(line);
        std::memcpy(entry.data.data() + within, src, chunk);
        entry.dirty = true;
        src += chunk;
        offset += chunk;
        len -= chunk;
    }
}

void
ThreadCache::flush(HeapOffset offset, std::size_t len)
{
    std::uint64_t first = line_of(offset);
    std::uint64_t last = line_of(offset + len - 1);
    for (std::uint64_t line = first; line <= last; line += kCacheLine) {
        Line* entry = lookup(line);
        if (entry == nullptr) {
            continue;
        }
        if (entry->dirty) {
            write_back(*entry);
        }
        entry->tag = kNoTag;
        entry->dirty = false;
        resident_--;
    }
}

void
ThreadCache::invalidate_all()
{
    for (Set& set : sets_) {
        for (Line& line : set.ways) {
            line.tag = kNoTag;
            line.dirty = false;
        }
    }
    resident_ = 0;
}

void
ThreadCache::writeback_all()
{
    for (Set& set : sets_) {
        for (Line& line : set.ways) {
            if (line.tag != kNoTag && line.dirty) {
                write_back(line);
            }
            line.tag = kNoTag;
            line.dirty = false;
        }
    }
    resident_ = 0;
}

std::size_t
ThreadCache::dirty_lines() const
{
    std::size_t n = 0;
    for (const Set& set : sets_) {
        for (const Line& line : set.ways) {
            if (line.tag != kNoTag && line.dirty) {
                n++;
            }
        }
    }
    return n;
}

} // namespace cxl
