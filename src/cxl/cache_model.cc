#include "cxl/cache_model.h"

#include <cstring>

#include "common/assert.h"

namespace cxl {

using cxlcommon::kCacheLine;
using cxlcommon::line_of;

void
ThreadCache::write_back(const Line& line)
{
    std::memcpy(device_->raw(line.tag), line.data.data(), kCacheLine);
}

void
ThreadCache::persist_durable_line()
{
    if (durable_line_ == kNoTag) {
        return;
    }
    // Snapshot the newest value of the registered line — buffered stores
    // over the resident copy over the pending copy over the device — and
    // write it to the device. Pure: no cache, buffer, or pending state
    // changes, so litmus-mode ordering semantics are untouched; a later
    // flush/fence of the same line just rewrites identical bytes. Runs
    // atomically with the eviction that triggered it (cache internals
    // emit no sched hooks), so no simulated crash can observe the evicted
    // effect without the record.
    const Line* resident = nullptr;
    for (const Line& way : sets_[set_of(durable_line_)].ways) {
        if (way.tag == durable_line_) {
            resident = &way;
            break;
        }
    }
    std::array<std::byte, kCacheLine> value;
    if (resident != nullptr) {
        value = resident->data;
    } else if (const PendingLine* p = pending_lookup(durable_line_)) {
        value = p->data;
    } else {
        std::memcpy(value.data(), device_->raw(durable_line_), kCacheLine);
    }
    for (const BufferedStore& s : buffer_) {
        if (s.line == durable_line_) {
            std::memcpy(value.data() + s.within, s.data.data(), s.len);
        }
    }
    std::memcpy(device_->raw(durable_line_), value.data(), kCacheLine);
    durable_writebacks_++;
}

ThreadCache::PendingLine*
ThreadCache::pending_lookup(std::uint64_t line_offset)
{
    for (PendingLine& p : pending_) {
        if (p.tag == line_offset) {
            return &p;
        }
    }
    return nullptr;
}

ThreadCache::Line*
ThreadCache::lookup(std::uint64_t line_offset)
{
    Set& set = sets_[set_of(line_offset)];
    for (std::uint32_t way = 0; way < kWays; way++) {
        if (set.ways[way].tag == line_offset) {
            set.mru = static_cast<std::uint8_t>(way);
            return &set.ways[way];
        }
    }
    return nullptr;
}

ThreadCache::Line&
ThreadCache::fill(std::uint64_t line_offset)
{
    Set& set = sets_[set_of(line_offset)];
    std::uint32_t invalid = kWays;
    for (std::uint32_t way = 0; way < kWays; way++) {
        if (set.ways[way].tag == line_offset) {
            set.mru = static_cast<std::uint8_t>(way);
            return set.ways[way];
        }
        if (set.ways[way].tag == kNoTag && invalid == kWays) {
            invalid = way;
        }
    }
    std::uint32_t way;
    if (invalid != kWays) {
        way = invalid;
        resident_++;
    } else {
        // Deterministic victim: round-robin cursor, skipping the MRU way.
        way = set.victim;
        if (way == set.mru) {
            way = (way + 1) % kWays;
        }
        set.victim = static_cast<std::uint8_t>((way + 1) % kWays);
        Line& old = set.ways[way];
        if (old.dirty) {
            // Early write-back: safe because this thread is the exclusive
            // writer of any line it holds dirty (SWcc ownership rules) —
            // the store was going to reach the device at the next flush or
            // process-crash writeback anyway. For *recovery* safety the
            // registered durable line (the recovery-record row) goes first:
            // if this victim carries a later operation's effect, the device
            // must not pair it with a stale record after a host crash.
            if (old.tag != durable_line_) {
                persist_durable_line();
            }
            write_back(old);
        }
        evictions_++;
    }
    Line& line = set.ways[way];
    line.tag = line_offset;
    line.dirty = false;
    // A refill of a flushed-but-unfenced line must see the flushed data,
    // not the device's older copy; the pending entry stays alive so the
    // write-back still completes at the next fence.
    if (PendingLine* p = pending_lookup(line_offset)) {
        std::memcpy(line.data.data(), p->data.data(), kCacheLine);
    } else {
        std::memcpy(line.data.data(), device_->raw(line_offset), kCacheLine);
    }
    set.mru = static_cast<std::uint8_t>(way);
    return line;
}

void
ThreadCache::drain_entry(std::size_t index)
{
    CXL_ASSERT(index < buffer_.size(), "store buffer drain out of range");
    std::uint64_t target = buffer_[index].line;
    // Apply, in program order, every buffered store to this line up to and
    // including @p index: same-line stores never reorder, so coherence at
    // a single location (CoWW) holds under every knob setting.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < buffer_.size(); i++) {
        BufferedStore& s = buffer_[i];
        if (i <= index && s.line == target) {
            Line& entry = fill(s.line);
            std::memcpy(entry.data.data() + s.within, s.data.data(), s.len);
            entry.dirty = true;
        } else {
            if (kept != i) {
                buffer_[kept] = s;
            }
            kept++;
        }
    }
    buffer_.resize(kept);
}

void
ThreadCache::drain_line(std::uint64_t line_offset)
{
    std::size_t kept = 0;
    for (std::size_t i = 0; i < buffer_.size(); i++) {
        BufferedStore& s = buffer_[i];
        if (s.line == line_offset) {
            Line& entry = fill(s.line);
            std::memcpy(entry.data.data() + s.within, s.data.data(), s.len);
            entry.dirty = true;
        } else {
            if (kept != i) {
                buffer_[kept] = s;
            }
            kept++;
        }
    }
    buffer_.resize(kept);
}

void
ThreadCache::drain_buffer()
{
    for (const BufferedStore& s : buffer_) {
        Line& entry = fill(s.line);
        std::memcpy(entry.data.data() + s.within, s.data.data(), s.len);
        entry.dirty = true;
    }
    buffer_.clear();
}

void
ThreadCache::complete_pending()
{
    for (const PendingLine& p : pending_) {
        std::memcpy(device_->raw(p.tag), p.data.data(), kCacheLine);
    }
    pending_.clear();
}

void
ThreadCache::read(HeapOffset offset, void* out, std::size_t len)
{
    auto* dst = static_cast<std::byte*>(out);
    while (len > 0) {
        std::uint64_t line = line_of(offset);
        std::size_t within = offset - line;
        std::size_t chunk = std::min(len, kCacheLine - within);
        if (weak() && !knobs_.load_forwarding) {
            // No forwarding: a read overlapping buffered stores stalls
            // until they commit to the line.
            drain_line(line);
        }
        Line& entry = fill(line);
        if (weak() && knobs_.load_forwarding) {
            // Forward from the buffer: overlay this line's buffered
            // stores, in program order, on the cached copy.
            std::array<std::byte, kCacheLine> view = entry.data;
            for (const BufferedStore& s : buffer_) {
                if (s.line == line) {
                    std::memcpy(view.data() + s.within, s.data.data(),
                                s.len);
                }
            }
            std::memcpy(dst, view.data() + within, chunk);
        } else {
            std::memcpy(dst, entry.data.data() + within, chunk);
        }
        dst += chunk;
        offset += chunk;
        len -= chunk;
    }
}

void
ThreadCache::write(HeapOffset offset, const void* in, std::size_t len)
{
    const auto* src = static_cast<const std::byte*>(in);
    while (len > 0) {
        std::uint64_t line = line_of(offset);
        std::size_t within = offset - line;
        std::size_t chunk = std::min(len, kCacheLine - within);
        if (weak()) {
            BufferedStore s;
            s.line = line;
            s.within = static_cast<std::uint32_t>(within);
            s.len = static_cast<std::uint32_t>(chunk);
            std::memcpy(s.data.data(), src, chunk);
            buffer_.push_back(s);
            if (buffer_.size() > knobs_.store_buffer_entries) {
                // Overflow: FIFO drains the oldest entry; non-FIFO drains
                // the youngest, letting a later store reach the line while
                // earlier ones to other lines stay parked — the write-back
                // reordering the weaker litmus variants exercise.
                drain_entry(knobs_.fifo_drain ? 0 : buffer_.size() - 1);
            }
        } else {
            Line& entry = fill(line);
            std::memcpy(entry.data.data() + within, src, chunk);
            entry.dirty = true;
        }
        src += chunk;
        offset += chunk;
        len -= chunk;
    }
}

void
ThreadCache::flush(HeapOffset offset, std::size_t len)
{
    std::uint64_t first = line_of(offset);
    std::uint64_t last = line_of(offset + len - 1);
    for (std::uint64_t line = first; line <= last; line += kCacheLine) {
        if (weak()) {
            // Flushes order after older stores to the same line: commit
            // them before writing the line back.
            drain_line(line);
        }
        Line* entry = lookup(line);
        if (entry == nullptr) {
            continue;
        }
        if (entry->dirty) {
            if (weak()) {
                // clwb semantics: the write-back is *initiated*; only a
                // fence guarantees it reached the device.
                if (PendingLine* p = pending_lookup(line)) {
                    p->data = entry->data;
                } else {
                    pending_.push_back(PendingLine{line, entry->data});
                }
            } else {
                write_back(*entry);
            }
        }
        entry->tag = kNoTag;
        entry->dirty = false;
        resident_--;
    }
}

void
ThreadCache::fence()
{
    if (!weak()) {
        return;
    }
    drain_buffer();
    complete_pending();
}

void
ThreadCache::set_knobs(const CacheKnobs& knobs)
{
    // Complete anything in flight under the old knobs so no store is
    // silently dropped by the mode switch.
    fence();
    knobs_ = knobs;
}

void
ThreadCache::invalidate_all()
{
    for (Set& set : sets_) {
        for (Line& line : set.ways) {
            line.tag = kNoTag;
            line.dirty = false;
        }
    }
    resident_ = 0;
    // A host crash loses buffered stores AND flushed-but-unfenced lines:
    // flush without fence is not durability, which is exactly what the
    // litmus fence variants demonstrate.
    buffer_.clear();
    pending_.clear();
}

void
ThreadCache::writeback_all()
{
    // Process crash: the host survives, so everything in flight completes
    // — buffered stores, pending write-backs, and dirty lines all reach
    // the device (pending first; dirty lines may hold newer data).
    drain_buffer();
    complete_pending();
    for (Set& set : sets_) {
        for (Line& line : set.ways) {
            if (line.tag != kNoTag && line.dirty) {
                write_back(line);
            }
            line.tag = kNoTag;
            line.dirty = false;
        }
    }
    resident_ = 0;
}

std::size_t
ThreadCache::dirty_lines() const
{
    std::size_t n = 0;
    for (const Set& set : sets_) {
        for (const Line& line : set.ways) {
            if (line.tag != kNoTag && line.dirty) {
                n++;
            }
        }
    }
    return n;
}

} // namespace cxl
