#include "cxl/cache_model.h"

#include <cstring>

#include "common/assert.h"

namespace cxl {

using cxlcommon::kCacheLine;
using cxlcommon::line_of;

ThreadCache::Line&
ThreadCache::fill(std::uint64_t line_offset)
{
    auto [it, inserted] = lines_.try_emplace(line_offset);
    if (inserted) {
        std::memcpy(it->second.data.data(), device_->raw(line_offset),
                    kCacheLine);
    }
    return it->second;
}

void
ThreadCache::read(HeapOffset offset, void* out, std::size_t len)
{
    auto* dst = static_cast<std::byte*>(out);
    while (len > 0) {
        std::uint64_t line = line_of(offset);
        std::size_t within = offset - line;
        std::size_t chunk = std::min(len, kCacheLine - within);
        Line& entry = fill(line);
        std::memcpy(dst, entry.data.data() + within, chunk);
        dst += chunk;
        offset += chunk;
        len -= chunk;
    }
}

void
ThreadCache::write(HeapOffset offset, const void* in, std::size_t len)
{
    const auto* src = static_cast<const std::byte*>(in);
    while (len > 0) {
        std::uint64_t line = line_of(offset);
        std::size_t within = offset - line;
        std::size_t chunk = std::min(len, kCacheLine - within);
        Line& entry = fill(line);
        std::memcpy(entry.data.data() + within, src, chunk);
        entry.dirty = true;
        src += chunk;
        offset += chunk;
        len -= chunk;
    }
}

void
ThreadCache::flush(HeapOffset offset, std::size_t len)
{
    std::uint64_t first = line_of(offset);
    std::uint64_t last = line_of(offset + len - 1);
    for (std::uint64_t line = first; line <= last; line += kCacheLine) {
        auto it = lines_.find(line);
        if (it == lines_.end()) {
            continue;
        }
        if (it->second.dirty) {
            std::memcpy(device_->raw(line), it->second.data.data(),
                        kCacheLine);
        }
        lines_.erase(it);
    }
}

void
ThreadCache::writeback_all()
{
    for (const auto& [line, entry] : lines_) {
        if (entry.dirty) {
            std::memcpy(device_->raw(line), entry.data.data(), kCacheLine);
        }
    }
    lines_.clear();
}

std::size_t
ThreadCache::dirty_lines() const
{
    std::size_t n = 0;
    for (const auto& [line, entry] : lines_) {
        if (entry.dirty) {
            n++;
        }
    }
    return n;
}

} // namespace cxl
