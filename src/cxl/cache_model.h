/// @file
/// Per-thread software cache model for the SWcc region (paper §3.2.2).
///
/// Substitution note: on real hardware, SWcc memory may be cached by each
/// host's CPU without inter-host invalidation, so threads can read stale
/// data unless the writer flushed and the reader refetches. This model makes
/// that hazard deterministic: a thread's reads hit its private line copies
/// until it flushes (write-back + invalidate) or invalidates them. A
/// simulated crash simply destroys the cache object, losing unflushed
/// writes — exactly the failure recovery must tolerate.
///
/// The store is a fixed-footprint set-associative array (open addressing —
/// no node allocation on the access path, unlike the unordered_map it
/// replaced). Capacity misses evict a deterministic victim, writing dirty
/// lines back to the device early. Real caches do the same, so this is a
/// modeled staleness/durability source, not an artifact: the SWcc protocol
/// tolerates it because a thread only holds dirty lines for memory it
/// exclusively writes (write-back early = a harmless prefix of the flush
/// it must eventually do), and losing a clean line merely forces a
/// refetch of possibly-fresher data.
///
/// One refinement makes that argument hold for *recovery* too: eviction is
/// the only channel by which an operation's effect can reach the device
/// out of program order (every explicit flush is protocol-ordered). If an
/// effect line of a later operation were written back while the thread's
/// deferred recovery record was still cache-resident, a HOST crash would
/// leave a durable effect paired with a stale durable record, and replay
/// would redo an outdated operation (e.g. re-free a block that was since
/// re-allocated). The cache therefore supports one registered *durable
/// line* — the thread's recovery-record row — whose newest value is
/// persisted to the device before any other dirty victim's early
/// write-back. This keeps the invariant "no durable effect without a
/// durable record at least as new" under every crash severity; see
/// RecoveryLog's discipline note and ARCHITECTURE.md elision case 1.
///
/// The paper assumes threads are pinned to cores, so one cache per thread
/// (not per core) is a faithful simplification.
///
/// Reordering knobs (litmus mode): with CacheKnobs::store_buffer_entries
/// nonzero the cache additionally models a bounded store buffer with
/// delayed drain and clwb-style asynchronous write-back: flush() moves
/// dirty lines to a pending queue and only fence() completes them to the
/// device. This makes a skipped fence *observable* — the discipline the
/// litmus suite (tests/litmus) proves necessary and sufficient. With the
/// knobs at their defaults the model is exactly the strong synchronous
/// one described above.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cacheline.h"
#include "cxl/device.h"
#include "cxl/types.h"

namespace cxl {

/// Configurable reordering behavior for ThreadCache. Defaults model the
/// strong (synchronous write-back) cache every non-litmus test uses.
struct CacheKnobs {
    /// Store-buffer capacity in entries; 0 disables the buffer entirely
    /// (stores land in the cache line immediately, flush writes back
    /// synchronously, fence is a no-op).
    std::uint32_t store_buffer_entries = 0;
    /// When buffering, reads may forward from the youngest overlapping
    /// buffered store (TSO-style). When false, a read to a buffered line
    /// stalls: the overlapping entries drain to the cache first.
    bool load_forwarding = true;
    /// Drain order when the buffer overflows: true drains the oldest
    /// entry (FIFO/TSO), false the youngest (weaker, non-FIFO) — except
    /// that same-line entries always drain in program order, so
    /// single-location coherence (CoWW) holds under every knob setting.
    bool fifo_drain = true;
};

/// One simulated thread-private cache over the SWcc region.
class ThreadCache {
  public:
    /// Geometry: kSets x kWays lines of kCacheLine bytes (64 KiB of data).
    static constexpr std::uint32_t kSets = 128;
    static constexpr std::uint32_t kWays = 8;

    explicit ThreadCache(Device* device)
        : device_(device), sets_(kSets)
    {
    }

    /// Reads @p len bytes at @p offset through the cache (fill on miss,
    /// then serve possibly-stale cached data).
    void read(HeapOffset offset, void* out, std::size_t len);

    /// Writes @p len bytes at @p offset into the cache (write-back policy:
    /// the device is not updated until the line is flushed or evicted).
    void write(HeapOffset offset, const void* in, std::size_t len);

    /// Writes back dirty bytes of the lines covering [offset, offset+len)
    /// and invalidates them. With the store buffer off this is synchronous
    /// (clflush semantics). With it on, overlapping buffered stores drain
    /// into the line first (flushes order after older same-line stores),
    /// and the dirty line moves to a *pending* write-back queue that only
    /// fence() completes to the device (clwb + sfence semantics).
    void flush(HeapOffset offset, std::size_t len);

    /// Completes ordering: drains the store buffer into cache lines and
    /// writes every pending flushed line to the device. A no-op in the
    /// default strong mode (there is nothing in flight to complete).
    void fence();

    /// Drops every line without write-back. Models losing a CPU's cache
    /// contents (a host/OS crash, or scheduling a thread onto another core,
    /// which the paper forbids).
    void invalidate_all();

    /// Writes every dirty line back to the device, then drops all lines.
    /// Models a *process* crash: the host (and its coherent cache) survives,
    /// so the dead thread's stores remain visible and eventually reach the
    /// device — the failure model under which the paper's 8-byte redo
    /// recovery operates.
    void writeback_all();

    /// Number of resident lines (for tests and stats).
    std::size_t resident_lines() const { return resident_; }

    /// Number of dirty (unflushed) lines.
    std::size_t dirty_lines() const;

    /// Valid lines replaced to make room (capacity misses). Dirty victims
    /// were written back; clean victims just dropped.
    std::uint64_t evictions() const { return evictions_; }

    /// Registers the one line whose newest value must reach the device
    /// before any dirty victim's early write-back: the thread's recovery-
    /// record row. kNoTag (the default) disables the mechanism.
    void
    set_durable_line(std::uint64_t line_offset)
    {
        durable_line_ = line_offset;
    }

    /// Times the durable line was persisted ahead of a dirty eviction
    /// (tests pin the mechanism with this).
    std::uint64_t durable_writebacks() const { return durable_writebacks_; }

    /// Installs reordering knobs. Drains any in-flight state first (via
    /// fence()) so switching modes never silently loses stores.
    void set_knobs(const CacheKnobs& knobs);
    const CacheKnobs& knobs() const { return knobs_; }

    /// Stores still sitting in the store buffer (litmus mode only).
    std::size_t store_buffer_depth() const { return buffer_.size(); }

    /// Lines flushed but whose write-back has not been fenced to the
    /// device yet (litmus mode only).
    std::size_t pending_writebacks() const { return pending_.size(); }

    /// Fibonacci-hashed set index: line offsets arrive with regular strides
    /// (descriptor stride 576 = 9 lines), which a plain modulo would pile
    /// onto a few sets. Public so tests can construct same-set conflict
    /// workloads deterministically.
    static std::uint32_t
    set_of(std::uint64_t line_offset)
    {
        return static_cast<std::uint32_t>(
            ((line_offset >> cxlcommon::kCacheLineBits) *
             0x9E3779B97F4A7C15ULL) >>
            57); // top 7 bits: [0, 128)
    }

  private:
    static constexpr std::uint64_t kNoTag = ~std::uint64_t{0};

    struct Line {
        std::uint64_t tag = kNoTag; ///< line-aligned device offset
        bool dirty = false;
        std::array<std::byte, cxlcommon::kCacheLine> data;
    };

    struct Set {
        std::array<Line, kWays> ways;
        std::uint8_t mru = 0;    ///< most-recently-touched way, never evicted
        std::uint8_t victim = 0; ///< round-robin replacement cursor
    };

    /// One store parked in the bounded store buffer: up to a line's worth
    /// of bytes at [line + within, line + within + len).
    struct BufferedStore {
        std::uint64_t line;
        std::uint32_t within;
        std::uint32_t len;
        std::array<std::byte, cxlcommon::kCacheLine> data;
    };

    /// A flushed line awaiting its fence: clwb issued, write-back not yet
    /// globally complete.
    struct PendingLine {
        std::uint64_t tag;
        std::array<std::byte, cxlcommon::kCacheLine> data;
    };

    Line& fill(std::uint64_t line_offset);
    Line* lookup(std::uint64_t line_offset);
    void write_back(const Line& line);
    void persist_durable_line();
    bool weak() const { return knobs_.store_buffer_entries > 0; }
    void drain_entry(std::size_t index);
    void drain_line(std::uint64_t line_offset);
    void drain_buffer();
    PendingLine* pending_lookup(std::uint64_t line_offset);
    void complete_pending();

    Device* device_;
    std::vector<Set> sets_;
    std::size_t resident_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t durable_line_ = kNoTag;
    std::uint64_t durable_writebacks_ = 0;
    CacheKnobs knobs_;
    std::vector<BufferedStore> buffer_;
    std::vector<PendingLine> pending_;
};

} // namespace cxl
