/// @file
/// Per-thread software cache model for the SWcc region (paper §3.2.2).
///
/// Substitution note: on real hardware, SWcc memory may be cached by each
/// host's CPU without inter-host invalidation, so threads can read stale
/// data unless the writer flushed and the reader refetches. This model makes
/// that hazard deterministic: a thread's reads hit its private line copies
/// until it flushes (write-back + invalidate) or invalidates them. A
/// simulated crash simply destroys the cache object, losing unflushed
/// writes — exactly the failure recovery must tolerate.
///
/// The paper assumes threads are pinned to cores, so one cache per thread
/// (not per core) is a faithful simplification.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "common/cacheline.h"
#include "cxl/device.h"
#include "cxl/types.h"

namespace cxl {

/// One simulated thread-private cache over the SWcc region.
class ThreadCache {
  public:
    explicit ThreadCache(Device* device) : device_(device) {}

    /// Reads @p len bytes at @p offset through the cache (fill on miss,
    /// then serve possibly-stale cached data).
    void read(HeapOffset offset, void* out, std::size_t len);

    /// Writes @p len bytes at @p offset into the cache (write-back policy:
    /// the device is not updated until the line is flushed).
    void write(HeapOffset offset, const void* in, std::size_t len);

    /// Writes back dirty bytes of the lines covering [offset, offset+len)
    /// and invalidates them (clflush semantics).
    void flush(HeapOffset offset, std::size_t len);

    /// Drops every line without write-back. Models losing a CPU's cache
    /// contents (a host/OS crash, or scheduling a thread onto another core,
    /// which the paper forbids).
    void invalidate_all() { lines_.clear(); }

    /// Writes every dirty line back to the device, then drops all lines.
    /// Models a *process* crash: the host (and its coherent cache) survives,
    /// so the dead thread's stores remain visible and eventually reach the
    /// device — the failure model under which the paper's 8-byte redo
    /// recovery operates.
    void writeback_all();

    /// Number of resident lines (for tests and stats).
    std::size_t resident_lines() const { return lines_.size(); }

    /// Number of dirty (unflushed) lines.
    std::size_t dirty_lines() const;

  private:
    struct Line {
        std::array<std::byte, cxlcommon::kCacheLine> data;
        bool dirty = false;
    };

    Line& fill(std::uint64_t line_offset);

    Device* device_;
    std::unordered_map<std::uint64_t, Line> lines_;
};

} // namespace cxl
