/// @file
/// Deterministic schedule explorer (loom/shuttle-style model checking for
/// the simulator's concurrency protocols).
///
/// A test hands the Explorer a *schedule factory*: a callback that builds a
/// fresh world (pod + allocator + whatever), spawns N virtual threads, and
/// registers protocol oracles. The explorer runs the factory once per
/// schedule. Virtual threads execute on real std::threads but strictly one
/// at a time: every sched::hook() yield point woven through MemSession,
/// the cache model, the NMP engine, DetectableCas, HazardOffsets and the
/// crash points hands control to the scheduler, which picks the next
/// runnable thread under the configured strategy:
///
///  - Random: seeded uniform random walk over runnable threads;
///  - Pct: probabilistic concurrency testing — random thread priorities
///    with depth-1 random priority-change points, good at surfacing
///    ordering bugs that need a rare preemption;
///  - Dfs: bounded exhaustive depth-first enumeration of every
///    interleaving (small tests only);
///  - Replay: follow a recorded trace exactly.
///
/// Crash injection composes with exploration: with Options::crash set, the
/// explorer kills one killable virtual thread at a randomly chosen yield
/// point (any instrumented operation, not just named crash points) by
/// throwing VthreadKilled out of the hook. The test body catches it,
/// marks the pod slot crashed, and an at_end oracle recovers and checks.
///
/// Every schedule is deterministic given (seed, schedule index): on an
/// oracle violation the explorer reports the seed, the decision trace and
/// the kill point, and Explorer::replay() reproduces the identical
/// schedule and verdict bit for bit.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sched/hook.h"

namespace sched {

/// Thrown out of a yield point to kill the calling virtual thread at an
/// arbitrary instrumented operation. Test bodies catch it to simulate the
/// thread's death (e.g. pod::Pod::mark_crashed); everything the dead
/// thread left behind — unflushed cache lines, staged operands, the open
/// recovery record — stays exactly as it was.
struct VthreadKilled {};

/// Thrown by protocol oracles (and test bodies) to fail the current
/// schedule. The explorer records the failure with its replay trace.
class OracleFailure : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/// Internal: thrown through parked virtual threads to unwind them when a
/// schedule ends early (violation, kill cleanup, step bound). Test bodies
/// must not catch it (catch VthreadKilled / OracleFailure specifically).
struct RunAborted {};

enum class Strategy : std::uint8_t { Random, Pct, Dfs, Replay };

inline constexpr std::uint32_t kNoVthread = ~std::uint32_t{0};

struct Options {
    Strategy strategy = Strategy::Random;
    /// Master seed; every schedule derives its own stream from it.
    std::uint64_t seed = 1;
    /// Schedule budget (Random/Pct: exactly this many; Dfs: upper bound).
    std::uint32_t schedules = 256;
    /// Yield-point bound per schedule; exceeding it truncates the schedule
    /// (counted in Result::truncated, not a failure: a livelock guard).
    std::uint64_t max_steps = 200'000;
    /// PCT: number of priority-change points + 1 (the classic "depth d
    /// finds bugs needing d-1 preemptions" parameter).
    std::uint32_t pct_depth = 3;
    /// Dfs: decisions beyond this depth stop branching (run thread 0) so
    /// the search space stays bounded for loops of unknown length.
    std::uint32_t dfs_max_depth = 4'000;
    /// Kill one killable vthread at a random yield each schedule
    /// (Random/Pct only). The kill step is drawn from [1, horizon], where
    /// the horizon adapts to the longest observed thread, so a fraction of
    /// schedules naturally completes un-killed.
    bool crash = false;
    std::uint32_t crash_horizon = 64;
};

/// Everything needed to reproduce one schedule exactly.
struct Failure {
    std::string message;
    std::uint64_t schedule_index = 0;
    std::uint64_t seed = 0; ///< master seed of the run that found it
    /// Chosen vthread index at every scheduling decision.
    std::vector<std::uint32_t> trace;
    std::uint32_t kill_vthread = kNoVthread;
    std::uint64_t kill_yield = 0;
};

struct Result {
    bool ok = true;
    std::uint64_t schedules_run = 0;
    std::uint64_t total_steps = 0;
    /// Schedules cut short by max_steps (world left mid-op; end oracles
    /// skipped).
    std::uint64_t truncated = 0;
    /// Schedules in which a vthread was actually killed.
    std::uint64_t kills = 0;
    /// Dfs only: the whole bounded interleaving space was enumerated.
    bool exhausted = false;
    /// Order-sensitive hash of every decision trace + kill plan: two runs
    /// are bit-for-bit identical iff their fingerprints match.
    std::uint64_t fingerprint = 0;
    std::optional<Failure> failure;

    /// Human-readable verdict incl. seed/trace replay line on failure.
    std::string summary() const;
};

/// Outcome facts handed to at_end oracles.
struct RunEnd {
    std::uint32_t killed = kNoVthread; ///< vthread index, or kNoVthread
    std::uint64_t kill_yield = 0;
};

using EventOracle = std::function<void(std::uint32_t vthread, const Event&)>;
using EndOracle = std::function<void(const RunEnd&)>;

/// Per-schedule setup surface handed to the schedule factory. Keep the
/// world alive by capturing a shared_ptr to it in every closure; the
/// explorer drops the closures (and thus the world) after each schedule.
class Run {
  public:
    /// Registers a virtual thread. Bodies run to completion under the
    /// cooperative scheduler; only @p killable threads are eligible for
    /// crash injection.
    void
    spawn(std::string name, std::function<void()> body, bool killable = false)
    {
        spawns_.push_back(Spawn{std::move(name), std::move(body), killable});
    }

    /// Registers an oracle invoked at every yield point of every vthread
    /// (before the scheduling decision). Throw OracleFailure to fail the
    /// schedule; hooks are suppressed inside, so oracles may inspect
    /// shared memory freely.
    void
    on_event(EventOracle oracle)
    {
        event_oracles_.push_back(std::move(oracle));
    }

    /// Registers an oracle invoked after all vthreads finished (skipped
    /// for truncated or already-failed schedules).
    void
    at_end(EndOracle oracle)
    {
        end_oracles_.push_back(std::move(oracle));
    }

    struct Spawn {
        std::string name;
        std::function<void()> body;
        bool killable;
    };

    // Internal: read by the explorer's engine; tests use the methods above.
    std::vector<Spawn> spawns_;
    std::vector<EventOracle> event_oracles_;
    std::vector<EndOracle> end_oracles_;
};

class Explorer {
  public:
    explicit Explorer(const Options& options) : options_(options) {}

    /// Explores schedules of @p factory until the budget is spent, the
    /// space is exhausted (Dfs) or an oracle fails.
    Result run(const std::function<void(Run&)>& factory);

    /// Re-executes exactly one recorded schedule (trace + kill plan) and
    /// returns its verdict. Used to reproduce failures and to prove
    /// replay determinism.
    Result replay(const Failure& failure,
                  const std::function<void(Run&)>& factory);

  private:
    Options options_;
};

/// "3,1,2,2,…" — the trace format printed in Result::summary().
std::string format_trace(const std::vector<std::uint32_t>& trace);

} // namespace sched
