/// @file
/// Reusable protocol-oracle building blocks for explored-schedule tests.
///
/// The oracles here are event-driven: a test registers them through
/// Run::on_event() and they observe the Op stream emitted by the hooks to
/// check protocol rules *as they are (about to be) broken*, before any
/// aborting CXL_ASSERT deeper in the stack can fire. The central one is
/// DirtyLineTracker + the flush-before-publish rule of the paper's SWcc
/// case analysis (§3.2): a thread must not make a descriptor reachable
/// (CAS it into a shared structure) while its own cache still holds dirty
/// lines of that descriptor — a crash of the host would lose the
/// unflushed payload after the publication became visible.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/cacheline.h"
#include "sched/explorer.h"
#include "sched/hook.h"

namespace sched {

/// Tracks, per virtual thread, which cachelines inside one watched device
/// range that thread has written but not yet flushed. Feed every Event to
/// observe(); query dirty_in() at publication points.
///
/// Caveat: the simulated cache can also clean a line by *evicting* it.
/// Eviction is not an Op (it happens inside CacheModel), so a line can be
/// clean on the device while still marked dirty here. Explored-schedule
/// tests keep working sets far below the 64 KiB cache, where evictions
/// cannot occur, making the tracker exact. The recovery soundness of
/// eviction-sized workloads is instead pinned by the cache's durable-line
/// rule (ThreadCache::set_durable_line) and
/// CrashRecovery.HostCrashEvictionCannotResurrectStaleRecord.
class DirtyLineTracker {
  public:
    /// Watches the device range [begin, end).
    DirtyLineTracker(std::uint64_t begin, std::uint64_t end)
        : begin_(begin), end_(end)
    {
    }

    void
    observe(std::uint32_t vthread, const Event& event)
    {
        switch (event.op) {
        case Op::Store:
        case Op::WriteBytes:
            mark_dirty(vthread, event.addr, event.aux);
            break;
        case Op::Flush:
            mark_clean(vthread, event.addr, event.aux);
            break;
        default:
            break;
        }
    }

    /// True if @p vthread holds a dirty line covering [begin, end).
    bool
    dirty_in(std::uint32_t vthread, std::uint64_t begin,
             std::uint64_t end) const
    {
        auto it = dirty_.find(vthread);
        if (it == dirty_.end())
            return false;
        for (std::uint64_t line = cxlcommon::line_of(begin); line < end;
             line += cxlcommon::kCacheLine)
            if (it->second.count(line) != 0)
                return true;
        return false;
    }

    bool
    any_dirty(std::uint32_t vthread) const
    {
        auto it = dirty_.find(vthread);
        return it != dirty_.end() && !it->second.empty();
    }

  private:
    void
    mark_dirty(std::uint32_t vthread, std::uint64_t addr, std::uint64_t len)
    {
        if (len == 0 || addr >= end_ || addr + len <= begin_)
            return;
        for (std::uint64_t line = cxlcommon::line_of(addr);
             line < addr + len; line += cxlcommon::kCacheLine)
            dirty_[vthread].insert(line);
    }

    void
    mark_clean(std::uint32_t vthread, std::uint64_t addr, std::uint64_t len)
    {
        auto it = dirty_.find(vthread);
        if (it == dirty_.end())
            return;
        if (len == 0)
            len = cxlcommon::kCacheLine;
        for (std::uint64_t line = cxlcommon::line_of(addr);
             line < addr + len; line += cxlcommon::kCacheLine)
            it->second.erase(line);
    }

    std::uint64_t begin_;
    std::uint64_t end_;
    std::unordered_map<std::uint32_t, std::unordered_set<std::uint64_t>>
        dirty_;
};

/// Fails the schedule unless @p tracker shows @p vthread's lines over
/// [begin, end) all clean — call at the instant a structure covering that
/// range is about to be published (e.g. on the Op::Cas that links it).
inline void
require_flushed(const DirtyLineTracker& tracker, std::uint32_t vthread,
                std::uint64_t begin, std::uint64_t end,
                const std::string& what)
{
    if (tracker.dirty_in(vthread, begin, end))
        throw OracleFailure("flush-before-publish violated: " + what +
                            " published with dirty lines in [" +
                            std::to_string(begin) + ", " +
                            std::to_string(end) + ")");
}

/// Guards the deferred-record discipline the fence-elision work leans on:
/// a thread may delay its recovery record's flush through LOCAL
/// operations (a process crash writes the cache back, so recovery still
/// reads the newest record), but before any detectable CAS the record
/// must be durable — after a HOST crash, `did_succeed` reasoning needs
/// the record that described the CAS, not a stale predecessor. The
/// oracle watches each vthread's recovery-record row and fails the
/// schedule if a DcasTry fires while the row is dirty. Every allocator
/// publication funnels through DetectableCas::try_cas, so hooking
/// Op::DcasTry covers pop_global / extend / free_remote / push_global and
/// the batch drain alike.
class RecordFlushOracle {
  public:
    /// Watches record rows inside the device range [rows_begin, rows_end).
    RecordFlushOracle(std::uint64_t rows_begin, std::uint64_t rows_end)
        : tracker_(rows_begin, rows_end)
    {
    }

    /// Binds @p vthread to its recovery-record row [row, row + len).
    void
    bind(std::uint32_t vthread, std::uint64_t row,
         std::uint64_t len = cxlcommon::kCacheLine)
    {
        rows_[vthread] = {row, row + len};
    }

    void
    observe(std::uint32_t vthread, const Event& event)
    {
        tracker_.observe(vthread, event);
        if (event.op != Op::DcasTry) {
            return;
        }
        auto it = rows_.find(vthread);
        if (it == rows_.end()) {
            return;
        }
        if (tracker_.dirty_in(vthread, it->second.first,
                              it->second.second)) {
            throw OracleFailure(
                "record-durable-before-CAS violated: vthread " +
                std::to_string(vthread) +
                " attempted a detectable CAS with a dirty recovery "
                "record row at " +
                std::to_string(it->second.first));
        }
    }

  private:
    DirtyLineTracker tracker_;
    std::unordered_map<std::uint32_t,
                       std::pair<std::uint64_t, std::uint64_t>>
        rows_;
};

} // namespace sched
