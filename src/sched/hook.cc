#include "sched/hook.h"

namespace sched {

thread_local Listener* t_listener = nullptr;

} // namespace sched
