/// @file
/// Yield-point instrumentation for the deterministic schedule explorer.
///
/// Every shared-memory touchpoint in the simulator (MemSession loads,
/// stores, flushes, fences, CAS/mCAS phases, crash points, hazard and
/// detectable-CAS protocol steps) calls sched::hook() with an operation
/// kind and the affected device offset. When no explorer is active the
/// call costs a single predicted branch on a thread-local pointer, so
/// production paths and benchmarks are unaffected. When a sched::Explorer
/// is driving the calling thread, the hook becomes a cooperative yield
/// point: the scheduler may switch virtual threads, kill the caller
/// (throwing VthreadKilled), or feed the event to protocol oracles.
///
/// This header sits below src/cxl in the layer stack: it depends on
/// nothing, and src/cxl, src/sync, src/pod and src/cxlalloc all weave it
/// into their shared-memory operations.

#pragma once

#include <cstdint>

namespace sched {

/// Classification of an instrumented operation. Oracles key off these;
/// the scheduler treats every kind as a potential preemption point.
enum class Op : std::uint8_t {
    Load,         ///< word load (addr, len)
    Store,        ///< word store (addr, len)
    ReadBytes,    ///< bulk SWcc read (addr, len)
    WriteBytes,   ///< bulk SWcc write (addr, len)
    Flush,        ///< cacheline write-back + invalidate (addr, len)
    FlushDirty,   ///< dirty-only flush requested (addr, len): the Flush
                  ///< events that follow are the lines actually written
    Fence,        ///< store fence
    Cas,          ///< 64-bit CAS on the sync region (addr, desired word)
    AtomicLoad,   ///< coherent 64-bit load (addr)
    AtomicStore,  ///< coherent 64-bit store (addr, value)
    McasPost,     ///< operand staged into the NMP ring (target addr)
    McasDoorbell, ///< doorbell rung (aux = operands executed)
    McasPoll,     ///< completion harvested
    CrashPoint,   ///< ThreadContext::maybe_crash site (aux = point id)
    DcasTry,      ///< detectable-CAS attempt begins (addr, desired value)
    DcasHelp,     ///< displaced owner's success recorded (aux = tid)
    HazardPublish, ///< hazard offset published (aux = offset)
    HazardRemove,  ///< hazard offset cleared (aux = offset)
    HazardScan,    ///< one slot inspected during a reclamation scan (addr)
};

/// One instrumented event. `addr` is a device offset where meaningful;
/// `aux` carries a kind-specific payload (length, value, id — see Op).
struct Event {
    Op op;
    std::uint64_t addr;
    std::uint64_t aux;
};

/// Receiver installed by the explorer for threads it drives.
class Listener {
  public:
    virtual ~Listener() = default;
    virtual void on_event(const Event& event) = 0;
};

/// Active listener of the calling thread; null (the default everywhere)
/// means hooks are no-ops.
extern thread_local Listener* t_listener;

/// Instrumentation point. The listener is cleared around the dispatch so
/// that memory operations issued *by* the scheduler or an oracle (state
/// inspection, crash cleanup) never re-enter the scheduler; if on_event
/// throws (kill or abort), the listener stays cleared so the unwinding
/// code — destructors, crash handlers — runs straight through without
/// further yields.
inline void
hook(Op op, std::uint64_t addr = 0, std::uint64_t aux = 0)
{
    Listener* listener = t_listener;
    if (listener != nullptr) [[unlikely]] {
        t_listener = nullptr;
        listener->on_event(Event{op, addr, aux});
        t_listener = listener;
    }
}

} // namespace sched
