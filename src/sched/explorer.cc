/// @file
/// Explorer implementation: the serializing engine that runs virtual
/// threads one at a time, and the Random/PCT/DFS/Replay strategies that
/// pick which thread runs at every yield point.

#include "sched/explorer.h"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/assert.h"
#include "common/random.h"

namespace sched {

namespace {

/// Per-schedule stream derived from the master seed so schedule k is
/// reproducible in isolation (replay does not need to re-run 0..k-1).
std::uint64_t
schedule_seed(std::uint64_t master, std::uint64_t index)
{
    std::uint64_t state = master ^ (index * 0x9e3779b97f4a7c15ULL);
    return cxlcommon::splitmix64(state);
}

void
mix(std::uint64_t& fingerprint, std::uint64_t value)
{
    std::uint64_t state = fingerprint ^ value;
    fingerprint = cxlcommon::splitmix64(state);
}

/// Picks the vthread to run at each decision. begin() is called before
/// every schedule; advance() after it (DFS backtracking).
class Policy {
  public:
    virtual ~Policy() = default;
    virtual void begin(std::uint64_t seed) = 0;
    /// @p enabled is the sorted list of runnable vthread indices;
    /// @p previous is the vthread that was running (kNoVthread at start).
    virtual std::uint32_t choose(const std::vector<std::uint32_t>& enabled,
                                 std::uint32_t previous) = 0;
    /// DFS: prepare the next prefix; false once the space is exhausted.
    virtual bool advance() { return true; }
};

class RandomPolicy final : public Policy {
  public:
    void
    begin(std::uint64_t seed) override
    {
        rng_.emplace(seed);
    }

    std::uint32_t
    choose(const std::vector<std::uint32_t>& enabled, std::uint32_t) override
    {
        return enabled[rng_->next_below(enabled.size())];
    }

  private:
    std::optional<cxlcommon::Xoshiro> rng_;
};

/// PCT (Burckhardt et al.): each schedule assigns the n threads random
/// distinct priorities and always runs the highest-priority runnable
/// thread; at d-1 random change points the currently running thread is
/// demoted below everything seen so far. Finds any bug of depth d with
/// probability >= 1/(n * k^(d-1)) per schedule, k = step horizon.
class PctPolicy final : public Policy {
  public:
    PctPolicy(std::uint32_t depth, std::uint64_t* horizon)
        : depth_(depth), horizon_(horizon)
    {
    }

    void
    begin(std::uint64_t seed) override
    {
        rng_.emplace(seed);
        priorities_.clear();
        change_points_.clear();
        std::uint64_t horizon = std::max<std::uint64_t>(*horizon_, 2);
        for (std::uint32_t i = 0; i + 1 < depth_; ++i)
            change_points_.push_back(1 + rng_->next_below(horizon - 1));
        std::sort(change_points_.begin(), change_points_.end());
        step_ = 0;
        low_water_ = -1;
    }

    std::uint32_t
    choose(const std::vector<std::uint32_t>& enabled,
           std::uint32_t previous) override
    {
        for (std::uint32_t index : enabled)
            if (index >= priorities_.size() ||
                priorities_[index] == kUnassigned)
                assign_priority(index);
        if (previous != kNoVthread && !change_points_.empty() &&
            step_ >= change_points_.front()) {
            change_points_.erase(change_points_.begin());
            priorities_[previous] = low_water_--;
        }
        ++step_;
        std::uint32_t best = enabled.front();
        for (std::uint32_t index : enabled)
            if (priorities_[index] > priorities_[best])
                best = index;
        return best;
    }

  private:
    static constexpr std::int64_t kUnassigned =
        std::numeric_limits<std::int64_t>::min();

    void
    assign_priority(std::uint32_t index)
    {
        if (index >= priorities_.size())
            priorities_.resize(index + 1, kUnassigned);
        // Random distinct positive priority: draw until unused (tiny n).
        for (;;) {
            auto p = static_cast<std::int64_t>(1 + rng_->next_below(1 << 20));
            if (std::find(priorities_.begin(), priorities_.end(), p) ==
                priorities_.end()) {
                priorities_[index] = p;
                return;
            }
        }
    }

    std::uint32_t depth_;
    std::uint64_t* horizon_;
    std::optional<cxlcommon::Xoshiro> rng_;
    std::vector<std::int64_t> priorities_;
    std::vector<std::uint64_t> change_points_;
    std::uint64_t step_ = 0;
    std::int64_t low_water_ = -1;
};

/// Bounded exhaustive enumeration: a prefix of (branch, fanout) pairs is
/// replayed, the first decision past the prefix extends it with branch 0,
/// and advance() bumps the deepest branch with unexplored alternatives.
/// Decisions deeper than max_depth stop branching (always thread 0), so
/// the tree stays finite even for unbounded retry loops.
class DfsPolicy final : public Policy {
  public:
    explicit DfsPolicy(std::uint32_t max_depth) : max_depth_(max_depth) {}

    void
    begin(std::uint64_t) override
    {
        depth_ = 0;
    }

    std::uint32_t
    choose(const std::vector<std::uint32_t>& enabled, std::uint32_t) override
    {
        if (depth_ >= max_depth_)
            return enabled.front();
        if (depth_ == prefix_.size())
            prefix_.push_back(Node{0, enabled.size()});
        Node& node = prefix_[depth_];
        ++depth_;
        // The world re-executes identically under the same prefix, so the
        // fanout cannot change; clamp defensively anyway.
        node.fanout = enabled.size();
        return enabled[std::min<std::size_t>(node.branch, enabled.size() - 1)];
    }

    bool
    advance() override
    {
        while (!prefix_.empty() &&
               prefix_.back().branch + 1 >= prefix_.back().fanout)
            prefix_.pop_back();
        if (prefix_.empty())
            return false;
        ++prefix_.back().branch;
        return true;
    }

  private:
    struct Node {
        std::size_t branch;
        std::size_t fanout;
    };

    std::uint32_t max_depth_;
    std::vector<Node> prefix_;
    std::size_t depth_ = 0;
};

class ReplayPolicy final : public Policy {
  public:
    explicit ReplayPolicy(std::vector<std::uint32_t> trace)
        : trace_(std::move(trace))
    {
    }

    void
    begin(std::uint64_t) override
    {
        next_ = 0;
    }

    std::uint32_t
    choose(const std::vector<std::uint32_t>& enabled, std::uint32_t) override
    {
        if (next_ < trace_.size()) {
            std::uint32_t wanted = trace_[next_++];
            if (std::find(enabled.begin(), enabled.end(), wanted) !=
                enabled.end())
                return wanted;
            throw OracleFailure("replay diverged: recorded vthread " +
                                std::to_string(wanted) +
                                " not runnable at decision " +
                                std::to_string(next_ - 1));
        }
        return enabled.front();
    }

  private:
    std::vector<std::uint32_t> trace_;
    std::size_t next_ = 0;
};

/// Runs one schedule: real std::threads, strictly serialized. Exactly one
/// vthread holds the baton at any instant; every hook event funnels into
/// on_event() below, which consults the policy and hands the baton over.
class Engine {
  public:
    struct Outcome {
        std::uint64_t steps = 0;
        std::vector<std::uint32_t> trace;
        bool truncated = false;
        bool violated = false;
        std::string violation;
        bool killed = false;
        std::uint64_t longest_thread = 0; ///< max yields of any vthread
    };

    Engine(Run& run, Policy& policy, std::uint64_t max_steps,
           std::uint32_t kill_vthread, std::uint64_t kill_yield)
        : run_(run), policy_(policy), max_steps_(max_steps),
          kill_vthread_(kill_vthread), kill_yield_(kill_yield)
    {
        for (std::size_t i = 0; i < run.spawns_.size(); ++i)
            vthreads_.push_back(std::make_unique<Vthread>(
                *this, static_cast<std::uint32_t>(i)));
    }

    Outcome
    execute()
    {
        live_ = static_cast<std::uint32_t>(vthreads_.size());
        for (auto& vt : vthreads_)
            vt->thread = std::thread([this, raw = vt.get()] {
                vthread_main(*raw);
            });
        {
            std::unique_lock<std::mutex> lock(mu_);
            dispatch_locked(kNoVthread);
            done_cv_.wait(lock, [this] { return live_ == 0; });
        }
        for (auto& vt : vthreads_)
            vt->thread.join();
        Outcome out;
        out.steps = steps_;
        out.trace = std::move(trace_);
        out.truncated = truncated_;
        out.violated = violated_;
        out.violation = violation_;
        out.killed = killed_;
        for (auto& vt : vthreads_)
            out.longest_thread = std::max(out.longest_thread, vt->yields);
        return out;
    }

  private:
    enum class State : std::uint8_t { Parked, Running, Done };

    struct Vthread;

    /// Funnels hook events into the owning engine with thread identity.
    struct Proxy final : Listener {
        Engine* engine = nullptr;
        std::uint32_t index = 0;

        void
        on_event(const Event& event) override
        {
            engine->on_event(index, event);
        }
    };

    struct Vthread {
        Vthread(Engine& engine, std::uint32_t index)
        {
            proxy.engine = &engine;
            proxy.index = index;
            this->index = index;
        }

        std::uint32_t index = 0;
        Proxy proxy;
        std::thread thread;
        std::condition_variable cv;
        bool go = false;
        State state = State::Parked;
        std::uint64_t yields = 0;
    };

    void
    vthread_main(Vthread& vt)
    {
        {
            std::unique_lock<std::mutex> lock(mu_);
            vt.cv.wait(lock, [&] { return vt.go || aborting_; });
            if (!vt.go) {
                finish_locked(vt);
                return;
            }
            vt.go = false;
            vt.state = State::Running;
        }
        t_listener = &vt.proxy;
        try {
            run_.spawns_[vt.index].body();
        } catch (const RunAborted&) {
            // Schedule teardown; nothing to record.
        } catch (const VthreadKilled&) {
            // Body chose not to handle its own death; already recorded.
        } catch (const OracleFailure& failure) {
            std::lock_guard<std::mutex> lock(mu_);
            record_violation_locked(failure.what());
        } catch (const std::exception& error) {
            std::lock_guard<std::mutex> lock(mu_);
            record_violation_locked("vthread '" + run_.spawns_[vt.index].name +
                                    "' threw: " + error.what());
        }
        t_listener = nullptr;
        std::lock_guard<std::mutex> lock(mu_);
        finish_locked(vt);
    }

    /// Every instrumented operation of every vthread lands here (with the
    /// caller's listener suppressed): bound check, kill check, oracles,
    /// then the scheduling decision.
    void
    on_event(std::uint32_t index, const Event& event)
    {
        Vthread& vt = *vthreads_[index];
        std::unique_lock<std::mutex> lock(mu_);
        if (aborting_)
            throw RunAborted{};
        ++steps_;
        ++vt.yields;
        if (steps_ > max_steps_) {
            truncated_ = true;
            abort_locked();
            throw RunAborted{};
        }
        if (index == kill_vthread_ && vt.yields == kill_yield_) {
            killed_ = true;
            // The victim unwinds while still holding the baton: its catch
            // handler (mark_crashed etc.) runs un-preempted and unhooked,
            // and the next thread is dispatched only once the body exits.
            throw VthreadKilled{};
        }
        if (!run_.event_oracles_.empty()) {
            lock.unlock();
            try {
                for (const EventOracle& oracle : run_.event_oracles_)
                    oracle(index, event);
            } catch (const OracleFailure& failure) {
                lock.lock();
                record_violation_locked(failure.what());
                throw RunAborted{};
            }
            lock.lock();
            if (aborting_)
                throw RunAborted{};
        }
        std::uint32_t chosen = decide_locked(index);
        if (chosen == index)
            return;
        vt.state = State::Parked;
        wake_locked(chosen);
        vt.cv.wait(lock, [&] { return vt.go || aborting_; });
        if (!vt.go)
            throw RunAborted{};
        vt.go = false;
        vt.state = State::Running;
    }

    void
    finish_locked(Vthread& vt)
    {
        vt.state = State::Done;
        --live_;
        if (live_ == 0) {
            done_cv_.notify_all();
            return;
        }
        if (!aborting_)
            dispatch_locked(vt.index);
        // During an abort the wake chain is already running: every parked
        // thread was notified by abort_locked() and unwinds on its own.
    }

    /// Picks and wakes the next runnable thread (none is running).
    void
    dispatch_locked(std::uint32_t previous)
    {
        std::uint32_t chosen = decide_locked(previous);
        wake_locked(chosen);
    }

    std::uint32_t
    decide_locked(std::uint32_t previous)
    {
        std::vector<std::uint32_t> enabled;
        for (auto& vt : vthreads_)
            if (vt->state != State::Done)
                enabled.push_back(vt->index);
        CXL_ASSERT(!enabled.empty(), "scheduler: no runnable vthread");
        std::uint32_t chosen = policy_.choose(enabled, previous);
        trace_.push_back(chosen);
        return chosen;
    }

    void
    wake_locked(std::uint32_t index)
    {
        Vthread& vt = *vthreads_[index];
        vt.go = true;
        vt.cv.notify_one();
    }

    void
    record_violation_locked(const std::string& message)
    {
        if (!violated_) {
            violated_ = true;
            violation_ = message;
        }
        abort_locked();
    }

    void
    abort_locked()
    {
        aborting_ = true;
        for (auto& vt : vthreads_)
            vt->cv.notify_all();
    }

    Run& run_;
    Policy& policy_;
    std::uint64_t max_steps_;
    std::uint32_t kill_vthread_;
    std::uint64_t kill_yield_;

    std::mutex mu_;
    std::condition_variable done_cv_;
    std::vector<std::unique_ptr<Vthread>> vthreads_;
    std::uint32_t live_ = 0;
    std::uint64_t steps_ = 0;
    std::vector<std::uint32_t> trace_;
    bool aborting_ = false;
    bool truncated_ = false;
    bool violated_ = false;
    std::string violation_;
    bool killed_ = false;
};

std::unique_ptr<Policy>
make_policy(const Options& options, const Failure* replaying,
            std::uint64_t* pct_horizon)
{
    if (replaying != nullptr)
        return std::make_unique<ReplayPolicy>(replaying->trace);
    switch (options.strategy) {
    case Strategy::Random:
        return std::make_unique<RandomPolicy>();
    case Strategy::Pct:
        return std::make_unique<PctPolicy>(std::max(options.pct_depth, 1u),
                                           pct_horizon);
    case Strategy::Dfs:
        return std::make_unique<DfsPolicy>(options.dfs_max_depth);
    case Strategy::Replay:
        CXL_PANIC("Strategy::Replay requires Explorer::replay()");
    }
    CXL_PANIC("unknown strategy");
}

struct KillPlan {
    std::uint32_t vthread = kNoVthread;
    std::uint64_t yield = 0;
};

Result
explore(const Options& options, const std::function<void(Run&)>& factory,
        const Failure* replaying)
{
    Result result;
    std::uint64_t pct_horizon = std::max<std::uint32_t>(options.crash_horizon,
                                                        16);
    std::unique_ptr<Policy> policy =
        make_policy(options, replaying, &pct_horizon);
    // The kill horizon tracks the longest thread seen so far, so kill
    // points cover the whole execution once schedules have been observed.
    std::uint64_t kill_horizon = std::max<std::uint32_t>(options.crash_horizon,
                                                         1);
    std::uint64_t budget = replaying ? 1 : options.schedules;

    for (std::uint64_t index = 0; index < budget; ++index) {
        std::uint64_t seed =
            schedule_seed(replaying ? replaying->seed : options.seed,
                          replaying ? replaying->schedule_index : index);
        policy->begin(seed);

        KillPlan kill;
        if (replaying != nullptr) {
            kill.vthread = replaying->kill_vthread;
            kill.yield = replaying->kill_yield;
        }

        Run run;
        factory(run);
        CXL_ASSERT(!run.spawns_.empty(), "schedule factory spawned nothing");

        if (replaying == nullptr && options.crash &&
            options.strategy != Strategy::Dfs) {
            // Independent stream so kill plans don't perturb the walk.
            std::uint64_t kstate = seed ^ 0xc2b2ae3d27d4eb4fULL;
            cxlcommon::Xoshiro krng(cxlcommon::splitmix64(kstate));
            std::vector<std::uint32_t> killable;
            for (std::size_t i = 0; i < run.spawns_.size(); ++i)
                if (run.spawns_[i].killable)
                    killable.push_back(static_cast<std::uint32_t>(i));
            if (!killable.empty()) {
                kill.vthread = killable[krng.next_below(killable.size())];
                kill.yield = 1 + krng.next_below(kill_horizon);
            }
        }

        Engine engine(run, *policy, options.max_steps, kill.vthread,
                      kill.yield);
        Engine::Outcome outcome = engine.execute();

        ++result.schedules_run;
        result.total_steps += outcome.steps;
        if (outcome.truncated)
            ++result.truncated;
        if (outcome.killed)
            ++result.kills;
        mix(result.fingerprint, outcome.trace.size());
        for (std::uint32_t choice : outcome.trace)
            mix(result.fingerprint, choice);
        mix(result.fingerprint, outcome.killed ? kill.vthread + 1 : 0);
        mix(result.fingerprint, outcome.killed ? kill.yield : 0);
        kill_horizon = std::max(kill_horizon, outcome.longest_thread);

        if (!outcome.violated && !outcome.truncated &&
            !run.end_oracles_.empty()) {
            RunEnd end;
            if (outcome.killed) {
                end.killed = kill.vthread;
                end.kill_yield = kill.yield;
            }
            try {
                for (const EndOracle& oracle : run.end_oracles_)
                    oracle(end);
            } catch (const OracleFailure& failure) {
                outcome.violated = true;
                outcome.violation = failure.what();
            } catch (const std::exception& error) {
                outcome.violated = true;
                outcome.violation = std::string("end oracle threw: ") +
                                    error.what();
            }
        }

        if (outcome.violated) {
            Failure failure;
            failure.message = outcome.violation;
            failure.schedule_index =
                replaying ? replaying->schedule_index : index;
            failure.seed = replaying ? replaying->seed : options.seed;
            failure.trace = std::move(outcome.trace);
            if (outcome.killed) {
                failure.kill_vthread = kill.vthread;
                failure.kill_yield = kill.yield;
            }
            result.failure = std::move(failure);
            result.ok = false;
            return result;
        }

        if (options.strategy == Strategy::Dfs && replaying == nullptr &&
            !policy->advance()) {
            result.exhausted = true;
            break;
        }
    }
    return result;
}

} // namespace

Result
Explorer::run(const std::function<void(Run&)>& factory)
{
    CXL_ASSERT(options_.strategy != Strategy::Replay,
               "use Explorer::replay() to replay a recorded failure");
    return explore(options_, factory, nullptr);
}

Result
Explorer::replay(const Failure& failure,
                 const std::function<void(Run&)>& factory)
{
    return explore(options_, factory, &failure);
}

std::string
format_trace(const std::vector<std::uint32_t>& trace)
{
    std::ostringstream out;
    constexpr std::size_t kMaxShown = 4096;
    for (std::size_t i = 0; i < trace.size() && i < kMaxShown; ++i) {
        if (i != 0)
            out << ',';
        out << trace[i];
    }
    if (trace.size() > kMaxShown)
        out << ",…(+" << trace.size() - kMaxShown << ")";
    return out.str();
}

std::string
Result::summary() const
{
    std::ostringstream out;
    out << (ok ? "ok" : "FAILED") << ": schedules=" << schedules_run
        << " steps=" << total_steps << " truncated=" << truncated
        << " kills=" << kills << (exhausted ? " exhausted" : "")
        << " fingerprint=0x" << std::hex << fingerprint << std::dec;
    if (failure) {
        out << "\n  violation: " << failure->message;
        out << "\n  replay: seed=" << failure->seed
            << " schedule=" << failure->schedule_index;
        if (failure->kill_vthread != kNoVthread)
            out << " kill=vthread[" << failure->kill_vthread << "]@yield "
                << failure->kill_yield;
        out << "\n  trace: " << format_trace(failure->trace);
    }
    return out.str();
}

} // namespace sched
