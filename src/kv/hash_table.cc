#include "kv/hash_table.h"

#include <cstring>

#include "common/assert.h"
#include "common/random.h"

namespace kv {

namespace {

/// The reclaiming thread's context, published around EBR exit so deferred
/// frees can reach the allocator (reclamation always happens on the thread
/// whose Guard is being destroyed).
thread_local pod::ThreadContext* tls_reclaim_ctx = nullptr;

constexpr std::uint64_t kHeader = 24;

} // namespace

HashTable::HashTable(pod::Pod& pod, cxl::HeapOffset buckets,
                     std::uint64_t num_buckets,
                     baselines::PodAllocator* alloc)
    : pod_(pod), buckets_(buckets), num_buckets_(num_buckets), alloc_(alloc),
      ebr_(cxl::kMaxThreads + 1)
{
    CXL_ASSERT(num_buckets > 0, "hash table needs buckets");
}

std::uint64_t
HashTable::hash_bytes(const void* key, std::uint32_t klen)
{
    // FNV-1a, finished with a splitmix avalanche.
    const auto* bytes = static_cast<const unsigned char*>(key);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint32_t i = 0; i < klen; i++) {
        h = (h ^ bytes[i]) * 0x100000001b3ULL;
    }
    return cxlcommon::splitmix64(h);
}

HashTable::Guard::Guard(HashTable* t, pod::ThreadContext& ctx)
    : table(t), me(ctx.tid())
{
    tls_reclaim_ctx = &ctx;
    table->ebr_.enter(me);
}

HashTable::Guard::~Guard()
{
    table->ebr_.exit(me);
    tls_reclaim_ctx = nullptr;
}

void
HashTable::reclaim_node(void* ctx, std::uint64_t offset)
{
    auto* table = static_cast<HashTable*>(ctx);
    if (tls_reclaim_ctx == nullptr) {
        // Teardown drain without a thread context: the arena is being
        // discarded wholesale, so skipping the free is harmless.
        return;
    }
    table->alloc_->deallocate(*tls_reclaim_ctx, offset);
}

bool
HashTable::key_matches(std::uint64_t node, std::uint64_t hash,
                       const void* key, std::uint32_t klen)
{
    auto* raw = pod_.device().raw(node);
    std::uint64_t node_hash;
    std::memcpy(&node_hash, raw + 8, 8);
    if (node_hash != hash) {
        return false;
    }
    std::uint32_t node_klen;
    std::memcpy(&node_klen, raw + 16, 4);
    return node_klen == klen && std::memcmp(raw + kHeader, key, klen) == 0;
}

std::uint64_t
HashTable::alloc_node(pod::ThreadContext& ctx, const void* key,
                      std::uint32_t klen, const void* value,
                      std::uint32_t vlen)
{
    std::uint64_t node = alloc_->allocate(ctx, kHeader + klen + vlen);
    if (node == 0) {
        return 0;
    }
    std::uint64_t hash = hash_bytes(key, klen);
    auto* raw = ctx.mem().data_ptr(node, kHeader + klen + vlen);
    std::memcpy(raw + 8, &hash, 8);
    std::memcpy(raw + 16, &klen, 4);
    std::memcpy(raw + 20, &vlen, 4);
    std::memcpy(raw + kHeader, key, klen);
    if (vlen > 0) {
        std::memcpy(raw + kHeader + klen, value, vlen);
    }
    return node;
}

void
HashTable::link_node(pod::ThreadContext& ctx, std::uint64_t node)
{
    Guard guard(this, ctx);
    std::uint64_t hash;
    std::memcpy(&hash, pod_.device().raw(node + 8), 8);
    std::atomic<std::uint64_t>& head = bucket(hash % num_buckets_);
    std::uint64_t h = head.load(std::memory_order_acquire);
    do {
        next_ref(node).store(h, std::memory_order_relaxed);
    } while (!head.compare_exchange_weak(h, node, std::memory_order_acq_rel,
                                         std::memory_order_acquire));
    size_.fetch_add(1, std::memory_order_relaxed);
}

bool
HashTable::contains_node(pod::ThreadContext& ctx, std::uint64_t node)
{
    Guard guard(this, ctx);
    std::uint64_t hash;
    std::memcpy(&hash, pod_.device().raw(node + 8), 8);
    std::uint64_t cur =
        bucket(hash % num_buckets_).load(std::memory_order_acquire) & ~kMark;
    while (cur != 0) {
        std::uint64_t next = next_word(cur);
        if (cur == node) {
            return !(next & kMark);
        }
        cur = next & ~kMark;
    }
    return false;
}

bool
HashTable::insert(pod::ThreadContext& ctx, const void* key,
                  std::uint32_t klen, const void* value, std::uint32_t vlen)
{
    std::uint64_t node = alloc_node(ctx, key, klen, value, vlen);
    if (node == 0) {
        return false;
    }
    link_node(ctx, node);
    return true;
}

bool
HashTable::get(pod::ThreadContext& ctx, const void* key, std::uint32_t klen,
               void* out, std::uint32_t cap, std::uint32_t* vlen_out)
{
    std::uint64_t hash = hash_bytes(key, klen);
    Guard guard(this, ctx);
    std::uint64_t node =
        bucket(hash % num_buckets_).load(std::memory_order_acquire) & ~kMark;
    while (node != 0) {
        std::uint64_t next = next_word(node);
        if (!(next & kMark) && key_matches(node, hash, key, klen)) {
            // Refcount-per-access designs (cxl-shm) pin the object here —
            // the hot-key contention the paper measures on YCSB-A/D.
            alloc_->on_access(ctx, node);
            auto* raw = pod_.device().raw(node);
            std::uint32_t vlen;
            std::memcpy(&vlen, raw + 20, 4);
            if (vlen_out != nullptr) {
                *vlen_out = vlen;
            }
            if (out != nullptr && cap > 0) {
                std::memcpy(out, raw + kHeader + klen,
                            vlen < cap ? vlen : cap);
            }
            alloc_->after_access(ctx, node);
            return true;
        }
        node = next & ~kMark;
    }
    return false;
}

bool
HashTable::remove(pod::ThreadContext& ctx, const void* key,
                  std::uint32_t klen)
{
    std::uint64_t hash = hash_bytes(key, klen);
    Guard guard(this, ctx);
retry:
    std::atomic<std::uint64_t>* prev = &bucket(hash % num_buckets_);
    std::uint64_t node = prev->load(std::memory_order_acquire) & ~kMark;
    while (node != 0) {
        std::uint64_t next = next_word(node);
        if (next & kMark) {
            // Help finish the in-progress deletion: unlink the marked node
            // from prev. Exactly one unlink CAS can succeed (a marked
            // predecessor's next word carries the mark bit and cannot
            // match), so the retire happens once.
            std::uint64_t expected = node;
            if (prev->compare_exchange_strong(expected, next & ~kMark,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
                ebr_.retire(guard.me,
                            cxlsync::Retired{reclaim_node, this, node});
                node = next & ~kMark;
                continue;
            }
            prev = &next_ref(node);
            node = next & ~kMark;
            continue;
        }
        if (!key_matches(node, hash, key, klen)) {
            prev = &next_ref(node);
            node = next & ~kMark;
            continue;
        }
        // Logical delete: mark the node's next pointer.
        if (!next_ref(node).compare_exchange_strong(
                next, next | kMark, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
            goto retry; // raced; rescan the bucket
        }
        // Physical unlink (best effort; a failed CAS leaves the marked
        // node for later traversals, which skip it).
        std::uint64_t expected = node;
        if (prev->compare_exchange_strong(expected, next & ~kMark,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
            ebr_.retire(guard.me, cxlsync::Retired{reclaim_node, this, node});
        }
        size_.fetch_sub(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
HashTable::quiesce(pod::ThreadContext& ctx)
{
    tls_reclaim_ctx = &ctx;
    ebr_.drain_all();
    tls_reclaim_ctx = nullptr;
}

void
HashTable::clear(pod::ThreadContext& ctx)
{
    tls_reclaim_ctx = &ctx;
    ebr_.drain_all();
    tls_reclaim_ctx = nullptr;
    for (std::uint64_t b = 0; b < num_buckets_; b++) {
        std::uint64_t node = bucket(b).load(std::memory_order_relaxed);
        bucket(b).store(0, std::memory_order_relaxed);
        node &= ~kMark;
        while (node != 0) {
            std::uint64_t next = next_word(node) & ~kMark;
            alloc_->deallocate(ctx, node);
            node = next;
        }
    }
    size_.store(0, std::memory_order_relaxed);
}

} // namespace kv
