/// @file
/// KvStore: the in-memory key-value store used end-to-end in the paper's
/// macro-benchmarks (Fig. 8). Binds the lock-free hash-table index to a
/// PodAllocator under test and provides the key/value shapes the workloads
/// (YCSB, memcached traces) generate.

#pragma once

#include <cstdint>

#include "kv/hash_table.h"

namespace kv {

/// Result counters for a workload run over the store.
struct StoreCounters {
    std::uint64_t inserts = 0;
    std::uint64_t reads = 0;
    std::uint64_t hits = 0;
    std::uint64_t removes = 0;
    std::uint64_t updates = 0;
    /// Operations the allocator could not serve (e.g. >1 KiB on a
    /// cxl-shm-style allocator) — the paper reports these as crashes.
    std::uint64_t alloc_failures = 0;

    StoreCounters&
    operator+=(const StoreCounters& o)
    {
        inserts += o.inserts;
        reads += o.reads;
        hits += o.hits;
        removes += o.removes;
        updates += o.updates;
        alloc_failures += o.alloc_failures;
        return *this;
    }
};

/// A key-value store over one allocator.
class KvStore {
  public:
    KvStore(pod::Pod& pod, cxl::HeapOffset bucket_region,
            std::uint64_t num_buckets, baselines::PodAllocator* alloc)
        : table_(pod, bucket_region, num_buckets, alloc)
    {
    }

    /// Builds a key of exactly @p klen bytes from the 64-bit key id
    /// (workload keys are 8-82 bytes, Table 2).
    static void format_key(std::uint64_t id, std::uint32_t klen, char* out);

    bool
    insert(pod::ThreadContext& ctx, std::uint64_t id, std::uint32_t klen,
           const void* value, std::uint32_t vlen)
    {
        char key[96];
        format_key(id, klen, key);
        return table_.insert(ctx, key, klen, value, vlen);
    }

    bool
    get(pod::ThreadContext& ctx, std::uint64_t id, std::uint32_t klen,
        void* out, std::uint32_t cap)
    {
        char key[96];
        format_key(id, klen, key);
        std::uint32_t vlen = 0;
        return table_.get(ctx, key, klen, out, cap, &vlen);
    }

    bool
    remove(pod::ThreadContext& ctx, std::uint64_t id, std::uint32_t klen)
    {
        char key[96];
        format_key(id, klen, key);
        return table_.remove(ctx, key, klen);
    }

    HashTable& table() { return table_; }

  private:
    HashTable table_;
};

} // namespace kv
