#include "kv/kv_store.h"

#include <cstdio>
#include <cstring>

#include "common/assert.h"

namespace kv {

void
KvStore::format_key(std::uint64_t id, std::uint32_t klen, char* out)
{
    CXL_ASSERT(klen >= 8 && klen <= 95, "key length out of supported range");
    // Key = decimal id, left-padded with 'k' to the requested width,
    // mirroring YCSB's "userNNNN" shape at arbitrary lengths.
    char digits[24];
    int n = std::snprintf(digits, sizeof digits, "%llu",
                          static_cast<unsigned long long>(id));
    if (static_cast<std::uint32_t>(n) >= klen) {
        std::memcpy(out, digits + (static_cast<std::uint32_t>(n) - klen),
                    klen);
        return;
    }
    std::uint32_t pad = klen - static_cast<std::uint32_t>(n);
    std::memset(out, 'k', pad);
    std::memcpy(out + pad, digits, static_cast<std::size_t>(n));
}

} // namespace kv
