/// @file
/// Lock-free, non-resizable hash table — the index used in the paper's
/// key-value store evaluation (§5.2.1): "we adapt cxl-shm's non-resizable
/// lock-free hash table to support all allocators ... In order to support
/// deletion, we also adapt it to use token-passing epoch-based
/// reclamation [40]".
///
/// The bucket array lives in a reserved device region (the index is not
/// itself a benchmarked allocation); nodes come from the PodAllocator under
/// test. Buckets are Harris-style singly linked lists: deletion first marks
/// the node's next pointer, then unlinks, then retires the node to the
/// epoch reclamation scheme.

#pragma once

#include <atomic>
#include <cstdint>

#include "baselines/pod_allocator.h"
#include "pod/pod.h"
#include "sync/token_epoch.h"

namespace kv {

/// Node layout (device offsets relative to the node):
///   +0  next   u64 (low bit = deletion mark)
///   +8  hash   u64
///   +16 klen   u32
///   +20 vlen   u32
///   +24 key bytes, then value bytes
class HashTable {
  public:
    /// @param buckets  device offset of a zeroed region holding
    ///                 @p num_buckets 8-byte bucket heads.
    HashTable(pod::Pod& pod, cxl::HeapOffset buckets,
              std::uint64_t num_buckets, baselines::PodAllocator* alloc);

    /// Space the bucket array needs.
    static std::uint64_t
    footprint(std::uint64_t num_buckets)
    {
        return num_buckets * 8;
    }

    /// Inserts a key/value pair (newest insert shadows older ones).
    /// Returns false if the allocator could not serve the node (e.g.
    /// cxl-shm-style allocators on values > 1 KiB).
    bool insert(pod::ThreadContext& ctx, const void* key, std::uint32_t klen,
                const void* value, std::uint32_t vlen);

    /// Builds an unlinked node (for detectably-recoverable callers that
    /// record the node offset before publishing it). 0 on alloc failure.
    std::uint64_t alloc_node(pod::ThreadContext& ctx, const void* key,
                             std::uint32_t klen, const void* value,
                             std::uint32_t vlen);

    /// Publishes a node built by alloc_node. Idempotence is the caller's
    /// job (check contains_node first on recovery paths).
    void link_node(pod::ThreadContext& ctx, std::uint64_t node);

    /// True if @p node is currently linked (and unmarked) in its bucket.
    bool contains_node(pod::ThreadContext& ctx, std::uint64_t node);

    /// Looks up @p key; if found, copies up to @p cap value bytes into
    /// @p out (when non-null), stores the value length, and returns true.
    bool get(pod::ThreadContext& ctx, const void* key, std::uint32_t klen,
             void* out, std::uint32_t cap, std::uint32_t* vlen_out);

    /// Removes the newest node for @p key; the node is reclaimed through
    /// epoch-based reclamation once no reader can hold it.
    bool remove(pod::ThreadContext& ctx, const void* key,
                std::uint32_t klen);

    /// Number of live entries (approximate under concurrency).
    std::uint64_t size() const { return size_.load(); }

    /// Visits every live node offset (quiescent use: recovery/GC roots).
    template <typename F>
    void
    for_each_node(F&& visit)
    {
        for (std::uint64_t b = 0; b < num_buckets_; b++) {
            std::uint64_t node = bucket(b).load(std::memory_order_acquire);
            while ((node & ~kMark) != 0) {
                std::uint64_t off = node & ~kMark;
                std::uint64_t next = next_word(off);
                if (!(next & kMark)) {
                    visit(off);
                }
                node = next;
            }
        }
    }

    /// Frees every node back to the allocator (bench teardown; quiescent).
    void clear(pod::ThreadContext& ctx);

    /// Drains the epoch-reclamation limbo lists (quiescent use): retired
    /// nodes return to the allocator without touching live entries.
    void quiesce(pod::ThreadContext& ctx);

    baselines::PodAllocator& allocator() { return *alloc_; }

    static std::uint64_t hash_bytes(const void* key, std::uint32_t klen);

  private:
    static constexpr std::uint64_t kMark = 1;

    std::atomic<std::uint64_t>&
    bucket(std::uint64_t index)
    {
        return *reinterpret_cast<std::atomic<std::uint64_t>*>(
            pod_.device().raw(buckets_ + index * 8));
    }

    std::atomic<std::uint64_t>&
    next_ref(std::uint64_t node)
    {
        return *reinterpret_cast<std::atomic<std::uint64_t>*>(
            pod_.device().raw(node));
    }

    std::uint64_t
    next_word(std::uint64_t node)
    {
        return next_ref(node).load(std::memory_order_acquire);
    }

    bool key_matches(std::uint64_t node, std::uint64_t hash, const void* key,
                     std::uint32_t klen);

    /// RAII epoch guard that also publishes the reclaiming context.
    struct Guard {
        Guard(HashTable* table, pod::ThreadContext& ctx);
        ~Guard();
        HashTable* table;
        std::uint32_t me;
    };

    static void reclaim_node(void* ctx, std::uint64_t offset);

    pod::Pod& pod_;
    cxl::HeapOffset buckets_;
    std::uint64_t num_buckets_;
    baselines::PodAllocator* alloc_;
    cxlsync::TokenEpoch ebr_;
    std::atomic<std::uint64_t> size_{0};
};

} // namespace kv
