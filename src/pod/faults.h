/// @file
/// Deterministic pod fault injection: declarative FaultPlans (edge-down,
/// edge-flap, NMP doorbell stall/delay, host-kill) driven by a step clock,
/// plus the central fault-point registry mirroring pod/crashpoint.h.
///
/// Where the crashpoint registry names the *protocol* points a thread can
/// die at, the fault-point registry names the *infrastructure* faults the
/// pod must survive: link health transitions, engine stalls, whole-host
/// deaths. Sweep tests iterate FaultPointRegistry::all() and inject every
/// point mid-workload (FaultPlan::for_point), asserting the accounting
/// oracles hold after recovery — exactly the discipline the crashpoint
/// sweeps established for §5.1 thread crashes.
///
/// Determinism and sched composability: a FaultInjector owns a logical
/// step clock advanced by the workload (step() between operations), so a
/// plan's events fire at exact, replayable points in the op stream — no
/// wall-clock, no racing timer thread. Every firing passes through
/// sched::hook with the fault point id, so under the schedule explorer a
/// fault is one more yield the explorer can order against every other
/// thread's yields: "every fault at any chosen yield" falls out of the
/// explorer's existing interleaving search.
///
/// The injector *applies* edge and NMP faults directly (they are pure
/// state flips on the shared Topology health table / Nmp engine). A
/// host-kill only latches a flag: threads of a simulated host are host-
/// side constructs owned by the harness, so the harness observes
/// host_killed() and crashes them (Pod::mark_crashed per context, or
/// Pod::mark_host_crashed for contexts that are simply gone) — after
/// which the LivenessDetector notices the missed leases and drives
/// adoption + recovery.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cxl/types.h"
#include "pod/topology.h"

namespace pod {

class Pod;

/// Identifies one injectable fault site. Same id discipline as
/// CrashPointId: plain ints in a global namespace, registered by name.
using FaultPointId = int;

struct FaultPointInfo {
    FaultPointId id = 0;
    /// Stable dotted name, e.g. "fault.edge_down".
    std::string name;
    /// Human-readable site, e.g. "Topology::set_edge_state(Down)".
    std::string site;
};

/// Process-wide fault-point registry; mirrors CrashPointRegistry
/// (idempotent add, conflicting re-registration aborts, node-stable
/// storage).
class FaultPointRegistry {
  public:
    static FaultPointRegistry& instance();

    void add(FaultPointId id, std::string_view name, std::string_view site);

    /// Null if the id was never registered.
    const FaultPointInfo* find(FaultPointId id) const;

    /// Null if no point has this name.
    const FaultPointInfo* find_name(std::string_view name) const;

    /// Every registered point, sorted by id.
    std::vector<FaultPointInfo> all() const;

  private:
    FaultPointRegistry() = default;
};

/// Registered name of @p id, or "faultpoint:<id>" for unknown points.
std::string fault_point_name(FaultPointId id);

/// The pod-level fault points. Ids 50+ keep clear of the allocator's
/// crashpoints (single digits), memento's app points, and the migrator's
/// 30-35 block — fault ids ride the same sched::Op::CrashPoint hook aux
/// channel, so the spaces must not collide.
namespace faultpoint {

inline constexpr FaultPointId kEdgeDown = 50; ///< edge drops, stays Down
inline constexpr FaultPointId kEdgeFlap = 51; ///< edge drops, later recovers
inline constexpr FaultPointId kNmpStall = 52; ///< doorbells unanswered
inline constexpr FaultPointId kNmpDelay = 53; ///< doorbells answered slowly
inline constexpr FaultPointId kHostKill = 54; ///< whole host dies

} // namespace faultpoint

/// Registers the pod fault points with FaultPointRegistry (idempotent;
/// called by the FaultInjector constructor).
void register_fault_points();

/// The injectable fault kinds, one per registered fault point.
enum class FaultKind : std::uint8_t {
    EdgeDown, ///< (host, device) edge -> Down, no scheduled recovery
    EdgeFlap, ///< edge -> Down, back -> Up after recover_after steps
    NmpStall, ///< next `count` working doorbells unanswered
    NmpDelay, ///< next `count` doorbells answered `delay_ns` late
    HostKill, ///< host dies: harness crashes its threads, leases stop
};

FaultPointId fault_point_of(FaultKind kind);

/// One scripted fault of a FaultPlan.
struct FaultEvent {
    FaultKind kind = FaultKind::EdgeDown;
    /// Edge coordinates (EdgeDown/EdgeFlap) or the victim (HostKill).
    HostId host = 0;
    cxl::DeviceId device = 0;
    /// Injector step at which the fault fires (steps count from 1: the
    /// n-th step() call fires events with at_step == n).
    std::uint64_t at_step = 0;
    /// EdgeFlap: steps after firing at which the edge returns to Up.
    std::uint64_t recover_after = 0;
    /// NmpStall/NmpDelay: doorbells covered.
    std::uint32_t count = 1;
    /// NmpDelay: extra simulated ns per covered doorbell.
    std::uint64_t delay_ns = 0;
};

/// A declarative, deterministic fault script: events fire in at_step
/// order as the injector's clock advances. Builder methods return *this
/// so storms read as one expression.
struct FaultPlan {
    std::vector<FaultEvent> events;

    FaultPlan& edge_down(HostId host, cxl::DeviceId device,
                         std::uint64_t at_step);
    FaultPlan& edge_flap(HostId host, cxl::DeviceId device,
                         std::uint64_t at_step, std::uint64_t down_for);
    FaultPlan& nmp_stall(std::uint64_t at_step, std::uint32_t doorbells);
    FaultPlan& nmp_delay(std::uint64_t at_step, std::uint64_t extra_ns,
                         std::uint32_t doorbells);
    FaultPlan& host_kill(HostId host, std::uint64_t at_step);

    /// Sweep helper: the canonical single-event plan for a registered
    /// fault point (sane defaults: flaps recover after 4 steps, stalls
    /// cover 2 doorbells, delays add 500 ns). Aborts on unknown ids.
    static FaultPlan for_point(FaultPointId point, HostId host,
                               cxl::DeviceId device, std::uint64_t at_step);
};

/// Applies a FaultPlan against one Pod on a deterministic step clock.
class FaultInjector {
  public:
    FaultInjector(Pod& pod, FaultPlan plan);

    /// Advances the fault clock one step and fires every event (and every
    /// scheduled flap recovery) that is due. Call between workload
    /// operations; under the sched explorer each firing is a yield.
    void step();

    /// Steps taken so far.
    std::uint64_t now() const { return now_; }

    /// Events fired so far.
    std::uint64_t fired() const { return fired_; }

    /// True once every event has fired and every flap has recovered.
    bool done() const;

    /// True once a HostKill event for @p host has fired. The harness is
    /// responsible for actually crashing the host's threads (see the file
    /// comment); this flag is how workers learn their host died.
    bool host_killed(HostId host) const { return killed_[host]; }

  private:
    void fire(const FaultEvent& event);

    struct PendingRecover {
        std::uint64_t at_step = 0;
        HostId host = 0;
        cxl::DeviceId device = 0;
    };

    Pod& pod_;
    std::vector<FaultEvent> events_; ///< sorted by at_step, stable
    std::size_t next_event_ = 0;
    std::vector<PendingRecover> recovers_;
    std::uint64_t now_ = 0;
    std::uint64_t fired_ = 0;
    std::array<bool, kMaxHosts> killed_{};
};

} // namespace pod
