/// @file
/// Host liveness: per-host heartbeat leases in HWcc memory and the
/// monitor-side detector that turns missed leases into Suspect/Dead
/// verdicts and an adoption work list.
///
/// Protocol (docs/RECOVERY.md "Host- and link-level failures"): each host
/// owns one 8-byte lease cell in an always-coherent sync region. Threads
/// of the host bump the cell's sequence number (beat()) as they make
/// progress; a monitor on a surviving host polls all cells on its own
/// cadence. A cell whose sequence did not advance between two polls is a
/// missed lease. After `suspect_after` consecutive misses the host turns
/// Suspect (no action yet — it may just be slow, or the monitor's *link*
/// to the lease device may be flapping); after `dead_after` misses it is
/// declared Dead: the detector flips every Live slot of the host to
/// Crashed via Pod::mark_host_crashed and hands the caller the newly-dead
/// host so it can adopt the slots (Pod::adopt_thread) and run the
/// allocator's ordered multi-shard recover(). A Suspect host that beats
/// again returns to Alive and increments the false_suspects counter — the
/// gauge CI budgets to keep the detector honest (a detector that
/// suspects everyone is useless; one that never suspects is deaf).
///
/// Determinism: the detector has no timer. beat() and poll() are explicit
/// calls on the workload's own step cadence, so under the sched explorer
/// a liveness verdict is an ordinary sequence of instrumented loads the
/// explorer can interleave against in-flight mCAS batches and migrations.
///
/// Degraded links: beat() and poll() tolerate cxl::EdgeDownError. A beat
/// lost to a Down edge simply does not advance the sequence; a poll that
/// cannot reach the lease device counts the read as a miss — from the
/// monitor's seat, "I cannot observe the lease" and "the host stopped
/// beating" are indistinguishable, which is exactly why Dead requires
/// several consecutive misses.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cxl/types.h"
#include "pod/topology.h"

namespace cxl {
class MemSession;
}

namespace pod {

class Pod;

/// Monitor-side view of one host.
enum class HostHealth : std::uint8_t {
    Alive,
    Suspect, ///< missed >= suspect_after consecutive leases
    Dead,    ///< missed >= dead_after; slots crashed, awaiting adoption
};

const char* to_string(HostHealth health);

struct LivenessConfig {
    /// Device offset of host 0's lease cell; host h's cell is
    /// lease_base + 8h. All kMaxHosts cells must lie inside an
    /// always-coherent sync region (HWcc, or a window's device-biased
    /// prefix) reachable by the beating hosts and the monitor.
    cxl::HeapOffset lease_base = 0;
    /// Consecutive missed polls before a host turns Suspect.
    std::uint32_t suspect_after = 2;
    /// Consecutive missed polls before a host is declared Dead.
    std::uint32_t dead_after = 4;
};

/// Bytes of sync space the lease table occupies.
inline constexpr std::uint64_t kLeaseTableBytes = kMaxHosts * 8;

class LivenessDetector {
  public:
    LivenessDetector(Pod& pod, const LivenessConfig& config);

    /// Cell offset of @p host's lease.
    static cxl::HeapOffset
    lease_cell(cxl::HeapOffset lease_base, HostId host)
    {
        return lease_base + static_cast<cxl::HeapOffset>(host) * 8;
    }

    /// Advances @p host's lease sequence through @p mem (a session of a
    /// thread on that host). Load-increment-store, not CAS: every writer
    /// belongs to the same host, and a lost increment still advances the
    /// sequence past the monitor's last observation. Swallows
    /// cxl::EdgeDownError — a beat the fabric dropped is a missed lease,
    /// not a crash.
    static void beat(cxl::MemSession& mem, cxl::HeapOffset lease_base,
                     HostId host);

    /// One monitor round over every host's cell through @p mem (the
    /// monitor's session). The first call is the priming round: it
    /// records baseline sequences and counts no misses. Returns the hosts
    /// newly declared Dead this round, whose slots have already been
    /// flipped to Crashed (Pod::mark_host_crashed) — the caller owns
    /// adoption and recovery.
    std::vector<HostId> poll(cxl::MemSession& mem);

    HostHealth health(HostId host) const { return cells_[host].health; }

    /// Consecutive misses currently held against @p host.
    std::uint32_t misses(HostId host) const { return cells_[host].misses; }

    /// Suspect hosts that beat again (CI gauge liveness.false_suspects).
    std::uint64_t false_suspects() const { return false_suspects_; }

    /// Hosts declared Dead so far.
    std::uint64_t deaths() const { return deaths_; }

    /// Monitor rounds completed (priming round included).
    std::uint64_t rounds() const { return rounds_; }

  private:
    struct HostCell {
        std::uint64_t last_seq = 0;
        std::uint32_t misses = 0;
        HostHealth health = HostHealth::Alive;
    };

    Pod& pod_;
    LivenessConfig config_;
    std::array<HostCell, kMaxHosts> cells_{};
    std::uint64_t rounds_ = 0;
    std::uint64_t false_suspects_ = 0;
    std::uint64_t deaths_ = 0;
};

} // namespace pod
