#include "pod/pod.h"

#include "common/assert.h"

namespace pod {

Pod::Pod(const PodConfig& config)
    : config_(config), device_(config.device), nmp_(&device_)
{
    CXL_FATAL_IF(!config_.topology.trivial() &&
                     device_.windows() != config_.topology.devices(),
                 "topology devices must match device windows");
    slots_.fill(SlotState::Free);
}

Process*
Pod::create_process(HostId host)
{
    std::lock_guard<std::mutex> lock(mu_);
    CXL_FATAL_IF(processes_.size() >= cxl::kMaxProcesses,
                 "too many processes in pod");
    CXL_FATAL_IF(host >= config_.topology.hosts(),
                 "process host id outside the pod topology");
    auto pid = static_cast<std::uint32_t>(processes_.size());
    processes_.push_back(std::make_unique<Process>(
        this, pid, config_.checked_mappings, host));
    return processes_.back().get();
}

std::unique_ptr<ThreadContext>
Pod::create_thread(Process* process)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::uint32_t tid = 1; tid <= cxl::kMaxThreads; tid++) {
        if (slots_[tid] == SlotState::Free) {
            slots_[tid] = SlotState::Live;
            slot_host_[tid] = static_cast<HostId>(process->host());
            return std::make_unique<ThreadContext>(
                process, static_cast<cxl::ThreadId>(tid));
        }
    }
    CXL_FATAL("no free thread slots in pod");
}

void
Pod::mark_crashed(std::unique_ptr<ThreadContext> context,
                  CrashSeverity severity)
{
    CXL_ASSERT(context != nullptr, "null context");
    if (severity == CrashSeverity::Process) {
        // The host's coherent cache survives a process crash; the dead
        // thread's stores remain visible to the pod.
        context->mem().cache().writeback_all();
    } else {
        // A host crash loses everything that was not explicitly flushed.
        context->mem().drop_cache();
    }
    std::lock_guard<std::mutex> lock(mu_);
    CXL_ASSERT(slots_[context->tid()] == SlotState::Live,
               "crashing a non-live slot");
    slots_[context->tid()] = SlotState::Crashed;
}

std::unique_ptr<ThreadContext>
Pod::adopt_thread(Process* process, cxl::ThreadId tid)
{
    std::lock_guard<std::mutex> lock(mu_);
    CXL_ASSERT(slots_[tid] == SlotState::Crashed,
               "adopting a slot that is not crashed");
    slots_[tid] = SlotState::Live;
    slot_host_[tid] = static_cast<HostId>(process->host());
    return std::make_unique<ThreadContext>(process, tid);
}

void
Pod::release_thread(std::unique_ptr<ThreadContext> context)
{
    CXL_ASSERT(context != nullptr, "null context");
    std::lock_guard<std::mutex> lock(mu_);
    CXL_ASSERT(slots_[context->tid()] == SlotState::Live,
               "releasing a non-live slot");
    slots_[context->tid()] = SlotState::Free;
}

SlotState
Pod::slot_state(cxl::ThreadId tid) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return slots_[tid];
}

std::vector<cxl::ThreadId>
Pod::crashed_threads() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<cxl::ThreadId> out;
    for (std::uint32_t tid = 1; tid <= cxl::kMaxThreads; tid++) {
        if (slots_[tid] == SlotState::Crashed) {
            out.push_back(static_cast<cxl::ThreadId>(tid));
        }
    }
    return out;
}

HostId
Pod::slot_host(cxl::ThreadId tid) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return slot_host_[tid];
}

std::vector<cxl::ThreadId>
Pod::threads_of_host(HostId host) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<cxl::ThreadId> out;
    for (std::uint32_t tid = 1; tid <= cxl::kMaxThreads; tid++) {
        if (slots_[tid] != SlotState::Free && slot_host_[tid] == host) {
            out.push_back(static_cast<cxl::ThreadId>(tid));
        }
    }
    return out;
}

std::vector<cxl::ThreadId>
Pod::mark_host_crashed(HostId host)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<cxl::ThreadId> out;
    for (std::uint32_t tid = 1; tid <= cxl::kMaxThreads; tid++) {
        if (slots_[tid] == SlotState::Live && slot_host_[tid] == host) {
            slots_[tid] = SlotState::Crashed;
            out.push_back(static_cast<cxl::ThreadId>(tid));
        }
    }
    return out;
}

} // namespace pod
