#include "pod/crashpoint.h"

#include <map>
#include <mutex>

#include "common/assert.h"

namespace pod {

namespace {
std::mutex g_mu;

/// Node-based so pointers handed out by find() survive later add() calls.
std::map<CrashPointId, CrashPointInfo>&
points()
{
    static std::map<CrashPointId, CrashPointInfo> map;
    return map;
}
} // namespace

CrashPointRegistry&
CrashPointRegistry::instance()
{
    static CrashPointRegistry registry;
    return registry;
}

void
CrashPointRegistry::add(CrashPointId id, std::string_view name,
                        std::string_view site)
{
    std::lock_guard<std::mutex> lock(g_mu);
    auto [it, inserted] = points().try_emplace(
        id, CrashPointInfo{id, std::string(name), std::string(site)});
    if (!inserted) {
        CXL_ASSERT(it->second.name == name,
                   "crashpoint id registered twice with different names");
    }
}

const CrashPointInfo*
CrashPointRegistry::find(CrashPointId id) const
{
    std::lock_guard<std::mutex> lock(g_mu);
    auto it = points().find(id);
    return it != points().end() ? &it->second : nullptr;
}

const CrashPointInfo*
CrashPointRegistry::find_name(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(g_mu);
    for (const auto& [id, info] : points())
        if (info.name == name)
            return &info;
    return nullptr;
}

std::vector<CrashPointInfo>
CrashPointRegistry::all() const
{
    std::lock_guard<std::mutex> lock(g_mu);
    std::vector<CrashPointInfo> out;
    out.reserve(points().size());
    for (const auto& [id, info] : points())
        out.push_back(info);
    return out;
}

std::string
crashpoint_name(CrashPointId id)
{
    const CrashPointInfo* info = CrashPointRegistry::instance().find(id);
    return info != nullptr ? info->name : "crashpoint:" + std::to_string(id);
}

} // namespace pod
