/// @file
/// Pod topology: N hosts x M memory devices and the per-(host, device)
/// edge-cost matrix that routes every memory operation (see
/// docs/POD_TOPOLOGY.md).
///
/// Substitution note: a real CXL pod wires hosts to multi-headed devices
/// through a fabric where distance is not uniform — a host reaches its
/// directly-attached head in one hop, other heads through switches (more
/// latency, less bandwidth), and in sparse Octopus-style pods some heads
/// not at all. This class models exactly that: a dense matrix of
/// cxl::EdgeCost entries, where an edge's extra read/write/bandwidth cost
/// rides on top of the base LatencyModel and `reachable == false` means
/// there is no wire.
///
/// Offsets carry their device id in the high window bits (cxl::DeviceConfig
/// windows/window_bits), so routing an offset is a shift — no table lookup
/// on the access path. The topology *shape* (who is wired to what, at what
/// cost) is immutable after construction and shared read-only by every
/// session; runtime edge *health* (cxl::EdgeState Up/Suspect/Down + epoch)
/// lives in a shared side table that copies of the Topology alias, so the
/// fault layer can degrade an edge and every session/allocator handle
/// observes it.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cxl/types.h"

namespace pod {

using HostId = std::uint16_t;

/// Maximum hosts in a pod (bounded by thread slots: every host needs room
/// for at least one thread).
inline constexpr std::uint32_t kMaxHosts = 16;

/// An immutable N-host x M-device reachability/latency/bandwidth matrix.
class Topology {
  public:
    /// The trivial 1x1 pod: one host, one device, zero-cost edge — the
    /// legacy single-device configuration.
    Topology() : Topology(1, 1) {}

    /// A pod of @p hosts x @p devices with every edge reachable at zero
    /// extra cost. Edit edges via edge() before wiring sessions.
    Topology(std::uint32_t hosts, std::uint32_t devices);

    /// Dense preset: every host reaches every device. The device nearest
    /// to a host (its directly-attached head, devices spread evenly over
    /// hosts) costs @p near; every other edge costs @p far.
    static Topology dense(std::uint32_t hosts, std::uint32_t devices,
                          const cxl::EdgeCost& near,
                          const cxl::EdgeCost& far);

    /// Octopus-style sparse preset: host h reaches only @p arms devices —
    /// its nearest head at @p near cost plus the following arms-1 heads
    /// (mod devices) at @p far. Every other edge is unreachable.
    static Topology octopus(std::uint32_t hosts, std::uint32_t devices,
                            std::uint32_t arms, const cxl::EdgeCost& near,
                            const cxl::EdgeCost& far);

    /// Tiered preset: @p base plus one host-private local-DRAM device per
    /// host. DRAM device h' = base.devices() + h is reachable only from
    /// host h, at zero edge cost (the base LatencyModel carries the DRAM
    /// latency; CXL edges carry the fabric adders on top), and is tagged
    /// cxl::MemTier::LocalDram so capacity placement skips it — only the
    /// allocator's explicit tiering policy lands there. Requires
    /// base.devices() + base.hosts() <= cxl::kMaxDevices.
    static Topology with_local_dram(const Topology& base);

    std::uint32_t hosts() const { return hosts_; }
    std::uint32_t devices() const { return devices_; }

    /// True for the legacy 1 host x 1 device configuration.
    bool trivial() const { return hosts_ == 1 && devices_ == 1; }

    cxl::EdgeCost&
    edge(HostId host, cxl::DeviceId device)
    {
        return edges_[index(host, device)];
    }

    const cxl::EdgeCost&
    edge(HostId host, cxl::DeviceId device) const
    {
        return edges_[index(host, device)];
    }

    bool
    reachable(HostId host, cxl::DeviceId device) const
    {
        return edge(host, device).reachable;
    }

    /// Host @p host's full edge row (devices() entries) — what
    /// cxl::MemSession::set_pod_routing consumes. Stable for the lifetime
    /// of the Topology.
    const cxl::EdgeCost*
    row(HostId host) const
    {
        return &edges_[index(host, 0)];
    }

    /// The host's home device: its cheapest reachable CXL-tier edge (ties
    /// to the lowest device id). First-touch placement allocates here.
    /// LocalDram edges never qualify — a private DRAM window must not
    /// silently absorb placement meant for the shared fabric.
    cxl::DeviceId home_of(HostId host) const;

    /// Every CXL-tier device reachable from @p host, cheapest edge first
    /// (home at the front): the allocator's placement-then-steal probe
    /// order. LocalDram devices are excluded (see home_of).
    std::vector<cxl::DeviceId> placement_order(HostId host) const;

    /// Host @p host's private local-DRAM device, or devices() when the
    /// topology has no DRAM tier for it.
    cxl::DeviceId dram_device_of(HostId host) const;

    /// True when any host has a reachable LocalDram edge.
    bool has_dram_tier() const;

    /// Tier of @p device: the tier tag of any reachable edge to it (all
    /// reachable edges of one device agree by construction). A device no
    /// host reaches reports Cxl.
    cxl::MemTier tier_of(cxl::DeviceId device) const;

    // ---- Runtime edge health (fault layer; see pod/faults.h). ----
    //
    // The health table is allocated once per constructed topology and
    // SHARED by copies (PodConfig takes the Topology by value, so the
    // handle a bench keeps and the Pod's own copy must observe the same
    // faults). The mutators are const: they touch runtime health, never
    // the immutable shape.

    /// Current health of the (host, device) edge. Up for edges no one has
    /// ever degraded; statically-unreachable edges report whatever state
    /// was set (callers should consult reachable() first).
    cxl::EdgeState
    edge_state(HostId host, cxl::DeviceId device) const
    {
        return static_cast<cxl::EdgeState>(
            (*state_)[index(host, device)].state.load(
                std::memory_order_acquire));
    }

    /// Monotonic transition count of the edge: bumped on every
    /// set_edge_state, so two observations with equal epoch bracket a
    /// flap-free window.
    std::uint64_t
    edge_epoch(HostId host, cxl::DeviceId device) const
    {
        return (*state_)[index(host, device)].epoch.load(
            std::memory_order_acquire);
    }

    /// Transitions the edge's runtime health and bumps its epoch. Safe to
    /// call concurrently with readers on the access path (they see either
    /// state); no-op-free — setting the current state still bumps the
    /// epoch (a flap that recovered before anyone looked is still a flap).
    void
    set_edge_state(HostId host, cxl::DeviceId device,
                   cxl::EdgeState state) const
    {
        cxl::EdgeStateCell& cell = (*state_)[index(host, device)];
        cell.epoch.fetch_add(1, std::memory_order_acq_rel);
        cell.state.store(static_cast<std::uint8_t>(state),
                         std::memory_order_release);
    }

    /// True when every edge of @p host's row is Up (fast path for
    /// placement refresh short-circuits).
    bool row_all_up(HostId host) const;

    /// Host @p host's runtime-health row (devices() entries), the
    /// companion of row() that cxl::MemSession::set_pod_routing consumes.
    /// Stable for the lifetime of the Topology and all its copies.
    const cxl::EdgeStateCell*
    state_row(HostId host) const
    {
        return &(*state_)[index(host, 0)];
    }

    /// The device nearest to @p host when heads are spread evenly over
    /// hosts (the presets' "directly attached" assignment).
    static cxl::DeviceId
    nearest_device(HostId host, std::uint32_t hosts, std::uint32_t devices)
    {
        return static_cast<cxl::DeviceId>(
            (static_cast<std::uint32_t>(host) * devices) / hosts);
    }

  private:
    std::size_t
    index(HostId host, cxl::DeviceId device) const
    {
        return static_cast<std::size_t>(host) * devices_ + device;
    }

    std::uint32_t hosts_;
    std::uint32_t devices_;
    std::vector<cxl::EdgeCost> edges_;
    /// Runtime edge-health cells, index()-addressed like edges_. Shared
    /// (not deep-copied) by Topology copies — see the class comment.
    std::shared_ptr<std::vector<cxl::EdgeStateCell>> state_;
};

} // namespace pod
