/// @file
/// Central crashpoint registry: id -> (name, site).
///
/// Crash injection points are plain ints so the pod layer stays below the
/// layers that define them (the allocator's §5.1 points, memento's
/// application points). Each defining layer registers its points here —
/// idempotently, from its subsystem's constructor or an explicit
/// register_crash_points() call — so sweeps and tools can iterate every
/// point by *name* instead of hard-coding magic numbers, and failure
/// messages can say "slab.mid_push_global" instead of "7".

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pod {

/// Identifies an instrumented crash injection point. The allocator and
/// applications define named constants; the pod layer treats them
/// opaquely.
using CrashPointId = int;

struct CrashPointInfo {
    CrashPointId id = 0;
    /// Stable dotted name, e.g. "slab.mid_push_global".
    std::string name;
    /// Human-readable site, e.g. "SlabHeap::push_global_one".
    std::string site;
};

/// Process-wide registry. Registration is idempotent (re-registering the
/// same id is a no-op) so every subsystem instance may register its
/// points unconditionally; a *conflicting* re-registration (same id,
/// different name) aborts — ids are a global namespace.
class CrashPointRegistry {
  public:
    static CrashPointRegistry& instance();

    void add(CrashPointId id, std::string_view name, std::string_view site);

    /// Null if the id was never registered.
    const CrashPointInfo* find(CrashPointId id) const;

    /// Null if no point has this name.
    const CrashPointInfo* find_name(std::string_view name) const;

    /// Every registered point, sorted by id.
    std::vector<CrashPointInfo> all() const;

  private:
    // Storage is a function-local map in crashpoint.cc: node-based (find()
    // results stay valid across add()) and immune to static-init order.
    CrashPointRegistry() = default;
};

/// Registered name of @p id, or "crashpoint:<id>" for unknown points.
std::string crashpoint_name(CrashPointId id);

} // namespace pod
