#include "pod/process.h"

#include "common/assert.h"
#include "pod/pod.h"

namespace pod {

namespace {

/// Re-entrancy latch: the resolver inspects heap metadata through sessions
/// whose guard is this process; faults taken while handling a fault must not
/// recurse (the real signal handler runs with the signal masked).
thread_local bool in_fault_handler = false;

} // namespace

Process::Process(Pod* pod, std::uint32_t pid, bool checked,
                 std::uint16_t host)
    : pod_(pod), pid_(pid), checked_(checked), host_(host)
{
    std::uint64_t pages = pod->device().size() / cxl::kPageSize;
    page_bitmap_ = std::vector<std::atomic<std::uint64_t>>((pages + 63) / 64);
    for (auto& word : page_bitmap_) {
        word.store(0, std::memory_order_relaxed);
    }
}

void
Process::reserve(std::string name, cxl::HeapOffset start, std::uint64_t len)
{
    std::lock_guard<std::mutex> lock(reservation_mu_);
    for (const auto& r : reservations_) {
        bool overlap = start < r.start + r.len && r.start < start + len;
        CXL_FATAL_IF(overlap,
                     "virtual address space reservation overlap (PC-S "
                     "violation)");
    }
    reservations_.push_back(Reservation{std::move(name), start, len});
}

void
Process::install_mapping(cxl::HeapOffset start, std::uint64_t len)
{
    CXL_ASSERT(start + len <= pod_->device().size(), "mapping past device");
    std::uint64_t first = start / cxl::kPageSize;
    std::uint64_t last = (start + len + cxl::kPageSize - 1) / cxl::kPageSize;
    for (std::uint64_t page = first; page < last; page++) {
        auto& word = page_bitmap_[page / 64];
        std::uint64_t bit = std::uint64_t{1} << (page % 64);
        std::uint64_t prev = word.fetch_or(bit, std::memory_order_acq_rel);
        if (!(prev & bit)) {
            mapped_pages_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    // Backing pages are committed on the device the first time any process
    // maps them (the PSS-analog accounting).
    pod_->device().note_committed(start, len);
}

void
Process::remove_mapping(cxl::HeapOffset start, std::uint64_t len)
{
    std::uint64_t first = start / cxl::kPageSize;
    std::uint64_t last = (start + len + cxl::kPageSize - 1) / cxl::kPageSize;
    for (std::uint64_t page = first; page < last; page++) {
        auto& word = page_bitmap_[page / 64];
        std::uint64_t bit = std::uint64_t{1} << (page % 64);
        std::uint64_t prev = word.fetch_and(~bit, std::memory_order_acq_rel);
        if (prev & bit) {
            mapped_pages_.fetch_sub(1, std::memory_order_relaxed);
        }
    }
    // Shoot down session TLBs: any translation cached before this point
    // may cover the removed pages.
    mapping_epoch_.fetch_add(1, std::memory_order_release);
}

bool
Process::is_mapped(cxl::HeapOffset offset) const
{
    std::uint64_t page = offset / cxl::kPageSize;
    std::uint64_t bit = std::uint64_t{1} << (page % 64);
    return page_bitmap_[page / 64].load(std::memory_order_acquire) & bit;
}

bool
Process::on_access(cxl::MemSession& mem, cxl::HeapOffset offset,
                   std::uint64_t len)
{
    if (!checked_ || in_fault_handler) {
        // Unverified: the caller must not cache this range. The fault
        // handler in particular reads metadata that may itself be
        // unmapped; waving it into a TLB would defeat PC-T.
        return false;
    }
    std::uint64_t first = offset / cxl::kPageSize;
    std::uint64_t last = (offset + len - 1) / cxl::kPageSize;
    for (std::uint64_t page = first; page <= last; page++) {
        cxl::HeapOffset page_offset = page * cxl::kPageSize;
        if (is_mapped(page_offset)) {
            continue;
        }
        // SIGSEGV: ask the handler whether this is lazily-mappable heap
        // memory or a genuine bug.
        CXL_FATAL_IF(resolver_ == nullptr,
                     "segfault: unmapped access with no handler installed");
        in_fault_handler = true;
        MappedRange range;
        bool handled =
            resolver_->resolve_fault(*this, mem, page_offset, &range);
        in_fault_handler = false;
        CXL_FATAL_IF(!handled,
                     "segfault: access outside any heap mapping");
        CXL_ASSERT(range.start <= page_offset &&
                       page_offset < range.start + range.len,
                   "fault handler returned a range not covering the fault");
        install_mapping(range.start, range.len);
        faults_resolved_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
}

std::uint64_t
Process::mapped_bytes() const
{
    return mapped_pages_.load(std::memory_order_relaxed) * cxl::kPageSize;
}

} // namespace pod
