#include "pod/faults.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/assert.h"
#include "pod/pod.h"
#include "sched/hook.h"

namespace pod {

namespace {
std::mutex g_mu;

/// Node-based so pointers handed out by find() survive later add() calls
/// (same storage discipline as crashpoint.cc).
std::map<FaultPointId, FaultPointInfo>&
points()
{
    static std::map<FaultPointId, FaultPointInfo> map;
    return map;
}
} // namespace

FaultPointRegistry&
FaultPointRegistry::instance()
{
    static FaultPointRegistry registry;
    return registry;
}

void
FaultPointRegistry::add(FaultPointId id, std::string_view name,
                        std::string_view site)
{
    std::lock_guard<std::mutex> lock(g_mu);
    auto [it, inserted] = points().try_emplace(
        id, FaultPointInfo{id, std::string(name), std::string(site)});
    if (!inserted) {
        CXL_ASSERT(it->second.name == name,
                   "fault point id registered twice with different names");
    }
}

const FaultPointInfo*
FaultPointRegistry::find(FaultPointId id) const
{
    std::lock_guard<std::mutex> lock(g_mu);
    auto it = points().find(id);
    return it != points().end() ? &it->second : nullptr;
}

const FaultPointInfo*
FaultPointRegistry::find_name(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(g_mu);
    for (const auto& [id, info] : points())
        if (info.name == name)
            return &info;
    return nullptr;
}

std::vector<FaultPointInfo>
FaultPointRegistry::all() const
{
    std::lock_guard<std::mutex> lock(g_mu);
    std::vector<FaultPointInfo> out;
    out.reserve(points().size());
    for (const auto& [id, info] : points())
        out.push_back(info);
    return out;
}

std::string
fault_point_name(FaultPointId id)
{
    const FaultPointInfo* info = FaultPointRegistry::instance().find(id);
    return info != nullptr ? info->name : "faultpoint:" + std::to_string(id);
}

void
register_fault_points()
{
    FaultPointRegistry& r = FaultPointRegistry::instance();
    r.add(faultpoint::kEdgeDown, "fault.edge_down",
          "Topology::set_edge_state(Down)");
    r.add(faultpoint::kEdgeFlap, "fault.edge_flap",
          "Topology::set_edge_state(Down..Up)");
    r.add(faultpoint::kNmpStall, "fault.nmp_stall", "Nmp::inject_stall");
    r.add(faultpoint::kNmpDelay, "fault.nmp_delay", "Nmp::inject_delay");
    r.add(faultpoint::kHostKill, "fault.host_kill",
          "FaultInjector::host_killed");
}

FaultPointId
fault_point_of(FaultKind kind)
{
    switch (kind) {
    case FaultKind::EdgeDown: return faultpoint::kEdgeDown;
    case FaultKind::EdgeFlap: return faultpoint::kEdgeFlap;
    case FaultKind::NmpStall: return faultpoint::kNmpStall;
    case FaultKind::NmpDelay: return faultpoint::kNmpDelay;
    case FaultKind::HostKill: return faultpoint::kHostKill;
    }
    CXL_PANIC("unknown fault kind");
}

// ------------------------------------------------------------- FaultPlan

FaultPlan&
FaultPlan::edge_down(HostId host, cxl::DeviceId device,
                     std::uint64_t at_step)
{
    events.push_back(FaultEvent{.kind = FaultKind::EdgeDown, .host = host,
                                .device = device, .at_step = at_step});
    return *this;
}

FaultPlan&
FaultPlan::edge_flap(HostId host, cxl::DeviceId device,
                     std::uint64_t at_step, std::uint64_t down_for)
{
    CXL_ASSERT(down_for > 0, "flap must stay down for at least one step");
    events.push_back(FaultEvent{.kind = FaultKind::EdgeFlap, .host = host,
                                .device = device, .at_step = at_step,
                                .recover_after = down_for});
    return *this;
}

FaultPlan&
FaultPlan::nmp_stall(std::uint64_t at_step, std::uint32_t doorbells)
{
    events.push_back(FaultEvent{.kind = FaultKind::NmpStall,
                                .at_step = at_step, .count = doorbells});
    return *this;
}

FaultPlan&
FaultPlan::nmp_delay(std::uint64_t at_step, std::uint64_t extra_ns,
                     std::uint32_t doorbells)
{
    events.push_back(FaultEvent{.kind = FaultKind::NmpDelay,
                                .at_step = at_step, .count = doorbells,
                                .delay_ns = extra_ns});
    return *this;
}

FaultPlan&
FaultPlan::host_kill(HostId host, std::uint64_t at_step)
{
    events.push_back(FaultEvent{.kind = FaultKind::HostKill, .host = host,
                                .at_step = at_step});
    return *this;
}

FaultPlan
FaultPlan::for_point(FaultPointId point, HostId host, cxl::DeviceId device,
                     std::uint64_t at_step)
{
    FaultPlan plan;
    switch (point) {
    case faultpoint::kEdgeDown:
        return plan.edge_down(host, device, at_step);
    case faultpoint::kEdgeFlap:
        return plan.edge_flap(host, device, at_step, /*down_for=*/4);
    case faultpoint::kNmpStall:
        return plan.nmp_stall(at_step, /*doorbells=*/2);
    case faultpoint::kNmpDelay:
        return plan.nmp_delay(at_step, /*extra_ns=*/500, /*doorbells=*/2);
    case faultpoint::kHostKill:
        return plan.host_kill(host, at_step);
    default:
        CXL_PANIC("FaultPlan::for_point: unknown fault point");
    }
}

// --------------------------------------------------------- FaultInjector

FaultInjector::FaultInjector(Pod& pod, FaultPlan plan)
    : pod_(pod), events_(std::move(plan.events))
{
    register_fault_points();
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.at_step < b.at_step;
                     });
    for (const FaultEvent& e : events_) {
        CXL_ASSERT(e.at_step > 0, "fault events fire at step >= 1");
        switch (e.kind) {
        case FaultKind::EdgeDown:
        case FaultKind::EdgeFlap:
            CXL_ASSERT(e.host < pod_.topology().hosts() &&
                           e.device < pod_.topology().devices(),
                       "fault edge outside the topology");
            break;
        case FaultKind::HostKill:
            CXL_ASSERT(e.host < pod_.topology().hosts(),
                       "fault host outside the topology");
            break;
        default:
            break;
        }
    }
}

void
FaultInjector::fire(const FaultEvent& event)
{
    // The hook makes the fault a schedule point: under the explorer, WHEN
    // this fires relative to every other thread's yields is part of the
    // explored interleaving space.
    sched::hook(sched::Op::CrashPoint,
                static_cast<std::uint64_t>(fault_point_of(event.kind)), 1);
    const Topology& topo = pod_.topology();
    switch (event.kind) {
    case FaultKind::EdgeDown:
        topo.set_edge_state(event.host, event.device, cxl::EdgeState::Down);
        break;
    case FaultKind::EdgeFlap:
        topo.set_edge_state(event.host, event.device, cxl::EdgeState::Down);
        recovers_.push_back(PendingRecover{
            .at_step = now_ + event.recover_after, .host = event.host,
            .device = event.device});
        break;
    case FaultKind::NmpStall:
        pod_.nmp().inject_stall(event.count);
        break;
    case FaultKind::NmpDelay:
        pod_.nmp().inject_delay(event.delay_ns, event.count);
        break;
    case FaultKind::HostKill:
        killed_[event.host] = true;
        break;
    }
    fired_++;
}

void
FaultInjector::step()
{
    now_++;
    while (next_event_ < events_.size() &&
           events_[next_event_].at_step <= now_) {
        fire(events_[next_event_]);
        next_event_++;
    }
    // Flap recoveries due this step (firing can append, so index loop).
    for (std::size_t i = 0; i < recovers_.size();) {
        if (recovers_[i].at_step <= now_) {
            sched::hook(sched::Op::CrashPoint,
                        static_cast<std::uint64_t>(faultpoint::kEdgeFlap),
                        0);
            pod_.topology().set_edge_state(recovers_[i].host,
                                           recovers_[i].device,
                                           cxl::EdgeState::Up);
            recovers_.erase(recovers_.begin() +
                            static_cast<std::ptrdiff_t>(i));
        } else {
            i++;
        }
    }
}

bool
FaultInjector::done() const
{
    return next_event_ == events_.size() && recovers_.empty();
}

} // namespace pod
