#include "pod/thread_context.h"

#include "pod/pod.h"
#include "pod/process.h"

namespace pod {

ThreadContext::ThreadContext(Process* process, cxl::ThreadId tid)
    : process_(process), tid_(tid),
      mem_(&process->pod().device(), &process->pod().nmp(), tid)
{
    if (process->checked()) {
        mem_.set_mapping_guard(process);
    }
}

} // namespace pod
