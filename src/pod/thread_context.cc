#include "pod/thread_context.h"

#include "pod/pod.h"
#include "pod/process.h"

namespace pod {

ThreadContext::ThreadContext(Process* process, cxl::ThreadId tid)
    : process_(process), tid_(tid),
      mem_(&process->pod().device(), &process->pod().nmp(), tid)
{
    if (process->checked()) {
        mem_.set_mapping_guard(process);
    }
    const Topology& topo = process->pod().topology();
    if (!topo.trivial()) {
        auto host = static_cast<HostId>(process->host());
        mem_.set_pod_routing(topo.row(host), topo.devices(),
                             topo.home_of(host), host,
                             topo.state_row(host));
    }
}

} // namespace pod
