#include "pod/liveness.h"

#include "common/assert.h"
#include "cxl/mem_ops.h"
#include "pod/pod.h"

namespace pod {

const char*
to_string(HostHealth health)
{
    switch (health) {
      case HostHealth::Alive:
        return "alive";
      case HostHealth::Suspect:
        return "suspect";
      case HostHealth::Dead:
        return "dead";
    }
    return "?";
}

LivenessDetector::LivenessDetector(Pod& pod, const LivenessConfig& config)
    : pod_(pod), config_(config)
{
    CXL_ASSERT(config_.suspect_after > 0, "suspect_after must be >= 1");
    CXL_ASSERT(config_.dead_after >= config_.suspect_after,
               "dead_after must be >= suspect_after");
}

void
LivenessDetector::beat(cxl::MemSession& mem, cxl::HeapOffset lease_base,
                       HostId host)
{
    cxl::HeapOffset cell = lease_cell(lease_base, host);
    try {
        std::uint64_t seq = mem.atomic_load64(cell);
        mem.atomic_store64(cell, seq + 1);
    } catch (const cxl::EdgeDownError&) {
        // The fabric ate the beat; the monitor will count a miss.
    }
}

std::vector<HostId>
LivenessDetector::poll(cxl::MemSession& mem)
{
    std::vector<HostId> newly_dead;
    bool priming = rounds_ == 0;
    std::uint32_t hosts = pod_.topology().hosts();
    for (std::uint32_t h = 0; h < hosts; h++) {
        auto host = static_cast<HostId>(h);
        HostCell& cell = cells_[h];
        bool advanced = false;
        bool observed = false;
        try {
            std::uint64_t seq =
                mem.atomic_load64(lease_cell(config_.lease_base, host));
            observed = true;
            advanced = seq != cell.last_seq;
            cell.last_seq = seq;
        } catch (const cxl::EdgeDownError&) {
            // Unobservable lease: from this seat, indistinguishable from
            // a stopped host — a miss, weighed like any other.
        }
        if (priming) {
            continue;
        }
        if (observed && advanced) {
            cell.misses = 0;
            if (cell.health == HostHealth::Suspect) {
                cell.health = HostHealth::Alive;
                false_suspects_++;
            }
            // Dead stays Dead: the slots are already Crashed and adoption
            // may be underway; a zombie beat must not resurrect the host.
            continue;
        }
        if (cell.health == HostHealth::Dead) {
            continue;
        }
        cell.misses++;
        if (cell.misses >= config_.dead_after) {
            cell.health = HostHealth::Dead;
            deaths_++;
            pod_.mark_host_crashed(host);
            newly_dead.push_back(host);
        } else if (cell.misses >= config_.suspect_after &&
                   cell.health == HostHealth::Alive) {
            cell.health = HostHealth::Suspect;
        }
    }
    rounds_++;
    return newly_dead;
}

} // namespace pod
