/// @file
/// Pod: the top-level simulated system — one shared CXL device, its NMP
/// engine, the set of sharing processes, and the pod-global thread slots.

#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <vector>

#include "cxl/device.h"
#include "cxl/nmp.h"
#include "cxl/types.h"
#include "pod/process.h"
#include "pod/thread_context.h"
#include "pod/topology.h"

namespace pod {

/// Pod-wide configuration.
struct PodConfig {
    cxl::DeviceConfig device;
    /// When true, processes run in checked-mapping mode: PC-T is enforced
    /// per access and faults go through the handler.
    bool checked_mappings = false;
    /// Host/device topology. The default (trivial 1x1) is the legacy
    /// single-host, single-device pod; a non-trivial topology requires a
    /// window-partitioned device with windows == topology.devices(), and
    /// every thread's session is routed through its host's edge row.
    Topology topology;
};

/// State of a pod-global thread slot.
enum class SlotState : std::uint8_t {
    Free,
    Live,
    /// Thread crashed; its slot (and in-heap state) awaits recovery.
    Crashed,
};

/// The simulated CXL pod.
class Pod {
  public:
    explicit Pod(const PodConfig& config);

    cxl::Device& device() { return device_; }
    cxl::Nmp& nmp() { return nmp_; }
    const PodConfig& config() const { return config_; }
    const Topology& topology() const { return config_.topology; }

    /// Spawns a simulated process on @p host (a host-side construct, so a
    /// plain mutex is fine here — only shared *device* state must be
    /// lock-free). Threads of the process inherit the host's edge row.
    Process* create_process(HostId host = 0);

    /// Creates a thread in @p process, assigning the lowest free pod-global
    /// thread slot. Thread IDs are 1-based; 0 means "no thread".
    std::unique_ptr<ThreadContext> create_thread(Process* process);

    /// How much state a crash destroys.
    enum class CrashSeverity {
        /// The process dies but the host survives: the host's coherent CPU
        /// cache lives on, so the dead thread's unflushed stores remain
        /// visible (and eventually written back). This is the failure the
        /// paper's recovery protocol targets (OOM kill, software bug).
        Process,
        /// The host (OS) dies: unflushed cache contents are lost. Only
        /// state the SWcc protocol explicitly flushed survives.
        Host,
    };

    /// Marks @p context's slot as crashed and destroys the context. Under
    /// CrashSeverity::Process the simulated cache is written back; under
    /// Host it is dropped.
    void mark_crashed(std::unique_ptr<ThreadContext> context,
                      CrashSeverity severity = CrashSeverity::Process);

    /// Adopts a crashed slot for recovery: a (possibly different) process
    /// resumes the dead thread's identity to repair its heap state.
    std::unique_ptr<ThreadContext> adopt_thread(Process* process,
                                                cxl::ThreadId tid);

    /// Releases a live thread's slot on clean exit.
    void release_thread(std::unique_ptr<ThreadContext> context);

    SlotState slot_state(cxl::ThreadId tid) const;

    /// Thread IDs currently in Crashed state (recovery work list).
    std::vector<cxl::ThreadId> crashed_threads() const;

    /// Host that owns @p tid's slot (recorded at create/adopt time; stale
    /// for Free slots). Adoption moves the slot to the adopter's host.
    HostId slot_host(cxl::ThreadId tid) const;

    /// Thread IDs whose slot is Live or Crashed and owned by @p host.
    std::vector<cxl::ThreadId> threads_of_host(HostId host) const;

    /// Declares a whole host dead (liveness verdict or scripted
    /// host-kill): every Live slot owned by @p host flips to Crashed, and
    /// the transitioned tids are returned as the adoption work list.
    ///
    /// Unlike mark_crashed this cannot touch the dead threads' simulated
    /// caches — the host is gone, nobody holds its ThreadContexts. The
    /// semantics match CrashSeverity::Host: unflushed state is lost, so
    /// any context the harness still holds for a returned tid must be
    /// discarded without writeback (or passed to mark_crashed(..., Host)
    /// *before* this call).
    std::vector<cxl::ThreadId> mark_host_crashed(HostId host);

  private:
    PodConfig config_;
    cxl::Device device_;
    cxl::Nmp nmp_;

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::array<SlotState, cxl::kMaxThreads + 1> slots_{};
    /// Owning host per slot, maintained alongside slots_.
    std::array<HostId, cxl::kMaxThreads + 1> slot_host_{};
};

} // namespace pod
