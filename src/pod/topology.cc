#include "pod/topology.h"

#include <algorithm>

#include "common/assert.h"

namespace pod {

namespace {

/// Total order on edge cost for home selection and steal ordering: a
/// simple per-line round+write sum plus the bandwidth term. Unreachable
/// edges sort last (and are filtered out before use anyway).
std::uint64_t
edge_weight(const cxl::EdgeCost& e)
{
    if (!e.reachable) {
        return ~std::uint64_t{0};
    }
    return static_cast<std::uint64_t>(e.read_add_ns) + e.write_add_ns +
           e.ns_per_kib;
}

} // namespace

Topology::Topology(std::uint32_t hosts, std::uint32_t devices)
    : hosts_(hosts), devices_(devices)
{
    CXL_FATAL_IF(hosts == 0 || hosts > kMaxHosts, "host count out of range");
    CXL_FATAL_IF(devices == 0 || devices > cxl::kMaxDevices,
                 "device count out of range");
    edges_.resize(static_cast<std::size_t>(hosts) * devices);
    state_ = std::make_shared<std::vector<cxl::EdgeStateCell>>(edges_.size());
}

bool
Topology::row_all_up(HostId host) const
{
    CXL_ASSERT(host < hosts_, "host id out of range");
    for (std::uint32_t d = 0; d < devices_; d++) {
        if (edge_state(host, static_cast<cxl::DeviceId>(d)) !=
            cxl::EdgeState::Up) {
            return false;
        }
    }
    return true;
}

Topology
Topology::dense(std::uint32_t hosts, std::uint32_t devices,
                const cxl::EdgeCost& near, const cxl::EdgeCost& far)
{
    CXL_FATAL_IF(!near.reachable || !far.reachable,
                 "dense preset edges must be reachable");
    Topology t(hosts, devices);
    for (std::uint32_t h = 0; h < hosts; h++) {
        cxl::DeviceId mine =
            nearest_device(static_cast<HostId>(h), hosts, devices);
        for (std::uint32_t d = 0; d < devices; d++) {
            t.edge(static_cast<HostId>(h), static_cast<cxl::DeviceId>(d)) =
                d == mine ? near : far;
        }
    }
    return t;
}

Topology
Topology::octopus(std::uint32_t hosts, std::uint32_t devices,
                  std::uint32_t arms, const cxl::EdgeCost& near,
                  const cxl::EdgeCost& far)
{
    CXL_FATAL_IF(arms == 0 || arms > devices,
                 "octopus arms must be 1..devices");
    CXL_FATAL_IF(!near.reachable || !far.reachable,
                 "octopus preset arm edges must be reachable");
    Topology t(hosts, devices);
    cxl::EdgeCost unreachable;
    unreachable.reachable = false;
    for (std::uint32_t h = 0; h < hosts; h++) {
        cxl::DeviceId mine =
            nearest_device(static_cast<HostId>(h), hosts, devices);
        for (std::uint32_t d = 0; d < devices; d++) {
            t.edge(static_cast<HostId>(h), static_cast<cxl::DeviceId>(d)) =
                unreachable;
        }
        for (std::uint32_t a = 0; a < arms; a++) {
            auto d = static_cast<cxl::DeviceId>((mine + a) % devices);
            t.edge(static_cast<HostId>(h), d) = a == 0 ? near : far;
        }
    }
    return t;
}

Topology
Topology::with_local_dram(const Topology& base)
{
    CXL_FATAL_IF(base.devices() + base.hosts() > cxl::kMaxDevices,
                 "no device ids left for per-host DRAM windows");
    Topology t(base.hosts(), base.devices() + base.hosts());
    cxl::EdgeCost unreachable;
    unreachable.reachable = false;
    for (std::uint32_t h = 0; h < base.hosts(); h++) {
        for (std::uint32_t d = 0; d < t.devices(); d++) {
            t.edge(static_cast<HostId>(h), static_cast<cxl::DeviceId>(d)) =
                d < base.devices()
                    ? base.edge(static_cast<HostId>(h),
                                static_cast<cxl::DeviceId>(d))
                    : unreachable;
        }
        // The host's own DRAM window: reachable, zero edge cost (the base
        // LatencyModel is the DRAM latency; CXL edges add the fabric gap).
        cxl::EdgeCost dram;
        dram.tier = cxl::MemTier::LocalDram;
        t.edge(static_cast<HostId>(h),
               static_cast<cxl::DeviceId>(base.devices() + h)) = dram;
    }
    return t;
}

cxl::DeviceId
Topology::dram_device_of(HostId host) const
{
    CXL_ASSERT(host < hosts_, "host id out of range");
    for (std::uint32_t d = 0; d < devices_; d++) {
        const cxl::EdgeCost& e = edge(host, static_cast<cxl::DeviceId>(d));
        if (e.reachable && e.tier == cxl::MemTier::LocalDram) {
            return static_cast<cxl::DeviceId>(d);
        }
    }
    return static_cast<cxl::DeviceId>(devices_);
}

bool
Topology::has_dram_tier() const
{
    for (std::uint32_t h = 0; h < hosts_; h++) {
        if (dram_device_of(static_cast<HostId>(h)) < devices_) {
            return true;
        }
    }
    return false;
}

cxl::MemTier
Topology::tier_of(cxl::DeviceId device) const
{
    CXL_ASSERT(device < devices_, "device id out of range");
    for (std::uint32_t h = 0; h < hosts_; h++) {
        const cxl::EdgeCost& e = edge(static_cast<HostId>(h), device);
        if (e.reachable) {
            return e.tier;
        }
    }
    return cxl::MemTier::Cxl;
}

cxl::DeviceId
Topology::home_of(HostId host) const
{
    CXL_ASSERT(host < hosts_, "host id out of range");
    cxl::DeviceId best = 0;
    std::uint64_t best_weight = ~std::uint64_t{0};
    bool found = false;
    for (std::uint32_t d = 0; d < devices_; d++) {
        const cxl::EdgeCost& e = edge(host, static_cast<cxl::DeviceId>(d));
        if (!e.reachable || e.tier != cxl::MemTier::Cxl) {
            continue;
        }
        std::uint64_t w = edge_weight(e);
        if (!found || w < best_weight) {
            best = static_cast<cxl::DeviceId>(d);
            best_weight = w;
            found = true;
        }
    }
    CXL_FATAL_IF(!found, "host reaches no device at all");
    return best;
}

std::vector<cxl::DeviceId>
Topology::placement_order(HostId host) const
{
    CXL_ASSERT(host < hosts_, "host id out of range");
    std::vector<cxl::DeviceId> order;
    for (std::uint32_t d = 0; d < devices_; d++) {
        const cxl::EdgeCost& e = edge(host, static_cast<cxl::DeviceId>(d));
        if (e.reachable && e.tier == cxl::MemTier::Cxl) {
            order.push_back(static_cast<cxl::DeviceId>(d));
        }
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](cxl::DeviceId a, cxl::DeviceId b) {
                         return edge_weight(edge(host, a)) <
                                edge_weight(edge(host, b));
                     });
    return order;
}

} // namespace pod
