/// @file
/// A simulated process sharing the CXL device (paper §3.3).
///
/// Substitution note: real processes have private virtual address spaces;
/// the OS cannot guarantee that concurrent mmap calls in different processes
/// return consistent addresses (PC-S) or that one process's mappings are
/// visible in another (PC-T). This class models exactly the state the
/// allocator's protocols manage: a table of virtual-address-space
/// *reservations* (the mmap(PROT_NONE) regions of Fig. 2) and a per-process
/// page-granular table of *installed mappings*. Accesses to unmapped pages
/// fault into the registered FaultResolver, the signal-handler analog.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "cxl/mem_ops.h"
#include "cxl/types.h"
#include "pod/fault_handler.h"

namespace pod {

class Pod;

/// One simulated process.
class Process : public cxl::MappingGuard {
  public:
    /// @param checked  when true, every MemSession access verifies mappings
    ///                 (slow, faithful); when false, PC-T checking is off
    ///                 (fast path for throughput benchmarks).
    /// @param host     pod host this process runs on; its threads route
    ///                 through the host's topology edge row.
    Process(Pod* pod, std::uint32_t pid, bool checked, std::uint16_t host = 0);

    std::uint32_t pid() const { return pid_; }
    Pod& pod() { return *pod_; }

    /// Pod host this process runs on (0 in the trivial topology).
    std::uint16_t host() const { return host_; }

    /// Registers a virtual-address-space reservation. Models
    /// mmap(PROT_NONE) at heap initialization: it pins a contiguous offset
    /// range for the allocator's exclusive use and must not overlap any
    /// existing reservation (that would break PC-S).
    void reserve(std::string name, cxl::HeapOffset start, std::uint64_t len);

    /// Installs a memory mapping over [start, start+len) — the
    /// mmap(MAP_FIXED) analog. Thread-safe and idempotent.
    void install_mapping(cxl::HeapOffset start, std::uint64_t len);

    /// Removes the mapping over [start, start+len) — the munmap analog.
    void remove_mapping(cxl::HeapOffset start, std::uint64_t len);

    /// True if the page containing @p offset is mapped in this process.
    bool is_mapped(cxl::HeapOffset offset) const;

    /// Registers the allocator as this process's fault resolver.
    void
    set_resolver(FaultResolver* resolver)
    {
        resolver_ = resolver;
    }

    /// MappingGuard hook: called by MemSession before each access when the
    /// process is in checked mode. Returns true when the range was verified
    /// mapped (sessions may then cache the translation); false when the
    /// check was skipped (unchecked mode or fault-handler re-entry).
    bool on_access(cxl::MemSession& mem, cxl::HeapOffset offset,
                   std::uint64_t len) override;

    /// MappingGuard hook: bumped by every remove_mapping so session TLBs
    /// drop stale translations before the backing pages can be reused.
    std::uint64_t
    mapping_epoch() const override
    {
        return mapping_epoch_.load(std::memory_order_acquire);
    }

    /// Bytes of device memory currently mapped by this process.
    std::uint64_t mapped_bytes() const;

    /// Number of faults resolved by the handler (PC-T events).
    std::uint64_t faults_resolved() const { return faults_resolved_.load(); }

    bool checked() const { return checked_; }

  private:
    struct Reservation {
        std::string name;
        cxl::HeapOffset start;
        std::uint64_t len;
    };

    Pod* pod_;
    std::uint32_t pid_;
    bool checked_;
    std::uint16_t host_;
    FaultResolver* resolver_ = nullptr;

    mutable std::mutex reservation_mu_;
    std::vector<Reservation> reservations_;

    /// One bit per device page: mapped in this process?
    std::vector<std::atomic<std::uint64_t>> page_bitmap_;
    std::atomic<std::uint64_t> mapped_pages_{0};
    std::atomic<std::uint64_t> faults_resolved_{0};
    std::atomic<std::uint64_t> mapping_epoch_{0};
};

} // namespace pod
