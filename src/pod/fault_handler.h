/// @file
/// The SIGSEGV-handler analog that provides temporal pointer consistency
/// (PC-T, paper §3.3).
///
/// In the real system, each process installs a signal handler; when a thread
/// dereferences a pointer into heap memory whose mapping another process
/// created, the handler inspects heap metadata, installs the mapping with
/// mmap(MAP_FIXED), and reissues the faulting instruction. Here, Process
/// intercepts accesses to unmapped simulated pages and asks the registered
/// FaultResolver (the allocator) whether and how to back them.

#pragma once

#include <cstdint>

#include "cxl/mem_ops.h"
#include "cxl/types.h"

namespace pod {

class Process;

/// A mapping the resolver wants installed in the faulting process.
struct MappedRange {
    cxl::HeapOffset start = 0;
    std::uint64_t len = 0;
};

/// Implemented by the allocator: decides whether a faulting offset lies
/// within heap memory that should be backed by a mapping.
class FaultResolver {
  public:
    virtual ~FaultResolver() = default;

    /// Inspects heap metadata for @p offset. On success fills @p out with
    /// the range to install (which must cover @p offset) and returns true;
    /// returns false if the offset is not valid heap memory, in which case
    /// the fault is a genuine segfault.
    virtual bool resolve_fault(Process& process, cxl::MemSession& mem,
                               cxl::HeapOffset offset, MappedRange* out) = 0;
};

} // namespace pod
