/// @file
/// Per-thread execution context: pod-global thread slot, memory session,
/// and crash injection (paper §5.1's black-box/white-box recovery tests).

#pragma once

#include <cstdint>
#include <optional>

#include "common/random.h"
#include "cxl/mem_ops.h"
#include "cxl/types.h"
#include "pod/crashpoint.h"
#include "sched/hook.h"

namespace pod {

class Process;

/// Thrown to simulate a thread crash (e.g. the OS OOM killer) at an
/// arbitrary point inside an allocator operation. The harness catches it
/// and leaves all shared state — including unflushed cache contents —
/// exactly as the dead thread left it.
struct ThreadCrashed {
    int point;
};

// CrashPointId and its registry (id -> name, site) live in
// pod/crashpoint.h; layers register their points there so sweeps and
// tools can iterate them by name instead of magic numbers.

/// A thread attached to a process. Create via Pod::create_thread (fresh
/// slot) or Pod::adopt_thread (recovery of a crashed slot).
class ThreadContext {
  public:
    ThreadContext(Process* process, cxl::ThreadId tid);

    ThreadContext(const ThreadContext&) = delete;
    ThreadContext& operator=(const ThreadContext&) = delete;

    cxl::ThreadId tid() const { return tid_; }
    Process& process() { return *process_; }
    cxl::MemSession& mem() { return mem_; }

    /// Arms a deterministic (white-box) crash: the @p countdown-th time
    /// execution reaches @p point, ThreadCrashed is thrown.
    void
    arm_crash(CrashPointId point, std::uint32_t countdown = 1)
    {
        armed_point_ = point;
        countdown_ = countdown;
    }

    /// Arms random (black-box) crashes: each crash point fires with
    /// probability @p prob.
    void
    arm_random_crash(std::uint64_t seed, double prob)
    {
        random_prob_ = prob;
        crash_rng_.emplace(seed);
    }

    void
    disarm_crash()
    {
        armed_point_ = -1;
        random_prob_ = 0;
        crash_rng_.reset();
    }

    /// Instrumentation hook placed at every recoverable step boundary in
    /// the allocator. Throws ThreadCrashed when an armed crash fires.
    void
    maybe_crash(CrashPointId point)
    {
        sched::hook(sched::Op::CrashPoint, 0, static_cast<std::uint64_t>(point));
        if (point == armed_point_ && --countdown_ == 0) {
            armed_point_ = -1;
            throw ThreadCrashed{point};
        }
        if (random_prob_ > 0 && crash_rng_ &&
            crash_rng_->next_double() < random_prob_) {
            throw ThreadCrashed{point};
        }
    }

  private:
    Process* process_;
    cxl::ThreadId tid_;
    cxl::MemSession mem_;

    CrashPointId armed_point_ = -1;
    std::uint32_t countdown_ = 0;
    double random_prob_ = 0;
    std::optional<cxlcommon::Xoshiro> crash_rng_;
};

} // namespace pod
